// Dynamic network walk-through (Section 4): links are added and removed while
// the update runs; closed nodes re-open and re-close; the final state is
// verified against the Definition 9 sound/complete envelope, and a separated
// sub-network (Theorem 3) closes even while churn continues elsewhere.
//
//   ./dynamic_network
#include <cstdio>

#include "src/core/dynamics.h"
#include "src/core/session.h"
#include "src/lang/parser.h"
#include "src/net/sim_runtime.h"

using namespace p2pdb;  // NOLINT

int main() {
  const char* network = R"(
# Newsroom <- Wire <- Correspondent  plus a Blogger that joins mid-run,
# and an unrelated pair Mirror <- Archive that churns.
node Newsroom { rel story(slug); }
node Wire { rel item(slug); }
node Correspondent { rel report(slug); fact report("election"); fact report("flood"); }
node Blogger { rel post(slug); fact post("scoop"); }
node Mirror { rel copy(slug); }
node Archive { rel doc(slug); fact doc("1997"); }
rule pickup:  Wire.item(S) => Newsroom.story(S);
rule file:    Correspondent.report(S) => Wire.item(S);
rule mirror:  Archive.doc(S) => Mirror.copy(S);
)";
  auto system = lang::ParseSystem(network);
  if (!system.ok()) {
    std::fprintf(stderr, "%s\n", system.status().ToString().c_str());
    return 1;
  }
  NodeId newsroom = *system->NodeByName("Newsroom");
  NodeId wire = *system->NodeByName("Wire");
  NodeId blogger = *system->NodeByName("Blogger");
  NodeId mirror = *system->NodeByName("Mirror");
  NodeId archive = *system->NodeByName("Archive");

  // addLink: mid-run, the Wire starts pulling the Blogger's posts.
  core::CoordinationRule blog_rule;
  blog_rule.id = "blog";
  blog_rule.head_node = wire;
  rel::Atom head;
  head.relation = "item";
  head.terms = {rel::Term::Var("S")};
  blog_rule.head_atoms = {head};
  core::CoordinationRule::BodyPart part;
  part.node = blogger;
  rel::Atom body;
  body.relation = "post";
  body.terms = {rel::Term::Var("S")};
  part.atoms = {body};
  blog_rule.body = {part};

  core::ChangeScript changes = {
      // Arrives after the news chain has closed: forces a re-open wave.
      core::AtomicChange::Add(12'000, blog_rule),
      // Churn on the unrelated pair: drop and restore the mirror rule.
      core::AtomicChange::Delete(1000, mirror, "mirror"),
      core::AtomicChange::Add(15'000, **system->RuleById("mirror")),
  };

  // Separation check (Definition 10.2): the news chain never reaches the
  // mirror pair under any prefix of the change script.
  bool separated = core::IsSeparatedUnderChange(
      *system, changes, {newsroom, wire, blogger}, {mirror, archive});
  std::printf("news chain separated from mirror pair under change: %s\n",
              separated ? "yes" : "no");

  net::SimRuntime runtime;
  core::Session session(*system, &runtime);
  if (!session.RunDiscovery().ok()) return 1;
  for (const core::AtomicChange& c : changes) session.ScheduleChange(c);
  // Two disconnected sub-networks, so the session starts at both heads.
  if (!session.RunUpdateFrom({newsroom, mirror}).ok()) return 1;

  std::printf("\nafter the run:\n");
  auto show = [&](NodeId n, const char* relation) {
    const rel::Relation* r = *session.peer(n).db().Get(relation);
    std::printf("  %s.%s (%zu):", system->node(n).name.c_str(), relation,
                r->size());
    for (const rel::Tuple& t : r->tuples()) {
      std::printf(" %s", t.ToString().c_str());
    }
    std::printf("\n");
  };
  show(newsroom, "story");
  show(wire, "item");
  show(mirror, "copy");

  std::printf("\nreopen count at Wire: %llu (addLink re-opened a closed node)\n",
              static_cast<unsigned long long>(
                  session.peer(wire).update().stats().reopens));

  auto envelope = core::ComputeEnvelope(*system, changes, rel::ChaseOptions{});
  if (!envelope.ok()) return 1;
  bool inside = core::WithinEnvelope(session.SnapshotDatabases(), *envelope);
  std::printf("final state within the Definition 9 envelope: %s\n",
              inside ? "yes" : "NO");
  std::printf("all nodes closed (Theorem 2, finite change): %s\n",
              session.AllClosed() ? "yes" : "no");
  return inside ? 0 : 1;
}
