// Causal trace renderer: load a network description, run discovery and one
// traced global update, then print the propagation tree the update carved
// through the network — per-hop receive offsets, queue wait, chase and WAL
// time, bytes, and the critical path to the fixpoint. The wall-clock time of
// the update phase is printed next to the traced fixpoint latency so the two
// can be compared directly.
//
//   ./trace_dump <network.p2p> [--super NODE] [--sim|--threads]
//                [--obs FILE.json]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "src/core/session.h"
#include "src/lang/parser.h"
#include "src/net/sim_runtime.h"
#include "src/net/tcp_runtime.h"
#include "src/net/thread_runtime.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/storage/storage_manager.h"

using namespace p2pdb;  // NOLINT

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: trace_dump <network.p2p> [--super NODE]\n"
               "                  [--sim|--threads] [--obs FILE.json]\n"
               "                  [--durable DIR]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  std::string super_name;
  std::string obs_path;
  std::string durable_dir;
  enum class Net { kTcp, kThreads, kSim } net = Net::kTcp;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--super") == 0 && i + 1 < argc) {
      super_name = argv[++i];
    } else if (std::strcmp(argv[i], "--obs") == 0 && i + 1 < argc) {
      obs_path = argv[++i];
    } else if (std::strcmp(argv[i], "--durable") == 0 && i + 1 < argc) {
      durable_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--sim") == 0) {
      net = Net::kSim;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      net = Net::kThreads;
    } else {
      return Usage();
    }
  }

  auto system = lang::ParseSystem(buf.str());
  if (!system.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  std::unique_ptr<net::Runtime> runtime;
  switch (net) {
    case Net::kTcp:
      runtime = std::make_unique<net::TcpRuntime>();
      break;
    case Net::kThreads:
      runtime = std::make_unique<net::ThreadRuntime>();
      break;
    case Net::kSim:
      runtime = std::make_unique<net::SimRuntime>();
      break;
  }

  core::Session::Options options;
  if (!super_name.empty()) {
    auto id = system->NodeByName(super_name);
    if (!id.ok()) {
      std::fprintf(stderr, "unknown super-peer %s\n", super_name.c_str());
      return 1;
    }
    options.super_peer = *id;
  }
  if (!durable_dir.empty()) {
    options.storage =
        [&durable_dir](NodeId node) -> std::unique_ptr<storage::Storage> {
      storage::StorageOptions sopts;
      sopts.dir = durable_dir + "/node" + std::to_string(node);
      auto manager = storage::StorageManager::Open(sopts);
      if (!manager.ok()) {
        std::fprintf(stderr, "cannot open storage in %s: %s\n",
                     sopts.dir.c_str(), manager.status().ToString().c_str());
        return nullptr;
      }
      return std::move(*manager);
    };
  }
  core::Session session(*system, runtime.get(), options);

  obs::TraceCollector collector;
  session.EnableTracing(&collector);

  if (!durable_dir.empty()) {
    // Durable peers: every chase delta goes through a real WAL, so the trace
    // spans (and obs.json histograms) include WAL append/fsync time.
    for (size_t n = 0; n < session.peer_count(); ++n) {
      if (Status st = session.AttachStorage(static_cast<NodeId>(n));
          !st.ok()) {
        std::fprintf(stderr, "attach storage failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
    }
  }

  if (Status st = session.RunDiscovery(); !st.ok()) {
    std::fprintf(stderr, "discovery failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto update_start = std::chrono::steady_clock::now();
  if (Status st = session.RunUpdate(); !st.ok()) {
    std::fprintf(stderr, "update failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto wall_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - update_start)
          .count();

  for (uint64_t trace_id : collector.TraceIds()) {
    std::printf("%s", collector.RenderTree(trace_id).c_str());
  }
  std::printf(
      "update phase wall clock: %lldus (includes quiescence detection)\n",
      static_cast<long long>(wall_micros));

  if (!obs_path.empty()) {
    runtime->stats().ExportTo(obs::Registry::Global(), "net.");
    if (!obs::WriteObsJson(obs_path, obs::Registry::Global(), &collector)) {
      return 1;
    }
    std::printf("observability dump written to %s\n", obs_path.c_str());
  }
  return 0;
}
