// Full pipeline driver: load a network description, run discovery and the
// global update, optionally answer a query at a node and persist the
// materialized databases as snapshots.
//
//   ./run_update <network.p2p> [--super NODE] [--query NODE 'q(X) :- r(X)']
//                [--save-snapshots DIR] [--threads]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "src/core/session.h"
#include "src/lang/parser.h"
#include "src/net/sim_runtime.h"
#include "src/net/thread_runtime.h"
#include "src/relational/snapshot.h"

using namespace p2pdb;  // NOLINT

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: run_update <network.p2p> [--super NODE]\n"
               "                  [--query NODE 'q(X) :- r(X)']\n"
               "                  [--save-snapshots DIR] [--threads]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  std::string super_name;
  std::string query_node;
  std::string query_text;
  std::string snapshot_dir;
  bool use_threads = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--super") == 0 && i + 1 < argc) {
      super_name = argv[++i];
    } else if (std::strcmp(argv[i], "--query") == 0 && i + 2 < argc) {
      query_node = argv[++i];
      query_text = argv[++i];
    } else if (std::strcmp(argv[i], "--save-snapshots") == 0 && i + 1 < argc) {
      snapshot_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      use_threads = true;
    } else {
      return Usage();
    }
  }

  auto system = lang::ParseSystem(buf.str());
  if (!system.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  std::unique_ptr<net::Runtime> runtime;
  if (use_threads) {
    runtime = std::make_unique<net::ThreadRuntime>();
  } else {
    runtime = std::make_unique<net::SimRuntime>();
  }

  core::Session::Options options;
  if (!super_name.empty()) {
    auto id = system->NodeByName(super_name);
    if (!id.ok()) {
      std::fprintf(stderr, "unknown super-peer %s\n", super_name.c_str());
      return 1;
    }
    options.super_peer = *id;
  }
  core::Session session(*system, runtime.get(), options);

  if (Status st = session.RunDiscovery(); !st.ok()) {
    std::fprintf(stderr, "discovery failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = session.RunUpdate(); !st.ok()) {
    std::fprintf(stderr, "update failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("%s", session.CollectStatistics().c_str());

  if (!query_node.empty()) {
    auto node = system->NodeByName(query_node);
    if (!node.ok()) {
      std::fprintf(stderr, "unknown node %s\n", query_node.c_str());
      return 1;
    }
    auto query = lang::ParseQuery(query_text);
    if (!query.ok()) {
      std::fprintf(stderr, "bad query: %s\n",
                   query.status().ToString().c_str());
      return 1;
    }
    auto rows = session.peer(*node).LocalQuery(*query);
    if (!rows.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   rows.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%s at %s: %zu rows\n", query_text.c_str(),
                query_node.c_str(), rows->size());
    for (const rel::Tuple& t : *rows) {
      std::printf("  %s\n", t.ToString().c_str());
    }
  }

  if (!snapshot_dir.empty()) {
    for (size_t n = 0; n < session.peer_count(); ++n) {
      std::string path =
          snapshot_dir + "/" + session.peer(n).name() + ".p2db";
      if (Status st = rel::SaveDatabase(session.peer(n).db(), path);
          !st.ok()) {
        std::fprintf(stderr, "snapshot failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    std::printf("\nsnapshots written to %s/*.p2db\n", snapshot_dir.c_str());
  }
  return 0;
}
