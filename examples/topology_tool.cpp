// Topology tool: loads a network description (file argument, or the paper's
// running example by default), prints the rules, the table of maximal
// dependency paths, strongly connected components, and chase-termination
// diagnostics — everything a node operator would want to know before starting
// an update.
//
//   ./topology_tool [network.p2p]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/dependency.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"
#include "src/workload/scenario.h"

using namespace p2pdb;  // NOLINT

int main(int argc, char** argv) {
  Result<core::P2PSystem> system = Status::Internal("unset");
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    system = lang::ParseSystem(buf.str());
  } else {
    std::printf("(no file given; using the paper's Section 2 example)\n\n");
    system = workload::MakeRunningExample();
  }
  if (!system.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  std::printf("nodes and rules:\n%s\n", lang::PrintSystem(*system).c_str());

  core::DependencyGraph graph =
      core::DependencyGraph::FromRules(system->rules());

  std::printf("dependency edges (head -> body):\n");
  for (const core::Edge& e : graph.edges()) {
    std::printf("  %s -> %s\n", system->node(e.first).name.c_str(),
                system->node(e.second).name.c_str());
  }

  std::printf("\n%s\n", lang::FormatMaximalPathsTable(*system).c_str());

  std::printf("strongly connected components:\n");
  for (const std::set<NodeId>& scc : graph.StronglyConnectedComponents()) {
    std::printf("  {");
    bool first = true;
    for (NodeId n : scc) {
      std::printf("%s%s", first ? "" : ", ", system->node(n).name.c_str());
      first = false;
    }
    std::printf("}%s\n", scc.size() > 1 ? "  <- cyclic: needs the token ring"
                                        : "");
  }

  std::printf("\nacyclic: %s\n", graph.IsAcyclic() ? "yes" : "no");
  std::printf("weakly acyclic rule set (chase terminates without the depth "
              "bound): %s\n",
              core::RulesAreWeaklyAcyclic(system->rules()) ? "yes" : "no");
  if (!graph.edges().empty()) {
    std::printf("depth from %s: %zu\n", system->node(0).name.c_str(),
                graph.DepthFrom(0));
  }
  return 0;
}
