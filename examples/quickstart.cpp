// Quickstart: define a tiny P2P database network in the rule language, run
// topology discovery and a global update, then answer a query locally.
//
//   ./quickstart
#include <cstdio>

#include "src/core/session.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"
#include "src/net/sim_runtime.h"

using namespace p2pdb;  // NOLINT

int main() {
  // Three peers: a library catalog (source), an aggregator, and a reading
  // club that mirrors the aggregator. The club also feeds back suggestions,
  // closing a cycle between Agg and Club.
  const char* network = R"(
node Library {
  rel book(title, author);
  fact book("tractatus", "wittgenstein");
  fact book("monadology", "leibniz");
}
node Agg {
  rel holding(title, author);
}
node Club {
  rel pick(title, author);
  fact pick("ethics", "spinoza");
}
rule collect: Library.book(T, A) => Agg.holding(T, A);
rule mirror:  Agg.holding(T, A)  => Club.pick(T, A);
rule suggest: Club.pick(T, A)    => Agg.holding(T, A);
)";

  auto system = lang::ParseSystem(network);
  if (!system.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }
  std::printf("network:\n%s\n", lang::PrintSystem(*system).c_str());

  // A deterministic simulated network; swap in net::ThreadRuntime for real
  // thread-per-peer asynchrony. The super-peer must reach the whole network
  // over dependency edges (head -> body): Club -> Agg -> {Library, Club}.
  net::SimRuntime runtime;
  core::Session::Options options;
  options.super_peer = *system->NodeByName("Club");
  core::Session session(*system, &runtime, options);

  // Phase 1 (A1-A3): every peer learns its maximal dependency paths.
  if (Status st = session.RunDiscovery(); !st.ok()) {
    std::fprintf(stderr, "discovery failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("maximal dependency paths:\n%s\n",
              lang::FormatMaximalPathsTable(*system).c_str());

  // Phase 2 (A4-A6): propagate all data to the fix-point.
  if (Status st = session.RunUpdate(); !st.ok()) {
    std::fprintf(stderr, "update failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("all peers closed: %s\n", session.AllClosed() ? "yes" : "no");

  // Local query at Club — no network access needed anymore.
  auto query = lang::ParseQuery("q(T, A) :- pick(T, A)");
  if (!query.ok()) return 1;
  NodeId club = *system->NodeByName("Club");
  auto answer = session.peer(club).LocalQuery(*query);
  if (!answer.ok()) return 1;
  std::printf("\npick(T, A) at Club after the update:\n");
  for (const rel::Tuple& t : *answer) {
    std::printf("  %s\n", t.ToString().c_str());
  }

  std::printf("\nnetwork statistics:\n%s", runtime.stats().Report().c_str());
  return 0;
}
