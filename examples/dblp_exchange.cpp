// DBLP exchange: the paper's experimental scenario as an application. A tree
// of peers holds publication data under three different relational schemas
// (art / pub+wrote / rec); coordination rules translate between them; after a
// global update the root answers bibliography queries locally.
//
//   ./dblp_exchange [nodes] [records_per_node]
#include <cstdio>
#include <cstdlib>

#include "src/core/session.h"
#include "src/net/sim_runtime.h"
#include "src/relational/eval.h"
#include "src/workload/scenario.h"

using namespace p2pdb;  // NOLINT

int main(int argc, char** argv) {
  size_t nodes = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 9;
  size_t records = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 200;

  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kTree;
  options.topology.nodes = nodes;
  options.records_per_node = records;
  options.link_overlap_prob = 0.5;  // The paper's second distribution.

  auto system = workload::BuildScenario(options);
  if (!system.ok()) {
    std::fprintf(stderr, "%s\n", system.status().ToString().c_str());
    return 1;
  }
  std::printf("built %zu-node tree, %zu records/node, 3 schema styles\n",
              nodes, records);
  for (NodeId n = 0; n < nodes && n < 6; ++n) {
    std::printf("  node %u: %s style, %zu tuples\n", n,
                workload::SchemaStyleName(workload::StyleForNode(n)),
                system->node(n).db.TotalTuples());
  }

  net::SimRuntime runtime;
  core::Session session(*system, &runtime);
  if (!session.RunDiscovery().ok() || !session.RunUpdate().ok()) {
    std::fprintf(stderr, "protocol run failed\n");
    return 1;
  }
  std::printf("\nupdate complete: all closed = %s, simulated time %.1f ms\n",
              session.AllClosed() ? "yes" : "no",
              static_cast<double>(runtime.NowMicros()) / 1000.0);

  // The root is article-style: ask for titles of a given author, locally.
  rel::ConjunctiveQuery q;
  q.head_vars = {"T"};
  rel::Atom art;
  art.relation = workload::NodeRelationName(0, "art");
  art.terms = {rel::Term::Var("I"), rel::Term::Var("T"),
               rel::Term::Const(rel::Value::Str("author-7")),
               rel::Term::Var("Y")};
  q.atoms = {art};
  auto titles = session.peer(0).LocalQuery(q);
  if (!titles.ok()) return 1;
  std::printf("\nauthor-7's titles known at the root (%zu):\n",
              titles->size());
  size_t shown = 0;
  for (const rel::Tuple& t : *titles) {
    if (shown++ == 8) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  %s\n", t.at(0).ToString().c_str());
  }

  const rel::Database& root = session.peer(0).db();
  std::printf("\nroot materialized %zu tuples (started with ~%zu)\n",
              root.TotalTuples(), records);
  std::printf("\nnetwork statistics:\n%s", runtime.stats().Report().c_str());
  return 0;
}
