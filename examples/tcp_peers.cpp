// TCP peers: the paper's running example where every peer is a real network
// endpoint — one loopback listener per peer, every protocol message framed
// and sent through a TCP socket. Then churn as a connection event: one peer's
// sockets are torn down mid-life (messages die in the kernel), and it rejoins
// from its write-ahead log on a fresh port.
//
//   ./tcp_peers
#include <cstdio>
#include <filesystem>

#include "src/core/session.h"
#include "src/net/tcp_runtime.h"
#include "src/storage/storage_manager.h"
#include "src/workload/scenario.h"

using namespace p2pdb;  // NOLINT

int main() {
  auto system = workload::MakeRunningExample();
  if (!system.ok()) {
    std::fprintf(stderr, "example system: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  // Every peer gets its own endpoint; the table is what a multi-process
  // deployment would exchange out of band (one "node host:port" row each).
  std::string dir =
      (std::filesystem::temp_directory_path() / "p2pdb_tcp_peers_B").string();
  std::filesystem::remove_all(dir);
  net::TcpRuntime runtime;
  core::Session::Options options;
  options.storage = [&dir](NodeId) -> std::unique_ptr<storage::Storage> {
    storage::StorageOptions storage_options;
    storage_options.dir = dir;
    auto manager = storage::StorageManager::Open(storage_options);
    return manager.ok() ? std::move(*manager) : nullptr;
  };
  core::Session session(*system, &runtime, options);
  std::printf("endpoint table (node host:port):\n%s\n",
              runtime.EndpointTable().c_str());

  if (Status st = session.RunDiscovery(); !st.ok()) {
    std::fprintf(stderr, "discovery failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = session.RunUpdate(); !st.ok()) {
    std::fprintf(stderr, "update failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("update over sockets: all peers closed: %s\n",
              session.AllClosed() ? "yes" : "no");

  // Crash/recover peer B: attach durable storage, close its sockets, restart
  // it from checkpoint + WAL on a fresh port, and re-converge.
  NodeId victim = *system->NodeByName("B");
  if (!session.AttachStorage(victim).ok()) return 1;
  uint16_t old_port = runtime.ListenPort(victim);
  (void)session.CrashPeer(victim);
  std::printf("\ncrashed B: listener on port %u closed, dropped so far: %llu\n",
              old_port,
              static_cast<unsigned long long>(runtime.dropped_count()));

  if (!session.RestartPeer(victim).ok()) return 1;
  std::printf("restarted B from its WAL on fresh port %u\n",
              runtime.ListenPort(victim));
  if (Status st = session.Rediscover(); !st.ok()) {
    std::fprintf(stderr, "rediscovery failed: %s\nstats:\n%s\n",
                 st.ToString().c_str(), runtime.stats().Report().c_str());
    return 1;
  }
  if (Status st = session.RunUpdate(); !st.ok()) {
    std::fprintf(stderr, "rejoin update failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("rejoined: all peers closed: %s\n",
              session.AllClosed() ? "yes" : "no");

  std::printf("\nnetwork statistics:\n%s", runtime.stats().Report().c_str());
  std::filesystem::remove_all(dir);
  return session.AllClosed() ? 0 : 1;
}
