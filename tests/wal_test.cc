// WAL framing: CRC-checked records, torn-write and corrupt-tail tolerance
// (replay stops at the first damaged record; Open truncates the damage away
// before appending).
#include "src/storage/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

namespace p2pdb::storage {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/p2pdb_wal_" + name + ".log";
}

std::vector<uint8_t> Payload(std::initializer_list<int> bytes) {
  std::vector<uint8_t> out;
  for (int b : bytes) out.push_back(static_cast<uint8_t>(b));
  return out;
}

/// Truncates a file to `size` bytes (simulating a crash mid-write).
void TruncateFile(const std::string& path, long size) {
  ASSERT_EQ(::truncate(path.c_str(), size), 0);
}

/// XORs one byte of the file at `offset` (simulating media corruption).
void FlipByte(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(byte ^ 0xff, f);
  std::fclose(f);
}

long FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  return size;
}

TEST(WalTest, Crc32MatchesIeeeCheckValue) {
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(check.data()), check.size()),
            0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(WalTest, FreshLogIsEmpty) {
  std::string path = TestPath("fresh");
  std::remove(path.c_str());
  auto writer = WalWriter::Open(path, SyncMode::kNoSync);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  auto contents = ReadWalFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->records.empty());
  EXPECT_FALSE(contents->tail_corrupt);
  EXPECT_EQ(contents->valid_bytes, 8u);
  std::remove(path.c_str());
}

TEST(WalTest, AppendReadBackRoundTrip) {
  std::string path = TestPath("roundtrip");
  std::remove(path.c_str());
  auto writer = WalWriter::Open(path, SyncMode::kSync);
  ASSERT_TRUE(writer.ok());
  std::vector<std::vector<uint8_t>> payloads = {
      Payload({1, 2, 3}), Payload({}), Payload({0xff, 0x00, 0x7f, 42})};
  for (const auto& p : payloads) {
    ASSERT_TRUE((*writer)->Append(p).ok());
  }
  EXPECT_EQ((*writer)->appended_records(), 3u);
  auto contents = ReadWalFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records, payloads);
  EXPECT_FALSE(contents->tail_corrupt);
  EXPECT_EQ(contents->valid_bytes,
            static_cast<uint64_t>(FileSize(path)));
  EXPECT_EQ((*writer)->size_bytes(), contents->valid_bytes);
  std::remove(path.c_str());
}

TEST(WalTest, ReopenAppendsAfterExistingRecords) {
  std::string path = TestPath("reopen");
  std::remove(path.c_str());
  {
    auto writer = WalWriter::Open(path, SyncMode::kNoSync);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(Payload({1})).ok());
  }
  {
    auto writer = WalWriter::Open(path, SyncMode::kNoSync);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(Payload({2})).ok());
  }
  auto contents = ReadWalFile(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(contents->records[0], Payload({1}));
  EXPECT_EQ(contents->records[1], Payload({2}));
  std::remove(path.c_str());
}

TEST(WalTest, TornRecordTailIsTolerated) {
  std::string path = TestPath("torn");
  std::remove(path.c_str());
  {
    auto writer = WalWriter::Open(path, SyncMode::kNoSync);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(Payload({1, 2, 3})).ok());
    ASSERT_TRUE((*writer)->Append(Payload({4, 5, 6})).ok());
  }
  // Chop into the middle of the second record's payload.
  TruncateFile(path, FileSize(path) - 2);
  auto contents = ReadWalFile(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0], Payload({1, 2, 3}));
  EXPECT_TRUE(contents->tail_corrupt);
  std::remove(path.c_str());
}

TEST(WalTest, TornHeaderTailIsTolerated) {
  std::string path = TestPath("torn_header");
  std::remove(path.c_str());
  {
    auto writer = WalWriter::Open(path, SyncMode::kNoSync);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(Payload({9})).ok());
    ASSERT_TRUE((*writer)->Append(Payload({8})).ok());
  }
  // Leave only 3 bytes of the second record's 8-byte header.
  TruncateFile(path, 8 + 8 + 1 + 3);
  auto contents = ReadWalFile(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_TRUE(contents->tail_corrupt);
  std::remove(path.c_str());
}

TEST(WalTest, CorruptCrcStopsReplayAtDamage) {
  std::string path = TestPath("crc");
  std::remove(path.c_str());
  {
    auto writer = WalWriter::Open(path, SyncMode::kNoSync);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(Payload({1, 2, 3})).ok());
    ASSERT_TRUE((*writer)->Append(Payload({4, 5, 6})).ok());
    ASSERT_TRUE((*writer)->Append(Payload({7, 8, 9})).ok());
  }
  // Flip a byte inside the second record's stored CRC
  // (offset: file header 8, record 1 is 8+3 bytes, then 4 length bytes).
  FlipByte(path, 8 + 11 + 4);
  auto contents = ReadWalFile(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0], Payload({1, 2, 3}));
  EXPECT_TRUE(contents->tail_corrupt);

  // Flipping payload bytes (not the CRC) is detected the same way.
  std::remove(path.c_str());
  {
    auto writer = WalWriter::Open(path, SyncMode::kNoSync);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(Payload({1, 2, 3})).ok());
    ASSERT_TRUE((*writer)->Append(Payload({4, 5, 6})).ok());
  }
  FlipByte(path, 8 + 11 + 8);  // First payload byte of record 2.
  contents = ReadWalFile(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_TRUE(contents->tail_corrupt);
  std::remove(path.c_str());
}

TEST(WalTest, OpenTruncatesTornTailBeforeAppending) {
  std::string path = TestPath("open_truncates");
  std::remove(path.c_str());
  {
    auto writer = WalWriter::Open(path, SyncMode::kNoSync);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(Payload({1})).ok());
    ASSERT_TRUE((*writer)->Append(Payload({2})).ok());
  }
  TruncateFile(path, FileSize(path) - 1);  // Tear record 2.
  {
    auto writer = WalWriter::Open(path, SyncMode::kNoSync);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(Payload({3})).ok());
  }
  auto contents = ReadWalFile(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(contents->records[0], Payload({1}));
  EXPECT_EQ(contents->records[1], Payload({3}));
  EXPECT_FALSE(contents->tail_corrupt);
  std::remove(path.c_str());
}

TEST(WalTest, ResetEmptiesTheLog) {
  std::string path = TestPath("reset");
  std::remove(path.c_str());
  auto writer = WalWriter::Open(path, SyncMode::kNoSync);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(Payload({1, 2})).ok());
  ASSERT_TRUE((*writer)->Reset().ok());
  EXPECT_EQ((*writer)->size_bytes(), 8u);
  ASSERT_TRUE((*writer)->Append(Payload({3})).ok());
  auto contents = ReadWalFile(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0], Payload({3}));
  std::remove(path.c_str());
}

TEST(WalTest, TornHeaderStartsFresh) {
  // A crash during WAL creation (or Reset) can leave fewer bytes than the
  // header; that must read as an empty log and Open must rewrite it, not
  // brick the peer's storage.
  std::string path = TestPath("torn_file_header");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputc('P', f);
  std::fputc('2', f);
  std::fclose(f);

  auto contents = ReadWalFile(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(contents->records.empty());
  EXPECT_TRUE(contents->tail_corrupt);
  EXPECT_EQ(contents->valid_bytes, 0u);

  auto writer = WalWriter::Open(path, SyncMode::kNoSync);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Append(Payload({5})).ok());
  contents = ReadWalFile(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0], Payload({5}));
  EXPECT_FALSE(contents->tail_corrupt);
  std::remove(path.c_str());
}

TEST(WalTest, SyncModeFsyncsEveryAppend) {
  std::string path = TestPath("sync_each");
  std::remove(path.c_str());
  auto writer = WalWriter::Open(path, SyncMode::kSync);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*writer)->Append(Payload({i})).ok());
  }
  EXPECT_EQ((*writer)->syncs_performed(), 5u);
  EXPECT_EQ((*writer)->pending_appends(), 0u);
  std::remove(path.c_str());
}

TEST(WalTest, GroupCommitCoalescesFsyncs) {
  std::string path = TestPath("group");
  std::remove(path.c_str());
  GroupCommitOptions group;
  group.window = std::chrono::seconds(60);  // Count-triggered only.
  group.max_pending = 10;
  auto writer = WalWriter::Open(path, SyncMode::kSync, group);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE((*writer)->Append(Payload({i})).ok());
  }
  // 25 appends = two full batches of 10 plus 5 pending.
  EXPECT_EQ((*writer)->syncs_performed(), 2u);
  EXPECT_EQ((*writer)->pending_appends(), 5u);
  ASSERT_TRUE((*writer)->Sync().ok());  // Closes the open window.
  EXPECT_EQ((*writer)->syncs_performed(), 3u);
  EXPECT_EQ((*writer)->pending_appends(), 0u);

  // Every record is readable regardless of which batch carried it.
  auto contents = ReadWalFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records.size(), 25u);
  std::remove(path.c_str());
}

TEST(WalTest, GroupCommitWindowExpiryTriggersSync) {
  std::string path = TestPath("group_window");
  std::remove(path.c_str());
  GroupCommitOptions group;
  group.window = std::chrono::microseconds(1);  // Expires between appends.
  group.max_pending = 1'000'000;
  auto writer = WalWriter::Open(path, SyncMode::kSync, group);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(Payload({1})).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE((*writer)->Append(Payload({2})).ok());
  EXPECT_GE((*writer)->syncs_performed(), 1u);
  std::remove(path.c_str());
}

TEST(WalTest, NoSyncModeNeverFsyncs) {
  std::string path = TestPath("nosync");
  std::remove(path.c_str());
  auto writer = WalWriter::Open(path, SyncMode::kNoSync);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*writer)->Append(Payload({i})).ok());
  }
  EXPECT_EQ((*writer)->syncs_performed(), 0u);
  std::remove(path.c_str());
}

TEST(WalTest, MissingFileIsNotFound) {
  auto contents = ReadWalFile(::testing::TempDir() + "/p2pdb_wal_nope.log");
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kNotFound);
}

TEST(WalTest, ForeignFileIsRejected) {
  std::string path = TestPath("foreign");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a WAL at all", f);
  std::fclose(f);
  EXPECT_FALSE(ReadWalFile(path).ok());
  // Open must refuse too instead of appending to a foreign file.
  EXPECT_FALSE(WalWriter::Open(path, SyncMode::kNoSync).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace p2pdb::storage
