// Domain relations (the paper's named future work): constant translation
// across coordination rules.
#include "src/core/domain_map.h"

#include <gtest/gtest.h>

#include "src/core/acyclic_pull.h"
#include "src/core/global_fixpoint.h"
#include "src/core/session.h"
#include "src/lang/parser.h"
#include "src/net/sim_runtime.h"
#include "src/relational/null_iso.h"

namespace p2pdb::core {
namespace {

rel::Value S(const char* s) { return rel::Value::Str(s); }

TEST(DomainMapTest, ApplyIdentityAndMapping) {
  DomainMap map;
  map.Add(S("de"), S("germany"));
  EXPECT_EQ(map.Apply(S("de")), S("germany"));
  EXPECT_EQ(map.Apply(S("fr")), S("fr"));       // Unmapped: identity.
  EXPECT_EQ(map.Apply(rel::Value::Int(3)), rel::Value::Int(3));
  rel::Value null = rel::Value::Null(9);
  EXPECT_EQ(map.Apply(null), null);             // Nulls never remap.
}

TEST(DomainMapTest, TupleAndSetMapping) {
  DomainMap map;
  map.Add(S("a"), S("b"));
  rel::Tuple t({S("a"), S("x")});
  EXPECT_EQ(map.ApplyToTuple(t), rel::Tuple({S("b"), S("x")}));
  // Images may collide: the set shrinks.
  std::set<rel::Tuple> in{rel::Tuple({S("a")}), rel::Tuple({S("b")})};
  EXPECT_EQ(map.ApplyToSet(in).size(), 1u);
}

TEST(DomainMapTest, Composition) {
  DomainMap first, second;
  first.Add(S("a"), S("b"));
  second.Add(S("b"), S("c"));
  second.Add(S("z"), S("w"));
  DomainMap composed = first.ComposeWith(second);
  EXPECT_EQ(composed.Apply(S("a")), S("c"));
  EXPECT_EQ(composed.Apply(S("z")), S("w"));  // Inherited entry.
}

TEST(DomainMapTest, CodecRoundTrip) {
  DomainMap map;
  map.Add(S("x"), S("y"));
  map.Add(rel::Value::Int(1), rel::Value::Int(2));
  Writer w;
  map.Encode(&w);
  Reader r(w.bytes());
  auto back = DomainMap::Decode(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == map);
}

// A source whose country codes differ from the consumer's vocabulary: the
// rule's domain relation translates them in flight.
Result<P2PSystem> TranslationSystem() {
  auto system = lang::ParseSystem(R"(
node Consumer { rel city(name, country); }
node Source {
  rel town(name, cc);
  fact town("berlin", "de");
  fact town("paris", "fr");
  fact town("lyon", "fr");
}
rule import: Source.town(N, C) => Consumer.city(N, C);
)");
  if (!system.ok()) return system.status();
  // Attach the domain relation to the rule.
  P2PSystem out = std::move(*system);
  const_cast<CoordinationRule&>(out.rules()[0]).domain_map.Add(
      S("de"), S("germany"));
  const_cast<CoordinationRule&>(out.rules()[0]).domain_map.Add(
      S("fr"), S("france"));
  return out;
}

TEST(DomainMapTest, DistributedUpdateTranslatesConstants) {
  auto system = TranslationSystem();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());
  const rel::Relation* city = *session.peer(0).db().Get("city");
  EXPECT_EQ(city->size(), 3u);
  EXPECT_TRUE(city->Contains(rel::Tuple({S("berlin"), S("germany")})));
  EXPECT_TRUE(city->Contains(rel::Tuple({S("paris"), S("france")})));
  EXPECT_FALSE(city->Contains(rel::Tuple({S("berlin"), S("de")})));
}

TEST(DomainMapTest, BaselinesAgreeOnTranslation) {
  auto system = TranslationSystem();
  ASSERT_TRUE(system.ok());

  auto global = ComputeGlobalFixpoint(*system, rel::ChaseOptions{});
  ASSERT_TRUE(global.ok()) << global.status().ToString();
  EXPECT_TRUE((*global->node_dbs[0].Get("city"))
                  ->Contains(rel::Tuple({S("berlin"), S("germany")})));

  auto pull = RunAcyclicPull(*system, rel::ChaseOptions{});
  ASSERT_TRUE(pull.ok());
  EXPECT_TRUE((*pull->node_dbs[0].Get("city"))
                  ->Contains(rel::Tuple({S("paris"), S("france")})));

  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  for (NodeId n = 0; n < 2; ++n) {
    EXPECT_TRUE(rel::DatabasesCertainEqual(session.peer(n).db(),
                                           global->node_dbs[n]))
        << "node " << n;
  }
}

TEST(DomainMapTest, RuleCodecCarriesDomainMap) {
  auto system = TranslationSystem();
  ASSERT_TRUE(system.ok());
  Writer w;
  wire::EncodeRule(system->rules()[0], &w);
  Reader r(w.bytes());
  auto back = wire::DecodeRule(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->domain_map == system->rules()[0].domain_map);
}

}  // namespace
}  // namespace p2pdb::core
