// Property test: the optimized evaluator (greedy ordering + column indexes)
// must agree with a brute-force reference on randomized databases and
// conjunctive queries.
#include <gtest/gtest.h>

#include <functional>

#include "src/relational/eval.h"
#include "src/util/rng.h"

namespace p2pdb::rel {
namespace {

// Reference: enumerate every assignment of tuples to atoms, check
// consistency and built-ins by direct unification, no ordering tricks.
std::set<Tuple> ReferenceEvaluate(const Database& db,
                                  const ConjunctiveQuery& query) {
  std::set<Tuple> results;
  std::vector<const Relation*> relations;
  for (const Atom& a : query.atoms) {
    auto r = db.Get(a.relation);
    if (!r.ok()) return results;  // Empty.
    relations.push_back(*r);
  }
  std::vector<const Tuple*> chosen(query.atoms.size(), nullptr);
  std::function<void(size_t)> enumerate = [&](size_t depth) {
    if (depth == query.atoms.size()) {
      Binding binding;
      for (size_t i = 0; i < query.atoms.size(); ++i) {
        if (!UnifyAtomWithTuple(query.atoms[i], *chosen[i], &binding)) return;
      }
      for (const Builtin& b : query.builtins) {
        auto value = [&](const Term& t) {
          return t.is_var() ? binding.at(t.var) : t.constant;
        };
        if (!EvalBuiltin(b.op, value(b.lhs), value(b.rhs))) return;
      }
      std::vector<Value> row;
      for (const std::string& v : query.head_vars) row.push_back(binding.at(v));
      results.insert(Tuple(std::move(row)));
      return;
    }
    for (const Tuple& t : relations[depth]->tuples()) {
      chosen[depth] = &t;
      enumerate(depth + 1);
    }
  };
  enumerate(0);
  return results;
}

struct RandomCase {
  uint64_t seed;
  friend std::ostream& operator<<(std::ostream& os, const RandomCase& c) {
    return os << "seed" << c.seed;
  }
};

class EvalPropertySweep : public ::testing::TestWithParam<RandomCase> {};

TEST_P(EvalPropertySweep, MatchesBruteForceReference) {
  Rng rng(GetParam().seed);
  // Random database: 2-3 relations of arity 1-3, small integer domain so
  // joins actually hit.
  Database db;
  size_t relation_count = 2 + rng.NextBelow(2);
  std::vector<std::string> names;
  std::vector<size_t> arities;
  for (size_t r = 0; r < relation_count; ++r) {
    std::string name = "r" + std::to_string(r);
    size_t arity = 1 + rng.NextBelow(3);
    std::vector<std::string> attrs;
    for (size_t i = 0; i < arity; ++i) attrs.push_back("c" + std::to_string(i));
    ASSERT_TRUE(db.CreateRelation(RelationSchema(name, attrs)).ok());
    size_t rows = rng.NextBelow(12);
    for (size_t k = 0; k < rows; ++k) {
      std::vector<Value> row;
      for (size_t i = 0; i < arity; ++i) {
        row.push_back(Value::Int(static_cast<int64_t>(rng.NextBelow(4))));
      }
      (void)db.Insert(name, Tuple(std::move(row))).status();
    }
    names.push_back(name);
    arities.push_back(arity);
  }

  // Random query: 1-3 atoms over a pool of 4 variables, optional builtin.
  const char* vars[] = {"X", "Y", "Z", "W"};
  for (int trial = 0; trial < 10; ++trial) {
    ConjunctiveQuery q;
    std::set<std::string> used_vars;
    size_t atom_count = 1 + rng.NextBelow(3);
    for (size_t a = 0; a < atom_count; ++a) {
      size_t r = rng.NextBelow(names.size());
      Atom atom;
      atom.relation = names[r];
      for (size_t i = 0; i < arities[r]; ++i) {
        if (rng.NextBool(0.2)) {
          atom.terms.push_back(
              Term::Const(Value::Int(static_cast<int64_t>(rng.NextBelow(4)))));
        } else {
          const char* v = vars[rng.NextBelow(4)];
          atom.terms.push_back(Term::Var(v));
          used_vars.insert(v);
        }
      }
      q.atoms.push_back(std::move(atom));
    }
    if (used_vars.empty()) continue;
    std::vector<std::string> var_list(used_vars.begin(), used_vars.end());
    // Head: random non-empty subset of used variables.
    for (const std::string& v : var_list) {
      if (rng.NextBool(0.6)) q.head_vars.push_back(v);
    }
    if (q.head_vars.empty()) q.head_vars.push_back(var_list[0]);
    // Optional builtin over used variables.
    if (rng.NextBool(0.5) && var_list.size() >= 2) {
      Builtin b;
      b.op = static_cast<BuiltinOp>(rng.NextBelow(6));
      b.lhs = Term::Var(var_list[rng.NextBelow(var_list.size())]);
      b.rhs = rng.NextBool(0.5)
                  ? Term::Var(var_list[rng.NextBelow(var_list.size())])
                  : Term::Const(
                        Value::Int(static_cast<int64_t>(rng.NextBelow(4))));
      q.builtins.push_back(std::move(b));
    }

    auto fast = EvaluateQuery(db, q);
    ASSERT_TRUE(fast.ok()) << q.ToString();
    std::set<Tuple> reference = ReferenceEvaluate(db, q);
    EXPECT_EQ(*fast, reference) << q.ToString() << "\n" << db.ToString();
  }
}

std::vector<RandomCase> Seeds() {
  std::vector<RandomCase> out;
  for (uint64_t s = 1; s <= 25; ++s) out.push_back(RandomCase{s});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Randomized, EvalPropertySweep,
                         ::testing::ValuesIn(Seeds()));

}  // namespace
}  // namespace p2pdb::rel
