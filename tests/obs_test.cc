// Observability layer: metrics registry semantics (exact counts under
// concurrent recording — the TSan job runs this file), histogram bucketing
// and quantiles, IoCounters queue-depth monotonicity under races, the
// NetStats::Reset contract (io() counters reset too), and trace collection —
// span DAG reconstruction, fixpoint latency, critical path, sampling.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/net/stats.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace p2pdb {
namespace {

TEST(CounterTest, CountsExactlyUnderConcurrency) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), uint64_t{kThreads} * kAddsPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, RaiseToKeepsMaxUnderConcurrency) {
  obs::Gauge gauge;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int i = 0; i < 10'000; ++i) gauge.RaiseTo(t * 10'000 + i);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(gauge.Value(), (kThreads - 1) * 10'000 + 9'999);
}

TEST(HistogramTest, BucketsByBitWidth) {
  obs::Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(300);   // Bucket 9: [256, 511].
  h.Record(1000);  // Bucket 10: [512, 1023].
  obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 1301u);
  EXPECT_EQ(snap.max, 1000u);
  // Quantiles report bucket upper bounds (upper-median convention: rank
  // floor(q*count)), clamped to the true max.
  EXPECT_EQ(snap.p50, 511u);  // 300 lands in bucket [256, 511].
  EXPECT_EQ(snap.p99, 1000u);
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
  EXPECT_LE(snap.p99, snap.max);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
}

TEST(HistogramTest, ExactCountAndSumUnderConcurrency) {
  obs::Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kRecordsPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (uint64_t i = 0; i < kRecordsPerThread; ++i) h.Record(i % 1024);
    });
  }
  for (std::thread& t : threads) t.join();
  obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kRecordsPerThread);
  uint64_t per_thread_sum = 0;
  for (uint64_t i = 0; i < kRecordsPerThread; ++i) per_thread_sum += i % 1024;
  EXPECT_EQ(snap.sum, kThreads * per_thread_sum);
  EXPECT_EQ(snap.max, 1023u);
}

TEST(RegistryTest, PointersAreStableAndSnapshotsComplete) {
  obs::Registry registry;
  obs::Counter* c = registry.GetCounter("test.counter");
  EXPECT_EQ(c, registry.GetCounter("test.counter"));
  c->Add(7);
  registry.GetGauge("test.gauge")->Set(-3);
  registry.GetHistogram("test.hist")->Record(42);

  obs::Registry::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("test.counter"), 7u);
  EXPECT_EQ(snap.gauges.at("test.gauge"), -3);
  EXPECT_EQ(snap.histograms.at("test.hist").count, 1u);

  std::string json = registry.ReportJson();
  EXPECT_NE(json.find("\"test.counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test.hist\""), std::string::npos);

  registry.Reset();  // Zeroes in place: the cached pointer stays usable.
  EXPECT_EQ(c->Value(), 0u);
  c->Add(1);
  EXPECT_EQ(registry.TakeSnapshot().counters.at("test.counter"), 1u);
}

TEST(RegistryTest, ConcurrentLookupAndRecordIsSafe) {
  obs::Registry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 2'000; ++i) {
        registry.GetCounter("shared.counter")->Increment();
        registry.GetHistogram("shared.hist")->Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared.counter")->Value(),
            uint64_t{kThreads} * 2'000);
  EXPECT_EQ(registry.GetHistogram("shared.hist")->Count(),
            uint64_t{kThreads} * 2'000);
}

TEST(IoCountersTest, RecordQueueDepthIsMonotoneUnderRaces) {
  net::IoCounters counters;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counters, t] {
      // Interleaved rising and falling depths: the HWM must end at the
      // global maximum no matter how the CAS races resolve.
      for (int i = 0; i < 10'000; ++i) {
        counters.RecordQueueDepth(static_cast<uint64_t>((i * 7919) % 50'000));
      }
      counters.RecordQueueDepth(static_cast<uint64_t>(100'000 + t));
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counters.send_queue_hwm_bytes.load(),
            uint64_t{100'000 + kThreads - 1});
}

TEST(NetStatsTest, ResetAlsoResetsIoCounters) {
  // Pins the contract bench sweeps rely on: one Reset() call clears the
  // per-type counters AND the transport io() counters, so no experiment
  // bleeds into the next.
  net::NetStats stats;
  net::Message msg;
  msg.type = net::MessageType::kQueryAnswer;
  msg.from = 1;
  msg.to = 2;
  stats.RecordSend(msg);
  stats.io().writev_calls.fetch_add(5);
  stats.io().RecordQueueDepth(999);
  ASSERT_GT(stats.total_messages(), 0u);

  stats.Reset();
  EXPECT_EQ(stats.total_messages(), 0u);
  EXPECT_EQ(stats.total_bytes(), 0u);
  EXPECT_EQ(stats.io().writev_calls.load(), 0u);
  EXPECT_EQ(stats.io().send_queue_hwm_bytes.load(), 0u);
}

TEST(NetStatsTest, ExportToFoldsCountersIntoRegistry) {
  net::NetStats stats;
  net::Message msg;
  msg.type = net::MessageType::kToken;
  msg.from = 0;
  msg.to = 1;
  stats.RecordSend(msg);
  stats.io().inline_dispatches.fetch_add(3);
  stats.io().queued_dispatches.fetch_add(1);
  stats.io().RecordQueueDepth(4096);

  obs::Registry registry;
  stats.ExportTo(registry, "net.");
  obs::Registry::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("net.messages"), 1u);
  EXPECT_EQ(snap.counters.at("net.type.Token.messages"), 1u);
  EXPECT_EQ(snap.gauges.at("net.io.inline_dispatch_ratio_x1000"), 750);
  EXPECT_EQ(snap.gauges.at("net.io.send_queue_hwm_bytes"), 4096);
}

obs::TraceSpan MakeSpan(uint64_t trace, uint64_t span, uint64_t parent,
                        uint32_t hop, NodeId node, uint64_t recv,
                        uint64_t end) {
  obs::TraceSpan s;
  s.trace_id = trace;
  s.span_id = span;
  s.parent_span = parent;
  s.hop = hop;
  s.node = node;
  s.recv_micros = recv;
  s.end_micros = end;
  s.bytes = 100;
  return s;
}

TEST(TraceCollectorTest, AnalyzeReportsFixpointAndCriticalPath) {
  obs::TraceCollector collector;
  // Root at node 0 fans out to nodes 1 and 2; node 2 forwards to node 3,
  // which finishes last — the critical path is 0 -> 2 -> 3.
  collector.Record(MakeSpan(1, 10, 0, 0, 0, 1'000, 1'100));
  collector.Record(MakeSpan(1, 11, 10, 1, 1, 1'200, 1'300));
  collector.Record(MakeSpan(1, 12, 10, 1, 2, 1'250, 1'400));
  collector.Record(MakeSpan(1, 13, 12, 2, 3, 1'500, 1'900));

  obs::TraceReport report = collector.Analyze(1);
  EXPECT_EQ(report.span_count, 4u);
  EXPECT_EQ(report.max_hop, 2u);
  EXPECT_EQ(report.total_bytes, 400u);
  EXPECT_EQ(report.fixpoint_micros, 900u);  // 1'900 end - 1'000 root recv.
  ASSERT_EQ(report.critical_path.size(), 3u);
  EXPECT_EQ(report.critical_path[0].node, 0u);
  EXPECT_EQ(report.critical_path[1].node, 2u);
  EXPECT_EQ(report.critical_path[2].node, 3u);
  ASSERT_EQ(report.per_hop.size(), 3u);
  EXPECT_EQ(report.per_hop[1].spans, 2u);

  std::string tree = collector.RenderTree(1);
  EXPECT_NE(tree.find("fixpoint 900us"), std::string::npos);
  EXPECT_NE(tree.find("node 3"), std::string::npos);
  EXPECT_NE(tree.find("critical path:"), std::string::npos);

  std::string json = collector.ReportJson();
  EXPECT_NE(json.find("\"fixpoint_micros\": 900"), std::string::npos);
}

TEST(TraceCollectorTest, SamplingTracesOneInN) {
  obs::TraceCollector collector;
  collector.set_sample_every(4);
  int sampled = 0;
  for (int i = 0; i < 16; ++i) {
    if (collector.SampleRoot()) ++sampled;
  }
  EXPECT_EQ(sampled, 4);

  collector.set_sample_every(0);  // Disabled: nothing is sampled.
  EXPECT_FALSE(collector.SampleRoot());
}

TEST(TraceCollectorTest, UntracedSpansAreIgnoredAndClearWorks) {
  obs::TraceCollector collector;
  collector.Record(obs::TraceSpan{});  // trace_id 0: not a traced span.
  EXPECT_EQ(collector.TotalSpans(), 0u);
  collector.Record(MakeSpan(7, 1, 0, 0, 0, 0, 10));
  EXPECT_EQ(collector.TotalSpans(), 1u);
  EXPECT_EQ(collector.TraceIds(), std::vector<uint64_t>{7});
  collector.Clear();
  EXPECT_EQ(collector.TotalSpans(), 0u);
}

}  // namespace
}  // namespace p2pdb
