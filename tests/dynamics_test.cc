// Section 4: dynamic networks. addLink/deleteLink during the run, Definition 9
// sound/complete envelope, Theorem 2 termination, Theorem 3 separation.
#include "src/core/dynamics.h"

#include <gtest/gtest.h>

#include "src/core/global_fixpoint.h"
#include "src/core/session.h"
#include "src/lang/parser.h"
#include "src/net/sim_runtime.h"
#include "src/relational/null_iso.h"
#include "src/util/log_capture.h"
#include "src/workload/scenario.h"

namespace p2pdb::core {
namespace {

rel::Value S(const char* s) { return rel::Value::Str(s); }

// A chain A <- B <- C (A pulls from B pulls from C) with data at C, plus a
// detached node D with data.
Result<P2PSystem> ChainWithSpare() {
  return lang::ParseSystem(R"(
node A { rel a(x); }
node B { rel b(x); }
node C { rel c(x); fact c("c1"); fact c("c2"); }
node D { rel d(x); fact d("d1"); }
rule r1: B.b(X) => A.a(X);
rule r2: C.c(X) => B.b(X);
)");
}

CoordinationRule RuleDFromSystem(const P2PSystem& system) {
  // addLink: A additionally pulls from D (rule r3: D.d(X) => A.a(X)).
  CoordinationRule rule;
  rule.id = "r3";
  rule.head_node = *system.NodeByName("A");
  rel::Atom head;
  head.relation = "a";
  head.terms = {rel::Term::Var("X")};
  rule.head_atoms = {head};
  CoordinationRule::BodyPart part;
  part.node = *system.NodeByName("D");
  rel::Atom body;
  body.relation = "d";
  body.terms = {rel::Term::Var("X")};
  part.atoms = {body};
  rule.body = {part};
  return rule;
}

TEST(DynamicsTest, AddLinkDuringRunDeliversNewData) {
  auto system = ChainWithSpare();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  // Schedule the addLink to arrive mid-update (latency is ~1ms per hop).
  AtomicChange add = AtomicChange::Add(1500, RuleDFromSystem(*system));
  session.ScheduleChange(add);
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());
  const rel::Relation* a = *session.peer(0).db().Get("a");
  EXPECT_TRUE(a->Contains(rel::Tuple({S("d1")})));  // New link's data arrived.
  EXPECT_TRUE(a->Contains(rel::Tuple({S("c1")})));  // Old data kept.
}

TEST(DynamicsTest, AddLinkReopensClosedNode) {
  auto system = ChainWithSpare();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());
  // Network is quiescent and closed; now add the link.
  AtomicChange add = AtomicChange::Add(rt.NowMicros() + 10,
                                       RuleDFromSystem(*system));
  session.ScheduleChange(add);
  ASSERT_TRUE(rt.Run().ok());
  ASSERT_TRUE(session.AllClosed());  // Re-closed after the reopen wave.
  EXPECT_GT(session.peer(0).update().stats().reopens, 0u);
  EXPECT_TRUE(
      (*session.peer(0).db().Get("a"))->Contains(rel::Tuple({S("d1")})));
}

TEST(DynamicsTest, DeleteLinkKeepsDataAndCloses) {
  auto system = ChainWithSpare();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  // Delete r2 (B <- C) shortly after the update starts.
  session.ScheduleChange(
      AtomicChange::Delete(500, *system->NodeByName("B"), "r2"));
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());
  // Data already moved is never retracted (monotonicity).
  const rel::Relation* b = *session.peer(1).db().Get("b");
  EXPECT_LE(b->size(), 2u);
}

TEST(DynamicsTest, DeleteLinkResumesPausedTokenRing) {
  // A and B form a non-trivial SCC; B additionally pulls from X, which is
  // crashed, so B can never become externally ready and the ring leader
  // pauses after repeated identical rounds (it would otherwise pass tokens
  // forever). A mid-run deleteLink of the dead rule flips B to ready with no
  // intra-SCC traffic the leader could observe — B's readiness poke must
  // wake the paused ring, or the session never closes.
  auto system = lang::ParseSystem(R"(
node A { rel a(x); fact a("a1"); }
node B { rel b(x); }
node X { rel w(x); fact w("x1"); }
rule ra: B.b(X) => A.a(X);
rule rb: A.a(X) => B.b(X);
rule rx: X.w(X) => B.b(X);
)");
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ScopedLogCapture quiet;  // Drops to the crashed peer are expected.
  ASSERT_TRUE(session.CrashPeer(*system->NodeByName("X")).ok());
  session.ScheduleChange(
      AtomicChange::Delete(50'000, *system->NodeByName("B"), "rx"));
  ASSERT_TRUE(session.RunUpdate().ok());
  EXPECT_TRUE(session.AllClosed());
  EXPECT_TRUE(
      (*session.peer(1).db().Get("b"))->Contains(rel::Tuple({S("a1")})));
}

TEST(DynamicsTest, FinalStateWithinDefinition9Envelope) {
  auto system = ChainWithSpare();
  ASSERT_TRUE(system.ok());
  ChangeScript changes = {
      AtomicChange::Add(1200, RuleDFromSystem(*system)),
      AtomicChange::Delete(1800, *system->NodeByName("B"), "r2"),
  };
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  for (const AtomicChange& c : changes) session.ScheduleChange(c);
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());

  auto envelope = ComputeEnvelope(*system, changes, rel::ChaseOptions{});
  ASSERT_TRUE(envelope.ok()) << envelope.status().ToString();
  EXPECT_TRUE(WithinEnvelope(session.SnapshotDatabases(), *envelope));
}

TEST(DynamicsTest, EnvelopeBoundsAreOrdered) {
  auto system = ChainWithSpare();
  ASSERT_TRUE(system.ok());
  ChangeScript changes = {
      AtomicChange::Add(0, RuleDFromSystem(*system)),
      AtomicChange::Delete(0, *system->NodeByName("B"), "r2"),
  };
  auto envelope = ComputeEnvelope(*system, changes, rel::ChaseOptions{});
  ASSERT_TRUE(envelope.ok());
  // lower ⊆ upper by construction.
  for (size_t n = 0; n < envelope->lower.size(); ++n) {
    EXPECT_TRUE(rel::DatabaseHomomorphicallyContained(envelope->lower[n],
                                                      envelope->upper[n]));
  }
}

TEST(DynamicsTest, ApplyChangesRespectsFlags) {
  auto system = ChainWithSpare();
  ASSERT_TRUE(system.ok());
  ChangeScript changes = {
      AtomicChange::Add(0, RuleDFromSystem(*system)),
      AtomicChange::Delete(0, *system->NodeByName("B"), "r2"),
  };
  auto adds_only = ApplyChanges(*system, changes, true, false);
  ASSERT_TRUE(adds_only.ok());
  EXPECT_EQ(adds_only->rules().size(), 3u);
  auto deletes_only = ApplyChanges(*system, changes, false, true);
  ASSERT_TRUE(deletes_only.ok());
  EXPECT_EQ(deletes_only->rules().size(), 1u);
}

TEST(DynamicsTest, SeparationDefinition10UnderChange) {
  auto system = ChainWithSpare();
  ASSERT_TRUE(system.ok());
  NodeId a = *system->NodeByName("A");
  NodeId b = *system->NodeByName("B");
  NodeId c = *system->NodeByName("C");
  NodeId d = *system->NodeByName("D");

  // Without changes, {A,B,C} is separated from {D}.
  EXPECT_TRUE(IsSeparatedUnderChange(*system, {}, {a, b, c}, {d}));
  // The addLink A<-D breaks the separation.
  ChangeScript with_add = {AtomicChange::Add(0, RuleDFromSystem(*system))};
  EXPECT_FALSE(IsSeparatedUnderChange(*system, with_add, {a, b, c}, {d}));
  // D stays separated from the chain either way (no outgoing edges).
  EXPECT_TRUE(IsSeparatedUnderChange(*system, with_add, {d}, {b, c}));
}

TEST(DynamicsTest, SeparatedSubnetClosesDespiteChurnElsewhere) {
  // Two disjoint chains: A<-B (with data at B) and X<-Y. Churn hits X<-Y
  // repeatedly; {A,B} is separated from {X,Y} w.r.t. the change script and
  // must close regardless (Theorem 3).
  auto system = lang::ParseSystem(R"(
node A { rel a(v); }
node B { rel b(v); fact b("b1"); }
node X { rel x(v); }
node Y { rel y(v); fact y("y1"); }
rule ra: B.b(V) => A.a(V);
rule rx: Y.y(V) => X.x(V);
)");
  ASSERT_TRUE(system.ok());
  NodeId x = *system->NodeByName("X");

  // Churn: repeatedly delete and re-add rule rx.
  auto rx = **system->RuleById("rx");
  ChangeScript churn;
  for (int i = 0; i < 5; ++i) {
    churn.push_back(
        AtomicChange::Delete(1000 + i * 2000, x, "rx"));
    CoordinationRule readd = rx;
    readd.id = "rx";  // Same id re-added.
    churn.push_back(AtomicChange::Add(2000 + i * 2000, readd));
  }
  EXPECT_TRUE(IsSeparatedUnderChange(
      *system, churn, {*system->NodeByName("A"), *system->NodeByName("B")},
      {x, *system->NodeByName("Y")}));

  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  for (const AtomicChange& c : churn) session.ScheduleChange(c);
  ASSERT_TRUE(session.RunUpdate().ok());
  // The separated pair closed with the right data.
  EXPECT_EQ(session.peer(0).update().state(), UpdateEngine::State::kClosed);
  EXPECT_TRUE(
      (*session.peer(0).db().Get("a"))->Contains(rel::Tuple({S("b1")})));
}

TEST(DynamicsTest, AddRuleBeforeSessionIsPickedUpAtStart) {
  auto system = ChainWithSpare();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  // Change delivered before any update session exists.
  session.ScheduleChange(AtomicChange::Add(10, RuleDFromSystem(*system)));
  ASSERT_TRUE(rt.Run().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());
  EXPECT_TRUE(
      (*session.peer(0).db().Get("a"))->Contains(rel::Tuple({S("d1")})));
}

TEST(DynamicsTest, DuplicateAddRuleNotificationIgnored) {
  auto system = ChainWithSpare();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  session.ScheduleChange(AtomicChange::Add(10, RuleDFromSystem(*system)));
  session.ScheduleChange(AtomicChange::Add(20, RuleDFromSystem(*system)));
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());
  EXPECT_EQ(session.peer(0).rules().size(), 2u);  // r1 and r3 once.
}

}  // namespace
}  // namespace p2pdb::core
