// TcpRuntime: every message crosses a real loopback socket. Covers raw
// delivery and reconnect semantics, kernel-sourced dropped-message accounting
// (UnregisterPeer is a socket close, not a flag), cross-runtime protocol
// parity (Sim / Thread / Tcp reach null-isomorphic fixpoints on the paper's
// running example), and PR 2's crash/restart churn script driven over TCP.
#include "src/net/tcp_runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "src/core/session.h"
#include "src/net/sim_runtime.h"
#include "src/net/thread_runtime.h"
#include "src/relational/null_iso.h"
#include "src/storage/storage_manager.h"
#include "src/util/log_capture.h"
#include "src/workload/scenario.h"

namespace p2pdb::net {
namespace {

class CountingPeer : public PeerHandler {
 public:
  CountingPeer(NodeId id, Runtime* rt, int replies_left)
      : id_(id), runtime_(rt), replies_left_(replies_left) {}

  void OnMessage(const Message& msg) override {
    ++received_;
    if (replies_left_ > 0) {
      --replies_left_;
      Message reply;
      reply.type = msg.type;
      reply.from = id_;
      reply.to = msg.from;
      reply.payload = msg.payload;
      runtime_->Send(reply);
    }
  }

  int received() const { return received_.load(); }

 private:
  NodeId id_;
  Runtime* runtime_;
  int replies_left_;
  std::atomic<int> received_{0};
};

Message Make(NodeId from, NodeId to, std::vector<uint8_t> payload = {1, 2, 3}) {
  Message m;
  m.type = MessageType::kUpdateStart;
  m.from = from;
  m.to = to;
  m.payload = std::move(payload);
  return m;
}

TEST(TcpRuntimeTest, DeliversOverRealSockets) {
  TcpRuntime rt;
  CountingPeer a(0, &rt, 0), b(1, &rt, 3);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  EXPECT_NE(rt.ListenPort(0), 0);
  EXPECT_NE(rt.ListenPort(1), 0);
  EXPECT_NE(rt.ListenPort(0), rt.ListenPort(1));  // One endpoint per peer.
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(b.received(), 1);
  EXPECT_EQ(a.received(), 1);  // One reply.
  EXPECT_EQ(rt.dropped_count(), 0u);
}

TEST(TcpRuntimeTest, PingPongUntilRepliesExhausted) {
  TcpRuntime rt;
  CountingPeer a(0, &rt, 25), b(1, &rt, 25);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(a.received() + b.received(), 51);  // 1 initial + 50 replies.
}

TEST(TcpRuntimeTest, LargePayloadsSurviveFragmentation) {
  TcpRuntime rt;
  CountingPeer a(0, &rt, 0), b(1, &rt, 0);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  // Well past any single read buffer, so reassembly spans many recv calls.
  rt.Send(Make(0, 1, std::vector<uint8_t>(3u << 20, 0xd7)));
  rt.Send(Make(0, 1, std::vector<uint8_t>(512, 0x11)));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(b.received(), 2);
  EXPECT_EQ(rt.dropped_count(), 0u);
}

TEST(TcpRuntimeTest, UnregisterClosesSocketsAndKernelCountsDrops) {
  ScopedLogCapture quiet;
  TcpRuntime rt;
  CountingPeer a(0, &rt, 0), b(1, &rt, 0);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  ASSERT_EQ(b.received(), 1);

  rt.UnregisterPeer(1);  // Listener and connections torn down.
  EXPECT_EQ(rt.ListenPort(1), 0);
  // The cached connection is gone and the endpoint refuses connects: the
  // kernel, not a simulation flag, reports the losses.
  rt.Send(Make(0, 1));
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(rt.dropped_count(), 2u);
  EXPECT_EQ(b.received(), 1);
}

TEST(TcpRuntimeTest, ReconnectOnSendReachesRestartedPeer) {
  ScopedLogCapture quiet;
  TcpRuntime rt;
  CountingPeer a(0, &rt, 0), b(1, &rt, 0);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  uint16_t old_port = rt.ListenPort(1);

  rt.UnregisterPeer(1);
  rt.Send(Make(0, 1));  // Dropped: endpoint is down.
  ASSERT_TRUE(rt.Run().ok());

  CountingPeer b2(1, &rt, 0);  // Restarted process: fresh port, same id.
  rt.RegisterPeer(1, &b2);
  EXPECT_NE(rt.ListenPort(1), 0);
  EXPECT_NE(rt.ListenPort(1), old_port);
  rt.Send(Make(0, 1));  // Sender reconnects via the updated endpoint table.
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(b2.received(), 1);
  EXPECT_EQ(rt.dropped_count(), 1u);
}

TEST(TcpRuntimeTest, TwoRuntimesExchangeViaRemoteEndpoints) {
  // Peers hosted by different runtimes (the separate-process shape): routing
  // crosses runtime instances purely through the endpoint tables.
  TcpRuntime rt_a, rt_b;
  CountingPeer a(0, &rt_a, 0), b(1, &rt_b, 1);
  rt_a.RegisterPeer(0, &a);
  rt_b.RegisterPeer(1, &b);
  rt_a.AddRemoteEndpoint(1, {"127.0.0.1", rt_b.ListenPort(1)});
  rt_b.AddRemoteEndpoint(0, {"127.0.0.1", rt_a.ListenPort(0)});

  rt_a.Send(Make(0, 1));
  ASSERT_TRUE(rt_a.Run().ok());
  ASSERT_TRUE(rt_b.Run().ok());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((b.received() < 1 || a.received() < 1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(b.received(), 1);
  EXPECT_EQ(a.received(), 1);  // The reply crossed back.
}

TEST(TcpRuntimeTest, EndpointParseAndTable) {
  auto good = TcpRuntime::Endpoint::Parse("127.0.0.1:8080");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->host, "127.0.0.1");
  EXPECT_EQ(good->port, 8080);
  EXPECT_EQ(good->ToString(), "127.0.0.1:8080");
  EXPECT_FALSE(TcpRuntime::Endpoint::Parse("no-port").ok());
  EXPECT_FALSE(TcpRuntime::Endpoint::Parse(":123").ok());
  EXPECT_FALSE(TcpRuntime::Endpoint::Parse("h:99999").ok());
  EXPECT_FALSE(TcpRuntime::Endpoint::Parse("h:12x").ok());

  TcpRuntime rt;
  CountingPeer a(3, &rt, 0);
  rt.RegisterPeer(3, &a);
  std::string table = rt.EndpointTable();
  EXPECT_NE(table.find("3 127.0.0.1:"), std::string::npos);
}

// --- Protocol-level scenarios over sockets -------------------------------

std::vector<rel::Database> RunExampleOn(const core::P2PSystem& system,
                                        Runtime* rt) {
  core::Session session(system, rt);
  EXPECT_TRUE(session.RunDiscovery().ok());
  EXPECT_TRUE(session.RunUpdate().ok());
  EXPECT_TRUE(session.AllClosed());
  return session.SnapshotDatabases();
}

TEST(TcpRuntimeTest, CrossRuntimeParityOnRunningExample) {
  // The same system, driven to fixpoint on all three runtimes, must land on
  // null-isomorphic databases at every node: transport must not matter.
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());

  SimRuntime sim;
  std::vector<rel::Database> via_sim = RunExampleOn(*system, &sim);
  ThreadRuntime threads;
  std::vector<rel::Database> via_threads = RunExampleOn(*system, &threads);
  TcpRuntime sockets;
  std::vector<rel::Database> via_sockets = RunExampleOn(*system, &sockets);

  ASSERT_EQ(via_sim.size(), via_sockets.size());
  ASSERT_EQ(via_threads.size(), via_sockets.size());
  for (size_t n = 0; n < via_sim.size(); ++n) {
    EXPECT_TRUE(rel::DatabasesIsomorphic(via_sockets[n], via_sim[n]))
        << "node " << n << ": tcp vs sim";
    EXPECT_TRUE(rel::DatabasesIsomorphic(via_sockets[n], via_threads[n]))
        << "node " << n << ": tcp vs thread";
  }
  EXPECT_GT(sockets.stats().total_messages(), 0u);
}

std::string FreshRoot(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/p2pdb_tcp_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

core::Session::StorageProvider DirProvider(const std::string& root) {
  return [root](NodeId node) -> std::unique_ptr<storage::Storage> {
    storage::StorageOptions options;
    options.dir = root + "/peer" + std::to_string(node);
    options.sync = storage::SyncMode::kNoSync;
    auto manager = storage::StorageManager::Open(options);
    EXPECT_TRUE(manager.ok()) << manager.status().ToString();
    return manager.ok() ? std::move(*manager) : nullptr;
  };
}

TEST(TcpRuntimeTest, ChurnScriptWithSocketCloseCrashes) {
  // PR 2's churn scenario, but the crash is a literal connection teardown:
  // the victim's listener closes mid-update, in-flight frames die in the
  // kernel, and the restarted peer rejoins from checkpoint + WAL on a fresh
  // port. The re-converged network must match a never-crashed run.
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());

  SimRuntime baseline_rt;
  std::vector<rel::Database> baseline = RunExampleOn(*system, &baseline_rt);

  std::string root = FreshRoot("churn");
  TcpRuntime rt;
  core::Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());

  auto victim = system->NodeByName("B");
  ASSERT_TRUE(victim.ok());
  // Churn times are elapsed wall-clock micros on this runtime: crash shortly
  // after the update starts, restart 100ms later.
  uint64_t now = rt.NowMicros();
  core::ChurnScript churn = {
      core::ChurnEvent::Crash(now + 5'000, *victim),
      core::ChurnEvent::Restart(now + 100'000, *victim)};
  ScopedLogCapture quiet;  // Kernel-refused deliveries are expected.
  ASSERT_TRUE(session.RunUpdateWithChurn(churn, DirProvider(root)).ok());
  ASSERT_TRUE(session.AllClosed());

  for (size_t n = 0; n < session.peer_count(); ++n) {
    EXPECT_TRUE(rel::DatabasesIsomorphic(session.peer(n).db(), baseline[n]))
        << "node " << n << " diverged from the never-crashed run";
  }
  std::filesystem::remove_all(root);
}

TEST(TcpRuntimeTest, MultiPeerChurnOnGeneratedScenario) {
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kTree;
  options.topology.nodes = 8;
  options.records_per_node = 6;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok());

  SimRuntime baseline_rt;
  std::vector<rel::Database> baseline = RunExampleOn(*system, &baseline_rt);

  std::string root = FreshRoot("multi");
  TcpRuntime rt;
  core::Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());

  uint64_t now = rt.NowMicros();
  core::ChurnScript churn = {core::ChurnEvent::Crash(now + 3'000, 2),
                             core::ChurnEvent::Crash(now + 6'000, 5),
                             core::ChurnEvent::Restart(now + 80'000, 2),
                             core::ChurnEvent::Restart(now + 90'000, 5)};
  ScopedLogCapture quiet;
  ASSERT_TRUE(session.RunUpdateWithChurn(churn, DirProvider(root)).ok());
  ASSERT_TRUE(session.AllClosed());

  for (size_t n = 0; n < session.peer_count(); ++n) {
    EXPECT_TRUE(rel::DatabasesIsomorphic(session.peer(n).db(), baseline[n]))
        << "node " << n;
  }
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace p2pdb::net
