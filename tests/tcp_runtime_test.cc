// TcpRuntime: every message crosses a real loopback socket. Covers raw
// delivery and reconnect semantics, kernel-sourced dropped-message accounting
// (UnregisterPeer is a socket close, not a flag), cross-runtime protocol
// parity (Sim / Thread / Tcp reach null-isomorphic fixpoints on the paper's
// running example), and PR 2's crash/restart churn script driven over TCP.
#include "src/net/tcp_runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/session.h"
#include "src/net/sim_runtime.h"
#include "src/net/thread_runtime.h"
#include "src/relational/null_iso.h"
#include "src/storage/storage_manager.h"
#include "src/util/log_capture.h"
#include "src/workload/scenario.h"

namespace p2pdb::net {
namespace {

class CountingPeer : public PeerHandler {
 public:
  CountingPeer(NodeId id, Runtime* rt, int replies_left)
      : id_(id), runtime_(rt), replies_left_(replies_left) {}

  void OnMessage(const Message& msg) override {
    ++received_;
    if (replies_left_ > 0) {
      --replies_left_;
      Message reply;
      reply.type = msg.type;
      reply.from = id_;
      reply.to = msg.from;
      reply.payload = msg.payload;
      runtime_->Send(reply);
    }
  }

  int received() const { return received_.load(); }

 private:
  NodeId id_;
  Runtime* runtime_;
  int replies_left_;
  std::atomic<int> received_{0};
};

Message Make(NodeId from, NodeId to, std::vector<uint8_t> payload = {1, 2, 3}) {
  Message m;
  m.type = MessageType::kUpdateStart;
  m.from = from;
  m.to = to;
  m.payload = std::move(payload);
  return m;
}

TEST(TcpRuntimeTest, DeliversOverRealSockets) {
  TcpRuntime rt;
  CountingPeer a(0, &rt, 0), b(1, &rt, 3);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  EXPECT_NE(rt.ListenPort(0), 0);
  EXPECT_NE(rt.ListenPort(1), 0);
  EXPECT_NE(rt.ListenPort(0), rt.ListenPort(1));  // One endpoint per peer.
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(b.received(), 1);
  EXPECT_EQ(a.received(), 1);  // One reply.
  EXPECT_EQ(rt.dropped_count(), 0u);
}

TEST(TcpRuntimeTest, PingPongUntilRepliesExhausted) {
  TcpRuntime rt;
  CountingPeer a(0, &rt, 25), b(1, &rt, 25);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(a.received() + b.received(), 51);  // 1 initial + 50 replies.
}

TEST(TcpRuntimeTest, LargePayloadsSurviveFragmentation) {
  TcpRuntime rt;
  CountingPeer a(0, &rt, 0), b(1, &rt, 0);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  // Well past any single read buffer, so reassembly spans many recv calls.
  rt.Send(Make(0, 1, std::vector<uint8_t>(3u << 20, 0xd7)));
  rt.Send(Make(0, 1, std::vector<uint8_t>(512, 0x11)));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(b.received(), 2);
  EXPECT_EQ(rt.dropped_count(), 0u);
}

TEST(TcpRuntimeTest, UnregisterClosesSocketsAndKernelCountsDrops) {
  ScopedLogCapture quiet;
  TcpRuntime rt;
  CountingPeer a(0, &rt, 0), b(1, &rt, 0);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  ASSERT_EQ(b.received(), 1);

  rt.UnregisterPeer(1);  // Listener and connections torn down.
  EXPECT_EQ(rt.ListenPort(1), 0);
  // The cached connection is gone and the endpoint refuses connects: the
  // kernel, not a simulation flag, reports the losses.
  rt.Send(Make(0, 1));
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(rt.dropped_count(), 2u);
  EXPECT_EQ(b.received(), 1);
}

TEST(TcpRuntimeTest, ReconnectOnSendReachesRestartedPeer) {
  ScopedLogCapture quiet;
  TcpRuntime rt;
  CountingPeer a(0, &rt, 0), b(1, &rt, 0);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  uint16_t old_port = rt.ListenPort(1);

  rt.UnregisterPeer(1);
  rt.Send(Make(0, 1));  // Dropped: endpoint is down.
  ASSERT_TRUE(rt.Run().ok());

  CountingPeer b2(1, &rt, 0);  // Restarted process: fresh port, same id.
  rt.RegisterPeer(1, &b2);
  EXPECT_NE(rt.ListenPort(1), 0);
  EXPECT_NE(rt.ListenPort(1), old_port);
  rt.Send(Make(0, 1));  // Sender reconnects via the updated endpoint table.
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(b2.received(), 1);
  EXPECT_EQ(rt.dropped_count(), 1u);
}

TEST(TcpRuntimeTest, TwoRuntimesExchangeViaRemoteEndpoints) {
  // Peers hosted by different runtimes (the separate-process shape): routing
  // crosses runtime instances purely through the endpoint tables.
  TcpRuntime rt_a, rt_b;
  CountingPeer a(0, &rt_a, 0), b(1, &rt_b, 1);
  rt_a.RegisterPeer(0, &a);
  rt_b.RegisterPeer(1, &b);
  ASSERT_TRUE(rt_a.AddRemoteEndpoint(1, {"127.0.0.1", rt_b.ListenPort(1)}).ok());
  ASSERT_TRUE(rt_b.AddRemoteEndpoint(0, {"127.0.0.1", rt_a.ListenPort(0)}).ok());

  rt_a.Send(Make(0, 1));
  ASSERT_TRUE(rt_a.Run().ok());
  ASSERT_TRUE(rt_b.Run().ok());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((b.received() < 1 || a.received() < 1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(b.received(), 1);
  EXPECT_EQ(a.received(), 1);  // The reply crossed back.
}

TEST(TcpRuntimeTest, RemoteEndpointConflictIsRejected) {
  ScopedLogCapture quiet;  // The rejected remap logs a warning.
  TcpRuntime rt;
  ASSERT_TRUE(rt.AddRemoteEndpoint(7, {"127.0.0.1", 9001}).ok());
  // Identical re-add (a re-applied bootstrap table) is idempotent.
  EXPECT_TRUE(rt.AddRemoteEndpoint(7, {"127.0.0.1", 9001}).ok());
  // A different endpoint for a known node must not silently remap it.
  Status conflict = rt.AddRemoteEndpoint(7, {"127.0.0.1", 9002});
  EXPECT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(rt.EndpointOf(7).port, 9001);  // Table unchanged.

  // The same guard protects a local listening peer's row.
  CountingPeer a(0, &rt, 0);
  rt.RegisterPeer(0, &a);
  ASSERT_NE(rt.ListenPort(0), 0);
  EXPECT_FALSE(rt.AddRemoteEndpoint(0, {"127.0.0.1", 9003}).ok());
  EXPECT_EQ(rt.EndpointOf(0).port, rt.ListenPort(0));
}

TEST(TcpRuntimeTest, FixedListenPortBindsConfiguredEndpoint) {
  // A config-file-owned endpoint: pick a free port the way the fleet config
  // generator does (bind :0, note the port, release it), then ask the
  // runtime to bind exactly that port.
  uint16_t port = 0;
  {
    TcpRuntime probe;
    CountingPeer tmp(0, &probe, 0);
    probe.RegisterPeer(0, &tmp);
    port = probe.ListenPort(0);
    probe.UnregisterPeer(0);
  }
  ASSERT_NE(port, 0);
  TcpRuntime::Options options;
  options.listen_port = port;
  TcpRuntime rt(options);
  CountingPeer a(0, &rt, 0);
  rt.RegisterPeer(0, &a);
  EXPECT_EQ(rt.ListenPort(0), port);
  ASSERT_TRUE(rt.PeerReady(0).ok());
}

TEST(TcpRuntimeTest, EndpointParseAndTable) {
  auto good = TcpRuntime::Endpoint::Parse("127.0.0.1:8080");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->host, "127.0.0.1");
  EXPECT_EQ(good->port, 8080);
  EXPECT_EQ(good->ToString(), "127.0.0.1:8080");
  EXPECT_FALSE(TcpRuntime::Endpoint::Parse("no-port").ok());
  EXPECT_FALSE(TcpRuntime::Endpoint::Parse(":123").ok());
  EXPECT_FALSE(TcpRuntime::Endpoint::Parse("h:99999").ok());
  EXPECT_FALSE(TcpRuntime::Endpoint::Parse("h:12x").ok());

  TcpRuntime rt;
  CountingPeer a(3, &rt, 0);
  rt.RegisterPeer(3, &a);
  std::string table = rt.EndpointTable();
  EXPECT_NE(table.find("3 127.0.0.1:"), std::string::npos);
}

// --- Exact quiescence (credit acks, no quiet window) ---------------------

TEST(TcpRuntimeTest, ExactQuiescenceReturnsImmediately) {
  // Default options: quiet_window is 0 and termination is credit-exact, so a
  // Run() on a quiescent network returns on its first in-flight==0
  // observation instead of waiting out a heuristic clock (10ms before).
  TcpRuntime rt;
  CountingPeer a(0, &rt, 0), b(1, &rt, 0);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(b.received(), 1);

  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(rt.Run().ok());
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            8);
}

TEST(TcpRuntimeTest, LegacyQuietWindowKnobStillWaitsOutTheClock) {
  // The heuristic survives as an opt-in benchmark baseline: with a nonzero
  // window, even a quiescent Run() must sit through it.
  TcpRuntime::Options options;
  options.quiet_window = std::chrono::microseconds(10'000);
  TcpRuntime rt(options);
  CountingPeer a(0, &rt, 0), b(1, &rt, 0);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());

  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(rt.Run().ok());
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            10'000);
}

TEST(TcpRuntimeTest, CrashHoldingUncreditedFramesStillReachesQuiescence) {
  // Exact termination must not wedge on a dead peer: a burst of frames is
  // in flight (enqueued, some written, none credited) when the receiver's
  // sockets close. The close-time ledger drain releases every hold, so
  // Run() converges instead of waiting for credits that can never arrive.
  ScopedLogCapture quiet;
  TcpRuntime rt;
  CountingPeer a(0, &rt, 0), b(1, &rt, 0);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());  // Connection established.

  for (int i = 0; i < 200; ++i) {
    rt.Send(Make(0, 1, std::vector<uint8_t>(4096, 0x33)));
  }
  rt.UnregisterPeer(1);
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(rt.Run().ok());
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);  // Well under the 30s give-up deadline: no hang.
}

// --- Frame coalescing ----------------------------------------------------

/// On each incoming message, sends `fan` tagged kQueryAnswer messages to
/// `dest` within the one dispatch — the shape coalescing packs into a single
/// kBatch frame. Tag = first payload byte, `urgent_tag` (if nonzero) is sent
/// with the urgent flag.
class FanPeer : public PeerHandler {
 public:
  FanPeer(NodeId id, Runtime* rt, NodeId dest, int fan, uint8_t urgent_tag = 0)
      : id_(id), runtime_(rt), dest_(dest), fan_(fan),
        urgent_tag_(urgent_tag) {}

  void OnMessage(const Message&) override {
    for (int i = 1; i <= fan_; ++i) {
      Message m;
      m.type = MessageType::kQueryAnswer;
      m.from = id_;
      m.to = dest_;
      m.payload = std::vector<uint8_t>{static_cast<uint8_t>(i), 0, 0};
      m.urgent = (static_cast<uint8_t>(i) == urgent_tag_);
      runtime_->Send(std::move(m));
    }
  }

 private:
  NodeId id_;
  Runtime* runtime_;
  NodeId dest_;
  int fan_;
  uint8_t urgent_tag_;
};

/// Records the tag byte of every received message, in arrival order.
class RecordingPeer : public PeerHandler {
 public:
  void OnMessage(const Message& msg) override {
    std::lock_guard<std::mutex> lock(mutex_);
    order_.push_back(msg.payload.size() > 0 ? msg.payload.data()[0] : 0);
  }
  std::vector<uint8_t> order() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return order_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<uint8_t> order_;
};

TEST(TcpRuntimeTest, DispatchSendsCoalesceAndStatsNameInnerTypes) {
  // Five same-destination sends inside one dispatch travel as one kBatch
  // frame — but NetStats attributes each message to its own MessageType;
  // kBatch is transport framing and never appears in the per-type tables.
  TcpRuntime rt;
  FanPeer fan(1, &rt, 2, /*fan=*/5);
  RecordingPeer sink;
  rt.RegisterPeer(1, &fan);
  rt.RegisterPeer(2, &sink);
  rt.Send(Make(0, 1));  // Trigger (no scope on this thread: solo frame).
  ASSERT_TRUE(rt.Run().ok());

  ASSERT_EQ(sink.order().size(), 5u);
  EXPECT_EQ(rt.stats().MessagesOfType(MessageType::kQueryAnswer), 5u);
  EXPECT_EQ(rt.stats().MessagesOfType(MessageType::kBatch), 0u);
  EXPECT_EQ(rt.stats().io().batch_frames.load(), 1u);
  EXPECT_EQ(rt.stats().io().batched_messages.load(), 5u);
  // Wire frames: the trigger plus the batch — not 1 + 5.
  EXPECT_EQ(rt.stats().io().frames_enqueued.load(), 2u);
  EXPECT_EQ(rt.dropped_count(), 0u);
}

TEST(TcpRuntimeTest, UrgentMessageBypassesBatchKeepingFifoOrder) {
  // Tags 1..5 with tag 3 urgent: the urgent send flushes the pending batch
  // (1,2) first, goes out solo, and 4,5 coalesce behind it — three wire
  // frames, arrival order intact.
  TcpRuntime rt;
  FanPeer fan(1, &rt, 2, /*fan=*/5, /*urgent_tag=*/3);
  RecordingPeer sink;
  rt.RegisterPeer(1, &fan);
  rt.RegisterPeer(2, &sink);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());

  EXPECT_EQ(sink.order(), (std::vector<uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(rt.stats().io().batch_frames.load(), 2u);
  EXPECT_EQ(rt.stats().io().batched_messages.load(), 4u);
  EXPECT_EQ(rt.stats().io().frames_enqueued.load(), 4u);  // trigger+2+solo.
}

TEST(TcpRuntimeTest, BatchCapFlushesMidDispatch) {
  // A tiny cap forces flushes before EndDispatch: messages still all arrive,
  // in order, just spread across more frames.
  TcpRuntime::Options options;
  options.batch_max_bytes = 8;  // Two 3-byte payloads breach the cap.
  TcpRuntime rt(options);
  FanPeer fan(1, &rt, 2, /*fan=*/9);
  RecordingPeer sink;
  rt.RegisterPeer(1, &fan);
  rt.RegisterPeer(2, &sink);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());

  EXPECT_EQ(sink.order(), (std::vector<uint8_t>{1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_GE(rt.stats().io().batch_frames.load(), 3u);
}

TEST(TcpRuntimeTest, CoalescingDisabledSendsEveryMessageSolo) {
  TcpRuntime::Options options;
  options.batch_max_bytes = 0;  // Pre-batching behavior.
  TcpRuntime rt(options);
  FanPeer fan(1, &rt, 2, /*fan=*/5);
  RecordingPeer sink;
  rt.RegisterPeer(1, &fan);
  rt.RegisterPeer(2, &sink);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());

  ASSERT_EQ(sink.order().size(), 5u);
  EXPECT_EQ(rt.stats().io().batch_frames.load(), 0u);
  EXPECT_EQ(rt.stats().io().frames_enqueued.load(), 6u);  // trigger + 5 solo.
}

// --- Protocol-level scenarios over sockets -------------------------------

std::vector<rel::Database> RunExampleOn(const core::P2PSystem& system,
                                        Runtime* rt) {
  core::Session session(system, rt);
  EXPECT_TRUE(session.RunDiscovery().ok());
  EXPECT_TRUE(session.RunUpdate().ok());
  EXPECT_TRUE(session.AllClosed());
  return session.SnapshotDatabases();
}

TEST(TcpRuntimeTest, CrossRuntimeParityOnRunningExample) {
  // The same system, driven to fixpoint on all three runtimes, must land on
  // null-isomorphic databases at every node: transport must not matter.
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());

  SimRuntime sim;
  std::vector<rel::Database> via_sim = RunExampleOn(*system, &sim);
  ThreadRuntime threads;
  std::vector<rel::Database> via_threads = RunExampleOn(*system, &threads);
  TcpRuntime sockets;
  std::vector<rel::Database> via_sockets = RunExampleOn(*system, &sockets);

  ASSERT_EQ(via_sim.size(), via_sockets.size());
  ASSERT_EQ(via_threads.size(), via_sockets.size());
  for (size_t n = 0; n < via_sim.size(); ++n) {
    EXPECT_TRUE(rel::DatabasesIsomorphic(via_sockets[n], via_sim[n]))
        << "node " << n << ": tcp vs sim";
    EXPECT_TRUE(rel::DatabasesIsomorphic(via_sockets[n], via_threads[n]))
        << "node " << n << ": tcp vs thread";
  }
  EXPECT_GT(sockets.stats().total_messages(), 0u);
}

std::string FreshRoot(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/p2pdb_tcp_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

core::Session::StorageProvider DirProvider(const std::string& root) {
  return [root](NodeId node) -> std::unique_ptr<storage::Storage> {
    storage::StorageOptions options;
    options.dir = root + "/peer" + std::to_string(node);
    options.sync = storage::SyncMode::kNoSync;
    auto manager = storage::StorageManager::Open(options);
    EXPECT_TRUE(manager.ok()) << manager.status().ToString();
    return manager.ok() ? std::move(*manager) : nullptr;
  };
}

TEST(TcpRuntimeTest, ChurnScriptWithSocketCloseCrashes) {
  // PR 2's churn scenario, but the crash is a literal connection teardown:
  // the victim's listener closes mid-update, in-flight frames die in the
  // kernel, and the restarted peer rejoins from checkpoint + WAL on a fresh
  // port. The re-converged network must match a never-crashed run.
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());

  SimRuntime baseline_rt;
  std::vector<rel::Database> baseline = RunExampleOn(*system, &baseline_rt);

  std::string root = FreshRoot("churn");
  TcpRuntime rt;
  core::Session::Options session_options;
  session_options.storage = DirProvider(root);
  core::Session session(*system, &rt, session_options);
  ASSERT_TRUE(session.RunDiscovery().ok());

  auto victim = system->NodeByName("B");
  ASSERT_TRUE(victim.ok());
  // Churn times are elapsed wall-clock micros on this runtime: crash shortly
  // after the update starts, restart 100ms later.
  uint64_t now = rt.NowMicros();
  core::ChurnScript churn = {
      core::ChurnEvent::Crash(now + 5'000, *victim),
      core::ChurnEvent::Restart(now + 100'000, *victim)};
  ScopedLogCapture quiet;  // Kernel-refused deliveries are expected.
  ASSERT_TRUE(session.RunUpdateWithChurn(churn).ok());
  ASSERT_TRUE(session.AllClosed());

  for (size_t n = 0; n < session.peer_count(); ++n) {
    EXPECT_TRUE(rel::DatabasesIsomorphic(session.peer(n).db(), baseline[n]))
        << "node " << n << " diverged from the never-crashed run";
  }
  std::filesystem::remove_all(root);
}

TEST(TcpRuntimeTest, MultiPeerChurnOnGeneratedScenario) {
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kTree;
  options.topology.nodes = 8;
  options.records_per_node = 6;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok());

  SimRuntime baseline_rt;
  std::vector<rel::Database> baseline = RunExampleOn(*system, &baseline_rt);

  std::string root = FreshRoot("multi");
  TcpRuntime rt;
  core::Session::Options session_options;
  session_options.storage = DirProvider(root);
  core::Session session(*system, &rt, session_options);
  ASSERT_TRUE(session.RunDiscovery().ok());

  uint64_t now = rt.NowMicros();
  core::ChurnScript churn = {core::ChurnEvent::Crash(now + 3'000, 2),
                             core::ChurnEvent::Crash(now + 6'000, 5),
                             core::ChurnEvent::Restart(now + 80'000, 2),
                             core::ChurnEvent::Restart(now + 90'000, 5)};
  ScopedLogCapture quiet;
  ASSERT_TRUE(session.RunUpdateWithChurn(churn).ok());
  ASSERT_TRUE(session.AllClosed());

  for (size_t n = 0; n < session.peer_count(); ++n) {
    EXPECT_TRUE(rel::DatabasesIsomorphic(session.peer(n).db(), baseline[n]))
        << "node " << n;
  }
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace p2pdb::net
