#include "src/util/status.h"

#include <gtest/gtest.h>

namespace p2pdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("relation r");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "relation r");
  EXPECT_EQ(s.ToString(), "NotFound: relation r");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kParseError, StatusCode::kProtocolError,
        StatusCode::kUnsupported, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string moved = r.MoveValue();
  EXPECT_EQ(moved, "payload");
}

Status FailingHelper() { return Status::Internal("boom"); }

Status UsesReturnIfError() {
  P2PDB_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kInternal);
}

Result<int> GiveInt() { return 7; }

Status UsesAssignOrReturn(int* out) {
  P2PDB_ASSIGN_OR_RETURN(*out, GiveInt());
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnAssigns) {
  int v = 0;
  ASSERT_TRUE(UsesAssignOrReturn(&v).ok());
  EXPECT_EQ(v, 7);
}

}  // namespace
}  // namespace p2pdb
