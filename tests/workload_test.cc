#include <gtest/gtest.h>

#include "src/core/dependency.h"
#include "src/workload/dblp.h"
#include "src/workload/rulegen.h"
#include "src/workload/scenario.h"
#include "src/workload/topology.h"

namespace p2pdb::workload {
namespace {

TEST(TopologyTest, TreeShape) {
  TopologySpec spec;
  spec.kind = TopologySpec::Kind::kTree;
  spec.nodes = 7;
  spec.fanout = 2;
  auto edges = GenerateTopology(spec);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->size(), 6u);  // n-1 edges.
  // Every non-root node has exactly one parent.
  std::map<NodeId, int> indegree;
  for (const Edge& e : *edges) indegree[e.second]++;
  for (NodeId n = 1; n < 7; ++n) EXPECT_EQ(indegree[n], 1) << n;
  EXPECT_EQ(TopologyDepth(*edges), 2u);  // Balanced binary tree of 7.
}

TEST(TopologyTest, ChainDepthIsNodesMinusOne) {
  TopologySpec spec;
  spec.kind = TopologySpec::Kind::kChain;
  spec.nodes = 9;
  auto edges = GenerateTopology(spec);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(TopologyDepth(*edges), 8u);
}

TEST(TopologyTest, CliqueHasAllOrderedPairs) {
  TopologySpec spec;
  spec.kind = TopologySpec::Kind::kClique;
  spec.nodes = 5;
  auto edges = GenerateTopology(spec);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->size(), 20u);
}

TEST(TopologyTest, RingIsCyclic) {
  TopologySpec spec;
  spec.kind = TopologySpec::Kind::kRing;
  spec.nodes = 4;
  auto edges = GenerateTopology(spec);
  ASSERT_TRUE(edges.ok());
  std::set<core::Edge> set(edges->begin(), edges->end());
  core::DependencyGraph g(set);
  EXPECT_FALSE(g.IsAcyclic());
  EXPECT_EQ(g.SccOf(0).size(), 4u);
}

TEST(TopologyTest, EveryKindReachableFromSuperPeer) {
  for (auto kind : {TopologySpec::Kind::kTree, TopologySpec::Kind::kLayeredDag,
                    TopologySpec::Kind::kClique, TopologySpec::Kind::kChain,
                    TopologySpec::Kind::kRing, TopologySpec::Kind::kRandom}) {
    TopologySpec spec;
    spec.kind = kind;
    spec.nodes = 12;
    auto edges = GenerateTopology(spec);
    ASSERT_TRUE(edges.ok());
    std::set<core::Edge> set(edges->begin(), edges->end());
    core::DependencyGraph g(set);
    std::set<NodeId> reach = g.ReachableFrom(0);
    reach.insert(0);
    EXPECT_EQ(reach.size(), 12u) << TopologyKindName(kind);
  }
}

TEST(TopologyTest, LayeredDagIsAcyclic) {
  TopologySpec spec;
  spec.kind = TopologySpec::Kind::kLayeredDag;
  spec.nodes = 13;
  spec.layers = 4;
  auto edges = GenerateTopology(spec);
  ASSERT_TRUE(edges.ok());
  std::set<core::Edge> set(edges->begin(), edges->end());
  EXPECT_TRUE(core::DependencyGraph(set).IsAcyclic());
  EXPECT_EQ(TopologyDepth(*edges), 3u);  // layers - 1.
}

TEST(TopologyTest, DeterministicForSeed) {
  TopologySpec spec;
  spec.kind = TopologySpec::Kind::kRandom;
  spec.nodes = 10;
  spec.seed = 5;
  auto a = GenerateTopology(spec);
  auto b = GenerateTopology(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  spec.seed = 6;
  auto c = GenerateTopology(spec);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(*a, *c);
}

TEST(TopologyTest, RejectsDegenerateSpecs) {
  TopologySpec spec;
  spec.nodes = 1;
  EXPECT_FALSE(GenerateTopology(spec).ok());
}

TEST(DblpTest, RecordsAreDeterministicAndWellFormed) {
  Rng rng1(3), rng2(3);
  auto a = GeneratePubs(100, 50, 10, &rng1);
  auto b = GeneratePubs(100, 50, 10, &rng2);
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, 100 + static_cast<int64_t>(i));
    EXPECT_EQ(a[i].title, b[i].title);
    EXPECT_EQ(a[i].author, b[i].author);
    EXPECT_GE(a[i].year, 1990);
    EXPECT_LE(a[i].year, 2004);
  }
}

TEST(DblpTest, SchemaStylesMaterializeCorrectArity) {
  Rng rng(3);
  auto records = GeneratePubs(0, 5, 4, &rng);
  for (SchemaStyle style : {SchemaStyle::kArticle, SchemaStyle::kPubWrote,
                            SchemaStyle::kRec}) {
    rel::Database db = MakeNodeSchema(3, style);
    ASSERT_TRUE(InsertRecords(&db, 3, style, records).ok());
    switch (style) {
      case SchemaStyle::kArticle:
        EXPECT_EQ((*db.Get("n3_art"))->size(), 5u);
        break;
      case SchemaStyle::kPubWrote:
        EXPECT_EQ((*db.Get("n3_pub"))->size(), 5u);
        EXPECT_EQ((*db.Get("n3_wrote"))->size(), 5u);
        break;
      case SchemaStyle::kRec:
        EXPECT_EQ((*db.Get("n3_rec"))->size(), 5u);
        break;
    }
  }
}

TEST(RulegenTest, AllNineStylePairsValidate) {
  // Build a 9-node system covering every (head, body) style pair and check
  // P2PSystem validation accepts every generated rule.
  core::P2PSystem system;
  Rng rng(1);
  auto records = GeneratePubs(0, 2, 4, &rng);
  for (NodeId n = 0; n < 9; ++n) {
    SchemaStyle style = StyleForNode(n);
    rel::Database db = MakeNodeSchema(n, style);
    ASSERT_TRUE(InsertRecords(&db, n, style, records).ok());
    ASSERT_TRUE(system.AddNode("N" + std::to_string(n), std::move(db)).ok());
  }
  int seq = 0;
  for (NodeId head = 0; head < 3; ++head) {
    for (NodeId body = 3; body < 6; ++body) {
      auto rule = MakeTranslationRule("t" + std::to_string(seq++), head,
                                      StyleForNode(head), body,
                                      StyleForNode(body));
      EXPECT_TRUE(system.AddRule(rule).ok())
          << SchemaStyleName(StyleForNode(head)) << " <- "
          << SchemaStyleName(StyleForNode(body));
    }
  }
}

TEST(RulegenTest, RecToPubWroteHasSharedExistential) {
  auto rule = MakeTranslationRule("r", 1, SchemaStyle::kPubWrote, 2,
                                  SchemaStyle::kRec);
  auto existentials = rule.ExistentialVars();
  // I (the id) and Y (the year) are invented; I is shared across head atoms.
  EXPECT_EQ(existentials, (std::vector<std::string>{"I", "Y"}));
  ASSERT_EQ(rule.head_atoms.size(), 2u);
}

TEST(RulegenTest, SameStyleIsCopyRule) {
  auto rule = MakeTranslationRule("r", 0, SchemaStyle::kArticle, 3,
                                  SchemaStyle::kArticle);
  EXPECT_TRUE(rule.ExistentialVars().empty());
  EXPECT_EQ(rule.head_atoms.size(), 1u);
  EXPECT_EQ(rule.body.size(), 1u);
}

TEST(ScenarioTest, BuildsValidSystem) {
  ScenarioOptions options;
  options.topology.nodes = 9;
  options.records_per_node = 10;
  auto system = BuildScenario(options);
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  EXPECT_EQ(system->node_count(), 9u);
  EXPECT_EQ(system->rules().size(), 8u);  // One per tree edge.
  // Every node got its base records.
  for (NodeId n = 0; n < 9; ++n) {
    EXPECT_GE(system->node(n).db.TotalTuples(), 10u);
  }
}

TEST(ScenarioTest, OverlapIncreasesSharedData) {
  ScenarioOptions no_overlap;
  no_overlap.topology.nodes = 7;
  no_overlap.records_per_node = 10;
  no_overlap.link_overlap_prob = 0.0;
  ScenarioOptions with_overlap = no_overlap;
  with_overlap.link_overlap_prob = 1.0;

  auto a = BuildScenario(no_overlap);
  auto b = BuildScenario(with_overlap);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  size_t tuples_a = 0, tuples_b = 0;
  for (NodeId n = 0; n < 7; ++n) {
    tuples_a += a->node(n).db.TotalTuples();
    tuples_b += b->node(n).db.TotalTuples();
  }
  EXPECT_GT(tuples_b, tuples_a);  // Copied overlap records add tuples.
}

TEST(ScenarioTest, RunningExampleParses) {
  auto system = MakeRunningExample();
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  EXPECT_EQ(system->node_count(), 5u);
  EXPECT_EQ(system->rules().size(), 7u);
}

TEST(ScenarioTest, GeneratedRulesAreWeaklyAcyclicOnTrees) {
  ScenarioOptions options;
  options.topology.nodes = 9;
  auto system = BuildScenario(options);
  ASSERT_TRUE(system.ok());
  EXPECT_TRUE(core::RulesAreWeaklyAcyclic(system->rules()));
}

}  // namespace
}  // namespace p2pdb::workload
