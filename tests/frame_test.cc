// Frame codec: round-trips, exact WireSize accounting, and rejection of
// truncated/corrupted frames — plus incremental reassembly from arbitrary
// stream fragmentation, the property the TCP reader threads rely on.
#include "src/net/frame.h"

#include <gtest/gtest.h>

#include "src/core/control.h"
#include "src/util/crc32.h"
#include "src/workload/scenario.h"

namespace p2pdb::net {
namespace {

Message Make(MessageType type, NodeId from, NodeId to, uint64_t seq,
             std::vector<uint8_t> payload) {
  Message msg;
  msg.type = type;
  msg.from = from;
  msg.to = to;
  msg.seq = seq;
  msg.payload = std::move(payload);
  return msg;
}

bool SameMessage(const Message& a, const Message& b) {
  return a.type == b.type && a.from == b.from && a.to == b.to &&
         a.seq == b.seq && a.trace.trace_id == b.trace.trace_id &&
         a.trace.parent_span == b.trace.parent_span &&
         a.trace.hop == b.trace.hop && a.payload == b.payload;
}

TEST(FrameTest, RoundTripsAllFieldShapes) {
  std::vector<Message> cases = {
      Make(MessageType::kDiscoverRequest, 0, 1, 0, {}),
      Make(MessageType::kQueryAnswer, 3, 200, 12'345, {1, 2, 3, 0xff, 0}),
      Make(MessageType::kToken, 70'000, 1, 1u << 20,
           std::vector<uint8_t>(1000, 0xab)),
      // Sentinel ids (kNoNode) and a huge seq exercise the widest varints.
      Make(MessageType::kDeleteRule, kNoNode, kNoNode, ~0ull, {42}),
  };
  for (const Message& msg : cases) {
    std::vector<uint8_t> frame = EncodeFrame(msg);
    EXPECT_EQ(frame.size(), msg.WireSize()) << msg.ToString();
    auto decoded = DecodeFrame(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(SameMessage(*decoded, msg)) << msg.ToString();
  }
}

TEST(FrameTest, WireSizeIsExactEncodedSize) {
  // The old header estimate was a flat 13 bytes; the real size varies with
  // the varint widths of from/to/seq.
  Message small = Make(MessageType::kUpdateStart, 0, 1, 0, {1, 2, 3});
  EXPECT_EQ(small.WireSize(), EncodeFrame(small).size());
  // 4 len + 4 crc + 1 type + 3x1 header varints + 3x1 trace varints + 3.
  EXPECT_EQ(small.WireSize(), 18u);
  Message wide = Make(MessageType::kUpdateStart, kNoNode, kNoNode, ~0ull, {});
  EXPECT_EQ(wide.WireSize(), EncodeFrame(wide).size());
}

TEST(FrameTest, TraceContextRoundTrips) {
  Message msg = Make(MessageType::kPartialUpdate, 2, 7, 99, {1, 2});
  msg.trace.trace_id = 0xdead'beef'cafe'f00dull;
  msg.trace.parent_span = 0x1234'5678'9abcull;
  msg.trace.hop = 5;
  std::vector<uint8_t> frame = EncodeFrame(msg);
  EXPECT_EQ(frame.size(), msg.WireSize());
  auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(SameMessage(*decoded, msg));
  EXPECT_TRUE(decoded->trace.active());

  // The untraced default costs exactly three zero varint bytes and decodes
  // inactive; a wide trace context pays for its varints and nothing else.
  Message plain = Make(MessageType::kPartialUpdate, 2, 7, 99, {1, 2});
  EXPECT_LT(plain.WireSize(), msg.WireSize());
  EXPECT_EQ(plain.WireSize(), EncodeFrame(plain).size());
  auto plain_decoded = DecodeFrame(EncodeFrame(plain));
  ASSERT_TRUE(plain_decoded.ok());
  EXPECT_FALSE(plain_decoded->trace.active());
}

TEST(FrameTest, TruncatedFramesAreRejected) {
  std::vector<uint8_t> frame =
      EncodeFrame(Make(MessageType::kQueryRequest, 1, 2, 3, {9, 9, 9}));
  for (size_t keep = 0; keep < frame.size(); ++keep) {
    std::vector<uint8_t> cut(frame.begin(), frame.begin() + keep);
    EXPECT_FALSE(DecodeFrame(cut).ok()) << "decoded a " << keep << "-byte cut";
  }
  std::vector<uint8_t> padded = frame;
  padded.push_back(0);
  EXPECT_FALSE(DecodeFrame(padded).ok()) << "accepted trailing bytes";
}

TEST(FrameTest, CorruptionAnywhereIsRejected) {
  Message msg = Make(MessageType::kQueryAnswer, 4, 5, 6, {7, 8});
  std::vector<uint8_t> frame = EncodeFrame(msg);
  // Flip each byte after the length field: CRC (or the CRC check) must catch
  // every one — header and payload are equally guarded.
  for (size_t i = 4; i < frame.size(); ++i) {
    std::vector<uint8_t> bad = frame;
    bad[i] ^= 0xff;
    EXPECT_FALSE(DecodeFrame(bad).ok()) << "byte " << i;
  }
}

TEST(FrameTest, UnknownTypeAndInsaneLengthAreRejected) {
  Message msg = Make(MessageType::kToken, 1, 2, 3, {});
  std::vector<uint8_t> frame = EncodeFrame(msg);
  // Patch the type byte (offset 8) to an unassigned value and re-seal the
  // CRC so only the semantic check can reject it.
  frame[8] = 99;
  uint32_t crc = Crc32(frame.data() + 8, frame.size() - 8);
  for (int i = 0; i < 4; ++i) {
    frame[4 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  EXPECT_FALSE(DecodeFrame(frame).ok());

  std::vector<uint8_t> giant = {0xff, 0xff, 0xff, 0xff};  // 4 GiB "length".
  EXPECT_FALSE(DecodeFrame(giant).ok());
}

TEST(FrameAssemblerTest, ReassemblesArbitraryFragmentation) {
  std::vector<Message> sent;
  std::vector<uint8_t> stream;
  for (int i = 0; i < 20; ++i) {
    Message msg = Make(MessageType::kQueryAnswer, i, i + 1,
                       static_cast<uint64_t>(i),
                       std::vector<uint8_t>(static_cast<size_t>(i * 7), 0x5c));
    std::vector<uint8_t> frame = EncodeFrame(msg);
    stream.insert(stream.end(), frame.begin(), frame.end());
    sent.push_back(std::move(msg));
  }
  // Feed in every chunk size from byte-at-a-time to the whole stream.
  for (size_t chunk : {size_t{1}, size_t{3}, size_t{17}, stream.size()}) {
    FrameAssembler assembler;
    std::vector<Message> got;
    for (size_t pos = 0; pos < stream.size(); pos += chunk) {
      size_t n = std::min(chunk, stream.size() - pos);
      ASSERT_TRUE(assembler.Feed(stream.data() + pos, n, &got).ok());
    }
    ASSERT_EQ(got.size(), sent.size()) << "chunk " << chunk;
    for (size_t i = 0; i < sent.size(); ++i) {
      EXPECT_TRUE(SameMessage(got[i], sent[i])) << "chunk " << chunk;
    }
    EXPECT_EQ(assembler.buffered_bytes(), 0u);
  }
}

TEST(FrameAssemblerTest, PoisonedStreamReportsError) {
  Message msg = Make(MessageType::kUpdateStart, 1, 2, 3, {4, 5});
  std::vector<uint8_t> frame = EncodeFrame(msg);
  frame[10] ^= 0xff;  // Corrupt the header mid-frame.
  FrameAssembler assembler;
  std::vector<Message> got;
  EXPECT_FALSE(assembler.Feed(frame.data(), frame.size(), &got).ok());
  EXPECT_TRUE(got.empty());

  // An oversized length field poisons the stream before any body arrives.
  std::vector<uint8_t> giant = {0xff, 0xff, 0xff, 0x7f};
  FrameAssembler assembler2;
  EXPECT_FALSE(assembler2.Feed(giant.data(), giant.size(), &got).ok());
}

TEST(FrameAssemblerTest, FeedViewsBorrowsPayloadOnlyDuringSink) {
  Message msg = Make(MessageType::kQueryAnswer, 1, 2, 3, {10, 20, 30, 40});
  std::vector<uint8_t> stream = EncodeFrame(msg);

  FrameAssembler assembler;
  Message borrowed_then_kept;
  int sinks = 0;
  Status fed = assembler.FeedViews(
      stream.data(), stream.size(), [&](const FrameView& view) {
        ++sinks;
        // Inside the sink, the payload aliases the fed buffer: zero copies.
        EXPECT_GE(view.payload, stream.data());
        EXPECT_LE(view.payload + view.payload_size,
                  stream.data() + stream.size());
        Message m = view.BorrowMessage();
        EXPECT_TRUE(m.payload.borrowed());
        EXPECT_TRUE(SameMessage(m, msg));
        // A receiver that outlives the sink must take ownership — after
        // EnsureOwned the message survives the buffer being clobbered.
        m.payload.EnsureOwned();
        EXPECT_FALSE(m.payload.borrowed());
        borrowed_then_kept = std::move(m);
      });
  ASSERT_TRUE(fed.ok());
  EXPECT_EQ(sinks, 1);
  std::fill(stream.begin(), stream.end(), 0xee);  // Reuse the read buffer.
  EXPECT_TRUE(SameMessage(borrowed_then_kept, msg));

  // Copying a borrowed payload also materializes it (handlers that echo a
  // request payload into a reply never see the buffer die underneath them).
  Message copy_target;
  std::vector<uint8_t> stream2 = EncodeFrame(msg);
  Status fed2 = assembler.FeedViews(
      stream2.data(), stream2.size(), [&](const FrameView& view) {
        Message m = view.BorrowMessage();
        copy_target.payload = m.payload;  // Copy-assign: deep copies the view.
      });
  ASSERT_TRUE(fed2.ok());
  EXPECT_FALSE(copy_target.payload.borrowed());
  EXPECT_TRUE(copy_target.payload == msg.payload);
}

TEST(FrameAssemblerTest, FeedViewsCarriedPartialFrameStaysZeroCopyCorrect) {
  // A frame split across feeds decodes from the internal carry buffer; views
  // for it alias that buffer, views for frames that arrive whole alias the
  // input. Both must yield identical messages.
  std::vector<Message> sent;
  std::vector<uint8_t> stream;
  for (int i = 0; i < 8; ++i) {
    Message m = Make(MessageType::kPartialUpdate, i, i + 1, 100 + i,
                     std::vector<uint8_t>(static_cast<size_t>(3 + i * 11),
                                          static_cast<uint8_t>(i)));
    std::vector<uint8_t> frame = EncodeFrame(m);
    stream.insert(stream.end(), frame.begin(), frame.end());
    sent.push_back(std::move(m));
  }
  for (size_t chunk : {size_t{1}, size_t{2}, size_t{7}, size_t{64}}) {
    FrameAssembler assembler;
    std::vector<Message> got;
    for (size_t pos = 0; pos < stream.size(); pos += chunk) {
      size_t n = std::min(chunk, stream.size() - pos);
      ASSERT_TRUE(assembler
                      .FeedViews(stream.data() + pos, n,
                                 [&](const FrameView& view) {
                                   got.push_back(view.ToMessage());
                                 })
                      .ok());
    }
    ASSERT_EQ(got.size(), sent.size()) << "chunk " << chunk;
    for (size_t i = 0; i < sent.size(); ++i) {
      EXPECT_TRUE(SameMessage(got[i], sent[i])) << "chunk " << chunk;
    }
    EXPECT_EQ(assembler.buffered_bytes(), 0u);
  }
}

TEST(FrameAssemblerTest, FeedViewsRejectsCorruptFramesWhole) {
  // Whole-frame rejection on the zero-copy path: a corrupt frame's sink is
  // never called, no matter where in the frame the damage sits.
  Message msg = Make(MessageType::kToken, 3, 4, 5, {1, 2, 3, 4, 5});
  std::vector<uint8_t> frame = EncodeFrame(msg);
  for (size_t i = 4; i < frame.size(); ++i) {
    std::vector<uint8_t> bad = frame;
    bad[i] ^= 0xff;
    FrameAssembler assembler;
    int sinks = 0;
    Status fed = assembler.FeedViews(bad.data(), bad.size(),
                                     [&](const FrameView&) { ++sinks; });
    EXPECT_FALSE(fed.ok()) << "byte " << i;
    EXPECT_EQ(sinks, 0) << "byte " << i;
  }
  // Same guarantee when the corrupt frame trickles in byte by byte (decode
  // happens from the carry buffer instead of the input).
  frame[6] ^= 0xff;
  FrameAssembler assembler;
  int sinks = 0;
  Status status = Status::OK();
  for (uint8_t byte : frame) {
    status = assembler.FeedViews(&byte, 1, [&](const FrameView&) { ++sinks; });
    if (!status.ok()) break;
  }
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(sinks, 0);
}

TEST(FrameAssemblerTest, DeliversCompleteFramesBeforePoison) {
  Message good = Make(MessageType::kToken, 1, 2, 3, {6});
  Message bad = Make(MessageType::kToken, 1, 2, 4, {7});
  std::vector<uint8_t> stream = EncodeFrame(good);
  std::vector<uint8_t> frame2 = EncodeFrame(bad);
  frame2[5] ^= 0xff;  // Corrupt the second frame's CRC.
  stream.insert(stream.end(), frame2.begin(), frame2.end());

  FrameAssembler assembler;
  std::vector<Message> got;
  EXPECT_FALSE(assembler.Feed(stream.data(), stream.size(), &got).ok());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(SameMessage(got[0], good));
}

TEST(BatchFrameTest, RoundTripsWithPerMessageTraces) {
  // Three same-destination messages with distinct traces coalesce into one
  // frame; the assembler unpacks them back into three messages, each keeping
  // its own type, seq, and trace context.
  std::vector<Message> msgs = {
      Make(MessageType::kQueryAnswer, 1, 9, 100, {1, 2, 3}),
      Make(MessageType::kPartialUpdate, 1, 9, 101, {}),
      Make(MessageType::kUpdateStart, 1, 9, 102,
           std::vector<uint8_t>(300, 0x7e)),
  };
  for (size_t i = 0; i < msgs.size(); ++i) {
    msgs[i].trace.trace_id = 0x1000 + i;
    msgs[i].trace.parent_span = 0x2000 + i;
    msgs[i].trace.hop = static_cast<uint32_t>(i);
  }
  std::vector<uint8_t> frame = EncodeBatchFrame(msgs);

  FrameAssembler assembler;
  std::vector<Message> got;
  ASSERT_TRUE(assembler.Feed(frame.data(), frame.size(), &got).ok());
  ASSERT_EQ(got.size(), msgs.size());
  for (size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_TRUE(SameMessage(got[i], msgs[i])) << "message " << i;
  }
  // One wire frame, no matter how many messages it carried — the credit
  // protocol acks frames, so a batch costs its sender exactly one credit.
  EXPECT_EQ(assembler.frames_decoded(), 1u);

  // One frame for three messages must beat three frames (the whole point):
  size_t solo = 0;
  for (const Message& m : msgs) solo += EncodeFrame(m).size();
  EXPECT_LT(frame.size(), solo);
}

TEST(BatchFrameTest, SurvivesArbitraryFragmentation) {
  std::vector<Message> msgs;
  for (int i = 0; i < 10; ++i) {
    msgs.push_back(Make(MessageType::kQueryAnswer, 2, 5,
                        static_cast<uint64_t>(i),
                        std::vector<uint8_t>(static_cast<size_t>(i * 13),
                                             static_cast<uint8_t>(i))));
  }
  std::vector<uint8_t> frame = EncodeBatchFrame(msgs);
  for (size_t chunk : {size_t{1}, size_t{5}, frame.size()}) {
    FrameAssembler assembler;
    std::vector<Message> got;
    for (size_t pos = 0; pos < frame.size(); pos += chunk) {
      size_t n = std::min(chunk, frame.size() - pos);
      ASSERT_TRUE(assembler.Feed(frame.data() + pos, n, &got).ok());
    }
    ASSERT_EQ(got.size(), msgs.size()) << "chunk " << chunk;
    for (size_t i = 0; i < msgs.size(); ++i) {
      EXPECT_TRUE(SameMessage(got[i], msgs[i])) << "chunk " << chunk;
    }
    EXPECT_EQ(assembler.frames_decoded(), 1u);
  }
}

TEST(BatchFrameTest, NestedBatchAndCreditInsideBatchPoisonTheStream) {
  // The wire format forbids recursion: a batch carrying a kBatch or kCredit
  // entry is malformed and rejects whole, before any sink fires.
  for (MessageType inner : {MessageType::kBatch, MessageType::kCredit}) {
    std::vector<Message> msgs = {
        Make(MessageType::kQueryAnswer, 1, 2, 3, {1}),
        Make(inner, 1, 2, 4, {0}),
    };
    std::vector<uint8_t> frame = EncodeBatchFrame(msgs);
    FrameAssembler assembler;
    int sinks = 0;
    Status fed = assembler.FeedViews(frame.data(), frame.size(),
                                     [&](const FrameView&) { ++sinks; });
    EXPECT_FALSE(fed.ok()) << MessageTypeName(inner);
    EXPECT_EQ(sinks, 0) << MessageTypeName(inner);
  }
}

TEST(BatchFrameTest, TruncatedInnerPayloadRejectsWholeBatch) {
  std::vector<Message> msgs = {
      Make(MessageType::kQueryAnswer, 1, 2, 3, {1, 2, 3, 4}),
      Make(MessageType::kQueryAnswer, 1, 2, 4, {5, 6, 7, 8}),
  };
  // Re-wrap the batch body minus its tail: the last entry's payload length
  // now promises more bytes than the frame holds.
  auto outer = DecodeFrame(EncodeBatchFrame(msgs));
  ASSERT_TRUE(outer.ok());
  ASSERT_EQ(outer->type, MessageType::kBatch);
  std::vector<uint8_t> body(outer->payload.data(),
                            outer->payload.data() + outer->payload.size() - 2);
  Message cut;
  cut.type = MessageType::kBatch;
  cut.from = outer->from;
  cut.to = outer->to;
  cut.payload = std::move(body);
  std::vector<uint8_t> frame = EncodeFrame(cut);

  FrameAssembler assembler;
  int sinks = 0;
  Status fed = assembler.FeedViews(frame.data(), frame.size(),
                                   [&](const FrameView&) { ++sinks; });
  EXPECT_FALSE(fed.ok());
  EXPECT_EQ(sinks, 0);

  // Same for an empty batch (count of zero): structurally a frame, but no
  // transport ever sends one.
  Message empty;
  empty.type = MessageType::kBatch;
  empty.from = 1;
  empty.to = 2;
  empty.payload = std::vector<uint8_t>{0};  // varint count = 0
  std::vector<uint8_t> empty_frame = EncodeFrame(empty);
  FrameAssembler assembler2;
  EXPECT_FALSE(assembler2
                   .FeedViews(empty_frame.data(), empty_frame.size(),
                              [&](const FrameView&) { ++sinks; })
                   .ok());
  EXPECT_EQ(sinks, 0);
}

TEST(CreditFrameTest, RoundTripsCumulativeCount) {
  for (uint64_t consumed : {uint64_t{1}, uint64_t{300}, ~uint64_t{0}}) {
    std::vector<uint8_t> frame = EncodeCreditFrame(7, consumed);
    FrameAssembler assembler;
    uint64_t got = 0;
    int sinks = 0;
    Status fed = assembler.FeedViews(
        frame.data(), frame.size(), [&](const FrameView& view) {
          ++sinks;
          EXPECT_EQ(view.type, MessageType::kCredit);
          EXPECT_EQ(view.from, 7u);
          auto decoded = DecodeCreditPayload(view);
          ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
          got = *decoded;
        });
    ASSERT_TRUE(fed.ok());
    EXPECT_EQ(sinks, 1);
    EXPECT_EQ(got, consumed);
  }
}

TEST(CreditFrameTest, MalformedPayloadIsRejected) {
  // Trailing garbage after the varint, and an empty payload, both fail.
  Message bad;
  bad.type = MessageType::kCredit;
  bad.from = 3;
  bad.to = kNoNode;
  bad.payload = std::vector<uint8_t>{5, 0};  // count plus a stray byte
  std::vector<uint8_t> frame = EncodeFrame(bad);
  FrameAssembler assembler;
  Status fed = assembler.FeedViews(
      frame.data(), frame.size(), [&](const FrameView& view) {
        EXPECT_FALSE(DecodeCreditPayload(view).ok());
      });
  EXPECT_TRUE(fed.ok());  // The frame itself is sound; the payload is not.

  bad.payload = std::vector<uint8_t>{};
  std::vector<uint8_t> empty_frame = EncodeFrame(bad);
  Status fed2 = assembler.FeedViews(
      empty_frame.data(), empty_frame.size(), [&](const FrameView& view) {
        EXPECT_FALSE(DecodeCreditPayload(view).ok());
      });
  EXPECT_TRUE(fed2.ok());
}

TEST(CreditFrameTest, FramesDecodedCountsWireFramesNotMessages) {
  // Stream = plain frame + 3-message batch + credit: 3 wire frames total,
  // which is what a receiver credits back (the credit unit is the frame).
  std::vector<uint8_t> stream =
      EncodeFrame(Make(MessageType::kToken, 1, 2, 1, {9}));
  std::vector<Message> msgs = {
      Make(MessageType::kQueryAnswer, 1, 2, 2, {1}),
      Make(MessageType::kQueryAnswer, 1, 2, 3, {2}),
      Make(MessageType::kQueryAnswer, 1, 2, 4, {3}),
  };
  std::vector<uint8_t> batch = EncodeBatchFrame(msgs);
  stream.insert(stream.end(), batch.begin(), batch.end());
  std::vector<uint8_t> credit = EncodeCreditFrame(2, 17);
  stream.insert(stream.end(), credit.begin(), credit.end());

  FrameAssembler assembler;
  int sinks = 0;
  ASSERT_TRUE(assembler
                  .FeedViews(stream.data(), stream.size(),
                             [&](const FrameView&) { ++sinks; })
                  .ok());
  EXPECT_EQ(sinks, 5);  // 1 plain + 3 unpacked + 1 credit view.
  EXPECT_EQ(assembler.frames_decoded(), 3u);
}

// --- Control-plane handshake codec (src/core/control.h) -------------------

/// A realistic bootstrap built from the Section-2 running example: real
/// schemas, real coordination rules headed at the bootstrapped node, a full
/// endpoint table plus the controller's own row.
core::wire::SessionBootstrap MakeBootstrap() {
  auto system = p2pdb::workload::MakeRunningExample();
  EXPECT_TRUE(system.ok());
  const NodeId node = system->rules().front().head_node;
  core::wire::SessionBootstrap b;
  b.epoch = 7;
  b.node = node;
  b.name = system->node(node).name;
  b.super_peer = 0;
  for (const auto& [name, relation] : system->node(node).db.relations()) {
    (void)name;
    b.schema.push_back(relation.schema());
  }
  for (const core::CoordinationRule* rule : system->RulesWithHead(node)) {
    b.rules.push_back(*rule);
  }
  for (NodeId n = 0; n < system->node_count(); ++n) {
    b.endpoints.push_back({n, "127.0.0.1", static_cast<uint16_t>(7100 + n)});
  }
  b.endpoints.push_back(
      {static_cast<NodeId>(system->node_count()), "127.0.0.1", 39999});
  return b;
}

TEST(ControlCodecTest, SessionBootstrapRoundTrips) {
  core::wire::SessionBootstrap b = MakeBootstrap();
  ASSERT_FALSE(b.schema.empty());
  ASSERT_FALSE(b.rules.empty());
  auto decoded = core::wire::SessionBootstrap::Decode(b.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->epoch, b.epoch);
  EXPECT_EQ(decoded->node, b.node);
  EXPECT_EQ(decoded->name, b.name);
  EXPECT_EQ(decoded->super_peer, b.super_peer);
  ASSERT_EQ(decoded->schema.size(), b.schema.size());
  for (size_t i = 0; i < b.schema.size(); ++i) {
    EXPECT_TRUE(decoded->schema[i] == b.schema[i]);
  }
  ASSERT_EQ(decoded->rules.size(), b.rules.size());
  for (size_t i = 0; i < b.rules.size(); ++i) {
    // CoordinationRule has no operator==; the printable form is canonical.
    EXPECT_EQ(decoded->rules[i].ToString(), b.rules[i].ToString());
  }
  EXPECT_EQ(decoded->endpoints, b.endpoints);
}

TEST(ControlCodecTest, MalformedBootstrapIsRejected) {
  core::wire::SessionBootstrap b = MakeBootstrap();
  std::vector<uint8_t> good = b.Encode();

  // Trailing bytes: decoded whole or not at all.
  std::vector<uint8_t> trailing = good;
  trailing.push_back(0);
  EXPECT_FALSE(core::wire::SessionBootstrap::Decode(trailing).ok());

  // Any truncation fails (no prefix of a bootstrap is a bootstrap).
  for (size_t cut = 0; cut < good.size(); ++cut) {
    std::vector<uint8_t> prefix(good.begin(), good.begin() + cut);
    EXPECT_FALSE(core::wire::SessionBootstrap::Decode(prefix).ok())
        << "prefix of " << cut << " bytes decoded";
  }

  // A rule headed at a different node than the bootstrapped one is a
  // provisioning error the codec itself rejects.
  core::wire::SessionBootstrap wrong = MakeBootstrap();
  wrong.rules.front().head_node = wrong.node + 1;
  auto decoded = core::wire::SessionBootstrap::Decode(wrong.Encode());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("not headed"), std::string::npos);
}

TEST(ControlCodecTest, AckStatusAndDumpRoundTrip) {
  core::wire::BootstrapAck ack;
  ack.epoch = 9;
  ack.node = 3;
  ack.name = "D";
  ack.accepted = false;
  ack.error = "schema drift on relation 'd'";
  auto ack2 = core::wire::BootstrapAck::Decode(ack.Encode());
  ASSERT_TRUE(ack2.ok());
  EXPECT_EQ(ack2->epoch, ack.epoch);
  EXPECT_EQ(ack2->node, ack.node);
  EXPECT_EQ(ack2->name, ack.name);
  EXPECT_EQ(ack2->accepted, ack.accepted);
  EXPECT_EQ(ack2->error, ack.error);

  core::wire::StatusReport report;
  report.epoch = 2;
  report.node = 1;
  report.name = "B";
  report.state_discovery = 2;
  report.state_update = 1;
  report.tuples = 12345;
  report.tuples_inserted = 678;
  report.joins_evaluated = 90;
  report.answers_sent = 11;
  report.token_passes = 4;
  report.reopens = 1;
  auto report2 = core::wire::StatusReport::Decode(report.Encode());
  ASSERT_TRUE(report2.ok());
  EXPECT_TRUE(*report2 == report);
  report2->tuples += 1;  // operator== is field-exact (fixpoint probe).
  EXPECT_FALSE(*report2 == report);

  core::wire::ControlStartUpdate start;
  start.epoch = 5;
  start.session = 42;
  auto start2 = core::wire::ControlStartUpdate::Decode(start.Encode());
  ASSERT_TRUE(start2.ok());
  EXPECT_EQ(start2->epoch, start.epoch);
  EXPECT_EQ(start2->session, start.session);

  core::wire::DumpReply dump;
  dump.epoch = 5;
  dump.node = 2;
  dump.database = {0xde, 0xad, 0xbe, 0xef};
  auto dump2 = core::wire::DumpReply::Decode(dump.Encode());
  ASSERT_TRUE(dump2.ok());
  EXPECT_EQ(dump2->database, dump.database);
}

}  // namespace
}  // namespace p2pdb::net
