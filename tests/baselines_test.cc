// Baseline algorithms: the centralized global fix-point and the acyclic pull.
#include <gtest/gtest.h>

#include "src/core/acyclic_pull.h"
#include "src/core/global_fixpoint.h"
#include "src/core/session.h"
#include "src/lang/parser.h"
#include "src/net/sim_runtime.h"
#include "src/relational/null_iso.h"
#include "src/workload/scenario.h"

namespace p2pdb::core {
namespace {

TEST(GlobalFixpointTest, RunningExampleConverges) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  auto result = ComputeGlobalFixpoint(*system, rel::ChaseOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->iterations, 1u);
  EXPECT_GT(result->chase.inserted, 0u);
  // b at node B holds the three e-pairs, the initial pair, and r3 output.
  EXPECT_GE((*result->node_dbs[1].Get("b"))->size(), 4u);
}

TEST(GlobalFixpointTest, NoRulesMeansNoChange) {
  auto system = lang::ParseSystem(R"(
node A { rel a(x); fact a("v"); }
node B { rel b(x); }
)");
  ASSERT_TRUE(system.ok());
  auto result = ComputeGlobalFixpoint(*system, rel::ChaseOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->iterations, 1u);
  EXPECT_EQ(result->chase.inserted, 0u);
  EXPECT_TRUE(result->node_dbs[0] == system->node(0).db);
}

TEST(GlobalFixpointTest, IterationCountGrowsWithChainDepth) {
  // Naive evaluation needs roughly depth-many passes when rule order opposes
  // the data flow direction.
  auto shallow = lang::ParseSystem(R"(
node A { rel a(x); }
node B { rel b(x); fact b("v"); }
rule r1: B.b(X) => A.a(X);
)");
  auto deep = lang::ParseSystem(R"(
node A { rel a(x); }
node B { rel b(x); }
node C { rel c(x); }
node D { rel d(x); fact d("v"); }
rule r1: B.b(X) => A.a(X);
rule r2: C.c(X) => B.b(X);
rule r3: D.d(X) => C.c(X);
)");
  ASSERT_TRUE(shallow.ok());
  ASSERT_TRUE(deep.ok());
  auto s = ComputeGlobalFixpoint(*shallow, rel::ChaseOptions{});
  auto d = ComputeGlobalFixpoint(*deep, rel::ChaseOptions{});
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_LE(s->iterations, d->iterations);
}

// Cross-implementation comparisons run under the homomorphism chase policy:
// it is evaluation-order independent for the scenario's rule family, while
// the paper's per-atom projection check is not (finding F1 in EXPERIMENTS.md).
rel::ChaseOptions HomChase() {
  rel::ChaseOptions chase;
  chase.policy = rel::ChasePolicy::kHomomorphismCheck;
  return chase;
}

TEST(AcyclicPullTest, MatchesGlobalFixpointOnTree) {
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kTree;
  options.topology.nodes = 7;
  options.records_per_node = 6;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok());
  auto pull = RunAcyclicPull(*system, HomChase());
  ASSERT_TRUE(pull.ok()) << pull.status().ToString();
  auto global = ComputeGlobalFixpoint(*system, HomChase());
  ASSERT_TRUE(global.ok());
  for (NodeId n = 0; n < 7; ++n) {
    EXPECT_TRUE(
        rel::DatabasesCertainEqual(pull->node_dbs[n], global->node_dbs[n]))
        << "node " << n;
  }
  EXPECT_GT(pull->messages, 0u);
  EXPECT_GT(pull->bytes, 0u);
}

TEST(AcyclicPullTest, MatchesGlobalFixpointOnLayeredDag) {
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kLayeredDag;
  options.topology.nodes = 10;
  options.topology.layers = 4;
  options.records_per_node = 4;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok());
  auto pull = RunAcyclicPull(*system, HomChase());
  ASSERT_TRUE(pull.ok());
  auto global = ComputeGlobalFixpoint(*system, HomChase());
  ASSERT_TRUE(global.ok());
  for (NodeId n = 0; n < 10; ++n) {
    EXPECT_TRUE(
        rel::DatabasesCertainEqual(pull->node_dbs[n], global->node_dbs[n]))
        << "node " << n;
  }
}

TEST(AcyclicPullTest, RejectsCyclicNetworks) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  auto pull = RunAcyclicPull(*system, rel::ChaseOptions{});
  EXPECT_FALSE(pull.ok());
  EXPECT_EQ(pull.status().code(), StatusCode::kInvalidArgument);
}

TEST(BaselinesTest, DistributedUsesFewerAnswerBytesWithDeltaOnDag) {
  // Sanity comparison wiring for bench B1: both algorithms produce the same
  // instance on a DAG; message counts are comparable quantities.
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kLayeredDag;
  options.topology.nodes = 8;
  options.records_per_node = 5;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok());

  auto pull = RunAcyclicPull(*system, HomChase());
  ASSERT_TRUE(pull.ok());

  net::SimRuntime rt;
  Session::Options session_options;
  session_options.peer.update.chase = HomChase();
  Session session(*system, &rt, session_options);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());
  for (NodeId n = 0; n < 8; ++n) {
    EXPECT_TRUE(rel::DatabasesCertainEqual(session.peer(n).db(),
                                           pull->node_dbs[n]))
        << "node " << n;
  }
  // The single-pass pull is a lower bound on data-carrying traffic.
  EXPECT_GE(rt.stats().total_messages(), pull->messages);
}

}  // namespace
}  // namespace p2pdb::core
