#include "src/relational/chase.h"

#include <gtest/gtest.h>

#include "src/relational/eval.h"

namespace p2pdb::rel {
namespace {

Value S(const char* s) { return Value::Str(s); }

Database PersonDb() {
  Database db;
  (void)db.CreateRelation(RelationSchema("person", {"name"}));
  (void)db.CreateRelation(RelationSchema("parent", {"child", "who"}));
  return db;
}

Atom ParentAtom() {
  Atom a;
  a.relation = "parent";
  a.terms = {Term::Var("X"), Term::Var("Z")};  // Z existential.
  return a;
}

TEST(ChaseTest, FullyBoundHeadInserts) {
  Database db = PersonDb();
  Atom head;
  head.relation = "person";
  head.terms = {Term::Var("X")};
  Binding b{{"X", S("ann")}};
  NullFactory nulls(1);
  ChaseStats stats;
  ASSERT_TRUE(
      ApplyRuleHead(&db, {head}, b, &nulls, ChaseOptions{}, &stats).ok());
  EXPECT_EQ(stats.inserted, 1u);
  EXPECT_TRUE((*db.Get("person"))->Contains(Tuple({S("ann")})));
  // Re-application is a no-op.
  ASSERT_TRUE(
      ApplyRuleHead(&db, {head}, b, &nulls, ChaseOptions{}, &stats).ok());
  EXPECT_EQ(stats.inserted, 1u);
  EXPECT_EQ(stats.skipped, 1u);
}

TEST(ChaseTest, ExistentialInventsNull) {
  Database db = PersonDb();
  Binding b{{"X", S("ann")}};
  NullFactory nulls(1);
  ChaseStats stats;
  ASSERT_TRUE(ApplyRuleHead(&db, {ParentAtom()}, b, &nulls, ChaseOptions{},
                            &stats)
                  .ok());
  EXPECT_EQ(stats.inserted, 1u);
  const Relation* parent = *db.Get("parent");
  ASSERT_EQ(parent->size(), 1u);
  const Tuple& t = *parent->tuples().begin();
  EXPECT_EQ(t.at(0), S("ann"));
  EXPECT_TRUE(t.at(1).is_null());
}

TEST(ChaseTest, ProjectionCheckSkipsWhenBoundPartPresent) {
  Database db = PersonDb();
  // parent(ann, bob) exists: projection on the bound position X=ann matches,
  // so the A6 check suppresses a fresh witness.
  (void)db.Insert("parent", Tuple({S("ann"), S("bob")}));
  Binding b{{"X", S("ann")}};
  NullFactory nulls(1);
  ChaseStats stats;
  ChaseOptions options;
  options.policy = ChasePolicy::kProjectionCheck;
  ASSERT_TRUE(
      ApplyRuleHead(&db, {ParentAtom()}, b, &nulls, options, &stats).ok());
  EXPECT_EQ(stats.inserted, 0u);
  EXPECT_EQ(stats.skipped, 1u);
  EXPECT_EQ((*db.Get("parent"))->size(), 1u);
}

TEST(ChaseTest, HomomorphismCheckAgreesOnSingleAtom) {
  Database db = PersonDb();
  (void)db.Insert("parent", Tuple({S("ann"), S("bob")}));
  Binding b{{"X", S("ann")}};
  NullFactory nulls(1);
  ChaseStats stats;
  ChaseOptions options;
  options.policy = ChasePolicy::kHomomorphismCheck;
  ASSERT_TRUE(
      ApplyRuleHead(&db, {ParentAtom()}, b, &nulls, options, &stats).ok());
  EXPECT_EQ(stats.inserted, 0u);
  EXPECT_EQ(stats.skipped, 1u);
}

TEST(ChaseTest, SharedExistentialAcrossHeadAtoms) {
  Database db;
  (void)db.CreateRelation(RelationSchema("pub", {"id", "title"}));
  (void)db.CreateRelation(RelationSchema("wrote", {"author", "id"}));
  Atom pub;
  pub.relation = "pub";
  pub.terms = {Term::Var("I"), Term::Var("T")};
  Atom wrote;
  wrote.relation = "wrote";
  wrote.terms = {Term::Var("A"), Term::Var("I")};
  Binding b{{"T", S("t1")}, {"A", S("alice")}};
  NullFactory nulls(1);
  ChaseStats stats;
  ASSERT_TRUE(ApplyRuleHead(&db, {pub, wrote}, b, &nulls, ChaseOptions{},
                            &stats)
                  .ok());
  EXPECT_EQ(stats.inserted, 2u);
  const Tuple& p = *(*db.Get("pub"))->tuples().begin();
  const Tuple& w = *(*db.Get("wrote"))->tuples().begin();
  EXPECT_TRUE(p.at(0).is_null());
  EXPECT_EQ(p.at(0), w.at(1));  // Same invented witness in both atoms.
}

TEST(ChaseTest, HomomorphismCheckSeesLinkedAtoms) {
  // pub(i1, t1) and wrote(alice, i2) exist but are NOT linked by a shared id.
  // The projection check (per atom) wrongly considers the head satisfied;
  // the homomorphism check requires a single witness joining both.
  Database db;
  (void)db.CreateRelation(RelationSchema("pub", {"id", "title"}));
  (void)db.CreateRelation(RelationSchema("wrote", {"author", "id"}));
  (void)db.Insert("pub", Tuple({S("i1"), S("t1")}));
  (void)db.Insert("wrote", Tuple({S("alice"), S("i2")}));
  Atom pub;
  pub.relation = "pub";
  pub.terms = {Term::Var("I"), Term::Var("T")};
  Atom wrote;
  wrote.relation = "wrote";
  wrote.terms = {Term::Var("A"), Term::Var("I")};
  Binding b{{"T", S("t1")}, {"A", S("alice")}};
  NullFactory nulls(1);

  ChaseStats proj_stats;
  ChaseOptions proj;
  proj.policy = ChasePolicy::kProjectionCheck;
  Database db_proj = db;
  ASSERT_TRUE(ApplyRuleHead(&db_proj, {pub, wrote}, b, &nulls, proj,
                            &proj_stats)
                  .ok());
  EXPECT_EQ(proj_stats.inserted, 0u);  // Both projections present: skipped.

  ChaseStats hom_stats;
  ChaseOptions hom;
  hom.policy = ChasePolicy::kHomomorphismCheck;
  Database db_hom = db;
  ASSERT_TRUE(
      ApplyRuleHead(&db_hom, {pub, wrote}, b, &nulls, hom, &hom_stats).ok());
  EXPECT_EQ(hom_stats.inserted, 2u);  // Properly linked witness created.
}

TEST(ChaseTest, DepthBoundSuppressesRunawayNulls) {
  Database db = PersonDb();
  NullFactory nulls(1);
  ChaseOptions options;
  options.max_null_depth = 3;
  ChaseStats stats;
  // Simulate a feedback loop: each round binds X to the previously invented
  // null and asks for a new witness.
  Value x = S("seed");
  for (int round = 0; round < 10; ++round) {
    Binding b{{"X", x}};
    Atom head;
    head.relation = "parent";
    head.terms = {Term::Var("X"), Term::Var("Z")};
    ASSERT_TRUE(ApplyRuleHead(&db, {head}, b, &nulls, options, &stats).ok());
    // Find the invented witness for the next round, if any.
    bool found = false;
    for (const Tuple& t : (*db.Get("parent"))->tuples()) {
      if (t.at(0) == x && t.at(1).is_null()) {
        x = t.at(1);
        found = true;
        break;
      }
    }
    if (!found) break;
  }
  EXPECT_GT(stats.truncated, 0u);
  // Depth never exceeds the bound: at most max_null_depth-1 invention rounds.
  EXPECT_LE((*db.Get("parent"))->size(), 3u);
}

TEST(ChaseTest, ApplyAllProcessesEveryBinding) {
  Database db = PersonDb();
  Atom head;
  head.relation = "person";
  head.terms = {Term::Var("X")};
  std::vector<Binding> bindings{{{"X", S("a")}}, {{"X", S("b")}},
                                {{"X", S("a")}}};
  NullFactory nulls(1);
  ChaseStats stats;
  ASSERT_TRUE(ApplyRuleHeadAll(&db, {head}, bindings, &nulls, ChaseOptions{},
                               &stats)
                  .ok());
  EXPECT_EQ(stats.inserted, 2u);
  EXPECT_EQ(stats.skipped, 1u);
}

}  // namespace
}  // namespace p2pdb::rel
