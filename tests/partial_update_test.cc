// Query-dependent updates: pull only the relations a local query needs,
// bounded by the paper's SN path mechanism (A4).
#include <gtest/gtest.h>

#include "src/core/session.h"
#include "src/lang/parser.h"
#include "src/net/sim_runtime.h"
#include "src/workload/scenario.h"

namespace p2pdb::core {
namespace {

rel::Value S(const char* s) { return rel::Value::Str(s); }

TEST(PartialUpdateTest, PullsOnlyRequestedRelations) {
  auto system = lang::ParseSystem(R"(
node A { rel a(x); rel a2(x); }
node B { rel b(x); fact b("b1"); }
node C { rel c(x); fact c("c1"); }
rule r1: B.b(X) => A.a(X);
rule r2: C.c(X) => A.a2(X);
)");
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  // Pull only relation "a" at node A: rule r1 is relevant, r2 is not.
  ASSERT_TRUE(session.RunPartialUpdate(0, {"a"}).ok());
  EXPECT_TRUE((*session.peer(0).db().Get("a"))->Contains(rel::Tuple({S("b1")})));
  EXPECT_TRUE((*session.peer(0).db().Get("a2"))->empty());
}

TEST(PartialUpdateTest, TransitivePullThroughChain) {
  auto system = lang::ParseSystem(R"(
node A { rel a(x); }
node B { rel b(x); }
node C { rel c(x); fact c("deep"); }
rule r1: B.b(X) => A.a(X);
rule r2: C.c(X) => B.b(X);
)");
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunPartialUpdate(0, {"a"}).ok());
  // C's data travels C -> B -> A.
  EXPECT_TRUE(
      (*session.peer(0).db().Get("a"))->Contains(rel::Tuple({S("deep")})));
}

TEST(PartialUpdateTest, CycleBoundedBySnPath) {
  auto system = lang::ParseSystem(R"(
node A { rel a(x); fact a("fromA"); }
node B { rel b(x); fact b("fromB"); }
rule r1: B.b(X) => A.a(X);
rule r2: A.a(X) => B.b(X);
)");
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunPartialUpdate(0, {"a"}).ok());
  // A has B's data; the data flow converged (quiescence) despite the cycle.
  EXPECT_TRUE(
      (*session.peer(0).db().Get("a"))->Contains(rel::Tuple({S("fromB")})));
}

TEST(PartialUpdateTest, RunningExampleQueryDependent) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  // Node A pulls only what relation "a" needs (rule r4 from B, and upstream).
  ASSERT_TRUE(session.RunPartialUpdate(0, {"a"}).ok());
  EXPECT_FALSE((*session.peer(0).db().Get("a"))->empty());
  // The partial session does not flip closure states.
  EXPECT_NE(session.peer(4).update().state(), UpdateEngine::State::kClosed);
}

TEST(PartialUpdateTest, IrrelevantRelationPullsNothing) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  uint64_t before = rt.stats().total_messages();
  ASSERT_TRUE(session.RunPartialUpdate(4, {"e"}).ok());  // E has no rules.
  EXPECT_EQ(rt.stats().total_messages(), before);  // Nothing to do.
}

}  // namespace
}  // namespace p2pdb::core
