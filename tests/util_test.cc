#include <gtest/gtest.h>

#include <set>

#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace p2pdb {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All five values hit.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIndependent) {
  Rng parent(5);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinInvertsSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(JoinStrings(parts, ", "), "x, y, z");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimString("  a b \n"), "a b");
  EXPECT_EQ(TrimString(""), "");
  EXPECT_EQ(TrimString(" \t\r\n"), "");
  EXPECT_EQ(TrimString("x"), "x");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("prefix-rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

}  // namespace
}  // namespace p2pdb
