#include "src/relational/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/core/session.h"
#include "src/net/sim_runtime.h"
#include "src/workload/scenario.h"

namespace p2pdb::rel {
namespace {

Database SampleDb() {
  Database db;
  (void)db.CreateRelation(RelationSchema("r", {"x", "y"}));
  (void)db.CreateRelation(RelationSchema("empty", {"a"}));
  (void)db.Insert("r", Tuple({Value::Int(1), Value::Str("one")}));
  (void)db.Insert("r", Tuple({Value::Null(0x700000001ULL), Value::Int(-2)}));
  return db;
}

TEST(SnapshotTest, BytesRoundTrip) {
  Database db = SampleDb();
  auto back = DeserializeDatabase(SerializeDatabase(db));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == db);
}

TEST(SnapshotTest, EmptyDatabaseRoundTrips) {
  Database db;
  auto back = DeserializeDatabase(SerializeDatabase(db));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->relations().empty());
}

TEST(SnapshotTest, RejectsGarbageAndTruncation) {
  EXPECT_FALSE(DeserializeDatabase({1, 2, 3}).ok());
  std::vector<uint8_t> bytes = SerializeDatabase(SampleDb());
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DeserializeDatabase(bytes).ok());
  // Wrong magic.
  std::vector<uint8_t> wrong = SerializeDatabase(SampleDb());
  wrong[0] ^= 0xff;
  EXPECT_FALSE(DeserializeDatabase(wrong).ok());
}

TEST(SnapshotTest, TrailingBytesRejected) {
  std::vector<uint8_t> bytes = SerializeDatabase(SampleDb());
  bytes.push_back(0);
  EXPECT_FALSE(DeserializeDatabase(bytes).ok());
}

TEST(SnapshotTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/p2pdb_snapshot_test.bin";
  Database db = SampleDb();
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  auto back = LoadDatabase(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == db);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  auto result = LoadDatabase("/nonexistent/p2pdb.bin");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, MaterializedUpdateStateSurvivesPersistence) {
  // The point of the update algorithm: materialize once, query locally later —
  // including after a restart from a snapshot.
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  core::Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());

  const Database& materialized = session.peer(1).db();
  auto restored = DeserializeDatabase(SerializeDatabase(materialized));
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored == materialized);
  EXPECT_GE((*restored->Get("b"))->size(), 3u);
}

}  // namespace
}  // namespace p2pdb::rel
