#include "src/util/serde.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace p2pdb {
namespace {

TEST(SerdeTest, PrimitivesRoundTrip) {
  Writer w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutVarint(0);
  w.PutVarint(127);
  w.PutVarint(128);
  w.PutVarint(~0ULL);
  w.PutI64(-1);
  w.PutI64(1LL << 62);
  w.PutString("hello");
  w.PutString("");

  Reader r(w.bytes());
  EXPECT_EQ(*r.GetU8(), 0xab);
  EXPECT_EQ(*r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*r.GetVarint(), 0u);
  EXPECT_EQ(*r.GetVarint(), 127u);
  EXPECT_EQ(*r.GetVarint(), 128u);
  EXPECT_EQ(*r.GetVarint(), ~0ULL);
  EXPECT_EQ(*r.GetI64(), -1);
  EXPECT_EQ(*r.GetI64(), 1LL << 62);
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, ReadsPastEndFail) {
  Writer w;
  w.PutU8(1);
  Reader r(w.bytes());
  EXPECT_TRUE(r.GetU8().ok());
  EXPECT_FALSE(r.GetU8().ok());
  EXPECT_FALSE(r.GetU32().ok());
  EXPECT_FALSE(r.GetU64().ok());
  EXPECT_FALSE(r.GetVarint().ok());
  EXPECT_FALSE(r.GetString().ok());
}

TEST(SerdeTest, TruncatedStringFails) {
  Writer w;
  w.PutVarint(100);  // Length prefix without the bytes.
  Reader r(w.bytes());
  EXPECT_FALSE(r.GetString().ok());
}

TEST(SerdeTest, MalformedVarintFails) {
  std::vector<uint8_t> bytes(11, 0x80);  // Never terminates within 64 bits.
  Reader r(bytes.data(), bytes.size());
  EXPECT_FALSE(r.GetVarint().ok());
}

class SerdeVarintSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdeVarintSweep, VarintRoundTrips) {
  Writer w;
  w.PutVarint(GetParam());
  Reader r(w.bytes());
  EXPECT_EQ(*r.GetVarint(), GetParam());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, SerdeVarintSweep,
                         ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL,
                                           16383ULL, 16384ULL, (1ULL << 32),
                                           (1ULL << 63), ~0ULL));

TEST(SerdeTest, RandomSignedRoundTrip) {
  Rng rng(99);
  Writer w;
  std::vector<int64_t> values;
  for (int i = 0; i < 200; ++i) {
    int64_t v = static_cast<int64_t>(rng.Next());
    values.push_back(v);
    w.PutI64(v);
  }
  Reader r(w.bytes());
  for (int64_t expected : values) {
    auto got = r.GetI64();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, expected);
  }
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace p2pdb
