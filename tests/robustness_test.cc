// Robustness: at-least-once delivery. The data-plane protocol is idempotent
// by design (set-union answers, dedup-by-id joins and subscriptions), so
// duplicated messages must not change results or prevent closure on acyclic
// networks. (The SCC token ring assumes reliable exactly-once pipes, as the
// paper's JXTA transport provides; cyclic topologies are excluded here.)
#include <gtest/gtest.h>

#include "src/core/global_fixpoint.h"
#include "src/core/session.h"
#include "src/net/sim_runtime.h"
#include "src/relational/null_iso.h"
#include "src/workload/scenario.h"

namespace p2pdb::core {
namespace {

class DuplicationSweep : public ::testing::TestWithParam<double> {};

TEST_P(DuplicationSweep, AcyclicUpdateUnaffectedByDuplicates) {
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kTree;
  options.topology.nodes = 10;
  options.records_per_node = 10;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok());

  net::SimRuntime::Options sim;
  sim.duplicate_prob = GetParam();
  sim.seed = 77;
  net::SimRuntime rt(sim);
  Session::Options session_options;
  session_options.peer.update.chase.policy =
      rel::ChasePolicy::kHomomorphismCheck;
  Session session(*system, &rt, session_options);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());

  rel::ChaseOptions chase;
  chase.policy = rel::ChasePolicy::kHomomorphismCheck;
  auto global = ComputeGlobalFixpoint(*system, chase);
  ASSERT_TRUE(global.ok());
  for (NodeId n : session.Participants()) {
    EXPECT_TRUE(
        rel::DatabasesCertainEqual(session.peer(n).db(), global->node_dbs[n]))
        << "node " << n << " with duplicate_prob " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Probabilities, DuplicationSweep,
                         ::testing::Values(0.0, 0.1, 0.4, 0.9));

TEST(RobustnessTest, DiscoveryToleratesDuplicates) {
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kLayeredDag;
  options.topology.nodes = 12;
  options.topology.layers = 4;
  options.records_per_node = 1;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok());

  auto run = [&](double dup) {
    net::SimRuntime::Options sim;
    sim.duplicate_prob = dup;
    net::SimRuntime rt(sim);
    Session session(*system, &rt);
    EXPECT_TRUE(session.RunDiscovery().ok());
    std::vector<std::set<wire::Edge>> knowledge;
    for (size_t n = 0; n < session.peer_count(); ++n) {
      knowledge.push_back(session.peer(n).known_edges());
    }
    return knowledge;
  };
  EXPECT_EQ(run(0.0), run(0.5));
}

TEST(RobustnessTest, DuplicatesCountedInStats) {
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kChain;
  options.topology.nodes = 5;
  options.records_per_node = 3;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok());

  auto messages = [&](double dup) {
    net::SimRuntime::Options sim;
    sim.duplicate_prob = dup;
    sim.seed = 5;
    net::SimRuntime rt(sim);
    Session session(*system, &rt);
    EXPECT_TRUE(session.RunDiscovery().ok());
    EXPECT_TRUE(session.RunUpdate().ok());
    return rt.stats().total_messages();
  };
  EXPECT_GT(messages(0.9), messages(0.0));
}

}  // namespace
}  // namespace p2pdb::core
