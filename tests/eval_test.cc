#include "src/relational/eval.h"

#include <gtest/gtest.h>

namespace p2pdb::rel {
namespace {

Value S(const char* s) { return Value::Str(s); }
Value I(int64_t i) { return Value::Int(i); }

Database EdgeDb() {
  Database db;
  (void)db.CreateRelation(RelationSchema("edge", {"src", "dst"}));
  for (auto [a, b] : std::vector<std::pair<const char*, const char*>>{
           {"a", "b"}, {"b", "c"}, {"c", "d"}, {"a", "c"}}) {
    (void)db.Insert("edge", Tuple({S(a), S(b)}));
  }
  return db;
}

Atom EdgeAtom(const char* x, const char* y) {
  Atom a;
  a.relation = "edge";
  a.terms = {Term::Var(x), Term::Var(y)};
  return a;
}

TEST(EvalTest, SingleAtomProjection) {
  Database db = EdgeDb();
  ConjunctiveQuery q;
  q.head_vars = {"X"};
  q.atoms = {EdgeAtom("X", "Y")};
  auto result = EvaluateQuery(db, q);
  ASSERT_TRUE(result.ok());
  // Distinct sources: a, b, c.
  EXPECT_EQ(result->size(), 3u);
}

TEST(EvalTest, JoinTwoHops) {
  Database db = EdgeDb();
  ConjunctiveQuery q;
  q.head_vars = {"X", "Z"};
  q.atoms = {EdgeAtom("X", "Y"), EdgeAtom("Y", "Z")};
  auto result = EvaluateQuery(db, q);
  ASSERT_TRUE(result.ok());
  // a->b->c, b->c->d, a->c->d.
  EXPECT_EQ(result->size(), 3u);
  EXPECT_TRUE(result->count(Tuple({S("a"), S("c")})));
  EXPECT_TRUE(result->count(Tuple({S("b"), S("d")})));
  EXPECT_TRUE(result->count(Tuple({S("a"), S("d")})));
}

TEST(EvalTest, ConstantsInAtoms) {
  Database db = EdgeDb();
  ConjunctiveQuery q;
  q.head_vars = {"Y"};
  Atom a;
  a.relation = "edge";
  a.terms = {Term::Const(S("a")), Term::Var("Y")};
  q.atoms = {a};
  auto result = EvaluateQuery(db, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);  // b and c.
}

TEST(EvalTest, RepeatedVariableWithinAtom) {
  Database db;
  (void)db.CreateRelation(RelationSchema("p", {"x", "y"}));
  (void)db.Insert("p", Tuple({I(1), I(1)}));
  (void)db.Insert("p", Tuple({I(1), I(2)}));
  ConjunctiveQuery q;
  q.head_vars = {"X"};
  Atom a;
  a.relation = "p";
  a.terms = {Term::Var("X"), Term::Var("X")};
  q.atoms = {a};
  auto result = EvaluateQuery(db, q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_TRUE(result->count(Tuple({I(1)})));
}

TEST(EvalTest, BuiltinNe) {
  Database db = EdgeDb();
  ConjunctiveQuery q;
  q.head_vars = {"X", "Y", "Z"};
  q.atoms = {EdgeAtom("X", "Y"), EdgeAtom("X", "Z")};
  Builtin ne;
  ne.op = BuiltinOp::kNe;
  ne.lhs = Term::Var("Y");
  ne.rhs = Term::Var("Z");
  q.builtins = {ne};
  auto result = EvaluateQuery(db, q);
  ASSERT_TRUE(result.ok());
  // Only a has two successors: (a,b,c) and (a,c,b).
  EXPECT_EQ(result->size(), 2u);
}

TEST(EvalTest, BuiltinComparisonsOnInts) {
  Database db;
  (void)db.CreateRelation(RelationSchema("num", {"v"}));
  for (int i = 1; i <= 5; ++i) (void)db.Insert("num", Tuple({I(i)}));
  for (auto [op, expected] :
       std::vector<std::pair<BuiltinOp, size_t>>{{BuiltinOp::kLt, 2},
                                                 {BuiltinOp::kLe, 3},
                                                 {BuiltinOp::kGt, 2},
                                                 {BuiltinOp::kGe, 3},
                                                 {BuiltinOp::kEq, 1},
                                                 {BuiltinOp::kNe, 4}}) {
    ConjunctiveQuery q;
    q.head_vars = {"V"};
    Atom a;
    a.relation = "num";
    a.terms = {Term::Var("V")};
    q.atoms = {a};
    Builtin b;
    b.op = op;
    b.lhs = Term::Var("V");
    b.rhs = Term::Const(I(3));
    q.builtins = {b};
    auto result = EvaluateQuery(db, q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->size(), expected) << BuiltinOpName(op);
  }
}

TEST(EvalTest, UnsafeHeadVariableRejected) {
  Database db = EdgeDb();
  ConjunctiveQuery q;
  q.head_vars = {"W"};
  q.atoms = {EdgeAtom("X", "Y")};
  auto result = EvaluateQuery(db, q);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(EvalTest, UnsafeBuiltinVariableRejected) {
  Database db = EdgeDb();
  ConjunctiveQuery q;
  q.head_vars = {"X"};
  q.atoms = {EdgeAtom("X", "Y")};
  Builtin b;
  b.op = BuiltinOp::kEq;
  b.lhs = Term::Var("Unbound");
  b.rhs = Term::Const(I(1));
  q.builtins = {b};
  EXPECT_FALSE(EvaluateQuery(db, q).ok());
}

TEST(EvalTest, MissingRelationGivesEmptyAnswer) {
  Database db = EdgeDb();
  ConjunctiveQuery q;
  q.head_vars = {"X"};
  Atom a;
  a.relation = "nope";
  a.terms = {Term::Var("X")};
  q.atoms = {a};
  auto result = EvaluateQuery(db, q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(EvalTest, EmptyQueryIsBooleanTrue) {
  Database db;
  ConjunctiveQuery q;  // No atoms, no builtins.
  auto result = EvaluateQuery(db, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);  // The empty tuple.
}

TEST(EvalTest, CrossProductWhenNoSharedVars) {
  Database db;
  (void)db.CreateRelation(RelationSchema("l", {"x"}));
  (void)db.CreateRelation(RelationSchema("r", {"y"}));
  (void)db.Insert("l", Tuple({I(1)}));
  (void)db.Insert("l", Tuple({I(2)}));
  (void)db.Insert("r", Tuple({I(10)}));
  (void)db.Insert("r", Tuple({I(20)}));
  (void)db.Insert("r", Tuple({I(30)}));
  ConjunctiveQuery q;
  q.head_vars = {"X", "Y"};
  Atom l;
  l.relation = "l";
  l.terms = {Term::Var("X")};
  Atom r;
  r.relation = "r";
  r.terms = {Term::Var("Y")};
  q.atoms = {l, r};
  auto result = EvaluateQuery(db, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 6u);
}

TEST(EvalTest, BindingsIncludeAllBodyVariables) {
  Database db = EdgeDb();
  ConjunctiveQuery q;
  q.atoms = {EdgeAtom("X", "Y")};
  auto bindings = EvaluateBindings(db, q);
  ASSERT_TRUE(bindings.ok());
  EXPECT_EQ(bindings->size(), 4u);
  for (const Binding& b : *bindings) {
    EXPECT_TRUE(b.count("X"));
    EXPECT_TRUE(b.count("Y"));
  }
}

TEST(EvalTest, LargerJoinUsesIndexCorrectly) {
  // Same result regardless of index path: compare a chain join over a bigger
  // relation against a hand-computed count.
  Database db;
  (void)db.CreateRelation(RelationSchema("succ", {"a", "b"}));
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    (void)db.Insert("succ", Tuple({I(i), I(i + 1)}));
  }
  ConjunctiveQuery q;
  q.head_vars = {"A", "D"};
  Atom s1, s2, s3;
  s1.relation = s2.relation = s3.relation = "succ";
  s1.terms = {Term::Var("A"), Term::Var("B")};
  s2.terms = {Term::Var("B"), Term::Var("C")};
  s3.terms = {Term::Var("C"), Term::Var("D")};
  q.atoms = {s1, s2, s3};
  auto result = EvaluateQuery(db, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), static_cast<size_t>(n - 2));
  EXPECT_TRUE(result->count(Tuple({I(0), I(3)})));
}

TEST(UnifyTest, RollbackOnMismatch) {
  Atom a = EdgeAtom("X", "X");
  Binding binding;
  Tuple t({S("p"), S("q")});
  EXPECT_FALSE(UnifyAtomWithTuple(a, t, &binding));
  EXPECT_TRUE(binding.empty());  // X must not remain bound.
}

}  // namespace
}  // namespace p2pdb::rel
