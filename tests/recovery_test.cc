// Crash-recovery integration on the deterministic sim runtime: a peer with
// durable storage crashes mid-propagation, loses its volatile state and every
// in-flight message, restarts from checkpoint + WAL replay, rejoins through
// the ordinary discovery/session path, and the network re-converges to the
// same global fix-point a never-crashed run reaches (up to renaming of
// labeled nulls).
#include <gtest/gtest.h>

#include <filesystem>

#include "src/core/global_fixpoint.h"
#include "src/core/session.h"
#include "src/lang/parser.h"
#include "src/net/sim_runtime.h"
#include "src/relational/null_iso.h"
#include "src/storage/storage_manager.h"
#include "src/util/log_capture.h"
#include "src/workload/scenario.h"

namespace p2pdb::core {
namespace {

std::string FreshRoot(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/p2pdb_recovery_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Opens (or reopens) one durable backend per node under `root`, as a
/// restarted peer process would reopen its data directory.
Session::StorageProvider DirProvider(const std::string& root) {
  return [root](NodeId node) -> std::unique_ptr<storage::Storage> {
    storage::StorageOptions options;
    options.dir = root + "/peer" + std::to_string(node);
    auto manager = storage::StorageManager::Open(options);
    EXPECT_TRUE(manager.ok()) << manager.status().ToString();
    return manager.ok() ? std::move(*manager) : nullptr;
  };
}

/// Session options wired to per-node data directories under `root`: crash
/// and restart reopen the same directory through Options::storage.
Session::Options DurableOptions(const std::string& root) {
  Session::Options options;
  options.storage = DirProvider(root);
  return options;
}

/// Runs discovery + one full update with no churn and returns the final
/// per-node databases.
std::vector<rel::Database> BaselineRun(const P2PSystem& system) {
  net::SimRuntime rt;
  Session session(system, &rt);
  EXPECT_TRUE(session.RunDiscovery().ok());
  EXPECT_TRUE(session.RunUpdate().ok());
  EXPECT_TRUE(session.AllClosed());
  return session.SnapshotDatabases();
}

TEST(RecoveryTest, CrashedPeerRecoversItsExactPreCrashDatabase) {
  // Low-level primitives: crash a peer mid-propagation and check that
  // restart-from-storage reproduces its database bit for bit (the WAL logged
  // every applied delta) while in-flight messages to it are dropped.
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  auto victim = system->NodeByName("B");
  ASSERT_TRUE(victim.ok());
  std::string root = FreshRoot("exact");

  net::SimRuntime rt;
  Session session(*system, &rt, DurableOptions(root));
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.AttachStorage(*victim).ok());

  session.peer(0).StartUpdate(77);
  ASSERT_TRUE(rt.RunUntil(rt.NowMicros() + 3'000).ok());
  rel::Database pre_crash = session.peer(*victim).db();
  ASSERT_GT(pre_crash.TotalTuples(), 0u);

  ScopedLogCapture quiet;  // Dropped-message warnings are expected.
  ASSERT_TRUE(session.CrashPeer(*victim).ok());
  EXPECT_FALSE(session.IsAlive(*victim));
  ASSERT_TRUE(rt.Run().ok());  // Drain; deliveries to the victim are lost.

  ASSERT_TRUE(session.RestartPeer(*victim).ok());
  ASSERT_TRUE(session.IsAlive(*victim));
  EXPECT_TRUE(session.peer(*victim).db() == pre_crash);

  // Rejoin via the existing discovery/session path and close globally.
  ASSERT_TRUE(session.Rediscover().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  EXPECT_TRUE(session.AllClosed());
}

TEST(RecoveryTest, RunningExampleChurnReachesNeverCrashedFixpoint) {
  // The acceptance scenario: crash B mid-propagation of the Section-2
  // running example, restart it from checkpoint + WAL, and compare the
  // re-converged network against a never-crashed run, node by node.
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  std::vector<rel::Database> baseline = BaselineRun(*system);

  std::string root = FreshRoot("running_example");
  net::SimRuntime rt;
  Session session(*system, &rt, DurableOptions(root));
  ASSERT_TRUE(session.RunDiscovery().ok());

  auto victim = system->NodeByName("B");
  ASSERT_TRUE(victim.ok());
  ChurnScript churn = {ChurnEvent::Crash(3'000, *victim),
                       ChurnEvent::Restart(9'000, *victim)};
  ScopedLogCapture quiet;
  ASSERT_TRUE(session.RunUpdateWithChurn(churn).ok());
  ASSERT_TRUE(session.AllClosed());

  for (size_t n = 0; n < session.peer_count(); ++n) {
    EXPECT_TRUE(
        rel::DatabasesIsomorphic(session.peer(n).db(), baseline[n]))
        << "node " << n << " diverged from the never-crashed run";
  }
}

TEST(RecoveryTest, GeneratedScenarioWithNullsSurvivesMultiPeerChurn) {
  // Heterogeneous-schema translation rules mint labeled nulls; two peers
  // crash (staggered) and restart. The rejoined network must match the
  // never-crashed fix-point up to null renaming.
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kTree;
  options.topology.nodes = 8;
  options.records_per_node = 6;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok());
  std::vector<rel::Database> baseline = BaselineRun(*system);

  workload::ChurnPlanOptions plan;
  plan.crashes = 2;
  plan.crash_at_micros = 2'500;
  plan.downtime_micros = 6'000;
  auto churn = workload::PlanCrashRestart(*system, /*super_peer=*/0, plan);
  ASSERT_TRUE(churn.ok()) << churn.status().ToString();
  ASSERT_TRUE(ValidateChurnScript(*churn, system->node_count()).ok());

  std::string root = FreshRoot("generated");
  net::SimRuntime rt;
  Session session(*system, &rt, DurableOptions(root));
  ASSERT_TRUE(session.RunDiscovery().ok());
  ScopedLogCapture quiet;
  ASSERT_TRUE(session.RunUpdateWithChurn(*churn).ok());
  ASSERT_TRUE(session.AllClosed());

  for (size_t n = 0; n < session.peer_count(); ++n) {
    EXPECT_TRUE(rel::DatabasesIsomorphic(session.peer(n).db(), baseline[n]))
        << "node " << n;
  }
}

TEST(RecoveryTest, ChurnMatchesGlobalFixpointBaseline) {
  // Same churn run, judged against the independent global (centralized)
  // fix-point computation instead of a second distributed run.
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kLayeredDag;
  options.topology.nodes = 9;
  options.topology.layers = 3;
  options.records_per_node = 5;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok());

  auto churn = workload::PlanCrashRestart(*system, /*super_peer=*/0,
                                          workload::ChurnPlanOptions{});
  ASSERT_TRUE(churn.ok());

  std::string root = FreshRoot("global_baseline");
  net::SimRuntime rt;
  Session session(*system, &rt, DurableOptions(root));
  ASSERT_TRUE(session.RunDiscovery().ok());
  ScopedLogCapture quiet;
  ASSERT_TRUE(session.RunUpdateWithChurn(*churn).ok());
  ASSERT_TRUE(session.AllClosed());

  auto global = ComputeGlobalFixpoint(*system, rel::ChaseOptions{});
  ASSERT_TRUE(global.ok());
  for (NodeId n : session.Participants()) {
    EXPECT_TRUE(rel::DatabasesCertainEqual(session.peer(n).db(),
                                           global->node_dbs[n]))
        << "node " << n;
  }
}

TEST(RecoveryTest, CrashAfterCompletionRejoinsWithoutRingLivelock) {
  // A peer that crashes AFTER its session completed restarts idle; the
  // rediscovery wave then restarts the SCC token ring against a member that
  // is not ready and never will be within this session. Depending on the
  // interleaving, the dead peer's lost counters leave the ring sums equal
  // (seen on the TCP runtime, where this livelocked: millions of token
  // passes) or unequal; both must pause and re-converge via the next
  // session. This pins the scenario on the deterministic runtime; the TCP
  // churn tests cover the concurrent interleavings.
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  std::vector<rel::Database> baseline = BaselineRun(*system);

  std::string root = FreshRoot("post_completion");
  net::SimRuntime rt;
  Session session(*system, &rt, DurableOptions(root));
  ASSERT_TRUE(session.RunDiscovery().ok());

  auto victim = system->NodeByName("B");
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(session.AttachStorage(*victim).ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());  // Crash only after full completion.

  ScopedLogCapture quiet;
  ASSERT_TRUE(session.CrashPeer(*victim).ok());
  ASSERT_TRUE(session.RestartPeer(*victim).ok());
  ASSERT_TRUE(session.Rediscover().ok());  // A ring livelock would hang here.
  ASSERT_TRUE(session.RunUpdate().ok());
  EXPECT_TRUE(session.AllClosed());
  for (size_t n = 0; n < session.peer_count(); ++n) {
    EXPECT_TRUE(rel::DatabasesIsomorphic(session.peer(n).db(), baseline[n]))
        << "node " << n;
  }
  std::filesystem::remove_all(root);
}

TEST(RecoveryTest, MidSessionRuleChangesReplayFromWal) {
  // Durable rule state: addLink/deleteLink applied mid-session are logged to
  // the head's WAL and replayed by Recover(), so a restarted head has the
  // changed rule set without the change driver re-delivering notifications.
  auto system = lang::ParseSystem(R"(
node A { rel a(x); }
node B { rel b(x); fact b("b1"); }
node D { rel d(x); fact d("d1"); }
rule r1: B.b(X) => A.a(X);
)");
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  NodeId head = *system->NodeByName("A");

  std::string root = FreshRoot("rules");
  net::SimRuntime rt;
  Session session(*system, &rt, DurableOptions(root));
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.AttachStorage(head).ok());

  // addLink r2 (A additionally pulls from D), then deleteLink r1, both
  // arriving while the update session runs.
  CoordinationRule r2;
  r2.id = "r2";
  r2.head_node = head;
  rel::Atom head_atom;
  head_atom.relation = "a";
  head_atom.terms = {rel::Term::Var("X")};
  r2.head_atoms = {head_atom};
  CoordinationRule::BodyPart part;
  part.node = *system->NodeByName("D");
  rel::Atom body_atom;
  body_atom.relation = "d";
  body_atom.terms = {rel::Term::Var("X")};
  part.atoms = {body_atom};
  r2.body = {part};
  // A churny history: r2 added, removed, re-added; r1 (initial) deleted.
  session.ScheduleChange(AtomicChange::Add(1'500, r2));
  session.ScheduleChange(AtomicChange::Delete(2'000, head, "r2"));
  session.ScheduleChange(AtomicChange::Add(2'200, r2));
  session.ScheduleChange(AtomicChange::Delete(2'500, head, "r1"));
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_EQ(session.peer(head).rules().size(), 1u);
  ASSERT_EQ(session.peer(head).rules()[0].id, "r2");

  ScopedLogCapture quiet;
  ASSERT_TRUE(session.CrashPeer(head).ok());
  ASSERT_TRUE(rt.Run().ok());
  ASSERT_TRUE(session.RestartPeer(head).ok());

  // The initial rule set would be {r1}; the WAL replay must re-apply the add
  // of r2 and the delete of r1.
  const std::vector<CoordinationRule>& rules = session.peer(head).rules();
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].id, "r2");

  // Recovery compacts the four-record history to the net diff (add r2,
  // delete r1), so the durable history is bounded by the rule count.
  {
    storage::StorageOptions probe;
    probe.dir = root + "/peer" + std::to_string(head);
    auto manager = storage::StorageManager::Open(probe);
    ASSERT_TRUE(manager.ok());
    storage::RecoveryInfo info;
    ASSERT_TRUE((*manager)->Recover(&info).ok());
    EXPECT_EQ(info.rule_changes.size(), 2u);
  }

  // A second crash/restart cycle replays the compacted history identically.
  ASSERT_TRUE(session.CrashPeer(head).ok());
  ASSERT_TRUE(session.RestartPeer(head).ok());
  ASSERT_EQ(session.peer(head).rules().size(), 1u);
  EXPECT_EQ(session.peer(head).rules()[0].id, "r2");

  // And the rejoined network still converges with the changed topology.
  ASSERT_TRUE(session.Rediscover().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  EXPECT_TRUE(session.AllClosed());
  std::filesystem::remove_all(root);
}

TEST(RecoveryTest, RestartWithoutPriorCrashIsRejected) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  std::string root = FreshRoot("guards");
  Session session(*system, &rt, DurableOptions(root));
  EXPECT_FALSE(session.RestartPeer(1).ok());
  EXPECT_FALSE(session.CrashPeer(99).ok());

  ChurnScript bad = {ChurnEvent::Restart(1'000, 1)};
  EXPECT_FALSE(session.RunUpdateWithChurn(bad).ok());

  // A purely volatile session (no Options::storage) cannot attach or
  // restart at all.
  net::SimRuntime volatile_rt;
  Session volatile_session(*system, &volatile_rt);
  EXPECT_FALSE(volatile_session.AttachStorage(1).ok());
}

TEST(RecoveryTest, ZeroDowntimePlanKeepsCrashBeforeRestart) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  workload::ChurnPlanOptions plan;
  plan.crashes = 3;
  plan.downtime_micros = 0;  // Crash and restart share a timestamp.
  plan.stagger_micros = 0;
  auto churn = workload::PlanCrashRestart(*system, /*super_peer=*/0, plan);
  ASSERT_TRUE(churn.ok()) << churn.status().ToString();
  EXPECT_TRUE(ValidateChurnScript(*churn, system->node_count()).ok());
}

}  // namespace
}  // namespace p2pdb::core
