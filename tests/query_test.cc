// Query plane: the lock-free MVCC read path (src/core/query.h) and its
// snapshot machinery (src/relational/mvcc.h). Covers snapshot/live
// equivalence before and after updates, copy-on-write sharing, point
// lookups, crashed-peer reads, the generated query workload, and a
// TSan-targeted hammer: reader threads on Session::Query while a churned
// TCP update propagates underneath.
#include "src/core/query.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include "src/core/session.h"
#include "src/net/sim_runtime.h"
#include "src/net/tcp_runtime.h"
#include "src/relational/eval.h"
#include "src/relational/mvcc.h"
#include "src/storage/storage_manager.h"
#include "src/util/log_capture.h"
#include "src/workload/queries.h"
#include "src/workload/scenario.h"

namespace p2pdb::core {
namespace {

rel::Value S(const char* s) { return rel::Value::Str(s); }

std::string FreshRoot(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/p2pdb_query_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Session::StorageProvider DirProvider(const std::string& root) {
  return [root](NodeId node) -> std::unique_ptr<storage::Storage> {
    storage::StorageOptions options;
    options.dir = root + "/peer" + std::to_string(node);
    auto manager = storage::StorageManager::Open(options);
    EXPECT_TRUE(manager.ok()) << manager.status().ToString();
    return manager.ok() ? std::move(*manager) : nullptr;
  };
}

/// R(X, Y) projected onto both columns — the full binary relation.
rel::ConjunctiveQuery AllPairs(const std::string& relation) {
  rel::ConjunctiveQuery cq;
  rel::Atom atom;
  atom.relation = relation;
  atom.terms = {rel::Term::Var("X"), rel::Term::Var("Y")};
  cq.atoms.push_back(atom);
  cq.head_vars = {"X", "Y"};
  return cq;
}

TEST(QueryPlaneTest, InitialSnapshotMatchesLiveDatabase) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);

  auto e = system->NodeByName("E");
  ASSERT_TRUE(e.ok());
  auto via_snapshot = session.Query(*e, AllPairs("e"));
  ASSERT_TRUE(via_snapshot.ok()) << via_snapshot.status().ToString();
  auto via_live = rel::EvaluateQuery(session.peer(*e).db(), AllPairs("e"));
  ASSERT_TRUE(via_live.ok());
  EXPECT_EQ(*via_snapshot, *via_live);
  EXPECT_EQ(via_snapshot->size(), 3u);

  auto snap = session.PeerSnapshot(*e);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ((*snap)->version(), 0u);  // No delta batch committed yet.
}

TEST(QueryPlaneTest, SnapshotAdvancesWithCommittedUpdate) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());

  // Every node's published snapshot answers exactly like its live database.
  for (const char* name : {"A", "B", "C", "D", "E"}) {
    auto id = system->NodeByName(name);
    ASSERT_TRUE(id.ok());
    for (const auto& [relation, live] : session.peer(*id).db().relations()) {
      (void)live;
      auto via_snapshot = session.Query(*id, AllPairs(relation));
      auto via_live =
          rel::EvaluateQuery(session.peer(*id).db(), AllPairs(relation));
      if (!via_live.ok()) continue;  // Arity-1 relations: skip.
      ASSERT_TRUE(via_snapshot.ok());
      EXPECT_EQ(*via_snapshot, *via_live) << name << "." << relation;
    }
  }

  // The update pushed E's facts into B, so B committed at least one batch.
  auto b = system->NodeByName("B");
  ASSERT_TRUE(b.ok());
  auto snap = session.PeerSnapshot(*b);
  ASSERT_TRUE(snap.ok());
  EXPECT_GT((*snap)->version(), 0u);
  auto derived = session.Query(*b, AllPairs("b"));
  ASSERT_TRUE(derived.ok());
  EXPECT_TRUE(derived->count(rel::Tuple({S("u"), S("v")})));  // From E.e.
}

TEST(QueryPlaneTest, AdvanceSharesUntouchedRelations) {
  rel::Database db;
  ASSERT_TRUE(db.CreateRelation(rel::RelationSchema("hot", {"x", "y"})).ok());
  ASSERT_TRUE(db.CreateRelation(rel::RelationSchema("cold", {"x"})).ok());
  ASSERT_TRUE(*db.Insert("hot", rel::Tuple({S("a"), S("b")})));
  ASSERT_TRUE(*db.Insert("cold", rel::Tuple({S("k")})));

  rel::SnapshotPtr v0 = rel::BuildSnapshot(db, 0);
  ASSERT_TRUE(*db.Insert("hot", rel::Tuple({S("c"), S("d")})));
  rel::SnapshotPtr v1 = rel::AdvanceSnapshot(v0, db, {"hot"}, 1);

  // Copy-on-write: the untouched relation is the same frozen object; the
  // touched one was re-frozen. The old snapshot still serves the old data.
  EXPECT_EQ(v0->relations().at("cold"), v1->relations().at("cold"));
  EXPECT_NE(v0->relations().at("hot"), v1->relations().at("hot"));
  EXPECT_EQ(v0->FindRelation("hot")->size(), 1u);
  EXPECT_EQ(v1->FindRelation("hot")->size(), 2u);
  EXPECT_EQ(v1->version(), 1u);
}

TEST(QueryPlaneTest, PointLookupsHitMissAndBoundsCheck) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);

  auto e = system->NodeByName("E");
  ASSERT_TRUE(e.ok());
  auto hit = session.QueryPoint(*e, "e", rel::Tuple({S("u"), S("v")}));
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(*hit);
  auto miss = session.QueryPoint(*e, "e", rel::Tuple({S("zz"), S("zz")}));
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(*miss);
  auto no_rel = session.QueryPoint(*e, "nosuch", rel::Tuple({S("u")}));
  ASSERT_TRUE(no_rel.ok());
  EXPECT_FALSE(*no_rel);

  EXPECT_FALSE(session.Query(99, AllPairs("e")).ok());
  EXPECT_FALSE(session.QueryPoint(99, "e", rel::Tuple({S("u")})).ok());
  EXPECT_FALSE(session.PeerSnapshot(99).ok());
}

TEST(QueryPlaneTest, ArityMismatchedAtomAnswersEmpty) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);

  // C.f has arity 1; querying it as binary must answer empty (unification
  // fails tuple by tuple), never crash or build an out-of-range index.
  auto c = system->NodeByName("C");
  ASSERT_TRUE(c.ok());
  auto wide = session.Query(*c, AllPairs("f"));
  ASSERT_TRUE(wide.ok());
  EXPECT_TRUE(wide->empty());

  // Constant at a position past the relation's arity: the index fast path
  // must be skipped, not taken with an out-of-range column.
  rel::ConjunctiveQuery cq;
  rel::Atom atom;
  atom.relation = "f";
  atom.terms = {rel::Term::Var("X"), rel::Term::Const(S("u"))};
  cq.atoms.push_back(atom);
  cq.head_vars = {"X"};
  auto gated = session.Query(*c, cq);
  ASSERT_TRUE(gated.ok());
  EXPECT_TRUE(gated->empty());
}

TEST(QueryPlaneTest, CrashedPeerKeepsServingItsLastSnapshot) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());

  auto b = system->NodeByName("B");
  ASSERT_TRUE(b.ok());
  auto before = session.Query(*b, AllPairs("b"));
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before->empty());

  ASSERT_TRUE(session.CrashPeer(*b).ok());
  ASSERT_FALSE(session.IsAlive(*b));

  // The peer object is gone, but its SnapshotStore (session-owned) still
  // serves the last committed state — readers never observe the crash.
  auto after = session.Query(*b, AllPairs("b"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);
  auto hit = session.QueryPoint(*b, "b", *before->begin());
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(*hit);
}

TEST(QueryPlaneTest, RestartedPeerPublishesRecoveredSnapshot) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  std::string root = FreshRoot("restart");
  Session::Options options;
  options.storage = DirProvider(root);
  Session session(*system, &rt, options);
  ASSERT_TRUE(session.RunDiscovery().ok());

  auto victim = system->NodeByName("B");
  ASSERT_TRUE(victim.ok());
  ChurnScript churn = {ChurnEvent::Crash(3'000, *victim),
                       ChurnEvent::Restart(9'000, *victim)};
  ScopedLogCapture quiet;
  ASSERT_TRUE(session.RunUpdateWithChurn(churn).ok());
  ASSERT_TRUE(session.AllClosed());

  // After checkpoint + WAL replay and re-convergence, the published
  // snapshot matches the live recovered database.
  auto via_snapshot = session.Query(*victim, AllPairs("b"));
  ASSERT_TRUE(via_snapshot.ok());
  auto via_live =
      rel::EvaluateQuery(session.peer(*victim).db(), AllPairs("b"));
  ASSERT_TRUE(via_live.ok());
  EXPECT_EQ(*via_snapshot, *via_live);
  EXPECT_FALSE(via_snapshot->empty());
}

TEST(QueryWorkloadTest, DeterministicSafeAndHonestAboutHits) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  workload::QueryWorkloadOptions options;
  options.ops = 256;
  auto a = workload::BuildQueryWorkload(*system, options);
  auto b = workload::BuildQueryWorkload(*system, options);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), 256u);
  ASSERT_EQ(a->size(), b->size());

  net::SimRuntime rt;
  Session session(*system, &rt);
  size_t points = 0;
  for (size_t i = 0; i < a->size(); ++i) {
    const workload::QueryOp& op = (*a)[i];
    EXPECT_EQ(op.is_point, (*b)[i].is_point);  // Same seed, same stream.
    EXPECT_EQ(op.node, (*b)[i].node);
    ASSERT_LT(op.node, system->node_count());
    if (op.is_point) {
      ++points;
      auto hit = session.QueryPoint(op.node, op.relation, op.key);
      ASSERT_TRUE(hit.ok());
      EXPECT_EQ(*hit, op.expect_hit) << "op " << i;
    } else {
      EXPECT_TRUE(op.cq.CheckSafe().ok()) << "op " << i;
      auto rows = session.Query(op.node, op.cq);
      ASSERT_TRUE(rows.ok()) << rows.status().ToString();
      EXPECT_FALSE(rows->empty()) << "op " << i;  // Keys come from real data.
    }
  }
  EXPECT_GT(points, 0u);
  EXPECT_LT(points, a->size());
}

// The TSan target: reader threads hammer the query plane over real sockets
// while an update propagates and a peer crashes and recovers underneath.
// Readers assert three invariants per node: every read succeeds, snapshot
// versions never go backwards, and answers only grow (updates are monotone).
TEST(QueryPlaneTest, ConcurrentReadsDuringChurnedTcpUpdate) {
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kTree;
  options.topology.nodes = 8;
  options.records_per_node = 6;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok());

  net::TcpRuntime rt;
  std::string root = FreshRoot("tsan_churn");
  Session::Options session_options;
  session_options.storage = DirProvider(root);
  Session session(*system, &rt, session_options);
  ASSERT_TRUE(session.RunDiscovery().ok());

  workload::QueryWorkloadOptions wl;
  wl.ops = 128;
  auto ops = workload::BuildQueryWorkload(*system, wl);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();

  workload::ChurnPlanOptions plan;
  plan.crashes = 1;
  plan.crash_at_micros = 2'500;
  plan.downtime_micros = 6'000;
  auto churn = workload::PlanCrashRestart(*system, /*super_peer=*/0, plan);
  ASSERT_TRUE(churn.ok()) << churn.status().ToString();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> violations{0};
  auto reader = [&](size_t offset) {
    std::vector<uint64_t> last_version(system->node_count(), 0);
    std::map<size_t, size_t> last_rows;  // op index -> last answer size
    size_t i = offset % ops->size();
    while (!stop.load(std::memory_order_relaxed)) {
      const workload::QueryOp& op = (*ops)[i];
      auto snap = session.PeerSnapshot(op.node);
      if (!snap.ok() || (*snap)->version() < last_version[op.node]) {
        violations.fetch_add(1);
      } else {
        last_version[op.node] = (*snap)->version();
      }
      if (op.is_point) {
        auto hit = session.QueryPoint(op.node, op.relation, op.key);
        // Monotone updates: a hit can never become a miss, and a
        // deliberate-miss key can never start hitting.
        if (!hit.ok() || *hit != op.expect_hit) violations.fetch_add(1);
      } else {
        auto rows = session.Query(op.node, op.cq);
        if (!rows.ok() || rows->size() < last_rows[i]) {
          violations.fetch_add(1);
        } else {
          last_rows[i] = rows->size();
        }
      }
      served.fetch_add(1);
      i = (i + 1) % ops->size();
    }
  };

  std::vector<std::thread> readers;
  readers.emplace_back(reader, 0);
  readers.emplace_back(reader, ops->size() / 2);

  ScopedLogCapture quiet;
  Status update = session.RunUpdateWithChurn(*churn);
  stop.store(true);
  for (std::thread& t : readers) t.join();

  ASSERT_TRUE(update.ok()) << update.ToString();
  EXPECT_TRUE(session.AllClosed());
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(served.load(), 0u);
}

}  // namespace
}  // namespace p2pdb::core
