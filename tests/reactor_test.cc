// net::Reactor: the epoll engine under TcpRuntime, tested against raw
// sockets so kernel-level behavior (partial writes, refused connects, slow
// receivers) is exercised directly. Covers send-queue backpressure isolation
// (a slow reader wedges only its own senders), writev batching correctness
// across frame boundaries, exactly-once frame accounting through a mid-write
// teardown, and a many-peer TcpRuntime fixpoint smoke.
#include "src/net/reactor.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <numeric>
#include <thread>
#include <vector>

#include "src/core/session.h"
#include "src/net/tcp_runtime.h"
#include "src/util/log_capture.h"
#include "src/workload/scenario.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define P2PDB_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define P2PDB_SANITIZED 1
#endif

namespace p2pdb::net {
namespace {

using namespace std::chrono_literals;

/// Handler recording per-token accounting; every upcall is counted so tests
/// can assert the exactly-once frame contract (written + dropped = accepted).
class RecordingHandler : public Reactor::Handler {
 public:
  bool OnRead(Connection* conn, const uint8_t* data, size_t size) override {
    (void)conn;
    (void)data;
    read_bytes_.fetch_add(size);
    return true;
  }
  void OnWritten(Connection* conn, size_t frames) override {
    std::lock_guard<std::mutex> lock(mutex_);
    written_[conn->token()] += frames;
  }
  void OnClose(Connection* conn, size_t dropped_frames) override {
    std::lock_guard<std::mutex> lock(mutex_);
    dropped_[conn->token()] += dropped_frames;
    ++closes_;
  }

  size_t written(uint64_t token) {
    std::lock_guard<std::mutex> lock(mutex_);
    return written_[token];
  }
  size_t dropped(uint64_t token) {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_[token];
  }
  size_t closes() {
    std::lock_guard<std::mutex> lock(mutex_);
    return closes_;
  }

 private:
  std::mutex mutex_;
  std::map<uint64_t, size_t> written_;
  std::map<uint64_t, size_t> dropped_;
  size_t closes_ = 0;
  std::atomic<size_t> read_bytes_{0};
};

/// A plain kernel listener the reactor connects to; the test decides whether
/// and when to accept/read, which is how "slow receiver" is modeled.
struct RawListener {
  int fd = -1;
  uint16_t port = 0;

  static RawListener Open(int rcvbuf_bytes = 0) {
    RawListener l;
    l.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(l.fd, 0);
    if (rcvbuf_bytes > 0) {
      // Set before listen so accepted sockets inherit the tiny window.
      ::setsockopt(l.fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof(rcvbuf_bytes));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(l.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(l.fd, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(
        ::getsockname(l.fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    l.port = ntohs(addr.sin_port);
    return l;
  }

  int Accept() const { return ::accept(fd, nullptr, nullptr); }

  ~RawListener() {
    if (fd >= 0) ::close(fd);
  }
};

bool WaitUntil(const std::function<bool()>& cond,
               std::chrono::milliseconds deadline = 10'000ms) {
  auto end = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < end) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

TEST(ReactorTest, BackpressureIsolatesSlowReceiver) {
  IoCounters counters;
  RecordingHandler handler;
  Reactor::Options options;
  options.workers = 1;  // One loop serving both connections: the wedge would
                        // be visible immediately if a slow one could block it.
  options.send_queue_limit = 64 * 1024;
  options.send_buffer_bytes = 8 * 1024;
  options.counters = &counters;
  Reactor reactor(options, &handler);

  RawListener slow = RawListener::Open(/*rcvbuf_bytes=*/4 * 1024);
  RawListener fast = RawListener::Open();

  // Drain the fast endpoint continuously.
  std::atomic<bool> stop_drain{false};
  std::atomic<size_t> fast_received{0};
  std::thread drainer([&] {
    int conn = fast.Accept();
    ASSERT_GE(conn, 0);
    char buf[16 * 1024];
    while (!stop_drain.load()) {
      ssize_t n = ::recv(conn, buf, sizeof(buf), MSG_DONTWAIT);
      if (n > 0) {
        fast_received.fetch_add(static_cast<size_t>(n));
      } else {
        std::this_thread::sleep_for(1ms);
      }
    }
    ::close(conn);
  });

  auto slow_conn = reactor.Connect("127.0.0.1", slow.port, /*token=*/1);
  auto fast_conn = reactor.Connect("127.0.0.1", fast.port, /*token=*/2);

  // A sender hammering the never-accepted endpoint: the kernel buffers fill,
  // then the bounded send queue, then Enqueue blocks this thread.
  const std::vector<uint8_t> chunk(1024, 0xab);
  std::atomic<size_t> slow_accepted{0};
  std::atomic<bool> sender_done{false};
  std::thread sender([&] {
    for (int i = 0; i < 4096; ++i) {
      if (!slow_conn->Enqueue(std::vector<uint8_t>(chunk))) break;
      slow_accepted.fetch_add(1);
    }
    sender_done.store(true);
  });

  // The fast connection keeps flowing while the slow sender is wedged.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(fast_conn->Enqueue(std::vector<uint8_t>(chunk)));
  }
  EXPECT_TRUE(WaitUntil([&] { return fast_received.load() >= 50 * 1024; }));
  EXPECT_FALSE(sender_done.load());  // 4 MB cannot fit in ~72 KB of buffers.

  // Closing the slow connection unblocks the parked sender.
  slow_conn->RequestClose();
  EXPECT_TRUE(WaitUntil([&] { return sender_done.load(); }));
  sender.join();

  // Exactly-once accounting: every frame Enqueue accepted was reported
  // written or dropped, never both, never lost.
  EXPECT_TRUE(WaitUntil([&] {
    return handler.written(1) + handler.dropped(1) == slow_accepted.load();
  }));
  EXPECT_GT(handler.dropped(1), 0u);
  EXPECT_GT(counters.send_queue_hwm_bytes.load(), options.send_queue_limit / 2);

  stop_drain.store(true);
  drainer.join();
  reactor.Stop();
}

TEST(ReactorTest, WritevBatchesSmallFramesAndPreservesBoundaries) {
  IoCounters counters;
  RecordingHandler handler;
  Reactor::Options options;
  options.workers = 1;
  options.send_buffer_bytes = 16 * 1024;  // Forces partial writev results.
  options.counters = &counters;
  Reactor reactor(options, &handler);

  RawListener sink = RawListener::Open();
  std::vector<uint8_t> received;
  std::atomic<bool> done_receiving{false};
  size_t expected_total = 0;
  constexpr int kFrames = 5000;

  // Varied sizes so writev boundaries land mid-frame at every alignment.
  std::vector<uint8_t> expected;
  auto conn = reactor.Connect("127.0.0.1", sink.port, /*token=*/7);
  std::thread receiver([&] {
    int fd = sink.Accept();
    ASSERT_GE(fd, 0);
    char buf[64 * 1024];
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      received.insert(received.end(), buf, buf + n);
    }
    ::close(fd);
    done_receiving.store(true);
  });

  for (int i = 0; i < kFrames; ++i) {
    std::vector<uint8_t> frame(5 + (i % 117), static_cast<uint8_t>(i));
    expected.insert(expected.end(), frame.begin(), frame.end());
    expected_total += frame.size();
    ASSERT_TRUE(conn->Enqueue(std::move(frame)));
  }
  EXPECT_TRUE(
      WaitUntil([&] { return handler.written(7) == kFrames; }, 30'000ms));
  conn->RequestClose();  // Receiver sees EOF once everything is written.
  EXPECT_TRUE(WaitUntil([&] { return done_receiving.load(); }, 30'000ms));
  receiver.join();

  // Correctness across frame boundaries: the stream is the exact
  // concatenation of the enqueued frames.
  ASSERT_EQ(received.size(), expected_total);
  EXPECT_EQ(received, expected);

  // The point of writev: far fewer syscalls than frames.
  EXPECT_EQ(counters.writev_frames.load(), static_cast<uint64_t>(kFrames));
  EXPECT_LT(counters.writev_calls.load(), static_cast<uint64_t>(kFrames));
  EXPECT_GT(counters.FramesPerWritev(), 1.0);
  reactor.Stop();
}

TEST(ReactorTest, MidWriteTeardownReportsQueuedFramesDropped) {
  IoCounters counters;
  RecordingHandler handler;
  Reactor::Options options;
  options.workers = 1;
  options.send_queue_limit = 64u << 20;  // Accept everything; block nothing.
  options.send_buffer_bytes = 4 * 1024;
  options.counters = &counters;
  Reactor reactor(options, &handler);

  RawListener stuck = RawListener::Open(/*rcvbuf_bytes=*/4 * 1024);
  auto conn = reactor.Connect("127.0.0.1", stuck.port, /*token=*/3);

  constexpr size_t kFrames = 20;
  for (size_t i = 0; i < kFrames; ++i) {
    std::vector<uint8_t> frame(32 * 1024, static_cast<uint8_t>(i));
    ASSERT_TRUE(conn->Enqueue(std::move(frame)));
  }
  // Wait until the write is genuinely mid-frame: some bytes reached the
  // kernel but the queue is still loaded.
  ASSERT_TRUE(WaitUntil([&] { return counters.writev_bytes.load() > 0; }));
  ASSERT_GT(conn->queued_bytes(), 0u);

  conn->RequestClose();
  ASSERT_TRUE(WaitUntil([&] { return handler.closes() == 1; }));
  // The partially-written front frame never arrived whole, so it counts as
  // dropped; accounting still covers every accepted frame exactly once.
  EXPECT_GE(handler.dropped(3), 1u);
  EXPECT_EQ(handler.written(3) + handler.dropped(3), kFrames);
  reactor.Stop();
}

TEST(ReactorTest, ConnectRefusedDropsQueuedFrames) {
  RecordingHandler handler;
  Reactor reactor(Reactor::Options{}, &handler);

  uint16_t dead_port;
  {
    RawListener probe = RawListener::Open();
    dead_port = probe.port;  // Closed again before we connect.
  }
  auto conn = reactor.Connect("127.0.0.1", dead_port, /*token=*/9);
  // Whether the frame is accepted races with the kernel refusing the
  // connect (sanitizer slowdown can let the refusal win): an accepted frame
  // must be reported dropped exactly once; a refused one stays with the
  // caller and is never reported.
  bool accepted = conn->Enqueue({1, 2, 3});
  EXPECT_TRUE(WaitUntil([&] { return conn->closed(); }));
  EXPECT_TRUE(WaitUntil([&] { return handler.closes() == 1; }));
  EXPECT_EQ(handler.dropped(9), accepted ? 1u : 0u);
  std::vector<uint8_t> late = {4, 5, 6};
  EXPECT_FALSE(conn->Enqueue(std::move(late)));  // Closed connection refuses.
  reactor.Stop();
}

// --- Many-peer fixpoint smoke ---------------------------------------------

#if defined(P2PDB_SANITIZED)
constexpr int kSmokeNodes = 96;  // Sanitizers multiply cost; keep CI fast.
#else
constexpr int kSmokeNodes = 1000;
#endif

TEST(ReactorTest, ManyPeerTcpFixpointSmoke) {
  // The reactor's reason to exist: a four-digit peer count on one host. The
  // old thread-per-connection transport needed a thread per socket; here a
  // single event loop drives every listener and connection, and the update
  // protocol still reaches a quiescent, closed fixpoint.
  workload::ScenarioOptions scenario;
  scenario.topology.kind = workload::TopologySpec::Kind::kTree;
  scenario.topology.nodes = kSmokeNodes;
  scenario.topology.fanout = 8;
  scenario.records_per_node = 2;
  auto system = workload::BuildScenario(scenario);
  ASSERT_TRUE(system.ok());

  TcpRuntime::Options options;
  options.timeout = std::chrono::milliseconds(120'000);
  TcpRuntime rt(options);
  core::Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  EXPECT_TRUE(session.AllClosed());
  EXPECT_EQ(rt.dropped_count(), 0u);
  EXPECT_GT(rt.stats().total_messages(), static_cast<uint64_t>(kSmokeNodes));
  // The event-driven dispatch path actually ran.
  EXPECT_GT(rt.stats().io().inline_dispatches.load() +
                rt.stats().io().queued_dispatches.load(),
            0u);
}

}  // namespace
}  // namespace p2pdb::net
