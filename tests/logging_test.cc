#include "src/util/logging.h"

#include <gtest/gtest.h>

namespace p2pdb {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsWarn) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarn);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);
}

TEST(LoggingTest, LevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(LoggingTest, SuppressedLevelsDoNotEvaluateStream) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "payload";
  };
  P2PDB_LOG(kDebug) << expensive();  // Below threshold: not evaluated.
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(LogLevel::kOff);
  P2PDB_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(LoggingTest, EnabledLevelEvaluates) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "payload";
  };
  P2PDB_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace p2pdb
