#include "src/util/logging.h"

#include <gtest/gtest.h>

#include "src/util/log_capture.h"

namespace p2pdb {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsWarn) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarn);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);
}

TEST(LoggingTest, LevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(LoggingTest, SuppressedLevelsDoNotEvaluateStream) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "payload";
  };
  P2PDB_LOG(kDebug) << expensive();  // Below threshold: not evaluated.
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(LogLevel::kOff);
  P2PDB_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(LoggingTest, EnabledLevelEvaluates) {
  LogLevelGuard guard;
  ScopedLogCapture capture;  // Keep the emitted line out of ctest output.
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "payload";
  };
  P2PDB_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 1);
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_NE(capture.lines()[0].find("payload"), std::string::npos);
  EXPECT_NE(capture.lines()[0].find("[ERROR "), std::string::npos);
}

TEST(LoggingTest, CapturingSinkCollectsAndClears) {
  LogLevelGuard guard;
  ScopedLogCapture capture;
  SetLogLevel(LogLevel::kInfo);
  P2PDB_LOG(kInfo) << "first";
  P2PDB_LOG(kWarn) << "second";
  P2PDB_LOG(kDebug) << "suppressed";
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_NE(capture.lines()[0].find("first"), std::string::npos);
  EXPECT_NE(capture.lines()[1].find("second"), std::string::npos);
  capture.Clear();
  EXPECT_TRUE(capture.lines().empty());
}

TEST(LoggingTest, SetLogSinkReturnsPreviousAndRestores) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  CapturingLogSink outer;
  LogSink* original = SetLogSink(&outer);
  {
    ScopedLogCapture inner;
    P2PDB_LOG(kError) << "goes to inner";
    EXPECT_EQ(inner.lines().size(), 1u);
    EXPECT_TRUE(outer.lines().empty());
  }
  P2PDB_LOG(kError) << "goes to outer";
  EXPECT_EQ(outer.lines().size(), 1u);
  SetLogSink(original);
}

}  // namespace
}  // namespace p2pdb
