#include <gtest/gtest.h>

#include <atomic>

#include "src/net/sim_runtime.h"
#include "src/net/thread_runtime.h"

namespace p2pdb::net {
namespace {

// Test peer: counts messages; optionally replies n times (ping-pong).
class EchoPeer : public PeerHandler {
 public:
  EchoPeer(NodeId id, Runtime* rt, int replies_left)
      : id_(id), runtime_(rt), replies_left_(replies_left) {}

  void OnMessage(const Message& msg) override {
    ++received_;
    last_seq_.push_back(msg.seq);
    if (replies_left_ > 0) {
      --replies_left_;
      Message reply;
      reply.type = msg.type;
      reply.from = id_;
      reply.to = msg.from;
      runtime_->Send(reply);
    }
  }

  int received() const { return received_; }
  const std::vector<uint64_t>& seqs() const { return last_seq_; }

 private:
  NodeId id_;
  Runtime* runtime_;
  int replies_left_;
  std::atomic<int> received_{0};
  std::vector<uint64_t> last_seq_;
};

Message Make(NodeId from, NodeId to) {
  Message m;
  m.type = MessageType::kUpdateStart;
  m.from = from;
  m.to = to;
  m.payload = {1, 2, 3};
  return m;
}

TEST(SimRuntimeTest, DeliversAndTerminates) {
  SimRuntime rt;
  EchoPeer a(0, &rt, 0), b(1, &rt, 3);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(b.received(), 1);
  EXPECT_EQ(a.received(), 1);  // One reply.
  EXPECT_EQ(rt.delivered_count(), 2u);
}

TEST(SimRuntimeTest, PingPongUntilRepliesExhausted) {
  SimRuntime rt;
  EchoPeer a(0, &rt, 5), b(1, &rt, 5);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  // 1 initial + 10 replies total.
  EXPECT_EQ(rt.delivered_count(), 11u);
}

TEST(SimRuntimeTest, TimeAdvancesWithLatency) {
  SimRuntime rt;
  rt.pipes().set_default_latency(LatencyModel{500, 0});
  EchoPeer a(0, &rt, 0), b(1, &rt, 1);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(rt.NowMicros(), 1000u);  // Two hops at 500us.
}

TEST(SimRuntimeTest, FifoPerLinkDespiteJitter) {
  SimRuntime rt;
  rt.pipes().set_default_latency(LatencyModel{100, 1000});  // Heavy jitter.
  EchoPeer a(0, &rt, 0), b(1, &rt, 0);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  for (int i = 0; i < 50; ++i) rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  ASSERT_EQ(b.seqs().size(), 50u);
  for (size_t i = 1; i < b.seqs().size(); ++i) {
    EXPECT_LT(b.seqs()[i - 1], b.seqs()[i]);  // In-order delivery.
  }
}

TEST(SimRuntimeTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimRuntime rt(SimRuntime::Options{.seed = 5, .max_events = 1000});
    EchoPeer a(0, &rt, 10), b(1, &rt, 10);
    rt.RegisterPeer(0, &a);
    rt.RegisterPeer(1, &b);
    rt.Send(Make(0, 1));
    EXPECT_TRUE(rt.Run().ok());
    return rt.NowMicros();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimRuntimeTest, ScheduledSendArrivesAtTime) {
  SimRuntime rt;
  rt.pipes().set_default_latency(LatencyModel{0, 0});
  EchoPeer a(0, &rt, 0), b(1, &rt, 0);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.ScheduleSend(5000, Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(b.received(), 1);
  EXPECT_EQ(rt.NowMicros(), 5000u);
}

TEST(SimRuntimeTest, MaxEventsGuardsNonTermination) {
  SimRuntime rt(SimRuntime::Options{.seed = 1, .max_events = 100});
  // Peers that reply forever.
  EchoPeer a(0, &rt, 1 << 30), b(1, &rt, 1 << 30);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.Send(Make(0, 1));
  Status st = rt.Run();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(SimRuntimeTest, TracerSeesDeliveries) {
  SimRuntime rt;
  EchoPeer a(0, &rt, 0), b(1, &rt, 2);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  int traced = 0;
  rt.set_tracer([&](uint64_t, const Message&) { ++traced; });
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(traced, 2);
}

TEST(SimRuntimeTest, StatsRecordMessagesAndBytes) {
  SimRuntime rt;
  EchoPeer a(0, &rt, 0), b(1, &rt, 0);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(rt.stats().total_messages(), 1u);
  // Counted bytes are the exact frame encoding of the sent message (the
  // runtime assigned it seq 0).
  Message sent = Make(0, 1);
  sent.seq = 0;
  EXPECT_EQ(rt.stats().total_bytes(), sent.WireSize());
  EXPECT_EQ(rt.stats().MessagesOfType(MessageType::kUpdateStart), 1u);
  auto pipes = rt.stats().PerPipe();
  std::pair<NodeId, NodeId> link{0, 1};
  EXPECT_EQ(pipes[link].messages, 1u);
  rt.stats().Reset();
  EXPECT_EQ(rt.stats().total_messages(), 0u);
}

TEST(ThreadRuntimeTest, ReachesQuiescence) {
  ThreadRuntime rt;
  EchoPeer a(0, &rt, 20), b(1, &rt, 20);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  // 1 + 40 deliveries happened, all processed.
  EXPECT_EQ(a.received() + b.received(), 41);
}

TEST(ThreadRuntimeTest, StarFanOutAndReplies) {
  ThreadRuntime rt;
  std::vector<std::unique_ptr<EchoPeer>> peers;
  // Peer 0 never replies; peers 1..7 reply exactly once.
  peers.push_back(std::make_unique<EchoPeer>(0, &rt, 0));
  rt.RegisterPeer(0, peers.back().get());
  for (NodeId i = 1; i < 8; ++i) {
    peers.push_back(std::make_unique<EchoPeer>(i, &rt, 1));
    rt.RegisterPeer(i, peers.back().get());
  }
  for (NodeId i = 1; i < 8; ++i) rt.Send(Make(0, i));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(peers[0]->received(), 7);  // One reply per spoke.
  for (NodeId i = 1; i < 8; ++i) EXPECT_EQ(peers[i]->received(), 1);
}

TEST(ThreadRuntimeTest, UnregisterDropsAndRebindDelivers) {
  ThreadRuntime rt;
  EchoPeer a(0, &rt, 0), b(1, &rt, 0);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(b.received(), 1);

  rt.UnregisterPeer(1);  // Crash: sends to 1 are now dropped, and counted.
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(b.received(), 1);
  EXPECT_EQ(rt.dropped_count(), 1u);

  EchoPeer b2(1, &rt, 0);  // Restart: a fresh handler takes over the id.
  rt.RegisterPeer(1, &b2);
  rt.Send(Make(0, 1));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(b2.received(), 1);
  EXPECT_EQ(rt.dropped_count(), 1u);
}

TEST(ThreadRuntimeTest, RegisterWhileRunningSpawnsWorker) {
  ThreadRuntime rt;
  EchoPeer a(0, &rt, 0);
  rt.RegisterPeer(0, &a);
  ASSERT_TRUE(rt.Run().ok());  // Threads are up.
  EchoPeer late(7, &rt, 0);
  rt.RegisterPeer(7, &late);
  rt.Send(Make(0, 7));
  ASSERT_TRUE(rt.Run().ok());
  EXPECT_EQ(late.received(), 1);
}

TEST(PipeTableTest, RefCountingLifecycle) {
  PipeTable pipes;
  pipes.Open(1, 2);
  pipes.Open(2, 1);  // Same unordered pair.
  EXPECT_TRUE(pipes.IsOpen(1, 2));
  EXPECT_EQ(pipes.open_count(), 1u);
  EXPECT_FALSE(pipes.Close(1, 2));  // Still one ref.
  EXPECT_TRUE(pipes.Close(2, 1));   // Fully closed.
  EXPECT_FALSE(pipes.IsOpen(1, 2));
}

TEST(PipeTableTest, LatencyOverrides) {
  PipeTable pipes(LatencyModel{100, 0});
  EXPECT_EQ(pipes.LatencyOf(0, 1).base_micros, 100u);
  pipes.SetLatency(0, 1, LatencyModel{900, 0});
  EXPECT_EQ(pipes.LatencyOf(1, 0).base_micros, 900u);  // Symmetric.
  EXPECT_EQ(pipes.LatencyOf(0, 2).base_micros, 100u);
}

TEST(LatencyModelTest, SampleWithinBounds) {
  Rng rng(3);
  LatencyModel m{100, 50};
  for (int i = 0; i < 100; ++i) {
    uint64_t v = m.Sample(&rng);
    EXPECT_GE(v, 100u);
    EXPECT_LE(v, 150u);
  }
  LatencyModel fixed{70, 0};
  EXPECT_EQ(fixed.Sample(&rng), 70u);
}

}  // namespace
}  // namespace p2pdb::net
