#include "src/relational/null_iso.h"

#include <gtest/gtest.h>

namespace p2pdb::rel {
namespace {

Value S(const char* s) { return Value::Str(s); }
Value N(uint64_t id) { return Value::Null(id); }

Database MakeDb(const std::vector<Tuple>& tuples) {
  Database db;
  (void)db.CreateRelation(RelationSchema("r", {"x", "y"}));
  for (const Tuple& t : tuples) (void)db.Insert("r", t);
  return db;
}

TEST(NullIsoTest, IdenticalDatabasesIsomorphic) {
  Database a = MakeDb({Tuple({S("c"), N(1)})});
  Database b = MakeDb({Tuple({S("c"), N(1)})});
  EXPECT_TRUE(DatabasesIsomorphic(a, b));
}

TEST(NullIsoTest, RenamedNullsIsomorphic) {
  Database a = MakeDb({Tuple({S("c"), N(1)}), Tuple({S("d"), N(2)})});
  Database b = MakeDb({Tuple({S("c"), N(77)}), Tuple({S("d"), N(99)})});
  EXPECT_TRUE(DatabasesIsomorphic(a, b));
}

TEST(NullIsoTest, SharedNullStructureMatters) {
  // a: both rows share one null; b: two distinct nulls. Not isomorphic.
  Database a = MakeDb({Tuple({S("c"), N(1)}), Tuple({S("d"), N(1)})});
  Database b = MakeDb({Tuple({S("c"), N(5)}), Tuple({S("d"), N(6)})});
  EXPECT_FALSE(DatabasesIsomorphic(a, b));
  EXPECT_FALSE(DatabasesIsomorphic(b, a));
}

TEST(NullIsoTest, DifferentCertainTuplesNotIsomorphic) {
  Database a = MakeDb({Tuple({S("c"), S("x")})});
  Database b = MakeDb({Tuple({S("c"), S("y")})});
  EXPECT_FALSE(DatabasesIsomorphic(a, b));
}

TEST(NullIsoTest, DifferentSizesNotIsomorphic) {
  Database a = MakeDb({Tuple({S("c"), N(1)})});
  Database b = MakeDb({Tuple({S("c"), N(1)}), Tuple({S("d"), N(2)})});
  EXPECT_FALSE(DatabasesIsomorphic(a, b));
}

TEST(NullIsoTest, CertainEqualIgnoresNullRows) {
  Database a = MakeDb({Tuple({S("c"), S("x")}), Tuple({S("c"), N(1)})});
  Database b = MakeDb({Tuple({S("c"), S("x")}), Tuple({S("d"), N(9)})});
  EXPECT_TRUE(DatabasesCertainEqual(a, b));
  Database c = MakeDb({Tuple({S("c"), S("z")})});
  EXPECT_FALSE(DatabasesCertainEqual(a, c));
}

TEST(NullIsoTest, HomomorphicContainmentMapsNullsToConstants) {
  // sub has r(c, _1); sup has r(c, x): _1 -> x is a valid homomorphism.
  Database sub = MakeDb({Tuple({S("c"), N(1)})});
  Database sup = MakeDb({Tuple({S("c"), S("x")})});
  EXPECT_TRUE(DatabaseHomomorphicallyContained(sub, sup));
  // The reverse is false: certain tuple r(c, x) is missing from sub.
  EXPECT_FALSE(DatabaseHomomorphicallyContained(sup, sub));
}

TEST(NullIsoTest, HomomorphismMustBeConsistent) {
  // sub: r(c,_1), r(d,_1) — same null twice. sup: r(c,x), r(d,y) — no single
  // image works.
  Database sub = MakeDb({Tuple({S("c"), N(1)}), Tuple({S("d"), N(1)})});
  Database sup = MakeDb({Tuple({S("c"), S("x")}), Tuple({S("d"), S("y")})});
  EXPECT_FALSE(DatabaseHomomorphicallyContained(sub, sup));
  // With a shared image it works.
  Database sup2 = MakeDb({Tuple({S("c"), S("x")}), Tuple({S("d"), S("x")})});
  EXPECT_TRUE(DatabaseHomomorphicallyContained(sub, sup2));
}

TEST(NullIsoTest, HomomorphismNeedNotBeInjective) {
  // Two distinct nulls may map onto one value.
  Database sub = MakeDb({Tuple({S("c"), N(1)}), Tuple({S("c"), N(2)})});
  Database sup = MakeDb({Tuple({S("c"), S("x")})});
  EXPECT_TRUE(DatabaseHomomorphicallyContained(sub, sup));
}

}  // namespace
}  // namespace p2pdb::rel
