// P2PSystem model validation (Definitions 1-3).
#include "src/core/system.h"

#include <gtest/gtest.h>

namespace p2pdb::core {
namespace {

rel::Database Db(const char* relation, size_t arity) {
  rel::Database db;
  std::vector<std::string> attrs;
  for (size_t i = 0; i < arity; ++i) attrs.push_back("c" + std::to_string(i));
  (void)db.CreateRelation(rel::RelationSchema(relation, attrs));
  return db;
}

rel::Atom MakeAtom(const char* relation, std::vector<const char*> vars) {
  rel::Atom a;
  a.relation = relation;
  for (const char* v : vars) a.terms.push_back(rel::Term::Var(v));
  return a;
}

CoordinationRule SimpleRule(const char* id, NodeId head, NodeId body) {
  CoordinationRule rule;
  rule.id = id;
  rule.head_node = head;
  rule.head_atoms = {MakeAtom("h", {"X"})};
  CoordinationRule::BodyPart part;
  part.node = body;
  part.atoms = {MakeAtom("b", {"X"})};
  rule.body = {part};
  return rule;
}

class SystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_.AddNode("H", Db("h", 1)).ok());
    ASSERT_TRUE(system_.AddNode("B", Db("b", 1)).ok());
  }
  P2PSystem system_;
};

TEST_F(SystemTest, NodeNamesUnique) {
  EXPECT_FALSE(system_.AddNode("H", Db("x", 1)).ok());
  EXPECT_EQ(system_.node_count(), 2u);
  EXPECT_EQ(*system_.NodeByName("B"), 1u);
  EXPECT_FALSE(system_.NodeByName("Z").ok());
}

TEST_F(SystemTest, ValidRuleAccepted) {
  EXPECT_TRUE(system_.AddRule(SimpleRule("r", 0, 1)).ok());
  EXPECT_TRUE(system_.RuleById("r").ok());
  EXPECT_EQ(system_.RulesWithHead(0).size(), 1u);
  EXPECT_TRUE(system_.RulesWithHead(1).empty());
}

TEST_F(SystemTest, RejectsHeadEqualsBody) {
  // Definition 2: indices must be distinct.
  CoordinationRule rule = SimpleRule("r", 0, 0);
  rule.body[0].atoms = {MakeAtom("h", {"X"})};
  EXPECT_FALSE(system_.AddRule(rule).ok());
}

TEST_F(SystemTest, RejectsUnknownNodesAndRelations) {
  EXPECT_FALSE(system_.AddRule(SimpleRule("r", 7, 1)).ok());  // Bad head.
  EXPECT_FALSE(system_.AddRule(SimpleRule("r", 0, 7)).ok());  // Bad body.
  CoordinationRule rule = SimpleRule("r", 0, 1);
  rule.head_atoms = {MakeAtom("nope", {"X"})};
  EXPECT_FALSE(system_.AddRule(rule).ok());
}

TEST_F(SystemTest, RejectsArityMismatch) {
  CoordinationRule rule = SimpleRule("r", 0, 1);
  rule.head_atoms = {MakeAtom("h", {"X", "Y"})};  // h has arity 1.
  EXPECT_FALSE(system_.AddRule(rule).ok());
}

TEST_F(SystemTest, RejectsDuplicateIdsAndParts) {
  ASSERT_TRUE(system_.AddRule(SimpleRule("r", 0, 1)).ok());
  EXPECT_EQ(system_.AddRule(SimpleRule("r", 0, 1)).code(),
            StatusCode::kAlreadyExists);
  CoordinationRule rule = SimpleRule("r2", 0, 1);
  rule.body.push_back(rule.body[0]);  // Same node twice.
  EXPECT_FALSE(system_.AddRule(rule).ok());
}

TEST_F(SystemTest, RejectsEmptyPieces) {
  CoordinationRule rule = SimpleRule("r", 0, 1);
  rule.head_atoms.clear();
  EXPECT_FALSE(system_.AddRule(rule).ok());
  rule = SimpleRule("r", 0, 1);
  rule.body.clear();
  EXPECT_FALSE(system_.AddRule(rule).ok());
  rule = SimpleRule("r", 0, 1);
  rule.body[0].atoms.clear();
  EXPECT_FALSE(system_.AddRule(rule).ok());
  rule = SimpleRule("", 0, 1);
  EXPECT_FALSE(system_.AddRule(rule).ok());
}

TEST_F(SystemTest, RemoveRule) {
  ASSERT_TRUE(system_.AddRule(SimpleRule("r", 0, 1)).ok());
  EXPECT_TRUE(system_.RemoveRule("r").ok());
  EXPECT_FALSE(system_.RuleById("r").ok());
  EXPECT_EQ(system_.RemoveRule("r").code(), StatusCode::kNotFound);
}

TEST_F(SystemTest, CombinedDatabaseMergesDisjointSignatures) {
  (void)system_.mutable_db(0)->Insert("h", rel::Tuple({rel::Value::Int(1)}));
  (void)system_.mutable_db(1)->Insert("b", rel::Tuple({rel::Value::Int(2)}));
  auto combined = system_.CombinedDatabase();
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(combined->TotalTuples(), 2u);
  EXPECT_TRUE(combined->HasRelation("h"));
  EXPECT_TRUE(combined->HasRelation("b"));
}

TEST_F(SystemTest, PartExportVarsCoverHeadJoinAndCrossBuiltins) {
  // Rule: B.b(X), H2.c(Y), X < Y => head(X): part 0 must export X (head +
  // cross builtin), part 1 must export Y (cross builtin only).
  ASSERT_TRUE(system_.AddNode("C", Db("c", 1)).ok());
  CoordinationRule rule;
  rule.id = "j";
  rule.head_node = 0;
  rule.head_atoms = {MakeAtom("h", {"X"})};
  CoordinationRule::BodyPart p0;
  p0.node = 1;
  p0.atoms = {MakeAtom("b", {"X"})};
  CoordinationRule::BodyPart p1;
  p1.node = 2;
  p1.atoms = {MakeAtom("c", {"Y"})};
  rule.body = {p0, p1};
  rel::Builtin lt;
  lt.op = rel::BuiltinOp::kLt;
  lt.lhs = rel::Term::Var("X");
  lt.rhs = rel::Term::Var("Y");
  rule.cross_builtins = {lt};
  EXPECT_EQ(rule.PartExportVars(0), (std::vector<std::string>{"X"}));
  EXPECT_EQ(rule.PartExportVars(1), (std::vector<std::string>{"Y"}));
  EXPECT_TRUE(rule.ExistentialVars().empty());
  EXPECT_EQ(rule.BodyNodes(), (std::vector<NodeId>{1, 2}));
}

TEST_F(SystemTest, ExistentialVarsDetected) {
  CoordinationRule rule = SimpleRule("r", 0, 1);
  rule.head_atoms = {MakeAtom("h", {"Z"})};  // Z not in body.
  EXPECT_EQ(rule.ExistentialVars(), (std::vector<std::string>{"Z"}));
}

}  // namespace
}  // namespace p2pdb::core
