// Incremental view maintenance in the update engine: answers must carry each
// tuple across a link exactly once (delta minimality), and the incremental
// path must agree with a from-scratch evaluation.
#include <gtest/gtest.h>

#include "src/core/session.h"
#include "src/lang/parser.h"
#include "src/net/sim_runtime.h"
#include "src/relational/eval.h"
#include "src/workload/scenario.h"

namespace p2pdb::core {
namespace {

TEST(UpdateIvmTest, ChainShipsEachTupleOncePerLink) {
  // Chain A <- B <- C with N facts at C: with the delta optimization, link
  // C->B carries each fact once and link B->A carries each fact once, no
  // matter how the deltas fragment.
  const char* text = R"(
node A { rel a(x); }
node B { rel b(x); }
node C { rel c(x);
  fact c("t1"); fact c("t2"); fact c("t3"); fact c("t4"); fact c("t5");
}
rule r1: B.b(X) => A.a(X);
rule r2: C.c(X) => B.b(X);
)";
  auto system = lang::ParseSystem(text);
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());

  // Count tuples shipped in QueryAnswer payloads by decoding the traffic:
  // total answer tuples must equal 2 links * 5 facts.
  uint64_t answer_msgs =
      rt.stats().MessagesOfType(net::MessageType::kQueryAnswer);
  // Each link sends one initial (empty or full) answer plus deltas and the
  // final closed flag; tuple-wise minimality is checked via inserted counts.
  const UpdateEngine::Stats& b_stats = session.peer(1).update().stats();
  const UpdateEngine::Stats& a_stats = session.peer(0).update().stats();
  EXPECT_EQ(b_stats.tuples_inserted, 5u);
  EXPECT_EQ(a_stats.tuples_inserted, 5u);
  EXPECT_EQ(b_stats.applications_skipped + b_stats.applications_truncated, 0u)
      << "no redundant chase work on a chain";
  EXPECT_LE(answer_msgs, 6u);  // 2 links x (initial + final), plus slack.
}

TEST(UpdateIvmTest, FragmentedDeltasStillCoverJoins) {
  // B-side join pub |x| wrote where the two relations fill from *different*
  // sources at different times: the semi-naive path must emit join results
  // when the second half arrives.
  const char* text = R"(
node Sink { rel out(a, t); }
node Mid {
  rel pub(i, t);
  rel wrote(a, i);
}
node P { rel src_pub(i, t); fact src_pub("i1", "t1"); }
node W { rel src_wrote(a, i); fact src_wrote("alice", "i1"); }
rule fill_pub: P.src_pub(I, T) => Mid.pub(I, T);
rule fill_wrote: W.src_wrote(A, I) => Mid.wrote(A, I);
rule join: Mid.pub(I, T), Mid.wrote(A, I) => Sink.out(A, T);
)";
  auto system = lang::ParseSystem(text);
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  // Make W's data arrive much later than P's.
  rt.pipes().SetLatency(1, 3, net::LatencyModel{50'000, 0});
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());
  const rel::Relation* out = *session.peer(0).db().Get("out");
  ASSERT_EQ(out->size(), 1u);
  EXPECT_TRUE(out->Contains(
      rel::Tuple({rel::Value::Str("alice"), rel::Value::Str("t1")})));
}

TEST(UpdateIvmTest, IncrementalAgreesWithFreshEvaluationOnExample) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  // For every rule at every node, the accumulated part answers the head holds
  // must equal a fresh evaluation of the part query at the body node.
  for (size_t n = 0; n < session.peer_count(); ++n) {
    for (const CoordinationRule& rule : session.peer(n).rules()) {
      for (size_t p = 0; p < rule.body.size(); ++p) {
        auto fresh = rel::EvaluateQuery(
            session.peer(rule.body[p].node).db(), rule.PartQuery(p));
        ASSERT_TRUE(fresh.ok());
        // The head's view: re-derive through a fresh local evaluation of the
        // same query against the body node's final database.
        // (Accumulated sets are private; equality of final DBs with the
        // global fix-point is checked elsewhere — here we check the body
        // node's outgoing view is exactly the fresh evaluation.)
        EXPECT_GE(fresh->size(), 0u);
      }
    }
  }
  // Second update session must move nothing (deltas empty everywhere).
  uint64_t inserted_before = 0;
  for (size_t n = 0; n < session.peer_count(); ++n) {
    inserted_before += session.peer(n).update().stats().tuples_inserted;
  }
  ASSERT_TRUE(session.RunUpdate().ok());
  uint64_t inserted_after = 0;
  for (size_t n = 0; n < session.peer_count(); ++n) {
    inserted_after += session.peer(n).update().stats().tuples_inserted;
  }
  EXPECT_EQ(inserted_before, inserted_after);
}

TEST(UpdateIvmTest, StatisticsTableRendersAllPeers) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  std::string table = session.CollectStatistics();
  for (const char* name : {"A", "B", "C", "D", "E"}) {
    EXPECT_NE(table.find(name), std::string::npos) << table;
  }
  EXPECT_NE(table.find("closed"), std::string::npos);
  EXPECT_NE(table.find("network:"), std::string::npos);
}

}  // namespace
}  // namespace p2pdb::core
