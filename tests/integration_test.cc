// End-to-end property tests: on generated scenarios (all topologies, sizes,
// overlap distributions, chase policies) the distributed update must close at
// every participant and agree with the centralized global fix-point.
#include <gtest/gtest.h>

#include "src/core/global_fixpoint.h"
#include "src/core/session.h"
#include "src/net/sim_runtime.h"
#include "src/relational/null_iso.h"
#include "src/workload/scenario.h"

namespace p2pdb::core {
namespace {

struct SweepCase {
  workload::TopologySpec::Kind kind;
  size_t nodes;
  double overlap_prob;
  uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
    return os << workload::TopologyKindName(c.kind) << "_n" << c.nodes
              << "_o" << static_cast<int>(c.overlap_prob * 100) << "_s"
              << c.seed;
  }
};

class ScenarioSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ScenarioSweep, DistributedUpdateMatchesGlobalFixpoint) {
  const SweepCase& param = GetParam();
  workload::ScenarioOptions options;
  options.topology.kind = param.kind;
  options.topology.nodes = param.nodes;
  options.topology.seed = param.seed;
  options.records_per_node = 8;
  options.link_overlap_prob = param.overlap_prob;
  options.seed = param.seed;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok()) << system.status().ToString();

  net::SimRuntime rt(net::SimRuntime::Options{.seed = param.seed,
                                              .max_events = 50'000'000});
  // The scenario's schema-translation rules invent existentials; the paper's
  // per-atom projection check (A6) is evaluation-order dependent there, so the
  // cross-implementation comparison uses the order-independent homomorphism
  // policy on both sides (see EXPERIMENTS.md, finding F1).
  Session::Options session_options;
  session_options.peer.update.chase.policy =
      rel::ChasePolicy::kHomomorphismCheck;
  Session session(*system, &rt, session_options);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());

  std::set<NodeId> open;
  ASSERT_TRUE(session.AllClosed(&open))
      << open.size() << " nodes failed to close";

  rel::ChaseOptions global_chase;
  global_chase.policy = rel::ChasePolicy::kHomomorphismCheck;
  auto global = ComputeGlobalFixpoint(*system, global_chase);
  ASSERT_TRUE(global.ok()) << global.status().ToString();
  for (NodeId n : session.Participants()) {
    EXPECT_TRUE(
        rel::DatabasesCertainEqual(session.peer(n).db(), global->node_dbs[n]))
        << "node " << n;
  }
}

std::vector<SweepCase> MakeSweepCases() {
  std::vector<SweepCase> cases;
  using Kind = workload::TopologySpec::Kind;
  for (Kind kind : {Kind::kTree, Kind::kLayeredDag, Kind::kClique,
                    Kind::kChain, Kind::kRing, Kind::kRandom}) {
    for (size_t nodes : {4u, 7u, 10u}) {
      for (double overlap : {0.0, 0.5}) {
        cases.push_back(SweepCase{kind, nodes, overlap, 11 + nodes});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, ScenarioSweep,
                         ::testing::ValuesIn(MakeSweepCases()));

class ChasePolicySweep
    : public ::testing::TestWithParam<rel::ChasePolicy> {};

TEST_P(ChasePolicySweep, CliqueWithExistentialsConverges) {
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kClique;
  options.topology.nodes = 6;  // Includes all three schema styles twice.
  options.records_per_node = 5;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok());

  Session::Options session_options;
  session_options.peer.update.chase.policy = GetParam();
  net::SimRuntime rt;
  Session session(*system, &rt, session_options);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());

  // Soundness holds for both policies: every certain tuple the distributed
  // run derives appears in the homomorphism-policy global fix-point. Exact
  // certain-equality additionally holds for the homomorphism policy (the
  // projection policy is evaluation-order dependent; finding F1).
  rel::ChaseOptions global_chase;
  global_chase.policy = rel::ChasePolicy::kHomomorphismCheck;
  auto global = ComputeGlobalFixpoint(*system, global_chase);
  ASSERT_TRUE(global.ok());
  for (NodeId n : session.Participants()) {
    const rel::Database& dist = session.peer(n).db();
    for (const auto& [name, relation] : dist.relations()) {
      auto global_rel = global->node_dbs[n].Get(name);
      ASSERT_TRUE(global_rel.ok());
      std::set<rel::Tuple> global_certain = (*global_rel)->CertainTuples();
      for (const rel::Tuple& t : relation.CertainTuples()) {
        EXPECT_TRUE(global_certain.count(t))
            << "node " << n << " unsound tuple " << name << t.ToString();
      }
    }
    if (GetParam() == rel::ChasePolicy::kHomomorphismCheck) {
      EXPECT_TRUE(rel::DatabasesCertainEqual(dist, global->node_dbs[n]))
          << "node " << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, ChasePolicySweep,
                         ::testing::Values(rel::ChasePolicy::kProjectionCheck,
                                           rel::ChasePolicy::kHomomorphismCheck));

TEST(IntegrationTest, PaperScaleCliqueSmallData) {
  // Cliques are the paper's worst case; keep data small but the full 31-node
  // network of the experiments.
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kClique;
  options.topology.nodes = 13;
  options.records_per_node = 2;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());
}

TEST(IntegrationTest, Tree31NodesThousandRecordsShape) {
  // The paper's headline configuration (31 nodes, trees) at reduced record
  // count for test speed; the full size runs in bench_scalability.
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kTree;
  options.topology.nodes = 31;
  options.records_per_node = 30;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());
  // The root (article style) ends up with translations of every node's data.
  const rel::Database& root = session.peer(0).db();
  EXPECT_GT(root.TotalTuples(), 30u * 30u);
}

TEST(IntegrationTest, LocalQueriesAfterUpdateSeeRemoteData) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());

  // After the update, node B answers queries about E's data locally.
  rel::ConjunctiveQuery q;
  q.head_vars = {"X", "Y"};
  rel::Atom b;
  b.relation = "b";
  b.terms = {rel::Term::Var("X"), rel::Term::Var("Y")};
  q.atoms = {b};
  auto result = session.peer(1).LocalQuery(q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->count(
      rel::Tuple({rel::Value::Str("u"), rel::Value::Str("v")})));
}

}  // namespace
}  // namespace p2pdb::core
