// Section 5 super-peer operations: broadcasting a coordination-rule file that
// reconfigures the network at run time.
#include <gtest/gtest.h>

#include "src/core/session.h"
#include "src/lang/parser.h"
#include "src/net/sim_runtime.h"

namespace p2pdb::lang {
namespace {

rel::Value S(const char* s) { return rel::Value::Str(s); }

// Nodes with schemas but no rules: the super-peer wires them up later.
Result<core::P2PSystem> BareNodes() {
  return ParseSystem(R"(
node Hub { rel all(v); }
node SrcA { rel a(v); fact a("alpha"); }
node SrcB { rel b(v); fact b("beta"); }
)");
}

TEST(BroadcastTest, ParseRulesResolvesAgainstSystem) {
  auto system = BareNodes();
  ASSERT_TRUE(system.ok());
  auto rules = ParseRules(*system, R"(
rule ra: SrcA.a(V) => Hub.all(V);
rule rb: SrcB.b(V) => Hub.all(V);
)");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->size(), 2u);
  EXPECT_EQ((*rules)[0].head_node, *system->NodeByName("Hub"));
  EXPECT_EQ((*rules)[1].body[0].node, *system->NodeByName("SrcB"));
}

TEST(BroadcastTest, ParseRulesRejectsUnknownNodesAndNonRules) {
  auto system = BareNodes();
  ASSERT_TRUE(system.ok());
  EXPECT_FALSE(ParseRules(*system, "rule r: Ghost.g(V) => Hub.all(V);").ok());
  EXPECT_FALSE(ParseRules(*system, "node X { rel x(v); }").ok());
}

TEST(BroadcastTest, BroadcastWiresUpNetworkAtRuntime) {
  auto system = BareNodes();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  core::Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());

  auto script = BroadcastRules(*system, &session, R"(
rule ra: SrcA.a(V) => Hub.all(V);
rule rb: SrcB.b(V) => Hub.all(V);
)",
                               /*at_micros=*/100);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script->size(), 2u);

  // Deliver the broadcast, re-discover (topology changed), then update.
  ASSERT_TRUE(rt.Run().ok());
  ASSERT_TRUE(session.Rediscover().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  ASSERT_TRUE(session.AllClosed());

  const rel::Relation* all = *session.peer(0).db().Get("all");
  EXPECT_EQ(all->size(), 2u);
  EXPECT_TRUE(all->Contains(rel::Tuple({S("alpha")})));
  EXPECT_TRUE(all->Contains(rel::Tuple({S("beta")})));
}

TEST(BroadcastTest, BroadcastDuringSessionReopens) {
  auto system = BareNodes();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  core::Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  // Hub starts with no rules: closes instantly.
  ASSERT_TRUE(session.RunUpdate().ok());
  EXPECT_EQ(session.peer(0).update().state(),
            core::UpdateEngine::State::kClosed);

  auto script = BroadcastRules(*system, &session,
                               "rule ra: SrcA.a(V) => Hub.all(V);",
                               rt.NowMicros() + 50);
  ASSERT_TRUE(script.ok());
  ASSERT_TRUE(rt.Run().ok());
  // The addLink re-opened and re-closed the hub with the new data.
  EXPECT_EQ(session.peer(0).update().state(),
            core::UpdateEngine::State::kClosed);
  EXPECT_GE(session.peer(0).update().stats().reopens, 1u);
  EXPECT_TRUE(
      (*session.peer(0).db().Get("all"))->Contains(rel::Tuple({S("alpha")})));
}

}  // namespace
}  // namespace p2pdb::lang
