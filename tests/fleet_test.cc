// Cross-process fleet integration: forks real p2pdb_peerd processes, drives
// them over the wire control plane (src/core/control.h) with a
// FleetController, kill -9s a non-super-peer mid-propagation, re-execs it
// from the same config file (fixed port, WAL recovery), and checks that the
// fleet's databases converge to the same global fixpoint as an in-process
// run of the same system — the acceptance path of the deployment story.
//
// The ctest registration passes --peerd $<TARGET_FILE:p2pdb_peerd>; running
// the binary by hand works with the P2PDB_PEERD environment variable. The
// process tests are skipped when neither is available.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/session.h"
#include "src/daemon/config.h"
#include "src/daemon/fleet.h"
#include "src/lang/printer.h"
#include "src/net/sim_runtime.h"
#include "src/relational/null_iso.h"
#include "src/workload/scenario.h"

namespace p2pdb::daemon {
namespace {

std::string g_peerd_path;  // Set by main() from --peerd or P2PDB_PEERD.

std::string FreshRoot(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/p2pdb_fleet_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Status WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot write " + path);
  out << text;
  return Status::OK();
}

/// Forks one p2pdb_peerd on `config_path`, stdout+stderr into `log_path`.
pid_t SpawnPeerd(const std::string& config_path,
                 const std::string& log_path) {
  pid_t pid = ::fork();
  if (pid != 0) return pid;
  if (std::freopen(log_path.c_str(), "w", stdout) == nullptr) _exit(126);
  if (::dup2(::fileno(stdout), ::fileno(stderr)) < 0) _exit(126);
  ::execl(g_peerd_path.c_str(), g_peerd_path.c_str(), "--config",
          config_path.c_str(), static_cast<char*>(nullptr));
  _exit(127);
}

/// The daemon writes its pid file only after its listener is bound and the
/// endpoint table is installed, so "pid file holds `pid`" doubles as the
/// readiness barrier for both first boots and re-execs.
bool AwaitPidFile(const std::string& path, pid_t pid,
                  std::chrono::seconds timeout = std::chrono::seconds(20)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(path);
    pid_t got = -1;
    if (in >> got && got == pid) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// Reaps `pid`, polling so a hung daemon cannot hang the test.
bool AwaitExit(pid_t pid, int* exit_status,
               std::chrono::seconds timeout = std::chrono::seconds(20)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    int status = 0;
    pid_t got = ::waitpid(pid, &status, WNOHANG);
    if (got == pid) {
      *exit_status = status;
      return true;
    }
    if (got < 0) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

TEST(PeerdConfigTest, RoundTripsThroughToString) {
  PeerdConfig config;
  config.node = 2;
  config.name = "C";
  config.listen = {"127.0.0.1", 7102};
  config.system_file = "/tmp/fleet.p2p";
  config.data_dir = "/tmp/peer2";
  config.pid_file = "/tmp/peer2.pid";
  config.obs_json = "/tmp/peer2.obs.json";
  config.super_peer = 1;
  config.no_sync = true;
  config.peers = {{0, "127.0.0.1", 7100},
                  {1, "127.0.0.1", 7101},
                  {2, "127.0.0.1", 7102}};

  auto parsed = PeerdConfig::Parse(config.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->node, config.node);
  EXPECT_EQ(parsed->name, config.name);
  EXPECT_EQ(parsed->listen.host, config.listen.host);
  EXPECT_EQ(parsed->listen.port, config.listen.port);
  EXPECT_EQ(parsed->system_file, config.system_file);
  EXPECT_EQ(parsed->data_dir, config.data_dir);
  EXPECT_EQ(parsed->pid_file, config.pid_file);
  EXPECT_EQ(parsed->obs_json, config.obs_json);
  EXPECT_EQ(parsed->super_peer, config.super_peer);
  EXPECT_EQ(parsed->no_sync, config.no_sync);
  EXPECT_EQ(parsed->peers, config.peers);
}

TEST(PeerdConfigTest, RejectsMalformedFiles) {
  // Missing required keys.
  EXPECT_FALSE(PeerdConfig::Parse("node 0\nname A\n").ok());
  // Bad node id, bad endpoint, trailing garbage, unknown key: each rejected
  // with the offending line number in the message.
  auto bad_id = PeerdConfig::Parse(
      "node x\nname A\nlisten 127.0.0.1:1\nsystem s.p2p\n");
  ASSERT_FALSE(bad_id.ok());
  EXPECT_NE(bad_id.status().message().find("line 1"), std::string::npos);
  EXPECT_FALSE(PeerdConfig::Parse(
                   "node 0\nname A\nlisten nonsense\nsystem s.p2p\n")
                   .ok());
  EXPECT_FALSE(PeerdConfig::Parse(
                   "node 0 extra\nname A\nlisten 127.0.0.1:1\nsystem s\n")
                   .ok());
  EXPECT_FALSE(PeerdConfig::Parse(
                   "node 0\nname A\nlisten 127.0.0.1:1\nsystem s\nwat 1\n")
                   .ok());
}

TEST(FleetHelpersTest, PickFreePortsReturnsDistinctPorts) {
  auto ports = PickFreePorts("127.0.0.1", 8);
  ASSERT_TRUE(ports.ok()) << ports.status().ToString();
  ASSERT_EQ(ports->size(), 8u);
  std::set<uint16_t> distinct(ports->begin(), ports->end());
  EXPECT_EQ(distinct.size(), 8u);
  for (uint16_t port : *ports) EXPECT_GT(port, 0);
}

// The acceptance path: 4 peerd processes converge to the in-process
// fixpoint, survive kill -9 of a non-super-peer mid-propagation, and
// re-converge after the victim is re-exec'ed from the same config file.
TEST(FleetTest, FleetConvergesAndSurvivesKillNineReExec) {
  if (g_peerd_path.empty()) {
    GTEST_SKIP() << "p2pdb_peerd path not provided (--peerd or P2PDB_PEERD)";
  }
  const std::string root = FreshRoot("kill9");

  workload::ScenarioOptions scenario;
  scenario.topology.kind = workload::TopologySpec::Kind::kTree;
  scenario.topology.nodes = 4;
  scenario.records_per_node = 150;
  scenario.link_overlap_prob = 0.5;
  auto system = workload::BuildScenario(scenario);
  ASSERT_TRUE(system.ok()) << system.status().ToString();

  const std::string system_file = root + "/fleet.p2p";
  ASSERT_TRUE(WriteFile(system_file, lang::PrintSystem(*system)).ok());

  auto ports = PickFreePorts("127.0.0.1", system->node_count());
  ASSERT_TRUE(ports.ok()) << ports.status().ToString();
  auto configs = MakeFleetConfigs(*system, system_file, root, "127.0.0.1",
                                  *ports, /*super_peer=*/0,
                                  /*no_sync=*/true);
  ASSERT_TRUE(configs.ok()) << configs.status().ToString();

  std::vector<std::string> config_paths;
  std::vector<pid_t> pids;
  for (const PeerdConfig& cfg : *configs) {
    const std::string path =
        root + "/peer" + std::to_string(cfg.node) + ".conf";
    ASSERT_TRUE(WriteFile(path, cfg.ToString()).ok());
    config_paths.push_back(path);
    pids.push_back(SpawnPeerd(path, root + "/peer" +
                                        std::to_string(cfg.node) + ".log"));
    ASSERT_GT(pids.back(), 0);
  }
  for (NodeId n = 0; n < system->node_count(); ++n) {
    ASSERT_TRUE(AwaitPidFile((*configs)[n].pid_file, pids[n]))
        << "peer " << n << " never became ready";
  }

  FleetController::Options options;
  options.timeout = std::chrono::seconds(60);
  std::vector<core::wire::EndpointEntry> table = (*configs)[0].peers;
  auto controller =
      FleetController::Connect(*system, table, /*super_peer=*/0, options);
  ASSERT_TRUE(controller.ok()) << controller.status().ToString();
  const std::vector<NodeId> all = (*controller)->AllNodes();

  ASSERT_TRUE((*controller)->Bootstrap(all).ok());
  ASSERT_TRUE((*controller)->StartDiscovery(all).ok());
  ASSERT_TRUE((*controller)->AwaitDiscoveryClosed(all).ok());

  // Start the global update and kill a non-super-peer immediately: SIGKILL,
  // no shutdown path, in-flight frames die with its sockets.
  ASSERT_TRUE((*controller)->StartUpdate(1).ok());
  const NodeId victim = 1;
  ASSERT_EQ(::kill(pids[victim], SIGKILL), 0);
  int status = 0;
  ASSERT_TRUE(AwaitExit(pids[victim], &status));
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // Survivors drain: statistics stop changing (no closed-state requirement —
  // peers blocked on the dead victim legitimately stay open).
  std::vector<NodeId> survivors;
  for (NodeId n : all) {
    if (n != victim) survivors.push_back(n);
  }
  ASSERT_TRUE((*controller)->AwaitStable(survivors).ok());

  // Re-exec from the SAME config file: same node id, same fixed port (the
  // other daemons' endpoint tables stay valid), recovery from checkpoint +
  // WAL before the listener accepts a frame.
  pids[victim] = SpawnPeerd(config_paths[victim],
                            root + "/peer1.reexec.log");
  ASSERT_GT(pids[victim], 0);
  ASSERT_TRUE(AwaitPidFile((*configs)[victim].pid_file, pids[victim]))
      << "re-exec'ed peer never became ready";

  // Rejoin: re-bootstrap the fresh process (installs the controller's reply
  // route), re-run discovery everywhere, refresh SCC views behind a status
  // barrier, then drive a fresh update session — monotone set-union
  // semantics make the second session idempotent on the survivors.
  ASSERT_TRUE((*controller)->Bootstrap({victim}).ok());
  ASSERT_TRUE((*controller)->StartDiscovery(all).ok());
  ASSERT_TRUE((*controller)->AwaitDiscoveryClosed(all).ok());
  ASSERT_TRUE((*controller)->RefreshScc(all).ok());
  ASSERT_TRUE((*controller)->StartUpdate(2).ok());
  std::vector<core::wire::StatusReport> reports;
  ASSERT_TRUE((*controller)->AwaitUpdateFixpoint(all, &reports).ok());
  ASSERT_EQ(reports.size(), all.size());

  // Parity oracle: the same system run in one process on the deterministic
  // simulator. Every fleet database must match up to null renaming.
  net::SimRuntime sim;
  core::Session oracle(*system, &sim);
  ASSERT_TRUE(oracle.RunDiscovery().ok());
  ASSERT_TRUE(oracle.RunUpdate().ok());
  const std::vector<rel::Database> expected = oracle.SnapshotDatabases();
  for (NodeId n : all) {
    auto dump = (*controller)->Dump(n);
    ASSERT_TRUE(dump.ok()) << dump.status().ToString();
    EXPECT_TRUE(rel::DatabasesIsomorphic(*dump, expected[n]))
        << "node " << n << " diverged from the in-process fixpoint";
  }

  // Graceful teardown: every daemon (including the re-exec'ed victim) exits
  // cleanly on the kShutdown control frame.
  ASSERT_TRUE((*controller)->SendShutdown(all).ok());
  for (NodeId n : all) {
    ASSERT_TRUE(AwaitExit(pids[n], &status)) << "peer " << n << " hung";
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "peer " << n << " exited abnormally";
  }
}

}  // namespace
}  // namespace p2pdb::daemon

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (const char* env = std::getenv("P2PDB_PEERD")) {
    p2pdb::daemon::g_peerd_path = env;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--peerd" && i + 1 < argc) {
      p2pdb::daemon::g_peerd_path = argv[i + 1];
    }
  }
  return RUN_ALL_TESTS();
}
