// Peer-level API behaviour and edge cases not covered by the protocol tests.
#include "src/core/peer.h"

#include <gtest/gtest.h>

#include "src/core/session.h"
#include "src/lang/parser.h"
#include "src/net/sim_runtime.h"
#include "src/workload/scenario.h"

namespace p2pdb::core {
namespace {

rel::Database OneRelationDb(const char* name) {
  rel::Database db;
  (void)db.CreateRelation(rel::RelationSchema(name, {"x"}));
  return db;
}

TEST(PeerTest, RejectsForeignAndDuplicateRules) {
  net::SimRuntime rt;
  Peer a(0, "A", OneRelationDb("a"), &rt);
  Peer b(1, "B", OneRelationDb("b"), &rt);

  CoordinationRule rule;
  rule.id = "r";
  rule.head_node = 0;
  rel::Atom head;
  head.relation = "a";
  head.terms = {rel::Term::Var("X")};
  rule.head_atoms = {head};
  CoordinationRule::BodyPart part;
  part.node = 1;
  rel::Atom body;
  body.relation = "b";
  body.terms = {rel::Term::Var("X")};
  part.atoms = {body};
  rule.body = {part};

  EXPECT_FALSE(b.AddInitialRule(rule).ok());  // Head is A, not B.
  EXPECT_TRUE(a.AddInitialRule(rule).ok());
  Status dup = a.AddInitialRule(rule);
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(PeerTest, DependencyTargetsDeduplicated) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  // C heads r2 (body B), r5 (body A), r7 (body D): three distinct targets.
  EXPECT_EQ(session.peer(2).DependencyTargets(),
            (std::set<NodeId>{0, 1, 3}));
  // E heads nothing.
  EXPECT_TRUE(session.peer(4).DependencyTargets().empty());
}

TEST(PeerTest, TopologyKnowledgeAccumulates) {
  net::SimRuntime rt;
  Peer p(0, "P", OneRelationDb("p"), &rt);
  p.AdoptTopology({{0, 1}, {1, 2}});
  EXPECT_EQ(p.known_edges().size(), 2u);
  // A second closure from another origin adds what is reachable from P.
  p.AdoptTopology({{0, 3}, {3, 0}, {7, 8}});  // 7->8 is not reachable from 0.
  EXPECT_EQ(p.known_edges().size(), 4u);
  EXPECT_FALSE(p.known_edges().count({7, 8}));
}

TEST(PeerTest, OwnSccWithoutKnowledgeIsSingleton) {
  net::SimRuntime rt;
  Peer p(5, "P", OneRelationDb("p"), &rt);
  EXPECT_EQ(p.OwnScc(), (std::set<NodeId>{5}));
}

TEST(PeerTest, LocalQueryAgainstOwnData) {
  net::SimRuntime rt;
  rel::Database db = OneRelationDb("p");
  (void)db.Insert("p", rel::Tuple({rel::Value::Int(7)}));
  Peer p(0, "P", std::move(db), &rt);
  auto q = lang::ParseQuery("q(X) :- p(X)");
  ASSERT_TRUE(q.ok());
  auto result = p.LocalQuery(*q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(PeerTest, MalformedPayloadIsIgnored) {
  net::SimRuntime rt;
  Peer p(0, "P", OneRelationDb("p"), &rt);
  net::Message msg;
  msg.type = net::MessageType::kQueryRequest;
  msg.from = 1;
  msg.to = 0;
  msg.payload = {0xde, 0xad};  // Not a valid QueryRequest.
  p.OnMessage(msg);            // Must not crash or change state.
  EXPECT_EQ(p.update().state(), UpdateEngine::State::kIdle);
}

TEST(SessionTest, ParticipantsFollowDependencyReachability) {
  auto system = lang::ParseSystem(R"(
node A { rel a(x); }
node B { rel b(x); }
node C { rel c(x); }
node D { rel d(x); }
rule r1: B.b(X) => A.a(X);
rule r2: C.c(X) => B.b(X);
rule r3: C.c(X) => D.d(X);
)");
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session::Options options;
  options.super_peer = 0;  // A reaches B, C — but not D (D->C, not C->D).
  Session session(*system, &rt, options);
  EXPECT_EQ(session.Participants(), (std::set<NodeId>{0, 1, 2}));
}

TEST(SessionTest, RunUpdateFromMultipleInitiators) {
  auto system = lang::ParseSystem(R"(
node A { rel a(x); }
node B { rel b(x); fact b("vb"); }
node X { rel x(x); }
node Y { rel y(x); fact y("vy"); }
rule ra: B.b(V) => A.a(V);
rule rx: Y.y(V) => X.x(V);
)");
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdateFrom({0, 2}).ok());
  EXPECT_EQ(session.peer(0).update().state(), UpdateEngine::State::kClosed);
  EXPECT_EQ(session.peer(2).update().state(), UpdateEngine::State::kClosed);
  EXPECT_EQ((*session.peer(0).db().Get("a"))->size(), 1u);
  EXPECT_EQ((*session.peer(2).db().Get("x"))->size(), 1u);
}

TEST(SessionTest, NetworkTracksPipesPerRuleLink) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  // r2 and r3 share the B<->C pipe; 7 rules but only 6 distinct pairs.
  EXPECT_EQ(session.network().open_pipe_count(), 6u);
  EXPECT_EQ(session.network().Acquaintances(1),
            (std::set<NodeId>{0, 2, 4}));  // B: rules with A, C, E.
}

TEST(SessionTest, SnapshotDatabasesDeepCopies) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  auto before = session.SnapshotDatabases();
  ASSERT_TRUE(session.RunDiscovery().ok());
  ASSERT_TRUE(session.RunUpdate().ok());
  auto after = session.SnapshotDatabases();
  // The update changed peer state, not the earlier snapshot.
  EXPECT_LT(before[1].TotalTuples(), after[1].TotalTuples());
}

}  // namespace
}  // namespace p2pdb::core
