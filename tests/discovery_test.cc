#include "src/core/discovery.h"

#include <gtest/gtest.h>

#include "src/core/dependency.h"
#include "src/core/session.h"
#include "src/lang/parser.h"
#include "src/net/sim_runtime.h"
#include "src/workload/scenario.h"

namespace p2pdb::core {
namespace {

using DiscoveryMode = Session::Options::DiscoveryMode;

// Expected edges of the running example.
std::set<wire::Edge> ExampleEdges() {
  return {{1, 4}, {2, 1}, {1, 2}, {0, 1}, {2, 0}, {3, 0}, {2, 3}};
}

TEST(DiscoveryTest, SuperPeerModeInformsAllReachableNodes) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session::Options options;
  options.discovery = DiscoveryMode::kSuperPeer;
  options.super_peer = 0;  // A reaches every node.
  Session session(*system, &rt, options);
  ASSERT_TRUE(session.RunDiscovery().ok());

  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_EQ(session.peer(n).discovery().state(),
              DiscoveryEngine::State::kClosed)
        << "node " << n;
  }
  // Every node knows exactly the edges reachable from it.
  DependencyGraph full(ExampleEdges());
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_EQ(session.peer(n).known_edges(),
              full.ReachableSubgraph(n).edges())
        << "node " << n;
  }
}

TEST(DiscoveryTest, AllModeCoversNodesUnreachableFromSuperPeer) {
  // Chain 0 -> 1 -> 2: starting from node 1 only informs {1, 2}; kAll informs
  // every node.
  const char* text = R"(
node A { rel a(x); }
node B { rel b(x); }
node C { rel c(x); }
rule r1: B.b(X) => A.a(X);
rule r2: C.c(X) => B.b(X);
)";
  auto system = lang::ParseSystem(text);
  ASSERT_TRUE(system.ok());

  {
    net::SimRuntime rt;
    Session::Options options;
    options.discovery = DiscoveryMode::kSuperPeer;
    options.super_peer = 1;
    Session session(*system, &rt, options);
    ASSERT_TRUE(session.RunDiscovery().ok());
    EXPECT_EQ(session.peer(0).discovery().state(),
              DiscoveryEngine::State::kUndefined);
    EXPECT_EQ(session.peer(1).discovery().state(),
              DiscoveryEngine::State::kClosed);
  }
  {
    net::SimRuntime rt;
    Session::Options options;
    options.discovery = DiscoveryMode::kAll;
    Session session(*system, &rt, options);
    ASSERT_TRUE(session.RunDiscovery().ok());
    for (NodeId n = 0; n < 3; ++n) {
      EXPECT_EQ(session.peer(n).discovery().state(),
                DiscoveryEngine::State::kClosed);
    }
  }
}

TEST(DiscoveryTest, NodeWithNoRulesClosesImmediately) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  // E (id 4) has no rules: Start is a local no-op closure.
  session.peer(4).StartDiscovery();
  EXPECT_EQ(session.peer(4).discovery().state(),
            DiscoveryEngine::State::kClosed);
  EXPECT_TRUE(session.peer(4).MaximalPaths().empty());
  EXPECT_EQ(rt.stats().total_messages(), 0u);
}

TEST(DiscoveryTest, MaximalPathsMatchOfflineEnumeration) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());

  DependencyGraph full(ExampleEdges());
  for (NodeId n = 0; n < 5; ++n) {
    auto expected = full.MaximalPathsFrom(n);
    auto got = session.peer(n).MaximalPaths();
    std::set<std::vector<NodeId>> e(expected.begin(), expected.end());
    std::set<std::vector<NodeId>> g(got.begin(), got.end());
    EXPECT_EQ(e, g) << "node " << n;
  }
}

TEST(DiscoveryTest, SccKnowledgeAfterDiscovery) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  EXPECT_EQ(session.peer(0).OwnScc(), (std::set<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(session.peer(2).OwnScc(), (std::set<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(session.peer(4).OwnScc(), (std::set<NodeId>{4}));
}

TEST(DiscoveryTest, EagerAnswersSameResultMoreBytes) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());

  auto run = [&](bool eager) {
    net::SimRuntime rt;
    Session::Options options;
    options.peer.eager_discovery_answers = eager;
    Session session(*system, &rt, options);
    EXPECT_TRUE(session.RunDiscovery().ok());
    std::vector<std::set<wire::Edge>> knowledge;
    for (NodeId n = 0; n < 5; ++n) {
      knowledge.push_back(session.peer(n).known_edges());
    }
    return std::make_pair(knowledge, rt.stats().total_bytes());
  };

  auto [lazy_knowledge, lazy_bytes] = run(false);
  auto [eager_knowledge, eager_bytes] = run(true);
  EXPECT_EQ(lazy_knowledge, eager_knowledge);
  EXPECT_GE(eager_bytes, lazy_bytes);
}

TEST(DiscoveryTest, CliqueDiscoveryTerminates) {
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kClique;
  options.topology.nodes = 6;
  options.records_per_node = 1;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());
  for (NodeId n = 0; n < 6; ++n) {
    EXPECT_EQ(session.peer(n).discovery().state(),
              DiscoveryEngine::State::kClosed);
    EXPECT_EQ(session.peer(n).OwnScc().size(), 6u);
    EXPECT_EQ(session.peer(n).known_edges().size(), 30u);
  }
}

class DiscoveryTopologySweep
    : public ::testing::TestWithParam<workload::TopologySpec::Kind> {};

TEST_P(DiscoveryTopologySweep, EveryNodeLearnsItsReachableSubgraph) {
  workload::ScenarioOptions options;
  options.topology.kind = GetParam();
  options.topology.nodes = 9;
  options.records_per_node = 1;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  net::SimRuntime rt;
  Session session(*system, &rt);
  ASSERT_TRUE(session.RunDiscovery().ok());

  DependencyGraph full = DependencyGraph::FromRules(system->rules());
  for (NodeId n = 0; n < 9; ++n) {
    EXPECT_EQ(session.peer(n).known_edges(),
              full.ReachableSubgraph(n).edges())
        << "node " << n << " in " << TopologyKindName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, DiscoveryTopologySweep,
    ::testing::Values(workload::TopologySpec::Kind::kTree,
                      workload::TopologySpec::Kind::kLayeredDag,
                      workload::TopologySpec::Kind::kClique,
                      workload::TopologySpec::Kind::kChain,
                      workload::TopologySpec::Kind::kRing,
                      workload::TopologySpec::Kind::kRandom));

}  // namespace
}  // namespace p2pdb::core
