#include "src/core/dependency.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/workload/scenario.h"

namespace p2pdb::core {
namespace {

// The running example's dependency edges (Section 2): derived from rules
// r1..r7 with nodes A=0, B=1, C=2, D=3, E=4.
DependencyGraph ExampleGraph() {
  DependencyGraph g;
  g.AddEdge(1, 4);  // r1: B depends on E
  g.AddEdge(2, 1);  // r2: C on B
  g.AddEdge(1, 2);  // r3: B on C
  g.AddEdge(0, 1);  // r4: A on B
  g.AddEdge(2, 0);  // r5: C on A
  g.AddEdge(3, 0);  // r6: D on A
  g.AddEdge(2, 3);  // r7: C on D
  return g;
}

std::set<std::string> PathStrings(const std::vector<std::vector<NodeId>>& paths) {
  const char* names = "ABCDE";
  std::set<std::string> out;
  for (const auto& p : paths) {
    std::string s;
    for (NodeId n : p) s.push_back(names[n]);
    out.insert(s);
  }
  return out;
}

TEST(DependencyTest, ExampleMaximalPathsFromA) {
  // Section 2 lists four maximal paths for A; the ABDA entry is the technical
  // report's rendering of the loop through C and D (A B C D A).
  auto paths = PathStrings(ExampleGraph().MaximalPathsFrom(0));
  EXPECT_EQ(paths, (std::set<std::string>{"ABE", "ABCB", "ABCA", "ABCDA"}));
}

TEST(DependencyTest, ExampleMaximalPathsFromB) {
  auto paths = PathStrings(ExampleGraph().MaximalPathsFrom(1));
  EXPECT_EQ(paths, (std::set<std::string>{"BE", "BCB", "BCAB", "BCDAB"}));
}

TEST(DependencyTest, ExampleMaximalPathsFromC) {
  auto paths = PathStrings(ExampleGraph().MaximalPathsFrom(2));
  EXPECT_EQ(paths, (std::set<std::string>{"CBE", "CBC", "CABE", "CABC",
                                          "CDABE", "CDABC"}));
}

TEST(DependencyTest, ExampleMaximalPathsFromD) {
  auto paths = PathStrings(ExampleGraph().MaximalPathsFrom(3));
  EXPECT_EQ(paths,
            (std::set<std::string>{"DABE", "DABCB", "DABCA", "DABCD"}));
}

TEST(DependencyTest, SinkHasNoPaths) {
  EXPECT_TRUE(ExampleGraph().MaximalPathsFrom(4).empty());
}

TEST(DependencyTest, PathPrefixesAreSimple) {
  for (NodeId start : {0u, 1u, 2u, 3u}) {
    for (const auto& path : ExampleGraph().MaximalPathsFrom(start)) {
      std::set<NodeId> prefix(path.begin(), path.end() - 1);
      EXPECT_EQ(prefix.size(), path.size() - 1)
          << "non-simple prefix from " << start;
    }
  }
}

TEST(DependencyTest, ReachabilityFromExampleNodes) {
  DependencyGraph g = ExampleGraph();
  EXPECT_EQ(g.ReachableFrom(0), (std::set<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(g.ReachableFrom(4), (std::set<NodeId>{}));
}

TEST(DependencyTest, ExampleSccs) {
  DependencyGraph g = ExampleGraph();
  EXPECT_EQ(g.SccOf(0), (std::set<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(g.SccOf(4), (std::set<NodeId>{4}));
  EXPECT_FALSE(g.IsAcyclic());
}

TEST(DependencyTest, ReachableSubgraphRestricts) {
  DependencyGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);  // Disconnected from 0.
  DependencyGraph sub = g.ReachableSubgraph(0);
  EXPECT_EQ(sub.edges().size(), 2u);
  EXPECT_FALSE(sub.edges().count({3, 4}));
}

TEST(DependencyTest, TopologicalOrderOnDag) {
  DependencyGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  ASSERT_TRUE(g.IsAcyclic());
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  auto pos = [&](NodeId n) {
    return std::find(order->begin(), order->end(), n) - order->begin();
  };
  for (const Edge& e : g.edges()) {
    EXPECT_LT(pos(e.first), pos(e.second));
  }
}

TEST(DependencyTest, TopologicalOrderFailsOnCycle) {
  EXPECT_FALSE(ExampleGraph().TopologicalOrder().ok());
}

TEST(DependencyTest, SelfLoopIsCyclic) {
  DependencyGraph g;
  g.AddEdge(0, 0);
  EXPECT_FALSE(g.IsAcyclic());
}

TEST(DependencyTest, SeparationDefinition10) {
  DependencyGraph g;
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  // {0,1} cannot reach {2,3}: separated.
  EXPECT_TRUE(g.IsSeparated({0, 1}, {2, 3}));
  // {2} can reach {3}: not separated.
  EXPECT_FALSE(g.IsSeparated({2}, {3}));
  // Direction matters: {3} cannot reach {2}.
  EXPECT_TRUE(g.IsSeparated({3}, {2}));
}

TEST(DependencyTest, DepthOfChainAndTree) {
  DependencyGraph chain;
  chain.AddEdge(0, 1);
  chain.AddEdge(1, 2);
  chain.AddEdge(2, 3);
  EXPECT_EQ(chain.DepthFrom(0), 3u);

  DependencyGraph tree;
  tree.AddEdge(0, 1);
  tree.AddEdge(0, 2);
  tree.AddEdge(1, 3);
  EXPECT_EQ(tree.DepthFrom(0), 2u);
}

TEST(DependencyTest, FromRulesUsesHeadToBodyDirection) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  DependencyGraph g = DependencyGraph::FromRules(system->rules());
  EXPECT_EQ(g.edges(), ExampleGraph().edges());
}

TEST(WeakAcyclicityTest, CopyRulesAreWeaklyAcyclic) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  EXPECT_TRUE(RulesAreWeaklyAcyclic(system->rules()));
}

TEST(WeakAcyclicityTest, ExistentialFeedbackDetected) {
  // p(X) => q(X, Z) with Z existential; q(Y, Z) => p(Z): classic
  // non-terminating chase pattern; must be flagged non-weakly-acyclic.
  P2PSystem system;
  rel::Database dbp, dbq;
  (void)dbp.CreateRelation(rel::RelationSchema("p", {"x"}));
  (void)dbq.CreateRelation(rel::RelationSchema("q", {"x", "z"}));
  ASSERT_TRUE(system.AddNode("P", dbp).ok());
  ASSERT_TRUE(system.AddNode("Q", dbq).ok());

  CoordinationRule r1;
  r1.id = "r1";
  r1.head_node = 1;
  rel::Atom qa;
  qa.relation = "q";
  qa.terms = {rel::Term::Var("X"), rel::Term::Var("Z")};
  r1.head_atoms = {qa};
  CoordinationRule::BodyPart p1;
  p1.node = 0;
  rel::Atom pa;
  pa.relation = "p";
  pa.terms = {rel::Term::Var("X")};
  p1.atoms = {pa};
  r1.body = {p1};

  CoordinationRule r2;
  r2.id = "r2";
  r2.head_node = 0;
  rel::Atom ph;
  ph.relation = "p";
  ph.terms = {rel::Term::Var("Z")};
  r2.head_atoms = {ph};
  CoordinationRule::BodyPart p2;
  p2.node = 1;
  rel::Atom qb;
  qb.relation = "q";
  qb.terms = {rel::Term::Var("Y"), rel::Term::Var("Z")};
  p2.atoms = {qb};
  r2.body = {p2};

  EXPECT_FALSE(RulesAreWeaklyAcyclic({r1, r2}));
}

TEST(PathToStringTest, UsesNodeNames) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(PathToString({0, 1, 4}, &*system), "ABE");
  EXPECT_EQ(PathToString({0, 1}, nullptr), "01");
}

}  // namespace
}  // namespace p2pdb::core
