#include "src/relational/relation.h"

#include <gtest/gtest.h>

#include "src/relational/database.h"

namespace p2pdb::rel {
namespace {

RelationSchema PairSchema() { return RelationSchema("r", {"x", "y"}); }

TEST(SchemaTest, AttributeLookup) {
  RelationSchema s("r", {"a", "b", "c"});
  EXPECT_EQ(s.arity(), 3u);
  EXPECT_EQ(*s.AttributeIndex("b"), 1u);
  EXPECT_FALSE(s.AttributeIndex("z").ok());
  EXPECT_EQ(s.ToString(), "r(a, b, c)");
}

TEST(TupleTest, OrderingAndHash) {
  Tuple a({Value::Int(1), Value::Int(2)});
  Tuple b({Value::Int(1), Value::Int(3)});
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Tuple({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(a.Hash(), Tuple({Value::Int(1), Value::Int(2)}).Hash());
  Tuple shorter({Value::Int(1)});
  EXPECT_LT(shorter, a);
}

TEST(TupleTest, HasNull) {
  EXPECT_FALSE(Tuple({Value::Int(1)}).HasNull());
  EXPECT_TRUE(Tuple({Value::Int(1), Value::Null(9)}).HasNull());
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r(PairSchema());
  EXPECT_TRUE(*r.Insert(Tuple({Value::Int(1), Value::Int(2)})));
  EXPECT_FALSE(*r.Insert(Tuple({Value::Int(1), Value::Int(2)})));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, InsertChecksArity) {
  Relation r(PairSchema());
  EXPECT_FALSE(r.Insert(Tuple({Value::Int(1)})).ok());
}

TEST(RelationTest, EraseAndContains) {
  Relation r(PairSchema());
  Tuple t({Value::Int(1), Value::Int(2)});
  (void)r.Insert(t);
  EXPECT_TRUE(r.Contains(t));
  EXPECT_TRUE(r.Erase(t));
  EXPECT_FALSE(r.Contains(t));
  EXPECT_FALSE(r.Erase(t));
}

TEST(RelationTest, CertainTuplesExcludeNulls) {
  Relation r(PairSchema());
  (void)r.Insert(Tuple({Value::Int(1), Value::Int(2)}));
  (void)r.Insert(Tuple({Value::Int(1), Value::Null(5)}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.CertainTuples().size(), 1u);
}

TEST(RelationTest, IndexFindsMatches) {
  Relation r(PairSchema());
  for (int i = 0; i < 10; ++i) {
    (void)r.Insert(Tuple({Value::Int(i % 3), Value::Int(i)}));
  }
  const Relation::ColumnIndex& index = r.IndexOn(0);
  auto [begin, end] = index.equal_range(Value::Int(1));
  size_t count = 0;
  for (auto it = begin; it != end; ++it) {
    EXPECT_EQ(it->second->at(0), Value::Int(1));
    ++count;
  }
  EXPECT_EQ(count, 3u);  // i = 1, 4, 7.
}

TEST(RelationTest, IndexInvalidatedByMutation) {
  Relation r(PairSchema());
  (void)r.Insert(Tuple({Value::Int(1), Value::Int(1)}));
  EXPECT_EQ(r.IndexOn(0).count(Value::Int(1)), 1u);
  (void)r.Insert(Tuple({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(r.IndexOn(0).count(Value::Int(1)), 2u);
  r.Clear();
  EXPECT_EQ(r.IndexOn(0).count(Value::Int(1)), 0u);
}

TEST(DatabaseTest, CreateAndLookup) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(PairSchema()).ok());
  EXPECT_TRUE(db.HasRelation("r"));
  EXPECT_FALSE(db.HasRelation("q"));
  EXPECT_TRUE(db.Get("r").ok());
  EXPECT_FALSE(db.Get("q").ok());
  EXPECT_FALSE(db.CreateRelation(PairSchema()).ok());  // Duplicate.
}

TEST(DatabaseTest, InsertThroughCatalog) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(PairSchema()).ok());
  EXPECT_TRUE(*db.Insert("r", Tuple({Value::Int(1), Value::Int(2)})));
  EXPECT_FALSE(db.Insert("missing", Tuple({Value::Int(1)})).ok());
  EXPECT_EQ(db.TotalTuples(), 1u);
}

TEST(DatabaseTest, DeepEquality) {
  Database a, b;
  (void)a.CreateRelation(PairSchema());
  (void)b.CreateRelation(PairSchema());
  EXPECT_TRUE(a == b);
  (void)a.Insert("r", Tuple({Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(a == b);
  (void)b.Insert("r", Tuple({Value::Int(1), Value::Int(2)}));
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace p2pdb::rel
