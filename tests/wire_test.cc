#include "src/core/wire.h"

#include <gtest/gtest.h>

#include "src/workload/scenario.h"

namespace p2pdb::core::wire {
namespace {

rel::Value S(const char* s) { return rel::Value::Str(s); }
rel::Value I(int64_t i) { return rel::Value::Int(i); }

TEST(WireTest, ValueRoundTrip) {
  for (const rel::Value& v :
       {I(0), I(-42), I(1LL << 60), S(""), S("hello world"),
        rel::Value::Null(0x1234567890ULL)}) {
    Writer w;
    EncodeValue(v, &w);
    Reader r(w.bytes());
    auto back = DecodeValue(&r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(WireTest, TupleSetRoundTrip) {
  std::set<rel::Tuple> tuples{
      rel::Tuple({I(1), S("a")}),
      rel::Tuple({I(2), S("b")}),
      rel::Tuple({rel::Value::Null(7), S("c")}),
  };
  Writer w;
  EncodeTupleSet(tuples, &w);
  Reader r(w.bytes());
  auto back = DecodeTupleSet(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, tuples);
}

TEST(WireTest, QueryRoundTrip) {
  rel::ConjunctiveQuery q;
  q.head_vars = {"X", "Y"};
  rel::Atom a;
  a.relation = "edge";
  a.terms = {rel::Term::Var("X"), rel::Term::Const(S("c"))};
  q.atoms = {a};
  rel::Builtin b;
  b.op = rel::BuiltinOp::kNe;
  b.lhs = rel::Term::Var("X");
  b.rhs = rel::Term::Var("Y");
  q.builtins = {b};

  Writer w;
  EncodeQuery(q, &w);
  Reader r(w.bytes());
  auto back = DecodeQuery(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToString(), q.ToString());
}

TEST(WireTest, RuleRoundTripOverExampleRules) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  for (const CoordinationRule& rule : system->rules()) {
    Writer w;
    EncodeRule(rule, &w);
    Reader r(w.bytes());
    auto back = DecodeRule(&r);
    ASSERT_TRUE(back.ok()) << rule.id;
    EXPECT_EQ(back->ToString(), rule.ToString());
  }
}

TEST(WireTest, EdgesRoundTrip) {
  std::set<Edge> edges{{0, 1}, {1, 2}, {2, 0}};
  Writer w;
  EncodeEdges(edges, &w);
  Reader r(w.bytes());
  auto back = DecodeEdges(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, edges);
}

TEST(WireTest, DiscoverPayloadsRoundTrip) {
  DiscoverRequest req{7};
  auto req2 = DiscoverRequest::Decode(req.Encode());
  ASSERT_TRUE(req2.ok());
  EXPECT_EQ(req2->origin, 7u);

  DiscoverAnswer ans;
  ans.origin = 3;
  ans.visited = true;
  ans.edges = {{1, 2}};
  auto ans2 = DiscoverAnswer::Decode(ans.Encode());
  ASSERT_TRUE(ans2.ok());
  EXPECT_EQ(ans2->origin, 3u);
  EXPECT_TRUE(ans2->visited);
  EXPECT_EQ(ans2->edges, ans.edges);

  DiscoverClosure closure;
  closure.origin = 9;
  closure.edges = {{0, 1}, {1, 0}};
  auto closure2 = DiscoverClosure::Decode(closure.Encode());
  ASSERT_TRUE(closure2.ok());
  EXPECT_EQ(closure2->edges, closure.edges);
}

TEST(WireTest, UpdatePayloadsRoundTrip) {
  QueryRequest req;
  req.session = 5;
  req.rule_id = "r1";
  req.part = 2;
  req.query.head_vars = {"X"};
  auto req2 = QueryRequest::Decode(req.Encode());
  ASSERT_TRUE(req2.ok());
  EXPECT_EQ(req2->session, 5u);
  EXPECT_EQ(req2->rule_id, "r1");
  EXPECT_EQ(req2->part, 2u);

  QueryAnswer ans;
  ans.session = 5;
  ans.rule_id = "r1";
  ans.part = 2;
  ans.is_delta = false;
  ans.source_closed = true;
  ans.tuples = {rel::Tuple({I(1)})};
  auto ans2 = QueryAnswer::Decode(ans.Encode());
  ASSERT_TRUE(ans2.ok());
  EXPECT_FALSE(ans2->is_delta);
  EXPECT_TRUE(ans2->source_closed);
  EXPECT_EQ(ans2->tuples, ans.tuples);

  Unsubscribe unsub;
  unsub.session = 1;
  unsub.rule_id = "rX";
  unsub.part = 1;
  auto unsub2 = Unsubscribe::Decode(unsub.Encode());
  ASSERT_TRUE(unsub2.ok());
  EXPECT_EQ(unsub2->rule_id, "rX");
}

TEST(WireTest, PartialUpdateRoundTrip) {
  PartialUpdate p;
  p.session = 4;
  p.relations = {"a", "b"};
  p.sn_path = {3, 1, 2};
  auto p2 = PartialUpdate::Decode(p.Encode());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->relations, p.relations);
  EXPECT_EQ(p2->sn_path, p.sn_path);
}

TEST(WireTest, TokenRoundTrip) {
  Token t;
  t.session = 1;
  t.leader = 2;
  t.pass = 10;
  t.sum_sent = 100;
  t.sum_recv = 99;
  t.all_ready = false;
  auto t2 = Token::Decode(t.Encode());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->leader, 2u);
  EXPECT_EQ(t2->pass, 10u);
  EXPECT_EQ(t2->sum_sent, 100u);
  EXPECT_EQ(t2->sum_recv, 99u);
  EXPECT_FALSE(t2->all_ready);
}

TEST(WireTest, ChangePayloadsRoundTrip) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  AddRuleChange add{system->rules().front()};
  auto add2 = AddRuleChange::Decode(add.Encode());
  ASSERT_TRUE(add2.ok());
  EXPECT_EQ(add2->rule.ToString(), add.rule.ToString());

  DeleteRuleChange del{"r7"};
  auto del2 = DeleteRuleChange::Decode(del.Encode());
  ASSERT_TRUE(del2.ok());
  EXPECT_EQ(del2->rule_id, "r7");
}

TEST(WireTest, DecodeRejectsGarbage) {
  std::vector<uint8_t> garbage{0xff, 0x01, 0x02};
  EXPECT_FALSE(QueryRequest::Decode(garbage).ok());
  EXPECT_FALSE(AddRuleChange::Decode(garbage).ok());
  std::vector<uint8_t> empty;
  EXPECT_FALSE(DiscoverRequest::Decode(empty).ok());
}

}  // namespace
}  // namespace p2pdb::core::wire
