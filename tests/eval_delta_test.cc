// Semi-naive (incremental) evaluation: EvaluateQueryDelta must account for
// exactly the answers a monotone insertion adds.
#include <gtest/gtest.h>

#include "src/relational/eval.h"
#include "src/util/rng.h"

namespace p2pdb::rel {
namespace {

Value I(int64_t v) { return Value::Int(v); }

ConjunctiveQuery TwoHop() {
  ConjunctiveQuery q;
  q.head_vars = {"X", "Z"};
  Atom a1, a2;
  a1.relation = a2.relation = "edge";
  a1.terms = {Term::Var("X"), Term::Var("Y")};
  a2.terms = {Term::Var("Y"), Term::Var("Z")};
  q.atoms = {a1, a2};
  return q;
}

TEST(EvalDeltaTest, SingleAtomDelta) {
  Database db;
  (void)db.CreateRelation(RelationSchema("p", {"x"}));
  (void)db.Insert("p", Tuple({I(1)}));
  (void)db.Insert("p", Tuple({I(2)}));
  ConjunctiveQuery q;
  q.head_vars = {"X"};
  Atom a;
  a.relation = "p";
  a.terms = {Term::Var("X")};
  q.atoms = {a};
  std::set<Tuple> delta{Tuple({I(2)})};  // Pretend only 2 is new.
  auto result = EvaluateQueryDelta(db, q, 0, delta);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::set<Tuple>{Tuple({I(2)})}));
}

TEST(EvalDeltaTest, JoinDeltaCoversBothSides) {
  Database db;
  (void)db.CreateRelation(RelationSchema("edge", {"a", "b"}));
  (void)db.Insert("edge", Tuple({I(1), I(2)}));
  // Now insert 2->3 and compute what two-hop answers appeared.
  (void)db.Insert("edge", Tuple({I(2), I(3)}));
  std::set<Tuple> delta{Tuple({I(2), I(3)})};

  ConjunctiveQuery q = TwoHop();
  std::set<Tuple> incremental;
  for (size_t occurrence : {0u, 1u}) {
    auto part = EvaluateQueryDelta(db, q, occurrence, delta);
    ASSERT_TRUE(part.ok());
    incremental.insert(part->begin(), part->end());
  }
  EXPECT_EQ(incremental, (std::set<Tuple>{Tuple({I(1), I(3)})}));
}

TEST(EvalDeltaTest, BuiltinsRespectedInDeltaPath) {
  Database db;
  (void)db.CreateRelation(RelationSchema("n", {"v"}));
  (void)db.Insert("n", Tuple({I(1)}));
  (void)db.Insert("n", Tuple({I(5)}));
  ConjunctiveQuery q;
  q.head_vars = {"V"};
  Atom a;
  a.relation = "n";
  a.terms = {Term::Var("V")};
  q.atoms = {a};
  Builtin b;
  b.op = BuiltinOp::kLt;
  b.lhs = Term::Var("V");
  b.rhs = Term::Const(I(3));
  q.builtins = {b};
  std::set<Tuple> delta{Tuple({I(1)}), Tuple({I(5)})};
  auto result = EvaluateQueryDelta(db, q, 0, delta);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::set<Tuple>{Tuple({I(1)})}));  // 5 filtered out.
}

TEST(EvalDeltaTest, OutOfRangeAtomRejected) {
  Database db;
  ConjunctiveQuery q = TwoHop();
  EXPECT_FALSE(EvaluateQueryDelta(db, q, 5, {}).ok());
}

// Property: incremental accumulation across random insertions equals a fresh
// full evaluation after every step.
TEST(EvalDeltaTest, IncrementalMatchesFullEvaluationUnderRandomInserts) {
  Rng rng(1234);
  Database db;
  (void)db.CreateRelation(RelationSchema("edge", {"a", "b"}));
  ConjunctiveQuery q = TwoHop();

  std::set<Tuple> accumulated;  // Maintained incrementally.
  for (int step = 0; step < 120; ++step) {
    Tuple t({I(static_cast<int64_t>(rng.NextBelow(12))),
             I(static_cast<int64_t>(rng.NextBelow(12)))});
    auto inserted = db.Insert("edge", t);
    ASSERT_TRUE(inserted.ok());
    if (!*inserted) continue;  // Duplicate: no delta.
    std::set<Tuple> delta{t};
    for (size_t occurrence = 0; occurrence < q.atoms.size(); ++occurrence) {
      auto part = EvaluateQueryDelta(db, q, occurrence, delta);
      ASSERT_TRUE(part.ok());
      accumulated.insert(part->begin(), part->end());
    }
    auto full = EvaluateQuery(db, q);
    ASSERT_TRUE(full.ok());
    ASSERT_EQ(accumulated, *full) << "diverged at step " << step;
  }
}

}  // namespace
}  // namespace p2pdb::rel
