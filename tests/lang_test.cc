#include "src/lang/parser.h"

#include <gtest/gtest.h>

#include "src/lang/lexer.h"
#include "src/lang/printer.h"
#include "src/util/rng.h"
#include "src/workload/scenario.h"

namespace p2pdb::lang {
namespace {

TEST(LexerTest, TokenizesAllKinds) {
  auto tokens = Tokenize("node A { rel r(x); } # comment\n"
                         "rule r1: A.r(X), X != 3 => B.q(X);");
  ASSERT_TRUE(tokens.ok());
  // First few tokens.
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "node");
  EXPECT_EQ((*tokens)[1].text, "A");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kLBrace);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEof);
}

TEST(LexerTest, StringsAndEscapes) {
  auto tokens = Tokenize(R"( "hello" "with \"quote\"" )");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "hello");
  EXPECT_EQ((*tokens)[1].text, "with \"quote\"");
}

TEST(LexerTest, NegativeIntegers) {
  auto tokens = Tokenize("-12 7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].int_value, -12);
  EXPECT_EQ((*tokens)[1].int_value, 7);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("\"open").ok());
}

TEST(LexerTest, UnknownCharacterFails) {
  EXPECT_FALSE(Tokenize("node @").ok());
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Tokenize("=> :- != <= >= < > =");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kArrow);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kTurnstile);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kGe);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kLt);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kGt);
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kEq);
}

TEST(ParserTest, ParsesRunningExample) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  EXPECT_EQ(system->node_count(), 5u);
  EXPECT_EQ(system->rules().size(), 7u);
  // E holds three facts.
  EXPECT_EQ(system->node(*system->NodeByName("E")).db.TotalTuples(), 3u);
}

TEST(ParserTest, RuleStructure) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  auto r4 = system->RuleById("r4");
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ((*r4)->head_node, *system->NodeByName("A"));
  ASSERT_EQ((*r4)->body.size(), 1u);  // Both b-atoms at node B.
  EXPECT_EQ((*r4)->body[0].atoms.size(), 2u);
  EXPECT_EQ((*r4)->body[0].builtins.size(), 1u);  // X != Z local to B.
  EXPECT_TRUE((*r4)->cross_builtins.empty());
}

TEST(ParserTest, MultiNodeBodyBecomesParts) {
  const char* text = R"(
node A { rel a(x); }
node B { rel b(x); }
node C { rel c(x, y); }
rule j: A.a(X), B.b(Y), X != Y => C.c(X, Y);
)";
  auto system = ParseSystem(text);
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  const core::CoordinationRule& rule = system->rules()[0];
  ASSERT_EQ(rule.body.size(), 2u);
  // X != Y spans parts: must be a cross built-in.
  EXPECT_EQ(rule.cross_builtins.size(), 1u);
  EXPECT_TRUE(rule.body[0].builtins.empty());
  EXPECT_TRUE(rule.body[1].builtins.empty());
}

TEST(ParserTest, ExistentialHeadVariables) {
  const char* text = R"(
node R { rel rec(a, t); }
node P { rel pub(i, t, y); rel wrote(a, i); }
rule x: R.rec(A, T) => P.pub(I, T, Y), P.wrote(A, I);
)";
  auto system = ParseSystem(text);
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  auto existentials = system->rules()[0].ExistentialVars();
  EXPECT_EQ(existentials, (std::vector<std::string>{"I", "Y"}));
}

TEST(ParserTest, FactsWithMixedConstants) {
  const char* text = R"(
node N { rel t(a, b, c); fact t("s", 42, lowercase_is_string); }
)";
  auto system = ParseSystem(text);
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  const rel::Relation* r = *system->node(0).db.Get("t");
  ASSERT_EQ(r->size(), 1u);
  const rel::Tuple& t = *r->tuples().begin();
  EXPECT_EQ(t.at(0), rel::Value::Str("s"));
  EXPECT_EQ(t.at(1), rel::Value::Int(42));
  EXPECT_EQ(t.at(2), rel::Value::Str("lowercase_is_string"));
}

TEST(ParserTest, ErrorsAreReported) {
  EXPECT_FALSE(ParseSystem("node A { rel }").ok());
  EXPECT_FALSE(ParseSystem("rule r: A.a(X) => B.b(X);").ok());  // Unknown nodes.
  EXPECT_FALSE(ParseSystem("garbage").ok());
  // Head atoms at two nodes.
  EXPECT_FALSE(ParseSystem(R"(
node A { rel a(x); }
node B { rel b(x); }
node C { rel c(x); }
rule r: A.a(X) => B.b(X), C.c(X);
)")
                   .ok());
  // Unbound built-in variable.
  EXPECT_FALSE(ParseSystem(R"(
node A { rel a(x); }
node B { rel b(x); }
rule r: A.a(X), W != X => B.b(X);
)")
                   .ok());
}

TEST(ParserTest, ValidationCatchesArityMismatch) {
  EXPECT_FALSE(ParseSystem(R"(
node A { rel a(x, y); }
node B { rel b(x); }
rule r: A.a(X) => B.b(X);
)")
                   .ok());
}

TEST(ParserTest, QueryParsing) {
  auto q = ParseQuery("q(X, Y) :- edge(X, Y), X != Y");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->head_vars, (std::vector<std::string>{"X", "Y"}));
  ASSERT_EQ(q->atoms.size(), 1u);
  EXPECT_EQ(q->atoms[0].relation, "edge");
  ASSERT_EQ(q->builtins.size(), 1u);
}

TEST(ParserTest, QueryWithConstants) {
  auto q = ParseQuery("q(Y) :- edge(\"a\", Y)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atoms[0].terms[0].constant, rel::Value::Str("a"));
}

TEST(ParserTest, QueryRejectsConstantHead) {
  EXPECT_FALSE(ParseQuery("q(3) :- edge(X, Y)").ok());
}

TEST(PrinterTest, SystemRoundTripsThroughParser) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  std::string text = PrintSystem(*system);
  auto reparsed = ParseSystem(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  EXPECT_EQ(PrintSystem(*reparsed), text);
  EXPECT_EQ(reparsed->node_count(), system->node_count());
  EXPECT_EQ(reparsed->rules().size(), system->rules().size());
}

TEST(ParserTest, FuzzedInputsNeverCrash) {
  // Mutated fragments of a valid document must produce a clean error (or
  // parse), never crash or hang.
  const std::string base = R"(
node A { rel a(x); fact a("v"); }
node B { rel b(x); }
rule r: A.a(X), X != "q" => B.b(X);
)";
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    size_t edits = 1 + rng.NextBelow(4);
    for (size_t e = 0; e < edits; ++e) {
      size_t pos = rng.NextBelow(mutated.size());
      switch (rng.NextBelow(3)) {
        case 0:
          mutated[pos] = static_cast<char>(32 + rng.NextBelow(95));
          break;
        case 1:
          mutated.erase(pos, 1 + rng.NextBelow(5));
          break;
        default:
          mutated.insert(pos, "(");
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    auto result = ParseSystem(mutated);  // Must not crash.
    (void)result;
  }
  SUCCEED();
}

TEST(ParserTest, TruncationsOfValidInputNeverCrash) {
  const std::string base = R"(
node N { rel r(x, y); fact r(1, "s"); }
rule k: N.r(X, Y) => N.r(Y, X);
)";
  for (size_t len = 0; len <= base.size(); ++len) {
    auto result = ParseSystem(base.substr(0, len));
    (void)result;
  }
  SUCCEED();
}

TEST(PrinterTest, MaximalPathsTableMatchesSection2) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  std::string table = FormatMaximalPathsTable(*system);
  EXPECT_NE(table.find("ABCA"), std::string::npos);
  EXPECT_NE(table.find("ABE"), std::string::npos);
  EXPECT_NE(table.find("BCDAB"), std::string::npos);
  EXPECT_NE(table.find("DABCD"), std::string::npos);
}

}  // namespace
}  // namespace p2pdb::lang
