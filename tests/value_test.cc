#include "src/relational/value.h"

#include <gtest/gtest.h>

#include <set>

namespace p2pdb::rel {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  Value i = Value::Int(-5);
  Value s = Value::Str("x");
  Value n = Value::Null(42);
  EXPECT_EQ(i.kind(), ValueKind::kInt);
  EXPECT_EQ(s.kind(), ValueKind::kString);
  EXPECT_EQ(n.kind(), ValueKind::kNull);
  EXPECT_EQ(i.AsInt(), -5);
  EXPECT_EQ(s.AsStr(), "x");
  EXPECT_EQ(n.null_id(), 42u);
  EXPECT_TRUE(n.is_null());
  EXPECT_FALSE(i.is_null());
}

TEST(ValueTest, EqualityWithinKind) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Int(4));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
  EXPECT_NE(Value::Str("a"), Value::Str("b"));
  EXPECT_EQ(Value::Null(1), Value::Null(1));
  EXPECT_NE(Value::Null(1), Value::Null(2));
}

TEST(ValueTest, CrossKindNeverEqual) {
  EXPECT_NE(Value::Int(1), Value::Str("1"));
  EXPECT_NE(Value::Int(1), Value::Null(1));
  EXPECT_NE(Value::Str("x"), Value::Null(1));
}

TEST(ValueTest, TotalOrderIsStrictWeak) {
  std::vector<Value> values{Value::Int(2),    Value::Int(-1),
                            Value::Str("b"),  Value::Str("a"),
                            Value::Null(7),   Value::Null(3)};
  std::set<Value> sorted(values.begin(), values.end());
  EXPECT_EQ(sorted.size(), values.size());
  // Ints before strings before nulls (kind ordering).
  auto it = sorted.begin();
  EXPECT_EQ(it->kind(), ValueKind::kInt);
  it = std::prev(sorted.end());
  EXPECT_EQ(it->kind(), ValueKind::kNull);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Str("q").Hash(), Value::Str("q").Hash());
  EXPECT_EQ(Value::Int(12).Hash(), Value::Int(12).Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Str("t").ToString(), "\"t\"");
  NullFactory f(3);
  Value n = f.Fresh();
  EXPECT_EQ(n.ToString().substr(0, 4), "_:3.");
}

TEST(NullFactoryTest, FreshNullsAreDistinct) {
  NullFactory f(1);
  std::set<uint64_t> ids;
  for (int i = 0; i < 100; ++i) ids.insert(f.Fresh().null_id());
  EXPECT_EQ(ids.size(), 100u);
}

TEST(NullFactoryTest, NodesNeverCollide) {
  NullFactory a(1), b(2);
  EXPECT_NE(a.Fresh().null_id(), b.Fresh().null_id());
  EXPECT_EQ(NullFactory::NodeOf(a.Fresh().null_id()), 1u);
  EXPECT_EQ(NullFactory::NodeOf(b.Fresh().null_id()), 2u);
}

TEST(NullFactoryTest, DepthTracking) {
  NullFactory f(5);
  Value d1 = f.Fresh(0);
  EXPECT_EQ(NullFactory::DepthBitsOf(d1.null_id()), 1u);
  Value d4 = f.Fresh(3);
  EXPECT_EQ(NullFactory::DepthBitsOf(d4.null_id()), 4u);
  // Depth saturates at 255.
  Value deep = f.Fresh(400);
  EXPECT_EQ(NullFactory::DepthBitsOf(deep.null_id()), 255u);
}

}  // namespace
}  // namespace p2pdb::rel
