#include "src/core/update.h"

#include <gtest/gtest.h>

#include "src/core/global_fixpoint.h"
#include "src/core/session.h"
#include "src/lang/parser.h"
#include "src/net/sim_runtime.h"
#include "src/net/thread_runtime.h"
#include "src/relational/null_iso.h"
#include "src/workload/scenario.h"

namespace p2pdb::core {
namespace {

rel::Value S(const char* s) { return rel::Value::Str(s); }

// Runs discovery + update over a SimRuntime and returns the session.
std::unique_ptr<Session> RunFull(const P2PSystem& system, net::SimRuntime* rt,
                                 Session::Options options = {}) {
  auto session = std::make_unique<Session>(system, rt, options);
  EXPECT_TRUE(session->RunDiscovery().ok());
  EXPECT_TRUE(session->RunUpdate().ok());
  return session;
}

// Distributed result must agree with the centralized fix-point on certain
// tuples for every participating node.
void ExpectMatchesGlobalFixpoint(const P2PSystem& system, Session* session) {
  auto global = ComputeGlobalFixpoint(system, rel::ChaseOptions{});
  ASSERT_TRUE(global.ok()) << global.status().ToString();
  for (NodeId n : session->Participants()) {
    EXPECT_TRUE(rel::DatabasesCertainEqual(session->peer(n).db(),
                                           global->node_dbs[n]))
        << "node " << n << "\ndistributed:\n"
        << session->peer(n).db().ToString() << "\nglobal:\n"
        << global->node_dbs[n].ToString();
  }
}

TEST(UpdateTest, ChainPropagatesToRoot) {
  const char* text = R"(
node A { rel a(x); }
node B { rel b(x); }
node C { rel c(x); fact c("v1"); fact c("v2"); }
rule r1: B.b(X) => A.a(X);
rule r2: C.c(X) => B.b(X);
)";
  auto system = lang::ParseSystem(text);
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  auto session = RunFull(*system, &rt);
  ASSERT_TRUE(session->AllClosed());
  const rel::Relation* a = *session->peer(0).db().Get("a");
  EXPECT_EQ(a->size(), 2u);
  EXPECT_TRUE(a->Contains(rel::Tuple({S("v1")})));
  ExpectMatchesGlobalFixpoint(*system, session.get());
}

TEST(UpdateTest, LeafNodesCloseImmediately) {
  const char* text = R"(
node A { rel a(x); }
node B { rel b(x); fact b("v"); }
rule r1: B.b(X) => A.a(X);
)";
  auto system = lang::ParseSystem(text);
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  auto session = RunFull(*system, &rt);
  EXPECT_EQ(session->peer(1).update().state(), UpdateEngine::State::kClosed);
  EXPECT_EQ(session->peer(0).update().state(), UpdateEngine::State::kClosed);
}

TEST(UpdateTest, TwoNodeCycleReachesFixpoint) {
  const char* text = R"(
node A { rel a(x); fact a("fromA"); }
node B { rel b(x); fact b("fromB"); }
rule r1: B.b(X) => A.a(X);
rule r2: A.a(X) => B.b(X);
)";
  auto system = lang::ParseSystem(text);
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  auto session = RunFull(*system, &rt);
  ASSERT_TRUE(session->AllClosed());
  for (NodeId n : {0u, 1u}) {
    EXPECT_EQ(session->peer(n).db().TotalTuples(), 2u) << "node " << n;
  }
  ExpectMatchesGlobalFixpoint(*system, session.get());
}

TEST(UpdateTest, RunningExampleMatchesGlobalFixpoint) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  auto session = RunFull(*system, &rt);
  std::set<NodeId> open;
  EXPECT_TRUE(session->AllClosed(&open)) << "open nodes: " << open.size();
  ExpectMatchesGlobalFixpoint(*system, session.get());
}

TEST(UpdateTest, RunningExampleDataLandsEverywhere) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  auto session = RunFull(*system, &rt);
  // E's pairs reach B via r1; loops B->C->B close; A gets r4 output; D gets
  // r6 output; C gets f(X) via r5.
  EXPECT_GE((*session->peer(1).db().Get("b"))->size(), 3u);
  EXPECT_GE((*session->peer(2).db().Get("c"))->size(), 1u);
  EXPECT_GE((*session->peer(0).db().Get("a"))->size(), 1u);
  EXPECT_GE((*session->peer(3).db().Get("d"))->size(), 1u);
  EXPECT_GE((*session->peer(2).db().Get("f"))->size(), 1u);
}

TEST(UpdateTest, DeltaAndFullAnswersAgree) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());

  net::SimRuntime rt_delta;
  Session::Options delta_options;
  delta_options.peer.update.delta_answers = true;
  auto with_delta = RunFull(*system, &rt_delta, delta_options);

  net::SimRuntime rt_full;
  Session::Options full_options;
  full_options.peer.update.delta_answers = false;
  auto with_full = RunFull(*system, &rt_full, full_options);

  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_TRUE(rel::DatabasesCertainEqual(with_delta->peer(n).db(),
                                           with_full->peer(n).db()))
        << "node " << n;
  }
  // The delta optimization can only reduce the bytes moved.
  EXPECT_LE(rt_delta.stats().BytesOfType(net::MessageType::kQueryAnswer),
            rt_full.stats().BytesOfType(net::MessageType::kQueryAnswer));
}

TEST(UpdateTest, MultiNodeBodyJoinsAcrossPeers) {
  const char* text = R"(
node L { rel l(k, v); fact l("k1", "x"); fact l("k2", "y"); }
node R { rel r(k, w); fact r("k1", "p"); fact r("k3", "q"); }
node T { rel t(v, w); }
rule j: L.l(K, V), R.r(K, W) => T.t(V, W);
)";
  auto system = lang::ParseSystem(text);
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session::Options options;
  options.super_peer = 2;  // T is the head.
  auto session = RunFull(*system, &rt, options);
  ASSERT_TRUE(session->AllClosed());
  const rel::Relation* t = *session->peer(2).db().Get("t");
  ASSERT_EQ(t->size(), 1u);  // Only k1 joins.
  EXPECT_TRUE(t->Contains(rel::Tuple({S("x"), S("p")})));
}

TEST(UpdateTest, CrossBuiltinFiltersJoin) {
  const char* text = R"(
node L { rel l(v); fact l(1); fact l(5); }
node R { rel r(w); fact r(3); }
node T { rel t(v, w); }
rule j: L.l(V), R.r(W), V < W => T.t(V, W);
)";
  auto system = lang::ParseSystem(text);
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session::Options options;
  options.super_peer = 2;
  auto session = RunFull(*system, &rt, options);
  const rel::Relation* t = *session->peer(2).db().Get("t");
  ASSERT_EQ(t->size(), 1u);
  EXPECT_TRUE(
      t->Contains(rel::Tuple({rel::Value::Int(1), rel::Value::Int(3)})));
}

TEST(UpdateTest, ExistentialRuleInventsWitnessOnce) {
  const char* text = R"(
node R { rel rec(a, t); fact rec("alice", "t1"); }
node P { rel pub(i, t, y); rel wrote(a, i); }
rule x: R.rec(A, T) => P.pub(I, T, Y), P.wrote(A, I);
)";
  auto system = lang::ParseSystem(text);
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  Session::Options options;
  options.super_peer = 1;
  auto session = RunFull(*system, &rt, options);
  ASSERT_TRUE(session->AllClosed());
  const rel::Relation* pub = *session->peer(1).db().Get("pub");
  const rel::Relation* wrote = *session->peer(1).db().Get("wrote");
  ASSERT_EQ(pub->size(), 1u);
  ASSERT_EQ(wrote->size(), 1u);
  // Shared existential: the same null links the two atoms.
  EXPECT_EQ(pub->tuples().begin()->at(0), wrote->tuples().begin()->at(1));
}

TEST(UpdateTest, TokenRingClosesLargerCycle) {
  // Ring of 5 nodes, data injected at one point, must circulate and close.
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kRing;
  options.topology.nodes = 5;
  options.records_per_node = 3;
  auto system = workload::BuildScenario(options);
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  auto session = RunFull(*system, &rt);
  std::set<NodeId> open;
  ASSERT_TRUE(session->AllClosed(&open)) << open.size() << " nodes open";
  ExpectMatchesGlobalFixpoint(*system, session.get());
  // Token passes happened (a real ring ran).
  EXPECT_GT(rt.stats().MessagesOfType(net::MessageType::kToken), 0u);
}

TEST(UpdateTest, StatsAreRecorded) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  auto session = RunFull(*system, &rt);
  const UpdateEngine::Stats& stats = session->peer(1).update().stats();
  EXPECT_GT(stats.joins_evaluated, 0u);
  EXPECT_GT(stats.tuples_inserted, 0u);
  EXPECT_GT(stats.answers_sent, 0u);
}

TEST(UpdateTest, IdempotentSecondUpdateAddsNothing) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());
  net::SimRuntime rt;
  auto session = RunFull(*system, &rt);
  std::vector<rel::Database> first = session->SnapshotDatabases();
  ASSERT_TRUE(session->RunUpdate().ok());  // Second session.
  std::vector<rel::Database> second = session->SnapshotDatabases();
  for (size_t n = 0; n < first.size(); ++n) {
    EXPECT_TRUE(first[n] == second[n]) << "node " << n;
  }
}

TEST(UpdateTest, ThreadRuntimeAgreesWithSimRuntime) {
  auto system = workload::MakeRunningExample();
  ASSERT_TRUE(system.ok());

  net::SimRuntime sim;
  auto sim_session = RunFull(*system, &sim);

  net::ThreadRuntime threads;
  Session thread_session(*system, &threads);
  ASSERT_TRUE(thread_session.RunDiscovery().ok());
  ASSERT_TRUE(thread_session.RunUpdate().ok());
  ASSERT_TRUE(thread_session.AllClosed());

  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_TRUE(rel::DatabasesCertainEqual(sim_session->peer(n).db(),
                                           thread_session.peer(n).db()))
        << "node " << n;
  }
}

}  // namespace
}  // namespace p2pdb::core
