// StorageManager: checkpoint + WAL working together — base establishment,
// delta logging, threshold-driven checkpointing with WAL truncation, and
// recovery equivalence (including isomorphism on instances with labeled
// nulls, against the relational/snapshot round trip).
#include "src/storage/storage_manager.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>

#include "src/relational/null_iso.h"
#include "src/relational/snapshot.h"
#include "src/storage/checkpoint.h"

namespace p2pdb::storage {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/p2pdb_storage_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

rel::Database BaseDb() {
  rel::Database db;
  (void)db.CreateRelation(rel::RelationSchema("pub", {"id", "title"}));
  (void)db.CreateRelation(rel::RelationSchema("wrote", {"author", "id"}));
  (void)db.Insert("pub", rel::Tuple({rel::Value::Int(1),
                                     rel::Value::Str("seed paper")}));
  return db;
}

DeltaMap OneDelta(int64_t id, const std::string& title) {
  DeltaMap delta;
  delta["pub"].insert(rel::Tuple({rel::Value::Int(id),
                                  rel::Value::Str(title)}));
  return delta;
}

TEST(StorageManagerTest, DeltaCodecRoundTrip) {
  DeltaMap delta;
  delta["pub"].insert(rel::Tuple({rel::Value::Int(7),
                                  rel::Value::Str("x")}));
  delta["wrote"].insert(rel::Tuple({rel::Value::Str("ada"),
                                    rel::Value::Null(0x300000005ULL)}));
  auto back = DecodeDelta(EncodeDelta(delta));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, delta);

  EXPECT_FALSE(DecodeDelta({}).ok());
  EXPECT_FALSE(DecodeDelta({99}).ok());  // Unknown record kind.
}

TEST(StorageManagerTest, RuleChangeRecordsSurviveCheckpointTruncation) {
  StorageOptions options;
  options.dir = FreshDir("rule_records");
  options.sync = SyncMode::kNoSync;
  auto manager = StorageManager::Open(options);
  ASSERT_TRUE(manager.ok());
  rel::Database db = BaseDb();
  ASSERT_TRUE((*manager)->EnsureBase(db).ok());

  std::vector<uint8_t> change_a = {0xaa, 1, 2, 3};
  std::vector<uint8_t> change_b = {0xbb};
  ASSERT_TRUE((*manager)->LogRuleChange(change_a).ok());
  ASSERT_TRUE((*manager)->LogDelta(OneDelta(2, "mid")).ok());
  ASSERT_TRUE((*manager)->LogRuleChange(change_b).ok());

  // Checkpointing folds deltas into the snapshot and truncates the WAL, but
  // must not lose the rule-change history (the snapshot stores no rules).
  ASSERT_TRUE((*manager)->Checkpoint(db).ok());

  RecoveryInfo info;
  auto recovered = (*manager)->Recover(&info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(info.rule_changes.size(), 2u);
  EXPECT_EQ(info.rule_changes[0], change_a);
  EXPECT_EQ(info.rule_changes[1], change_b);

  // A reopened manager (fresh process) re-learns the retained records from
  // disk, so its next checkpoint keeps carrying them.
  manager->reset();
  auto reopened = StorageManager::Open(options);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE((*reopened)->Checkpoint(db).ok());
  RecoveryInfo info2;
  ASSERT_TRUE((*reopened)->Recover(&info2).ok());
  ASSERT_EQ(info2.rule_changes.size(), 2u);
  EXPECT_EQ(info2.rule_changes[0], change_a);

  std::filesystem::remove_all(options.dir);
}

TEST(StorageManagerTest, GroupCommitOptionsReachTheWal) {
  StorageOptions options;
  options.dir = FreshDir("group_commit");
  options.sync = SyncMode::kSync;
  options.group_commit.window = std::chrono::seconds(60);
  options.group_commit.max_pending = 4;
  auto manager = StorageManager::Open(options);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->EnsureBase(BaseDb()).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*manager)->LogDelta(OneDelta(10 + i, "d")).ok());
  }
  EXPECT_EQ((*manager)->wal_syncs(), 2u);  // Two batches of four.
  std::filesystem::remove_all(options.dir);
}

TEST(StorageManagerTest, EnsureBaseCheckpointsOnlyOnce) {
  StorageOptions options;
  options.dir = FreshDir("ensure_base");
  auto manager = StorageManager::Open(options);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  rel::Database db = BaseDb();
  ASSERT_TRUE((*manager)->EnsureBase(db).ok());
  EXPECT_TRUE(CheckpointExists(options.dir));

  // A second EnsureBase with different contents must NOT overwrite the base.
  rel::Database other;
  ASSERT_TRUE((*manager)->EnsureBase(other).ok());
  auto recovered = (*manager)->Recover(nullptr);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(*recovered == db);
}

TEST(StorageManagerTest, LogDeltaThenRecoverRebuildsState) {
  StorageOptions options;
  options.dir = FreshDir("log_recover");
  auto manager = StorageManager::Open(options);
  ASSERT_TRUE(manager.ok());

  rel::Database db = BaseDb();
  ASSERT_TRUE((*manager)->EnsureBase(db).ok());
  for (int64_t i = 2; i <= 5; ++i) {
    DeltaMap delta = OneDelta(i, "t" + std::to_string(i));
    for (const auto& [relation, tuples] : delta) {
      for (const rel::Tuple& t : tuples) {
        ASSERT_TRUE(db.Insert(relation, t).ok());
      }
    }
    ASSERT_TRUE((*manager)->LogDelta(delta).ok());
  }
  ASSERT_TRUE((*manager)->LogDelta({}).ok());  // Empty delta: no record.

  RecoveryInfo info;
  auto recovered = (*manager)->Recover(&info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(*recovered == db);
  EXPECT_TRUE(info.had_checkpoint);
  EXPECT_EQ(info.wal_records_replayed, 4u);
  EXPECT_FALSE(info.wal_tail_truncated);
  EXPECT_EQ(info.tuples_recovered, db.TotalTuples());
}

TEST(StorageManagerTest, RecoveryIsIsomorphicToSnapshotRoundTrip) {
  // A database with labeled nulls, rebuilt two ways: checkpoint+WAL replay
  // and the direct snapshot round trip. Both must be isomorphic (here even
  // equal: both paths keep null identifiers verbatim).
  StorageOptions options;
  options.dir = FreshDir("iso");
  auto manager = StorageManager::Open(options);
  ASSERT_TRUE(manager.ok());

  rel::Database db = BaseDb();
  ASSERT_TRUE((*manager)->EnsureBase(db).ok());
  DeltaMap delta;
  delta["wrote"].insert(rel::Tuple({rel::Value::Str("ada"),
                                    rel::Value::Null(0x200000001ULL)}));
  delta["wrote"].insert(rel::Tuple({rel::Value::Str("bob"),
                                    rel::Value::Null(0x200000002ULL)}));
  for (const auto& [relation, tuples] : delta) {
    for (const rel::Tuple& t : tuples) {
      ASSERT_TRUE(db.Insert(relation, t).ok());
    }
  }
  ASSERT_TRUE((*manager)->LogDelta(delta).ok());

  auto recovered = (*manager)->Recover(nullptr);
  ASSERT_TRUE(recovered.ok());
  auto snapshotted = rel::DeserializeDatabase(rel::SerializeDatabase(db));
  ASSERT_TRUE(snapshotted.ok());
  EXPECT_TRUE(rel::DatabasesIsomorphic(*recovered, *snapshotted));
  EXPECT_TRUE(*recovered == db);
}

TEST(StorageManagerTest, WalGrowthTriggersCheckpointAndTruncation) {
  StorageOptions options;
  options.dir = FreshDir("threshold");
  options.checkpoint_wal_bytes = 128;  // Tiny: checkpoint after a few deltas.
  auto manager = StorageManager::Open(options);
  ASSERT_TRUE(manager.ok());

  rel::Database db = BaseDb();
  ASSERT_TRUE((*manager)->EnsureBase(db).ok());
  for (int64_t i = 2; i <= 40; ++i) {
    DeltaMap delta = OneDelta(i, "title number " + std::to_string(i));
    for (const auto& [relation, tuples] : delta) {
      for (const rel::Tuple& t : tuples) {
        ASSERT_TRUE(db.Insert(relation, t).ok());
      }
    }
    ASSERT_TRUE((*manager)->LogDelta(delta).ok());
    ASSERT_TRUE((*manager)->MaybeCheckpoint(db).ok());
  }
  EXPECT_GT((*manager)->checkpoints_taken(), 1u);
  // The log was truncated at the last checkpoint, so it holds at most a few
  // trailing deltas, not all 39.
  EXPECT_LT((*manager)->wal_bytes(), 10u * options.checkpoint_wal_bytes);

  auto recovered = (*manager)->Recover(nullptr);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(*recovered == db);
}

TEST(StorageManagerTest, NoSyncModeStillRecovers) {
  StorageOptions options;
  options.dir = FreshDir("nosync");
  options.sync = SyncMode::kNoSync;
  auto manager = StorageManager::Open(options);
  ASSERT_TRUE(manager.ok());

  rel::Database db = BaseDb();
  ASSERT_TRUE((*manager)->EnsureBase(db).ok());
  DeltaMap delta = OneDelta(2, "nosync");
  ASSERT_TRUE(db.Insert("pub", *delta["pub"].begin()).ok());
  ASSERT_TRUE((*manager)->LogDelta(delta).ok());

  // A fresh manager over the same directory (a restarted process).
  auto reopened = StorageManager::Open(options);
  ASSERT_TRUE(reopened.ok());
  auto recovered = (*reopened)->Recover(nullptr);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(*recovered == db);
}

TEST(StorageManagerTest, CorruptWalTailReplaysCleanPrefix) {
  StorageOptions options;
  options.dir = FreshDir("corrupt_tail");
  auto manager = StorageManager::Open(options);
  ASSERT_TRUE(manager.ok());

  rel::Database base = BaseDb();
  ASSERT_TRUE((*manager)->EnsureBase(base).ok());
  ASSERT_TRUE((*manager)->LogDelta(OneDelta(2, "kept")).ok());
  ASSERT_TRUE((*manager)->LogDelta(OneDelta(3, "torn")).ok());

  // Tear the last record (a crash mid-write): chop 3 bytes off the log.
  std::string wal_path = options.dir + "/wal.log";
  auto size = std::filesystem::file_size(wal_path);
  std::filesystem::resize_file(wal_path, size - 3);

  RecoveryInfo info;
  auto recovered = (*manager)->Recover(&info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(info.wal_tail_truncated);
  EXPECT_EQ(info.wal_records_replayed, 1u);
  rel::Database expected = BaseDb();
  ASSERT_TRUE(
      expected.Insert("pub", *OneDelta(2, "kept")["pub"].begin()).ok());
  EXPECT_TRUE(*recovered == expected);
}

TEST(StorageManagerTest, RecoverWithoutCheckpointFails) {
  StorageOptions options;
  options.dir = FreshDir("no_checkpoint");
  auto manager = StorageManager::Open(options);
  ASSERT_TRUE(manager.ok());
  auto recovered = (*manager)->Recover(nullptr);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);
}

TEST(StorageManagerTest, DeltaForUnknownRelationIsAnError) {
  StorageOptions options;
  options.dir = FreshDir("unknown_rel");
  auto manager = StorageManager::Open(options);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->EnsureBase(BaseDb()).ok());
  DeltaMap delta;
  delta["ghost"].insert(rel::Tuple({rel::Value::Int(1)}));
  ASSERT_TRUE((*manager)->LogDelta(delta).ok());
  EXPECT_FALSE((*manager)->Recover(nullptr).ok());
}

TEST(StorageManagerTest, WalAgeTriggersCheckpoint) {
  // Time-based trigger: a small WAL that would never hit the byte threshold
  // still gets checkpointed once its oldest uncheckpointed record ages past
  // checkpoint_interval. The clock is injected so the test is instant.
  uint64_t fake_now = 1'000'000;
  StorageOptions options;
  options.dir = FreshDir("time_trigger");
  options.sync = SyncMode::kNoSync;
  options.checkpoint_interval = std::chrono::seconds(5);
  options.now_micros = [&fake_now] { return fake_now; };
  auto manager = StorageManager::Open(options);
  ASSERT_TRUE(manager.ok());

  rel::Database db = BaseDb();
  ASSERT_TRUE((*manager)->EnsureBase(db).ok());
  uint64_t base = (*manager)->checkpoints_taken();

  DeltaMap delta = OneDelta(2, "young record");
  ASSERT_TRUE(db.Insert("pub", *delta["pub"].begin()).ok());
  ASSERT_TRUE((*manager)->LogDelta(delta).ok());
  ASSERT_TRUE((*manager)->MaybeCheckpoint(db).ok());
  EXPECT_EQ((*manager)->checkpoints_taken(), base);  // Age 0: no trigger.

  fake_now += 4'999'999;
  ASSERT_TRUE((*manager)->MaybeCheckpoint(db).ok());
  EXPECT_EQ((*manager)->checkpoints_taken(), base);  // One tick short.

  fake_now += 1;
  ASSERT_TRUE((*manager)->MaybeCheckpoint(db).ok());
  EXPECT_EQ((*manager)->checkpoints_taken(), base + 1);

  // A checkpointed (clean) WAL never re-triggers, no matter how stale the
  // clock gets — the timer measures dirty records, not idle time.
  fake_now += 60'000'000;
  ASSERT_TRUE((*manager)->MaybeCheckpoint(db).ok());
  EXPECT_EQ((*manager)->checkpoints_taken(), base + 1);

  // The next logged delta restarts the age clock from its own append time.
  DeltaMap next = OneDelta(3, "second epoch");
  ASSERT_TRUE(db.Insert("pub", *next["pub"].begin()).ok());
  ASSERT_TRUE((*manager)->LogDelta(next).ok());
  fake_now += 4'000'000;
  ASSERT_TRUE((*manager)->MaybeCheckpoint(db).ok());
  EXPECT_EQ((*manager)->checkpoints_taken(), base + 1);
  fake_now += 1'000'000;
  ASSERT_TRUE((*manager)->MaybeCheckpoint(db).ok());
  EXPECT_EQ((*manager)->checkpoints_taken(), base + 2);

  auto recovered = (*manager)->Recover(nullptr);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(*recovered == db);
}

TEST(StorageManagerTest, ReopenedDirtyWalAgesFromReopenTime) {
  // Records that survive a process restart restart their age clock at Open:
  // the reopened manager checkpoints within one interval of the reopen, not
  // immediately (wall-clock age across the restart is unknowable).
  uint64_t fake_now = 1'000'000;
  StorageOptions options;
  options.dir = FreshDir("reopen_age");
  options.sync = SyncMode::kNoSync;
  options.checkpoint_interval = std::chrono::seconds(5);
  options.now_micros = [&fake_now] { return fake_now; };

  rel::Database db = BaseDb();
  {
    auto manager = StorageManager::Open(options);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE((*manager)->EnsureBase(db).ok());
    DeltaMap delta = OneDelta(2, "survives restart");
    ASSERT_TRUE(db.Insert("pub", *delta["pub"].begin()).ok());
    ASSERT_TRUE((*manager)->LogDelta(delta).ok());
  }

  fake_now += 100'000'000;  // Long downtime.
  auto reopened = StorageManager::Open(options);
  ASSERT_TRUE(reopened.ok());
  uint64_t base = (*reopened)->checkpoints_taken();
  ASSERT_TRUE((*reopened)->MaybeCheckpoint(db).ok());
  EXPECT_EQ((*reopened)->checkpoints_taken(), base);  // Clock restarted.
  fake_now += 5'000'000;
  ASSERT_TRUE((*reopened)->MaybeCheckpoint(db).ok());
  EXPECT_EQ((*reopened)->checkpoints_taken(), base + 1);
}

TEST(StorageManagerTest, NullStorageIsInert) {
  NullStorage storage;
  EXPECT_TRUE(storage.LogDelta(OneDelta(1, "x")).ok());
  EXPECT_TRUE(storage.EnsureBase(BaseDb()).ok());
  EXPECT_TRUE(storage.Checkpoint(BaseDb()).ok());
  EXPECT_FALSE(storage.Recover(nullptr).ok());
}

}  // namespace
}  // namespace p2pdb::storage
