// JSON-emitting bench harness: runs a curated set of end-to-end update
// scenarios (one per topology family of Section 5's experiments) and writes
// per-bench wall-clock, simulated time, message counts and throughput to a
// BENCH_<name>.json file so the perf trajectory is machine-readable.
//
//   ./bench_main [--out FILE] [--repeat N] [--filter SUBSTR]
//
// Repeats take the minimum wall time (least-noise estimator); simulated
// metrics are deterministic and identical across repeats.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace p2pdb::bench {
namespace {

struct BenchCase {
  std::string name;
  workload::ScenarioOptions options;
};

std::vector<BenchCase> MakeCases() {
  const size_t records = FullScale() ? 1000 : 200;
  std::vector<BenchCase> cases;

  BenchCase tree;
  tree.name = "tree_15";
  tree.options.topology.kind = workload::TopologySpec::Kind::kTree;
  tree.options.topology.nodes = 15;
  tree.options.records_per_node = records;
  cases.push_back(tree);

  BenchCase dag;
  dag.name = "layered_dag_12";
  dag.options.topology.kind = workload::TopologySpec::Kind::kLayeredDag;
  dag.options.topology.nodes = 12;
  dag.options.topology.layers = 4;
  dag.options.records_per_node = records;
  cases.push_back(dag);

  BenchCase clique;
  clique.name = "clique_5";
  clique.options.topology.kind = workload::TopologySpec::Kind::kClique;
  clique.options.topology.nodes = 5;
  clique.options.records_per_node = FullScale() ? records : 60;
  cases.push_back(clique);

  BenchCase chain;
  chain.name = "chain_12";
  chain.options.topology.kind = workload::TopologySpec::Kind::kChain;
  chain.options.topology.nodes = 12;
  chain.options.records_per_node = records;
  cases.push_back(chain);

  BenchCase overlap;
  overlap.name = "tree_15_overlap50";
  overlap.options = tree.options;
  overlap.options.link_overlap_prob = 0.5;  // The paper's second distribution.
  cases.push_back(overlap);

  return cases;
}

struct BenchResult {
  std::string name;
  RunMetrics metrics;
  double tuples_per_sec = 0;
  double messages_per_sec = 0;
};

BenchResult RunCase(const BenchCase& bench, int repeat) {
  BenchResult result;
  result.name = bench.name;
  for (int i = 0; i < repeat; ++i) {
    RunMetrics metrics = RunScenario(bench.options);
    if (i == 0 || metrics.wall_ms < result.metrics.wall_ms) {
      result.metrics = metrics;
    }
  }
  if (result.metrics.wall_ms > 0) {
    const double wall_s = result.metrics.wall_ms / 1000.0;
    result.tuples_per_sec =
        static_cast<double>(result.metrics.inserted) / wall_s;
    result.messages_per_sec =
        static_cast<double>(result.metrics.messages) / wall_s;
  }
  return result;
}

bool WriteJson(const std::string& path,
               const std::vector<BenchResult>& results, int repeat) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << "{\n  \"suite\": \"p2pdb_update\",\n  \"repeat\": " << repeat
      << ",\n  \"full_scale\": " << (FullScale() ? "true" : "false")
      << ",\n  \"benches\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    out << "    {\n"
        << "      \"name\": \"" << r.name << "\",\n"
        << "      \"wall_ms\": " << r.metrics.wall_ms << ",\n"
        << "      \"sim_ms\": " << r.metrics.sim_ms << ",\n"
        << "      \"messages\": " << r.metrics.messages << ",\n"
        << "      \"bytes\": " << r.metrics.bytes << ",\n"
        << "      \"tuples_inserted\": " << r.metrics.inserted << ",\n"
        << "      \"token_passes\": " << r.metrics.token_passes << ",\n"
        << "      \"depth\": " << r.metrics.depth << ",\n"
        << "      \"all_closed\": " << (r.metrics.all_closed ? "true" : "false")
        << ",\n"
        << "      \"tuples_per_sec\": " << r.tuples_per_sec << ",\n"
        << "      \"messages_per_sec\": " << r.messages_per_sec << "\n"
        << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.flush();
  return !out.fail();
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_p2pdb.json";
  std::string filter;
  int repeat = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
      filter = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_main [--out FILE] [--repeat N] "
                   "[--filter SUBSTR]\n");
      return 2;
    }
  }

  PrintHeader("bench_main: end-to-end update suite");
  std::printf("%-20s %10s %10s %10s %12s %14s\n", "bench", "wall_ms", "sim_ms",
              "messages", "tuples", "tuples/s");

  std::vector<BenchResult> results;
  bool all_closed = true;
  for (const BenchCase& bench : MakeCases()) {
    if (!filter.empty() && bench.name.find(filter) == std::string::npos) {
      continue;
    }
    BenchResult r = RunCase(bench, repeat);
    std::printf("%-20s %10.2f %10.2f %10llu %12llu %14.0f\n", r.name.c_str(),
                r.metrics.wall_ms, r.metrics.sim_ms,
                static_cast<unsigned long long>(r.metrics.messages),
                static_cast<unsigned long long>(r.metrics.inserted),
                r.tuples_per_sec);
    all_closed = all_closed && r.metrics.all_closed;
    results.push_back(std::move(r));
  }

  if (results.empty()) {
    std::fprintf(stderr, "no benches matched filter '%s'\n", filter.c_str());
    return 1;
  }
  if (!WriteJson(out_path, results, repeat)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu benches)\n", out_path.c_str(), results.size());
  if (!all_closed) {
    std::fprintf(stderr, "error: a scenario did not reach quiescence\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace p2pdb::bench

int main(int argc, char** argv) { return p2pdb::bench::Main(argc, argv); }
