// B1 — baseline comparison implied by the related-work discussion (Section 1):
//   * distributed update (this paper),
//   * centralized global fix-point ([Calvanese et al. 2003]-style),
//   * acyclic single-pass pull ([Halevy et al. 2003]-style; DAGs only).
// All three must produce the same instances on DAGs; the distributed
// algorithm additionally handles cycles, at a message cost.
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/acyclic_pull.h"
#include "src/relational/null_iso.h"

using namespace p2pdb;        // NOLINT
using namespace p2pdb::bench;  // NOLINT

namespace {

rel::ChaseOptions HomChase() {
  rel::ChaseOptions chase;
  chase.policy = rel::ChasePolicy::kHomomorphismCheck;
  return chase;
}

}  // namespace

int main() {
  const size_t records = FullScale() ? 650 : 150;
  using Kind = workload::TopologySpec::Kind;

  PrintHeader("B1 baselines: distributed vs centralized-global vs acyclic-pull");
  std::printf("%-12s %5s | %10s %12s | %10s | %10s %12s %7s\n", "topology",
              "nodes", "dist-wall", "dist-msgs", "global-wall", "pull-wall",
              "pull-msgs", "agree");

  for (Kind kind : {Kind::kTree, Kind::kLayeredDag, Kind::kRing}) {
    workload::ScenarioOptions options;
    options.topology.kind = kind;
    options.topology.nodes = kind == Kind::kRing ? 8 : 15;
    options.topology.layers = 4;
    options.records_per_node = kind == Kind::kRing ? records / 3 : records;

    core::Session::Options session_options;
    session_options.peer.update.chase = HomChase();
    RunMetrics dist = RunScenario(options, session_options);

    auto system = workload::BuildScenario(options);
    if (!system.ok()) continue;

    auto t0 = std::chrono::steady_clock::now();
    auto global = core::ComputeGlobalFixpoint(*system, HomChase());
    auto t1 = std::chrono::steady_clock::now();
    double global_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

    double pull_ms = -1;
    uint64_t pull_msgs = 0;
    bool agree = global.ok();
    auto t2 = std::chrono::steady_clock::now();
    auto pull = core::RunAcyclicPull(*system, HomChase());
    auto t3 = std::chrono::steady_clock::now();
    if (pull.ok()) {
      pull_ms = std::chrono::duration<double, std::milli>(t3 - t2).count();
      pull_msgs = pull->messages;
      if (global.ok()) {
        for (size_t n = 0; n < system->node_count(); ++n) {
          if (!rel::DatabasesCertainEqual(pull->node_dbs[n],
                                          global->node_dbs[n])) {
            agree = false;
          }
        }
      }
    }

    char pull_wall[32];
    if (pull_ms >= 0) {
      std::snprintf(pull_wall, sizeof(pull_wall), "%10.1f", pull_ms);
    } else {
      std::snprintf(pull_wall, sizeof(pull_wall), "%10s", "n/a(cycle)");
    }
    std::printf("%-12s %5zu | %9.1fms %12llu | %9.1fms | %s %12llu %7s\n",
                workload::TopologyKindName(kind), options.topology.nodes,
                dist.wall_ms, static_cast<unsigned long long>(dist.messages),
                global_ms, pull_wall,
                static_cast<unsigned long long>(pull_msgs),
                agree ? "yes" : "NO");
  }
  std::printf(
      "\nshape: the acyclic pull is the message lower bound on DAGs but fails\n"
      "on rings; the centralized baseline needs no messages but a global\n"
      "coordinator; the distributed algorithm covers cycles with bounded\n"
      "extra traffic (subscriptions + fix-point tokens).\n");
  return 0;
}
