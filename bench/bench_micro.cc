// Micro-benchmarks (google-benchmark) for the substrate hot paths: conjunctive
// query evaluation, chase application, wire codecs, and the discovery wave.
#include <benchmark/benchmark.h>

#include "src/core/session.h"
#include "src/core/wire.h"
#include "src/net/sim_runtime.h"
#include "src/relational/chase.h"
#include "src/relational/eval.h"
#include "src/util/rng.h"
#include "src/workload/scenario.h"

namespace p2pdb {
namespace {

rel::Database MakeEdgeDb(int64_t n) {
  rel::Database db;
  (void)db.CreateRelation(rel::RelationSchema("edge", {"src", "dst"}));
  Rng rng(4);
  for (int64_t i = 0; i < n; ++i) {
    (void)db.Insert("edge",
                    rel::Tuple({rel::Value::Int(rng.NextInRange(0, n / 4)),
                                rel::Value::Int(rng.NextInRange(0, n / 4))}));
  }
  return db;
}

void BM_EvalTwoHopJoin(benchmark::State& state) {
  rel::Database db = MakeEdgeDb(state.range(0));
  rel::ConjunctiveQuery q;
  q.head_vars = {"X", "Z"};
  rel::Atom a1, a2;
  a1.relation = a2.relation = "edge";
  a1.terms = {rel::Term::Var("X"), rel::Term::Var("Y")};
  a2.terms = {rel::Term::Var("Y"), rel::Term::Var("Z")};
  q.atoms = {a1, a2};
  for (auto _ : state) {
    auto result = rel::EvaluateQuery(db, q);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EvalTwoHopJoin)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ChaseApply(benchmark::State& state) {
  rel::Atom head;
  head.relation = "derived";
  head.terms = {rel::Term::Var("X"), rel::Term::Var("W")};  // W existential.
  for (auto _ : state) {
    state.PauseTiming();
    rel::Database db;
    (void)db.CreateRelation(rel::RelationSchema("derived", {"x", "w"}));
    rel::NullFactory nulls(1);
    rel::ChaseStats stats;
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      rel::Binding b{{"X", rel::Value::Int(i % (state.range(0) / 2))}};
      benchmark::DoNotOptimize(
          rel::ApplyRuleHead(&db, {head}, b, &nulls, rel::ChaseOptions{},
                             &stats));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaseApply)->Arg(256)->Arg(1024);

void BM_WireTupleSetRoundTrip(benchmark::State& state) {
  std::set<rel::Tuple> tuples;
  Rng rng(9);
  for (int64_t i = 0; i < state.range(0); ++i) {
    tuples.insert(rel::Tuple({rel::Value::Int(i),
                              rel::Value::Str("title-" + std::to_string(i)),
                              rel::Value::Int(1990 + (i % 15))}));
  }
  for (auto _ : state) {
    Writer w;
    core::wire::EncodeTupleSet(tuples, &w);
    Reader r(w.bytes());
    auto back = core::wire::DecodeTupleSet(&r);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 24);
}
BENCHMARK(BM_WireTupleSetRoundTrip)->Arg(100)->Arg(1000);

void BM_DiscoveryWave(benchmark::State& state) {
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kClique;
  options.topology.nodes = static_cast<size_t>(state.range(0));
  options.records_per_node = 1;
  auto system = workload::BuildScenario(options);
  for (auto _ : state) {
    net::SimRuntime rt;
    core::Session session(*system, &rt);
    benchmark::DoNotOptimize(session.RunDiscovery());
  }
}
BENCHMARK(BM_DiscoveryWave)->Arg(8)->Arg(16)->Arg(31);

void BM_GlobalUpdateTree(benchmark::State& state) {
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kTree;
  options.topology.nodes = static_cast<size_t>(state.range(0));
  options.records_per_node = 50;
  auto system = workload::BuildScenario(options);
  for (auto _ : state) {
    net::SimRuntime rt;
    core::Session session(*system, &rt);
    (void)session.RunDiscovery();
    (void)session.RunUpdate();
    benchmark::DoNotOptimize(session.AllClosed());
  }
}
BENCHMARK(BM_GlobalUpdateTree)->Arg(7)->Arg(15)->Arg(31);

}  // namespace
}  // namespace p2pdb

BENCHMARK_MAIN();
