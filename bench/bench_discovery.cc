// A3 — ablation: discovery strategies.
//   * super-peer single origin + closure broadcast (our default reading of
//     A1-A3),
//   * one instance per node (what running Discover everywhere yields),
//   * eager duplicate answers (the paper's gossip-style extra messages).
#include <cstdio>

#include "bench/bench_common.h"

using namespace p2pdb;        // NOLINT
using namespace p2pdb::bench;  // NOLINT

namespace {

struct DiscoveryMetrics {
  double sim_ms = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

DiscoveryMetrics RunDiscoveryOnly(const workload::ScenarioOptions& options,
                                  core::Session::Options session_options) {
  DiscoveryMetrics out;
  auto system = workload::BuildScenario(options);
  if (!system.ok()) return out;
  net::SimRuntime rt;
  core::Session session(*system, &rt, session_options);
  if (!session.RunDiscovery().ok()) return out;
  out.sim_ms = static_cast<double>(rt.NowMicros()) / 1000.0;
  out.messages = rt.stats().total_messages();
  out.bytes = rt.stats().total_bytes();
  return out;
}

}  // namespace

int main() {
  using Kind = workload::TopologySpec::Kind;
  using Mode = core::Session::Options::DiscoveryMode;

  PrintHeader("A3 discovery strategies: messages and bytes");
  std::printf("%-12s %5s | %-22s %10s %12s %10s\n", "topology", "nodes",
              "strategy", "sim-ms", "messages", "bytes");

  for (Kind kind : {Kind::kTree, Kind::kClique, Kind::kRandom}) {
    for (size_t nodes : {15u, 31u}) {
      workload::ScenarioOptions options;
      options.topology.kind = kind;
      options.topology.nodes = nodes;
      options.records_per_node = 1;  // Discovery ignores data.

      struct Strategy {
        const char* name;
        Mode mode;
        bool eager;
      };
      for (const Strategy& strategy :
           {Strategy{"super-peer origin", Mode::kSuperPeer, false},
            Strategy{"per-node origins", Mode::kAll, false},
            Strategy{"per-node + eager", Mode::kAll, true}}) {
        core::Session::Options session_options;
        session_options.discovery = strategy.mode;
        session_options.peer.eager_discovery_answers = strategy.eager;
        DiscoveryMetrics m = RunDiscoveryOnly(options, session_options);
        std::printf("%-12s %5zu | %-22s %10.1f %12llu %10llu\n",
                    workload::TopologyKindName(kind), nodes, strategy.name,
                    m.sim_ms, static_cast<unsigned long long>(m.messages),
                    static_cast<unsigned long long>(m.bytes));
      }
    }
  }
  std::printf(
      "\nshape: a single origin costs O(edges) messages plus a closure wave;\n"
      "per-node origins multiply that by n (every node must learn its own\n"
      "paths when the super-peer cannot reach it); eager answers add bytes,\n"
      "never messages — the asynchronous surplus the paper describes.\n");
  return 0;
}
