// E3 — the Section 5 scalability experiment: up to 31 nodes, DBLP-like data
// (~1000 records/node on trees and layered DAGs, as in the paper's setup),
// three topologies (tree, layered acyclic, clique). Reports execution time
// (simulated network time and host wall time) and message statistics.
//
// Expected shape (paper): execution time grows linearly with the depth of
// tree/layered topologies; cliques are much more expensive in messages.
#include <cstdio>

#include "bench/bench_common.h"

using namespace p2pdb;        // NOLINT
using namespace p2pdb::bench;  // NOLINT

int main() {
  const bool full = FullScale();
  const size_t tree_records = full ? 1000 : 650;  // ~20k total at 31 nodes.
  // Cliques are the protocol's worst case: n^2 rules, and every peer re-mints
  // labeled nulls for existential translations, so deltas between peers stay
  // large in every convergence round (an O(n^3 * records) tuple volume).
  // Default scale keeps them tractable; P2PDB_BENCH_FULL=1 restores the
  // paper's record counts.
  const size_t clique_records = full ? 650 : 25;

  PrintHeader("E3 scalability: global update, time and messages vs nodes");
  std::printf("%-12s %5s %7s %6s %10s %9s %12s %10s %7s\n", "topology",
              "nodes", "records", "depth", "sim-ms", "wall-ms", "messages",
              "kbytes", "closed");

  using Kind = workload::TopologySpec::Kind;
  struct Config {
    Kind kind;
    size_t records;
  };
  for (const Config& config :
       {Config{Kind::kTree, tree_records},
        Config{Kind::kLayeredDag, tree_records},
        Config{Kind::kClique, clique_records}}) {
    for (size_t nodes : {7u, 15u, 21u, 31u}) {
      workload::ScenarioOptions options;
      options.topology.kind = config.kind;
      options.topology.nodes = nodes;
      options.topology.layers = 4;
      options.records_per_node = config.records;
      RunMetrics m = RunScenario(options);
      std::printf("%-12s %5zu %7zu %6zu %10.1f %9.1f %12llu %10llu %7s\n",
                  workload::TopologyKindName(config.kind), nodes,
                  config.records, m.depth, m.sim_ms, m.wall_ms,
                  static_cast<unsigned long long>(m.messages),
                  static_cast<unsigned long long>(m.bytes / 1024),
                  m.all_closed ? "yes" : "NO");
    }
  }
  std::printf(
      "\npaper comparison: the preliminary experiments (31 nodes, ~20000\n"
      "records, 3 schemas) report execution time linear in the depth of the\n"
      "tree and layered structures; see bench_depth for the explicit fit.\n"
      "Cliques pay quadratic message counts, the paper's worst case.\n");
  if (!full) {
    std::printf("(clique record count trimmed; set P2PDB_BENCH_FULL=1 for "
                "paper-scale cliques)\n");
  }
  return 0;
}
