// TCP runtime bench: frame-codec throughput (encode/decode, small and large
// payloads), raw loopback ping-pong latency, and end-to-end discovery+update
// wall-clock on TcpRuntime vs ThreadRuntime (same scenario, same protocol —
// the delta is the socket hop plus quiescence detection over sockets).
// Also measures causal-tracing overhead (off / every root / sampled 1-in-4)
// on a durable TCP update, and can dump the observability snapshot
// (metrics registry + trace reports) as obs.json via --obs.
// Emits BENCH_tcp.json in the same shape as the other harnesses.
//
//   ./bench_tcp [--out FILE] [--repeat N] [--filter SUBSTR] [--obs FILE]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/net/frame.h"
#include "src/net/tcp_runtime.h"
#include "src/net/thread_runtime.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/storage/storage_manager.h"

namespace p2pdb::bench {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct BenchResult {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;

  double Metric(const std::string& key) const {
    for (const auto& [k, v] : metrics) {
      if (k == key) return v;
    }
    return 0;
  }
};

net::Message MakeMessage(size_t payload_bytes) {
  net::Message msg;
  msg.type = net::MessageType::kQueryAnswer;
  msg.from = 3;
  msg.to = 250;
  msg.seq = 123'456;
  msg.payload.assign(payload_bytes, 0x5c);
  return msg;
}

/// Frame codec throughput: encode + decode `count` messages of one size.
BenchResult FrameCodecBench(const std::string& name, size_t payload_bytes,
                            size_t count) {
  BenchResult result;
  result.name = name;
  net::Message msg = MakeMessage(payload_bytes);
  uint64_t checksum = 0;  // Defeats dead-code elimination.
  auto start = Clock::now();
  for (size_t i = 0; i < count; ++i) {
    msg.seq = i;
    std::vector<uint8_t> frame = net::EncodeFrame(msg);
    auto decoded = net::DecodeFrame(frame);
    if (!decoded.ok()) return result;
    checksum += decoded->seq + decoded->payload.size();
  }
  double wall_ms = MsSince(start);
  double wall_s = wall_ms / 1000.0;
  double bytes = static_cast<double>(count) *
                 static_cast<double>(msg.WireSize());
  result.metrics = {
      {"wall_ms", wall_ms},
      {"messages", static_cast<double>(count)},
      {"payload_bytes", static_cast<double>(payload_bytes)},
      {"checksum", static_cast<double>(checksum % 1000)},
      {"msgs_per_sec", wall_s > 0 ? count / wall_s : 0},
      {"mb_per_sec", wall_s > 0 ? bytes / (1024 * 1024) / wall_s : 0},
  };
  return result;
}

/// Replies to every message until `budget` replies are spent.
class PongPeer : public net::PeerHandler {
 public:
  PongPeer(NodeId id, net::Runtime* rt, uint64_t budget)
      : id_(id), runtime_(rt), budget_(budget) {}

  void OnMessage(const net::Message& msg) override {
    received_.fetch_add(1);
    if (budget_ == 0) return;
    --budget_;
    net::Message reply;
    reply.type = msg.type;
    reply.from = id_;
    reply.to = msg.from;
    reply.payload = msg.payload;
    runtime_->Send(reply);
  }

  uint64_t received() const { return received_.load(); }

 private:
  NodeId id_;
  net::Runtime* runtime_;
  uint64_t budget_;
  std::atomic<uint64_t> received_{0};
};

/// Raw loopback round-trip latency over real sockets: one ping-pong chain of
/// `round_trips` exchanges, timed outside Run()'s quiescence overhead.
BenchResult TcpPingPongBench(const std::string& name, size_t round_trips,
                             size_t payload_bytes) {
  BenchResult result;
  result.name = name;
  net::TcpRuntime rt;
  // Peer 1 echoes forever (within budget); peer 0 re-serves until done.
  PongPeer a(0, &rt, round_trips - 1);
  PongPeer b(1, &rt, round_trips);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  if (!rt.Run().ok()) return result;  // Starts worker threads; network idle.

  net::Message ping = MakeMessage(payload_bytes);
  ping.from = 0;
  ping.to = 1;
  auto start = Clock::now();
  auto deadline = start + std::chrono::seconds(60);
  rt.Send(ping);
  while (a.received() < round_trips) {
    // The chain is strictly sequential: one lost frame would otherwise spin
    // this loop forever.
    if (Clock::now() > deadline) return result;
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
  double wall_ms = MsSince(start);
  double hops = static_cast<double>(2 * round_trips);
  result.metrics = {
      {"wall_ms", wall_ms},
      {"round_trips", static_cast<double>(round_trips)},
      {"payload_bytes", static_cast<double>(payload_bytes)},
      {"rtt_micros", round_trips > 0 ? wall_ms * 1000.0 / round_trips : 0},
      {"hop_micros", hops > 0 ? wall_ms * 1000.0 / hops : 0},
  };
  return result;
}

/// Counts deliveries into a shared counter; the scaling bench only cares
/// about aggregate arrival, not per-peer behaviour.
class CountingPeer : public net::PeerHandler {
 public:
  explicit CountingPeer(std::atomic<uint64_t>* received)
      : received_(received) {}
  void OnMessage(const net::Message& msg) override {
    (void)msg;
    received_->fetch_add(1);
  }

 private:
  std::atomic<uint64_t>* received_;
};

/// Peer-count scaling: N registered peers (N listeners and N-1 live
/// connections on one reactor pool), 64B frames delivered at a constant
/// per-connection rate. A warm-up frame per destination establishes every
/// connection before the clock starts, so the timed region is steady-state
/// throughput; the number that matters is frames_per_sec staying flat as
/// peers grow — the reactor multiplexes connections onto a fixed worker
/// pool, so per-frame cost should not scale with peer count.
BenchResult PeerScalingBench(const std::string& name, size_t peers,
                             size_t frames_per_peer) {
  BenchResult result;
  result.name = name;
  net::TcpRuntime::Options options;
  options.timeout = std::chrono::seconds(120);
  net::TcpRuntime rt(options);
  std::atomic<uint64_t> received{0};
  std::vector<std::unique_ptr<CountingPeer>> handlers;
  handlers.reserve(peers);
  for (size_t i = 0; i < peers; ++i) {
    handlers.push_back(std::make_unique<CountingPeer>(&received));
    rt.RegisterPeer(static_cast<NodeId>(i), handlers.back().get());
  }
  if (!rt.Run().ok()) return result;  // Starts worker threads; network idle.

  net::Message msg = MakeMessage(64);
  msg.from = 0;
  auto deadline = Clock::now() + std::chrono::seconds(120);
  for (size_t dest = 1; dest < peers; ++dest) {  // Connect warm-up.
    msg.to = static_cast<NodeId>(dest);
    rt.Send(msg);
  }
  while (received.load() < peers - 1) {
    if (Clock::now() > deadline) return result;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  const size_t frames = frames_per_peer * (peers - 1);
  const uint64_t target = received.load() + frames;
  auto start = Clock::now();
  for (size_t dest = 1; dest < peers; ++dest) {
    msg.to = static_cast<NodeId>(dest);
    for (size_t k = 0; k < frames_per_peer; ++k) rt.Send(msg);
  }
  while (received.load() < target) {
    if (Clock::now() > deadline) return result;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  double wall_ms = MsSince(start);
  double wall_s = wall_ms / 1000.0;
  // Registry snapshot of the transport counters: the same numbers obs.json
  // carries, folded into the bench row so CI trend lines catch transport
  // regressions (batching collapse, queue growth) without a separate dump.
  obs::Registry registry;
  rt.stats().ExportTo(registry, "net.");
  obs::Registry::Snapshot snap = registry.TakeSnapshot();
  result.metrics = {
      {"wall_ms", wall_ms},
      {"peers", static_cast<double>(peers)},
      {"frames", static_cast<double>(frames)},
      {"payload_bytes", 64},
      {"frames_per_sec", wall_s > 0 ? frames / wall_s : 0},
      {"frames_per_writev", rt.stats().io().FramesPerWritev()},
      {"inline_dispatch_ratio_x1000",
       static_cast<double>(snap.gauges["net.io.inline_dispatch_ratio_x1000"])},
      {"send_queue_hwm_bytes",
       static_cast<double>(snap.gauges["net.io.send_queue_hwm_bytes"])},
      {"dropped", static_cast<double>(rt.dropped_count())},
  };
  return result;
}

/// Fan-out peer: one trigger dispatch sends `msgs_per_dest` messages to every
/// other peer — the update-plane shape (one handler, many same-destination
/// sends) that frame coalescing packs into one kBatch frame per destination.
class FanoutPeer : public net::PeerHandler {
 public:
  FanoutPeer(NodeId id, net::Runtime* rt, size_t peers, size_t msgs_per_dest)
      : id_(id), runtime_(rt), peers_(peers), msgs_(msgs_per_dest) {}

  void OnMessage(const net::Message&) override {
    for (size_t dest = 1; dest < peers_; ++dest) {
      for (size_t k = 0; k < msgs_; ++k) {
        net::Message m = MakeMessage(64);
        m.from = id_;
        m.to = static_cast<NodeId>(dest);
        runtime_->Send(std::move(m));
      }
    }
  }

 private:
  NodeId id_;
  net::Runtime* runtime_;
  size_t peers_;
  size_t msgs_;
};

/// Frame coalescing under a fan-out update: `rounds` trigger dispatches, each
/// spraying msgs_per_dest messages at peers-1 destinations, driven to exact
/// quiescence. Run once with the default batch cap and once with
/// batch_max_bytes=0 (solo frames, the pre-batching wire behavior) at equal
/// message count: frames_per_update is the headline — coalescing should cut
/// it by the per-destination fan-in factor.
BenchResult CoalescingFanoutBench(const std::string& name, size_t peers,
                                  size_t msgs_per_dest, size_t rounds,
                                  size_t batch_max_bytes) {
  BenchResult result;
  result.name = name;
  net::TcpRuntime::Options options;
  options.timeout = std::chrono::seconds(120);
  options.batch_max_bytes = batch_max_bytes;
  net::TcpRuntime rt(options);
  FanoutPeer fan(0, &rt, peers, msgs_per_dest);
  rt.RegisterPeer(0, &fan);
  std::atomic<uint64_t> received{0};
  std::vector<std::unique_ptr<CountingPeer>> handlers;
  handlers.reserve(peers - 1);
  for (size_t i = 1; i < peers; ++i) {
    handlers.push_back(std::make_unique<CountingPeer>(&received));
    rt.RegisterPeer(static_cast<NodeId>(i), handlers.back().get());
  }
  if (!rt.Run().ok()) return result;  // Starts worker threads; network idle.

  net::Message trigger = MakeMessage(8);
  trigger.from = 0;
  trigger.to = 0;
  auto start = Clock::now();
  for (size_t r = 0; r < rounds; ++r) {
    rt.Send(trigger);
    if (!rt.Run().ok()) return result;  // Exact fixpoint per round.
  }
  double wall_ms = MsSince(start);
  const double messages =
      static_cast<double>(rounds * ((peers - 1) * msgs_per_dest + 1));
  if (received.load() != rounds * (peers - 1) * msgs_per_dest) return result;
  const double frames =
      static_cast<double>(rt.stats().io().frames_enqueued.load());
  result.metrics = {
      {"wall_ms", wall_ms},
      {"peers", static_cast<double>(peers)},
      {"rounds", static_cast<double>(rounds)},
      {"messages", messages},
      {"frames_enqueued", frames},
      {"frames_per_update", frames / static_cast<double>(rounds)},
      {"batch_frames",
       static_cast<double>(rt.stats().io().batch_frames.load())},
      {"batched_messages",
       static_cast<double>(rt.stats().io().batched_messages.load())},
      {"credit_frames",
       static_cast<double>(rt.stats().io().credit_frames.load())},
      {"frames_per_writev", rt.stats().io().FramesPerWritev()},
      {"dropped", static_cast<double>(rt.dropped_count())},
  };
  return result;
}

/// Fixpoint termination latency: one ping-pong chain injected, then Run() to
/// quiescence; wall time covers the chain AND the termination decision. With
/// quiet_window 0 the credit protocol ends Run() at the exact moment the
/// last frame is credited; a nonzero window adds its full wait-out-the-clock
/// sleep on top — the delta between the two rows is the quiet window's cost
/// per fixpoint, paid again at every Run() in a churn script.
BenchResult FixpointQuiescenceBench(const std::string& name,
                                    std::chrono::microseconds quiet_window,
                                    size_t exchanges) {
  BenchResult result;
  result.name = name;
  net::TcpRuntime::Options options;
  options.quiet_window = quiet_window;
  net::TcpRuntime rt(options);
  PongPeer a(0, &rt, exchanges);
  PongPeer b(1, &rt, exchanges);
  rt.RegisterPeer(0, &a);
  rt.RegisterPeer(1, &b);
  if (!rt.Run().ok()) return result;  // Starts worker threads; network idle.

  net::Message ping = MakeMessage(64);
  ping.from = 0;
  ping.to = 1;
  auto start = Clock::now();
  rt.Send(ping);
  if (!rt.Run().ok()) return result;
  double wall_ms = MsSince(start);
  result.metrics = {
      {"wall_ms", wall_ms},
      {"quiet_window_us", static_cast<double>(quiet_window.count())},
      {"exchanges", static_cast<double>(exchanges)},
      {"messages", static_cast<double>(rt.stats().total_messages())},
  };
  return result;
}

/// End-to-end discovery + global update through a Session on one runtime.
BenchResult SessionUpdateBench(const std::string& name, net::Runtime* rt,
                               size_t nodes, size_t records) {
  BenchResult result;
  result.name = name;
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kTree;
  options.topology.nodes = nodes;
  options.records_per_node = records;
  auto system = workload::BuildScenario(options);
  if (!system.ok()) return result;

  core::Session session(*system, rt);
  auto start = Clock::now();
  if (!session.RunDiscovery().ok()) return result;
  double discovery_ms = MsSince(start);
  start = Clock::now();
  if (!session.RunUpdate().ok()) return result;
  double update_ms = MsSince(start);

  uint64_t inserted = 0;
  for (size_t n = 0; n < session.peer_count(); ++n) {
    inserted += session.peer(n).update().stats().tuples_inserted;
  }
  result.metrics = {
      {"wall_ms", discovery_ms + update_ms},
      {"discovery_ms", discovery_ms},
      {"update_ms", update_ms},
      {"nodes", static_cast<double>(nodes)},
      {"messages", static_cast<double>(rt->stats().total_messages())},
      {"bytes", static_cast<double>(rt->stats().total_bytes())},
      {"tuples_inserted", static_cast<double>(inserted)},
      {"all_closed", session.AllClosed() ? 1.0 : 0.0},
  };
  return result;
}

/// Trace-overhead microbench: the update_tcp_tree8 scenario with durable
/// storage on every node (so chase, WAL and queue-wait instruments all fire)
/// and causal tracing at a given sampling rate. sample_every == 0 runs with
/// tracing fully off — the code is compiled in but every message carries
/// trace_id 0 and the detailed-timing gate is closed, which is the ≤1%
/// steady-state overhead configuration. 1 traces every root update; N traces
/// 1-in-N. When `obs_path` is non-empty the run also folds the runtime
/// counters into the global registry and dumps the full observability
/// snapshot (metrics + trace reports) as JSON.
BenchResult TracedUpdateBench(const std::string& name, size_t nodes,
                              size_t records, uint32_t sample_every,
                              const std::string& obs_path) {
  BenchResult result;
  result.name = name;
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kTree;
  options.topology.nodes = nodes;
  options.records_per_node = records;
  auto system = workload::BuildScenario(options);
  if (!system.ok()) return result;

  namespace fs = std::filesystem;
  fs::path root = fs::temp_directory_path() / ("p2pdb_bench_" + name);
  fs::remove_all(root);
  net::TcpRuntime rt;
  core::Session::Options session_options;
  session_options.storage =
      [root](NodeId node) -> std::unique_ptr<storage::Storage> {
    storage::StorageOptions sopts;
    sopts.dir = (root / ("node" + std::to_string(node))).string();
    auto manager = storage::StorageManager::Open(sopts);
    return manager.ok() ? std::move(*manager) : nullptr;
  };
  core::Session session(*system, &rt, session_options);
  obs::TraceCollector collector;
  if (sample_every > 0) session.EnableTracing(&collector, sample_every);

  for (size_t n = 0; n < nodes; ++n) {
    if (!session.AttachStorage(static_cast<NodeId>(n)).ok()) return result;
  }

  if (!session.RunDiscovery().ok()) return result;
  auto start = Clock::now();
  if (!session.RunUpdate().ok()) return result;
  double update_ms = MsSince(start);

  if (!obs_path.empty()) {
    rt.stats().ExportTo(obs::Registry::Global(), "net.");
    if (obs::WriteObsJson(obs_path, obs::Registry::Global(), &collector)) {
      std::printf("observability dump written to %s\n", obs_path.c_str());
    }
  }
  // The detailed-timing gate is process-global: close it again so later
  // repeats of the untraced benches are not charged for clock reads.
  if (sample_every > 0) session.EnableTracing(nullptr);
  fs::remove_all(root);

  result.metrics = {
      {"wall_ms", update_ms},
      {"update_ms", update_ms},
      {"nodes", static_cast<double>(nodes)},
      {"sample_every", static_cast<double>(sample_every)},
      {"traces", static_cast<double>(collector.TraceIds().size())},
      {"traced_spans", static_cast<double>(collector.TotalSpans())},
      {"messages", static_cast<double>(rt.stats().total_messages())},
      {"all_closed", session.AllClosed() ? 1.0 : 0.0},
  };
  return result;
}

BenchResult Best(BenchResult a, BenchResult b) {
  if (a.metrics.empty()) return b;
  if (b.metrics.empty()) return a;
  return a.Metric("wall_ms") <= b.Metric("wall_ms") ? a : b;
}

/// The `coalescing` summary: headline numbers for the batched-frames +
/// credit-ack work, derived from the bench rows when the relevant quartet
/// ran (skipped under --filter otherwise). frame_reduction is solo frames /
/// batched frames at equal message count; fixpoint_saving_ms is the quiet
/// window's per-Run() cost removed by exact ack-based termination.
std::vector<std::pair<std::string, double>> CoalescingSummary(
    const std::vector<BenchResult>& results) {
  const BenchResult* batched = nullptr;
  const BenchResult* solo = nullptr;
  const BenchResult* ack = nullptr;
  const BenchResult* quiet = nullptr;
  for (const BenchResult& r : results) {
    if (r.name == "tcp_coalesce_64peers_batched") batched = &r;
    if (r.name == "tcp_coalesce_64peers_solo") solo = &r;
    if (r.name == "tcp_fixpoint_ack") ack = &r;
    if (r.name == "tcp_fixpoint_quiet10ms") quiet = &r;
  }
  std::vector<std::pair<std::string, double>> summary;
  if (batched != nullptr && solo != nullptr &&
      batched->Metric("frames_enqueued") > 0) {
    summary.emplace_back("messages_per_update",
                         batched->Metric("messages") /
                             batched->Metric("rounds"));
    summary.emplace_back("frames_per_update_batched",
                         batched->Metric("frames_per_update"));
    summary.emplace_back("frames_per_update_solo",
                         solo->Metric("frames_per_update"));
    summary.emplace_back("frame_reduction",
                         solo->Metric("frames_enqueued") /
                             batched->Metric("frames_enqueued"));
    summary.emplace_back("frames_per_writev_batched",
                         batched->Metric("frames_per_writev"));
  }
  if (ack != nullptr && quiet != nullptr) {
    summary.emplace_back("fixpoint_ack_ms", ack->Metric("wall_ms"));
    summary.emplace_back("fixpoint_quiet_window_ms", quiet->Metric("wall_ms"));
    summary.emplace_back("fixpoint_saving_ms",
                         quiet->Metric("wall_ms") - ack->Metric("wall_ms"));
  }
  return summary;
}

bool WriteJson(const std::string& path,
               const std::vector<BenchResult>& results, int repeat) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << "{\n  \"suite\": \"p2pdb_tcp\",\n  \"repeat\": " << repeat
      << ",\n  \"full_scale\": " << (FullScale() ? "true" : "false")
      << ",\n  \"benches\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    out << "    {\n      \"name\": \"" << results[i].name << "\"";
    for (const auto& [key, value] : results[i].metrics) {
      out << ",\n      \"" << key << "\": " << value;
    }
    out << "\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]";
  std::vector<std::pair<std::string, double>> summary =
      CoalescingSummary(results);
  if (!summary.empty()) {
    out << ",\n  \"coalescing\": {\n";
    for (size_t i = 0; i < summary.size(); ++i) {
      out << "    \"" << summary[i].first << "\": " << summary[i].second
          << (i + 1 < summary.size() ? "," : "") << "\n";
    }
    out << "  }";
  }
  out << "\n}\n";
  out.flush();
  return !out.fail();
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_tcp.json";
  std::string obs_path;
  std::string filter;
  int repeat = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--obs") == 0 && i + 1 < argc) {
      obs_path = argv[++i];
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
      filter = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_tcp [--out FILE] [--repeat N] "
                   "[--filter SUBSTR] [--obs FILE]\n");
      return 2;
    }
  }

  const size_t codec_count = FullScale() ? 2'000'000 : 200'000;
  const size_t codec_large = FullScale() ? 20'000 : 5'000;
  const size_t pings = FullScale() ? 20'000 : 2'000;
  const size_t nodes = 8;
  const size_t records = FullScale() ? 100 : 25;
  const size_t frames_per_peer = FullScale() ? 300 : 100;
  const size_t coalesce_msgs = 8;  // Fan-in per destination per dispatch.
  const size_t coalesce_rounds = FullScale() ? 40 : 10;
  const size_t fixpoint_exchanges = 50;
  using Maker = std::function<BenchResult()>;
  std::vector<std::pair<std::string, Maker>> cases = {
      {"frame_codec_64b",
       [&] { return FrameCodecBench("frame_codec_64b", 64, codec_count); }},
      {"frame_codec_64kb",
       [&] {
         return FrameCodecBench("frame_codec_64kb", 64 * 1024, codec_large);
       }},
      {"tcp_pingpong_64b",
       [&] { return TcpPingPongBench("tcp_pingpong_64b", pings, 64); }},
      {"tcp_pingpong_4kb",
       [&] {
         return TcpPingPongBench("tcp_pingpong_4kb", pings / 4, 4096);
       }},
      {"tcp_scaling_64peers",
       [&] {
         return PeerScalingBench("tcp_scaling_64peers", 64, frames_per_peer);
       }},
      {"tcp_scaling_256peers",
       [&] {
         return PeerScalingBench("tcp_scaling_256peers", 256, frames_per_peer);
       }},
      {"tcp_scaling_1000peers",
       [&] {
         return PeerScalingBench("tcp_scaling_1000peers", 1000,
                                 frames_per_peer);
       }},
      // Coalescing pair: identical message counts, only the batch cap
      // differs. Compare frames_per_update (the `coalescing` JSON section
      // derives the reduction factor).
      {"tcp_coalesce_64peers_batched",
       [&] {
         return CoalescingFanoutBench("tcp_coalesce_64peers_batched", 64,
                                      coalesce_msgs, coalesce_rounds,
                                      net::TcpRuntime::Options{}
                                          .batch_max_bytes);
       }},
      {"tcp_coalesce_64peers_solo",
       [&] {
         return CoalescingFanoutBench("tcp_coalesce_64peers_solo", 64,
                                      coalesce_msgs, coalesce_rounds, 0);
       }},
      // Termination pair: exact credit-ack quiescence vs the legacy 10ms
      // quiet window, same ping-pong chain.
      {"tcp_fixpoint_ack",
       [&] {
         return FixpointQuiescenceBench("tcp_fixpoint_ack",
                                        std::chrono::microseconds(0),
                                        fixpoint_exchanges);
       }},
      {"tcp_fixpoint_quiet10ms",
       [&] {
         return FixpointQuiescenceBench("tcp_fixpoint_quiet10ms",
                                        std::chrono::microseconds(10'000),
                                        fixpoint_exchanges);
       }},
      {"update_thread_tree8",
       [&] {
         net::ThreadRuntime rt;
         return SessionUpdateBench("update_thread_tree8", &rt, nodes, records);
       }},
      {"update_tcp_tree8",
       [&] {
         net::TcpRuntime rt;
         return SessionUpdateBench("update_tcp_tree8", &rt, nodes, records);
       }},
      // Trace-overhead trio: identical durable scenario, only the sampling
      // rate differs. Compare update_ms across the three rows.
      {"trace_off_tcp_tree8",
       [&] {
         return TracedUpdateBench("trace_off_tcp_tree8", nodes, records, 0,
                                  "");
       }},
      {"trace_on_tcp_tree8",
       [&] {
         // The fully-traced run doubles as the obs.json source: its dump has
         // every histogram (chase, WAL, queue wait) and the trace reports.
         return TracedUpdateBench("trace_on_tcp_tree8", nodes, records, 1,
                                  obs_path);
       }},
      {"trace_sampled4_tcp_tree8",
       [&] {
         return TracedUpdateBench("trace_sampled4_tcp_tree8", nodes, records,
                                  4, "");
       }},
  };

  PrintHeader("bench_tcp: frame codec / loopback socket runtime suite");
  std::printf("%-22s %10s %14s %14s\n", "bench", "wall_ms", "msgs/s|RTTus",
              "MB/s|msgs");

  std::vector<BenchResult> results;
  for (const auto& [name, make] : cases) {
    if (!filter.empty() && name.find(filter) == std::string::npos) continue;
    BenchResult best;
    for (int r = 0; r < repeat; ++r) best = Best(std::move(best), make());
    if (best.metrics.empty()) {
      std::fprintf(stderr, "error: bench %s failed\n", name.c_str());
      return 1;
    }
    double rate = best.Metric("msgs_per_sec") + best.Metric("rtt_micros");
    double volume = best.Metric("mb_per_sec") + best.Metric("messages");
    std::printf("%-22s %10.2f %14.0f %14.0f\n", best.name.c_str(),
                best.Metric("wall_ms"), rate, volume);
    results.push_back(std::move(best));
  }

  if (results.empty()) {
    std::fprintf(stderr, "no benches matched filter '%s'\n", filter.c_str());
    return 1;
  }
  if (!WriteJson(out_path, results, repeat)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu benches)\n", out_path.c_str(), results.size());
  return 0;
}

}  // namespace
}  // namespace p2pdb::bench

int main(int argc, char** argv) { return p2pdb::bench::Main(argc, argv); }
