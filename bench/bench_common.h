// Shared helpers for the experiment benches: run a scenario end to end on the
// deterministic runtime and collect the metrics the paper's statistics module
// reported (execution time, message counts, bytes on pipes, tuples moved).
#ifndef P2PDB_BENCH_BENCH_COMMON_H_
#define P2PDB_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/global_fixpoint.h"
#include "src/core/session.h"
#include "src/net/sim_runtime.h"
#include "src/workload/scenario.h"

namespace p2pdb::bench {

struct RunMetrics {
  double sim_ms = 0;        ///< Simulated network time to quiescence.
  double wall_ms = 0;       ///< Host wall-clock time.
  uint64_t messages = 0;    ///< Total protocol messages.
  uint64_t bytes = 0;       ///< Total bytes on pipes.
  uint64_t query_answers = 0;
  uint64_t inserted = 0;    ///< Tuples materialized across all nodes.
  uint64_t token_passes = 0;
  bool all_closed = false;
  size_t depth = 0;
};

/// Set P2PDB_BENCH_FULL=1 to run paper-scale record counts everywhere
/// (cliques are cubic in data volume; the default trims them for CI).
inline bool FullScale() {
  const char* env = std::getenv("P2PDB_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

inline RunMetrics RunScenario(const workload::ScenarioOptions& options,
                              core::Session::Options session_options = {},
                              uint64_t sim_seed = 42) {
  RunMetrics metrics;
  auto edges = workload::GenerateTopology(options.topology);
  if (edges.ok()) metrics.depth = workload::TopologyDepth(*edges);

  auto system = workload::BuildScenario(options);
  if (!system.ok()) {
    std::fprintf(stderr, "scenario build failed: %s\n",
                 system.status().ToString().c_str());
    return metrics;
  }
  net::SimRuntime rt(net::SimRuntime::Options{.seed = sim_seed,
                                              .max_events = 500'000'000});
  core::Session session(*system, &rt, session_options);

  auto start = std::chrono::steady_clock::now();
  if (!session.RunDiscovery().ok()) return metrics;
  rt.stats().Reset();  // Report the update phase, as the paper does.
  uint64_t t0 = rt.NowMicros();
  if (!session.RunUpdate().ok()) return metrics;
  auto end = std::chrono::steady_clock::now();

  metrics.sim_ms = static_cast<double>(rt.NowMicros() - t0) / 1000.0;
  metrics.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  metrics.messages = rt.stats().total_messages();
  metrics.bytes = rt.stats().total_bytes();
  metrics.query_answers =
      rt.stats().MessagesOfType(net::MessageType::kQueryAnswer);
  metrics.all_closed = session.AllClosed();
  for (size_t n = 0; n < session.peer_count(); ++n) {
    metrics.inserted += session.peer(n).update().stats().tuples_inserted;
    metrics.token_passes += session.peer(n).update().stats().token_passes;
  }
  return metrics;
}

inline void PrintHeader(const char* title) {
  // Line-buffer stdout even when redirected, so long sweeps show progress.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("\n=== %s ===\n", title);
}

}  // namespace p2pdb::bench

#endif  // P2PDB_BENCH_BENCH_COMMON_H_
