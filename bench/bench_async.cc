// A2 — ablation: asynchronous vs synchronous communication. The paper's
// algorithm "is based on an asynchronous model of communications (while also
// supporting a synchronous alternative) ... reaching the fix-point may be
// faster at expense of an increase of the number of messages".
//
// We model synchrony with a uniform zero-jitter latency (all messages of a
// wave arrive together, so each node recomputes once per round) and
// asynchrony with heavy jitter (answers trickle in; every arrival can trigger
// a recomputation and a fresh delta).
#include <cstdio>

#include "bench/bench_common.h"

using namespace p2pdb;        // NOLINT
using namespace p2pdb::bench;  // NOLINT

int main() {
  const size_t records = FullScale() ? 300 : 100;

  PrintHeader("A2 async vs sync messaging (ring topology, cyclic)");
  std::printf("%-22s %10s %12s %10s %12s\n", "latency model", "sim-ms",
              "messages", "kbytes", "answers");

  struct Model {
    const char* name;
    uint64_t base;
    uint64_t jitter;
  };
  for (const Model& model :
       {Model{"sync (1ms, no jitter)", 1000, 0},
        Model{"mild async (±0.5ms)", 1000, 500},
        Model{"heavy async (±5ms)", 1000, 5000}}) {
    workload::ScenarioOptions options;
    options.topology.kind = workload::TopologySpec::Kind::kRing;
    options.topology.nodes = 7;
    options.records_per_node = records;

    auto system = workload::BuildScenario(options);
    if (!system.ok()) continue;
    net::SimRuntime rt(net::SimRuntime::Options{.seed = 7,
                                                .max_events = 500'000'000});
    rt.pipes().set_default_latency(
        net::LatencyModel{model.base, model.jitter});
    core::Session session(*system, &rt);
    if (!session.RunDiscovery().ok()) continue;
    rt.stats().Reset();
    uint64_t t0 = rt.NowMicros();
    if (!session.RunUpdate().ok()) continue;
    std::printf("%-22s %10.1f %12llu %10llu %12llu\n", model.name,
                static_cast<double>(rt.NowMicros() - t0) / 1000.0,
                static_cast<unsigned long long>(rt.stats().total_messages()),
                static_cast<unsigned long long>(rt.stats().total_bytes() /
                                                1024),
                static_cast<unsigned long long>(rt.stats().MessagesOfType(
                    net::MessageType::kQueryAnswer)));
  }
  std::printf(
      "\nshape: jitter lets early answers start downstream work sooner, but\n"
      "staggered arrivals produce more (smaller) incremental answers — the\n"
      "paper's time-for-messages trade-off.\n");
  return 0;
}
