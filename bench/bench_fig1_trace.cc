// E2 — regenerates Figure 1: a sample execution of the discovery and update
// algorithm over the running example, printed as a message sequence timeline
// (requestNodes/processAnswer during discovery; Query/Answer during update).
#include <cstdio>

#include "src/core/session.h"
#include "src/net/sim_runtime.h"
#include "src/workload/scenario.h"

using namespace p2pdb;  // NOLINT

namespace {

const char* PaperName(net::MessageType type) {
  // Figure 1 uses the paper's function names.
  switch (type) {
    case net::MessageType::kDiscoverRequest:
      return "requestNodes";
    case net::MessageType::kDiscoverAnswer:
      return "processAnswer";
    case net::MessageType::kDiscoverClosure:
      return "closeTopology";
    case net::MessageType::kUpdateStart:
      return "globalUpdate";
    case net::MessageType::kQueryRequest:
      return "Query";
    case net::MessageType::kQueryAnswer:
      return "Answer";
    default:
      return net::MessageTypeName(type);
  }
}

}  // namespace

int main() {
  auto system = workload::MakeRunningExample();
  if (!system.ok()) return 1;

  net::SimRuntime rt;
  int printed = 0;
  const int kMaxLines = 120;
  rt.set_tracer([&](uint64_t time_us, const net::Message& msg) {
    if (msg.type == net::MessageType::kToken ||
        msg.type == net::MessageType::kSccClosed) {
      return;  // Fix-point machinery; Figure 1 shows only the data protocol.
    }
    if (printed < kMaxLines) {
      std::printf("t=%8.3fms  :%s -> :%s  %-14s (%zu bytes)\n",
                  static_cast<double>(time_us) / 1000.0,
                  system->node(msg.from).name.c_str(),
                  system->node(msg.to).name.c_str(), PaperName(msg.type),
                  msg.payload.size());
    } else if (printed == kMaxLines) {
      std::printf("... (further messages elided)\n");
    }
    ++printed;
  });

  core::Session session(*system, &rt);
  std::printf("--- phase 1: topology discovery (super-peer :A) ---\n");
  core::Session::Options opts;  // Default constructed for reference only.
  (void)opts;
  if (!session.RunDiscovery().ok()) return 1;
  std::printf("\n--- phase 2: database update (super-peer :A) ---\n");
  if (!session.RunUpdate().ok()) return 1;

  std::printf("\nall nodes closed: %s\n",
              session.AllClosed() ? "yes" : "NO");
  std::printf("total messages traced: %d (tokens/closures elided from the "
              "timeline)\n",
              printed);
  std::printf("\nshape check vs Figure 1: requests cascade :A->:B->{:C,:E},\n"
              "answers return toward the super-peer, and during the update\n"
              "Query/Answer pairs iterate until the fix-point closes.\n");
  return 0;
}
