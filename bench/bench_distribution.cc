// E4 — the Section 5 data-distribution experiment: two distributions, one
// with no intersection between neighbours' initial data, one where linked
// nodes' data intersects with probability 50%. Overlap shrinks the volume of
// genuinely new data each answer carries (visible in bytes and inserts).
#include <cstdio>

#include "bench/bench_common.h"

using namespace p2pdb;        // NOLINT
using namespace p2pdb::bench;  // NOLINT

int main() {
  const size_t records = FullScale() ? 1000 : 300;
  PrintHeader("E4 data distributions: 0% vs 50% neighbour intersection");
  std::printf("%-12s %5s %9s %10s %12s %10s %10s\n", "topology", "nodes",
              "overlap", "sim-ms", "messages", "kbytes", "inserted");

  using Kind = workload::TopologySpec::Kind;
  for (Kind kind : {Kind::kTree, Kind::kLayeredDag}) {
    for (double overlap : {0.0, 0.5}) {
      workload::ScenarioOptions options;
      options.topology.kind = kind;
      options.topology.nodes = 15;
      options.topology.layers = 4;
      options.records_per_node = records;
      options.link_overlap_prob = overlap;
      RunMetrics m = RunScenario(options);
      std::printf("%-12s %5d %8.0f%% %10.1f %12llu %10llu %10llu\n",
                  workload::TopologyKindName(kind), 15, overlap * 100,
                  m.sim_ms, static_cast<unsigned long long>(m.messages),
                  static_cast<unsigned long long>(m.bytes / 1024),
                  static_cast<unsigned long long>(m.inserted));
    }
  }
  std::printf(
      "\npaper comparison: with 50%% intersection, part of each answer is\n"
      "already present at the head node, so fewer tuples materialize per\n"
      "message and the data volume per link drops; the time shape (driven by\n"
      "depth) is unchanged. The paper reports the same qualitative effect.\n");
  return 0;
}
