// A1 — ablation: the delta optimization (Section 3 mentions it as an
// optimization "to minimize data transfer and duplication"). With deltas a
// re-answer carries only new tuples; without, the full result set travels on
// every change. Cycles amplify the difference.
#include <cstdio>

#include "bench/bench_common.h"

using namespace p2pdb;        // NOLINT
using namespace p2pdb::bench;  // NOLINT

int main() {
  const size_t records = FullScale() ? 400 : 120;
  using Kind = workload::TopologySpec::Kind;

  PrintHeader("A1 delta optimization: answer bytes with and without deltas");
  std::printf("%-12s %5s %7s | %12s %10s | %12s %10s | %7s\n", "topology",
              "nodes", "records", "delta-msgs", "delta-kB", "full-msgs",
              "full-kB", "ratio");

  for (Kind kind : {Kind::kTree, Kind::kRing, Kind::kLayeredDag}) {
    workload::ScenarioOptions options;
    options.topology.kind = kind;
    options.topology.nodes = kind == Kind::kRing ? 6 : 15;
    options.topology.layers = 4;
    options.records_per_node = kind == Kind::kRing ? records / 2 : records;

    core::Session::Options with_delta;
    with_delta.peer.update.delta_answers = true;
    RunMetrics delta = RunScenario(options, with_delta);

    core::Session::Options without_delta;
    without_delta.peer.update.delta_answers = false;
    RunMetrics full = RunScenario(options, without_delta);

    double ratio = delta.bytes > 0
                       ? static_cast<double>(full.bytes) /
                             static_cast<double>(delta.bytes)
                       : 0.0;
    std::printf("%-12s %5zu %7zu | %12llu %10llu | %12llu %10llu | %6.2fx\n",
                workload::TopologyKindName(kind), options.topology.nodes,
                options.records_per_node,
                static_cast<unsigned long long>(delta.messages),
                static_cast<unsigned long long>(delta.bytes / 1024),
                static_cast<unsigned long long>(full.messages),
                static_cast<unsigned long long>(full.bytes / 1024), ratio);
  }
  std::printf(
      "\nshape: on trees each link fires once, so deltas help little; around\n"
      "cycles every convergence round re-sends the whole (growing) result\n"
      "without deltas, so the optimization's advantage grows with cyclicity\n"
      "and data size — the effect the paper anticipates.\n");
  return 0;
}
