// E5 — the paper's headline observation: "in the simple topological
// structures (like the tree and the layered acyclic graphs) the execution
// time is linear with respect to the depth of the structure."
//
// Sweeps depth at fixed shape (chains, binary trees, layered DAGs), reports
// simulated execution time, and fits time = a*depth + b, printing the fit's
// maximum relative residual as the linearity check.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace p2pdb;        // NOLINT
using namespace p2pdb::bench;  // NOLINT

namespace {

struct Sample {
  double depth;
  double time_ms;
};

// Least-squares linear fit; returns max relative residual.
double LinearFitResidual(const std::vector<Sample>& samples, double* a,
                         double* b) {
  double n = static_cast<double>(samples.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const Sample& s : samples) {
    sx += s.depth;
    sy += s.time_ms;
    sxx += s.depth * s.depth;
    sxy += s.depth * s.time_ms;
  }
  double denom = n * sxx - sx * sx;
  *a = (n * sxy - sx * sy) / denom;
  *b = (sy - *a * sx) / n;
  double worst = 0;
  for (const Sample& s : samples) {
    double predicted = *a * s.depth + *b;
    double rel = std::abs(predicted - s.time_ms) /
                 (std::abs(s.time_ms) > 1e-9 ? std::abs(s.time_ms) : 1.0);
    if (rel > worst) worst = rel;
  }
  return worst;
}

}  // namespace

int main() {
  const size_t records = FullScale() ? 500 : 100;
  using Kind = workload::TopologySpec::Kind;

  PrintHeader("E5 execution time vs depth (expected: linear)");

  struct Series {
    const char* name;
    Kind kind;
    std::vector<size_t> sizes;  // node counts (chain) or layer counts.
  };
  std::vector<Series> series = {
      {"chain", Kind::kChain, {3, 5, 7, 9, 11, 13}},
      {"binary-tree", Kind::kTree, {3, 7, 15, 31, 63}},
      {"layered-dag", Kind::kLayeredDag, {4, 7, 10, 13, 16}},
  };

  for (const Series& s : series) {
    std::printf("\n%s:\n%6s %6s %10s %12s\n", s.name, "nodes", "depth",
                "sim-ms", "messages");
    std::vector<Sample> samples;
    for (size_t size : s.sizes) {
      workload::ScenarioOptions options;
      options.topology.kind = s.kind;
      options.topology.nodes = size;
      options.topology.fanout = 2;
      // Layered DAG: ~3 nodes per layer; depth = layers - 1.
      options.topology.layers = (size + 2) / 3;
      options.records_per_node = records;
      RunMetrics m = RunScenario(options);
      std::printf("%6zu %6zu %10.2f %12llu\n", size, m.depth, m.sim_ms,
                  static_cast<unsigned long long>(m.messages));
      samples.push_back(Sample{static_cast<double>(m.depth), m.sim_ms});
    }
    double a = 0, b = 0;
    double residual = LinearFitResidual(samples, &a, &b);
    std::printf("  fit: time = %.2f * depth + %.2f ms; max relative residual "
                "%.1f%% -> %s\n",
                a, b, residual * 100,
                residual < 0.25 ? "linear (matches paper)" : "NOT linear");
  }
  return 0;
}
