// A5 — ablation: chase policies for algorithm A6. The paper's per-head-atom
// projection check vs the standard restricted-chase homomorphism check.
// Includes the order-dependence demonstration behind finding F1 in
// EXPERIMENTS.md: under the projection policy, an unlinked pub/wrote pair can
// suppress the linked witness a later derivation needs.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/relational/chase.h"
#include "src/relational/eval.h"

using namespace p2pdb;        // NOLINT
using namespace p2pdb::bench;  // NOLINT

namespace {

void PolicySweep() {
  PrintHeader("A5 chase policy: materialization and cost");
  std::printf("%-12s %-14s %10s %10s %10s %10s\n", "topology", "policy",
              "wall-ms", "inserted", "sim-ms", "closed");
  using Kind = workload::TopologySpec::Kind;
  for (Kind kind : {Kind::kTree, Kind::kClique}) {
    for (rel::ChasePolicy policy : {rel::ChasePolicy::kProjectionCheck,
                                    rel::ChasePolicy::kHomomorphismCheck}) {
      workload::ScenarioOptions options;
      options.topology.kind = kind;
      options.topology.nodes = kind == Kind::kClique ? 7 : 15;
      options.records_per_node =
          FullScale() ? 250 : (kind == Kind::kClique ? 40 : 120);
      core::Session::Options session_options;
      session_options.peer.update.chase.policy = policy;
      RunMetrics m = RunScenario(options, session_options);
      std::printf("%-12s %-14s %10.1f %10llu %10.1f %10s\n",
                  workload::TopologyKindName(kind),
                  policy == rel::ChasePolicy::kProjectionCheck
                      ? "projection"
                      : "homomorphism",
                  m.wall_ms, static_cast<unsigned long long>(m.inserted),
                  m.sim_ms, m.all_closed ? "yes" : "NO");
    }
  }
}

// Finding F1: the paper's A6 projection check is evaluation-order dependent.
void OrderDependenceDemo() {
  PrintHeader("A5b finding F1: A6 projection check is order dependent");
  // Database with pub/wrote; rule head pub(I,T,Y) ∧ wrote(A,I), I,Y
  // existential, applied for (T=t1, A=alice).
  auto build = [](bool pre_populate_unlinked) {
    rel::Database db;
    (void)db.CreateRelation(rel::RelationSchema("pub", {"i", "t", "y"}));
    (void)db.CreateRelation(rel::RelationSchema("wrote", {"a", "i"}));
    if (pre_populate_unlinked) {
      // Unlinked facts mentioning the same title and author.
      (void)db.Insert("pub", rel::Tuple({rel::Value::Str("i9"),
                                         rel::Value::Str("t1"),
                                         rel::Value::Int(2000)}));
      (void)db.Insert("wrote", rel::Tuple({rel::Value::Str("alice"),
                                           rel::Value::Str("i7")}));
    }
    return db;
  };
  rel::Atom pub;
  pub.relation = "pub";
  pub.terms = {rel::Term::Var("I"), rel::Term::Var("T"), rel::Term::Var("Y")};
  rel::Atom wrote;
  wrote.relation = "wrote";
  wrote.terms = {rel::Term::Var("A"), rel::Term::Var("I")};
  rel::Binding binding{{"T", rel::Value::Str("t1")},
                       {"A", rel::Value::Str("alice")}};

  for (bool pre : {false, true}) {
    for (rel::ChasePolicy policy : {rel::ChasePolicy::kProjectionCheck,
                                    rel::ChasePolicy::kHomomorphismCheck}) {
      rel::Database db = build(pre);
      rel::NullFactory nulls(1);
      rel::ChaseOptions chase;
      chase.policy = policy;
      rel::ChaseStats stats;
      (void)rel::ApplyRuleHead(&db, {pub, wrote}, binding, &nulls, chase,
                               &stats);
      // Does a *linked* witness exist afterwards?
      rel::ConjunctiveQuery probe;
      probe.head_vars = {"I"};
      rel::Atom p2 = pub, w2 = wrote;
      p2.terms[1] = rel::Term::Const(rel::Value::Str("t1"));
      w2.terms[0] = rel::Term::Const(rel::Value::Str("alice"));
      probe.atoms = {p2, w2};
      auto linked = rel::EvaluateQuery(db, probe);
      std::printf("  prior unlinked facts: %-3s policy: %-14s inserted: %zu "
                  "linked witness: %s\n",
                  pre ? "yes" : "no",
                  policy == rel::ChasePolicy::kProjectionCheck
                      ? "projection"
                      : "homomorphism",
                  stats.inserted,
                  linked.ok() && !linked->empty() ? "yes" : "NO");
    }
  }
  std::printf(
      "\nreading: with prior unlinked facts the projection policy skips both\n"
      "head atoms and never creates a linked pub-wrote witness, so downstream\n"
      "joins lose answers; the homomorphism policy always leaves a linked\n"
      "witness. This makes the paper's A6 completeness claim order-sensitive.\n");
}

}  // namespace

int main() {
  PolicySweep();
  OrderDependenceDemo();
  return 0;
}
