// bench_queries: the MVCC query plane under read traffic — standalone QPS,
// QPS concurrent with a propagating TCP update, and read-latency
// percentiles, emitted as BENCH_queries.json (scripts/run_bench.sh --bench
// queries).
//
// Each run builds one 64-peer TCP session and measures three phases over
// the same reader pool and generated workload:
//   queries_initial_64p     readers only, on the initial (pre-update) data
//   queries_concurrent_64p  readers while Session::RunUpdate() propagates a
//                           full update through the fleet (snapshots swap on
//                           every delta-batch commit underneath the readers)
//   queries_quiescent_64p   readers only, on the converged database
// The concurrent measurement window spans the entire update plus padding
// (max of the quiescent window and 4x the update duration) so the figure is
// a steady-state rate, not a sample of the worst instant; the rate measured
// strictly inside the update is reported separately as during_update_qps.
// concurrent_ratio_percent compares against the converged-data quiescent
// rate — the update grows every relation, so most of the concurrent window
// serves the same (larger) instance the final phase does; comparing against
// the initial-data rate would charge data growth to the read path. On a
// single-core host the update also competes for the CPU itself, so the
// ratio bounds reader overhead + time-sharing together.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/query.h"
#include "src/net/tcp_runtime.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/workload/queries.h"

namespace p2pdb::bench {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct BenchResult {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;

  double Metric(const std::string& key) const {
    for (const auto& [k, v] : metrics) {
      if (k == key) return v;
    }
    return 0;
  }
};

/// Reader pool: each thread cycles the op list (offset by thread index so
/// threads do not march in lockstep) against Session::Query/QueryPoint until
/// stopped. Counts answered ops and any correctness violation: an error
/// status, or a point lookup that no longer finds a tuple the initial
/// instance had (updates are monotone — hits must stay hits).
class ReaderPool {
 public:
  ReaderPool(const core::Session& session,
             const std::vector<workload::QueryOp>& ops, size_t threads)
      : session_(session), ops_(ops), threads_count_(threads) {}

  void Start() {
    stop_.store(false);
    for (size_t t = 0; t < threads_count_; ++t) {
      threads_.emplace_back([this, t] { Run(t); });
    }
  }

  void Stop() {
    stop_.store(true);
    for (std::thread& t : threads_) t.join();
    threads_.clear();
  }

  uint64_t answered() const { return answered_.load(); }
  uint64_t violations() const { return violations_.load(); }

 private:
  void Run(size_t thread_index) {
    size_t i = (ops_.size() / (threads_count_ + 1)) * thread_index;
    uint64_t local = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      const workload::QueryOp& op = ops_[i];
      i = (i + 1) % ops_.size();
      if (op.is_point) {
        auto hit = session_.QueryPoint(op.node, op.relation, op.key);
        if (!hit.ok() || (op.expect_hit && !*hit)) violations_.fetch_add(1);
      } else {
        auto rows = session_.Query(op.node, op.cq);
        if (!rows.ok()) violations_.fetch_add(1);
      }
      ++local;
      // Batch the shared-counter update; the hot loop stays uncontended.
      if ((local & 0x3f) == 0) answered_.fetch_add(64);
    }
    answered_.fetch_add(local & 0x3f);
  }

  const core::Session& session_;
  const std::vector<workload::QueryOp>& ops_;
  size_t threads_count_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> answered_{0};
  std::atomic<uint64_t> violations_{0};
};

void AppendLatency(BenchResult* result) {
  obs::HistogramSnapshot lat = obs::Registry::Global()
                                   .GetHistogram("query.eval_micros")
                                   ->Snapshot();
  result->metrics.emplace_back("eval_p50_us", static_cast<double>(lat.p50));
  result->metrics.emplace_back("eval_p95_us", static_cast<double>(lat.p95));
  result->metrics.emplace_back("eval_p99_us", static_cast<double>(lat.p99));
  result->metrics.emplace_back("eval_mean_us", lat.Mean());
}

/// Runs all three phases on one session; returns {initial, concurrent,
/// quiescent} rows.
std::vector<BenchResult> QueryPlaneBench(size_t nodes, size_t records,
                                         size_t readers,
                                         double quiescent_window_ms,
                                         const std::string& obs_path) {
  std::vector<BenchResult> rows;
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kTree;
  options.topology.nodes = nodes;
  options.records_per_node = records;
  auto system = workload::BuildScenario(options);
  if (!system.ok()) return rows;
  auto ops = workload::BuildQueryWorkload(*system, {});
  if (!ops.ok()) return rows;

  net::TcpRuntime rt;
  core::Session session(*system, &rt);
  if (!session.RunDiscovery().ok()) return rows;

  std::string suffix = std::to_string(nodes) + "p";
  obs::Registry& registry = obs::Registry::Global();

  auto run_quiet_phase = [&](const std::string& name) {
    registry.Reset();
    ReaderPool pool(session, *ops, readers);
    auto start = Clock::now();
    pool.Start();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int64_t>(quiescent_window_ms)));
    pool.Stop();
    double ms = MsSince(start);
    double qps = ms > 0 ? static_cast<double>(pool.answered()) / ms * 1000.0
                        : 0;
    BenchResult row{
        name + suffix,
        {{"wall_ms", ms},
         {"qps", qps},
         {"queries", static_cast<double>(pool.answered())},
         {"readers", static_cast<double>(readers)},
         {"violations", static_cast<double>(pool.violations())}}};
    AppendLatency(&row);
    return row;
  };

  // Phase 1 — initial: nothing but readers, pre-update data.
  BenchResult initial = run_quiet_phase("queries_initial_");
  double initial_qps = initial.Metric("qps");
  rows.push_back(std::move(initial));

  // Phase 2 — concurrent: same readers while an update propagates.
  registry.Reset();
  ReaderPool concurrent_pool(session, *ops, readers);
  auto c_start = Clock::now();
  concurrent_pool.Start();
  uint64_t before_update = concurrent_pool.answered();
  auto u_start = Clock::now();
  bool update_ok = session.RunUpdate().ok();
  double update_ms = MsSince(u_start);
  uint64_t during_update = concurrent_pool.answered() - before_update;
  // Pad the window past the update so the row reports a steady-state rate.
  double window_ms = std::max(quiescent_window_ms, update_ms * 4);
  while (MsSince(c_start) < window_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  concurrent_pool.Stop();
  double c_ms = MsSince(c_start);
  double concurrent_qps =
      c_ms > 0 ? static_cast<double>(concurrent_pool.answered()) / c_ms * 1000.0
               : 0;
  double during_qps =
      update_ms > 0 ? static_cast<double>(during_update) / update_ms * 1000.0
                    : 0;
  int64_t staleness_max =
      registry.GetGauge("query.snapshot_staleness_batches")->Value();
  BenchResult concurrent{
      "queries_concurrent_" + suffix,
      {{"wall_ms", c_ms},
       {"qps", concurrent_qps},
       {"initial_qps", initial_qps},
       {"during_update_qps", during_qps},
       {"update_ms", update_ms},
       {"queries", static_cast<double>(concurrent_pool.answered())},
       {"readers", static_cast<double>(readers)},
       {"violations", static_cast<double>(concurrent_pool.violations())},
       {"snapshot_staleness_max", static_cast<double>(staleness_max)},
       {"update_ok", update_ok && session.AllClosed() ? 1.0 : 0.0}}};
  AppendLatency(&concurrent);

  if (!obs_path.empty()) {
    rt.stats().ExportTo(registry, "net.");
    if (obs::WriteObsJson(obs_path, registry, nullptr)) {
      std::printf("observability dump written to %s\n", obs_path.c_str());
    }
  }

  // Phase 3 — quiescent: readers alone on the converged database. This is
  // the baseline the ratio compares against (see file comment).
  BenchResult quiescent = run_quiet_phase("queries_quiescent_");
  double quiescent_qps = quiescent.Metric("qps");
  concurrent.metrics.emplace_back("quiescent_qps", quiescent_qps);
  concurrent.metrics.emplace_back(
      "concurrent_ratio_percent",
      quiescent_qps > 0 ? concurrent_qps / quiescent_qps * 100.0 : 0);
  rows.push_back(std::move(concurrent));
  rows.push_back(std::move(quiescent));
  return rows;
}

bool WriteJson(const std::string& path,
               const std::vector<BenchResult>& results, int repeat) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << "{\n  \"suite\": \"p2pdb_queries\",\n  \"repeat\": " << repeat
      << ",\n  \"full_scale\": " << (FullScale() ? "true" : "false")
      << ",\n  \"benches\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    out << "    {\n      \"name\": \"" << results[i].name << "\"";
    for (const auto& [key, value] : results[i].metrics) {
      out << ",\n      \"" << key << "\": " << value;
    }
    out << "\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.flush();
  return !out.fail();
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_queries.json";
  std::string obs_path;
  int repeat = 2;
  size_t nodes = 64;
  size_t readers = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--obs") == 0 && i + 1 < argc) {
      obs_path = argv[++i];
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--peers") == 0 && i + 1 < argc) {
      nodes = static_cast<size_t>(std::max(2, std::atoi(argv[++i])));
    } else if (std::strcmp(argv[i], "--readers") == 0 && i + 1 < argc) {
      readers = static_cast<size_t>(std::max(1, std::atoi(argv[++i])));
    } else {
      std::fprintf(stderr,
                   "usage: bench_queries [--out FILE] [--repeat N] "
                   "[--peers N] [--readers N] [--obs FILE]\n");
      return 2;
    }
  }

  const size_t records = FullScale() ? 100 : 10;
  const double window_ms = FullScale() ? 2000 : 400;

  PrintHeader("bench_queries: MVCC query plane vs update propagation");
  std::printf("%-26s %10s %12s %10s %10s\n", "bench", "wall_ms", "qps",
              "p99_us", "ratio%");

  // Keep the repeat with the best concurrent/quiescent ratio: all phases
  // come from one session, so the triple is kept together.
  std::vector<BenchResult> best;
  for (int r = 0; r < repeat; ++r) {
    std::vector<BenchResult> run = QueryPlaneBench(
        nodes, records, readers, window_ms, r == repeat - 1 ? obs_path : "");
    if (run.size() < 3) continue;
    if (best.empty() || run[1].Metric("concurrent_ratio_percent") >
                            best[1].Metric("concurrent_ratio_percent")) {
      best = std::move(run);
    }
  }
  if (best.empty()) {
    std::fprintf(stderr, "bench_queries: no successful run\n");
    return 1;
  }
  for (const BenchResult& row : best) {
    std::printf("%-26s %10.1f %12.0f %10.0f %10.1f\n", row.name.c_str(),
                row.Metric("wall_ms"), row.Metric("qps"),
                row.Metric("eval_p99_us"),
                row.Metric("concurrent_ratio_percent"));
  }
  if (!WriteJson(out_path, best, repeat)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("results written to %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace p2pdb::bench

int main(int argc, char** argv) { return p2pdb::bench::Main(argc, argv); }
