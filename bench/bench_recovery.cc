// Durability bench: WAL append throughput (sync and nosync), checkpoint
// save/load cost, and recovery (checkpoint + WAL replay) time as a function
// of database size, plus one end-to-end crash/restart churn run on the sim
// runtime. Emits BENCH_recovery.json in the same shape as bench_main.
//
//   ./bench_recovery [--out FILE] [--repeat N] [--filter SUBSTR]
#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/storage/checkpoint.h"
#include "src/storage/storage_manager.h"
#include "src/util/log_capture.h"

namespace p2pdb::bench {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("p2pdb_bench_" + name);
  fs::remove_all(dir);
  return dir.string();
}

/// A flat publication-style database with `tuples` rows.
rel::Database MakeDb(size_t tuples) {
  rel::Database db;
  (void)db.CreateRelation(
      rel::RelationSchema("pub", {"id", "title", "year"}));
  for (size_t i = 0; i < tuples; ++i) {
    int64_t year = 1990 + static_cast<int64_t>(i % 30);
    (void)db.Insert(
        "pub", rel::Tuple({rel::Value::Int(static_cast<int64_t>(i)),
                           rel::Value::Str("title-" + std::to_string(i)),
                           rel::Value::Int(year)}));
  }
  return db;
}

storage::DeltaMap MakeDelta(size_t base, size_t tuples) {
  storage::DeltaMap delta;
  for (size_t i = 0; i < tuples; ++i) {
    delta["pub"].insert(
        rel::Tuple({rel::Value::Int(static_cast<int64_t>(base + i)),
                    rel::Value::Str("delta-" + std::to_string(base + i)),
                    rel::Value::Int(2024)}));
  }
  return delta;
}

struct BenchResult {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;

  double Metric(const std::string& key) const {
    for (const auto& [k, v] : metrics) {
      if (k == key) return v;
    }
    return 0;
  }
};

/// WAL append throughput: `batches` deltas of `batch_tuples` tuples each.
/// A nonzero `group_commit` window coalesces kSync fsyncs (the group-commit
/// satellite: most of the nosync throughput, bounded durability window).
BenchResult WalAppendBench(const std::string& name, storage::SyncMode sync,
                           size_t batches, size_t batch_tuples,
                           storage::GroupCommitOptions group_commit = {}) {
  BenchResult result;
  result.name = name;
  storage::StorageOptions options;
  options.dir = FreshDir(name);
  options.sync = sync;
  options.group_commit = group_commit;
  options.checkpoint_wal_bytes = ~0ull;  // Never checkpoint: measure the log.
  auto manager = storage::StorageManager::Open(options);
  if (!manager.ok()) return result;
  auto start = Clock::now();
  for (size_t b = 0; b < batches; ++b) {
    (void)(*manager)->LogDelta(MakeDelta(b * batch_tuples, batch_tuples));
  }
  double wall_ms = MsSince(start);
  double wall_s = wall_ms / 1000.0;
  double bytes = static_cast<double>((*manager)->wal_bytes());
  result.metrics = {
      {"wall_ms", wall_ms},
      {"records", static_cast<double>(batches)},
      {"tuples", static_cast<double>(batches * batch_tuples)},
      {"wal_bytes", bytes},
      {"fsyncs", static_cast<double>((*manager)->wal_syncs())},
      {"records_per_sec", wall_s > 0 ? batches / wall_s : 0},
      {"tuples_per_sec", wall_s > 0 ? batches * batch_tuples / wall_s : 0},
      {"mb_per_sec", wall_s > 0 ? bytes / (1024 * 1024) / wall_s : 0},
  };
  fs::remove_all(options.dir);
  return result;
}

/// Checkpoint save + load cost for a database of `tuples` rows.
BenchResult CheckpointBench(const std::string& name, size_t tuples) {
  BenchResult result;
  result.name = name;
  std::string dir = FreshDir(name);
  fs::create_directories(dir);
  rel::Database db = MakeDb(tuples);

  auto start = Clock::now();
  Status saved = storage::SaveCheckpoint(db, dir);
  double save_ms = MsSince(start);
  if (!saved.ok()) return result;

  start = Clock::now();
  auto loaded = storage::LoadCheckpoint(dir);
  double load_ms = MsSince(start);
  if (!loaded.ok()) return result;

  double bytes =
      static_cast<double>(fs::file_size(storage::CheckpointPath(dir)));
  result.metrics = {
      {"wall_ms", save_ms + load_ms},
      {"tuples", static_cast<double>(tuples)},
      {"save_ms", save_ms},
      {"load_ms", load_ms},
      {"checkpoint_bytes", bytes},
      {"save_tuples_per_sec", save_ms > 0 ? tuples / (save_ms / 1000.0) : 0},
  };
  fs::remove_all(dir);
  return result;
}

/// Full recovery (checkpoint of `base_tuples` + `wal_records` deltas) time.
BenchResult RecoveryBench(const std::string& name, size_t base_tuples,
                          size_t wal_records, size_t batch_tuples) {
  BenchResult result;
  result.name = name;
  storage::StorageOptions options;
  options.dir = FreshDir(name);
  options.sync = storage::SyncMode::kNoSync;
  options.checkpoint_wal_bytes = ~0ull;
  auto manager = storage::StorageManager::Open(options);
  if (!manager.ok()) return result;
  if (!(*manager)->EnsureBase(MakeDb(base_tuples)).ok()) return result;
  for (size_t r = 0; r < wal_records; ++r) {
    (void)(*manager)->LogDelta(
        MakeDelta(base_tuples + r * batch_tuples, batch_tuples));
  }

  auto start = Clock::now();
  storage::RecoveryInfo info;
  auto recovered = (*manager)->Recover(&info);
  double wall_ms = MsSince(start);
  if (!recovered.ok()) return result;
  result.metrics = {
      {"wall_ms", wall_ms},
      {"base_tuples", static_cast<double>(base_tuples)},
      {"wal_records", static_cast<double>(info.wal_records_replayed)},
      {"wal_bytes", static_cast<double>(info.wal_bytes_scanned)},
      {"tuples_recovered", static_cast<double>(info.tuples_recovered)},
      {"recover_tuples_per_sec",
       wall_ms > 0 ? info.tuples_recovered / (wall_ms / 1000.0) : 0},
  };
  fs::remove_all(options.dir);
  return result;
}

/// End-to-end churn: a tree update with one crash/restart mid-propagation.
BenchResult ChurnBench(const std::string& name, size_t nodes,
                       size_t records_per_node) {
  BenchResult result;
  result.name = name;
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kTree;
  options.topology.nodes = nodes;
  options.records_per_node = records_per_node;
  auto system = workload::BuildScenario(options);
  if (!system.ok()) return result;
  auto churn =
      workload::PlanCrashRestart(*system, 0, workload::ChurnPlanOptions{});
  if (!churn.ok()) return result;

  std::string root = FreshDir(name);
  net::SimRuntime rt;
  core::Session::Options session_options;
  session_options.storage =
      [root](NodeId node) -> std::unique_ptr<storage::Storage> {
    storage::StorageOptions storage_options;
    storage_options.dir = root + "/peer" + std::to_string(node);
    storage_options.sync = storage::SyncMode::kNoSync;
    auto manager = storage::StorageManager::Open(storage_options);
    return manager.ok() ? std::move(*manager) : nullptr;
  };
  core::Session session(*system, &rt, session_options);
  if (!session.RunDiscovery().ok()) return result;
  ScopedLogCapture quiet;  // Drop-to-crashed-peer warnings are expected.
  auto start = Clock::now();
  Status run = session.RunUpdateWithChurn(*churn);
  double wall_ms = MsSince(start);
  if (!run.ok()) return result;
  uint64_t inserted = 0;
  for (size_t n = 0; n < session.peer_count(); ++n) {
    inserted += session.peer(n).update().stats().tuples_inserted;
  }
  result.metrics = {
      {"wall_ms", wall_ms},
      {"sim_ms", static_cast<double>(rt.NowMicros()) / 1000.0},
      {"messages", static_cast<double>(rt.stats().total_messages())},
      {"dropped", static_cast<double>(rt.dropped_count())},
      {"tuples_inserted", static_cast<double>(inserted)},
      {"all_closed", session.AllClosed() ? 1.0 : 0.0},
  };
  fs::remove_all(root);
  return result;
}

BenchResult Best(BenchResult a, BenchResult b) {
  if (a.metrics.empty()) return b;
  if (b.metrics.empty()) return a;
  return a.Metric("wall_ms") <= b.Metric("wall_ms") ? a : b;
}

bool WriteJson(const std::string& path,
               const std::vector<BenchResult>& results, int repeat) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << "{\n  \"suite\": \"p2pdb_recovery\",\n  \"repeat\": " << repeat
      << ",\n  \"full_scale\": " << (FullScale() ? "true" : "false")
      << ",\n  \"benches\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    out << "    {\n      \"name\": \"" << results[i].name << "\"";
    for (const auto& [key, value] : results[i].metrics) {
      out << ",\n      \"" << key << "\": " << value;
    }
    out << "\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.flush();
  return !out.fail();
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_recovery.json";
  std::string filter;
  int repeat = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
      filter = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_recovery [--out FILE] [--repeat N] "
                   "[--filter SUBSTR]\n");
      return 2;
    }
  }

  const size_t small = FullScale() ? 5'000 : 1'000;
  const size_t large = FullScale() ? 50'000 : 10'000;
  using Maker = std::function<BenchResult()>;
  std::vector<std::pair<std::string, Maker>> cases = {
      {"wal_append_nosync",
       [&] {
         return WalAppendBench("wal_append_nosync", storage::SyncMode::kNoSync,
                               large / 10, 10);
       }},
      {"wal_append_sync",
       [&] {
         // fsync-bound: keep the record count small even at full scale.
         return WalAppendBench("wal_append_sync", storage::SyncMode::kSync, 200,
                               10);
       }},
      {"wal_append_group",
       [&] {
         // Group commit: same durable mode, fsyncs coalesced over a 1ms /
         // 64-record window — compare records_per_sec against the nosync and
         // per-append-sync rows to see the recovered gap.
         storage::GroupCommitOptions group;
         group.window = std::chrono::milliseconds(1);
         return WalAppendBench("wal_append_group", storage::SyncMode::kSync,
                               large / 10, 10, group);
       }},
      {"checkpoint_small",
       [&] { return CheckpointBench("checkpoint_small", small); }},
      {"checkpoint_large",
       [&] { return CheckpointBench("checkpoint_large", large); }},
      {"recover_small",
       [&] { return RecoveryBench("recover_small", small, 100, 10); }},
      {"recover_large",
       [&] { return RecoveryBench("recover_large", large, 1'000, 10); }},
      {"churn_tree12",
       [&] { return ChurnBench("churn_tree12", 12, FullScale() ? 200 : 50); }},
  };

  PrintHeader("bench_recovery: WAL / checkpoint / crash-recovery suite");
  std::printf("%-22s %10s %14s %14s\n", "bench", "wall_ms", "tuples",
              "tuples/s");

  std::vector<BenchResult> results;
  for (const auto& [name, make] : cases) {
    if (!filter.empty() && name.find(filter) == std::string::npos) continue;
    BenchResult best;
    for (int r = 0; r < repeat; ++r) best = Best(std::move(best), make());
    if (best.metrics.empty()) {
      std::fprintf(stderr, "error: bench %s failed\n", name.c_str());
      return 1;
    }
    double tuples = best.Metric("tuples") + best.Metric("tuples_recovered") +
                    best.Metric("tuples_inserted");
    double rate = best.Metric("tuples_per_sec") +
                  best.Metric("recover_tuples_per_sec") +
                  best.Metric("save_tuples_per_sec");
    std::printf("%-22s %10.2f %14.0f %14.0f\n", best.name.c_str(),
                best.Metric("wall_ms"), tuples, rate);
    results.push_back(std::move(best));
  }

  if (results.empty()) {
    std::fprintf(stderr, "no benches matched filter '%s'\n", filter.c_str());
    return 1;
  }
  if (!WriteJson(out_path, results, repeat)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu benches)\n", out_path.c_str(), results.size());
  return 0;
}

}  // namespace
}  // namespace p2pdb::bench

int main(int argc, char** argv) { return p2pdb::bench::Main(argc, argv); }
