// A4 — dynamics (Section 4): finite change scripts during a run (Theorem 2),
// the Definition 9 sound/complete envelope, and the Theorem 3 separation
// scenario: a separated sub-network closes while churn continues elsewhere.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/dynamics.h"
#include "src/lang/parser.h"
#include "src/workload/rulegen.h"

using namespace p2pdb;        // NOLINT
using namespace p2pdb::bench;  // NOLINT

int main() {
  PrintHeader("A4 dynamics: finite change during a run (Theorem 2 / Def. 9)");

  // Tree of 7 nodes; mid-run, add a link from the root to a fresh branch and
  // delete one existing link.
  workload::ScenarioOptions options;
  options.topology.kind = workload::TopologySpec::Kind::kTree;
  options.topology.nodes = 7;
  options.records_per_node = FullScale() ? 300 : 60;
  auto system = workload::BuildScenario(options);
  if (!system.ok()) return 1;

  // addLink: node 1 additionally pulls from node 6 (no prior link).
  core::CoordinationRule added = workload::MakeTranslationRule(
      "dyn_add", 1, workload::StyleForNode(1), 6, workload::StyleForNode(6));
  core::ChangeScript changes = {
      core::AtomicChange::Add(2000, added),
      core::AtomicChange::Delete(3000, 2, system->rules()[4].id),
  };

  std::printf("%-28s %10s %12s %8s %9s\n", "configuration", "sim-ms",
              "messages", "closed", "envelope");
  for (bool with_changes : {false, true}) {
    net::SimRuntime rt(net::SimRuntime::Options{.seed = 3,
                                                .max_events = 500'000'000});
    core::Session session(*system, &rt);
    if (!session.RunDiscovery().ok()) return 1;
    rt.stats().Reset();
    if (with_changes) {
      for (const auto& c : changes) session.ScheduleChange(c);
    }
    uint64_t t0 = rt.NowMicros();
    if (!session.RunUpdate().ok()) return 1;
    bool closed = session.AllClosed();
    bool in_envelope = true;
    if (with_changes) {
      auto envelope =
          core::ComputeEnvelope(*system, changes, rel::ChaseOptions{});
      in_envelope = envelope.ok() &&
                    core::WithinEnvelope(session.SnapshotDatabases(),
                                         *envelope);
    }
    std::printf("%-28s %10.1f %12llu %8s %9s\n",
                with_changes ? "with add+delete mid-run" : "static run",
                static_cast<double>(rt.NowMicros() - t0) / 1000.0,
                static_cast<unsigned long long>(rt.stats().total_messages()),
                closed ? "yes" : "NO",
                with_changes ? (in_envelope ? "inside" : "VIOLATED") : "-");
  }

  PrintHeader("A4b separation (Theorem 3): churn confined to one sub-network");
  auto two_chains = lang::ParseSystem(R"(
node A { rel a(v); }
node B { rel b(v); fact b("b1"); fact b("b2"); }
node X { rel x(v); }
node Y { rel y(v); fact y("y1"); }
rule ra: B.b(V) => A.a(V);
rule rx: Y.y(V) => X.x(V);
)");
  if (!two_chains.ok()) return 1;
  auto rx = **two_chains->RuleById("rx");
  core::ChangeScript churn;
  for (int i = 0; i < 8; ++i) {
    churn.push_back(core::AtomicChange::Delete(1000 + i * 1500, 2, "rx"));
    churn.push_back(core::AtomicChange::Add(1750 + i * 1500, rx));
  }
  bool separated = core::IsSeparatedUnderChange(*two_chains, churn, {0, 1},
                                                {2, 3});
  net::SimRuntime rt;
  core::Session session(*two_chains, &rt);
  if (!session.RunDiscovery().ok()) return 1;
  for (const auto& c : churn) session.ScheduleChange(c);
  if (!session.RunUpdate().ok()) return 1;
  std::printf("separated({A,B},{X,Y}) under change: %s\n",
              separated ? "yes" : "no");
  std::printf("A closed despite churn at X: %s; a(v) holds B's data: %s\n",
              session.peer(0).update().state() ==
                      core::UpdateEngine::State::kClosed
                  ? "yes"
                  : "NO",
              (*session.peer(0).db().Get("a"))->size() == 2 ? "yes" : "NO");
  std::printf("\npaper comparison: Theorem 2 (termination under finite "
              "change) and\nTheorem 3 (separated sets close under churn "
              "elsewhere) both hold.\n");
  return 0;
}
