// E1 — regenerates the Section 2 in-text table: the maximal dependency paths
// of the running example (nodes A..E, rules r1..r7), computed both offline
// (from the rule set) and by the distributed discovery algorithm, which must
// agree.
#include <cstdio>

#include "src/core/dependency.h"
#include "src/core/session.h"
#include "src/lang/printer.h"
#include "src/net/sim_runtime.h"
#include "src/workload/scenario.h"

using namespace p2pdb;  // NOLINT

int main() {
  auto system = workload::MakeRunningExample();
  if (!system.ok()) {
    std::fprintf(stderr, "%s\n", system.status().ToString().c_str());
    return 1;
  }
  std::printf("Running example of Section 2 (rules):\n");
  for (const core::CoordinationRule& r : system->rules()) {
    std::printf("  %s\n", lang::PrintRule(*system, r).c_str());
  }

  std::printf("\nMaximal dependency paths (offline enumeration, Defs. 6-7):\n");
  std::printf("%s", lang::FormatMaximalPathsTable(*system).c_str());

  // The same table, produced by the distributed discovery protocol (A1-A3).
  net::SimRuntime rt;
  core::Session session(*system, &rt);
  if (!session.RunDiscovery().ok()) {
    std::fprintf(stderr, "discovery failed\n");
    return 1;
  }
  std::printf("\nMaximal dependency paths (distributed discovery, A1-A3):\n");
  std::printf("node | paths\n-----+------------------------------\n");
  bool all_match = true;
  core::DependencyGraph offline =
      core::DependencyGraph::FromRules(system->rules());
  for (size_t n = 0; n < session.peer_count(); ++n) {
    auto paths = session.peer(n).MaximalPaths();
    std::string row;
    for (const auto& p : paths) {
      if (!row.empty()) row += ", ";
      row += core::PathToString(p, &*system);
    }
    std::printf("%-4s | %s\n", system->node(n).name.c_str(), row.c_str());
    auto expected = offline.MaximalPathsFrom(static_cast<NodeId>(n));
    std::set<std::vector<NodeId>> a(paths.begin(), paths.end());
    std::set<std::vector<NodeId>> b(expected.begin(), expected.end());
    if (a != b) all_match = false;
  }
  std::printf("\ndiscovery matches offline enumeration: %s\n",
              all_match ? "yes" : "NO");
  std::printf(
      "paper note: the technical report's table is garbled by PDF layout; the\n"
      "entries recoverable from it (ABCA ABE ABCB for A; BE BCAB BCB BCDAB for\n"
      "B; DABE/DABCD/DABCB/DABCA for D) agree with this enumeration.\n");
  return all_match ? 0 : 1;
}
