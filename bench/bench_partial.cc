// A6 — query-dependent update vs global update: the paper distinguishes the
// global update (materialize everything everywhere) from query-dependent
// updates that pull only the relations one local query needs, bounded by the
// SN path mechanism of algorithm A4.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/workload/dblp.h"

using namespace p2pdb;        // NOLINT
using namespace p2pdb::bench;  // NOLINT

int main() {
  const size_t records = FullScale() ? 650 : 200;
  using Kind = workload::TopologySpec::Kind;

  PrintHeader("A6 query-dependent vs global update");
  std::printf("%-12s %5s | %-16s %10s %12s %10s %12s\n", "topology", "nodes",
              "mode", "sim-ms", "messages", "kbytes", "root-tuples");

  for (Kind kind : {Kind::kTree, Kind::kLayeredDag}) {
    workload::ScenarioOptions options;
    options.topology.kind = kind;
    options.topology.nodes = 15;
    options.topology.layers = 4;
    options.records_per_node = records;

    // Global update.
    {
      auto system = workload::BuildScenario(options);
      if (!system.ok()) continue;
      net::SimRuntime rt;
      core::Session session(*system, &rt);
      if (!session.RunDiscovery().ok()) continue;
      rt.stats().Reset();
      uint64_t t0 = rt.NowMicros();
      if (!session.RunUpdate().ok()) continue;
      std::printf("%-12s %5d | %-16s %10.1f %12llu %10llu %12zu\n",
                  workload::TopologyKindName(kind), 15, "global",
                  static_cast<double>(rt.NowMicros() - t0) / 1000.0,
                  static_cast<unsigned long long>(rt.stats().total_messages()),
                  static_cast<unsigned long long>(rt.stats().total_bytes() /
                                                  1024),
                  session.peer(0).db().TotalTuples());
    }
    // Query-dependent: the root only wants its article relation filled
    // (needed by any local query over it); nothing else materializes.
    {
      auto system = workload::BuildScenario(options);
      if (!system.ok()) continue;
      net::SimRuntime rt;
      core::Session session(*system, &rt);
      if (!session.RunDiscovery().ok()) continue;
      rt.stats().Reset();
      uint64_t t0 = rt.NowMicros();
      if (!session
               .RunPartialUpdate(0, {workload::NodeRelationName(0, "art")})
               .ok()) {
        continue;
      }
      std::printf("%-12s %5d | %-16s %10.1f %12llu %10llu %12zu\n",
                  workload::TopologyKindName(kind), 15, "query-dependent",
                  static_cast<double>(rt.NowMicros() - t0) / 1000.0,
                  static_cast<unsigned long long>(rt.stats().total_messages()),
                  static_cast<unsigned long long>(rt.stats().total_bytes() /
                                                  1024),
                  session.peer(0).db().TotalTuples());
    }
  }
  std::printf(
      "\nshape: the query-dependent mode still pulls the root's transitive\n"
      "sources (its answer needs them) but skips materialization at sibling\n"
      "nodes, so intermediate nodes stay lean; with a single consumer the\n"
      "message counts converge, which is why the paper materializes globally\n"
      "when every node will eventually query.\n");
  return 0;
}
