#!/usr/bin/env bash
# Launches an N-peer p2pdb_peerd fleet (one OS process per peer) and drives
# it to the global update fixpoint with p2pdb_fleetctl, verifying every
# peer's database against the in-process oracle.
#
#   scripts/run_fleet.sh [nodes] [dir]
#
#   nodes  fleet size (default 8)
#   dir    working directory for configs/logs/data (default: a fresh mktemp
#          dir, kept on failure for debugging, removed on success)
#
# Environment:
#   BUILD_DIR   build tree holding p2pdb_peerd / p2pdb_fleetctl (default: build)
#   RECORDS     records per node for the generated workload (default: 100)
#   TIMEOUT_MS  fleetctl drive timeout (default: 60000)
set -euo pipefail

NODES="${1:-8}"
BUILD_DIR="${BUILD_DIR:-build}"
RECORDS="${RECORDS:-100}"
TIMEOUT_MS="${TIMEOUT_MS:-60000}"

PEERD="$BUILD_DIR/p2pdb_peerd"
FLEETCTL="$BUILD_DIR/p2pdb_fleetctl"
for bin in "$PEERD" "$FLEETCTL"; do
  if [[ ! -x "$bin" ]]; then
    echo "run_fleet.sh: $bin not found (build first, or set BUILD_DIR)" >&2
    exit 2
  fi
done

CLEAN_DIR=0
if [[ $# -ge 2 ]]; then
  DIR="$2"
  mkdir -p "$DIR"
else
  DIR="$(mktemp -d -t p2pdb_fleet.XXXXXX)"
  CLEAN_DIR=1
fi

echo "== generating $NODES-peer fleet in $DIR"
"$FLEETCTL" gen --out "$DIR" --nodes "$NODES" --records "$RECORDS"

pids=()
cleanup() {
  # Belt and braces: daemons normally exit on the kShutdown frame the drive
  # sends; anything still alive (driver failure) is torn down here.
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

echo "== launching $NODES daemons"
for conf in "$DIR"/peer*.conf; do
  "$PEERD" --config "$conf" >"${conf%.conf}.log" 2>&1 &
  pids+=("$!")
done

echo "== driving fleet to fixpoint"
"$FLEETCTL" drive --dir "$DIR" --timeout "$TIMEOUT_MS" --verify

echo "== waiting for daemons to exit"
fail=0
for pid in "${pids[@]}"; do
  if ! wait "$pid"; then
    fail=1
  fi
done
pids=()
if [[ "$fail" -ne 0 ]]; then
  echo "run_fleet.sh: a daemon exited abnormally (logs in $DIR)" >&2
  exit 1
fi

echo "== fleet converged and shut down cleanly"
if [[ "$CLEAN_DIR" -eq 1 ]]; then
  rm -rf "$DIR"
else
  echo "   artifacts (configs, logs, obs.json dumps) in $DIR"
fi
