#!/usr/bin/env bash
# Builds the Release preset and runs the bench harness, emitting a
# BENCH_<name>.json with per-bench wall-clock and throughput numbers.
#
#   scripts/run_bench.sh [OUT.json] [extra bench_main args...]
#
# Env: P2PDB_BENCH_REPEAT (default 2), P2PDB_BENCH_FULL=1 for paper-scale
# record counts.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

# First arg is the output file unless it is a flag for bench_main.
OUT="BENCH_p2pdb.json"
if [[ $# -gt 0 && $1 != --* ]]; then
  OUT="$1"
  shift
fi

cmake --preset release
cmake --build --preset release -j "$(nproc)" --target bench_main

./build/release/bench_main --out "$OUT" \
    --repeat "${P2PDB_BENCH_REPEAT:-2}" "$@"

echo "bench results: $ROOT/$OUT"
