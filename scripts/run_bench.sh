#!/usr/bin/env bash
# Builds the Release preset and runs one JSON-emitting bench harness,
# writing a BENCH_<name>.json with per-bench wall-clock and throughput.
#
#   scripts/run_bench.sh [OUT.json] [--bench NAME] [extra bench args...]
#
# --bench selects which harness runs (so a single suite, e.g. the recovery
# bench, can be run/emitted without the full update suite):
#   main      end-to-end update suite (default; emits BENCH_p2pdb.json)
#   recovery  WAL/checkpoint/crash-recovery suite (emits BENCH_recovery.json)
#   tcp       frame codec + loopback socket runtime suite (emits BENCH_tcp.json
#             — including the `coalescing` section: frames-per-update with and
#             without batching, and exact-ack vs quiet-window fixpoint latency
#             — plus obs.json, the observability snapshot of the fully traced
#             durable update: metrics registry + trace reports)
#   queries   MVCC query plane suite: QPS quiescent vs concurrent with a
#             propagating update, read-latency percentiles (emits
#             BENCH_queries.json plus its observability snapshot)
# Extra args (e.g. --filter SUBSTR, --repeat N) are passed through.
#
# Env: P2PDB_BENCH_REPEAT (default 2), P2PDB_BENCH_FULL=1 for paper-scale
# record counts.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

# First arg is the output file unless it is a flag.
OUT=""
if [[ $# -gt 0 && $1 != --* ]]; then
  OUT="$1"
  shift
fi

BENCH="main"
ARGS=()
while [[ $# -gt 0 ]]; do
  if [[ $1 == --bench ]]; then
    [[ $# -ge 2 ]] || { echo "error: --bench needs a name" >&2; exit 2; }
    BENCH="$2"
    shift 2
  else
    ARGS+=("$1")
    shift
  fi
done

case "$BENCH" in
  main)     TARGET=bench_main;     DEFAULT_OUT=BENCH_p2pdb.json ;;
  recovery) TARGET=bench_recovery; DEFAULT_OUT=BENCH_recovery.json ;;
  tcp)      TARGET=bench_tcp;      DEFAULT_OUT=BENCH_tcp.json ;;
  queries)  TARGET=bench_queries;  DEFAULT_OUT=BENCH_queries.json ;;
  *)
    echo "error: unknown bench '$BENCH' (expected: main, recovery, tcp, queries)" >&2
    exit 2
    ;;
esac
OUT="${OUT:-$DEFAULT_OUT}"

# The tcp and queries suites also dump the observability snapshot next to
# their bench JSON.
if [[ "$BENCH" == tcp || "$BENCH" == queries ]]; then
  ARGS+=(--obs "${OUT%.json}_obs.json")
fi

cmake --preset release
cmake --build --preset release -j "$(nproc)" --target "$TARGET"

"./build/release/$TARGET" --out "$OUT" \
    --repeat "${P2PDB_BENCH_REPEAT:-2}" "${ARGS[@]+"${ARGS[@]}"}"

case "$OUT" in
  /*) echo "bench results: $OUT" ;;
  *)  echo "bench results: $ROOT/$OUT" ;;
esac
