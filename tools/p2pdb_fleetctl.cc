// p2pdb_fleetctl: provisions and drives fleets of p2pdb_peerd processes.
//
//   p2pdb_fleetctl gen --out DIR [--nodes N | --system FILE] [--host H]
//                      [--super-peer K] [--records R] [--seed S] [--sync full]
//       Writes DIR/fleet.p2p (the system description) and one DIR/peerN.conf
//       per node, with kernel-reserved fixed ports. Without --nodes/--system
//       the Section-2 running example is generated.
//
//   p2pdb_fleetctl drive --dir DIR [--timeout MS] [--session N] [--epoch E]
//                        [--verify] [--no-shutdown]
//       Connects to a running fleet (launched from DIR's configs, e.g. by
//       scripts/run_fleet.sh), runs the bootstrap handshake, discovery, one
//       global update session to fixpoint, prints the per-peer statistics
//       table, and (with --verify) checks every peer's database against an
//       in-process simulation of the same system. Sends kShutdown to the
//       fleet unless --no-shutdown.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/session.h"
#include "src/daemon/config.h"
#include "src/daemon/fleet.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"
#include "src/net/sim_runtime.h"
#include "src/relational/null_iso.h"
#include "src/workload/scenario.h"

namespace {

using p2pdb::NodeId;
using p2pdb::Result;
using p2pdb::Status;

void Usage(std::FILE* out) {
  std::fprintf(out,
               "usage: p2pdb_fleetctl gen --out DIR [--nodes N | --system "
               "FILE]\n"
               "           [--host H] [--super-peer K] [--records R] [--seed "
               "S] [--sync full|nosync]\n"
               "       p2pdb_fleetctl drive --dir DIR [--timeout MS] "
               "[--session N]\n"
               "           [--epoch E] [--verify] [--no-shutdown]\n");
}

int Fail(const Status& status) {
  std::fprintf(stderr, "p2pdb_fleetctl: %s\n", status.ToString().c_str());
  return 1;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Status WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot write " + path);
  out << text;
  return Status::OK();
}

int RunGen(int argc, char** argv) {
  std::string out_dir, system_file, host = "127.0.0.1";
  size_t nodes = 0, records = 100;
  uint64_t seed = 7;
  NodeId super_peer = 0;
  bool no_sync = true;  // Fleets are experiments; opt into fsync with --sync.
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--out" && (v = value())) {
      out_dir = v;
    } else if (arg == "--nodes" && (v = value())) {
      nodes = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--system" && (v = value())) {
      system_file = v;
    } else if (arg == "--host" && (v = value())) {
      host = v;
    } else if (arg == "--super-peer" && (v = value())) {
      super_peer = static_cast<NodeId>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--records" && (v = value())) {
      records = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--seed" && (v = value())) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--sync" && (v = value())) {
      no_sync = (std::string(v) == "nosync");
    } else {
      std::fprintf(stderr, "p2pdb_fleetctl gen: bad argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (out_dir.empty()) {
    Usage(stderr);
    return 2;
  }

  Result<p2pdb::core::P2PSystem> system = [&] {
    if (!system_file.empty()) {
      auto text = ReadFile(system_file);
      if (!text.ok()) return Result<p2pdb::core::P2PSystem>(text.status());
      return p2pdb::lang::ParseSystem(*text);
    }
    if (nodes == 0) return p2pdb::workload::MakeRunningExample();
    p2pdb::workload::ScenarioOptions scenario;
    scenario.topology.kind = p2pdb::workload::TopologySpec::Kind::kTree;
    scenario.topology.nodes = nodes;
    scenario.topology.seed = seed;
    scenario.records_per_node = records;
    scenario.link_overlap_prob = 0.5;
    scenario.seed = seed;
    return p2pdb::workload::BuildScenario(scenario);
  }();
  if (!system.ok()) return Fail(system.status());

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    return Fail(Status::Internal("cannot create " + out_dir + ": " +
                                 ec.message()));
  }
  const std::string fleet_p2p = out_dir + "/fleet.p2p";
  Status wrote = WriteFile(fleet_p2p, p2pdb::lang::PrintSystem(*system));
  if (!wrote.ok()) return Fail(wrote);

  auto ports = p2pdb::daemon::PickFreePorts(host, system->node_count());
  if (!ports.ok()) return Fail(ports.status());
  auto configs = p2pdb::daemon::MakeFleetConfigs(
      *system, fleet_p2p, out_dir, host, *ports, super_peer, no_sync);
  if (!configs.ok()) return Fail(configs.status());
  for (const p2pdb::daemon::PeerdConfig& cfg : *configs) {
    const std::string path =
        out_dir + "/peer" + std::to_string(cfg.node) + ".conf";
    wrote = WriteFile(path, cfg.ToString());
    if (!wrote.ok()) return Fail(wrote);
    std::printf("%s  node %u (%s) on %s\n", path.c_str(), cfg.node,
                cfg.name.c_str(), cfg.listen.ToString().c_str());
  }
  std::printf("%s  %zu-node system, super-peer %u\n", fleet_p2p.c_str(),
              system->node_count(), super_peer);
  return 0;
}

int RunDrive(int argc, char** argv) {
  std::string dir;
  uint64_t timeout_ms = 30'000, session = 1, epoch = 1;
  bool verify = false, shutdown = true;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--dir" && (v = value())) {
      dir = v;
    } else if (arg == "--timeout" && (v = value())) {
      timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--session" && (v = value())) {
      session = std::strtoull(v, nullptr, 10);
    } else if (arg == "--epoch" && (v = value())) {
      epoch = std::strtoull(v, nullptr, 10);
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--no-shutdown") {
      shutdown = false;
    } else {
      std::fprintf(stderr, "p2pdb_fleetctl drive: bad argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (dir.empty()) {
    Usage(stderr);
    return 2;
  }

  // peer0.conf carries everything the controller needs: the system file, the
  // full endpoint table, and the super-peer id.
  auto cfg = p2pdb::daemon::PeerdConfig::Load(dir + "/peer0.conf");
  if (!cfg.ok()) return Fail(cfg.status());
  auto text = ReadFile(cfg->system_file);
  if (!text.ok()) return Fail(text.status());
  auto system = p2pdb::lang::ParseSystem(*text);
  if (!system.ok()) return Fail(system.status());

  p2pdb::daemon::FleetController::Options options;
  options.host = cfg->listen.host;
  options.timeout = std::chrono::milliseconds(timeout_ms);
  options.epoch = epoch;
  auto controller = p2pdb::daemon::FleetController::Connect(
      *system, cfg->peers, cfg->super_peer, options);
  if (!controller.ok()) return Fail(controller.status());
  const std::vector<NodeId> all = (*controller)->AllNodes();

  Status st = (*controller)->Bootstrap(all);
  if (!st.ok()) return Fail(st);
  std::printf("bootstrap: %zu peers accepted\n", all.size());

  st = (*controller)->StartDiscovery(all);
  if (st.ok()) st = (*controller)->AwaitDiscoveryClosed(all);
  if (!st.ok()) return Fail(st);
  std::printf("discovery: closed at every peer\n");

  st = (*controller)->StartUpdate(session);
  std::vector<p2pdb::core::wire::StatusReport> reports;
  if (st.ok()) st = (*controller)->AwaitUpdateFixpoint(all, &reports);
  if (!st.ok()) return Fail(st);

  std::printf("update session %llu reached fixpoint:\n",
              static_cast<unsigned long long>(session));
  std::printf("  %-10s %10s %10s %10s %10s %8s %8s\n", "peer", "tuples",
              "inserted", "joins", "answers", "tokens", "reopens");
  for (const auto& r : reports) {
    std::printf("  %-10s %10llu %10llu %10llu %10llu %8llu %8llu\n",
                r.name.c_str(), static_cast<unsigned long long>(r.tuples),
                static_cast<unsigned long long>(r.tuples_inserted),
                static_cast<unsigned long long>(r.joins_evaluated),
                static_cast<unsigned long long>(r.answers_sent),
                static_cast<unsigned long long>(r.token_passes),
                static_cast<unsigned long long>(r.reopens));
  }

  int exit_code = 0;
  if (verify) {
    // The oracle: the same system run in-process on the deterministic
    // simulator. The fleet's databases must be isomorphic (equal up to a
    // renaming of labelled nulls) node by node.
    p2pdb::net::SimRuntime sim;
    p2pdb::core::Session::Options session_options;
    session_options.super_peer = cfg->super_peer;
    p2pdb::core::Session oracle(*system, &sim, session_options);
    st = oracle.RunDiscovery();
    if (st.ok()) st = oracle.RunUpdate();
    if (!st.ok()) return Fail(st);
    const std::vector<p2pdb::rel::Database> expected =
        oracle.SnapshotDatabases();
    for (NodeId n : all) {
      auto dump = (*controller)->Dump(n);
      if (!dump.ok()) return Fail(dump.status());
      if (p2pdb::rel::DatabasesIsomorphic(*dump, expected[n])) {
        std::printf("verify: node %u (%s) matches the in-process oracle\n", n,
                    system->node(n).name.c_str());
      } else {
        std::fprintf(stderr,
                     "verify: node %u (%s) DIVERGES from the oracle\n", n,
                     system->node(n).name.c_str());
        exit_code = 1;
      }
    }
  }

  if (shutdown) {
    st = (*controller)->SendShutdown(all);
    if (!st.ok()) return Fail(st);
    std::printf("shutdown sent to %zu peers\n", all.size());
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage(stderr);
    return 2;
  }
  const std::string command = argv[1];
  if (command == "gen") return RunGen(argc - 2, argv + 2);
  if (command == "drive") return RunDrive(argc - 2, argv + 2);
  if (command == "--help" || command == "-h") {
    Usage(stdout);
    return 0;
  }
  std::fprintf(stderr, "p2pdb_fleetctl: unknown command '%s'\n",
               command.c_str());
  Usage(stderr);
  return 2;
}
