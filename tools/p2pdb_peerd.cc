// p2pdb_peerd: one peer as one OS process. Reads a single config file (see
// src/daemon/config.h for the format), binds its fixed listen endpoint,
// recovers from its data directory when a checkpoint exists (re-exec after a
// crash), and serves until a kShutdown control frame or SIGTERM/SIGINT.
//
//   p2pdb_peerd --config /path/to/peer2.conf
//
// Fleets are provisioned with `p2pdb_fleetctl gen` (one config per node) and
// launched with scripts/run_fleet.sh.
#include <csignal>
#include <cstdio>
#include <string>
#include <utility>

#include "src/daemon/config.h"
#include "src/daemon/peer_daemon.h"

namespace {

p2pdb::daemon::PeerDaemon* g_daemon = nullptr;

void HandleSignal(int) {
  // RequestStop only stores an atomic flag: async-signal-safe.
  if (g_daemon != nullptr) g_daemon->RequestStop();
}

void Usage(std::FILE* out) {
  std::fprintf(out,
               "usage: p2pdb_peerd --config <file>\n"
               "\n"
               "Runs one P2P database peer as a daemon process, provisioned\n"
               "entirely by its config file (identity, listen endpoint,\n"
               "system description, durable data directory, fleet endpoint\n"
               "table). Exits on SIGTERM/SIGINT or a kShutdown control\n"
               "frame; on a data_dir with an existing checkpoint it recovers\n"
               "checkpoint + WAL before serving.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] != '-' && config_path.empty()) {
      config_path = arg;
    } else {
      std::fprintf(stderr, "p2pdb_peerd: unknown argument '%s'\n",
                   arg.c_str());
      Usage(stderr);
      return 2;
    }
  }
  if (config_path.empty()) {
    Usage(stderr);
    return 2;
  }

  auto config = p2pdb::daemon::PeerdConfig::Load(config_path);
  if (!config.ok()) {
    std::fprintf(stderr, "p2pdb_peerd: %s\n",
                 config.status().ToString().c_str());
    return 1;
  }
  auto daemon = p2pdb::daemon::PeerDaemon::Start(std::move(*config));
  if (!daemon.ok()) {
    std::fprintf(stderr, "p2pdb_peerd: %s\n",
                 daemon.status().ToString().c_str());
    return 1;
  }

  g_daemon = daemon->get();
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  p2pdb::Status served = (*daemon)->Serve();
  g_daemon = nullptr;
  if (!served.ok()) {
    std::fprintf(stderr, "p2pdb_peerd: %s\n", served.ToString().c_str());
    return 1;
  }
  return 0;
}
