// Coordination-rule generation between heterogeneous node schemas: for a
// dependency edge head -> body, emit the rule that translates the body node's
// publications into the head node's schema. The rec -> {article, pub-wrote}
// directions require existential head variables (unknown ids and years),
// exercising the algorithm's labeled-null machinery; article <-> pub-wrote
// use conjunctive heads/bodies.
#ifndef P2PDB_WORKLOAD_RULEGEN_H_
#define P2PDB_WORKLOAD_RULEGEN_H_

#include <string>

#include "src/core/system.h"
#include "src/workload/dblp.h"

namespace p2pdb::workload {

/// Builds the translation rule for dependency edge head -> body (data flows
/// body -> head). `rule_id` must be unique network-wide.
core::CoordinationRule MakeTranslationRule(std::string rule_id, NodeId head,
                                           SchemaStyle head_style, NodeId body,
                                           SchemaStyle body_style);

}  // namespace p2pdb::workload

#endif  // P2PDB_WORKLOAD_RULEGEN_H_
