// Query workload generator: a deterministic mixed stream of point lookups
// and conjunctive queries over a scenario's node databases, for exercising
// the MVCC query plane (tests and bench_queries). Reads are generated
// against the *initial* instances, so they stay valid — and monotonically
// growing — while an update propagates underneath.
#ifndef P2PDB_WORKLOAD_QUERIES_H_
#define P2PDB_WORKLOAD_QUERIES_H_

#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/relational/cq.h"
#include "src/relational/tuple.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace p2pdb::workload {

struct QueryWorkloadOptions {
  /// Number of operations generated; runners cycle the list for longer runs.
  size_t ops = 1024;
  /// Fraction of ops that are point lookups (the rest are CQs: single-atom
  /// selections and two-atom joins in equal measure).
  double point_fraction = 0.5;
  /// Fraction of point lookups aimed at tuples that do not exist.
  double miss_fraction = 0.2;
  uint64_t seed = 21;
};

/// One generated read.
struct QueryOp {
  NodeId node = 0;
  /// Point lookup when true (relation/key set); CQ otherwise (cq set).
  bool is_point = false;
  std::string relation;
  rel::Tuple key;
  bool expect_hit = false;
  rel::ConjunctiveQuery cq;
};

/// Generates `options.ops` reads spread across the system's nodes. Every
/// produced CQ passes CheckSafe; every point key targets (or deliberately
/// misses) the node's initial instance. Fails if the system has no node
/// with data to read.
Result<std::vector<QueryOp>> BuildQueryWorkload(
    const core::P2PSystem& system, const QueryWorkloadOptions& options);

}  // namespace p2pdb::workload

#endif  // P2PDB_WORKLOAD_QUERIES_H_
