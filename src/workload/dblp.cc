#include "src/workload/dblp.h"

#include "src/util/string_util.h"

namespace p2pdb::workload {

const char* SchemaStyleName(SchemaStyle style) {
  switch (style) {
    case SchemaStyle::kArticle:
      return "article";
    case SchemaStyle::kPubWrote:
      return "pub-wrote";
    case SchemaStyle::kRec:
      return "rec";
  }
  return "?";
}

SchemaStyle StyleForNode(NodeId node) {
  return static_cast<SchemaStyle>(node % 3);
}

std::vector<PubRecord> GeneratePubs(int64_t first_id, size_t count,
                                    size_t author_pool, Rng* rng) {
  std::vector<PubRecord> out;
  out.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    PubRecord rec;
    rec.id = first_id + static_cast<int64_t>(k);
    rec.title = StrFormat("title-%lld", static_cast<long long>(rec.id));
    rec.author = StrFormat(
        "author-%llu",
        static_cast<unsigned long long>(rng->NextBelow(author_pool)));
    rec.year = 1990 + static_cast<int64_t>(rng->NextBelow(15));
    out.push_back(std::move(rec));
  }
  return out;
}

std::string NodeRelationName(NodeId node, const std::string& base) {
  return StrFormat("n%u_%s", node, base.c_str());
}

rel::Database MakeNodeSchema(NodeId node, SchemaStyle style) {
  rel::Database db;
  switch (style) {
    case SchemaStyle::kArticle:
      (void)db.CreateRelation(rel::RelationSchema(
          NodeRelationName(node, "art"), {"id", "title", "author", "year"}));
      break;
    case SchemaStyle::kPubWrote:
      (void)db.CreateRelation(rel::RelationSchema(
          NodeRelationName(node, "pub"), {"id", "title", "year"}));
      (void)db.CreateRelation(rel::RelationSchema(
          NodeRelationName(node, "wrote"), {"author", "id"}));
      break;
    case SchemaStyle::kRec:
      (void)db.CreateRelation(rel::RelationSchema(
          NodeRelationName(node, "rec"), {"author", "title"}));
      break;
  }
  return db;
}

Status InsertRecords(rel::Database* db, NodeId node, SchemaStyle style,
                     const std::vector<PubRecord>& records) {
  for (const PubRecord& r : records) {
    switch (style) {
      case SchemaStyle::kArticle: {
        P2PDB_RETURN_IF_ERROR(
            db->Insert(NodeRelationName(node, "art"),
                       rel::Tuple({rel::Value::Int(r.id),
                                   rel::Value::Str(r.title),
                                   rel::Value::Str(r.author),
                                   rel::Value::Int(r.year)}))
                .status());
        break;
      }
      case SchemaStyle::kPubWrote: {
        P2PDB_RETURN_IF_ERROR(
            db->Insert(NodeRelationName(node, "pub"),
                       rel::Tuple({rel::Value::Int(r.id),
                                   rel::Value::Str(r.title),
                                   rel::Value::Int(r.year)}))
                .status());
        P2PDB_RETURN_IF_ERROR(
            db->Insert(NodeRelationName(node, "wrote"),
                       rel::Tuple({rel::Value::Str(r.author),
                                   rel::Value::Int(r.id)}))
                .status());
        break;
      }
      case SchemaStyle::kRec: {
        P2PDB_RETURN_IF_ERROR(
            db->Insert(NodeRelationName(node, "rec"),
                       rel::Tuple({rel::Value::Str(r.author),
                                   rel::Value::Str(r.title)}))
                .status());
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace p2pdb::workload
