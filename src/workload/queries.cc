#include "src/workload/queries.h"

#include <iterator>

namespace p2pdb::workload {

namespace {

/// A relation with data at some node — the population reads are drawn from.
struct ReadTarget {
  NodeId node;
  const rel::Relation* relation;
  std::string name;
};

const rel::Tuple& PickTuple(const rel::Relation& relation, Rng* rng) {
  auto it = relation.tuples().begin();
  std::advance(it, static_cast<long>(rng->NextBelow(relation.size())));
  return *it;
}

/// Single-atom selection: R(c, X1, ..., Xk-1) projected onto all variables,
/// with c drawn from a real tuple so the answer is non-empty.
rel::ConjunctiveQuery MakeSelection(const ReadTarget& target, Rng* rng) {
  const rel::Tuple& sample = PickTuple(*target.relation, rng);
  rel::ConjunctiveQuery cq;
  rel::Atom atom;
  atom.relation = target.name;
  atom.terms.push_back(rel::Term::Const(sample.at(0)));
  for (size_t i = 1; i < sample.arity(); ++i) {
    std::string var = "X" + std::to_string(i);
    atom.terms.push_back(rel::Term::Var(var));
    cq.head_vars.push_back(var);
  }
  if (cq.head_vars.empty()) {
    // Arity-1 relation: project the (constant-matched) single column through
    // a variable instead, so the query stays safe and non-boolean.
    atom.terms[0] = rel::Term::Var("X0");
    cq.head_vars.push_back("X0");
  }
  cq.atoms.push_back(std::move(atom));
  return cq;
}

/// Selective self-join: R(c, X1, .., Xk-1) ⋈ R(Y0, .., Xj, .., Yk-1) on
/// column j — "other tuples agreeing with this one on column j" (e.g. same
/// author, same year), answered via the column index on the snapshot.
rel::ConjunctiveQuery MakeJoin(const ReadTarget& target, Rng* rng) {
  const rel::Tuple& sample = PickTuple(*target.relation, rng);
  size_t arity = sample.arity();
  size_t j = 1 + rng->NextBelow(arity - 1);
  rel::ConjunctiveQuery cq;
  rel::Atom left;
  left.relation = target.name;
  left.terms.push_back(rel::Term::Const(sample.at(0)));
  for (size_t i = 1; i < arity; ++i) {
    left.terms.push_back(rel::Term::Var("X" + std::to_string(i)));
  }
  rel::Atom right;
  right.relation = target.name;
  for (size_t i = 0; i < arity; ++i) {
    right.terms.push_back(i == j ? rel::Term::Var("X" + std::to_string(j))
                                 : rel::Term::Var("Y" + std::to_string(i)));
  }
  cq.head_vars = {"X" + std::to_string(j), "Y0"};
  cq.atoms.push_back(std::move(left));
  cq.atoms.push_back(std::move(right));
  return cq;
}

}  // namespace

Result<std::vector<QueryOp>> BuildQueryWorkload(
    const core::P2PSystem& system, const QueryWorkloadOptions& options) {
  std::vector<ReadTarget> targets;
  for (const core::NodeInfo& info : system.nodes()) {
    for (const auto& [name, relation] : info.db.relations()) {
      if (!relation.empty()) targets.push_back({info.id, &relation, name});
    }
  }
  if (targets.empty()) {
    return Status::InvalidArgument(
        "query workload needs at least one non-empty relation");
  }

  Rng rng(options.seed);
  std::vector<QueryOp> ops;
  ops.reserve(options.ops);
  for (size_t i = 0; i < options.ops; ++i) {
    const ReadTarget& target = targets[rng.NextBelow(targets.size())];
    QueryOp op;
    op.node = target.node;
    op.relation = target.name;
    if (rng.NextBool(options.point_fraction)) {
      op.is_point = true;
      op.key = PickTuple(*target.relation, &rng);
      if (rng.NextBool(options.miss_fraction)) {
        // Deliberate miss: no generator string ever starts with "~miss:", and
        // the chase only moves existing values around, so this key can never
        // appear — not even after updates propagate.
        (*op.key.mutable_values())[0] =
            rel::Value::Str("~miss:" + std::to_string(i));
        op.expect_hit = false;
      } else {
        op.expect_hit = true;
      }
    } else if (target.relation->schema().arity() >= 2 && rng.NextBool(0.5)) {
      op.cq = MakeJoin(target, &rng);
    } else {
      op.cq = MakeSelection(target, &rng);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace p2pdb::workload
