#include "src/workload/topology.h"

#include "src/core/dependency.h"
#include "src/util/rng.h"

namespace p2pdb::workload {

Result<std::vector<Edge>> GenerateTopology(const TopologySpec& spec) {
  if (spec.nodes < 2) {
    return Status::InvalidArgument("topology needs at least 2 nodes");
  }
  std::vector<Edge> edges;
  Rng rng(spec.seed);
  switch (spec.kind) {
    case TopologySpec::Kind::kTree: {
      if (spec.fanout == 0) return Status::InvalidArgument("fanout 0");
      for (NodeId child = 1; child < spec.nodes; ++child) {
        NodeId parent = (child - 1) / spec.fanout;
        edges.push_back({parent, child});
      }
      break;
    }
    case TopologySpec::Kind::kChain: {
      for (NodeId n = 0; n + 1 < spec.nodes; ++n) edges.push_back({n, n + 1});
      break;
    }
    case TopologySpec::Kind::kRing: {
      for (NodeId n = 0; n + 1 < spec.nodes; ++n) edges.push_back({n, n + 1});
      edges.push_back({static_cast<NodeId>(spec.nodes - 1), 0});
      break;
    }
    case TopologySpec::Kind::kClique: {
      for (NodeId a = 0; a < spec.nodes; ++a) {
        for (NodeId b = 0; b < spec.nodes; ++b) {
          if (a != b) edges.push_back({a, b});
        }
      }
      break;
    }
    case TopologySpec::Kind::kLayeredDag: {
      if (spec.layers < 2) return Status::InvalidArgument("need >= 2 layers");
      // Layer 0 = {0}; remaining nodes split evenly over layers 1..L-1.
      std::vector<std::vector<NodeId>> layers(spec.layers);
      layers[0].push_back(0);
      size_t remaining = spec.nodes - 1;
      size_t per_layer = remaining / (spec.layers - 1);
      size_t extra = remaining % (spec.layers - 1);
      NodeId next = 1;
      for (size_t l = 1; l < spec.layers; ++l) {
        size_t width = per_layer + (l <= extra ? 1 : 0);
        for (size_t k = 0; k < width && next < spec.nodes; ++k) {
          layers[l].push_back(next++);
        }
      }
      std::set<Edge> edge_set;
      for (size_t l = 0; l + 1 < spec.layers; ++l) {
        if (layers[l + 1].empty()) break;
        // Reachability spine: every next-layer node has an incoming edge.
        for (size_t k = 0; k < layers[l + 1].size(); ++k) {
          NodeId head = layers[l][k % layers[l].size()];
          edge_set.insert({head, layers[l + 1][k]});
        }
        // Extra pulls per head node.
        for (NodeId head : layers[l]) {
          for (size_t d = 0; d < spec.layer_degree; ++d) {
            NodeId body =
                layers[l + 1][rng.NextBelow(layers[l + 1].size())];
            edge_set.insert({head, body});
          }
        }
      }
      edges.assign(edge_set.begin(), edge_set.end());
      break;
    }
    case TopologySpec::Kind::kRandom: {
      std::set<Edge> edge_set;
      // Spine from node 0 so every node participates in the update.
      for (NodeId child = 1; child < spec.nodes; ++child) {
        NodeId parent = static_cast<NodeId>(rng.NextBelow(child));
        edge_set.insert({parent, child});
      }
      for (NodeId a = 0; a < spec.nodes; ++a) {
        for (NodeId b = 0; b < spec.nodes; ++b) {
          if (a != b && rng.NextBool(spec.edge_prob)) edge_set.insert({a, b});
        }
      }
      edges.assign(edge_set.begin(), edge_set.end());
      break;
    }
  }
  return edges;
}

size_t TopologyDepth(const std::vector<Edge>& edges) {
  std::set<core::Edge> set(edges.begin(), edges.end());
  return core::DependencyGraph(set).DepthFrom(0);
}

const char* TopologyKindName(TopologySpec::Kind kind) {
  switch (kind) {
    case TopologySpec::Kind::kTree:
      return "tree";
    case TopologySpec::Kind::kLayeredDag:
      return "layered-dag";
    case TopologySpec::Kind::kClique:
      return "clique";
    case TopologySpec::Kind::kChain:
      return "chain";
    case TopologySpec::Kind::kRing:
      return "ring";
    case TopologySpec::Kind::kRandom:
      return "random";
  }
  return "?";
}

}  // namespace p2pdb::workload
