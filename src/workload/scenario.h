// Scenario builder: assembles a full P2P system (topology + schemas + data +
// coordination rules) for the experiments of Section 5, plus the paper's
// Section-2 running example.
#ifndef P2PDB_WORKLOAD_SCENARIO_H_
#define P2PDB_WORKLOAD_SCENARIO_H_

#include "src/core/dynamics.h"
#include "src/core/system.h"
#include "src/workload/dblp.h"
#include "src/workload/topology.h"

namespace p2pdb::workload {

struct ScenarioOptions {
  TopologySpec topology;
  /// "about 1000 per node" in the paper.
  size_t records_per_node = 1000;
  /// Probability that two nodes linked by a coordination rule share data
  /// (first distribution: 0; second distribution: 0.5).
  double link_overlap_prob = 0.0;
  /// Fraction of the body node's records copied to the head when they do.
  double overlap_fraction = 0.5;
  size_t author_pool = 200;
  uint64_t seed = 7;
};

/// Builds nodes (3 schema styles round-robin), deterministic publication data
/// with the requested overlap distribution, and one translation rule per
/// dependency edge.
Result<core::P2PSystem> BuildScenario(const ScenarioOptions& options);

/// The running example of Section 2: nodes A..E, relations a, b, c, f, d, e,
/// rules r1..r7, plus a few seed facts at E (source) and B so that an update
/// has data to move.
Result<core::P2PSystem> MakeRunningExample();

/// Options for the crash-restart churn generator.
struct ChurnPlanOptions {
  /// How many distinct peers crash.
  size_t crashes = 1;
  /// Simulated time of the first crash (mid-propagation for typical runs).
  uint64_t crash_at_micros = 2'000;
  /// How long each crashed peer stays down before restarting.
  uint64_t downtime_micros = 5'000;
  /// Spacing between successive victims' crash times.
  uint64_t stagger_micros = 1'000;
  uint64_t seed = 13;
};

/// Builds a crash/restart script for the experiments: victims are drawn
/// (deterministically from the seed) from the peers that participate in the
/// super-peer's update — nodes reachable from it over dependency edges — so
/// every crash actually interrupts propagation.
Result<core::ChurnScript> PlanCrashRestart(const core::P2PSystem& system,
                                           NodeId super_peer,
                                           const ChurnPlanOptions& options);

}  // namespace p2pdb::workload

#endif  // P2PDB_WORKLOAD_SCENARIO_H_
