// Synthetic DBLP-like publication data. The paper's experiments use ~20000
// publication records from the DBLP XML dump, ~1000 per node, organised in 3
// different relational schemas; this generator produces records with the same
// structure (publication id, title, author, year) deterministically from a
// seed, and materializes them under one of three schema styles.
//
// Relation names are prefixed with the node name ("n<id>_") because node
// signatures must be pairwise disjoint (Definition 1); shared constants
// (author names, titles, ids) play the role of URIs.
#ifndef P2PDB_WORKLOAD_DBLP_H_
#define P2PDB_WORKLOAD_DBLP_H_

#include <string>
#include <vector>

#include "src/relational/database.h"
#include "src/util/ids.h"
#include "src/util/rng.h"

namespace p2pdb::workload {

/// One publication record (the unit of data exchange).
struct PubRecord {
  int64_t id = 0;
  std::string title;
  std::string author;
  int64_t year = 0;
};

/// The three relational schemas of the experiment.
enum class SchemaStyle {
  /// art(id, title, author, year) — one wide relation.
  kArticle = 0,
  /// pub(id, title, year) + wrote(author, id) — normalized.
  kPubWrote = 1,
  /// rec(author, title) — lossy author-title pairs.
  kRec = 2,
};

const char* SchemaStyleName(SchemaStyle style);
SchemaStyle StyleForNode(NodeId node);

/// Deterministically generates `count` records starting at global id
/// `first_id`, drawing authors from a pool of `author_pool` names.
std::vector<PubRecord> GeneratePubs(int64_t first_id, size_t count,
                                    size_t author_pool, Rng* rng);

/// Relation name for a style's relations at a node ("n3_art", "n3_pub", ...).
std::string NodeRelationName(NodeId node, const std::string& base);

/// Creates the node's schema (empty relations) for a style.
rel::Database MakeNodeSchema(NodeId node, SchemaStyle style);

/// Inserts records into a node database laid out per its style.
Status InsertRecords(rel::Database* db, NodeId node, SchemaStyle style,
                     const std::vector<PubRecord>& records);

}  // namespace p2pdb::workload

#endif  // P2PDB_WORKLOAD_DBLP_H_
