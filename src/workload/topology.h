// Topology generators for the experiment workloads: trees, layered acyclic
// graphs and cliques (the three topologies of Section 5's experiments), plus
// chains, rings and random graphs used by property tests. Edges are dependency
// edges head -> body; node 0 is always the super-peer and can reach every
// node, so a single global update covers the network.
#ifndef P2PDB_WORKLOAD_TOPOLOGY_H_
#define P2PDB_WORKLOAD_TOPOLOGY_H_

#include <set>
#include <utility>
#include <vector>

#include "src/util/ids.h"
#include "src/util/status.h"

namespace p2pdb::workload {

using Edge = std::pair<NodeId, NodeId>;

struct TopologySpec {
  enum class Kind { kTree, kLayeredDag, kClique, kChain, kRing, kRandom };
  Kind kind = Kind::kTree;
  size_t nodes = 7;
  /// Tree fan-out.
  size_t fanout = 2;
  /// Layered DAG: number of layers (node 0 is the single layer-0 node) and
  /// how many next-layer sources each node pulls from.
  size_t layers = 3;
  size_t layer_degree = 2;
  /// Random graph edge probability (on top of a reachability spine).
  double edge_prob = 0.15;
  uint64_t seed = 17;
};

/// Generates the dependency edge set for a spec. Node ids are 0..nodes-1.
Result<std::vector<Edge>> GenerateTopology(const TopologySpec& spec);

/// Longest simple dependency path length from node 0 (the experiment's
/// "depth of the structure").
size_t TopologyDepth(const std::vector<Edge>& edges);

const char* TopologyKindName(TopologySpec::Kind kind);

}  // namespace p2pdb::workload

#endif  // P2PDB_WORKLOAD_TOPOLOGY_H_
