#include "src/workload/rulegen.h"

namespace p2pdb::workload {

namespace {

rel::Term V(const char* name) { return rel::Term::Var(name); }

rel::Atom MakeAtom(NodeId node, const char* base,
                   std::vector<rel::Term> terms) {
  rel::Atom a;
  a.relation = NodeRelationName(node, base);
  a.terms = std::move(terms);
  return a;
}

// Body atoms exposing (I, T, A, Y) as available for the style; kRec binds
// only (A, T).
std::vector<rel::Atom> BodyAtoms(NodeId node, SchemaStyle style) {
  switch (style) {
    case SchemaStyle::kArticle:
      return {MakeAtom(node, "art", {V("I"), V("T"), V("A"), V("Y")})};
    case SchemaStyle::kPubWrote:
      return {MakeAtom(node, "pub", {V("I"), V("T"), V("Y")}),
              MakeAtom(node, "wrote", {V("A"), V("I")})};
    case SchemaStyle::kRec:
      return {MakeAtom(node, "rec", {V("A"), V("T")})};
  }
  return {};
}

// Head atoms for the style. When the body is kRec, I and Y are unbound and
// become existential variables (fresh labeled nulls at update time).
std::vector<rel::Atom> HeadAtoms(NodeId node, SchemaStyle style) {
  switch (style) {
    case SchemaStyle::kArticle:
      return {MakeAtom(node, "art", {V("I"), V("T"), V("A"), V("Y")})};
    case SchemaStyle::kPubWrote:
      return {MakeAtom(node, "pub", {V("I"), V("T"), V("Y")}),
              MakeAtom(node, "wrote", {V("A"), V("I")})};
    case SchemaStyle::kRec:
      return {MakeAtom(node, "rec", {V("A"), V("T")})};
  }
  return {};
}

}  // namespace

core::CoordinationRule MakeTranslationRule(std::string rule_id, NodeId head,
                                           SchemaStyle head_style, NodeId body,
                                           SchemaStyle body_style) {
  core::CoordinationRule rule;
  rule.id = std::move(rule_id);
  rule.head_node = head;
  rule.head_atoms = HeadAtoms(head, head_style);
  core::CoordinationRule::BodyPart part;
  part.node = body;
  part.atoms = BodyAtoms(body, body_style);
  rule.body.push_back(std::move(part));
  return rule;
}

}  // namespace p2pdb::workload
