#include "src/workload/scenario.h"

#include <algorithm>

#include "src/core/dependency.h"
#include "src/lang/parser.h"
#include "src/util/string_util.h"
#include "src/workload/rulegen.h"

namespace p2pdb::workload {

Result<core::P2PSystem> BuildScenario(const ScenarioOptions& options) {
  auto edges = GenerateTopology(options.topology);
  if (!edges.ok()) return edges.status();
  size_t n = options.topology.nodes;
  Rng rng(options.seed);

  // Per-node record sets: a disjoint base range per node, then overlap copied
  // along rule links with the requested probability.
  std::vector<std::vector<PubRecord>> records(n);
  for (NodeId node = 0; node < n; ++node) {
    Rng node_rng = rng.Fork();
    records[node] = GeneratePubs(
        static_cast<int64_t>(node) * static_cast<int64_t>(options.records_per_node),
        options.records_per_node, options.author_pool, &node_rng);
  }
  for (const Edge& e : *edges) {
    if (!rng.NextBool(options.link_overlap_prob)) continue;
    // The head node's initial data intersects the body node's: copy a prefix
    // fraction of the body records into the head set.
    size_t share = static_cast<size_t>(
        static_cast<double>(records[e.second].size()) *
        options.overlap_fraction);
    for (size_t k = 0; k < share; ++k) {
      records[e.first].push_back(records[e.second][k]);
    }
  }

  core::P2PSystem system;
  for (NodeId node = 0; node < n; ++node) {
    SchemaStyle style = StyleForNode(node);
    rel::Database db = MakeNodeSchema(node, style);
    P2PDB_RETURN_IF_ERROR(InsertRecords(&db, node, style, records[node]));
    P2PDB_RETURN_IF_ERROR(system.AddNode(StrFormat("N%u", node), std::move(db)));
  }
  size_t rule_seq = 0;
  for (const Edge& e : *edges) {
    core::CoordinationRule rule = MakeTranslationRule(
        StrFormat("r%zu_%u_%u", rule_seq++, e.first, e.second), e.first,
        StyleForNode(e.first), e.second, StyleForNode(e.second));
    P2PDB_RETURN_IF_ERROR(system.AddRule(std::move(rule)));
  }
  return system;
}

Result<core::P2PSystem> MakeRunningExample() {
  // The example system of Section 2 verbatim (r2's "b(Y), Z" is the paper's
  // typo for b(Y, Z)), with seed facts so updates move data: E holds base
  // pairs and B holds one pair enabling r4's inequality join.
  static const char kExample[] = R"(
node A { rel a(x, y); }
node B {
  rel b(x, y);
  fact b("u", "w");
}
node C {
  rel c(x, y);
  rel f(x);
}
node D { rel d(x, y); }
node E {
  rel e(x, y);
  fact e("u", "v");
  fact e("v", "w");
  fact e("w", "u");
}
rule r1: E.e(X, Y) => B.b(X, Y);
rule r2: B.b(X, Y), B.b(Y, Z) => C.c(X, Z);
rule r3: C.c(X, Y), C.c(Y, Z) => B.b(X, Z);
rule r4: B.b(X, Y), B.b(X, Z), X != Z => A.a(X, Y);
rule r5: A.a(X, Y) => C.f(X);
rule r6: A.a(X, Y) => D.d(Y, X);
rule r7: D.d(X, Y), D.d(Y, Z) => C.c(X, Y);
)";
  return lang::ParseSystem(kExample);
}

Result<core::ChurnScript> PlanCrashRestart(const core::P2PSystem& system,
                                           NodeId super_peer,
                                           const ChurnPlanOptions& options) {
  if (super_peer >= system.node_count()) {
    return Status::InvalidArgument("super peer out of range");
  }
  core::DependencyGraph graph =
      core::DependencyGraph::FromRules(system.rules());
  std::set<NodeId> participants = graph.ReachableFrom(super_peer);
  participants.erase(super_peer);  // The initiator itself never crashes.
  std::vector<NodeId> candidates(participants.begin(), participants.end());
  if (candidates.empty()) {
    return Status::InvalidArgument(
        "no crash candidates: the super-peer reaches no other node");
  }
  Rng rng(options.seed);
  rng.Shuffle(&candidates);

  size_t crashes = std::min(options.crashes, candidates.size());
  core::ChurnScript script;
  for (size_t i = 0; i < crashes; ++i) {
    uint64_t crash_at = options.crash_at_micros +
                        static_cast<uint64_t>(i) * options.stagger_micros;
    script.push_back(core::ChurnEvent::Crash(crash_at, candidates[i]));
    script.push_back(core::ChurnEvent::Restart(
        crash_at + options.downtime_micros, candidates[i]));
  }
  // Stable: a zero-downtime crash/restart pair shares a timestamp and must
  // keep its crash-before-restart push order.
  std::stable_sort(script.begin(), script.end(),
                   [](const core::ChurnEvent& a, const core::ChurnEvent& b) {
                     return a.at_micros < b.at_micros;
                   });
  return script;
}

}  // namespace p2pdb::workload
