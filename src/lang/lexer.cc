#include "src/lang/lexer.h"

#include <cctype>

#include "src/util/string_util.h"

namespace p2pdb::lang {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kString:
      return "string";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemi:
      return "';'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kArrow:
      return "'=>'";
    case TokenKind::kTurnstile:
      return "':-'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kEof:
      return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  int line = 1;
  int column = 1;
  size_t i = 0;
  auto make = [&](TokenKind kind) {
    Token t;
    t.kind = kind;
    t.line = line;
    t.column = column;
    return t;
  };
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n && i < input.size(); ++k) {
      if (input[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };

  while (i < input.size()) {
    char c = input[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '#') {
      while (i < input.size() && input[i] != '\n') advance(1);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      Token t = make(TokenKind::kIdent);
      size_t start = i;
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_')) {
        advance(1);
      }
      t.text = input.substr(start, i - start);
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      Token t = make(TokenKind::kInt);
      size_t start = i;
      advance(1);
      while (i < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[i]))) {
        advance(1);
      }
      t.int_value = std::stoll(input.substr(start, i - start));
      out.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      Token t = make(TokenKind::kString);
      advance(1);
      std::string value;
      bool closed = false;
      while (i < input.size()) {
        if (input[i] == '"') {
          closed = true;
          advance(1);
          break;
        }
        if (input[i] == '\\' && i + 1 < input.size()) {
          advance(1);
          value.push_back(input[i]);
          advance(1);
          continue;
        }
        value.push_back(input[i]);
        advance(1);
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string at line %d", t.line));
      }
      t.text = std::move(value);
      out.push_back(std::move(t));
      continue;
    }
    // Punctuation, longest match first.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < input.size() && input[i + 1] == b;
    };
    if (two('=', '>')) {
      out.push_back(make(TokenKind::kArrow));
      advance(2);
      continue;
    }
    if (two(':', '-')) {
      out.push_back(make(TokenKind::kTurnstile));
      advance(2);
      continue;
    }
    if (two('!', '=')) {
      out.push_back(make(TokenKind::kNe));
      advance(2);
      continue;
    }
    if (two('<', '=')) {
      out.push_back(make(TokenKind::kLe));
      advance(2);
      continue;
    }
    if (two('>', '=')) {
      out.push_back(make(TokenKind::kGe));
      advance(2);
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '(':
        kind = TokenKind::kLParen;
        break;
      case ')':
        kind = TokenKind::kRParen;
        break;
      case '{':
        kind = TokenKind::kLBrace;
        break;
      case '}':
        kind = TokenKind::kRBrace;
        break;
      case ',':
        kind = TokenKind::kComma;
        break;
      case ';':
        kind = TokenKind::kSemi;
        break;
      case ':':
        kind = TokenKind::kColon;
        break;
      case '.':
        kind = TokenKind::kDot;
        break;
      case '=':
        kind = TokenKind::kEq;
        break;
      case '<':
        kind = TokenKind::kLt;
        break;
      case '>':
        kind = TokenKind::kGt;
        break;
      default:
        return Status::ParseError(
            StrFormat("unexpected character '%c' at line %d:%d", c, line,
                      column));
    }
    out.push_back(make(kind));
    advance(1);
  }
  out.push_back(make(TokenKind::kEof));
  return out;
}

}  // namespace p2pdb::lang
