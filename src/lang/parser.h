// Parser for the P2P system description language.
//
// Grammar (';' separates declarations, '#' comments):
//
//   system     := { node_decl | rule_decl }
//   node_decl  := "node" IDENT "{" { rel_decl | fact_decl } "}"
//   rel_decl   := "rel" IDENT "(" attr { "," attr } ")" ";"
//   fact_decl  := "fact" IDENT "(" value { "," value } ")" ";"
//   rule_decl  := "rule" IDENT ":" body "=>" head ";"
//   body       := element { "," element }
//   element    := NODE "." atom | builtin
//   head       := NODE "." atom { "," NODE "." atom }    (one node)
//   atom       := IDENT "(" term { "," term } ")"
//   builtin    := term OP term           OP in = != < <= > >=
//   term       := VARIABLE | value       (capitalized identifier = variable)
//   value      := STRING | INT | lowercase identifier (a string constant)
//
// Queries use datalog syntax:  q(X, Y) :- a(X, Y), X != Y
#ifndef P2PDB_LANG_PARSER_H_
#define P2PDB_LANG_PARSER_H_

#include <string>

#include "src/core/dynamics.h"
#include "src/core/session.h"
#include "src/core/system.h"
#include "src/relational/cq.h"
#include "src/util/status.h"

namespace p2pdb::lang {

/// Parses a full system description (nodes, schemas, facts, rules).
Result<core::P2PSystem> ParseSystem(const std::string& input);

/// Parses a local query, e.g. "q(X, Y) :- a(X, Y), X != Y".
Result<rel::ConjunctiveQuery> ParseQuery(const std::string& input);

/// Parses a rules-only document (the super-peer's broadcast file, Section 5)
/// and resolves node names against an existing system. Does not mutate the
/// system; callers add the rules via P2PSystem::AddRule or broadcast them as
/// addLink changes.
Result<std::vector<core::CoordinationRule>> ParseRules(
    const core::P2PSystem& system, const std::string& input);

/// The super-peer's rule broadcast (Section 5): parses a rules-only document
/// against `system` and schedules every rule as an addLink change arriving at
/// its head node at `at_micros`. "Thus, one peer can change the network
/// topology at runtime." Returns the change script for envelope checking.
Result<core::ChangeScript> BroadcastRules(const core::P2PSystem& system,
                                          core::Session* session,
                                          const std::string& rules_text,
                                          uint64_t at_micros);

}  // namespace p2pdb::lang

#endif  // P2PDB_LANG_PARSER_H_
