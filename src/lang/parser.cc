#include "src/lang/parser.h"

#include <cctype>
#include <map>

#include "src/lang/lexer.h"
#include "src/util/string_util.h"

namespace p2pdb::lang {

namespace {

bool IsVariableName(const std::string& name) {
  return !name.empty() && std::isupper(static_cast<unsigned char>(name[0]));
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  // A parsed rule before node names are resolved against a system.
  struct PendingRule {
    std::string id;
    std::string head_node;
    std::vector<std::pair<std::string, rel::Atom>> body_atoms;
    std::vector<rel::Builtin> builtins;
    std::vector<rel::Atom> head_atoms;
    int line = 0;
  };

  Result<core::P2PSystem> ParseSystem() {
    core::P2PSystem system;
    // Rules may reference nodes declared later, so collect them first and
    // register at the end.
    std::vector<PendingRule> pending;

    while (!At(TokenKind::kEof)) {
      if (AtKeyword("node")) {
        P2PDB_RETURN_IF_ERROR(ParseNode(&system));
      } else if (AtKeyword("rule")) {
        PendingRule rule;
        rule.line = Peek().line;
        P2PDB_RETURN_IF_ERROR(ParseRule(&rule.id, &rule.head_node,
                                        &rule.body_atoms, &rule.builtins,
                                        &rule.head_atoms));
        pending.push_back(std::move(rule));
      } else {
        return Error("expected 'node' or 'rule'");
      }
    }

    for (PendingRule& p : pending) {
      auto rule = ResolvePendingRule(system, std::move(p));
      if (!rule.ok()) return rule.status();
      P2PDB_RETURN_IF_ERROR(system.AddRule(rule.MoveValue()));
    }
    return system;
  }

  /// Parses a document consisting solely of rule declarations (the format a
  /// super-peer broadcasts per Section 5) and resolves them against an
  /// existing system.
  Result<std::vector<core::CoordinationRule>> ParseRulesAgainst(
      const core::P2PSystem& system) {
    std::vector<core::CoordinationRule> out;
    while (!At(TokenKind::kEof)) {
      if (!AtKeyword("rule")) return Error("expected 'rule'");
      PendingRule pending;
      pending.line = Peek().line;
      P2PDB_RETURN_IF_ERROR(ParseRule(&pending.id, &pending.head_node,
                                      &pending.body_atoms, &pending.builtins,
                                      &pending.head_atoms));
      auto rule = ResolvePendingRule(system, std::move(pending));
      if (!rule.ok()) return rule.status();
      out.push_back(rule.MoveValue());
    }
    return out;
  }

  static Result<core::CoordinationRule> ResolvePendingRule(
      const core::P2PSystem& system, PendingRule p) {
    core::CoordinationRule rule;
    rule.id = p.id;
    auto head_id = system.NodeByName(p.head_node);
    if (!head_id.ok()) {
      return Status::ParseError(StrFormat("rule %s (line %d): unknown node %s",
                                          p.id.c_str(), p.line,
                                          p.head_node.c_str()));
    }
    rule.head_node = *head_id;
    rule.head_atoms = std::move(p.head_atoms);
    // Group body atoms by node into parts, preserving first-appearance
    // order of nodes.
    std::vector<std::string> node_order;
    std::map<std::string, core::CoordinationRule::BodyPart> parts;
    for (auto& [node_name, atom] : p.body_atoms) {
      auto body_id = system.NodeByName(node_name);
      if (!body_id.ok()) {
        return Status::ParseError(
            StrFormat("rule %s (line %d): unknown node %s", p.id.c_str(),
                      p.line, node_name.c_str()));
      }
      if (!parts.count(node_name)) {
        node_order.push_back(node_name);
        parts[node_name].node = *body_id;
      }
      parts[node_name].atoms.push_back(std::move(atom));
    }
    // A built-in goes into the single part containing all its variables,
    // else it is a cross-part built-in evaluated at the head.
    for (rel::Builtin& b : p.builtins) {
      std::string owner;
      bool cross = false;
      for (const rel::Term* t : {&b.lhs, &b.rhs}) {
        if (!t->is_var()) continue;
        std::string found;
        for (auto& [node_name, part] : parts) {
          for (const rel::Atom& a : part.atoms) {
            for (const rel::Term& at : a.terms) {
              if (at.is_var() && at.var == t->var) found = node_name;
            }
          }
        }
        if (found.empty()) {
          return Status::ParseError(
              StrFormat("rule %s (line %d): built-in variable %s unbound",
                        p.id.c_str(), p.line, t->var.c_str()));
        }
        if (owner.empty()) {
          owner = found;
        } else if (owner != found) {
          cross = true;
        }
      }
      if (cross || owner.empty()) {
        rule.cross_builtins.push_back(std::move(b));
      } else {
        parts[owner].builtins.push_back(std::move(b));
      }
    }
    for (const std::string& node_name : node_order) {
      rule.body.push_back(std::move(parts[node_name]));
    }
    return rule;
  }

  Result<rel::ConjunctiveQuery> ParseQueryBody() {
    rel::ConjunctiveQuery query;
    // Head: IDENT "(" vars ")" ":-"
    P2PDB_RETURN_IF_ERROR(Expect(TokenKind::kIdent));
    P2PDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (!At(TokenKind::kRParen)) {
      do {
        if (!At(TokenKind::kIdent) || !IsVariableName(Peek().text)) {
          return Error("expected variable in query head");
        }
        query.head_vars.push_back(Peek().text);
        Next();
      } while (Accept(TokenKind::kComma));
    }
    P2PDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    P2PDB_RETURN_IF_ERROR(Expect(TokenKind::kTurnstile));
    do {
      // atom or builtin: lookahead for IDENT '('.
      if (At(TokenKind::kIdent) && PeekAhead(1).kind == TokenKind::kLParen &&
          !IsVariableName(Peek().text)) {
        rel::Atom atom;
        atom.relation = Peek().text;
        Next();
        P2PDB_RETURN_IF_ERROR(ParseTermList(&atom.terms));
        query.atoms.push_back(std::move(atom));
      } else {
        rel::Builtin builtin;
        P2PDB_RETURN_IF_ERROR(ParseBuiltin(&builtin));
        query.builtins.push_back(std::move(builtin));
      }
    } while (Accept(TokenKind::kComma));
    if (!At(TokenKind::kEof) && !Accept(TokenKind::kSemi)) {
      return Error("trailing input after query");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAhead(size_t n) const {
    size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Next() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  bool AtKeyword(const std::string& kw) const {
    return At(TokenKind::kIdent) && Peek().text == kw;
  }
  bool Accept(TokenKind kind) {
    if (!At(kind)) return false;
    Next();
    return true;
  }
  Status Expect(TokenKind kind) {
    if (!At(kind)) {
      return Status::ParseError(
          StrFormat("line %d:%d: expected %s, found %s", Peek().line,
                    Peek().column, TokenKindName(kind),
                    TokenKindName(Peek().kind)));
    }
    Next();
    return Status::OK();
  }
  Status Error(const std::string& what) const {
    return Status::ParseError(StrFormat("line %d:%d: %s", Peek().line,
                                        Peek().column, what.c_str()));
  }

  Status ParseNode(core::P2PSystem* system) {
    Next();  // 'node'
    if (!At(TokenKind::kIdent)) return Error("expected node name");
    std::string name = Peek().text;
    Next();
    P2PDB_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    rel::Database db;
    struct PendingFact {
      std::string relation;
      rel::Tuple tuple;
    };
    std::vector<PendingFact> facts;
    while (!Accept(TokenKind::kRBrace)) {
      if (AtKeyword("rel")) {
        Next();
        if (!At(TokenKind::kIdent)) return Error("expected relation name");
        std::string rel_name = Peek().text;
        Next();
        P2PDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        std::vector<std::string> attrs;
        do {
          if (!At(TokenKind::kIdent)) return Error("expected attribute name");
          attrs.push_back(Peek().text);
          Next();
        } while (Accept(TokenKind::kComma));
        P2PDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        P2PDB_RETURN_IF_ERROR(Expect(TokenKind::kSemi));
        P2PDB_RETURN_IF_ERROR(
            db.CreateRelation(rel::RelationSchema(rel_name, attrs)));
      } else if (AtKeyword("fact")) {
        Next();
        if (!At(TokenKind::kIdent)) return Error("expected relation name");
        PendingFact fact;
        fact.relation = Peek().text;
        Next();
        P2PDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        std::vector<rel::Value> values;
        do {
          auto v = ParseValue();
          if (!v.ok()) return v.status();
          values.push_back(std::move(*v));
        } while (Accept(TokenKind::kComma));
        P2PDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        P2PDB_RETURN_IF_ERROR(Expect(TokenKind::kSemi));
        fact.tuple = rel::Tuple(std::move(values));
        facts.push_back(std::move(fact));
      } else {
        return Error("expected 'rel' or 'fact'");
      }
    }
    for (PendingFact& f : facts) {
      P2PDB_RETURN_IF_ERROR(db.Insert(f.relation, std::move(f.tuple)).status());
    }
    return system->AddNode(std::move(name), std::move(db));
  }

  Result<rel::Value> ParseValue() {
    if (At(TokenKind::kString)) {
      rel::Value v = rel::Value::Str(Peek().text);
      Next();
      return v;
    }
    if (At(TokenKind::kInt)) {
      rel::Value v = rel::Value::Int(Peek().int_value);
      Next();
      return v;
    }
    if (At(TokenKind::kIdent) && !IsVariableName(Peek().text)) {
      rel::Value v = rel::Value::Str(Peek().text);
      Next();
      return v;
    }
    return Status::ParseError(StrFormat("line %d:%d: expected a constant",
                                        Peek().line, Peek().column));
  }

  Result<rel::Term> ParseTerm() {
    if (At(TokenKind::kIdent) && IsVariableName(Peek().text)) {
      rel::Term t = rel::Term::Var(Peek().text);
      Next();
      return t;
    }
    auto v = ParseValue();
    if (!v.ok()) return v.status();
    return rel::Term::Const(std::move(*v));
  }

  Status ParseTermList(std::vector<rel::Term>* terms) {
    P2PDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    do {
      auto t = ParseTerm();
      if (!t.ok()) return t.status();
      terms->push_back(std::move(*t));
    } while (Accept(TokenKind::kComma));
    return Expect(TokenKind::kRParen);
  }

  Status ParseBuiltin(rel::Builtin* builtin) {
    auto lhs = ParseTerm();
    if (!lhs.ok()) return lhs.status();
    builtin->lhs = std::move(*lhs);
    switch (Peek().kind) {
      case TokenKind::kEq:
        builtin->op = rel::BuiltinOp::kEq;
        break;
      case TokenKind::kNe:
        builtin->op = rel::BuiltinOp::kNe;
        break;
      case TokenKind::kLt:
        builtin->op = rel::BuiltinOp::kLt;
        break;
      case TokenKind::kLe:
        builtin->op = rel::BuiltinOp::kLe;
        break;
      case TokenKind::kGt:
        builtin->op = rel::BuiltinOp::kGt;
        break;
      case TokenKind::kGe:
        builtin->op = rel::BuiltinOp::kGe;
        break;
      default:
        return Error("expected comparison operator");
    }
    Next();
    auto rhs = ParseTerm();
    if (!rhs.ok()) return rhs.status();
    builtin->rhs = std::move(*rhs);
    return Status::OK();
  }

  // rule_decl := "rule" IDENT ":" body "=>" head ";"
  Status ParseRule(std::string* id, std::string* head_node,
                   std::vector<std::pair<std::string, rel::Atom>>* body_atoms,
                   std::vector<rel::Builtin>* builtins,
                   std::vector<rel::Atom>* head_atoms) {
    Next();  // 'rule'
    if (!At(TokenKind::kIdent)) return Error("expected rule name");
    *id = Peek().text;
    Next();
    P2PDB_RETURN_IF_ERROR(Expect(TokenKind::kColon));
    // Body elements.
    do {
      if (At(TokenKind::kIdent) && PeekAhead(1).kind == TokenKind::kDot) {
        std::string node_name = Peek().text;
        Next();
        Next();  // '.'
        if (!At(TokenKind::kIdent)) return Error("expected relation name");
        rel::Atom atom;
        atom.relation = Peek().text;
        Next();
        P2PDB_RETURN_IF_ERROR(ParseTermList(&atom.terms));
        body_atoms->emplace_back(std::move(node_name), std::move(atom));
      } else {
        rel::Builtin builtin;
        P2PDB_RETURN_IF_ERROR(ParseBuiltin(&builtin));
        builtins->push_back(std::move(builtin));
      }
    } while (Accept(TokenKind::kComma));
    P2PDB_RETURN_IF_ERROR(Expect(TokenKind::kArrow));
    // Head atoms: all at one node.
    do {
      if (!At(TokenKind::kIdent) || PeekAhead(1).kind != TokenKind::kDot) {
        return Error("expected Node.relation(...) in rule head");
      }
      std::string node_name = Peek().text;
      Next();
      Next();  // '.'
      if (head_node->empty()) {
        *head_node = node_name;
      } else if (*head_node != node_name) {
        return Error("rule head atoms must all be at one node");
      }
      if (!At(TokenKind::kIdent)) return Error("expected relation name");
      rel::Atom atom;
      atom.relation = Peek().text;
      Next();
      P2PDB_RETURN_IF_ERROR(ParseTermList(&atom.terms));
      head_atoms->push_back(std::move(atom));
    } while (Accept(TokenKind::kComma));
    return Expect(TokenKind::kSemi);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<core::P2PSystem> ParseSystem(const std::string& input) {
  auto tokens = Tokenize(input);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.ParseSystem();
}

Result<rel::ConjunctiveQuery> ParseQuery(const std::string& input) {
  auto tokens = Tokenize(input);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.ParseQueryBody();
}

Result<std::vector<core::CoordinationRule>> ParseRules(
    const core::P2PSystem& system, const std::string& input) {
  auto tokens = Tokenize(input);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.ParseRulesAgainst(system);
}

Result<core::ChangeScript> BroadcastRules(const core::P2PSystem& system,
                                          core::Session* session,
                                          const std::string& rules_text,
                                          uint64_t at_micros) {
  auto rules = ParseRules(system, rules_text);
  if (!rules.ok()) return rules.status();
  core::ChangeScript script;
  for (core::CoordinationRule& rule : *rules) {
    core::AtomicChange change =
        core::AtomicChange::Add(at_micros, std::move(rule));
    session->ScheduleChange(change);
    script.push_back(std::move(change));
  }
  return script;
}

}  // namespace p2pdb::lang
