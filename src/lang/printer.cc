#include "src/lang/printer.h"

#include "src/core/dependency.h"
#include "src/util/string_util.h"

namespace p2pdb::lang {

namespace {

std::string PrintValue(const rel::Value& v) {
  switch (v.kind()) {
    case rel::ValueKind::kInt:
      return std::to_string(v.AsInt());
    case rel::ValueKind::kString:
      return "\"" + v.AsStr() + "\"";
    case rel::ValueKind::kNull:
      return v.ToString();
  }
  return "?";
}

std::string PrintTerm(const rel::Term& t) {
  return t.is_var() ? t.var : PrintValue(t.constant);
}

std::string PrintAtom(const rel::Atom& atom, const std::string& node_prefix) {
  std::string out = node_prefix.empty() ? "" : node_prefix + ".";
  out += atom.relation + "(";
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += PrintTerm(atom.terms[i]);
  }
  return out + ")";
}

std::string PrintBuiltin(const rel::Builtin& b) {
  return PrintTerm(b.lhs) + " " + rel::BuiltinOpName(b.op) + " " +
         PrintTerm(b.rhs);
}

}  // namespace

std::string PrintRule(const core::P2PSystem& system,
                      const core::CoordinationRule& rule) {
  std::vector<std::string> body;
  for (const core::CoordinationRule::BodyPart& p : rule.body) {
    const std::string& node_name = system.node(p.node).name;
    for (const rel::Atom& a : p.atoms) body.push_back(PrintAtom(a, node_name));
    for (const rel::Builtin& b : p.builtins) body.push_back(PrintBuiltin(b));
  }
  for (const rel::Builtin& b : rule.cross_builtins) {
    body.push_back(PrintBuiltin(b));
  }
  std::vector<std::string> head;
  const std::string& head_name = system.node(rule.head_node).name;
  for (const rel::Atom& a : rule.head_atoms) {
    head.push_back(PrintAtom(a, head_name));
  }
  return "rule " + rule.id + ": " + JoinStrings(body, ", ") + " => " +
         JoinStrings(head, ", ") + ";";
}

std::string PrintSystem(const core::P2PSystem& system) {
  std::string out;
  for (const core::NodeInfo& info : system.nodes()) {
    out += "node " + info.name + " {\n";
    for (const auto& [name, relation] : info.db.relations()) {
      out += "  rel " + name + "(" +
             JoinStrings(relation.schema().attributes(), ", ") + ");\n";
    }
    for (const auto& [name, relation] : info.db.relations()) {
      for (const rel::Tuple& t : relation.tuples()) {
        std::vector<std::string> values;
        for (const rel::Value& v : t.values()) values.push_back(PrintValue(v));
        out += "  fact " + name + "(" + JoinStrings(values, ", ") + ");\n";
      }
    }
    out += "}\n";
  }
  for (const core::CoordinationRule& rule : system.rules()) {
    out += PrintRule(system, rule) + "\n";
  }
  return out;
}

std::string FormatMaximalPathsTable(const core::P2PSystem& system) {
  core::DependencyGraph graph =
      core::DependencyGraph::FromRules(system.rules());
  std::string out = "node | maximal dependency paths\n";
  out += "-----+------------------------------\n";
  for (const core::NodeInfo& info : system.nodes()) {
    std::vector<std::vector<NodeId>> paths = graph.MaximalPathsFrom(info.id);
    std::vector<std::string> rendered;
    for (const auto& p : paths) rendered.push_back(PathToString(p, &system));
    out += StrFormat("%-4s | %s\n", info.name.c_str(),
                     JoinStrings(rendered, ", ").c_str());
  }
  return out;
}

}  // namespace p2pdb::lang
