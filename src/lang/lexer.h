// Lexer for the P2P system description language (node schemas, facts,
// coordination rules, queries). The super-peer in Section 5 distributes
// coordination rules to all peers from a file; this language is that file
// format.
#ifndef P2PDB_LANG_LEXER_H_
#define P2PDB_LANG_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace p2pdb::lang {

enum class TokenKind {
  kIdent,    // identifier or keyword
  kString,   // "quoted"
  kInt,      // 42, -7
  kLParen,   // (
  kRParen,   // )
  kLBrace,   // {
  kRBrace,   // }
  kComma,    // ,
  kSemi,     // ;
  kColon,    // :
  kDot,      // .
  kArrow,    // =>
  kTurnstile,  // :-
  kEq,       // =
  kNe,       // !=
  kLt,       // <
  kLe,       // <=
  kGt,       // >
  kGe,       // >=
  kEof,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   // identifier text / string contents
  int64_t int_value = 0;
  int line = 0;
  int column = 0;
};

/// Tokenizes the whole input. '#' starts a comment running to end of line.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace p2pdb::lang

#endif  // P2PDB_LANG_LEXER_H_
