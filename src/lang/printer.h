// Pretty-printers: system descriptions in the rule language (round-trippable
// through the parser) and the Section-2 style table of maximal dependency
// paths.
#ifndef P2PDB_LANG_PRINTER_H_
#define P2PDB_LANG_PRINTER_H_

#include <string>

#include "src/core/system.h"

namespace p2pdb::lang {

/// Renders the system (schemas, facts, rules) in the description language;
/// ParseSystem(PrintSystem(s)) reproduces s.
std::string PrintSystem(const core::P2PSystem& system);

/// Renders one rule in the language's rule syntax ("rule id: ... => ...;").
std::string PrintRule(const core::P2PSystem& system,
                      const core::CoordinationRule& rule);

/// The table of maximal dependency paths for every node (the in-text table of
/// Section 2), computed from the full rule set.
std::string FormatMaximalPathsTable(const core::P2PSystem& system);

}  // namespace p2pdb::lang

#endif  // P2PDB_LANG_PRINTER_H_
