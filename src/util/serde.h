// Binary serialization used to measure the on-wire size of protocol messages
// (the paper's statistics module reports "volumes of data transferred onto
// pipes"); also exercised by tests as a round-trip invariant.
#ifndef P2PDB_UTIL_SERDE_H_
#define P2PDB_UTIL_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace p2pdb {

/// Appends little-endian/varint-encoded primitives to a byte buffer.
class Writer {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Unsigned LEB128.
  void PutVarint(uint64_t v);
  /// Zig-zag + varint for signed values.
  void PutI64(int64_t v);
  /// Length-prefixed bytes.
  void PutString(std::string_view s);
  /// Raw bytes, verbatim (pre-encoded sub-buffers, e.g. framed payloads).
  void PutRaw(const uint8_t* data, size_t size);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  size_t size() const { return bytes_.size(); }
  /// Moves the accumulated buffer out, leaving the Writer empty.
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Encoded size of PutVarint(v), without writing anything.
size_t VarintLength(uint64_t v);

/// Non-owning view of encoded bytes. Decode entry points take this so owned
/// buffers and zero-copy payload views (net::Payload borrowing a transport
/// read buffer) decode through the same signature without a copy.
struct ByteView {
  const uint8_t* data = nullptr;
  size_t size = 0;

  ByteView() = default;
  ByteView(const uint8_t* d, size_t n) : data(d), size(n) {}
  ByteView(const std::vector<uint8_t>& v) : data(v.data()), size(v.size()) {}
};

/// Reads values written by Writer, with bounds checking.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  explicit Reader(ByteView bytes) : data_(bytes.data), size_(bytes.size) {}
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<uint64_t> GetVarint();
  Result<int64_t> GetI64();
  Result<std::string> GetString();
  /// A pointer to the next `n` bytes, advancing past them — zero-copy access
  /// to an embedded sub-buffer (e.g. a batched message payload). The pointer
  /// aliases the Reader's underlying buffer.
  Result<const uint8_t*> GetRaw(size_t n);

  /// True when all bytes have been consumed.
  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace p2pdb

#endif  // P2PDB_UTIL_SERDE_H_
