// Minimal leveled logger with a process-wide threshold.
#ifndef P2PDB_UTIL_LOGGING_H_
#define P2PDB_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace p2pdb {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4,
                      kOff = 5 };

/// Sets the global minimum level that will be emitted (default kWarn).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace p2pdb

#define P2PDB_LOG(level)                                                   \
  if (static_cast<int>(::p2pdb::LogLevel::level) <                         \
      static_cast<int>(::p2pdb::GetLogLevel())) {                          \
  } else                                                                   \
    ::p2pdb::internal::LogMessage(::p2pdb::LogLevel::level, __FILE__,      \
                                  __LINE__)                                \
        .stream()

#endif  // P2PDB_UTIL_LOGGING_H_
