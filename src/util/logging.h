// Minimal leveled logger with a process-wide threshold.
#ifndef P2PDB_UTIL_LOGGING_H_
#define P2PDB_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace p2pdb {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4,
                      kOff = 5 };

/// Sets the global minimum level that will be emitted (default kWarn).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Destination for emitted log lines. The default (no sink installed) writes
/// to stderr.
class LogSink {
 public:
  virtual ~LogSink() = default;
  /// Called with the fully formatted line (no trailing newline). Invoked
  /// under the emission lock, so implementations need not synchronize with
  /// other emitters — but must not log from within Write.
  virtual void Write(LogLevel level, const std::string& line) = 0;
};

/// Installs `sink` as the destination for all subsequent log lines and
/// returns the previously installed sink (nullptr if lines were going to
/// stderr). Pass nullptr to restore the default stderr output. The caller
/// retains ownership; the sink must outlive its installation.
LogSink* SetLogSink(LogSink* sink);
// See src/util/log_capture.h for in-memory sinks used by tests.

namespace internal {

/// Accumulates one log line and emits it on destruction to the installed
/// LogSink (stderr when none is installed).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace p2pdb

#define P2PDB_LOG(level)                                                   \
  if (static_cast<int>(::p2pdb::LogLevel::level) <                         \
      static_cast<int>(::p2pdb::GetLogLevel())) {                          \
  } else                                                                   \
    ::p2pdb::internal::LogMessage(::p2pdb::LogLevel::level, __FILE__,      \
                                  __LINE__)                                \
        .stream()

#endif  // P2PDB_UTIL_LOGGING_H_
