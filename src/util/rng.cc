#include "src/util/rng.h"

namespace p2pdb {

uint64_t Rng::Next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return NextDouble() < probability;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace p2pdb
