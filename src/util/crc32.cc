#include "src/util/crc32.h"

#include <array>

namespace p2pdb {

namespace {

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t state, const uint8_t* data, size_t size) {
  const std::array<uint32_t, 256>& table = CrcTable();
  for (size_t i = 0; i < size; ++i) {
    state = table[(state ^ data[i]) & 0xffu] ^ (state >> 8);
  }
  return state;
}

uint32_t Crc32(const uint8_t* data, size_t size) {
  return Crc32Finish(Crc32Update(kCrc32Init, data, size));
}

}  // namespace p2pdb
