#include "src/util/serde.h"

namespace p2pdb {

void Writer::PutU8(uint8_t v) { bytes_.push_back(v); }

void Writer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<uint8_t>(v));
}

void Writer::PutI64(int64_t v) {
  uint64_t zz = (static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63);
  PutVarint(zz);
}

void Writer::PutString(std::string_view s) {
  PutVarint(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void Writer::PutRaw(const uint8_t* data, size_t size) {
  if (size == 0) return;  // data may be null for an empty buffer.
  bytes_.insert(bytes_.end(), data, data + size);
}

size_t VarintLength(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

Result<uint8_t> Reader::GetU8() {
  if (pos_ + 1 > size_) return Status::OutOfRange("GetU8 past end");
  return data_[pos_++];
}

Result<uint32_t> Reader::GetU32() {
  if (pos_ + 4 > size_) return Status::OutOfRange("GetU32 past end");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> Reader::GetU64() {
  if (pos_ + 8 > size_) return Status::OutOfRange("GetU64 past end");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<uint64_t> Reader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) return Status::OutOfRange("GetVarint past end");
    if (shift > 63) return Status::ParseError("varint too long");
    uint8_t b = data_[pos_++];
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<int64_t> Reader::GetI64() {
  auto zz = GetVarint();
  if (!zz.ok()) return zz.status();
  uint64_t u = *zz;
  return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

Result<const uint8_t*> Reader::GetRaw(size_t n) {
  if (pos_ + n > size_) return Status::OutOfRange("GetRaw past end");
  const uint8_t* out = data_ + pos_;
  pos_ += n;
  return out;
}

Result<std::string> Reader::GetString() {
  auto len = GetVarint();
  if (!len.ok()) return len.status();
  if (pos_ + *len > size_) return Status::OutOfRange("GetString past end");
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<size_t>(*len));
  pos_ += static_cast<size_t>(*len);
  return s;
}

}  // namespace p2pdb
