// In-memory log sinks for tests: capture emitted lines instead of letting
// them reach stderr, and assert on their content. Kept out of logging.h so
// the hot P2PDB_LOG header stays minimal.
#ifndef P2PDB_UTIL_LOG_CAPTURE_H_
#define P2PDB_UTIL_LOG_CAPTURE_H_

#include <mutex>
#include <string>
#include <vector>

#include "src/util/logging.h"

namespace p2pdb {

/// A sink that buffers formatted lines in memory. Tests install one to keep
/// ctest output clean and to assert on emitted text.
class CapturingLogSink : public LogSink {
 public:
  void Write(LogLevel /*level*/, const std::string& line) override {
    std::lock_guard<std::mutex> lock(mutex_);
    lines_.push_back(line);
  }

  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    lines_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

/// RAII helper: installs a CapturingLogSink for the current scope and
/// restores the previous sink on destruction.
class ScopedLogCapture {
 public:
  ScopedLogCapture() : previous_(SetLogSink(&sink_)) {}
  ~ScopedLogCapture() { SetLogSink(previous_); }
  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

  std::vector<std::string> lines() const { return sink_.lines(); }
  void Clear() { sink_.Clear(); }

 private:
  CapturingLogSink sink_;
  LogSink* previous_;
};

}  // namespace p2pdb

#endif  // P2PDB_UTIL_LOG_CAPTURE_H_
