// Small string helpers shared across modules.
#ifndef P2PDB_UTIL_STRING_UTIL_H_
#define P2PDB_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace p2pdb {

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> SplitString(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view TrimString(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace p2pdb

#endif  // P2PDB_UTIL_STRING_UTIL_H_
