// Network-wide identifier types.
#ifndef P2PDB_UTIL_IDS_H_
#define P2PDB_UTIL_IDS_H_

#include <cstdint>
#include <limits>

namespace p2pdb {

/// Identifier of a node (peer) in the P2P system, unique in the network.
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

}  // namespace p2pdb

#endif  // P2PDB_UTIL_IDS_H_
