#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace p2pdb {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace p2pdb
