#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace p2pdb {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;
LogSink* g_sink = nullptr;  // Guarded by g_emit_mutex; nullptr = stderr.

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

LogSink* SetLogSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  LogSink* previous = g_sink;
  g_sink = sink;
  return previous;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  if (g_sink != nullptr) {
    g_sink->Write(level_, stream_.str());
  } else {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace p2pdb
