// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), shared by every framed byte
// format in the tree: WAL records on disk and protocol message frames on the
// wire both guard their payloads with it.
#ifndef P2PDB_UTIL_CRC32_H_
#define P2PDB_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace p2pdb {

uint32_t Crc32(const uint8_t* data, size_t size);
inline uint32_t Crc32(const std::vector<uint8_t>& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

/// Incremental form, for checksumming non-contiguous ranges without copying:
/// start from kCrc32Init, Crc32Update over each range, Crc32Finish at the end.
/// Crc32(d, n) == Crc32Finish(Crc32Update(kCrc32Init, d, n)).
inline constexpr uint32_t kCrc32Init = 0xffffffffu;
uint32_t Crc32Update(uint32_t state, const uint8_t* data, size_t size);
inline uint32_t Crc32Finish(uint32_t state) { return state ^ 0xffffffffu; }

}  // namespace p2pdb

#endif  // P2PDB_UTIL_CRC32_H_
