// Status and Result<T>: exception-free error handling in the Arrow/RocksDB idiom.
#ifndef P2PDB_UTIL_STATUS_H_
#define P2PDB_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace p2pdb {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kProtocolError,
  kUnsupported,
  kInternal,
};

/// Returns a short human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation that can fail. Cheap to copy when OK (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or a failure Status. Must be checked before access.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result(Status) requires a failure status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accesses the value; undefined if !ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace p2pdb

/// Propagates a non-OK Status from an expression to the caller.
#define P2PDB_RETURN_IF_ERROR(expr)       \
  do {                                    \
    ::p2pdb::Status _st = (expr);         \
    if (!_st.ok()) return _st;            \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, or propagates its Status.
#define P2PDB_ASSIGN_OR_RETURN(lhs, expr)     \
  auto P2PDB_CONCAT_(_res_, __LINE__) = (expr);             \
  if (!P2PDB_CONCAT_(_res_, __LINE__).ok())                 \
    return P2PDB_CONCAT_(_res_, __LINE__).status();         \
  lhs = P2PDB_CONCAT_(_res_, __LINE__).MoveValue()

#define P2PDB_CONCAT_(a, b) P2PDB_CONCAT_IMPL_(a, b)
#define P2PDB_CONCAT_IMPL_(a, b) a##b

#endif  // P2PDB_UTIL_STATUS_H_
