// Seeded pseudo-random generator used by workload generation and latency models.
#ifndef P2PDB_UTIL_RNG_H_
#define P2PDB_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace p2pdb {

/// SplitMix64-based deterministic RNG. Same seed => same sequence on all
/// platforms, which keeps experiments reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) (bound > 0).
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with the given probability in [0, 1].
  bool NextBool(double probability);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Derives an independent child generator (for per-node streams).
  Rng Fork();

 private:
  uint64_t state_;
};

}  // namespace p2pdb

#endif  // P2PDB_UTIL_RNG_H_
