#include "src/net/network.h"

namespace p2pdb::net {

namespace {
std::pair<NodeId, NodeId> Key(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

void Network::AddRuleLink(NodeId head, NodeId body) {
  runtime_->pipes().Open(head, body);
  acquaintances_[head].insert(body);
  acquaintances_[body].insert(head);
  link_rules_[Key(head, body)] += 1;
}

void Network::RemoveRuleLink(NodeId head, NodeId body) {
  auto it = link_rules_.find(Key(head, body));
  if (it == link_rules_.end()) return;
  runtime_->pipes().Close(head, body);
  if (--it->second <= 0) {
    link_rules_.erase(it);
    acquaintances_[head].erase(body);
    acquaintances_[body].erase(head);
  }
}

std::set<NodeId> Network::Acquaintances(NodeId node) const {
  auto it = acquaintances_.find(node);
  return it == acquaintances_.end() ? std::set<NodeId>{} : it->second;
}

}  // namespace p2pdb::net
