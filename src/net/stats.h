// Network statistics: the paper's per-node "statistical module" aggregated —
// number of messages per type, bytes per pipe, and counters the super-peer can
// reset or collect for an experiment run.
#ifndef P2PDB_NET_STATS_H_
#define P2PDB_NET_STATS_H_

#include <map>
#include <mutex>
#include <string>

#include "src/net/message.h"

namespace p2pdb::net {

struct PipeStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

/// Thread-safe counters shared by all pipes of a runtime.
class NetStats {
 public:
  void RecordSend(const Message& msg);

  /// Drops all counters (the super-peer "reset statistics" command).
  void Reset();

  uint64_t total_messages() const;
  uint64_t total_bytes() const;
  uint64_t MessagesOfType(MessageType type) const;
  uint64_t BytesOfType(MessageType type) const;

  /// Per directed pipe (from, to).
  std::map<std::pair<NodeId, NodeId>, PipeStats> PerPipe() const;

  /// Tabular report of counters per message type.
  std::string Report() const;

 private:
  mutable std::mutex mutex_;
  uint64_t total_messages_ = 0;
  uint64_t total_bytes_ = 0;
  std::map<MessageType, PipeStats> per_type_;
  std::map<std::pair<NodeId, NodeId>, PipeStats> per_pipe_;
};

}  // namespace p2pdb::net

#endif  // P2PDB_NET_STATS_H_
