// Network statistics: the paper's per-node "statistical module" aggregated —
// number of messages per type, bytes per pipe, and counters the super-peer can
// reset or collect for an experiment run.
#ifndef P2PDB_NET_STATS_H_
#define P2PDB_NET_STATS_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>

#include "src/net/message.h"

namespace p2pdb::obs {
class Registry;
}  // namespace p2pdb::obs

namespace p2pdb::net {

struct PipeStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

/// Syscall-level transport counters, updated lock-free from reactor workers
/// and the dispatch path. writev_frames / writev_calls is the small-frame
/// batching factor; send_queue_hwm_bytes is the worst backpressure depth any
/// connection reached; inline vs queued dispatches show how often a frame
/// went straight from the socket read into the peer handler without a thread
/// handoff.
struct IoCounters {
  std::atomic<uint64_t> epoll_wakeups{0};
  std::atomic<uint64_t> writev_calls{0};
  std::atomic<uint64_t> writev_frames{0};
  std::atomic<uint64_t> writev_bytes{0};
  std::atomic<uint64_t> accepts{0};
  std::atomic<uint64_t> connects{0};
  std::atomic<uint64_t> connect_failures{0};
  std::atomic<uint64_t> inline_dispatches{0};
  std::atomic<uint64_t> queued_dispatches{0};
  std::atomic<uint64_t> send_queue_hwm_bytes{0};
  // Coalescing + credit protocol (TcpRuntime). frames_enqueued counts app
  // frames handed to send queues (a batch counts once — so frames_enqueued
  // vs messages recorded is the coalescing factor); batched_messages /
  // batch_frames is the mean batch occupancy; credit_frames are the
  // transport-internal acks (excluded from frames_enqueued and NetStats).
  std::atomic<uint64_t> frames_enqueued{0};
  std::atomic<uint64_t> batch_frames{0};
  std::atomic<uint64_t> batched_messages{0};
  std::atomic<uint64_t> credit_frames{0};

  /// Raises send_queue_hwm_bytes to `bytes` if it is a new maximum.
  void RecordQueueDepth(uint64_t bytes);
  double FramesPerWritev() const;
  void Reset();
  std::string Report() const;
};

/// Thread-safe counters shared by all pipes of a runtime.
class NetStats {
 public:
  void RecordSend(const Message& msg);

  /// Drops all counters (the super-peer "reset statistics" command).
  void Reset();

  uint64_t total_messages() const;
  uint64_t total_bytes() const;
  uint64_t MessagesOfType(MessageType type) const;
  uint64_t BytesOfType(MessageType type) const;

  /// Per directed pipe (from, to).
  std::map<std::pair<NodeId, NodeId>, PipeStats> PerPipe() const;

  /// Tabular report of counters per message type.
  std::string Report() const;

  /// Transport-level counters (epoll wakeups, writev batching, queue depth);
  /// only socket-backed runtimes populate them.
  IoCounters& io() { return io_; }
  const IoCounters& io() const { return io_; }

  /// Folds every counter into `registry` under `prefix` (e.g. "net."):
  /// message/byte totals and per-type counts as counters, io() values as
  /// counters, the inline-dispatch ratio (x1000) and queue HWM as gauges.
  /// Registry counters are monotone, so export once per experiment (obs.json
  /// dumps), not periodically.
  void ExportTo(obs::Registry& registry, const std::string& prefix) const;

 private:
  mutable std::mutex mutex_;
  uint64_t total_messages_ = 0;
  uint64_t total_bytes_ = 0;
  std::map<MessageType, PipeStats> per_type_;
  std::map<std::pair<NodeId, NodeId>, PipeStats> per_pipe_;
  IoCounters io_;
};

}  // namespace p2pdb::net

#endif  // P2PDB_NET_STATS_H_
