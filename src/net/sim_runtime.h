// Deterministic discrete-event simulation runtime. Message latency follows
// the per-pipe latency model; per-link FIFO order is preserved (pipes are
// reliable ordered channels, like JXTA pipes over TCP).
#ifndef P2PDB_NET_SIM_RUNTIME_H_
#define P2PDB_NET_SIM_RUNTIME_H_

#include <map>
#include <queue>
#include <vector>

#include "src/net/runtime.h"
#include "src/util/rng.h"

namespace p2pdb::net {

class SimRuntime : public Runtime {
 public:
  struct Options {
    uint64_t seed = 42;
    /// Hard cap on delivered events per Run(); exceeded => Internal error
    /// (guards against protocol non-termination bugs).
    uint64_t max_events = 50'000'000;
    /// Failure injection: probability that an idempotent data-plane message
    /// (discovery requests/answers, update start, query requests/answers,
    /// unsubscribe, partial update) is delivered twice. Duplicates stutter —
    /// they arrive immediately after the original, preserving per-link FIFO —
    /// modelling at-least-once delivery. Control messages (tokens, closure,
    /// change notifications) stay exactly-once, matching the reliable-pipe
    /// assumption the fix-point detector needs.
    double duplicate_prob = 0.0;
  };

  SimRuntime() : SimRuntime(Options{}) {}
  explicit SimRuntime(Options options);

  void RegisterPeer(NodeId id, PeerHandler* handler) override;
  void UnregisterPeer(NodeId id) override;
  void Send(Message msg) override;
  void ScheduleSend(uint64_t time_micros, Message msg) override;
  Status Run() override;
  /// Delivers events with time <= `time_micros`, then advances the clock to
  /// exactly that time (so crash/restart boundaries are deterministic).
  Status RunUntil(uint64_t time_micros) override;
  uint64_t NowMicros() const override { return now_micros_; }

  /// Number of messages delivered so far (across Run calls).
  uint64_t delivered_count() const { return delivered_; }

  /// Messages dropped because their destination was unregistered (crashed).
  uint64_t dropped_count() const override { return dropped_; }

 private:
  Status Drain(uint64_t until_micros);

  struct Event {
    uint64_t time;
    uint64_t seq;
    Message msg;
    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  Options options_;
  Rng rng_;
  uint64_t now_micros_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
  std::map<NodeId, PeerHandler*> peers_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  // Last scheduled delivery time per directed link, to enforce FIFO.
  std::map<std::pair<NodeId, NodeId>, uint64_t> last_delivery_;
};

}  // namespace p2pdb::net

#endif  // P2PDB_NET_SIM_RUNTIME_H_
