// Epoll reactor: the nonblocking socket engine under TcpRuntime. A small
// fixed pool of worker threads (default: hardware concurrency) each runs an
// epoll loop over the listeners and connections assigned to it — accept,
// read, and write are all nonblocking, so one worker drives hundreds of
// connections instead of one thread per connection.
//
// Ownership model: every Connection belongs to exactly one worker, and all
// I/O plus the Handler upcalls (OnRead/OnWritten/OnClose) for it happen on
// that worker's thread — per-connection state needs no locks. Cross-thread
// operations go through two narrow channels: Enqueue() pushes onto the
// connection's mutex-guarded send queue (the worker drains it with writev,
// batching small frames into one syscall), and control operations (close,
// register) are posted to the owning worker's task queue and executed there,
// which also makes fd lifetimes race-free (only the owner ever closes an fd).
//
// Backpressure: the send queue is bounded in bytes. A non-worker sender
// blocks while the queue is over the limit (a slow receiver slows only its
// senders, never the event loops); a reactor worker never blocks — its queue
// may transiently exceed the limit — so event loops cannot deadlock on each
// other's queues.
#ifndef P2PDB_NET_REACTOR_H_
#define P2PDB_NET_REACTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/stats.h"
#include "src/util/status.h"

namespace p2pdb::net {

class Reactor;

/// One nonblocking TCP connection owned by a single reactor worker.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  /// Owner-assigned routing key. TcpRuntime uses the NodeId whose listener
  /// accepted the connection (inbound) or the destination node (outbound).
  uint64_t token() const { return token_; }
  bool inbound() const { return inbound_; }

  /// Queues one encoded frame for writing. Thread-safe. Returns false when
  /// the connection is (or becomes) closed before accepting the frame — the
  /// frame is left in place so the caller can retry on a fresh connection,
  /// and the caller owns the drop accounting. Frames accepted here are
  /// reported exactly once, via Handler::OnWritten (reached the kernel) or
  /// Handler::OnClose (dropped).
  bool Enqueue(std::vector<uint8_t>&& frame);

  /// Asynchronously closes the connection; callable from any thread. Queued
  /// frames are reported dropped via Handler::OnClose.
  void RequestClose();

  bool closed() const { return closed_.load(); }
  size_t queued_bytes() const;

  /// Owning-worker-only scratch slot (TcpRuntime hangs its frame-reassembly
  /// state here); Handler::OnClose is the last chance to free it.
  void* user_data = nullptr;

 private:
  friend class Reactor;

  enum class State { kConnecting, kOpen, kClosed };

  Reactor* reactor_ = nullptr;
  int fd_ = -1;
  int worker_ = 0;
  uint64_t token_ = 0;
  bool inbound_ = false;

  // Guarded by mutex_ (state transitions and the send queue).
  mutable std::mutex mutex_;
  std::condition_variable drained_;  // Signals backpressure waiters.
  State state_ = State::kConnecting;
  std::deque<std::vector<uint8_t>> sendq_;
  size_t sendq_bytes_ = 0;
  bool flush_armed_ = false;  // The worker knows the queue is non-empty.

  std::atomic<bool> closed_{false};

  // Owning worker only.
  size_t front_offset_ = 0;  // Bytes of sendq_.front() already written.
  bool want_write_ = false;  // EPOLLOUT currently armed.
  std::chrono::steady_clock::time_point connect_deadline_{};
};

class Reactor {
 public:
  struct Options {
    /// Worker (event-loop) threads; 0 means std::thread::hardware_concurrency.
    int workers = 0;
    /// Per-connection send-queue backpressure threshold, in bytes.
    size_t send_queue_limit = 4u << 20;
    /// Bound on one nonblocking connect attempt (a blackholed endpoint must
    /// fail fast instead of parking queued frames forever).
    std::chrono::milliseconds connect_timeout{1'000};
    /// SO_SNDBUF for outbound sockets; 0 keeps the kernel default. Tests
    /// shrink it to force partial writev results deterministically.
    int send_buffer_bytes = 0;
    /// Syscall-counter sink; may be nullptr.
    IoCounters* counters = nullptr;
  };

  /// Upcalls, invoked on reactor worker threads. Calls for one connection
  /// are serialized (single owning worker); calls for different connections
  /// run concurrently. Handlers must not block on other connections' queues
  /// (Enqueue already guarantees workers never do).
  class Handler {
   public:
    virtual ~Handler() = default;
    /// A listener accepted `conn` (conn->token() is the listener's token).
    virtual void OnAccept(Connection* conn) { (void)conn; }
    /// Bytes arrived; return false to close (poisoned stream).
    virtual bool OnRead(Connection* conn, const uint8_t* data,
                        size_t size) = 0;
    /// `frames` queued frames were fully written to the kernel.
    virtual void OnWritten(Connection* conn, size_t frames) {
      (void)conn;
      (void)frames;
    }
    /// Terminal event: the fd is closed and no further upcalls follow.
    /// `dropped_frames` were accepted by Enqueue but never fully written.
    /// The Connection may be freed once the owner drops its references.
    virtual void OnClose(Connection* conn, size_t dropped_frames) = 0;
  };

  Reactor(Options options, Handler* handler);
  ~Reactor();

  /// Opens a nonblocking listener on host:port (port 0 = kernel-assigned)
  /// and registers it under `token`; accepted connections inherit the token
  /// and are owned by the listener's worker. Returns the bound port. A fixed
  /// port lets a config file own the address: a re-exec'd daemon rebinds the
  /// same endpoint, so remote tables stay valid across the restart.
  Result<uint16_t> Listen(const std::string& host, uint64_t token,
                          uint16_t port = 0);

  /// Closes the listener registered under `token` (if any) and every live
  /// connection carrying that token — inbound and outbound alike. Blocks
  /// until the owning workers have torn everything down, so a subsequent
  /// connect to the old port is refused by the kernel. Control-plane only:
  /// must not be called from a Handler upcall (reactor worker).
  void CloseToken(uint64_t token);

  /// Starts a nonblocking connect; frames may be enqueued immediately and
  /// are written once the connect completes (or dropped if it fails or times
  /// out). The returned connection is live until Handler::OnClose.
  std::shared_ptr<Connection> Connect(const std::string& host, uint16_t port,
                                      uint64_t token);

  /// Stops the workers and closes every listener and connection (OnClose
  /// fires for each, on the calling thread). Idempotent. After Stop, Listen
  /// and Connect fail/return closed connections.
  void Stop();

 private:
  struct Listener {
    int fd = -1;
    uint64_t token = 0;
    uint16_t port = 0;
    int worker = 0;
  };

  struct Worker {
    int index = 0;
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;

    std::mutex task_mutex;
    std::vector<std::function<void()>> tasks;

    // Worker-thread-local state (no locks).
    std::map<int, std::shared_ptr<Connection>> conns;          // by fd
    std::map<int, std::shared_ptr<Listener>> listeners;        // by fd
    std::vector<std::shared_ptr<Connection>> connecting;
    std::vector<std::shared_ptr<Connection>> dirty;  // Same-thread enqueues.
    std::vector<uint8_t> read_buffer;
  };

  friend class Connection;

  void WorkerLoop(Worker* w);
  void RunTasks(Worker* w);
  int NextTimeoutMillis(Worker* w);
  void CheckConnectDeadlines(Worker* w);
  void AcceptReady(Worker* w, const std::shared_ptr<Listener>& listener);
  void HandleConnEvent(Worker* w, std::shared_ptr<Connection> c,
                       uint32_t events);
  void ReadReady(Worker* w, const std::shared_ptr<Connection>& c);
  void FlushConn(Worker* w, const std::shared_ptr<Connection>& c);
  void CloseConn(Worker* w, std::shared_ptr<Connection> c);
  void UpdateWriteInterest(Worker* w, Connection* c, bool want);

  /// Registers a freshly created connection with its owning worker's epoll.
  void AdoptConn(Worker* w, const std::shared_ptr<Connection>& c);

  /// Posts `fn` to the worker's task queue and wakes it. Returns false when
  /// the reactor is stopped (the caller must handle the work itself).
  bool Post(Worker* w, std::function<void()> fn);
  void Wake(Worker* w);

  /// Called by Connection::Enqueue after pushing: makes sure the owning
  /// worker will flush (dirty list when called on that worker, eventfd wake
  /// otherwise).
  void NoteQueued(Connection* c);

  int PickWorker();

  Options options_;
  Handler* handler_;
  std::atomic<bool> stop_{false};
  std::atomic<uint32_t> next_worker_{0};
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex registry_mutex_;  // listeners_by_token_, conns_by_token_.
  std::map<uint64_t, std::shared_ptr<Listener>> listeners_by_token_;
  std::map<uint64_t, std::vector<std::weak_ptr<Connection>>> conns_by_token_;
};

}  // namespace p2pdb::net

#endif  // P2PDB_NET_REACTOR_H_
