#include "src/net/pipe.h"

#include "src/util/string_util.h"

namespace p2pdb::net {

uint64_t LatencyModel::Sample(Rng* rng) const {
  if (jitter_micros == 0 || rng == nullptr) return base_micros;
  return base_micros + rng->NextBelow(jitter_micros + 1);
}

void PipeTable::Open(NodeId a, NodeId b) { refcount_[Key(a, b)] += 1; }

bool PipeTable::Close(NodeId a, NodeId b) {
  auto it = refcount_.find(Key(a, b));
  if (it == refcount_.end()) return false;
  if (--it->second <= 0) {
    refcount_.erase(it);
    return true;
  }
  return false;
}

bool PipeTable::IsOpen(NodeId a, NodeId b) const {
  return refcount_.count(Key(a, b)) > 0;
}

LatencyModel PipeTable::LatencyOf(NodeId a, NodeId b) const {
  auto it = overrides_.find(Key(a, b));
  return it == overrides_.end() ? default_latency_ : it->second;
}

void PipeTable::SetLatency(NodeId a, NodeId b, LatencyModel latency) {
  overrides_[Key(a, b)] = latency;
}

std::string PipeTable::ToString() const {
  std::string out;
  for (const auto& [key, count] : refcount_) {
    out += StrFormat("pipe %u<->%u (refs %d)\n", key.first, key.second, count);
  }
  return out;
}

}  // namespace p2pdb::net
