// Runtime: the asynchronous message-passing substrate peers run on.
// Three implementations share this interface: SimRuntime (deterministic
// discrete-event simulation — used by tests and benches so time and message
// interleavings are reproducible), ThreadRuntime (a thread per peer with
// mailboxes — real asynchrony, as in the paper's JXTA prototype) and
// TcpRuntime (every message crosses a real TCP socket; peers are endpoints).
#ifndef P2PDB_NET_RUNTIME_H_
#define P2PDB_NET_RUNTIME_H_

#include <functional>

#include "src/net/message.h"
#include "src/net/pipe.h"
#include "src/net/stats.h"
#include "src/util/status.h"

namespace p2pdb::net {

/// Callback interface a peer implements to receive messages. The runtime
/// guarantees that for a given peer, OnMessage invocations never overlap.
class PeerHandler {
 public:
  virtual ~PeerHandler() = default;
  virtual void OnMessage(const Message& msg) = 0;
};

/// Observes every delivered message (used by the Figure-1 trace bench).
using MessageTracer = std::function<void(uint64_t time_micros, const Message&)>;

/// Abstract asynchronous runtime.
class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Registers the handler for node `id`. Must happen before Run().
  /// Re-registering an id replaces the previous handler (a restarted peer).
  virtual void RegisterPeer(NodeId id, PeerHandler* handler) = 0;

  /// Removes the handler for `id`: subsequent deliveries to it are dropped,
  /// modelling a crashed peer process. Default: no-op (runtimes without crash
  /// support keep delivering to the registered handler).
  virtual void UnregisterPeer(NodeId id) { (void)id; }

  /// Whether the runtime can actually deliver to locally-registered peer
  /// `id` — e.g. the socket runtime's listener bound successfully. Churn
  /// drivers check this after (re)registering a peer, since RegisterPeer
  /// itself cannot fail. Default: registered peers are always reachable.
  virtual Status PeerReady(NodeId id) const {
    (void)id;
    return Status::OK();
  }

  /// Queues a message for asynchronous delivery. Callable from handlers.
  virtual void Send(Message msg) = 0;

  /// Schedules a message to be injected at an absolute time (used to model
  /// dynamic network changes arriving mid-run, Section 4).
  virtual void ScheduleSend(uint64_t time_micros, Message msg) = 0;

  /// Delivers messages until the network is quiescent (no message in flight
  /// and no handler running). Returns an error on runaway executions.
  virtual Status Run() = 0;

  /// Delivers messages up to (and including) `time_micros`, leaving later
  /// ones queued — the hook churn drivers use to crash a peer mid-run.
  /// Default: runs to quiescence (runtimes without a controllable clock
  /// cannot stop mid-flight).
  virtual Status RunUntil(uint64_t time_micros) {
    (void)time_micros;
    return Run();
  }

  /// Runs `fn` inside `id`'s per-peer serialization domain: mutually
  /// exclusive with any OnMessage dispatch to `id`, so control-plane
  /// mutations of peer state (starting discovery or an update) cannot race
  /// handler upcalls arriving from the network. May block until the peer's
  /// current dispatch finishes; never call it from inside a handler.
  /// Default: single-threaded runtimes have nothing to exclude.
  virtual void RunExclusive(NodeId id, const std::function<void()>& fn) {
    (void)id;
    fn();
  }

  /// Current time in microseconds: simulated (SimRuntime) or wall-clock
  /// elapsed since construction (ThreadRuntime, TcpRuntime).
  virtual uint64_t NowMicros() const = 0;

  /// Messages lost because their destination was gone: unregistered in the
  /// simulator, or — for the socket runtime — refused/reset by the kernel.
  virtual uint64_t dropped_count() const { return 0; }

  NetStats& stats() { return stats_; }
  PipeTable& pipes() { return pipes_; }

  void set_tracer(MessageTracer tracer) { tracer_ = std::move(tracer); }

 protected:
  NetStats stats_;
  PipeTable pipes_;
  MessageTracer tracer_;
};

}  // namespace p2pdb::net

#endif  // P2PDB_NET_RUNTIME_H_
