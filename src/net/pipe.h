// Pipes: point-to-point communication links (JXTA's pipe abstraction).
// The prototype in Section 5 opens one pipe per acquainted node pair, shares
// it across coordination rules, and closes it when the last rule using it is
// dropped; PipeTable reproduces that life cycle and drives the latency model.
#ifndef P2PDB_NET_PIPE_H_
#define P2PDB_NET_PIPE_H_

#include <map>
#include <string>

#include "src/util/ids.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace p2pdb::net {

/// Latency configuration for one link (microseconds).
struct LatencyModel {
  uint64_t base_micros = 1000;
  uint64_t jitter_micros = 200;

  /// Samples base + uniform jitter.
  uint64_t Sample(Rng* rng) const;
};

/// Reference-counted registry of open pipes between unordered node pairs.
class PipeTable {
 public:
  explicit PipeTable(LatencyModel default_latency = LatencyModel{})
      : default_latency_(default_latency) {}

  /// Opens (or references) the pipe between a and b. Several rules share one
  /// pipe; each Open must be paired with a Close.
  void Open(NodeId a, NodeId b);

  /// Releases one reference; the pipe is removed when the count reaches zero.
  /// Returns true if the pipe was fully closed.
  bool Close(NodeId a, NodeId b);

  bool IsOpen(NodeId a, NodeId b) const;
  size_t open_count() const { return refcount_.size(); }

  /// Latency of the (possibly closed) link a->b; per-link overrides fall back
  /// to the default model. Direction-insensitive.
  LatencyModel LatencyOf(NodeId a, NodeId b) const;
  void SetLatency(NodeId a, NodeId b, LatencyModel latency);
  const LatencyModel& default_latency() const { return default_latency_; }
  void set_default_latency(LatencyModel latency) {
    default_latency_ = latency;
  }

  std::string ToString() const;

 private:
  static std::pair<NodeId, NodeId> Key(NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  LatencyModel default_latency_;
  std::map<std::pair<NodeId, NodeId>, int> refcount_;
  std::map<std::pair<NodeId, NodeId>, LatencyModel> overrides_;
};

}  // namespace p2pdb::net

#endif  // P2PDB_NET_PIPE_H_
