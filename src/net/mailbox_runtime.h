// MailboxRuntime: the connection-independent half of the concurrent runtimes.
// Owns everything ThreadRuntime and TcpRuntime share — one mailbox per peer
// with a worker thread that serializes OnMessage dispatch, a timer thread for
// ScheduleSend, dropped-message accounting, and wall-clock quiescence
// detection for Run(). Subclasses decide only how a sent message reaches the
// destination mailbox: ThreadRuntime enqueues directly, TcpRuntime pushes the
// frame through a socket whose reader calls Deliver().
#ifndef P2PDB_NET_MAILBOX_RUNTIME_H_
#define P2PDB_NET_MAILBOX_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/runtime.h"

namespace p2pdb::net {

class MailboxRuntime : public Runtime {
 public:
  struct Options {
    /// Run() fails if quiescence is not reached within this bound.
    std::chrono::milliseconds timeout{30'000};
    /// Run() declares quiescence once no message has been queued, timed, or
    /// in a handler for this long, continuously. 0 means the in-flight
    /// accounting is exact and the first observed zero terminates Run()
    /// immediately — TcpRuntime's default, since its credit-ack protocol
    /// tracks every frame from Send() until the receiver consumed it.
    /// ThreadRuntime keeps a small nonzero window.
    std::chrono::microseconds quiet_window{600};
  };

  ~MailboxRuntime() override;

  /// Callable at any time: registering while running spawns the peer's worker
  /// thread on the spot, and re-registering an id rebinds its handler (a
  /// restarted peer process).
  void RegisterPeer(NodeId id, PeerHandler* handler) override;

  /// Detaches the handler and drops its queued messages (counted). Blocks
  /// until any in-progress OnMessage on that peer returns, so the caller may
  /// destroy the handler immediately afterwards.
  void UnregisterPeer(NodeId id) override;

  /// Claims `id`'s mailbox the way a dispatch does (waits until no handler
  /// upcall is running, holds the busy flag across `fn`), so control-plane
  /// peer mutations serialize with message dispatch instead of racing it.
  /// Messages arriving meanwhile queue up behind `fn`.
  void RunExclusive(NodeId id, const std::function<void()>& fn) override;

  void ScheduleSend(uint64_t time_micros, Message msg) override;
  Status Run() override;
  /// Wall-clock churn hook: lets delivery threads run until `time_micros` of
  /// elapsed time, then returns (the network need not be quiescent).
  Status RunUntil(uint64_t time_micros) override;
  uint64_t NowMicros() const override;
  uint64_t dropped_count() const override { return dropped_.load(); }

 protected:
  explicit MailboxRuntime(Options options);

  /// Enqueues for local dispatch to msg.to's worker; counts a drop when the
  /// destination has no live handler. Thread-safe.
  void Deliver(Message msg);

  /// Transport fast path: dispatches on the calling (reactor worker) thread
  /// when the destination mailbox is idle — no thread handoff, and a borrowed
  /// payload is consumed without copying. Falls back to the worker queue when
  /// the mailbox is busy or has a backlog (taking ownership of the payload
  /// first), which preserves per-peer serialization and per-connection FIFO
  /// order. Thread-safe.
  void DispatchFromTransport(Message&& msg);

  uint64_t NextSeq() { return next_seq_.fetch_add(1); }
  void CountDrop() { dropped_.fetch_add(1); }

  /// Work visible to quiescence detection beyond queued messages — e.g. a
  /// TCP reader holding a partially reassembled frame. Every Hold must be
  /// paired with a Release.
  void HoldWork() { in_flight_.fetch_add(1); }
  void ReleaseWork() { in_flight_.fetch_sub(1); }

  /// Starts worker/timer threads (and the subclass's I/O) if not yet running.
  void EnsureStarted();

  /// Stops and joins all threads, the subclass's I/O first. Idempotent;
  /// subclass destructors MUST call this before their members are destroyed.
  void Shutdown();

  /// Subclass I/O lifecycle, called with no internal locks held.
  virtual void StartIo() {}
  virtual void StopIo() {}

  /// Bracket around one handler dispatch (OnMessage from PeerLoop or the
  /// inline transport path, or a RunExclusive fn): the transport may buffer
  /// sends made inside the bracket and flush them as coalesced frames at
  /// EndDispatch. Called on the dispatching thread with no mailbox lock held;
  /// EndDispatch runs before the mailbox's busy flag clears, so flushed
  /// frames keep per-(peer, destination) FIFO order. Defaults: no-op.
  virtual void BeginDispatch() {}
  virtual void EndDispatch() {}

  /// One line per unit of outstanding work: per-peer queue depths and busy
  /// handlers, pending timers, and (via subclass overrides) transport-level
  /// residency like unsent socket bytes. Logged when Run() gives up on the
  /// deadline or RunUntil() hands back a non-quiescent network, so a hung
  /// fixpoint names its culprit instead of timing out silently.
  virtual std::string PendingWorkReport() const;

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
    PeerHandler* handler = nullptr;
    bool busy = false;  // Some thread is inside handler->OnMessage.
  };

  void PeerLoop(Mailbox* box);
  void TimerLoop();

  Options options_;
  mutable std::mutex mutex_;  // Guards mailboxes_ and threads_.
  std::map<NodeId, std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::thread> threads_;
  std::thread timer_thread_;

  // Timer queue for ScheduleSend (delayed injections).
  mutable std::mutex timer_mutex_;
  std::condition_variable timer_cv_;
  std::vector<std::pair<uint64_t, Message>> timer_queue_;

  std::atomic<uint64_t> in_flight_{0};  // queued + being processed + timed
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace p2pdb::net

#endif  // P2PDB_NET_MAILBOX_RUNTIME_H_
