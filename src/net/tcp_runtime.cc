#include "src/net/tcp_runtime.h"

#include <cstring>

#include "src/obs/metrics.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace p2pdb::net {

std::string TcpRuntime::Endpoint::ToString() const {
  return host + ":" + std::to_string(port);
}

Result<TcpRuntime::Endpoint> TcpRuntime::Endpoint::Parse(
    const std::string& text) {
  size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size()) {
    return Status::ParseError("endpoint '" + text + "' is not host:port");
  }
  Endpoint out;
  out.host = text.substr(0, colon);
  long port = 0;
  for (size_t i = colon + 1; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') {
      return Status::ParseError("endpoint '" + text + "' has a bad port");
    }
    port = port * 10 + (text[i] - '0');
    if (port > 65535) {
      return Status::ParseError("endpoint '" + text + "' port out of range");
    }
  }
  out.port = static_cast<uint16_t>(port);
  return out;
}

TcpRuntime::TcpRuntime(Options options)
    : MailboxRuntime(MailboxRuntime::Options{options.timeout,
                                             options.quiet_window}),
      options_(std::move(options)) {
  Reactor::Options reactor_options;
  reactor_options.workers = options_.io_workers;
  reactor_options.send_queue_limit = options_.send_queue_limit;
  reactor_options.connect_timeout = options_.connect_timeout;
  reactor_options.counters = &stats_.io();
  reactor_ = std::make_unique<Reactor>(reactor_options,
                                       static_cast<Reactor::Handler*>(this));
}

TcpRuntime::~TcpRuntime() { Shutdown(); }

void TcpRuntime::RegisterPeer(NodeId id, PeerHandler* handler) {
  MailboxRuntime::RegisterPeer(id, handler);
  Status listening = OpenListener(id);
  if (!listening.ok()) {
    P2PDB_LOG(kError) << "node " << id
                      << " cannot listen: " << listening.ToString();
  }
}

void TcpRuntime::UnregisterPeer(NodeId id) {
  {
    std::lock_guard<std::mutex> lock(net_mutex_);
    listen_ports_.erase(id);
    // The endpoint row stays: reconnect-on-send probes the stale port (the
    // kernel refuses, counted as drops) until a restart overwrites it.
    outbound_.erase(id);
  }
  // Socket teardown before handler detach: after this, frames to `id` are
  // refused or reset by the kernel, which is exactly what the dropped
  // counter observes. Closes `id`'s listener, the connections accepted on
  // it, and the shared outbound connection to `id`.
  reactor_->CloseToken(id);
  MailboxRuntime::UnregisterPeer(id);
}

std::shared_ptr<Connection> TcpRuntime::OutboundFor(NodeId to) {
  std::lock_guard<std::mutex> lock(net_mutex_);
  auto it = endpoints_.find(to);
  if (it == endpoints_.end() || it->second.port == 0) return nullptr;
  auto& slot = outbound_[to];
  if (slot == nullptr || slot->closed()) {
    // Reconnect-on-send: the cached connection may point at a dead (crashed
    // or pre-restart) incarnation of the peer; a fresh connect gives the
    // current endpoint table row a chance.
    if (slot != nullptr) {
      static obs::Counter* reconnects =
          obs::Registry::Global().GetCounter("net.reconnects");
      reconnects->Increment();
    }
    slot = reactor_->Connect(it->second.host, it->second.port, to);
  }
  return slot;
}

void TcpRuntime::Send(Message msg) {
  msg.seq = NextSeq();
  stats_.RecordSend(msg);
  std::vector<uint8_t> frame = EncodeFrame(msg);
  // In-flight from here until the frame reaches the kernel (OnWritten) or is
  // dropped (OnClose / the fall-through below) — quiescence detection covers
  // queued frames exactly.
  HoldWork();
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::shared_ptr<Connection> conn = OutboundFor(msg.to);
    if (conn == nullptr) {
      ReleaseWork();
      CountDrop();
      P2PDB_LOG(kWarn) << "dropping message to unknown endpoint: "
                       << msg.ToString();
      return;
    }
    // On success the reactor owns the frame and reports it exactly once; a
    // false return means the connection closed underneath us and the frame
    // is untouched — retry once on a fresh connection.
    if (conn->Enqueue(std::move(frame))) return;
  }
  ReleaseWork();
  CountDrop();
  P2PDB_LOG(kWarn) << "kernel refused delivery: " << msg.ToString();
}

void TcpRuntime::AddRemoteEndpoint(NodeId id, Endpoint endpoint) {
  std::lock_guard<std::mutex> lock(net_mutex_);
  endpoints_[id] = std::move(endpoint);
}

TcpRuntime::Endpoint TcpRuntime::EndpointOf(NodeId id) const {
  std::lock_guard<std::mutex> lock(net_mutex_);
  auto it = endpoints_.find(id);
  return it == endpoints_.end() ? Endpoint{} : it->second;
}

Status TcpRuntime::PeerReady(NodeId id) const {
  std::lock_guard<std::mutex> lock(net_mutex_);
  if (listen_ports_.count(id) == 0) {
    return Status::Internal("node " + std::to_string(id) +
                            " has no listening endpoint");
  }
  return Status::OK();
}

uint16_t TcpRuntime::ListenPort(NodeId id) const {
  std::lock_guard<std::mutex> lock(net_mutex_);
  auto it = listen_ports_.find(id);
  return it == listen_ports_.end() ? 0 : it->second;
}

std::string TcpRuntime::EndpointTable() const {
  std::lock_guard<std::mutex> lock(net_mutex_);
  std::string out;
  for (const auto& [id, endpoint] : endpoints_) {
    out += StrFormat("%u %s\n", id, endpoint.ToString().c_str());
  }
  return out;
}

Status TcpRuntime::OpenListener(NodeId id) {
  {
    std::lock_guard<std::mutex> lock(net_mutex_);
    if (listen_ports_.count(id) > 0) {
      // Registered twice without a crash in between: keep the first listener
      // (its port is already in other runtimes' tables).
      return Status::OK();
    }
  }
  Result<uint16_t> port = reactor_->Listen(options_.host, id);
  if (!port.ok()) return port.status();
  std::lock_guard<std::mutex> lock(net_mutex_);
  listen_ports_[id] = *port;
  endpoints_[id] = Endpoint{options_.host, *port};
  return Status::OK();
}

bool TcpRuntime::OnRead(Connection* conn, const uint8_t* data, size_t size) {
  auto* state = static_cast<ReadState*>(conn->user_data);
  if (state == nullptr) {
    state = new ReadState();
    conn->user_data = state;
  }
  if (!state->holding) {
    HoldWork();
    state->holding = true;
  }
  // Complete frames dispatch straight out of the reactor's read buffer: the
  // payload view stays borrowed through an inline dispatch and is only
  // copied when the destination mailbox is busy.
  Status fed = state->assembler.FeedViews(
      data, size, [this](const FrameView& view) {
        DispatchFromTransport(view.BorrowMessage());
      });
  if (state->holding && state->assembler.buffered_bytes() == 0) {
    ReleaseWork();
    state->holding = false;
  }
  if (!fed.ok()) {
    // A poisoned stream cannot be resynchronized; drop the connection.
    P2PDB_LOG(kWarn) << "closing corrupt stream to node " << conn->token()
                     << ": " << fed.ToString();
    return false;
  }
  return true;
}

void TcpRuntime::OnWritten(Connection* conn, size_t frames) {
  (void)conn;
  for (size_t i = 0; i < frames; ++i) ReleaseWork();
}

void TcpRuntime::OnClose(Connection* conn, size_t dropped_frames) {
  auto* state = static_cast<ReadState*>(conn->user_data);
  if (state != nullptr) {
    if (state->holding) ReleaseWork();
    delete state;
    conn->user_data = nullptr;
  }
  for (size_t i = 0; i < dropped_frames; ++i) {
    CountDrop();
    ReleaseWork();
  }
  if (dropped_frames > 0) {
    P2PDB_LOG(kWarn) << "kernel refused delivery of " << dropped_frames
                     << " frame(s) to node " << conn->token();
  }
}

std::string TcpRuntime::PendingWorkReport() const {
  std::string report = MailboxRuntime::PendingWorkReport();
  std::lock_guard<std::mutex> lock(net_mutex_);
  for (const auto& [to, conn] : outbound_) {
    if (conn == nullptr) continue;
    size_t queued = conn->queued_bytes();
    if (queued == 0) continue;
    report += "  -> node " + std::to_string(to) + ": " +
              std::to_string(queued) + " unsent bytes" +
              (conn->closed() ? " (connection closed)" : "") + "\n";
  }
  return report;
}

void TcpRuntime::StopIo() { reactor_->Stop(); }

}  // namespace p2pdb::net
