#include "src/net/tcp_runtime.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/net/frame.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace p2pdb::net {

namespace {

/// Poll granularity for accept/read loops; bounds teardown latency.
constexpr int kPollMillis = 50;

/// Bound on one connect attempt. Send holds the per-destination write lock
/// while connecting, so a blackholed endpoint must fail fast instead of
/// stalling every sender to that node for the kernel's SYN timeout.
constexpr int kConnectMillis = 1'000;

int ConnectTo(const TcpRuntime::Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    return -1;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return -1;
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = -1;
    if (::poll(&pfd, 1, kConnectMillis) == 1) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 &&
          err == 0) {
        rc = 0;
      }
    }
  }
  if (rc != 0) {
    ::close(fd);
    return -1;
  }
  // Back to blocking for the write path; keep latency low on small frames.
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Writes the whole buffer; MSG_NOSIGNAL turns a dead peer into EPIPE
/// instead of a process-killing signal.
bool WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

std::string TcpRuntime::Endpoint::ToString() const {
  return host + ":" + std::to_string(port);
}

Result<TcpRuntime::Endpoint> TcpRuntime::Endpoint::Parse(
    const std::string& text) {
  size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size()) {
    return Status::ParseError("endpoint '" + text + "' is not host:port");
  }
  Endpoint out;
  out.host = text.substr(0, colon);
  long port = 0;
  for (size_t i = colon + 1; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') {
      return Status::ParseError("endpoint '" + text + "' has a bad port");
    }
    port = port * 10 + (text[i] - '0');
    if (port > 65535) {
      return Status::ParseError("endpoint '" + text + "' port out of range");
    }
  }
  out.port = static_cast<uint16_t>(port);
  return out;
}

TcpRuntime::TcpRuntime(Options options)
    : MailboxRuntime(MailboxRuntime::Options{options.timeout,
                                             options.quiet_window}),
      options_(std::move(options)) {}

TcpRuntime::~TcpRuntime() { Shutdown(); }

void TcpRuntime::RegisterPeer(NodeId id, PeerHandler* handler) {
  MailboxRuntime::RegisterPeer(id, handler);
  Status listening = OpenListener(id);
  if (!listening.ok()) {
    P2PDB_LOG(kError) << "node " << id
                      << " cannot listen: " << listening.ToString();
  }
}

void TcpRuntime::UnregisterPeer(NodeId id) {
  // Socket teardown first: after this, frames to `id` are refused or reset by
  // the kernel, which is exactly what the dropped counter observes.
  CloseListener(id);
  CloseOutbound(id);
  MailboxRuntime::UnregisterPeer(id);
}

void TcpRuntime::Send(Message msg) {
  msg.seq = NextSeq();
  stats_.RecordSend(msg);
  Endpoint endpoint;
  Outbound* conn = nullptr;
  {
    std::lock_guard<std::mutex> lock(net_mutex_);
    auto it = endpoints_.find(msg.to);
    if (it != endpoints_.end()) endpoint = it->second;
    auto& slot = outbound_[msg.to];
    if (slot == nullptr) slot = std::make_unique<Outbound>();
    conn = slot.get();
  }
  if (endpoint.port == 0) {
    CountDrop();
    P2PDB_LOG(kWarn) << "dropping message to unknown endpoint: "
                     << msg.ToString();
    return;
  }
  std::vector<uint8_t> frame = EncodeFrame(msg);
  std::lock_guard<std::mutex> lock(conn->mutex);
  // Reconnect-on-send: the cached connection may point at a dead (crashed or
  // pre-restart) incarnation of the peer; one fresh connect gets the current
  // endpoint table row a chance.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (conn->fd < 0) {
      conn->fd = ConnectTo(endpoint);
      if (conn->fd < 0) continue;
    }
    if (WriteAll(conn->fd, frame.data(), frame.size())) return;
    ::close(conn->fd);
    conn->fd = -1;
  }
  CountDrop();
  P2PDB_LOG(kWarn) << "kernel refused delivery (" << std::strerror(errno)
                   << "): " << msg.ToString();
}

void TcpRuntime::AddRemoteEndpoint(NodeId id, Endpoint endpoint) {
  std::lock_guard<std::mutex> lock(net_mutex_);
  endpoints_[id] = std::move(endpoint);
}

TcpRuntime::Endpoint TcpRuntime::EndpointOf(NodeId id) const {
  std::lock_guard<std::mutex> lock(net_mutex_);
  auto it = endpoints_.find(id);
  return it == endpoints_.end() ? Endpoint{} : it->second;
}

Status TcpRuntime::PeerReady(NodeId id) const {
  std::lock_guard<std::mutex> lock(net_mutex_);
  if (listeners_.count(id) == 0) {
    return Status::Internal("node " + std::to_string(id) +
                            " has no listening endpoint");
  }
  return Status::OK();
}

uint16_t TcpRuntime::ListenPort(NodeId id) const {
  std::lock_guard<std::mutex> lock(net_mutex_);
  auto it = listeners_.find(id);
  return it == listeners_.end() ? 0 : it->second->port;
}

std::string TcpRuntime::EndpointTable() const {
  std::lock_guard<std::mutex> lock(net_mutex_);
  std::string out;
  for (const auto& [id, endpoint] : endpoints_) {
    out += StrFormat("%u %s\n", id, endpoint.ToString().c_str());
  }
  return out;
}

Status TcpRuntime::OpenListener(NodeId id) {
  auto listener = std::make_unique<Listener>();
  listener->node = id;
  listener->fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener->fd < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(listener->fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // Kernel-assigned port.
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listener->fd);
    return Status::InvalidArgument("bad listen host " + options_.host);
  }
  if (::bind(listener->fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener->fd, SOMAXCONN) != 0) {
    ::close(listener->fd);
    return Status::Internal("cannot listen on " + options_.host + ": " +
                            std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listener->fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    ::close(listener->fd);
    return Status::Internal("getsockname failed");
  }
  listener->port = ntohs(addr.sin_port);

  std::lock_guard<std::mutex> lock(net_mutex_);
  if (listeners_.count(id) > 0) {
    // Registered twice without a crash in between: keep the first listener
    // (its port is already in other runtimes' tables).
    ::close(listener->fd);
    return Status::OK();
  }
  endpoints_[id] = Endpoint{options_.host, listener->port};
  Listener* raw = listener.get();
  listeners_[id] = std::move(listener);
  raw->accept_thread = std::thread(&TcpRuntime::AcceptLoop, this, raw);
  return Status::OK();
}

void TcpRuntime::ReapFinishedReaders(Listener* listener) {
  std::vector<std::unique_ptr<ReaderThread>> finished;
  {
    std::lock_guard<std::mutex> lock(listener->mutex);
    for (auto it = listener->readers.begin();
         it != listener->readers.end();) {
      if ((*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = listener->readers.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& reader : finished) {
    if (reader->thread.joinable()) reader->thread.join();
  }
}

void TcpRuntime::AcceptLoop(Listener* listener) {
  while (!listener->stop.load()) {
    ReapFinishedReaders(listener);
    pollfd pfd{listener->fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;
    int fd = ::accept(listener->fd, nullptr, nullptr);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(listener->mutex);
    if (listener->stop.load()) {
      ::close(fd);
      return;
    }
    listener->conn_fds.push_back(fd);
    auto reader = std::make_unique<ReaderThread>();
    ReaderThread* raw = reader.get();
    listener->readers.push_back(std::move(reader));
    raw->thread = std::thread(&TcpRuntime::ReadLoop, this, listener, fd, raw);
  }
}

void TcpRuntime::ReadLoop(Listener* listener, int fd, ReaderThread* self) {
  FrameAssembler assembler;
  uint8_t buffer[64 * 1024];
  std::vector<Message> messages;
  // While the assembler holds a partial frame, that frame is in-flight work
  // quiescence must wait for (nothing else counts it: the sender's write
  // completed and no mailbox has seen the message yet).
  bool holding = false;
  while (!listener->stop.load()) {
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n == 0) break;  // Clean close by the sender.
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // Reset — the sender crashed.
    }
    if (!holding) {
      HoldWork();
      holding = true;
    }
    messages.clear();
    Status fed = assembler.Feed(buffer, static_cast<size_t>(n), &messages);
    for (Message& msg : messages) Deliver(std::move(msg));
    if (assembler.buffered_bytes() == 0) {
      ReleaseWork();
      holding = false;
    }
    if (!fed.ok()) {
      // A poisoned stream cannot be resynchronized; drop the connection.
      P2PDB_LOG(kWarn) << "closing corrupt stream to node " << listener->node
                       << ": " << fed.ToString();
      break;
    }
  }
  if (holding) ReleaseWork();
  {
    std::lock_guard<std::mutex> lock(listener->mutex);
    for (auto it = listener->conn_fds.begin();
         it != listener->conn_fds.end(); ++it) {
      if (*it == fd) {
        listener->conn_fds.erase(it);
        ::close(fd);
        break;
      }
    }
  }
  self->done.store(true);  // Reapable by the accept loop (or CloseListener).
}

void TcpRuntime::CloseListener(NodeId id) {
  std::unique_ptr<Listener> listener;
  {
    std::lock_guard<std::mutex> lock(net_mutex_);
    auto it = listeners_.find(id);
    if (it == listeners_.end()) return;
    listener = std::move(it->second);
    listeners_.erase(it);
  }
  listener->stop.store(true);
  if (listener->accept_thread.joinable()) listener->accept_thread.join();
  std::vector<std::unique_ptr<ReaderThread>> readers;
  {
    std::lock_guard<std::mutex> lock(listener->mutex);
    // Unblock readers parked in poll/recv; each closes its own fd on exit.
    for (int fd : listener->conn_fds) ::shutdown(fd, SHUT_RDWR);
    readers.swap(listener->readers);
  }
  for (auto& reader : readers) {
    if (reader->thread.joinable()) reader->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(listener->mutex);
    for (int fd : listener->conn_fds) ::close(fd);
    listener->conn_fds.clear();
  }
  ::close(listener->fd);
  listener->fd = -1;
}

void TcpRuntime::CloseOutbound(NodeId id) {
  Outbound* conn = nullptr;
  {
    std::lock_guard<std::mutex> lock(net_mutex_);
    auto it = outbound_.find(id);
    if (it == outbound_.end()) return;
    conn = it->second.get();
  }
  std::lock_guard<std::mutex> lock(conn->mutex);
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
}

void TcpRuntime::StopIo() {
  std::vector<NodeId> ids;
  {
    std::lock_guard<std::mutex> lock(net_mutex_);
    for (const auto& [id, listener] : listeners_) {
      (void)listener;
      ids.push_back(id);
    }
  }
  for (NodeId id : ids) {
    CloseListener(id);
    CloseOutbound(id);
  }
  std::lock_guard<std::mutex> lock(net_mutex_);
  for (auto& [id, conn] : outbound_) {
    (void)id;
    std::lock_guard<std::mutex> conn_lock(conn->mutex);
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
}

}  // namespace p2pdb::net
