#include "src/net/tcp_runtime.h"

#include <cstring>

#include "src/obs/metrics.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace p2pdb::net {

std::string TcpRuntime::Endpoint::ToString() const {
  return host + ":" + std::to_string(port);
}

Result<TcpRuntime::Endpoint> TcpRuntime::Endpoint::Parse(
    const std::string& text) {
  size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size()) {
    return Status::ParseError("endpoint '" + text + "' is not host:port");
  }
  Endpoint out;
  out.host = text.substr(0, colon);
  long port = 0;
  for (size_t i = colon + 1; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') {
      return Status::ParseError("endpoint '" + text + "' has a bad port");
    }
    port = port * 10 + (text[i] - '0');
    if (port > 65535) {
      return Status::ParseError("endpoint '" + text + "' port out of range");
    }
  }
  out.port = static_cast<uint16_t>(port);
  return out;
}

TcpRuntime::TcpRuntime(Options options)
    : MailboxRuntime(MailboxRuntime::Options{options.timeout,
                                             options.quiet_window}),
      options_(std::move(options)) {
  Reactor::Options reactor_options;
  reactor_options.workers = options_.io_workers;
  reactor_options.send_queue_limit = options_.send_queue_limit;
  reactor_options.connect_timeout = options_.connect_timeout;
  reactor_options.counters = &stats_.io();
  reactor_ = std::make_unique<Reactor>(reactor_options,
                                       static_cast<Reactor::Handler*>(this));
}

TcpRuntime::~TcpRuntime() { Shutdown(); }

void TcpRuntime::RegisterPeer(NodeId id, PeerHandler* handler) {
  MailboxRuntime::RegisterPeer(id, handler);
  Status listening = OpenListener(id);
  if (!listening.ok()) {
    P2PDB_LOG(kError) << "node " << id
                      << " cannot listen: " << listening.ToString();
  }
}

void TcpRuntime::UnregisterPeer(NodeId id) {
  {
    std::lock_guard<std::mutex> lock(net_mutex_);
    listen_ports_.erase(id);
    // The endpoint row stays: reconnect-on-send probes the stale port (the
    // kernel refuses, counted as drops) until a restart overwrites it.
    outbound_.erase(id);
  }
  // Socket teardown before handler detach: after this, frames to `id` are
  // refused or reset by the kernel, which is exactly what the dropped
  // counter observes. Closes `id`'s listener, the connections accepted on
  // it, and the shared outbound connection to `id`.
  reactor_->CloseToken(id);
  MailboxRuntime::UnregisterPeer(id);
}

std::shared_ptr<Connection> TcpRuntime::OutboundFor(NodeId to) {
  std::lock_guard<std::mutex> lock(net_mutex_);
  auto it = endpoints_.find(to);
  if (it == endpoints_.end() || it->second.port == 0) return nullptr;
  auto& slot = outbound_[to];
  if (slot == nullptr || slot->closed()) {
    // Reconnect-on-send: the cached connection may point at a dead (crashed
    // or pre-restart) incarnation of the peer; a fresh connect gives the
    // current endpoint table row a chance.
    if (slot != nullptr) {
      static obs::Counter* reconnects =
          obs::Registry::Global().GetCounter("net.reconnects");
      reconnects->Increment();
    }
    slot = reactor_->Connect(it->second.host, it->second.port, to);
  }
  return slot;
}

TcpRuntime::BatchScope& TcpRuntime::ThisThreadBatchScope() {
  static thread_local BatchScope scope;
  return scope;
}

void TcpRuntime::BeginDispatch() {
  BatchScope& scope = ThisThreadBatchScope();
  if (scope.owner == nullptr) {
    scope.owner = this;
    scope.depth = 1;
  } else if (scope.owner == this) {
    ++scope.depth;  // Defensive: nested dispatch on one thread.
  }
  // A different runtime's bracket is already open on this thread: leave it
  // alone — our sends simply go out unbatched.
}

void TcpRuntime::EndDispatch() {
  BatchScope& scope = ThisThreadBatchScope();
  if (scope.owner != this || --scope.depth > 0) return;
  for (auto& [to, batch] : scope.dests) FlushDest(to, batch);
  scope.dests.clear();
  scope.owner = nullptr;
}

void TcpRuntime::Send(Message msg) {
  msg.seq = NextSeq();
  // Per-message accounting happens here, before coalescing, so batched
  // messages keep their own MessageType and logical wire size in NetStats —
  // kBatch never appears in the per-type tables. The transport-level saving
  // shows up in io() instead (frames_enqueued vs messages).
  stats_.RecordSend(msg);
  // In-flight from here until the receiving runtime credits the frame that
  // carries this message as consumed (or the frame is dropped) — quiescence
  // is exact, no kernel-buffer blind spot.
  HoldWork();
  BatchScope& scope = ThisThreadBatchScope();
  if (scope.owner == this) {
    if (!msg.urgent && options_.batch_max_bytes > 0) {
      PendingBatch& batch = scope.dests[msg.to];
      msg.payload.EnsureOwned();  // Must outlive the dispatch's read buffer.
      batch.payload_bytes += msg.payload.size();
      NodeId to = msg.to;
      batch.messages.push_back(std::move(msg));
      if (batch.payload_bytes >= options_.batch_max_bytes) {
        FlushDest(to, batch);
      }
      return;
    }
    // Urgent (or coalescing disabled): anything already pending for this
    // destination goes first, keeping per-destination FIFO order.
    auto it = scope.dests.find(msg.to);
    if (it != scope.dests.end()) FlushDest(msg.to, it->second);
  }
  NodeId to = msg.to;
  TransmitFrame(to, EncodeFrame(msg), 1);
}

void TcpRuntime::FlushDest(NodeId to, PendingBatch& batch) {
  if (batch.messages.empty()) return;
  if (batch.messages.size() == 1) {
    TransmitFrame(to, EncodeFrame(batch.messages.front()), 1);
  } else {
    stats_.io().batch_frames.fetch_add(1);
    stats_.io().batched_messages.fetch_add(batch.messages.size());
    TransmitFrame(to, EncodeBatchFrame(batch.messages),
                  static_cast<uint32_t>(batch.messages.size()));
  }
  batch.messages.clear();
  batch.payload_bytes = 0;
}

std::shared_ptr<TcpRuntime::ConnState> TcpRuntime::StateFor(Connection* conn) {
  std::lock_guard<std::mutex> lock(states_mutex_);
  auto it = conn_states_.find(conn);
  if (it != conn_states_.end()) return it->second;
  auto state = std::make_shared<ConnState>();
  // Checked under states_mutex_: OnClose (which sets closed before running)
  // extracts the map entry under the same lock, so either we insert before
  // the extraction (and OnClose drains our entries) or we observe closed()
  // here and never insert a ledger nobody would drain.
  if (conn->closed()) {
    state->send_closed = true;
    return state;  // Ephemeral: callers self-account against it.
  }
  conn_states_.emplace(conn, state);
  return state;
}

void TcpRuntime::DrainAckedLocked(ConnState& st) {
  while (st.frames_acked < st.credit_target && !st.ledger.empty()) {
    uint32_t messages = st.ledger.front();
    st.ledger.pop_front();
    st.frames_acked += 1;
    for (uint32_t i = 0; i < messages; ++i) ReleaseWork();
  }
}

void TcpRuntime::HandleCredit(Connection* conn, uint64_t credit) {
  std::shared_ptr<ConnState> st = StateFor(conn);
  std::lock_guard<std::mutex> lock(st->mutex);
  if (credit > st->credit_target) st->credit_target = credit;
  DrainAckedLocked(*st);
}

void TcpRuntime::TransmitFrame(NodeId to, std::vector<uint8_t> frame,
                               uint32_t messages) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::shared_ptr<Connection> conn = OutboundFor(to);
    if (conn == nullptr) {
      for (uint32_t i = 0; i < messages; ++i) {
        ReleaseWork();
        CountDrop();
      }
      P2PDB_LOG(kWarn) << "dropping " << messages
                       << " message(s) to unknown endpoint (node " << to
                       << ")";
      return;
    }
    // On success the reactor owns the frame; a false return means the
    // connection closed underneath us and the frame is untouched — retry
    // once on a fresh connection.
    if (conn->Enqueue(std::move(frame))) {
      stats_.io().frames_enqueued.fetch_add(1);
      std::shared_ptr<ConnState> st = StateFor(conn.get());
      std::lock_guard<std::mutex> lock(st->mutex);
      if (st->send_closed) {
        // OnClose already drained this connection's ledger, so the reactor
        // cleared its queue and this frame died with it: account it here.
        for (uint32_t i = 0; i < messages; ++i) {
          ReleaseWork();
          CountDrop();
        }
        return;
      }
      st->ledger.push_back(messages);
      st->frames_enqueued += 1;
      // A credit can race ahead of this append (the receiver consumed the
      // frame before we got the ledger entry in): drain immediately.
      DrainAckedLocked(*st);
      return;
    }
  }
  for (uint32_t i = 0; i < messages; ++i) {
    ReleaseWork();
    CountDrop();
  }
  P2PDB_LOG(kWarn) << "kernel refused delivery of " << messages
                   << " message(s) to node " << to;
}

Status TcpRuntime::AddRemoteEndpoint(NodeId id, Endpoint endpoint) {
  std::lock_guard<std::mutex> lock(net_mutex_);
  auto it = endpoints_.find(id);
  if (it != endpoints_.end()) {
    if (it->second.host == endpoint.host && it->second.port == endpoint.port) {
      return Status::OK();  // Idempotent re-add (a re-applied table).
    }
    P2PDB_LOG(kWarn) << "endpoint conflict for node " << id << ": have "
                     << it->second.ToString() << ", refusing remap to "
                     << endpoint.ToString();
    return Status::AlreadyExists(
        "node " + std::to_string(id) + " is already mapped to " +
        it->second.ToString() + "; refusing remap to " + endpoint.ToString());
  }
  endpoints_[id] = std::move(endpoint);
  return Status::OK();
}

TcpRuntime::Endpoint TcpRuntime::EndpointOf(NodeId id) const {
  std::lock_guard<std::mutex> lock(net_mutex_);
  auto it = endpoints_.find(id);
  return it == endpoints_.end() ? Endpoint{} : it->second;
}

Status TcpRuntime::PeerReady(NodeId id) const {
  std::lock_guard<std::mutex> lock(net_mutex_);
  if (listen_ports_.count(id) == 0) {
    return Status::Internal("node " + std::to_string(id) +
                            " has no listening endpoint");
  }
  return Status::OK();
}

uint16_t TcpRuntime::ListenPort(NodeId id) const {
  std::lock_guard<std::mutex> lock(net_mutex_);
  auto it = listen_ports_.find(id);
  return it == listen_ports_.end() ? 0 : it->second;
}

std::string TcpRuntime::EndpointTable() const {
  std::lock_guard<std::mutex> lock(net_mutex_);
  std::string out;
  for (const auto& [id, endpoint] : endpoints_) {
    out += StrFormat("%u %s\n", id, endpoint.ToString().c_str());
  }
  return out;
}

Status TcpRuntime::OpenListener(NodeId id) {
  {
    std::lock_guard<std::mutex> lock(net_mutex_);
    if (listen_ports_.count(id) > 0) {
      // Registered twice without a crash in between: keep the first listener
      // (its port is already in other runtimes' tables).
      return Status::OK();
    }
  }
  Result<uint16_t> port =
      reactor_->Listen(options_.host, id, options_.listen_port);
  if (!port.ok()) return port.status();
  std::lock_guard<std::mutex> lock(net_mutex_);
  listen_ports_[id] = *port;
  endpoints_[id] = Endpoint{options_.host, *port};
  return Status::OK();
}

bool TcpRuntime::OnRead(Connection* conn, const uint8_t* data, size_t size) {
  std::shared_ptr<ConnState> state = StateFor(conn);
  if (!state->holding) {
    HoldWork();
    state->holding = true;
  }
  // Complete frames dispatch straight out of the reactor's read buffer: the
  // payload view stays borrowed through an inline dispatch and is only
  // copied when the destination mailbox is busy. Credits never reach a
  // mailbox — they retire this runtime's send ledger on the spot.
  Status fed = state->assembler.FeedViews(
      data, size, [this, conn](const FrameView& view) {
        if (view.type == MessageType::kCredit) {
          auto credit = DecodeCreditPayload(view);
          if (credit.ok()) HandleCredit(conn, *credit);
          return;
        }
        DispatchFromTransport(view.BorrowMessage());
      });
  if (state->holding && state->assembler.buffered_bytes() == 0) {
    ReleaseWork();
    state->holding = false;
  }
  // Receiver half of the credit protocol: ack every frame consumed off an
  // inbound connection so the sending runtime can retire its holds. The
  // credit is sent after the dispatches above, so the sender's hold always
  // outlives the start of the receiver's own accounting — the global
  // in-flight count can never dip to zero mid-handoff. Credits themselves
  // arrive on outbound connections and are exempt, so the exchange cannot
  // regress. Enqueue from the owning worker never blocks.
  if (conn->inbound()) {
    uint64_t consumed = state->assembler.frames_decoded();
    if (consumed > state->credited_out) {
      state->credited_out = consumed;
      if (conn->Enqueue(
              EncodeCreditFrame(static_cast<NodeId>(conn->token()),
                                consumed))) {
        stats_.io().credit_frames.fetch_add(1);
      }
    }
  }
  if (!fed.ok()) {
    // A poisoned stream cannot be resynchronized; drop the connection.
    P2PDB_LOG(kWarn) << "closing corrupt stream to node " << conn->token()
                     << ": " << fed.ToString();
    return false;
  }
  return true;
}

void TcpRuntime::OnWritten(Connection* conn, size_t frames) {
  // Only outbound connections carry ledger-tracked frames (inbound ones
  // carry our credit acks, which are untracked). The count feeds OnClose's
  // written-vs-dropped split; holds are released by credits, not here.
  if (conn->inbound()) return;
  StateFor(conn)->written_frames.fetch_add(frames);
}

void TcpRuntime::OnClose(Connection* conn, size_t dropped_frames) {
  (void)dropped_frames;  // The ledger below is message-accurate.
  std::shared_ptr<ConnState> state;
  {
    std::lock_guard<std::mutex> lock(states_mutex_);
    auto it = conn_states_.find(conn);
    if (it == conn_states_.end()) return;
    state = std::move(it->second);
    conn_states_.erase(it);
  }
  if (state->holding) ReleaseWork();  // Partial inbound frame dies with the fd.
  uint64_t dropped_messages = 0;
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->send_closed = true;
    // Ledger entries the kernel never fully took (index beyond the written
    // count) died for sure; written-but-uncredited frames may or may not
    // have reached the peer — like the pre-credit design, they are not
    // counted as drops (the kernel accepted them), but their holds must be
    // released or quiescence would wait on a dead connection forever.
    uint64_t written = state->written_frames.load();
    uint64_t index = state->frames_acked;  // Global index of ledger.front().
    while (!state->ledger.empty()) {
      uint32_t messages = state->ledger.front();
      state->ledger.pop_front();
      ++index;
      if (index > written) dropped_messages += messages;
      for (uint32_t i = 0; i < messages; ++i) ReleaseWork();
    }
  }
  for (uint64_t i = 0; i < dropped_messages; ++i) CountDrop();
  if (dropped_messages > 0) {
    P2PDB_LOG(kWarn) << "kernel refused delivery of " << dropped_messages
                     << " message(s) to node " << conn->token();
  }
}

std::string TcpRuntime::PendingWorkReport() const {
  std::string report = MailboxRuntime::PendingWorkReport();
  std::lock_guard<std::mutex> lock(net_mutex_);
  for (const auto& [to, conn] : outbound_) {
    if (conn == nullptr) continue;
    size_t queued = conn->queued_bytes();
    uint64_t uncredited = 0;
    {
      std::lock_guard<std::mutex> states_lock(states_mutex_);
      auto it = conn_states_.find(conn.get());
      if (it != conn_states_.end()) {
        std::lock_guard<std::mutex> st_lock(it->second->mutex);
        uncredited = it->second->frames_enqueued - it->second->frames_acked;
      }
    }
    if (queued == 0 && uncredited == 0) continue;
    report += "  -> node " + std::to_string(to) + ": " +
              std::to_string(queued) + " unsent bytes, " +
              std::to_string(uncredited) + " uncredited frame(s)" +
              (conn->closed() ? " (connection closed)" : "") + "\n";
  }
  return report;
}

void TcpRuntime::StopIo() { reactor_->Stop(); }

}  // namespace p2pdb::net
