#include "src/net/mailbox_runtime.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/util/logging.h"

namespace p2pdb::net {

MailboxRuntime::MailboxRuntime(Options options)
    : options_(options), start_time_(std::chrono::steady_clock::now()) {}

MailboxRuntime::~MailboxRuntime() {
  // Backstop only: subclasses call Shutdown() in their own destructor, while
  // their I/O threads and the StopIo override still exist.
  Shutdown();
}

void MailboxRuntime::RegisterPeer(NodeId id, PeerHandler* handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = mailboxes_.find(id);
  if (it == mailboxes_.end()) {
    auto box = std::make_unique<Mailbox>();
    box->handler = handler;
    Mailbox* raw = box.get();
    mailboxes_[id] = std::move(box);
    if (started_) {
      threads_.emplace_back(&MailboxRuntime::PeerLoop, this, raw);
    }
    return;
  }
  // Restarted peer: the mailbox and its worker live on, only the handler is
  // rebound.
  std::lock_guard<std::mutex> box_lock(it->second->mutex);
  it->second->handler = handler;
}

void MailboxRuntime::UnregisterPeer(NodeId id) {
  Mailbox* box = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = mailboxes_.find(id);
    if (it == mailboxes_.end()) return;
    box = it->second.get();
  }
  std::unique_lock<std::mutex> box_lock(box->mutex);
  box->handler = nullptr;
  if (!box->queue.empty()) {
    dropped_.fetch_add(box->queue.size());
    in_flight_.fetch_sub(box->queue.size());
    box->queue.clear();
  }
  // The caller will destroy the handler object; wait out any dispatch that
  // captured it before we nulled the pointer.
  box->cv.wait(box_lock, [&] { return !box->busy; });
}

void MailboxRuntime::Deliver(Message msg) {
  Mailbox* box = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = mailboxes_.find(msg.to);
    if (it != mailboxes_.end()) box = it->second.get();
  }
  if (box == nullptr) {
    CountDrop();
    P2PDB_LOG(kWarn) << "dropping message to unknown peer: " << msg.ToString();
    return;
  }
  {
    std::lock_guard<std::mutex> box_lock(box->mutex);
    if (box->handler == nullptr) {
      CountDrop();
      P2PDB_LOG(kWarn) << "dropping message to crashed peer: "
                       << msg.ToString();
      return;
    }
    in_flight_.fetch_add(1);
    if (obs::DetailedTimingEnabled() || msg.trace.active()) {
      msg.queued_micros = NowMicros();  // PeerLoop turns this into a wait.
    }
    box->queue.push_back(std::move(msg));
  }
  box->cv.notify_one();
}

void MailboxRuntime::DispatchFromTransport(Message&& msg) {
  Mailbox* box = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = mailboxes_.find(msg.to);
    if (it != mailboxes_.end()) box = it->second.get();
  }
  if (box == nullptr) {
    CountDrop();
    P2PDB_LOG(kWarn) << "dropping message to unknown peer: " << msg.ToString();
    return;
  }
  PeerHandler* handler = nullptr;
  {
    std::lock_guard<std::mutex> box_lock(box->mutex);
    if (box->handler == nullptr) {
      CountDrop();
      P2PDB_LOG(kWarn) << "dropping message to crashed peer: "
                       << msg.ToString();
      return;
    }
    if (box->busy || !box->queue.empty()) {
      // Busy or backlogged: hand off to the peer's worker thread. The
      // transport read buffer is reused the moment this returns, so a
      // borrowed payload must become owned before it is queued.
      in_flight_.fetch_add(1);
      msg.payload.EnsureOwned();
      if (obs::DetailedTimingEnabled() || msg.trace.active()) {
        msg.queued_micros = NowMicros();
      }
      box->queue.push_back(std::move(msg));
      stats_.io().queued_dispatches.fetch_add(1);
      box->cv.notify_one();
      return;
    }
    box->busy = true;  // Claims dispatch rights; PeerLoop waits on !busy.
    handler = box->handler;
    in_flight_.fetch_add(1);
  }
  stats_.io().inline_dispatches.fetch_add(1);
  if (obs::DetailedTimingEnabled() || msg.trace.active()) {
    // Inline dispatch skipped the queue entirely: record the zero wait so
    // the wait distribution covers every delivered message, not just the
    // queued slow path.
    static obs::Histogram* wait =
        obs::Registry::Global().GetHistogram("net.mailbox_wait_micros");
    wait->Record(0);
  }
  if (tracer_) tracer_(NowMicros(), msg);
  BeginDispatch();
  handler->OnMessage(msg);
  EndDispatch();
  {
    std::lock_guard<std::mutex> lock(box->mutex);
    box->busy = false;
  }
  box->cv.notify_all();
  in_flight_.fetch_sub(1);
}

void MailboxRuntime::RunExclusive(NodeId id, const std::function<void()>& fn) {
  Mailbox* box = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = mailboxes_.find(id);
    if (it != mailboxes_.end()) box = it->second.get();
  }
  if (box == nullptr) {
    fn();  // Never-registered peer: no dispatch to exclude.
    return;
  }
  {
    std::unique_lock<std::mutex> box_lock(box->mutex);
    box->cv.wait(box_lock, [&] { return !box->busy; });
    box->busy = true;  // Claims dispatch rights; see DispatchFromTransport.
  }
  BeginDispatch();
  fn();
  EndDispatch();
  {
    std::lock_guard<std::mutex> box_lock(box->mutex);
    box->busy = false;
  }
  box->cv.notify_all();
}

void MailboxRuntime::ScheduleSend(uint64_t time_micros, Message msg) {
  in_flight_.fetch_add(1);  // Released when the timer hands it to Send.
  {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    timer_queue_.emplace_back(time_micros, std::move(msg));
  }
  timer_cv_.notify_one();
}

uint64_t MailboxRuntime::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
}

void MailboxRuntime::PeerLoop(Mailbox* box) {
  for (;;) {
    Message msg;
    PeerHandler* handler = nullptr;
    {
      std::unique_lock<std::mutex> lock(box->mutex);
      // !busy: an inline transport dispatch may be inside the handler; per-
      // peer serialization means this worker must not start another one.
      box->cv.wait(lock, [&] {
        return stop_.load() || (!box->queue.empty() && !box->busy);
      });
      if (stop_.load()) return;  // Leftovers die with the runtime.
      msg = std::move(box->queue.front());
      box->queue.pop_front();
      handler = box->handler;
      box->busy = true;
    }
    if (msg.queued_micros != 0) {
      // Rewrite the enqueue stamp into the measured wait, so the handler's
      // trace span sees its mailbox residency directly.
      uint64_t now = NowMicros();
      msg.queued_micros = now >= msg.queued_micros ? now - msg.queued_micros
                                                   : 0;
      static obs::Histogram* wait =
          obs::Registry::Global().GetHistogram("net.mailbox_wait_micros");
      wait->Record(msg.queued_micros);
    }
    if (handler != nullptr) {
      if (tracer_) tracer_(NowMicros(), msg);
      BeginDispatch();
      handler->OnMessage(msg);
      EndDispatch();
    } else {
      CountDrop();  // Unregistered between enqueue and dispatch.
    }
    {
      std::lock_guard<std::mutex> lock(box->mutex);
      box->busy = false;
    }
    box->cv.notify_all();
    in_flight_.fetch_sub(1);
  }
}

void MailboxRuntime::TimerLoop() {
  std::unique_lock<std::mutex> lock(timer_mutex_);
  while (!stop_.load()) {
    if (timer_queue_.empty()) {
      timer_cv_.wait_for(lock, std::chrono::milliseconds(1));
      continue;
    }
    auto soonest = std::min_element(
        timer_queue_.begin(), timer_queue_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    uint64_t now = NowMicros();
    if (soonest->first > now) {
      timer_cv_.wait_for(lock,
                         std::chrono::microseconds(soonest->first - now));
      continue;
    }
    Message msg = std::move(soonest->second);
    timer_queue_.erase(soonest);
    lock.unlock();
    Send(std::move(msg));
    in_flight_.fetch_sub(1);  // The ScheduleSend hold.
    lock.lock();
  }
}

std::string MailboxRuntime::PendingWorkReport() const {
  std::string report;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, box] : mailboxes_) {
      size_t queued;
      bool busy;
      {
        std::lock_guard<std::mutex> box_lock(box->mutex);
        queued = box->queue.size();
        busy = box->busy;
      }
      if (queued == 0 && !busy) continue;
      report += "  peer " + std::to_string(id) + ": " +
                std::to_string(queued) + " queued" +
                (busy ? ", handler running" : "") + "\n";
    }
  }
  {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    if (!timer_queue_.empty()) {
      report +=
          "  " + std::to_string(timer_queue_.size()) + " pending timers\n";
    }
  }
  return report;
}

void MailboxRuntime::EnsureStarted() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_) return;
    started_ = true;
    stop_.store(false);
    for (auto& [id, box] : mailboxes_) {
      (void)id;
      threads_.emplace_back(&MailboxRuntime::PeerLoop, this, box.get());
    }
    timer_thread_ = std::thread(&MailboxRuntime::TimerLoop, this);
  }
  StartIo();
}

Status MailboxRuntime::Run() {
  EnsureStarted();
  auto deadline = std::chrono::steady_clock::now() + options_.timeout;
  // Quiescence: in_flight_ observed zero continuously for the quiet window
  // (handlers only send from within handlers, so zero is stable once true
  // unless a timer later fires; pending timers keep in_flight_ > 0).
  std::chrono::steady_clock::time_point zero_since{};
  bool was_zero = false;
  for (;;) {
    auto now = std::chrono::steady_clock::now();
    if (now > deadline) {
      std::string pending = PendingWorkReport();
      P2PDB_LOG(kWarn) << "quiescence not reached by deadline; pending work:\n"
                       << (pending.empty() ? "  (untracked in-flight holds)\n"
                                           : pending);
      return Status::Internal(
          "MailboxRuntime: quiescence not reached in time (in flight: " +
          std::to_string(in_flight_.load()) + ")\n" + pending);
    }
    if (in_flight_.load() == 0) {
      // A zero quiet window means the accounting is exact (every unit of
      // work is held from creation to consumption), so the first observed
      // zero IS quiescence — no wall-clock heuristic.
      if (options_.quiet_window.count() == 0) return Status::OK();
      if (!was_zero) {
        was_zero = true;
        zero_since = now;
      } else if (now - zero_since >= options_.quiet_window) {
        return Status::OK();
      }
    } else {
      was_zero = false;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

Status MailboxRuntime::RunUntil(uint64_t time_micros) {
  EnsureStarted();
  // Wall clock is not controllable: let the delivery threads work until the
  // requested elapsed time, then hand control back (used by churn drivers to
  // crash a peer mid-run).
  while (NowMicros() < time_micros) {
    uint64_t remaining = time_micros - NowMicros();
    std::this_thread::sleep_for(
        std::chrono::microseconds(std::min<uint64_t>(remaining, 1'000)));
  }
  if (uint64_t holds = in_flight_.load(); holds != 0) {
    // Expected under churn (that is what RunUntil is for), but say what is
    // still moving so a stuck fixpoint is debuggable from the log alone.
    P2PDB_LOG(kDebug) << "RunUntil deadline with " << holds
                      << " in-flight holds; pending work:\n"
                      << PendingWorkReport();
  }
  return Status::OK();
}

void MailboxRuntime::Shutdown() {
  StopIo();
  std::vector<std::thread> workers;
  std::thread timer;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    started_ = false;
    stop_.store(true);
    workers.swap(threads_);
    timer.swap(timer_thread_);
    for (auto& [id, box] : mailboxes_) {
      (void)id;
      box->cv.notify_all();
    }
  }
  timer_cv_.notify_all();
  for (std::thread& t : workers) t.join();
  if (timer.joinable()) timer.join();
}

}  // namespace p2pdb::net
