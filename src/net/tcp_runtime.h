// TcpRuntime: peers as real network endpoints. Every registered peer owns a
// listening TCP socket (loopback by default, kernel-assigned port), every
// Send() serializes the message through the frame codec (net/frame.h) and
// queues it on a per-destination connection, and a small epoll reactor pool
// (net/reactor.h) drives all sockets — nonblocking accept/read/write, writev
// batching of queued frames, zero-copy frame reassembly straight out of the
// reactor's read buffer into MailboxRuntime's dispatch. The endpoint table
// (NodeId -> host:port) routes sends; entries for local peers are filled in
// automatically, remote entries let a network span several runtimes (or,
// eventually, processes).
//
// Churn is a connection event, as in the dynamic-P2P literature: crashing a
// peer (UnregisterPeer) closes its listener and sockets, so messages to it
// die in the kernel — refused connections and reset writes are what the
// dropped counter counts, not a simulation flag. A restarted peer re-listens
// on a fresh port; senders recover via reconnect-on-send.
#ifndef P2PDB_NET_TCP_RUNTIME_H_
#define P2PDB_NET_TCP_RUNTIME_H_

#include <map>
#include <memory>
#include <string>

#include "src/net/frame.h"
#include "src/net/mailbox_runtime.h"
#include "src/net/reactor.h"

namespace p2pdb::net {

class TcpRuntime : public MailboxRuntime, private Reactor::Handler {
 public:
  /// One row of the endpoint table.
  struct Endpoint {
    std::string host;
    uint16_t port = 0;

    std::string ToString() const;
    /// Parses "host:port" (the on-disk/CLI endpoint table format).
    static Result<Endpoint> Parse(const std::string& text);
  };

  struct Options {
    /// Run() fails if quiescence is not reached within this bound.
    std::chrono::milliseconds timeout{30'000};
    /// Quiescence quiet window. The reactor's send queues are counted as
    /// in-flight work (held from Enqueue until the frame reaches the kernel
    /// or is dropped), so the window only has to cover kernel socket-buffer
    /// residency — microseconds on loopback — plus scheduling noise. Raise
    /// it when endpoints cross real links.
    std::chrono::microseconds quiet_window{10'000};
    /// Address listeners bind to (and the host recorded for local peers).
    std::string host = "127.0.0.1";
    /// Reactor worker (event-loop) threads; 0 = hardware concurrency.
    int io_workers = 0;
    /// Per-connection send-queue bound; senders to a slow receiver block
    /// once its queue holds this many bytes.
    size_t send_queue_limit = 4u << 20;
    /// Bound on one nonblocking connect attempt.
    std::chrono::milliseconds connect_timeout{1'000};
  };

  TcpRuntime() : TcpRuntime(Options{}) {}
  explicit TcpRuntime(Options options);
  ~TcpRuntime() override;

  /// Registers the handler and opens the peer's listening socket; the
  /// endpoint table gains (or updates, for a restarted peer) its row.
  void RegisterPeer(NodeId id, PeerHandler* handler) override;

  /// Crash as connection teardown: closes the peer's listener and every
  /// socket touching it, then detaches the handler. In-flight frames die in
  /// the kernel; later sends fail to connect and are counted dropped.
  void UnregisterPeer(NodeId id) override;

  /// Fails when `id` has no live listener (RegisterPeer could not bind, or
  /// the peer was unregistered) — such a peer silently drops every message.
  Status PeerReady(NodeId id) const override;

  /// Frames the message and queues it on the destination's connection,
  /// opening or reviving the connection as needed (one reconnect attempt — a
  /// restarted peer listens on a new port). The reactor writes it out
  /// asynchronously; failures are dropped messages, counted when the kernel
  /// refuses them.
  void Send(Message msg) override;

  // --- Endpoint table ---

  /// Routes sends for a peer hosted by another runtime/process.
  void AddRemoteEndpoint(NodeId id, Endpoint endpoint);

  /// The endpoint a send to `id` would use; port 0 when unknown.
  Endpoint EndpointOf(NodeId id) const;

  /// The local listening port of `id` (0 when not a listening local peer).
  uint16_t ListenPort(NodeId id) const;

  /// Printable table, one "node host:port" row per known endpoint.
  std::string EndpointTable() const;

 protected:
  void StopIo() override;

  /// Adds transport residency to the mailbox report: unsent bytes sitting in
  /// per-destination send queues and partially reassembled inbound frames.
  std::string PendingWorkReport() const override;

 private:
  /// Per-connection frame reassembly, hung off Connection::user_data and
  /// touched only by the connection's owning reactor worker. While the
  /// assembler holds a partial frame, that frame is in-flight work
  /// quiescence must wait for (nothing else counts it: the sender released
  /// its hold when the bytes reached the kernel, and no mailbox has seen the
  /// message yet).
  struct ReadState {
    FrameAssembler assembler;
    bool holding = false;
  };

  // Reactor::Handler (reactor worker threads).
  bool OnRead(Connection* conn, const uint8_t* data, size_t size) override;
  void OnWritten(Connection* conn, size_t frames) override;
  void OnClose(Connection* conn, size_t dropped_frames) override;

  /// Opens a listening socket for `id` and records its endpoint; keeps the
  /// first listener when `id` is already listening.
  Status OpenListener(NodeId id);

  /// The cached outbound connection to `to`, reconnected if dead; nullptr
  /// when the endpoint table has no row.
  std::shared_ptr<Connection> OutboundFor(NodeId to);

  Options options_;
  std::unique_ptr<Reactor> reactor_;
  mutable std::mutex net_mutex_;  // endpoints_, listen_ports_, outbound_.
  std::map<NodeId, Endpoint> endpoints_;
  std::map<NodeId, uint16_t> listen_ports_;
  std::map<NodeId, std::shared_ptr<Connection>> outbound_;
};

}  // namespace p2pdb::net

#endif  // P2PDB_NET_TCP_RUNTIME_H_
