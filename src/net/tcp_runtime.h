// TcpRuntime: peers as real network endpoints. Every registered peer owns a
// listening TCP socket (loopback by default, kernel-assigned port), every
// Send() serializes the message through the frame codec (net/frame.h) and
// writes it to a per-destination connection, and background reader threads
// reassemble frames back into messages for the shared mailbox dispatch of
// MailboxRuntime. The endpoint table (NodeId -> host:port) routes sends;
// entries for local peers are filled in automatically, remote entries let a
// network span several runtimes (or, eventually, processes).
//
// Churn is a connection event, as in the dynamic-P2P literature: crashing a
// peer (UnregisterPeer) closes its listener and sockets, so messages to it
// die in the kernel — refused connections and reset writes are what the
// dropped counter counts, not a simulation flag. A restarted peer re-listens
// on a fresh port; senders recover via reconnect-on-send.
#ifndef P2PDB_NET_TCP_RUNTIME_H_
#define P2PDB_NET_TCP_RUNTIME_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/mailbox_runtime.h"

namespace p2pdb::net {

class TcpRuntime : public MailboxRuntime {
 public:
  /// One row of the endpoint table.
  struct Endpoint {
    std::string host;
    uint16_t port = 0;

    std::string ToString() const;
    /// Parses "host:port" (the on-disk/CLI endpoint table format).
    static Result<Endpoint> Parse(const std::string& text);
  };

  struct Options {
    /// Run() fails if quiescence is not reached within this bound.
    std::chrono::milliseconds timeout{30'000};
    /// Quiescence quiet window; wider than ThreadRuntime's because a frame
    /// briefly lives only in a kernel socket buffer, invisible to the
    /// in-flight counter.
    std::chrono::microseconds quiet_window{25'000};
    /// Address listeners bind to (and the host recorded for local peers).
    std::string host = "127.0.0.1";
  };

  TcpRuntime() : TcpRuntime(Options{}) {}
  explicit TcpRuntime(Options options);
  ~TcpRuntime() override;

  /// Registers the handler and opens the peer's listening socket; the
  /// endpoint table gains (or updates, for a restarted peer) its row.
  void RegisterPeer(NodeId id, PeerHandler* handler) override;

  /// Crash as connection teardown: closes the peer's listener and every
  /// socket touching it, then detaches the handler. In-flight frames die in
  /// the kernel; later sends fail to connect and are counted dropped.
  void UnregisterPeer(NodeId id) override;

  /// Fails when `id` has no live listener (RegisterPeer could not bind, or
  /// the peer was unregistered) — such a peer silently drops every message.
  Status PeerReady(NodeId id) const override;

  /// Frames and writes the message to the destination's endpoint, opening or
  /// reviving the connection as needed (one reconnect attempt — a restarted
  /// peer listens on a new port). Failures are dropped messages.
  void Send(Message msg) override;

  // --- Endpoint table ---

  /// Routes sends for a peer hosted by another runtime/process.
  void AddRemoteEndpoint(NodeId id, Endpoint endpoint);

  /// The endpoint a send to `id` would use; port 0 when unknown.
  Endpoint EndpointOf(NodeId id) const;

  /// The local listening port of `id` (0 when not a listening local peer).
  uint16_t ListenPort(NodeId id) const;

  /// Printable table, one "node host:port" row per known endpoint.
  std::string EndpointTable() const;

 protected:
  void StopIo() override;

 private:
  /// One reader thread per accepted connection; `done` lets the accept loop
  /// reap exited readers so long-lived runtimes don't accumulate zombies.
  struct ReaderThread {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// A local peer's listening socket plus the connections accepted on it.
  struct Listener {
    NodeId node = kNoNode;
    int fd = -1;
    uint16_t port = 0;
    std::atomic<bool> stop{false};
    std::thread accept_thread;
    std::mutex mutex;  // Guards conn_fds and readers.
    std::vector<int> conn_fds;
    std::vector<std::unique_ptr<ReaderThread>> readers;
  };

  /// Cached outbound connection to one destination; writes are serialized.
  /// Entries are never erased (fd is just closed), so pointers stay stable.
  struct Outbound {
    std::mutex mutex;
    int fd = -1;
  };

  void AcceptLoop(Listener* listener);
  void ReadLoop(Listener* listener, int fd, ReaderThread* self);
  /// Joins and discards readers whose connection has ended.
  static void ReapFinishedReaders(Listener* listener);
  /// Opens a listening socket for `id` and records its endpoint.
  Status OpenListener(NodeId id);
  /// Extracts `id`'s listener and tears it down (joins its threads).
  void CloseListener(NodeId id);
  /// Closes the cached outbound connection to `id`, if any.
  void CloseOutbound(NodeId id);

  Options options_;
  mutable std::mutex net_mutex_;  // endpoints_, listeners_, outbound_.
  std::map<NodeId, Endpoint> endpoints_;
  std::map<NodeId, std::unique_ptr<Listener>> listeners_;
  std::map<NodeId, std::unique_ptr<Outbound>> outbound_;
};

}  // namespace p2pdb::net

#endif  // P2PDB_NET_TCP_RUNTIME_H_
