// TcpRuntime: peers as real network endpoints. Every registered peer owns a
// listening TCP socket (loopback by default, kernel-assigned port), every
// Send() serializes the message through the frame codec (net/frame.h) and
// queues it on a per-destination connection, and a small epoll reactor pool
// (net/reactor.h) drives all sockets — nonblocking accept/read/write, writev
// batching of queued frames, zero-copy frame reassembly straight out of the
// reactor's read buffer into MailboxRuntime's dispatch. The endpoint table
// (NodeId -> host:port) routes sends; entries for local peers are filled in
// automatically, remote entries let a network span several runtimes (or,
// eventually, processes).
//
// Churn is a connection event, as in the dynamic-P2P literature: crashing a
// peer (UnregisterPeer) closes its listener and sockets, so messages to it
// die in the kernel — refused connections and reset writes are what the
// dropped counter counts, not a simulation flag. A restarted peer re-listens
// on a fresh port; senders recover via reconnect-on-send.
#ifndef P2PDB_NET_TCP_RUNTIME_H_
#define P2PDB_NET_TCP_RUNTIME_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/net/frame.h"
#include "src/net/mailbox_runtime.h"
#include "src/net/reactor.h"

namespace p2pdb::net {

class TcpRuntime : public MailboxRuntime, private Reactor::Handler {
 public:
  /// One row of the endpoint table.
  struct Endpoint {
    std::string host;
    uint16_t port = 0;

    std::string ToString() const;
    /// Parses "host:port" (the on-disk/CLI endpoint table format).
    static Result<Endpoint> Parse(const std::string& text);
  };

  struct Options {
    /// Run() fails if quiescence is not reached within this bound.
    std::chrono::milliseconds timeout{30'000};
    /// Quiescence quiet window. 0 (the default) means termination is exact:
    /// every message is held in-flight from Send() until the receiving
    /// runtime credits its frame back as consumed (kCredit acks), so Run()
    /// returns the moment the global in-flight count hits zero — no
    /// heuristic sleep. A nonzero window restores the legacy wait-out-the-
    /// clock behavior (kept for benchmarking the heuristic against exact
    /// termination; not needed for correctness).
    std::chrono::microseconds quiet_window{0};
    /// Address listeners bind to (and the host recorded for local peers).
    std::string host = "127.0.0.1";
    /// Fixed listening port; 0 (the default) lets the kernel pick. A daemon
    /// whose config file owns its endpoint binds the configured port so the
    /// rest of the fleet's endpoint tables survive its re-exec. Only
    /// meaningful for single-peer runtimes (p2pdb_peerd): with several local
    /// peers, all but the first listener would collide.
    uint16_t listen_port = 0;
    /// Reactor worker (event-loop) threads; 0 = hardware concurrency.
    int io_workers = 0;
    /// Per-connection send-queue bound; senders to a slow receiver block
    /// once its queue holds this many bytes.
    size_t send_queue_limit = 4u << 20;
    /// Bound on one nonblocking connect attempt.
    std::chrono::milliseconds connect_timeout{1'000};
    /// Coalescing cap: messages a handler sends to one destination during a
    /// single dispatch are packed into one kBatch frame (one length prefix,
    /// one CRC, one writev entry), flushed at dispatch end or as soon as the
    /// pending batch's payload bytes reach this cap. 0 disables coalescing
    /// (every message travels in its own frame, the pre-batching behavior).
    size_t batch_max_bytes = 56u << 10;
  };

  TcpRuntime() : TcpRuntime(Options{}) {}
  explicit TcpRuntime(Options options);
  ~TcpRuntime() override;

  /// Registers the handler and opens the peer's listening socket; the
  /// endpoint table gains (or updates, for a restarted peer) its row.
  void RegisterPeer(NodeId id, PeerHandler* handler) override;

  /// Crash as connection teardown: closes the peer's listener and every
  /// socket touching it, then detaches the handler. In-flight frames die in
  /// the kernel; later sends fail to connect and are counted dropped.
  void UnregisterPeer(NodeId id) override;

  /// Fails when `id` has no live listener (RegisterPeer could not bind, or
  /// the peer was unregistered) — such a peer silently drops every message.
  Status PeerReady(NodeId id) const override;

  /// Frames the message and queues it on the destination's connection,
  /// opening or reviving the connection as needed (one reconnect attempt — a
  /// restarted peer listens on a new port). The reactor writes it out
  /// asynchronously; failures are dropped messages, counted when the kernel
  /// refuses them.
  void Send(Message msg) override;

  // --- Endpoint table ---

  /// Routes sends for a peer hosted by another runtime/process. Re-adding
  /// the exact endpoint already on file is an idempotent no-op (a re-applied
  /// bootstrap table), but a DIFFERENT endpoint for a known node is rejected
  /// with kAlreadyExists and the table is left unchanged — a silent remap
  /// would quietly redirect a live node's traffic on a typo'd config.
  Status AddRemoteEndpoint(NodeId id, Endpoint endpoint);

  /// The endpoint a send to `id` would use; port 0 when unknown.
  Endpoint EndpointOf(NodeId id) const;

  /// The local listening port of `id` (0 when not a listening local peer).
  uint16_t ListenPort(NodeId id) const;

  /// Printable table, one "node host:port" row per known endpoint.
  std::string EndpointTable() const;

 protected:
  void StopIo() override;

  /// Coalescing bracket (see MailboxRuntime): sends made between Begin and
  /// End are buffered per destination and flushed as kBatch frames at End.
  void BeginDispatch() override;
  void EndDispatch() override;

  /// Adds transport residency to the mailbox report: unsent bytes sitting in
  /// per-destination send queues and frames awaiting the receiver's credit.
  std::string PendingWorkReport() const override;

 private:
  /// Per-connection transport state, owned by conn_states_ (shared_ptr so a
  /// sender thread can finish its bookkeeping while OnClose retires the
  /// entry concurrently).
  ///
  /// Read half (touched only by the connection's owning reactor worker):
  /// frame reassembly plus the receiver side of the credit protocol — the
  /// cumulative count of frames consumed off this connection, credited back
  /// to the peer runtime as kCredit frames. While the assembler holds a
  /// partial frame, `holding` pins one in-flight unit (the sender's hold has
  /// moved on once the frame was consumed; a half-read frame is still work).
  ///
  /// Send half (mutex-guarded, any thread): the sender side — one ledger
  /// entry per tracked frame accepted by Enqueue, recording how many
  /// messages it carries. Entries retire in FIFO order as the receiver's
  /// cumulative credit covers them (releasing their quiescence holds) or at
  /// OnClose (released; counted dropped when the kernel never took them).
  struct ConnState {
    // Owning reactor worker only.
    FrameAssembler assembler;
    bool holding = false;
    uint64_t credited_out = 0;  // Frames already acked back to the sender.

    // Sender half.
    std::mutex mutex;
    bool send_closed = false;      // OnClose ran; the ledger is drained.
    uint64_t frames_enqueued = 0;  // Cumulative tracked frames accepted.
    uint64_t frames_acked = 0;     // Cumulative frames retired by credit.
    uint64_t credit_target = 0;    // Highest cumulative credit received.
    std::deque<uint32_t> ledger;   // Messages per outstanding frame.
    std::atomic<uint64_t> written_frames{0};  // Cumulative OnWritten count.
  };

  /// One thread's in-progress coalescing bracket: messages buffered per
  /// destination until EndDispatch (or the batch cap) flushes them.
  struct PendingBatch {
    std::vector<Message> messages;
    size_t payload_bytes = 0;
  };
  struct BatchScope {
    TcpRuntime* owner = nullptr;
    int depth = 0;
    std::map<NodeId, PendingBatch> dests;
  };
  static BatchScope& ThisThreadBatchScope();

  // Reactor::Handler (reactor worker threads).
  bool OnRead(Connection* conn, const uint8_t* data, size_t size) override;
  void OnWritten(Connection* conn, size_t frames) override;
  void OnClose(Connection* conn, size_t dropped_frames) override;

  /// Opens a listening socket for `id` and records its endpoint; keeps the
  /// first listener when `id` is already listening.
  Status OpenListener(NodeId id);

  /// The cached outbound connection to `to`, reconnected if dead; nullptr
  /// when the endpoint table has no row.
  std::shared_ptr<Connection> OutboundFor(NodeId to);

  /// The connection's ConnState, created on first use. For an already-closed
  /// connection whose state was retired, returns an ephemeral send_closed
  /// state so callers self-account instead of writing to a dead ledger.
  std::shared_ptr<ConnState> StateFor(Connection* conn);

  /// Ships one encoded frame carrying `messages` in-flight holds to `to`
  /// (reconnecting once), appends it to the connection's credit ledger, and
  /// on failure releases the holds as drops.
  void TransmitFrame(NodeId to, std::vector<uint8_t> frame, uint32_t messages);

  /// Sends `batch` (coalesced if >1 message) and resets it.
  void FlushDest(NodeId to, PendingBatch& batch);

  /// Receiver credit arrived on outbound connection `conn`: retire ledger
  /// entries up to the new cumulative target.
  void HandleCredit(Connection* conn, uint64_t credit);

  /// Retires credited ledger entries, releasing their holds. Caller holds
  /// st.mutex.
  void DrainAckedLocked(ConnState& st);

  Options options_;
  std::unique_ptr<Reactor> reactor_;
  mutable std::mutex net_mutex_;  // endpoints_, listen_ports_, outbound_.
  std::map<NodeId, Endpoint> endpoints_;
  std::map<NodeId, uint16_t> listen_ports_;
  std::map<NodeId, std::shared_ptr<Connection>> outbound_;
  mutable std::mutex states_mutex_;  // conn_states_.
  std::map<const Connection*, std::shared_ptr<ConnState>> conn_states_;
};

}  // namespace p2pdb::net

#endif  // P2PDB_NET_TCP_RUNTIME_H_
