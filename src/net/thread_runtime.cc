#include "src/net/thread_runtime.h"

#include <algorithm>

#include "src/util/logging.h"

namespace p2pdb::net {

ThreadRuntime::ThreadRuntime(Options options)
    : options_(options), start_time_(std::chrono::steady_clock::now()) {}

ThreadRuntime::~ThreadRuntime() { StopThreads(); }

void ThreadRuntime::RegisterPeer(NodeId id, PeerHandler* handler) {
  auto box = std::make_unique<Mailbox>();
  box->handler = handler;
  mailboxes_[id] = std::move(box);
}

void ThreadRuntime::Send(Message msg) {
  msg.seq = next_seq_.fetch_add(1);
  stats_.RecordSend(msg);
  auto it = mailboxes_.find(msg.to);
  if (it == mailboxes_.end()) {
    P2PDB_LOG(kWarn) << "dropping message to unknown peer: " << msg.ToString();
    return;
  }
  in_flight_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(it->second->mutex);
    it->second->queue.push_back(std::move(msg));
  }
  it->second->cv.notify_one();
}

void ThreadRuntime::ScheduleSend(uint64_t time_micros, Message msg) {
  in_flight_.fetch_add(1);  // Released when the timer hands it to Send.
  {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    timer_queue_.emplace_back(time_micros, std::move(msg));
  }
  timer_cv_.notify_one();
}

uint64_t ThreadRuntime::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
}

void ThreadRuntime::PeerLoop(NodeId id, Mailbox* box) {
  (void)id;
  for (;;) {
    Message msg;
    {
      std::unique_lock<std::mutex> lock(box->mutex);
      box->cv.wait(lock,
                   [&] { return stop_.load() || !box->queue.empty(); });
      if (box->queue.empty()) return;  // stop_ set and drained
      msg = std::move(box->queue.front());
      box->queue.pop_front();
    }
    if (tracer_) tracer_(NowMicros(), msg);
    box->handler->OnMessage(msg);
    in_flight_.fetch_sub(1);
  }
}

void ThreadRuntime::TimerLoop() {
  std::unique_lock<std::mutex> lock(timer_mutex_);
  while (!stop_.load()) {
    if (timer_queue_.empty()) {
      timer_cv_.wait_for(lock, std::chrono::milliseconds(1));
      continue;
    }
    auto soonest = std::min_element(
        timer_queue_.begin(), timer_queue_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    uint64_t now = NowMicros();
    if (soonest->first > now) {
      timer_cv_.wait_for(lock,
                         std::chrono::microseconds(soonest->first - now));
      continue;
    }
    Message msg = std::move(soonest->second);
    timer_queue_.erase(soonest);
    lock.unlock();
    Send(std::move(msg));
    in_flight_.fetch_sub(1);  // The ScheduleSend hold.
    lock.lock();
  }
}

Status ThreadRuntime::Run() {
  if (!threads_started_) {
    threads_started_ = true;
    stop_.store(false);
    for (auto& [id, box] : mailboxes_) {
      threads_.emplace_back(&ThreadRuntime::PeerLoop, this, id, box.get());
    }
    timer_thread_ = std::thread(&ThreadRuntime::TimerLoop, this);
  }
  auto deadline = std::chrono::steady_clock::now() + options_.timeout;
  // Quiescence: in_flight_ observed zero twice with a pause in between
  // (handlers only send from within handlers, so zero is stable once true
  // unless a timer later fires; pending timers keep in_flight_ > 0).
  int stable = 0;
  while (stable < 3) {
    if (std::chrono::steady_clock::now() > deadline) {
      return Status::Internal("ThreadRuntime: quiescence not reached in time");
    }
    if (in_flight_.load() == 0) {
      ++stable;
    } else {
      stable = 0;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return Status::OK();
}

void ThreadRuntime::StopThreads() {
  if (!threads_started_) return;
  stop_.store(true);
  for (auto& [id, box] : mailboxes_) {
    box->cv.notify_all();
  }
  timer_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  if (timer_thread_.joinable()) timer_thread_.join();
  threads_.clear();
  threads_started_ = false;
}

}  // namespace p2pdb::net
