#include "src/net/runtime.h"

namespace p2pdb::net {

// Runtime is an interface; implementations live in sim_runtime.cc and
// thread_runtime.cc. This translation unit anchors the vtable.

}  // namespace p2pdb::net
