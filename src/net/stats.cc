#include "src/net/stats.h"

#include "src/util/string_util.h"

namespace p2pdb::net {

void NetStats::RecordSend(const Message& msg) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t bytes = msg.WireSize();
  total_messages_ += 1;
  total_bytes_ += bytes;
  PipeStats& by_type = per_type_[msg.type];
  by_type.messages += 1;
  by_type.bytes += bytes;
  PipeStats& by_pipe = per_pipe_[{msg.from, msg.to}];
  by_pipe.messages += 1;
  by_pipe.bytes += bytes;
}

void NetStats::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  total_messages_ = 0;
  total_bytes_ = 0;
  per_type_.clear();
  per_pipe_.clear();
}

uint64_t NetStats::total_messages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_messages_;
}

uint64_t NetStats::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_bytes_;
}

uint64_t NetStats::MessagesOfType(MessageType type) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = per_type_.find(type);
  return it == per_type_.end() ? 0 : it->second.messages;
}

uint64_t NetStats::BytesOfType(MessageType type) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = per_type_.find(type);
  return it == per_type_.end() ? 0 : it->second.bytes;
}

std::map<std::pair<NodeId, NodeId>, PipeStats> NetStats::PerPipe() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return per_pipe_;
}

std::string NetStats::Report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out =
      StrFormat("messages=%llu bytes=%llu\n",
                static_cast<unsigned long long>(total_messages_),
                static_cast<unsigned long long>(total_bytes_));
  for (const auto& [type, stats] : per_type_) {
    out += StrFormat("  %-16s msgs=%-8llu bytes=%llu\n", MessageTypeName(type),
                     static_cast<unsigned long long>(stats.messages),
                     static_cast<unsigned long long>(stats.bytes));
  }
  return out;
}

}  // namespace p2pdb::net
