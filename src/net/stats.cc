#include "src/net/stats.h"

#include "src/obs/metrics.h"
#include "src/util/string_util.h"

namespace p2pdb::net {

void IoCounters::RecordQueueDepth(uint64_t bytes) {
  uint64_t seen = send_queue_hwm_bytes.load(std::memory_order_relaxed);
  while (bytes > seen && !send_queue_hwm_bytes.compare_exchange_weak(
                             seen, bytes, std::memory_order_relaxed)) {
  }
}

double IoCounters::FramesPerWritev() const {
  uint64_t calls = writev_calls.load();
  return calls == 0 ? 0.0
                    : static_cast<double>(writev_frames.load()) /
                          static_cast<double>(calls);
}

void IoCounters::Reset() {
  epoll_wakeups = 0;
  writev_calls = 0;
  writev_frames = 0;
  writev_bytes = 0;
  accepts = 0;
  connects = 0;
  connect_failures = 0;
  inline_dispatches = 0;
  queued_dispatches = 0;
  send_queue_hwm_bytes = 0;
  frames_enqueued = 0;
  batch_frames = 0;
  batched_messages = 0;
  credit_frames = 0;
}

std::string IoCounters::Report() const {
  return StrFormat(
      "io: wakeups=%llu writev=%llu frames=%llu (%.2f/call) bytes=%llu "
      "accepts=%llu connects=%llu (failed %llu) dispatch inline=%llu "
      "queued=%llu queue_hwm=%llu enqueued=%llu batches=%llu (carrying %llu) "
      "credits=%llu\n",
      static_cast<unsigned long long>(epoll_wakeups.load()),
      static_cast<unsigned long long>(writev_calls.load()),
      static_cast<unsigned long long>(writev_frames.load()), FramesPerWritev(),
      static_cast<unsigned long long>(writev_bytes.load()),
      static_cast<unsigned long long>(accepts.load()),
      static_cast<unsigned long long>(connects.load()),
      static_cast<unsigned long long>(connect_failures.load()),
      static_cast<unsigned long long>(inline_dispatches.load()),
      static_cast<unsigned long long>(queued_dispatches.load()),
      static_cast<unsigned long long>(send_queue_hwm_bytes.load()),
      static_cast<unsigned long long>(frames_enqueued.load()),
      static_cast<unsigned long long>(batch_frames.load()),
      static_cast<unsigned long long>(batched_messages.load()),
      static_cast<unsigned long long>(credit_frames.load()));
}

void NetStats::RecordSend(const Message& msg) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t bytes = msg.WireSize();
  total_messages_ += 1;
  total_bytes_ += bytes;
  PipeStats& by_type = per_type_[msg.type];
  by_type.messages += 1;
  by_type.bytes += bytes;
  PipeStats& by_pipe = per_pipe_[{msg.from, msg.to}];
  by_pipe.messages += 1;
  by_pipe.bytes += bytes;
}

void NetStats::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  total_messages_ = 0;
  total_bytes_ = 0;
  per_type_.clear();
  per_pipe_.clear();
  io_.Reset();
}

uint64_t NetStats::total_messages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_messages_;
}

uint64_t NetStats::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_bytes_;
}

uint64_t NetStats::MessagesOfType(MessageType type) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = per_type_.find(type);
  return it == per_type_.end() ? 0 : it->second.messages;
}

uint64_t NetStats::BytesOfType(MessageType type) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = per_type_.find(type);
  return it == per_type_.end() ? 0 : it->second.bytes;
}

std::map<std::pair<NodeId, NodeId>, PipeStats> NetStats::PerPipe() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return per_pipe_;
}

void NetStats::ExportTo(obs::Registry& registry,
                        const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  registry.GetCounter(prefix + "messages")->Add(total_messages_);
  registry.GetCounter(prefix + "bytes")->Add(total_bytes_);
  for (const auto& [type, stats] : per_type_) {
    std::string type_prefix = prefix + "type." + MessageTypeName(type) + ".";
    registry.GetCounter(type_prefix + "messages")->Add(stats.messages);
    registry.GetCounter(type_prefix + "bytes")->Add(stats.bytes);
  }
  registry.GetCounter(prefix + "io.epoll_wakeups")->Add(io_.epoll_wakeups);
  registry.GetCounter(prefix + "io.writev_calls")->Add(io_.writev_calls);
  registry.GetCounter(prefix + "io.writev_frames")->Add(io_.writev_frames);
  registry.GetCounter(prefix + "io.writev_bytes")->Add(io_.writev_bytes);
  registry.GetCounter(prefix + "io.accepts")->Add(io_.accepts);
  registry.GetCounter(prefix + "io.connects")->Add(io_.connects);
  registry.GetCounter(prefix + "io.connect_failures")
      ->Add(io_.connect_failures);
  registry.GetCounter(prefix + "io.frames_enqueued")->Add(io_.frames_enqueued);
  registry.GetCounter(prefix + "io.batch_frames")->Add(io_.batch_frames);
  registry.GetCounter(prefix + "io.batched_messages")
      ->Add(io_.batched_messages);
  registry.GetCounter(prefix + "io.credit_frames")->Add(io_.credit_frames);
  uint64_t inline_d = io_.inline_dispatches.load();
  uint64_t queued_d = io_.queued_dispatches.load();
  registry.GetCounter(prefix + "io.inline_dispatches")->Add(inline_d);
  registry.GetCounter(prefix + "io.queued_dispatches")->Add(queued_d);
  if (inline_d + queued_d > 0) {
    registry.GetGauge(prefix + "io.inline_dispatch_ratio_x1000")
        ->Set(static_cast<int64_t>(inline_d * 1000 / (inline_d + queued_d)));
  }
  registry.GetGauge(prefix + "io.send_queue_hwm_bytes")
      ->RaiseTo(static_cast<int64_t>(io_.send_queue_hwm_bytes.load()));
}

std::string NetStats::Report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out =
      StrFormat("messages=%llu bytes=%llu\n",
                static_cast<unsigned long long>(total_messages_),
                static_cast<unsigned long long>(total_bytes_));
  for (const auto& [type, stats] : per_type_) {
    out += StrFormat("  %-16s msgs=%-8llu bytes=%llu\n", MessageTypeName(type),
                     static_cast<unsigned long long>(stats.messages),
                     static_cast<unsigned long long>(stats.bytes));
  }
  return out;
}

}  // namespace p2pdb::net
