#include "src/net/sim_runtime.h"

#include <limits>

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace p2pdb::net {

SimRuntime::SimRuntime(Options options)
    : options_(options), rng_(options.seed) {}

void SimRuntime::RegisterPeer(NodeId id, PeerHandler* handler) {
  peers_[id] = handler;
}

void SimRuntime::UnregisterPeer(NodeId id) { peers_.erase(id); }

namespace {
bool IsIdempotentType(MessageType type) {
  switch (type) {
    case MessageType::kDiscoverRequest:
    case MessageType::kDiscoverAnswer:
    case MessageType::kDiscoverClosure:
    case MessageType::kUpdateStart:
    case MessageType::kQueryRequest:
    case MessageType::kQueryAnswer:
    case MessageType::kUnsubscribe:
    case MessageType::kPartialUpdate:
      return true;
    default:
      return false;
  }
}
}  // namespace

void SimRuntime::Send(Message msg) {
  msg.seq = next_seq_++;
  stats_.RecordSend(msg);
  uint64_t latency = pipes_.LatencyOf(msg.from, msg.to).Sample(&rng_);
  uint64_t delivery = now_micros_ + latency;
  // FIFO per directed link: never deliver before an earlier send on the link.
  uint64_t& last = last_delivery_[{msg.from, msg.to}];
  if (delivery < last) delivery = last;
  last = delivery;
  bool duplicate = options_.duplicate_prob > 0 &&
                   IsIdempotentType(msg.type) &&
                   rng_.NextBool(options_.duplicate_prob);
  if (duplicate) {
    Message copy = msg;
    copy.seq = next_seq_++;
    stats_.RecordSend(copy);
    // Same delivery time, later seq: arrives right after the original.
    queue_.push(Event{delivery, copy.seq, std::move(copy)});
  }
  queue_.push(Event{delivery, msg.seq, std::move(msg)});
}

void SimRuntime::ScheduleSend(uint64_t time_micros, Message msg) {
  msg.seq = next_seq_++;
  stats_.RecordSend(msg);
  uint64_t delivery = time_micros < now_micros_ ? now_micros_ : time_micros;
  queue_.push(Event{delivery, msg.seq, std::move(msg)});
}

Status SimRuntime::Drain(uint64_t until_micros) {
  uint64_t events_this_run = 0;
  while (!queue_.empty() && queue_.top().time <= until_micros) {
    Event ev = queue_.top();
    queue_.pop();
    now_micros_ = ev.time;
    ++delivered_;
    if (++events_this_run > options_.max_events) {
      return Status::Internal(
          StrFormat("SimRuntime exceeded %llu events; protocol likely "
                    "non-terminating",
                    static_cast<unsigned long long>(options_.max_events)));
    }
    auto it = peers_.find(ev.msg.to);
    if (it == peers_.end()) {
      // Destination unregistered (crashed) or never existed: the message is
      // lost, as on a real network when the process is gone.
      ++dropped_;
      P2PDB_LOG(kWarn) << "dropping message to unknown peer: "
                       << ev.msg.ToString();
      continue;
    }
    if (tracer_) tracer_(now_micros_, ev.msg);
    it->second->OnMessage(ev.msg);
  }
  return Status::OK();
}

Status SimRuntime::Run() {
  return Drain(std::numeric_limits<uint64_t>::max());
}

Status SimRuntime::RunUntil(uint64_t time_micros) {
  P2PDB_RETURN_IF_ERROR(Drain(time_micros));
  if (now_micros_ < time_micros) now_micros_ = time_micros;
  return Status::OK();
}

}  // namespace p2pdb::net
