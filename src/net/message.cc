#include "src/net/message.h"

#include "src/util/string_util.h"

namespace p2pdb::net {

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kDiscoverRequest:
      return "DiscoverRequest";
    case MessageType::kDiscoverAnswer:
      return "DiscoverAnswer";
    case MessageType::kDiscoverClosure:
      return "DiscoverClosure";
    case MessageType::kUpdateStart:
      return "UpdateStart";
    case MessageType::kQueryRequest:
      return "QueryRequest";
    case MessageType::kQueryAnswer:
      return "QueryAnswer";
    case MessageType::kUnsubscribe:
      return "Unsubscribe";
    case MessageType::kPartialUpdate:
      return "PartialUpdate";
    case MessageType::kToken:
      return "Token";
    case MessageType::kSccClosed:
      return "SccClosed";
    case MessageType::kReopen:
      return "Reopen";
    case MessageType::kAddRule:
      return "AddRule";
    case MessageType::kDeleteRule:
      return "DeleteRule";
    case MessageType::kBatch:
      return "Batch";
    case MessageType::kCredit:
      return "Credit";
    case MessageType::kBootstrap:
      return "Bootstrap";
    case MessageType::kBootstrapAck:
      return "BootstrapAck";
    case MessageType::kStartDiscovery:
      return "StartDiscovery";
    case MessageType::kStartUpdate:
      return "StartUpdate";
    case MessageType::kRefreshScc:
      return "RefreshScc";
    case MessageType::kStatusRequest:
      return "StatusRequest";
    case MessageType::kStatusReport:
      return "StatusReport";
    case MessageType::kDumpRequest:
      return "DumpRequest";
    case MessageType::kDumpReply:
      return "DumpReply";
    case MessageType::kShutdown:
      return "Shutdown";
  }
  return "Unknown";
}

bool IsKnownMessageType(uint8_t raw) {
  switch (static_cast<MessageType>(raw)) {
    case MessageType::kDiscoverRequest:
    case MessageType::kDiscoverAnswer:
    case MessageType::kDiscoverClosure:
    case MessageType::kUpdateStart:
    case MessageType::kQueryRequest:
    case MessageType::kQueryAnswer:
    case MessageType::kUnsubscribe:
    case MessageType::kPartialUpdate:
    case MessageType::kToken:
    case MessageType::kSccClosed:
    case MessageType::kReopen:
    case MessageType::kAddRule:
    case MessageType::kDeleteRule:
    case MessageType::kBatch:
    case MessageType::kCredit:
    case MessageType::kBootstrap:
    case MessageType::kBootstrapAck:
    case MessageType::kStartDiscovery:
    case MessageType::kStartUpdate:
    case MessageType::kRefreshScc:
    case MessageType::kStatusRequest:
    case MessageType::kStatusReport:
    case MessageType::kDumpRequest:
    case MessageType::kDumpReply:
    case MessageType::kShutdown:
      return true;
  }
  return false;
}

std::string Message::ToString() const {
  return StrFormat("%s %u->%u (%zu bytes, seq %llu)", MessageTypeName(type),
                   from, to, payload.size(),
                   static_cast<unsigned long long>(seq));
}

}  // namespace p2pdb::net
