#include "src/net/message.h"

#include "src/util/string_util.h"

namespace p2pdb::net {

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kDiscoverRequest:
      return "DiscoverRequest";
    case MessageType::kDiscoverAnswer:
      return "DiscoverAnswer";
    case MessageType::kDiscoverClosure:
      return "DiscoverClosure";
    case MessageType::kUpdateStart:
      return "UpdateStart";
    case MessageType::kQueryRequest:
      return "QueryRequest";
    case MessageType::kQueryAnswer:
      return "QueryAnswer";
    case MessageType::kUnsubscribe:
      return "Unsubscribe";
    case MessageType::kPartialUpdate:
      return "PartialUpdate";
    case MessageType::kToken:
      return "Token";
    case MessageType::kSccClosed:
      return "SccClosed";
    case MessageType::kReopen:
      return "Reopen";
    case MessageType::kAddRule:
      return "AddRule";
    case MessageType::kDeleteRule:
      return "DeleteRule";
  }
  return "Unknown";
}

std::string Message::ToString() const {
  return StrFormat("%s %u->%u (%zu bytes, seq %llu)", MessageTypeName(type),
                   from, to, payload.size(),
                   static_cast<unsigned long long>(seq));
}

}  // namespace p2pdb::net
