// Network: acquaintance bookkeeping above the runtime. When a node starts it
// opens pipes to the nodes it has coordination rules with (Section 5); several
// rules share a pipe, and a pipe closes when its last rule is dropped.
#ifndef P2PDB_NET_NETWORK_H_
#define P2PDB_NET_NETWORK_H_

#include <map>
#include <set>

#include "src/net/runtime.h"

namespace p2pdb::net {

class Network {
 public:
  explicit Network(Runtime* runtime) : runtime_(runtime) {}

  /// Registers that a coordination rule connects `head` and `body`; opens (or
  /// references) their shared pipe.
  void AddRuleLink(NodeId head, NodeId body);

  /// Drops one rule's use of the pipe; the pipe closes when unused.
  void RemoveRuleLink(NodeId head, NodeId body);

  /// Nodes sharing an open pipe with `node` (the node's acquaintances).
  std::set<NodeId> Acquaintances(NodeId node) const;

  size_t open_pipe_count() const { return runtime_->pipes().open_count(); }

  Runtime* runtime() { return runtime_; }

 private:
  Runtime* runtime_;
  std::map<NodeId, std::set<NodeId>> acquaintances_;
  std::map<std::pair<NodeId, NodeId>, int> link_rules_;
};

}  // namespace p2pdb::net

#endif  // P2PDB_NET_NETWORK_H_
