// Message frame codec: the on-wire form of net::Message, shared by the TCP
// runtime (socket streams) and the statistics module (true byte volumes).
//
// Frame layout (little-endian, serde primitives):
//   u32 length   bytes after this field (crc + header + payload)
//   u32 crc      CRC-32 of everything after the crc field
//   u8  type     MessageType
//   varint from  sender NodeId
//   varint to    destination NodeId
//   varint seq   runtime-assigned sequence number
//   varint trace trace id (0 = untraced)
//   varint pspan parent span id
//   varint hop   causal hop count from the trace root
//   payload      pre-serialized typed payload (core/wire.h)
//
// Like WAL records, a frame is either decoded whole or rejected: a CRC
// mismatch or truncated header fails DecodeFrame (and makes FrameAssembler
// report a poisoned stream, so a socket reader can drop the connection).
#ifndef P2PDB_NET_FRAME_H_
#define P2PDB_NET_FRAME_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/net/message.h"
#include "src/util/status.h"

namespace p2pdb::net {

/// Hard upper bound on one frame's `length` field. Anything larger is treated
/// as stream corruption (a desynchronized or hostile sender), not a message.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Serializes `msg` into one self-delimiting frame.
std::vector<uint8_t> EncodeFrame(const Message& msg);

/// Coalesces `msgs` (all to the same destination) into one kBatch frame: a
/// single length prefix and CRC cover every message, so N small sends cost
/// one frame header and one checksum instead of N. Batch payload layout:
///   varint count
///   count x { u8 type, varint from, varint to, varint seq, varint trace,
///             varint pspan, varint hop, varint payload_len, payload }
/// Each entry keeps its own TraceContext, so causal traces stitch exactly as
/// if the messages had traveled alone. Batches do not nest (an inner kBatch
/// poisons the stream). Requires msgs non-empty.
std::vector<uint8_t> EncodeBatchFrame(const std::vector<Message>& msgs);

/// Transport-internal delivery ack: a kCredit frame telling the sender that
/// `frames_consumed` frames (cumulative, counting batches as one) have been
/// consumed off this connection. Credits are never credited back themselves,
/// so the exchange cannot regress.
std::vector<uint8_t> EncodeCreditFrame(NodeId from, uint64_t frames_consumed);

/// Decodes exactly one frame. Fails on truncation, trailing bytes, a CRC
/// mismatch, an unknown message type, or an oversized length.
Result<Message> DecodeFrame(const std::vector<uint8_t>& bytes);

/// One CRC-verified frame whose payload still lives in the decode buffer —
/// the zero-copy handoff between a socket read and message dispatch. The
/// payload pointer is valid only as long as the underlying buffer (for
/// FrameAssembler::FeedViews, only during the sink call).
struct FrameView {
  MessageType type = MessageType::kDiscoverRequest;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  uint64_t seq = 0;
  TraceContext trace;
  const uint8_t* payload = nullptr;
  size_t payload_size = 0;

  /// Owning message (payload copied out of the buffer).
  Message ToMessage() const;
  /// Message whose payload borrows the buffer; the receiver must call
  /// payload.EnsureOwned() before the buffer is reused (net::Payload docs).
  Message BorrowMessage() const;
};

/// The cumulative consumed-frame count carried by a kCredit frame.
Result<uint64_t> DecodeCreditPayload(const FrameView& view);

/// Incremental frame reassembly over an arbitrary byte stream (socket reads
/// deliver fragments and coalesced frames alike). Frames that arrive whole in
/// one Feed are decoded in place — only a trailing partial frame is buffered
/// until the rest of the stream arrives. A framing error (oversized length,
/// CRC mismatch, undecodable header) poisons the stream — the caller should
/// close the connection, as there is no way to resynchronize; like a single
/// DecodeFrame, a corrupt frame is rejected whole (its sink is never called).
class FrameAssembler {
 public:
  using FrameSink = std::function<void(const FrameView&)>;

  /// Zero-copy feed: invokes `sink` once per completed message. A kBatch
  /// frame is unpacked in place — the sink fires once per inner message, each
  /// with its own header and TraceContext (never for the kBatch wrapper
  /// itself); a malformed or nested inner entry poisons the stream like any
  /// other framing error. The FrameView's payload points into `data` (or into
  /// the internal partial-frame buffer) and is invalidated when the sink
  /// returns.
  Status FeedViews(const uint8_t* data, size_t size, const FrameSink& sink);

  /// Owning feed: appends every completed message (payload copied) to `out`.
  Status Feed(const uint8_t* data, size_t size, std::vector<Message>* out);

  /// Bytes of an incomplete frame still waiting for the rest of the stream.
  size_t buffered_bytes() const { return buffer_.size(); }

  /// Cumulative count of completed wire frames (a batch counts once, however
  /// many messages it carries) — the unit of the credit-ack protocol: a
  /// receiver credits this number back so the sender can retire its
  /// per-frame send ledger (see TcpRuntime).
  uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  Status DeliverFrame(const FrameView& view, const FrameSink& sink);

  std::vector<uint8_t> buffer_;
  uint64_t frames_decoded_ = 0;
};

}  // namespace p2pdb::net

#endif  // P2PDB_NET_FRAME_H_
