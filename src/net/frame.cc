#include "src/net/frame.h"

#include "src/util/crc32.h"
#include "src/util/serde.h"

namespace p2pdb::net {

namespace {

constexpr size_t kLengthBytes = 4;
constexpr size_t kCrcBytes = 4;

/// Decodes the bytes after the length field (crc + header + payload), whose
/// extent `size` the caller has already established from that field.
Result<Message> DecodeFrameBody(const uint8_t* data, size_t size) {
  Reader r(data, size);
  auto crc = r.GetU32();
  if (!crc.ok()) return Status::ParseError("frame shorter than its CRC");
  if (Crc32(data + kCrcBytes, size - kCrcBytes) != *crc) {
    return Status::ParseError("frame CRC mismatch");
  }
  auto type = r.GetU8();
  auto from = r.GetVarint();
  auto to = r.GetVarint();
  auto seq = r.GetVarint();
  if (!type.ok() || !from.ok() || !to.ok() || !seq.ok()) {
    return Status::ParseError("truncated frame header");
  }
  if (!IsKnownMessageType(*type)) {
    return Status::ParseError("unknown message type " + std::to_string(*type));
  }
  if (*from > kNoNode || *to > kNoNode) {
    return Status::ParseError("frame node id out of range");
  }
  Message msg;
  msg.type = static_cast<MessageType>(*type);
  msg.from = static_cast<NodeId>(*from);
  msg.to = static_cast<NodeId>(*to);
  msg.seq = *seq;
  msg.payload.assign(data + (size - r.remaining()), data + size);
  return msg;
}

}  // namespace

size_t Message::WireSize() const {
  return kLengthBytes + kCrcBytes + 1 /* type */ + VarintLength(from) +
         VarintLength(to) + VarintLength(seq) + payload.size();
}

std::vector<uint8_t> EncodeFrame(const Message& msg) {
  Writer header;
  header.PutU8(static_cast<uint8_t>(msg.type));
  header.PutVarint(msg.from);
  header.PutVarint(msg.to);
  header.PutVarint(msg.seq);
  const std::vector<uint8_t>& head = header.bytes();

  uint32_t crc = Crc32Finish(
      Crc32Update(Crc32Update(kCrc32Init, head.data(), head.size()),
                  msg.payload.data(), msg.payload.size()));
  Writer frame;
  frame.PutU32(
      static_cast<uint32_t>(kCrcBytes + head.size() + msg.payload.size()));
  frame.PutU32(crc);
  frame.PutRaw(head.data(), head.size());
  frame.PutRaw(msg.payload.data(), msg.payload.size());
  return frame.TakeBytes();
}

Result<Message> DecodeFrame(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  auto length = r.GetU32();
  if (!length.ok()) return Status::ParseError("frame shorter than its length");
  if (*length > kMaxFrameBytes) {
    return Status::ParseError("frame length " + std::to_string(*length) +
                              " exceeds limit");
  }
  if (r.remaining() < *length) return Status::ParseError("truncated frame");
  if (r.remaining() > *length) {
    return Status::ParseError("trailing bytes after frame");
  }
  return DecodeFrameBody(bytes.data() + kLengthBytes, *length);
}

Status FrameAssembler::Feed(const uint8_t* data, size_t size,
                            std::vector<Message>* out) {
  buffer_.insert(buffer_.end(), data, data + size);
  size_t pos = 0;
  while (buffer_.size() - pos >= kLengthBytes) {
    uint32_t length = 0;
    for (int i = 0; i < 4; ++i) {
      length |= static_cast<uint32_t>(buffer_[pos + i]) << (8 * i);
    }
    if (length > kMaxFrameBytes) {
      return Status::ParseError("frame length " + std::to_string(length) +
                                " exceeds limit; stream desynchronized");
    }
    if (buffer_.size() - pos - kLengthBytes < length) break;  // Partial frame.
    auto msg = DecodeFrameBody(buffer_.data() + pos + kLengthBytes, length);
    if (!msg.ok()) return msg.status();
    out->push_back(msg.MoveValue());
    pos += kLengthBytes + length;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + pos);
  return Status::OK();
}

}  // namespace p2pdb::net
