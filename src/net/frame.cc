#include "src/net/frame.h"

#include <algorithm>

#include "src/util/crc32.h"
#include "src/util/serde.h"

namespace p2pdb::net {

namespace {

constexpr size_t kLengthBytes = 4;
constexpr size_t kCrcBytes = 4;

uint32_t ReadLengthField(const uint8_t* data) {
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(data[i]) << (8 * i);
  }
  return length;
}

/// Decodes the bytes after the length field (crc + header + payload), whose
/// extent `size` the caller has already established from that field. The
/// returned view's payload aliases `data`.
Result<FrameView> DecodeFrameBody(const uint8_t* data, size_t size) {
  Reader r(data, size);
  auto crc = r.GetU32();
  if (!crc.ok()) return Status::ParseError("frame shorter than its CRC");
  if (Crc32(data + kCrcBytes, size - kCrcBytes) != *crc) {
    return Status::ParseError("frame CRC mismatch");
  }
  auto type = r.GetU8();
  auto from = r.GetVarint();
  auto to = r.GetVarint();
  auto seq = r.GetVarint();
  auto trace_id = r.GetVarint();
  auto parent_span = r.GetVarint();
  auto hop = r.GetVarint();
  if (!type.ok() || !from.ok() || !to.ok() || !seq.ok() || !trace_id.ok() ||
      !parent_span.ok() || !hop.ok()) {
    return Status::ParseError("truncated frame header");
  }
  if (!IsKnownMessageType(*type)) {
    return Status::ParseError("unknown message type " + std::to_string(*type));
  }
  if (*from > kNoNode || *to > kNoNode) {
    return Status::ParseError("frame node id out of range");
  }
  FrameView view;
  view.type = static_cast<MessageType>(*type);
  view.from = static_cast<NodeId>(*from);
  view.to = static_cast<NodeId>(*to);
  view.seq = *seq;
  view.trace.trace_id = *trace_id;
  view.trace.parent_span = *parent_span;
  view.trace.hop = static_cast<uint32_t>(*hop);
  view.payload = data + (size - r.remaining());
  view.payload_size = r.remaining();
  return view;
}

/// One parse of a kBatch payload; emits a FrameView per inner message to
/// `sink` when non-null. Inner entries alias the outer frame's payload
/// buffer (already CRC-verified), so the views are zero-copy.
Status WalkBatch(const FrameView& outer,
                 const std::function<void(const FrameView&)>* sink) {
  Reader r(outer.payload, outer.payload_size);
  auto count = r.GetVarint();
  if (!count.ok()) return Status::ParseError("batch frame missing count");
  if (*count == 0) return Status::ParseError("empty batch frame");
  for (uint64_t i = 0; i < *count; ++i) {
    auto type = r.GetU8();
    auto from = r.GetVarint();
    auto to = r.GetVarint();
    auto seq = r.GetVarint();
    auto trace_id = r.GetVarint();
    auto parent_span = r.GetVarint();
    auto hop = r.GetVarint();
    auto len = r.GetVarint();
    if (!type.ok() || !from.ok() || !to.ok() || !seq.ok() || !trace_id.ok() ||
        !parent_span.ok() || !hop.ok() || !len.ok()) {
      return Status::ParseError("truncated batched message header");
    }
    if (!IsKnownMessageType(*type) ||
        static_cast<MessageType>(*type) == MessageType::kBatch ||
        static_cast<MessageType>(*type) == MessageType::kCredit) {
      return Status::ParseError("bad batched message type " +
                                std::to_string(*type));
    }
    if (*from > kNoNode || *to > kNoNode) {
      return Status::ParseError("batched message node id out of range");
    }
    auto payload = r.GetRaw(static_cast<size_t>(*len));
    if (!payload.ok()) {
      return Status::ParseError("truncated batched message payload");
    }
    FrameView view;
    view.type = static_cast<MessageType>(*type);
    view.from = static_cast<NodeId>(*from);
    view.to = static_cast<NodeId>(*to);
    view.seq = *seq;
    view.trace.trace_id = *trace_id;
    view.trace.parent_span = *parent_span;
    view.trace.hop = static_cast<uint32_t>(*hop);
    view.payload = *payload;
    view.payload_size = static_cast<size_t>(*len);
    if (sink != nullptr) (*sink)(view);
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in batch frame");
  return Status::OK();
}

/// Unpacks a kBatch frame all-or-nothing: a validation pass first, so a
/// malformed entry anywhere — truncated header, unknown or nested type,
/// short payload, trailing bytes — rejects the whole batch before any sink
/// fires, matching the frame-level delivery contract. The second pass only
/// re-reads the (cheap, varint) headers; payloads are never copied.
Status UnpackBatch(const FrameView& outer,
                   const std::function<void(const FrameView&)>& sink) {
  Status valid = WalkBatch(outer, nullptr);
  if (!valid.ok()) return valid;
  return WalkBatch(outer, &sink);
}

}  // namespace

size_t Message::WireSize() const {
  return kLengthBytes + kCrcBytes + 1 /* type */ + VarintLength(from) +
         VarintLength(to) + VarintLength(seq) + VarintLength(trace.trace_id) +
         VarintLength(trace.parent_span) + VarintLength(trace.hop) +
         payload.size();
}

Message FrameView::ToMessage() const {
  Message msg = BorrowMessage();
  msg.payload.EnsureOwned();
  return msg;
}

Message FrameView::BorrowMessage() const {
  Message msg;
  msg.type = type;
  msg.from = from;
  msg.to = to;
  msg.seq = seq;
  msg.trace = trace;
  msg.payload = Payload::Borrow(payload, payload_size);
  return msg;
}

std::vector<uint8_t> EncodeBatchFrame(const std::vector<Message>& msgs) {
  Writer body;
  body.PutVarint(msgs.size());
  for (const Message& m : msgs) {
    body.PutU8(static_cast<uint8_t>(m.type));
    body.PutVarint(m.from);
    body.PutVarint(m.to);
    body.PutVarint(m.seq);
    body.PutVarint(m.trace.trace_id);
    body.PutVarint(m.trace.parent_span);
    body.PutVarint(m.trace.hop);
    body.PutVarint(m.payload.size());
    body.PutRaw(m.payload.data(), m.payload.size());
  }
  Message outer;
  outer.type = MessageType::kBatch;
  outer.from = msgs.front().from;
  outer.to = msgs.front().to;
  outer.seq = msgs.front().seq;
  outer.payload = body.TakeBytes();
  return EncodeFrame(outer);
}

std::vector<uint8_t> EncodeCreditFrame(NodeId from, uint64_t frames_consumed) {
  Writer body;
  body.PutVarint(frames_consumed);
  Message credit;
  credit.type = MessageType::kCredit;
  credit.from = from;
  credit.to = kNoNode;  // Connection-scoped: no destination peer.
  credit.payload = body.TakeBytes();
  return EncodeFrame(credit);
}

Result<uint64_t> DecodeCreditPayload(const FrameView& view) {
  Reader r(view.payload, view.payload_size);
  auto consumed = r.GetVarint();
  if (!consumed.ok() || !r.AtEnd()) {
    return Status::ParseError("malformed credit frame payload");
  }
  return *consumed;
}

std::vector<uint8_t> EncodeFrame(const Message& msg) {
  Writer header;
  header.PutU8(static_cast<uint8_t>(msg.type));
  header.PutVarint(msg.from);
  header.PutVarint(msg.to);
  header.PutVarint(msg.seq);
  header.PutVarint(msg.trace.trace_id);
  header.PutVarint(msg.trace.parent_span);
  header.PutVarint(msg.trace.hop);
  const std::vector<uint8_t>& head = header.bytes();

  uint32_t crc = Crc32Finish(
      Crc32Update(Crc32Update(kCrc32Init, head.data(), head.size()),
                  msg.payload.data(), msg.payload.size()));
  Writer frame;
  frame.PutU32(
      static_cast<uint32_t>(kCrcBytes + head.size() + msg.payload.size()));
  frame.PutU32(crc);
  frame.PutRaw(head.data(), head.size());
  frame.PutRaw(msg.payload.data(), msg.payload.size());
  return frame.TakeBytes();
}

Result<Message> DecodeFrame(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  auto length = r.GetU32();
  if (!length.ok()) return Status::ParseError("frame shorter than its length");
  if (*length > kMaxFrameBytes) {
    return Status::ParseError("frame length " + std::to_string(*length) +
                              " exceeds limit");
  }
  if (r.remaining() < *length) return Status::ParseError("truncated frame");
  if (r.remaining() > *length) {
    return Status::ParseError("trailing bytes after frame");
  }
  auto view = DecodeFrameBody(bytes.data() + kLengthBytes, *length);
  if (!view.ok()) return view.status();
  return view->ToMessage();
}

Status FrameAssembler::FeedViews(const uint8_t* data, size_t size,
                                 const FrameSink& sink) {
  size_t pos = 0;
  // Finish the partial frame carried over from earlier reads, if any. The
  // carried prefix grows until the whole frame is present, then decodes in
  // place (the view aliases buffer_, stable until the clear after the sink).
  if (!buffer_.empty()) {
    while (buffer_.size() < kLengthBytes && pos < size) {
      buffer_.push_back(data[pos++]);
    }
    if (buffer_.size() < kLengthBytes) return Status::OK();
    uint32_t length = ReadLengthField(buffer_.data());
    if (length > kMaxFrameBytes) {
      return Status::ParseError("frame length " + std::to_string(length) +
                                " exceeds limit; stream desynchronized");
    }
    size_t total = kLengthBytes + length;
    size_t take = std::min(total - buffer_.size(), size - pos);
    buffer_.insert(buffer_.end(), data + pos, data + pos + take);
    pos += take;
    if (buffer_.size() < total) return Status::OK();
    auto view = DecodeFrameBody(buffer_.data() + kLengthBytes, length);
    if (!view.ok()) return view.status();
    Status delivered = DeliverFrame(*view, sink);
    if (!delivered.ok()) return delivered;
    buffer_.clear();
  }
  // Zero-copy scan: complete frames decode straight out of `data`.
  while (size - pos >= kLengthBytes) {
    uint32_t length = ReadLengthField(data + pos);
    if (length > kMaxFrameBytes) {
      return Status::ParseError("frame length " + std::to_string(length) +
                                " exceeds limit; stream desynchronized");
    }
    if (size - pos - kLengthBytes < length) break;  // Partial frame.
    auto view = DecodeFrameBody(data + pos + kLengthBytes, length);
    if (!view.ok()) return view.status();
    Status delivered = DeliverFrame(*view, sink);
    if (!delivered.ok()) return delivered;
    pos += kLengthBytes + length;
  }
  buffer_.assign(data + pos, data + size);
  return Status::OK();
}

Status FrameAssembler::DeliverFrame(const FrameView& view,
                                    const FrameSink& sink) {
  ++frames_decoded_;  // Credit unit: one wire frame, batch or not.
  if (view.type == MessageType::kBatch) return UnpackBatch(view, sink);
  sink(view);
  return Status::OK();
}

Status FrameAssembler::Feed(const uint8_t* data, size_t size,
                            std::vector<Message>* out) {
  return FeedViews(data, size, [out](const FrameView& view) {
    out->push_back(view.ToMessage());
  });
}

}  // namespace p2pdb::net
