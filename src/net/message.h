// Message envelope exchanged between peers. Payloads are pre-serialized bytes
// (see core/wire.h for the typed payload structs) so that the statistics
// module can report true on-wire volumes, as the paper's prototype did.
#ifndef P2PDB_NET_MESSAGE_H_
#define P2PDB_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/ids.h"

namespace p2pdb::net {

enum class MessageType : uint8_t {
  // Topology discovery (algorithms A1-A3).
  kDiscoverRequest = 1,
  kDiscoverAnswer = 2,
  kDiscoverClosure = 3,
  // Database update (algorithms A4-A6).
  kUpdateStart = 10,
  kQueryRequest = 11,
  kQueryAnswer = 12,
  kUnsubscribe = 13,
  kPartialUpdate = 14,
  // Fix-point detection within strongly connected components.
  kToken = 20,
  kSccClosed = 21,
  kReopen = 22,
  // Dynamic network change notifications (Section 4).
  kAddRule = 30,
  kDeleteRule = 31,
};

const char* MessageTypeName(MessageType type);

/// True when `raw` is the encoding of a MessageType (frame decoding rejects
/// anything else before it reaches a peer).
bool IsKnownMessageType(uint8_t raw);

/// One message in flight.
struct Message {
  MessageType type = MessageType::kDiscoverRequest;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::vector<uint8_t> payload;
  /// Sequence number assigned by the runtime at send time (debug/tracing).
  uint64_t seq = 0;

  /// Exact size of this message's frame encoding (see net/frame.h): what a
  /// socket carries and what the statistics module counts as bytes on a pipe.
  size_t WireSize() const;

  std::string ToString() const;
};

}  // namespace p2pdb::net

#endif  // P2PDB_NET_MESSAGE_H_
