// Message envelope exchanged between peers. Payloads are pre-serialized bytes
// (see core/wire.h for the typed payload structs) so that the statistics
// module can report true on-wire volumes, as the paper's prototype did.
#ifndef P2PDB_NET_MESSAGE_H_
#define P2PDB_NET_MESSAGE_H_

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "src/util/ids.h"
#include "src/util/serde.h"

namespace p2pdb::net {

enum class MessageType : uint8_t {
  // Topology discovery (algorithms A1-A3).
  kDiscoverRequest = 1,
  kDiscoverAnswer = 2,
  kDiscoverClosure = 3,
  // Database update (algorithms A4-A6).
  kUpdateStart = 10,
  kQueryRequest = 11,
  kQueryAnswer = 12,
  kUnsubscribe = 13,
  kPartialUpdate = 14,
  // Fix-point detection within strongly connected components.
  kToken = 20,
  kSccClosed = 21,
  kReopen = 22,
  // Dynamic network change notifications (Section 4).
  kAddRule = 30,
  kDeleteRule = 31,
  // Transport-internal frames, never dispatched to a peer handler. kBatch
  // packs N same-destination messages into one single-CRC frame (coalescing,
  // net/frame.h); kCredit carries the receiver's cumulative consumed-frame
  // count back to the sender, making TcpRuntime quiescence exact.
  kBatch = 40,
  kCredit = 41,
  // Wire control plane (src/core/control.h): how a fleet controller drives
  // remote peer processes the way an in-process Session drives local ones —
  // session bootstrap handshake, phase starts, statistics polling, database
  // dumps for convergence checks, and graceful shutdown. Handled by the
  // daemon layer (src/daemon) wrapping a peer, never by the Peer itself.
  kBootstrap = 50,
  kBootstrapAck = 51,
  kStartDiscovery = 52,
  kStartUpdate = 53,
  kRefreshScc = 54,
  kStatusRequest = 55,
  kStatusReport = 56,
  kDumpRequest = 57,
  kDumpReply = 58,
  kShutdown = 59,
};

const char* MessageTypeName(MessageType type);

/// True when `raw` is the encoding of a MessageType (frame decoding rejects
/// anything else before it reaches a peer).
bool IsKnownMessageType(uint8_t raw);

/// Message payload bytes: owned by default, borrowed on the zero-copy receive
/// path. A borrowed payload points into a transport read buffer and is valid
/// only until the dispatch that delivered it returns; the transport calls
/// EnsureOwned() before parking a message in a queue. Copying a borrowed
/// payload materializes an owned copy, so handlers that retain a message (or
/// echo its payload into a reply) behave exactly as with an owned buffer.
class Payload {
 public:
  Payload() = default;
  Payload(std::vector<uint8_t> bytes) : owned_(std::move(bytes)) {}
  Payload(std::initializer_list<uint8_t> bytes) : owned_(bytes) {}

  /// A view into memory the caller keeps alive for the payload's lifetime.
  static Payload Borrow(const uint8_t* data, size_t size) {
    Payload p;
    p.view_ = data;
    p.view_size_ = size;
    return p;
  }

  Payload(const Payload& other)
      : owned_(other.view_ ? std::vector<uint8_t>(
                                 other.view_, other.view_ + other.view_size_)
                           : other.owned_) {}
  Payload& operator=(const Payload& other) {
    if (this != &other) {
      Payload copy(other);
      *this = std::move(copy);
    }
    return *this;
  }
  Payload(Payload&&) = default;
  Payload& operator=(Payload&&) = default;

  Payload& operator=(std::vector<uint8_t> bytes) {
    owned_ = std::move(bytes);
    view_ = nullptr;
    view_size_ = 0;
    return *this;
  }
  Payload& operator=(std::initializer_list<uint8_t> bytes) {
    owned_.assign(bytes);
    view_ = nullptr;
    view_size_ = 0;
    return *this;
  }

  const uint8_t* data() const { return view_ ? view_ : owned_.data(); }
  size_t size() const { return view_ ? view_size_ : owned_.size(); }
  bool empty() const { return size() == 0; }
  bool borrowed() const { return view_ != nullptr; }

  /// Copies a borrowed view into owned storage; no-op when already owned.
  void EnsureOwned() {
    if (view_ == nullptr) return;
    owned_.assign(view_, view_ + view_size_);
    view_ = nullptr;
    view_size_ = 0;
  }

  void assign(size_t count, uint8_t value) {
    owned_.assign(count, value);
    view_ = nullptr;
    view_size_ = 0;
  }

  bool operator==(const Payload& other) const {
    return size() == other.size() &&
           std::equal(data(), data() + size(), other.data());
  }

  /// Decode-side view (wire::*::Decode and Reader accept this directly).
  operator ByteView() const { return ByteView(data(), size()); }

 private:
  std::vector<uint8_t> owned_;
  const uint8_t* view_ = nullptr;
  size_t view_size_ = 0;
};

/// Causal trace context carried by every message (and its frame encoding).
/// trace_id 0 means "not traced" — the zero-cost default. A traced message
/// names the propagation span that sent it (parent_span) and its causal
/// depth from the root (hop), so a collector can reassemble the propagation
/// DAG of one update across peers, runtimes, and — since it is on the wire —
/// eventually processes. See src/obs/trace.h.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  uint32_t hop = 0;

  bool active() const { return trace_id != 0; }
};

/// One message in flight.
struct Message {
  MessageType type = MessageType::kDiscoverRequest;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Payload payload;
  /// Sequence number assigned by the runtime at send time (debug/tracing).
  uint64_t seq = 0;
  /// Causal update tracing (on the wire, after seq).
  TraceContext trace;
  /// Local bookkeeping, never serialized: stamped with NowMicros() when the
  /// message enters a mailbox queue, rewritten to the measured queue wait
  /// just before dispatch (see MailboxRuntime). Zero on the inline path.
  uint64_t queued_micros = 0;
  /// Local send-path flag, never serialized: bypass transport coalescing.
  /// An urgent message flushes whatever batch is pending for its destination
  /// (preserving per-destination FIFO order) and goes out in its own frame —
  /// control-plane traffic (token ring, reopen pokes) sets it so fixpoint
  /// latency never waits on a data-plane batch cap.
  bool urgent = false;

  /// Exact size of this message's frame encoding (see net/frame.h): what a
  /// socket carries and what the statistics module counts as bytes on a pipe.
  size_t WireSize() const;

  std::string ToString() const;
};

}  // namespace p2pdb::net

#endif  // P2PDB_NET_MESSAGE_H_
