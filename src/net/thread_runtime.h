// Thread-per-peer runtime with mailbox delivery: real asynchrony as in the
// JXTA prototype, with in-process message hand-off. Run() returns when the
// network is quiescent (no message queued, in flight, or being processed).
#ifndef P2PDB_NET_THREAD_RUNTIME_H_
#define P2PDB_NET_THREAD_RUNTIME_H_

#include "src/net/mailbox_runtime.h"

namespace p2pdb::net {

class ThreadRuntime : public MailboxRuntime {
 public:
  using Options = MailboxRuntime::Options;

  ThreadRuntime() : ThreadRuntime(Options{}) {}
  explicit ThreadRuntime(Options options) : MailboxRuntime(options) {}
  ~ThreadRuntime() override { Shutdown(); }

  void Send(Message msg) override {
    msg.seq = NextSeq();
    stats_.RecordSend(msg);
    Deliver(std::move(msg));
  }
};

}  // namespace p2pdb::net

#endif  // P2PDB_NET_THREAD_RUNTIME_H_
