// Thread-per-peer runtime with mailbox delivery: real asynchrony as in the
// JXTA prototype. Run() returns when the network is quiescent (no message
// queued, in flight, or being processed).
#ifndef P2PDB_NET_THREAD_RUNTIME_H_
#define P2PDB_NET_THREAD_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/runtime.h"

namespace p2pdb::net {

class ThreadRuntime : public Runtime {
 public:
  struct Options {
    /// Run() fails if quiescence is not reached within this bound.
    std::chrono::milliseconds timeout{30'000};
  };

  ThreadRuntime() : ThreadRuntime(Options{}) {}
  explicit ThreadRuntime(Options options);
  ~ThreadRuntime() override;

  void RegisterPeer(NodeId id, PeerHandler* handler) override;
  void Send(Message msg) override;
  void ScheduleSend(uint64_t time_micros, Message msg) override;
  Status Run() override;
  uint64_t NowMicros() const override;

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
    PeerHandler* handler = nullptr;
  };

  void PeerLoop(NodeId id, Mailbox* box);
  void TimerLoop();
  void StopThreads();

  Options options_;
  std::map<NodeId, std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::thread> threads_;
  std::thread timer_thread_;

  // Timer queue for ScheduleSend (delayed injections).
  std::mutex timer_mutex_;
  std::condition_variable timer_cv_;
  std::vector<std::pair<uint64_t, Message>> timer_queue_;

  std::atomic<uint64_t> in_flight_{0};  // queued + being processed + timed
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<bool> stop_{false};
  bool threads_started_ = false;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace p2pdb::net

#endif  // P2PDB_NET_THREAD_RUNTIME_H_
