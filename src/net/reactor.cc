#include "src/net/reactor.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/util/logging.h"

namespace p2pdb::net {

namespace {

/// Frames batched into one writev call (well under IOV_MAX everywhere).
constexpr size_t kMaxIovPerWritev = 64;

/// Per-worker read buffer; one recv can carry many coalesced small frames.
constexpr size_t kReadBufferBytes = 256 * 1024;

/// Consecutive recv calls per EPOLLIN before yielding to other connections
/// (level-triggered epoll re-arms, so fairness costs no correctness).
constexpr int kMaxReadsPerEvent = 4;

int MakeSocket() {
  return ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

bool ParseAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

/// The worker whose loop the current thread is running, if any. Lets
/// Enqueue distinguish reactor threads (never block on backpressure) and
/// same-worker sends (flush via the dirty list, no eventfd syscall).
static thread_local void* g_current_worker = nullptr;

// --- Connection -------------------------------------------------------------

bool Connection::Enqueue(std::vector<uint8_t>&& frame) {
  Reactor* reactor = reactor_;
  const bool on_reactor_thread = g_current_worker != nullptr;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (state_ == State::kClosed) return false;
    if (!on_reactor_thread) {
      // Backpressure: park this sender (only) until the worker drains the
      // queue below the limit or the connection dies. Reactor threads fall
      // through — an event loop blocking on another loop's queue could
      // deadlock, so their queues may transiently exceed the limit.
      drained_.wait(lock, [&] {
        return state_ == State::kClosed ||
               sendq_bytes_ < reactor->options_.send_queue_limit;
      });
      if (state_ == State::kClosed) return false;
    }
    sendq_bytes_ += frame.size();
    sendq_.push_back(std::move(frame));
    if (IoCounters* k = reactor->options_.counters) {
      k->RecordQueueDepth(sendq_bytes_);
    }
    // Distribution, not just high-water mark: no clock read, so ungated.
    static obs::Histogram* depth =
        obs::Registry::Global().GetHistogram("net.sendq_depth_bytes");
    depth->Record(sendq_bytes_);
    if (flush_armed_) return true;  // The worker already knows.
    flush_armed_ = true;
  }
  reactor->NoteQueued(this);
  return true;
}

void Connection::RequestClose() {
  Reactor* reactor = reactor_;
  auto self = shared_from_this();
  Reactor::Worker* w = reactor->workers_[worker_].get();
  if (!reactor->Post(w, [reactor, w, self] { reactor->CloseConn(w, self); })) {
    // Reactor stopped: workers are joined, closing here is single-threaded.
    reactor->CloseConn(w, self);
  }
}

size_t Connection::queued_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sendq_bytes_;
}

// --- Reactor lifecycle ------------------------------------------------------

Reactor::Reactor(Options options, Handler* handler)
    : options_(options), handler_(handler) {
  int n = options_.workers > 0
              ? options_.workers
              : static_cast<int>(
                    std::max(1u, std::thread::hardware_concurrency()));
  for (int i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    w->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    w->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    w->read_buffer.resize(kReadBufferBytes);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = w->event_fd;
    ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->event_fd, &ev);
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_) {
    w->thread = std::thread(&Reactor::WorkerLoop, this, w.get());
  }
}

Reactor::~Reactor() { Stop(); }

void Reactor::Stop() {
  stop_.store(true);
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      Wake(w.get());
      w->thread.join();
    }
  }
  // Single-threaded from here: tear down whatever is still open. OnClose
  // fires for each connection so queued-frame accounting stays exact.
  for (auto& w : workers_) {
    RunTasks(w.get());  // Post() stopped accepting; drain the stragglers.
    for (auto& [fd, listener] : w->listeners) {
      ::close(fd);
      listener->fd = -1;
    }
    w->listeners.clear();
    while (!w->conns.empty()) {
      CloseConn(w.get(), w->conns.begin()->second);
    }
    if (w->epoll_fd >= 0) {
      ::close(w->epoll_fd);
      w->epoll_fd = -1;
    }
    if (w->event_fd >= 0) {
      ::close(w->event_fd);
      w->event_fd = -1;
    }
  }
  std::lock_guard<std::mutex> lock(registry_mutex_);
  listeners_by_token_.clear();
  conns_by_token_.clear();
}

int Reactor::PickWorker() {
  return static_cast<int>(next_worker_.fetch_add(1) % workers_.size());
}

bool Reactor::Post(Worker* w, std::function<void()> fn) {
  if (stop_.load()) return false;
  {
    std::lock_guard<std::mutex> lock(w->task_mutex);
    w->tasks.push_back(std::move(fn));
  }
  Wake(w);
  return true;
}

void Reactor::Wake(Worker* w) {
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(w->event_fd, &one, sizeof(one));
}

void Reactor::NoteQueued(Connection* c) {
  Worker* w = workers_[c->worker_].get();
  if (g_current_worker == w) {
    // Same-thread send (e.g. a handler replying from an inline dispatch):
    // the loop flushes the dirty list before sleeping — no syscall needed.
    w->dirty.push_back(c->shared_from_this());
    return;
  }
  auto self = c->shared_from_this();
  if (!Post(w, [this, w, self] { FlushConn(w, self); })) {
    // Stopping: Stop()'s teardown pass will drop the queued frames.
  }
}

// --- Listeners and connects -------------------------------------------------

Result<uint16_t> Reactor::Listen(const std::string& host, uint64_t token,
                                 uint16_t port) {
  if (stop_.load()) return Status::Internal("reactor is stopped");
  sockaddr_in addr;
  if (!ParseAddr(host, port, &addr)) {
    return Status::InvalidArgument("bad listen host " + host);
  }
  int fd = MakeSocket();
  if (fd < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    ::close(fd);
    return Status::Internal("cannot listen on " + host + ": " +
                            std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Status::Internal("getsockname failed");
  }

  auto listener = std::make_shared<Listener>();
  listener->fd = fd;
  listener->token = token;
  listener->port = ntohs(addr.sin_port);
  listener->worker = PickWorker();
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    if (listeners_by_token_.count(token) > 0) {
      ::close(fd);
      return Status::Internal("token already listening");
    }
    listeners_by_token_[token] = listener;
  }
  Worker* w = workers_[listener->worker].get();
  if (!Post(w, [w, listener] {
        w->listeners[listener->fd] = listener;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = listener->fd;
        ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, listener->fd, &ev);
      })) {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    listeners_by_token_.erase(token);
    ::close(fd);
    return Status::Internal("reactor is stopped");
  }
  return listener->port;
}

std::shared_ptr<Connection> Reactor::Connect(const std::string& host,
                                             uint16_t port, uint64_t token) {
  auto c = std::make_shared<Connection>();
  c->reactor_ = this;
  c->token_ = token;
  c->inbound_ = false;
  if (IoCounters* k = options_.counters) k->connects.fetch_add(1);

  auto fail = [&](const char* what) {
    if (IoCounters* k = options_.counters) k->connect_failures.fetch_add(1);
    P2PDB_LOG(kDebug) << "connect to " << host << ":" << port << " " << what;
    c->state_ = Connection::State::kClosed;
    c->closed_.store(true);
    return c;
  };
  if (stop_.load()) return fail("rejected: reactor stopped");
  sockaddr_in addr;
  if (!ParseAddr(host, port, &addr)) return fail("failed: bad address");
  int fd = MakeSocket();
  if (fd < 0) return fail("failed: no socket");
  SetNoDelay(fd);
  if (options_.send_buffer_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                 sizeof(options_.send_buffer_bytes));
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    c->state_ = Connection::State::kOpen;
  } else if (errno == EINPROGRESS) {
    c->state_ = Connection::State::kConnecting;
    c->connect_deadline_ =
        std::chrono::steady_clock::now() + options_.connect_timeout;
  } else {
    ::close(fd);
    return fail("failed");
  }
  c->fd_ = fd;
  c->worker_ = PickWorker();
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    conns_by_token_[token].push_back(c);
  }
  Worker* w = workers_[c->worker_].get();
  if (!Post(w, [this, w, c] { AdoptConn(w, c); })) {
    ::close(fd);
    c->fd_ = -1;
    std::lock_guard<std::mutex> lock(c->mutex_);
    c->state_ = Connection::State::kClosed;
    c->closed_.store(true);
  }
  return c;
}

void Reactor::AdoptConn(Worker* w, const std::shared_ptr<Connection>& c) {
  if (stop_.load() || c->closed()) return;
  w->conns[c->fd_] = c;
  epoll_event ev{};
  ev.data.fd = c->fd_;
  bool connecting;
  {
    std::lock_guard<std::mutex> lock(c->mutex_);
    connecting = c->state_ == Connection::State::kConnecting;
  }
  if (connecting) {
    // EPOLLOUT reports connect completion (or failure).
    ev.events = EPOLLIN | EPOLLOUT;
    c->want_write_ = true;
    w->connecting.push_back(c);
  } else {
    ev.events = EPOLLIN;
  }
  ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, c->fd_, &ev);
}

void Reactor::CloseToken(uint64_t token) {
  std::shared_ptr<Listener> listener;
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto lit = listeners_by_token_.find(token);
    if (lit != listeners_by_token_.end()) {
      listener = lit->second;
      listeners_by_token_.erase(lit);
    }
    auto cit = conns_by_token_.find(token);
    if (cit != conns_by_token_.end()) {
      for (const auto& weak : cit->second) {
        if (auto c = weak.lock()) conns.push_back(std::move(c));
      }
      conns_by_token_.erase(cit);
    }
  }

  // Tear everything down on the owning workers (only the owner may close an
  // fd — that is what makes fd reuse race-free) and wait until it is done,
  // so the caller observes "connects to the old port are refused".
  struct Latch {
    std::mutex m;
    std::condition_variable cv;
    size_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = conns.size() + (listener != nullptr ? 1 : 0);
  if (latch->remaining == 0) return;
  auto done = [latch] {
    std::lock_guard<std::mutex> lock(latch->m);
    if (--latch->remaining == 0) latch->cv.notify_all();
  };

  if (listener != nullptr) {
    Worker* w = workers_[listener->worker].get();
    if (!Post(w, [w, listener, done] {
          w->listeners.erase(listener->fd);
          ::epoll_ctl(w->epoll_fd, EPOLL_CTL_DEL, listener->fd, nullptr);
          ::close(listener->fd);
          listener->fd = -1;
          done();
        })) {
      if (listener->fd >= 0) ::close(listener->fd);
      listener->fd = -1;
      done();
    }
  }
  for (const auto& c : conns) {
    Worker* w = workers_[c->worker_].get();
    if (!Post(w, [this, w, c, done] {
          CloseConn(w, c);
          done();
        })) {
      CloseConn(w, c);  // Stopped: single-threaded teardown.
      done();
    }
  }
  std::unique_lock<std::mutex> lock(latch->m);
  latch->cv.wait(lock, [&] { return latch->remaining == 0; });
}

// --- Event loop -------------------------------------------------------------

void Reactor::WorkerLoop(Worker* w) {
  g_current_worker = w;
  std::vector<epoll_event> events(256);
  while (!stop_.load()) {
    int timeout = NextTimeoutMillis(w);
    int n = ::epoll_wait(w->epoll_fd, events.data(),
                         static_cast<int>(events.size()), timeout);
    if (IoCounters* k = options_.counters) k->epoll_wakeups.fetch_add(1);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == w->event_fd) {
        uint64_t drain;
        while (::read(w->event_fd, &drain, sizeof(drain)) > 0) {
        }
        RunTasks(w);
        continue;
      }
      auto lit = w->listeners.find(fd);
      if (lit != w->listeners.end()) {
        AcceptReady(w, lit->second);
        continue;
      }
      auto cit = w->conns.find(fd);
      if (cit == w->conns.end()) continue;  // Closed earlier in this batch.
      HandleConnEvent(w, cit->second, events[i].events);
    }
    // Flush sends queued by handlers on this thread during the batch.
    for (size_t i = 0; i < w->dirty.size(); ++i) {
      std::shared_ptr<Connection> c = w->dirty[i];
      FlushConn(w, c);
    }
    w->dirty.clear();
    CheckConnectDeadlines(w);
  }
  g_current_worker = nullptr;
}

void Reactor::RunTasks(Worker* w) {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(w->task_mutex);
    tasks.swap(w->tasks);
  }
  for (auto& task : tasks) task();
}

int Reactor::NextTimeoutMillis(Worker* w) {
  if (w->connecting.empty()) return -1;
  auto now = std::chrono::steady_clock::now();
  auto soonest = w->connecting.front()->connect_deadline_;
  for (const auto& c : w->connecting) {
    soonest = std::min(soonest, c->connect_deadline_);
  }
  auto delta =
      std::chrono::duration_cast<std::chrono::milliseconds>(soonest - now)
          .count();
  return static_cast<int>(std::clamp<long long>(delta, 0, 60'000));
}

void Reactor::CheckConnectDeadlines(Worker* w) {
  if (w->connecting.empty()) return;
  auto now = std::chrono::steady_clock::now();
  // CloseConn edits w->connecting; collect first.
  std::vector<std::shared_ptr<Connection>> expired;
  for (const auto& c : w->connecting) {
    if (now >= c->connect_deadline_ && !c->closed()) expired.push_back(c);
  }
  for (const auto& c : expired) {
    if (IoCounters* k = options_.counters) k->connect_failures.fetch_add(1);
    P2PDB_LOG(kDebug) << "connect timed out (token " << c->token_ << ")";
    CloseConn(w, c);
  }
}

void Reactor::AcceptReady(Worker* w, const std::shared_ptr<Listener>& l) {
  for (;;) {
    int fd = ::accept4(l->fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or the listener just closed.
    SetNoDelay(fd);
    if (IoCounters* k = options_.counters) k->accepts.fetch_add(1);
    auto c = std::make_shared<Connection>();
    c->reactor_ = this;
    c->fd_ = fd;
    // Accepted connections stay on the accepting worker: registration is
    // lock-free and reads for one listener's peers share cache locality.
    // Load still spreads because listeners are round-robined over workers.
    c->worker_ = w->index;
    c->token_ = l->token;
    c->inbound_ = true;
    c->state_ = Connection::State::kOpen;
    {
      std::lock_guard<std::mutex> lock(registry_mutex_);
      conns_by_token_[l->token].push_back(c);
    }
    w->conns[fd] = c;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    handler_->OnAccept(c.get());
  }
}

void Reactor::HandleConnEvent(Worker* w, std::shared_ptr<Connection> c,
                              uint32_t events) {
  bool connecting;
  {
    std::lock_guard<std::mutex> lock(c->mutex_);
    connecting = c->state_ == Connection::State::kConnecting;
  }
  if (connecting) {
    if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) == 0) return;
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(c->fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      if (IoCounters* k = options_.counters) k->connect_failures.fetch_add(1);
      CloseConn(w, c);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(c->mutex_);
      c->state_ = Connection::State::kOpen;
    }
    std::erase(w->connecting, c);
    UpdateWriteInterest(w, c.get(), false);
    FlushConn(w, c);  // Frames queued while the connect was in flight.
    return;
  }
  if (events & EPOLLIN) {
    ReadReady(w, c);
    if (c->closed()) return;
  }
  if (events & EPOLLOUT) {
    FlushConn(w, c);
    if (c->closed()) return;
  }
  if ((events & (EPOLLERR | EPOLLHUP)) && !(events & EPOLLIN)) {
    CloseConn(w, c);
  }
}

void Reactor::ReadReady(Worker* w, const std::shared_ptr<Connection>& c) {
  uint8_t* buf = w->read_buffer.data();
  const size_t cap = w->read_buffer.size();
  for (int round = 0; round < kMaxReadsPerEvent; ++round) {
    ssize_t n = ::recv(c->fd_, buf, cap, 0);
    if (n > 0) {
      if (!handler_->OnRead(c.get(), buf, static_cast<size_t>(n))) {
        CloseConn(w, c);
        return;
      }
      if (static_cast<size_t>(n) < cap) return;  // Drained the kernel buffer.
      continue;
    }
    if (n == 0) {  // Clean close by the peer.
      CloseConn(w, c);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConn(w, c);  // Reset — the peer crashed.
    return;
  }
  // Budget exhausted; level-triggered epoll re-reports the remainder.
}

void Reactor::FlushConn(Worker* w, const std::shared_ptr<Connection>& c) {
  for (;;) {
    if (c->closed()) return;
    iovec iov[kMaxIovPerWritev];
    size_t niov = 0;
    size_t want_bytes = 0;
    {
      std::lock_guard<std::mutex> lock(c->mutex_);
      if (c->state_ != Connection::State::kOpen) return;
      if (c->sendq_.empty()) {
        c->flush_armed_ = false;
        if (c->want_write_) UpdateWriteInterest(w, c.get(), false);
        return;
      }
      size_t offset = c->front_offset_;
      for (const std::vector<uint8_t>& frame : c->sendq_) {
        if (niov == kMaxIovPerWritev) break;
        iov[niov].iov_base =
            const_cast<uint8_t*>(frame.data()) + offset;
        iov[niov].iov_len = frame.size() - offset;
        want_bytes += iov[niov].iov_len;
        ++niov;
        offset = 0;
      }
    }
    // The deque entries referenced by iov are stable outside the lock: other
    // threads only push_back (std::deque never moves existing elements) and
    // only this worker pops.
    ssize_t n = ::writev(c->fd_, iov, static_cast<int>(niov));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!c->want_write_) UpdateWriteInterest(w, c.get(), true);
        return;
      }
      CloseConn(w, c);  // Reset/EPIPE: the peer is gone.
      return;
    }
    if (IoCounters* k = options_.counters) {
      k->writev_calls.fetch_add(1);
      k->writev_bytes.fetch_add(static_cast<uint64_t>(n));
    }
    size_t written_frames = 0;
    bool below_limit = false;
    {
      std::lock_guard<std::mutex> lock(c->mutex_);
      size_t remaining = static_cast<size_t>(n);
      while (remaining > 0) {
        std::vector<uint8_t>& front = c->sendq_.front();
        size_t avail = front.size() - c->front_offset_;
        if (remaining >= avail) {
          remaining -= avail;
          c->sendq_bytes_ -= front.size();
          c->sendq_.pop_front();
          c->front_offset_ = 0;
          ++written_frames;
        } else {
          c->front_offset_ += remaining;
          remaining = 0;
        }
      }
      below_limit = c->sendq_bytes_ < options_.send_queue_limit;
    }
    if (below_limit) c->drained_.notify_all();
    if (IoCounters* k = options_.counters) {
      k->writev_frames.fetch_add(written_frames);
    }
    if (written_frames > 0) handler_->OnWritten(c.get(), written_frames);
    if (static_cast<size_t>(n) < want_bytes) {
      // Kernel buffer is full; EPOLLOUT will resume the drain.
      if (!c->want_write_) UpdateWriteInterest(w, c.get(), true);
      return;
    }
  }
}

void Reactor::CloseConn(Worker* w, std::shared_ptr<Connection> c) {
  size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(c->mutex_);
    if (c->state_ == Connection::State::kClosed) return;
    c->state_ = Connection::State::kClosed;
    // A partially written front frame never arrived whole: count it dropped.
    dropped = c->sendq_.size();
    c->sendq_.clear();
    c->sendq_bytes_ = 0;
    c->closed_.store(true);
  }
  c->drained_.notify_all();
  if (c->fd_ >= 0) {
    ::epoll_ctl(w->epoll_fd, EPOLL_CTL_DEL, c->fd_, nullptr);
    ::close(c->fd_);
    w->conns.erase(c->fd_);
    c->fd_ = -1;
  }
  std::erase(w->connecting, c);
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto it = conns_by_token_.find(c->token_);
    if (it != conns_by_token_.end()) {
      auto& vec = it->second;
      std::erase_if(vec, [&](const std::weak_ptr<Connection>& weak) {
        auto locked = weak.lock();
        return locked == nullptr || locked == c;
      });
      if (vec.empty()) conns_by_token_.erase(it);
    }
  }
  handler_->OnClose(c.get(), dropped);
}

void Reactor::UpdateWriteInterest(Worker* w, Connection* c, bool want) {
  if (c->want_write_ == want || c->fd_ < 0) return;
  c->want_write_ = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = c->fd_;
  ::epoll_ctl(w->epoll_fd, EPOLL_CTL_MOD, c->fd_, &ev);
}

}  // namespace p2pdb::net
