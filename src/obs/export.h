// The one JSON export path for observability dumps. examples/trace_dump,
// bench_tcp, and bench_queries all emit the same {"metrics", "traces"}
// shape through this helper, so the format cannot drift between consumers
// (scripts/run_bench.sh and the CI artifact pipeline parse it).
#ifndef P2PDB_OBS_EXPORT_H_
#define P2PDB_OBS_EXPORT_H_

#include <string>

namespace p2pdb::obs {

class Registry;
class TraceCollector;

/// Writes the combined observability dump:
/// {"metrics": <Registry::ReportJson()>, "traces": <collector json or []>}.
/// `collector` may be null (no tracing: "traces" is an empty array).
/// Returns false (and logs) if the file cannot be written.
bool WriteObsJson(const std::string& path, Registry& registry,
                  const TraceCollector* collector);

}  // namespace p2pdb::obs

#endif  // P2PDB_OBS_EXPORT_H_
