#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>

#include "src/util/string_util.h"

namespace p2pdb::obs {

namespace {

std::atomic<bool> g_detailed_timing{false};

/// Stable per-thread shard index: threads are assigned round-robin on first
/// record, so up to kShards concurrent recorders never share a cell.
size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void RaiseAtomicMax(std::atomic<uint64_t>* cell, uint64_t value) {
  uint64_t seen = cell->load(std::memory_order_relaxed);
  while (value > seen && !cell->compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void SetDetailedTiming(bool enabled) {
  g_detailed_timing.store(enabled, std::memory_order_relaxed);
}

bool DetailedTimingEnabled() {
  return g_detailed_timing.load(std::memory_order_relaxed);
}

void Counter::Add(uint64_t n) {
  shards_[ThreadShard() % kShards].value.fetch_add(n,
                                                   std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

void Gauge::RaiseTo(int64_t value) {
  int64_t seen = value_.load(std::memory_order_relaxed);
  while (value > seen && !value_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::BucketUpperBound(size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return ~uint64_t{0};
  return (uint64_t{1} << b) - 1;
}

void Histogram::Record(uint64_t value) {
  size_t bucket = static_cast<size_t>(std::bit_width(value));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  RaiseAtomicMax(&max_, value);
}

uint64_t Histogram::Count() const {
  uint64_t count = 0;
  for (const auto& b : buckets_) count += b.load(std::memory_order_relaxed);
  return count;
}

HistogramSnapshot Histogram::Snapshot() const {
  std::array<uint64_t, kBuckets> counts;
  HistogramSnapshot snap;
  for (size_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    snap.count += counts[b];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  auto quantile = [&](double q) -> uint64_t {
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(snap.count));
    if (rank >= snap.count) rank = snap.count - 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen > rank) return BucketUpperBound(b);
    }
    return snap.max;
  };
  snap.p50 = quantile(0.50);
  snap.p95 = quantile(0.95);
  snap.p99 = quantile(0.99);
  // The bucket bound can overshoot the true maximum; clamp so p99 <= max.
  snap.p50 = std::min(snap.p50, snap.max);
  snap.p95 = std::min(snap.p95, snap.max);
  snap.p99 = std::min(snap.p99, snap.max);
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // Leaked: outlives all users.
  return *instance;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

Registry::Snapshot Registry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  return snap;
}

std::string Registry::ReportText() const {
  Snapshot snap = TakeSnapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += StrFormat("%-36s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    out += StrFormat("%-36s %lld\n", name.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& [name, h] : snap.histograms) {
    out += StrFormat(
        "%-36s count=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu\n",
        name.c_str(), static_cast<unsigned long long>(h.count), h.Mean(),
        static_cast<unsigned long long>(h.p50),
        static_cast<unsigned long long>(h.p95),
        static_cast<unsigned long long>(h.p99),
        static_cast<unsigned long long>(h.max));
  }
  return out;
}

std::string Registry::ReportJson() const {
  Snapshot snap = TakeSnapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += StrFormat("%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
                     static_cast<unsigned long long>(value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += StrFormat("%s\n    \"%s\": %lld", first ? "" : ",", name.c_str(),
                     static_cast<long long>(value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += StrFormat(
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, \"mean\": %.2f, "
        "\"p50\": %llu, \"p95\": %llu, \"p99\": %llu, \"max\": %llu}",
        first ? "" : ",", name.c_str(),
        static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum), h.Mean(),
        static_cast<unsigned long long>(h.p50),
        static_cast<unsigned long long>(h.p95),
        static_cast<unsigned long long>(h.p99),
        static_cast<unsigned long long>(h.max));
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    (void)name;
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    (void)name;
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    (void)name;
    histogram->Reset();
  }
}

}  // namespace p2pdb::obs
