// Causal propagation tracing: reconstructs the DAG one update carves through
// the network. Every traced message carries a net::TraceContext (trace id,
// parent span, hop); each peer that handles one opens a TraceSpan covering
// receive -> chase -> WAL commit -> forward, stamps outgoing messages with
// its own span id, and reports the finished span to a TraceCollector. The
// collector can then answer the questions NetStats cannot: how long from the
// root update to the fixpoint, which causal chain was the critical path, and
// where inside each hop the time went (queue wait vs chase vs WAL).
//
// Tracing is off unless a Session enables it; untraced messages carry
// trace_id 0 and every instrumentation site short-circuits on that. Sampling
// (1 in N root updates) keeps the cost bounded under load — see
// TraceCollector::SampleRoot.
#ifndef P2PDB_OBS_TRACE_H_
#define P2PDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/net/message.h"
#include "src/util/ids.h"

namespace p2pdb::obs {

/// One peer's handling of one traced message: the unit the propagation DAG
/// is built from. Span ids are collector-unique; parent_span names the span
/// that sent the message (0 for the root update injection).
struct TraceSpan {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;
  uint32_t hop = 0;
  NodeId node = kNoNode;
  net::MessageType type = net::MessageType::kUpdateStart;

  uint64_t recv_micros = 0;        // Runtime clock at dispatch.
  uint64_t end_micros = 0;         // Runtime clock when the handler returned.
  uint64_t queue_wait_micros = 0;  // Mailbox residency before dispatch.
  uint64_t chase_micros = 0;       // Time inside the chase (rule application).
  uint64_t wal_micros = 0;         // Time persisting deltas (WAL append+sync).
  uint64_t bytes = 0;              // Wire size of the message that opened it.
  uint32_t forwards = 0;           // Messages this span sent onward.

  uint64_t DurationMicros() const {
    return end_micros >= recv_micros ? end_micros - recv_micros : 0;
  }
};

/// Aggregate view of one trace, computed by TraceCollector::Analyze.
struct TraceReport {
  struct HopStat {
    uint32_t hop = 0;
    uint64_t spans = 0;
    uint64_t bytes = 0;
    uint64_t queue_wait_micros = 0;
    uint64_t chase_micros = 0;
    uint64_t wal_micros = 0;
    uint64_t busy_micros = 0;  // Sum of span durations at this hop.
  };

  uint64_t trace_id = 0;
  uint64_t span_count = 0;
  uint64_t total_bytes = 0;
  uint32_t max_hop = 0;
  /// Root receive to the latest span end: the traced fixpoint latency.
  uint64_t fixpoint_micros = 0;
  /// Causal chain from the root to the last-finishing span (root first).
  std::vector<TraceSpan> critical_path;
  std::vector<HopStat> per_hop;
};

/// Thread-safe sink and analyzer for trace spans. One collector serves a
/// whole session (all peers, any runtime); Record is a mutex push, cheap at
/// trace volumes (spans per update ~= messages per update, and only sampled
/// updates are traced at all).
class TraceCollector {
 public:
  /// Allocates the ids a root update span needs. trace ids and span ids are
  /// collector-unique and never 0.
  uint64_t NextTraceId() { return next_trace_id_.fetch_add(1) + 1; }
  uint64_t NextSpanId() { return next_span_id_.fetch_add(1) + 1; }

  /// 1-in-N root sampling: returns true when the next root update should be
  /// traced. N = 1 (the default) traces everything; N = 0 disables tracing.
  void set_sample_every(uint32_t n) { sample_every_ = n; }
  bool SampleRoot();

  void Record(const TraceSpan& span);

  /// Ids of every trace with at least one recorded span, oldest first.
  std::vector<uint64_t> TraceIds() const;
  std::vector<TraceSpan> Spans(uint64_t trace_id) const;
  uint64_t TotalSpans() const;

  TraceReport Analyze(uint64_t trace_id) const;

  /// Human-readable propagation tree with per-span timing, children ordered
  /// by receive time. The trace_dump example prints exactly this.
  std::string RenderTree(uint64_t trace_id) const;

  /// JSON array of per-trace reports: [{"trace_id":..., "spans":...,
  /// "fixpoint_micros":..., "per_hop":[...], "critical_path":[...]}, ...].
  std::string ReportJson() const;

  void Clear();

 private:
  static constexpr size_t kMaxSpans = 1u << 20;  // Hard cap: ~1M spans.

  mutable std::mutex mutex_;
  std::map<uint64_t, std::vector<TraceSpan>> traces_;
  size_t total_spans_ = 0;
  std::atomic<uint64_t> next_trace_id_{0};
  std::atomic<uint64_t> next_span_id_{0};
  std::atomic<uint64_t> root_counter_{0};
  std::atomic<uint32_t> sample_every_{1};
};

}  // namespace p2pdb::obs

#endif  // P2PDB_OBS_TRACE_H_
