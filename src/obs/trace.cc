#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "src/obs/metrics.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace p2pdb::obs {

namespace {

/// Spans indexed by id, children grouped by parent and sorted by arrival —
/// the shape both Analyze and RenderTree walk.
struct TraceIndex {
  std::unordered_map<uint64_t, const TraceSpan*> by_id;
  std::unordered_map<uint64_t, std::vector<const TraceSpan*>> children;
  const TraceSpan* root = nullptr;

  explicit TraceIndex(const std::vector<TraceSpan>& spans) {
    for (const TraceSpan& span : spans) {
      by_id[span.span_id] = &span;
      children[span.parent_span].push_back(&span);
      if (span.parent_span == 0 &&
          (root == nullptr || span.recv_micros < root->recv_micros)) {
        root = &span;
      }
    }
    for (auto& [parent, kids] : children) {
      (void)parent;
      std::sort(kids.begin(), kids.end(),
                [](const TraceSpan* a, const TraceSpan* b) {
                  return a->recv_micros != b->recv_micros
                             ? a->recv_micros < b->recv_micros
                             : a->span_id < b->span_id;
                });
    }
  }
};

std::string SpanLine(const TraceSpan& span, uint64_t root_recv) {
  uint64_t rel = span.recv_micros >= root_recv ? span.recv_micros - root_recv
                                               : 0;
  std::string line = StrFormat(
      "node %u %s  +%lluus dur=%lluus", span.node,
      net::MessageTypeName(span.type), static_cast<unsigned long long>(rel),
      static_cast<unsigned long long>(span.DurationMicros()));
  if (span.queue_wait_micros != 0) {
    line += StrFormat(" queue=%lluus",
                      static_cast<unsigned long long>(span.queue_wait_micros));
  }
  if (span.chase_micros != 0) {
    line += StrFormat(" chase=%lluus",
                      static_cast<unsigned long long>(span.chase_micros));
  }
  if (span.wal_micros != 0) {
    line += StrFormat(" wal=%lluus",
                      static_cast<unsigned long long>(span.wal_micros));
  }
  line += StrFormat(" bytes=%llu", static_cast<unsigned long long>(span.bytes));
  if (span.forwards != 0) line += StrFormat(" ->%u", span.forwards);
  return line;
}

void RenderSubtree(const TraceIndex& index, const TraceSpan& span,
                   uint64_t root_recv, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += SpanLine(span, root_recv);
  *out += '\n';
  auto it = index.children.find(span.span_id);
  if (it == index.children.end()) return;
  for (const TraceSpan* child : it->second) {
    RenderSubtree(index, *child, root_recv, depth + 1, out);
  }
}

std::string SpanJson(const TraceSpan& span) {
  return StrFormat(
      "{\"span\": %llu, \"parent\": %llu, \"hop\": %u, \"node\": %u, "
      "\"type\": \"%s\", \"recv_micros\": %llu, \"dur_micros\": %llu, "
      "\"queue_micros\": %llu, \"chase_micros\": %llu, \"wal_micros\": %llu, "
      "\"bytes\": %llu, \"forwards\": %u}",
      static_cast<unsigned long long>(span.span_id),
      static_cast<unsigned long long>(span.parent_span), span.hop, span.node,
      net::MessageTypeName(span.type),
      static_cast<unsigned long long>(span.recv_micros),
      static_cast<unsigned long long>(span.DurationMicros()),
      static_cast<unsigned long long>(span.queue_wait_micros),
      static_cast<unsigned long long>(span.chase_micros),
      static_cast<unsigned long long>(span.wal_micros),
      static_cast<unsigned long long>(span.bytes), span.forwards);
}

}  // namespace

bool TraceCollector::SampleRoot() {
  uint32_t every = sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return false;
  return root_counter_.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

void TraceCollector::Record(const TraceSpan& span) {
  if (span.trace_id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (total_spans_ >= kMaxSpans) return;  // Cap: drop, never grow unbounded.
  traces_[span.trace_id].push_back(span);
  ++total_spans_;
}

std::vector<uint64_t> TraceCollector::TraceIds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<uint64_t> ids;
  ids.reserve(traces_.size());
  for (const auto& [id, spans] : traces_) {
    (void)spans;
    ids.push_back(id);
  }
  return ids;
}

std::vector<TraceSpan> TraceCollector::Spans(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = traces_.find(trace_id);
  return it == traces_.end() ? std::vector<TraceSpan>{} : it->second;
}

uint64_t TraceCollector::TotalSpans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_spans_;
}

TraceReport TraceCollector::Analyze(uint64_t trace_id) const {
  std::vector<TraceSpan> spans = Spans(trace_id);
  TraceReport report;
  report.trace_id = trace_id;
  report.span_count = spans.size();
  if (spans.empty()) return report;

  TraceIndex index(spans);
  uint64_t root_recv =
      index.root != nullptr ? index.root->recv_micros : spans[0].recv_micros;

  const TraceSpan* last = &spans[0];
  std::map<uint32_t, TraceReport::HopStat> hops;
  for (const TraceSpan& span : spans) {
    report.total_bytes += span.bytes;
    report.max_hop = std::max(report.max_hop, span.hop);
    if (span.end_micros > last->end_micros) last = &span;
    TraceReport::HopStat& h = hops[span.hop];
    h.hop = span.hop;
    ++h.spans;
    h.bytes += span.bytes;
    h.queue_wait_micros += span.queue_wait_micros;
    h.chase_micros += span.chase_micros;
    h.wal_micros += span.wal_micros;
    h.busy_micros += span.DurationMicros();
  }
  report.fixpoint_micros =
      last->end_micros >= root_recv ? last->end_micros - root_recv : 0;
  for (const auto& [hop, stat] : hops) {
    (void)hop;
    report.per_hop.push_back(stat);
  }

  // Critical path: parent links from the last-finishing span back to the
  // root. A missing parent (span dropped at the cap) truncates the walk.
  std::vector<const TraceSpan*> chain;
  for (const TraceSpan* cur = last; cur != nullptr;) {
    chain.push_back(cur);
    if (cur->parent_span == 0) break;
    auto it = index.by_id.find(cur->parent_span);
    cur = it == index.by_id.end() ? nullptr : it->second;
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    report.critical_path.push_back(**it);
  }
  return report;
}

std::string TraceCollector::RenderTree(uint64_t trace_id) const {
  std::vector<TraceSpan> spans = Spans(trace_id);
  if (spans.empty()) {
    return StrFormat("trace %llu: no spans\n",
                     static_cast<unsigned long long>(trace_id));
  }
  TraceIndex index(spans);
  TraceReport report = Analyze(trace_id);
  std::string out = StrFormat(
      "trace %llu: %llu spans, %u hops, %llu bytes, fixpoint %lluus\n",
      static_cast<unsigned long long>(trace_id),
      static_cast<unsigned long long>(report.span_count), report.max_hop,
      static_cast<unsigned long long>(report.total_bytes),
      static_cast<unsigned long long>(report.fixpoint_micros));
  if (index.root == nullptr) {
    // No root span (dropped at the cap, or a foreign trace id): flat dump.
    for (const TraceSpan& span : spans) {
      out += "  " + SpanLine(span, spans[0].recv_micros) + '\n';
    }
    return out;
  }
  uint64_t root_recv = index.root->recv_micros;
  for (const TraceSpan* root : index.children.at(0)) {
    RenderSubtree(index, *root, root_recv, 1, &out);
  }
  out += "critical path:";
  for (const TraceSpan& span : report.critical_path) {
    out += StrFormat(" node%u@%lluus", span.node,
                     static_cast<unsigned long long>(
                         span.end_micros >= root_recv
                             ? span.end_micros - root_recv
                             : 0));
  }
  out += '\n';
  return out;
}

std::string TraceCollector::ReportJson() const {
  std::string out = "[";
  bool first_trace = true;
  for (uint64_t id : TraceIds()) {
    TraceReport report = Analyze(id);
    out += first_trace ? "\n" : ",\n";
    first_trace = false;
    out += StrFormat(
        "    {\"trace_id\": %llu, \"spans\": %llu, \"max_hop\": %u, "
        "\"total_bytes\": %llu, \"fixpoint_micros\": %llu,\n     \"per_hop\": "
        "[",
        static_cast<unsigned long long>(report.trace_id),
        static_cast<unsigned long long>(report.span_count), report.max_hop,
        static_cast<unsigned long long>(report.total_bytes),
        static_cast<unsigned long long>(report.fixpoint_micros));
    bool first = true;
    for (const TraceReport::HopStat& h : report.per_hop) {
      out += StrFormat(
          "%s{\"hop\": %u, \"spans\": %llu, \"bytes\": %llu, "
          "\"queue_micros\": %llu, \"chase_micros\": %llu, \"wal_micros\": "
          "%llu, \"busy_micros\": %llu}",
          first ? "" : ", ", h.hop, static_cast<unsigned long long>(h.spans),
          static_cast<unsigned long long>(h.bytes),
          static_cast<unsigned long long>(h.queue_wait_micros),
          static_cast<unsigned long long>(h.chase_micros),
          static_cast<unsigned long long>(h.wal_micros),
          static_cast<unsigned long long>(h.busy_micros));
      first = false;
    }
    out += "],\n     \"critical_path\": [";
    first = true;
    for (const TraceSpan& span : report.critical_path) {
      out += (first ? "" : ", ") + SpanJson(span);
      first = false;
    }
    out += "]}";
  }
  out += first_trace ? "]" : "\n  ]";
  return out;
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  traces_.clear();
  total_spans_ = 0;
}

}  // namespace p2pdb::obs
