// Metrics registry: named counters, gauges, and log-bucketed latency
// histograms — the paper's per-node "statistical module" grown into a
// process-wide instrument panel. Recording is designed for hot paths:
// counters shard their cells across threads (one relaxed add, no shared
// cache line ping-pong under contention), histograms bucket by bit width
// (two relaxed adds and a CAS-max), and instrument pointers are stable for
// the registry's lifetime so call sites resolve a name exactly once.
//
// Snapshot()/ReportText()/ReportJson() read a consistent-enough view for
// experiment dumps (individual cells are atomic; cross-instrument skew is
// acceptable by design — these are statistics, not ledgers). Reset() zeroes
// every instrument in place for per-experiment sweeps without invalidating
// cached pointers.
//
// Per-message timing instruments (mailbox queue wait) cost a clock read per
// message, which the steady-state frame path cannot afford by default; they
// are gated behind SetDetailedTiming(true), a single relaxed load when off.
#ifndef P2PDB_OBS_METRICS_H_
#define P2PDB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace p2pdb::obs {

/// Monotone event count. Add() is wait-free and contention-sharded: each
/// thread lands on one of kShards padded cells, so concurrent recorders do
/// not serialize on a single cache line. Value() sums the shards (racing
/// adds may or may not be included — monotone either way).
class Counter {
 public:
  void Add(uint64_t n = 1);
  void Increment() { Add(1); }
  uint64_t Value() const;
  void Reset();

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Last-written instantaneous value (queue depth, table size, ratio x1000).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  /// Raises the gauge to `value` if it is a new maximum (high-water marks).
  void RaiseTo(int64_t value);
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of one histogram, with quantiles estimated from the
/// log-bucket upper bounds (a value recorded as 300 reports p50 as 511 — the
/// resolution is the price of wait-free recording; sums and counts are exact).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

/// Log-bucketed distribution: bucket b holds values with bit width b, i.e.
/// the range [2^(b-1), 2^b - 1] (bucket 0 holds exactly 0). Record() is
/// wait-free: one relaxed add per bucket and sum, plus a CAS max.
class Histogram {
 public:
  void Record(uint64_t value);
  HistogramSnapshot Snapshot() const;
  uint64_t Count() const;
  void Reset();

  /// Inclusive upper bound of bucket `b` (2^b - 1; bucket 0 → 0).
  static uint64_t BucketUpperBound(size_t b);

 private:
  static constexpr size_t kBuckets = 65;  // Bit widths 0..64.
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Named instruments, created on first use and stable for the registry's
/// lifetime. Lookup takes a mutex — resolve once and cache the pointer:
///
///   static obs::Histogram* h =
///       obs::Registry::Global().GetHistogram("wal.append_micros");
///   h->Record(micros);
class Registry {
 public:
  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };

  /// The process-wide registry every subsystem records into. Hot layers
  /// (WAL, chase, mailbox, reactor) have no common owner object to hang a
  /// registry off; a process singleton keeps the instrumentation one line
  /// per site. Tests and sweeps isolate experiments with Reset().
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  Snapshot TakeSnapshot() const;
  /// One instrument per line, histograms with count/mean/p50/p95/p99/max.
  std::string ReportText() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
  std::string ReportJson() const;

  /// Zeroes every instrument in place (cached pointers stay valid).
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Gate for per-message timing instruments (one clock read per message —
/// mailbox queue wait). Off by default so the steady-state frame path pays
/// only this relaxed load; tracing sessions and obs dumps switch it on.
void SetDetailedTiming(bool enabled);
bool DetailedTimingEnabled();

}  // namespace p2pdb::obs

#endif  // P2PDB_OBS_METRICS_H_
