#include "src/obs/export.h"

#include <cstdio>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"

namespace p2pdb::obs {

bool WriteObsJson(const std::string& path, Registry& registry,
                  const TraceCollector* collector) {
  std::string metrics = registry.ReportJson();
  // Indent the registry object two spaces so the combined file stays legible.
  std::string body = "{\n  \"metrics\": ";
  for (char c : metrics) {
    body += c;
    if (c == '\n') body += "  ";
  }
  while (!body.empty() && (body.back() == ' ' || body.back() == '\n')) {
    body.pop_back();
  }
  body += ",\n  \"traces\": ";
  body += collector != nullptr ? collector->ReportJson() : "[]";
  body += "\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    P2PDB_LOG(kWarn) << "obs: cannot write " << path;
    return false;
  }
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    P2PDB_LOG(kWarn) << "obs: short write to " << path;
    return false;
  }
  return true;
}

}  // namespace p2pdb::obs
