// Database update (algorithms A4-A6) as a distributed fix-point computation.
//
// Global update: the super-peer floods UpdateStart along dependency edges;
// each node subscribes (QueryRequest) to every body part of every rule it is
// the head of. Body nodes evaluate the part query against their current data
// and push answers (QueryAnswer) now and after every local change — full
// result sets or deltas (the paper's "delta optimization"). The head joins
// per-part answers and chase-inserts into its database (A6), inventing
// labeled nulls for existential head variables; any change ripples to its own
// subscribers. Data thus iterates around dependency cycles until fix-point.
//
// Fix-point detection (the paper's Rules/Paths flag machinery made precise):
//  * a subscription is flagged when its source reports state_u = closed with
//    a final answer (A5's `state == complete`);
//  * a node in a trivial SCC closes when every part of every rule is flagged;
//  * a multi-node SCC runs a token ring (Mattern four-counter termination
//    detection over intra-SCC protocol messages): the leader (minimal id)
//    closes the component after two consecutive token passes that observe
//    identical send/receive counts, equal sums, and all members externally
//    ready. SCC membership comes from the discovery phase's edge knowledge.
//
// Query-dependent update: PartialUpdate messages pull only the relations a
// local query needs, carrying the paper's SN node path to bound propagation;
// termination is by network quiescence instead of closure flags.
//
// Dynamics (Section 4): AddRule/DeleteRule notifications re-subscribe or
// unsubscribe at run time and re-open closed nodes; inserted data is never
// retracted, which keeps the final state inside the sound/complete envelope
// of Definition 9.
#ifndef P2PDB_CORE_UPDATE_H_
#define P2PDB_CORE_UPDATE_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/core/wire.h"
#include "src/relational/chase.h"
#include "src/util/ids.h"

namespace p2pdb::core {

class Peer;

/// Per-node options for the update algorithm.
struct UpdateOptions {
  /// Send only new tuples on re-answer (delta optimization). When false the
  /// full result set is retransmitted on every change (the paper's baseline
  /// behaviour; ablation A1).
  bool delta_answers = true;
  rel::ChaseOptions chase;
};

class UpdateEngine {
 public:
  /// state_u in the paper: open until the node's data is complete.
  enum class State { kIdle, kOpen, kClosed };

  struct Stats {
    uint64_t tuples_inserted = 0;
    uint64_t applications_skipped = 0;
    uint64_t applications_truncated = 0;
    uint64_t joins_evaluated = 0;
    uint64_t answers_sent = 0;
    uint64_t token_passes = 0;
    uint64_t reopens = 0;
  };

  UpdateEngine(Peer* peer, UpdateOptions options)
      : peer_(peer), options_(options) {}

  /// Super-peer entry point: joins the session and floods UpdateStart.
  void StartSession(uint64_t session);

  /// Query-dependent update: pull only `relations` (needed by a local query).
  void StartPartial(uint64_t session, const std::set<std::string>& relations);

  void OnUpdateStart(NodeId from, const wire::UpdateStart& msg);
  void OnQueryRequest(NodeId from, const wire::QueryRequest& msg);
  void OnQueryAnswer(NodeId from, const wire::QueryAnswer& msg);
  void OnUnsubscribe(NodeId from, const wire::Unsubscribe& msg);
  void OnPartialUpdate(NodeId from, const wire::PartialUpdate& msg);
  void OnToken(NodeId from, const wire::Token& msg);
  void OnSccClosed(NodeId from, const wire::SccClosed& msg);
  void OnReopen(NodeId from, const wire::Reopen& msg);
  void OnAddRule(NodeId from, const wire::AddRuleChange& msg);
  void OnDeleteRule(NodeId from, const wire::DeleteRuleChange& msg);

  State state() const { return state_; }
  const Stats& stats() const { return stats_; }
  uint64_t session() const { return session_; }

  /// Recomputes SCC membership from the peer's (possibly re-discovered)
  /// topology knowledge. Called on session join and by the session driver
  /// after dynamic changes.
  void RefreshScc();

 private:
  /// Head-side state of one rule: accumulated answers per body part.
  struct RuleRuntime {
    CoordinationRule rule;
    std::vector<std::set<rel::Tuple>> part_answers;
    std::vector<bool> part_closed;
  };

  /// Body-side state of one subscription from a head node.
  struct Subscription {
    NodeId subscriber = kNoNode;
    std::string rule_id;
    uint32_t part = 0;
    rel::ConjunctiveQuery query;
    std::set<rel::Tuple> last_sent;
    bool announced_closed = false;
  };

  void JoinSession(uint64_t session, bool flood);
  RuleRuntime* EnsureRuleRuntime(const CoordinationRule& rule);
  void SubscribeParts(const RuleRuntime& rr);
  /// Semi-naive rule application: joins the *new* tuples of part
  /// `delta_part` against the full accumulated answers of the other parts and
  /// applies the rule head; returns true if the local database changed.
  /// Complete for monotone answers — bindings made only of old tuples were
  /// applied by an earlier call.
  bool JoinAndApply(RuleRuntime* rr, uint32_t delta_part,
                    const std::set<rel::Tuple>& delta);
  /// Sends deltas / closure flags to subscribers whose view is stale.
  /// Incremental: consumes the tuples the chase inserted since the last call
  /// (pending_delta_) and evaluates each subscription semi-naively against
  /// just that delta instead of re-running the full query.
  void NotifySubscribers();
  /// Closes this node if it is open, externally ready, and not in a
  /// non-trivial SCC; then notifies subscribers.
  void MaybeCloseTrivial();
  /// Ring counterpart of MaybeCloseTrivial: when an event invisible to the
  /// intra-SCC counters makes this member externally ready, wake a paused
  /// leader (directly, or with a Reopen poke).
  void PokeRingIfReady();
  void CloseSelf(bool notify_in_scc);
  void ReopenSelf();
  bool ExternallyReady() const;

  // --- SCC token ring ---
  bool IsRingLeader() const;
  NodeId RingSuccessor(NodeId member) const;
  void LeaderStartPass();
  void LeaderEvaluate(const wire::Token& token);
  void CountIntraSccSend(NodeId to);
  void CountIntraSccRecv(NodeId from);
  /// Restarts token passes after a crash-induced pause (see LeaderEvaluate)
  /// once new intra-SCC activity touches the leader.
  void ResumeRingIfPaused();

  void ForwardPartial(const std::set<std::string>& relations,
                      std::vector<NodeId> sn_path);

  Peer* peer_;
  UpdateOptions options_;
  State state_ = State::kIdle;
  uint64_t session_ = 0;
  bool partial_mode_ = false;

  std::map<std::string, RuleRuntime> rule_runtimes_;
  std::vector<Subscription> subscriptions_;
  /// Tuples inserted by the chase since the last subscriber notification,
  /// keyed by relation (the semi-naive evaluation feed).
  std::map<std::string, std::set<rel::Tuple>> pending_delta_;

  // SCC termination detection.
  std::set<NodeId> scc_;
  uint64_t intra_sent_ = 0;
  uint64_t intra_recv_ = 0;
  bool token_running_ = false;
  uint64_t next_pass_ = 1;
  std::optional<wire::Token> last_round_;

  // Query-dependent update dedup.
  std::set<std::string> partial_rules_forwarded_;

  Stats stats_;
};

}  // namespace p2pdb::core

#endif  // P2PDB_CORE_UPDATE_H_
