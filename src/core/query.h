// The read path of the query plane: answers point lookups and conjunctive
// queries from a peer's SnapshotStore. Safe to call from any thread, any
// number of threads at once — acquisition is one atomic pointer load and
// evaluation runs over a fully pre-indexed immutable snapshot (no mutex,
// no condvar, no RunExclusive anywhere on this path).
//
// Every call records the obs instruments of the read plane:
//   query.eval_micros                histogram, per-query evaluation time
//   query.served                     sharded counter, queries answered
//   query.snapshot_staleness_batches gauge (high-water), max delta batches a
//                                    served snapshot lagged the live commit
#ifndef P2PDB_CORE_QUERY_H_
#define P2PDB_CORE_QUERY_H_

#include <set>
#include <string>

#include "src/relational/cq.h"
#include "src/relational/mvcc.h"
#include "src/util/status.h"

namespace p2pdb::core {

/// Evaluates `query` against the store's current snapshot.
Result<std::set<rel::Tuple>> SnapshotQuery(const rel::SnapshotStore& store,
                                           const rel::ConjunctiveQuery& query);

/// Point lookup: true iff `relation` currently contains `key` (false when
/// the relation does not exist — absent data, not an error).
Result<bool> SnapshotQueryPoint(const rel::SnapshotStore& store,
                                const std::string& relation,
                                const rel::Tuple& key);

}  // namespace p2pdb::core

#endif  // P2PDB_CORE_QUERY_H_
