#include "src/core/system.h"

#include <set>

#include "src/util/string_util.h"

namespace p2pdb::core {

std::vector<std::string> CoordinationRule::PartExportVars(size_t index) const {
  std::set<std::string> needed;
  for (const rel::Atom& a : head_atoms) {
    for (const rel::Term& t : a.terms) {
      if (t.is_var()) needed.insert(t.var);
    }
  }
  for (size_t p = 0; p < body.size(); ++p) {
    if (p == index) continue;
    for (const rel::Atom& a : body[p].atoms) {
      for (const rel::Term& t : a.terms) {
        if (t.is_var()) needed.insert(t.var);
      }
    }
  }
  for (const rel::Builtin& b : cross_builtins) {
    for (const rel::Term* t : {&b.lhs, &b.rhs}) {
      if (t->is_var()) needed.insert(t->var);
    }
  }
  // Keep this part's variables that are needed elsewhere, in first-appearance
  // order for determinism.
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const rel::Atom& a : body[index].atoms) {
    for (const rel::Term& t : a.terms) {
      if (t.is_var() && needed.count(t.var) && seen.insert(t.var).second) {
        out.push_back(t.var);
      }
    }
  }
  return out;
}

rel::ConjunctiveQuery CoordinationRule::PartQuery(size_t index) const {
  rel::ConjunctiveQuery q;
  q.head_vars = PartExportVars(index);
  q.atoms = body[index].atoms;
  q.builtins = body[index].builtins;
  return q;
}

std::vector<std::string> CoordinationRule::ExistentialVars() const {
  std::set<std::string> body_vars;
  for (const BodyPart& p : body) {
    for (const rel::Atom& a : p.atoms) {
      for (const rel::Term& t : a.terms) {
        if (t.is_var()) body_vars.insert(t.var);
      }
    }
  }
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const rel::Atom& a : head_atoms) {
    for (const rel::Term& t : a.terms) {
      if (t.is_var() && !body_vars.count(t.var) && seen.insert(t.var).second) {
        out.push_back(t.var);
      }
    }
  }
  return out;
}

std::vector<NodeId> CoordinationRule::BodyNodes() const {
  std::vector<NodeId> out;
  out.reserve(body.size());
  for (const BodyPart& p : body) out.push_back(p.node);
  return out;
}

std::string CoordinationRule::ToString() const {
  std::vector<std::string> body_parts;
  for (const BodyPart& p : body) {
    for (const rel::Atom& a : p.atoms) {
      body_parts.push_back(StrFormat("%u:", p.node) + a.ToString());
    }
    for (const rel::Builtin& b : p.builtins) {
      body_parts.push_back(b.ToString());
    }
  }
  for (const rel::Builtin& b : cross_builtins) body_parts.push_back(b.ToString());
  std::vector<std::string> head_parts;
  for (const rel::Atom& a : head_atoms) {
    head_parts.push_back(StrFormat("%u:", head_node) + a.ToString());
  }
  return id + ": " + JoinStrings(body_parts, ", ") + " => " +
         JoinStrings(head_parts, ", ");
}

Status P2PSystem::AddNode(std::string name, rel::Database db) {
  if (name_to_id_.count(name)) {
    return Status::AlreadyExists("node " + name);
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  name_to_id_.emplace(name, id);
  nodes_.push_back(NodeInfo{id, std::move(name), std::move(db)});
  return Status::OK();
}

Status P2PSystem::ValidateRule(const CoordinationRule& rule) const {
  if (rule.id.empty()) return Status::InvalidArgument("rule id empty");
  if (rule.head_node >= nodes_.size()) {
    return Status::InvalidArgument("rule " + rule.id + ": bad head node");
  }
  if (rule.head_atoms.empty()) {
    return Status::InvalidArgument("rule " + rule.id + ": empty head");
  }
  if (rule.body.empty()) {
    return Status::InvalidArgument("rule " + rule.id + ": empty body");
  }
  std::set<NodeId> body_nodes;
  for (const CoordinationRule::BodyPart& p : rule.body) {
    if (p.node >= nodes_.size()) {
      return Status::InvalidArgument("rule " + rule.id + ": bad body node");
    }
    if (p.node == rule.head_node) {
      return Status::InvalidArgument(
          "rule " + rule.id + ": body node equals head node (Definition 2 "
          "requires distinct indices)");
    }
    if (!body_nodes.insert(p.node).second) {
      return Status::InvalidArgument("rule " + rule.id +
                                     ": duplicate body node part");
    }
    if (p.atoms.empty()) {
      return Status::InvalidArgument("rule " + rule.id + ": empty body part");
    }
    for (const rel::Atom& a : p.atoms) {
      auto relation = nodes_[p.node].db.Get(a.relation);
      if (!relation.ok()) {
        return Status::InvalidArgument("rule " + rule.id + ": body atom " +
                                       a.ToString() + " not in node " +
                                       nodes_[p.node].name);
      }
      if ((*relation)->schema().arity() != a.terms.size()) {
        return Status::InvalidArgument("rule " + rule.id + ": arity mismatch " +
                                       a.ToString());
      }
    }
  }
  for (const rel::Atom& a : rule.head_atoms) {
    auto relation = nodes_[rule.head_node].db.Get(a.relation);
    if (!relation.ok()) {
      return Status::InvalidArgument("rule " + rule.id + ": head atom " +
                                     a.ToString() + " not in node " +
                                     nodes_[rule.head_node].name);
    }
    if ((*relation)->schema().arity() != a.terms.size()) {
      return Status::InvalidArgument("rule " + rule.id + ": arity mismatch " +
                                     a.ToString());
    }
  }
  for (const auto& existing : rules_) {
    if (existing.id == rule.id) {
      return Status::AlreadyExists("rule " + rule.id);
    }
  }
  return Status::OK();
}

Status P2PSystem::AddRule(CoordinationRule rule) {
  P2PDB_RETURN_IF_ERROR(ValidateRule(rule));
  rules_.push_back(std::move(rule));
  return Status::OK();
}

Status P2PSystem::RemoveRule(const std::string& rule_id) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->id == rule_id) {
      rules_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("rule " + rule_id);
}

Result<NodeId> P2PSystem::NodeByName(const std::string& name) const {
  auto it = name_to_id_.find(name);
  if (it == name_to_id_.end()) return Status::NotFound("node " + name);
  return it->second;
}

Result<const CoordinationRule*> P2PSystem::RuleById(
    const std::string& id) const {
  for (const auto& r : rules_) {
    if (r.id == id) return &r;
  }
  return Status::NotFound("rule " + id);
}

std::vector<const CoordinationRule*> P2PSystem::RulesWithHead(
    NodeId node) const {
  std::vector<const CoordinationRule*> out;
  for (const auto& r : rules_) {
    if (r.head_node == node) out.push_back(&r);
  }
  return out;
}

Result<rel::Database> P2PSystem::CombinedDatabase() const {
  rel::Database combined;
  for (const NodeInfo& n : nodes_) {
    for (const auto& [name, relation] : n.db.relations()) {
      P2PDB_RETURN_IF_ERROR(combined.CreateRelation(relation.schema()));
      rel::Relation* dst = *combined.GetMutable(name);
      for (const rel::Tuple& t : relation.tuples()) {
        P2PDB_RETURN_IF_ERROR(dst->Insert(t).status());
      }
    }
  }
  return combined;
}

std::string P2PSystem::ToString() const {
  std::string out;
  for (const NodeInfo& n : nodes_) {
    out += StrFormat("node %u (%s): %zu relations, %zu tuples\n", n.id,
                     n.name.c_str(), n.db.relations().size(),
                     n.db.TotalTuples());
  }
  for (const auto& r : rules_) out += r.ToString() + "\n";
  return out;
}

}  // namespace p2pdb::core
