// Dependency edges and paths (Definitions 5-7) plus the graph analyses the
// protocol needs: reachability, strongly connected components (used by the
// update engine's fix-point detection), topological order (acyclic baseline),
// weak-acyclicity of the rule set (chase termination), and separation
// (Definition 10).
#ifndef P2PDB_CORE_DEPENDENCY_H_
#define P2PDB_CORE_DEPENDENCY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/util/ids.h"

namespace p2pdb::core {

/// A directed edge i -> j meaning node i has a rule whose body involves j
/// (data flows j -> i; the dependency edge points the other way, Def. 5).
using Edge = std::pair<NodeId, NodeId>;

/// The dependency graph of a P2P system (or of a node's local knowledge).
class DependencyGraph {
 public:
  DependencyGraph() = default;
  explicit DependencyGraph(const std::set<Edge>& edges);

  /// Builds the graph from a rule set: one edge head->bodynode per rule part.
  static DependencyGraph FromRules(const std::vector<CoordinationRule>& rules);

  void AddEdge(NodeId from, NodeId to);
  const std::set<Edge>& edges() const { return edges_; }
  const std::set<NodeId>& Successors(NodeId n) const;
  std::set<NodeId> Nodes() const;

  /// Restriction of this graph to edges reachable from `start` (what a node
  /// learns in the discovery phase).
  DependencyGraph ReachableSubgraph(NodeId start) const;

  /// All nodes reachable from `start` (excluding `start` unless on a cycle).
  std::set<NodeId> ReachableFrom(NodeId start) const;

  /// Maximal dependency paths from `start` (Definition 7): simple-prefix paths
  /// that cannot be extended. A path may end by revisiting a node already on
  /// it (closing a loop) or at a node with no outgoing edges. Paths include
  /// the start node as the first element.
  std::vector<std::vector<NodeId>> MaximalPathsFrom(NodeId start) const;

  /// Strongly connected components, each a sorted node set, in reverse
  /// topological order of the condensation (Tarjan).
  std::vector<std::set<NodeId>> StronglyConnectedComponents() const;

  /// The SCC containing `n` (singleton {n} if n is isolated).
  std::set<NodeId> SccOf(NodeId n) const;

  bool IsAcyclic() const;

  /// A topological order of nodes such that every edge goes from earlier to
  /// later; fails if the graph is cyclic.
  Result<std::vector<NodeId>> TopologicalOrder() const;

  /// Definition 10.1: `a` is separated from `b` iff no dependency path from a
  /// node in `a` involves a node in `b` — equivalently, nothing in `b` is
  /// reachable from `a`.
  bool IsSeparated(const std::set<NodeId>& a, const std::set<NodeId>& b) const;

  /// Depth of the graph from `start`: length (in edges) of the longest simple
  /// path from start. Used to verify the time-linear-in-depth experiment.
  size_t DepthFrom(NodeId start) const;

  std::string ToString() const;

 private:
  std::map<NodeId, std::set<NodeId>> adjacency_;
  std::set<Edge> edges_;
};

/// Formats a path as "A.B.C" using node names from `system` (or ids when null).
std::string PathToString(const std::vector<NodeId>& path,
                         const P2PSystem* system);

/// Weak acyclicity of a rule set (standard chase-termination criterion):
/// build the position graph over (relation, column) pairs with normal edges
/// for copied variables and special edges from frontier-variable positions to
/// existential positions; weakly acyclic iff no cycle passes through a special
/// edge. Weakly acyclic rule sets cannot hit the chase depth bound.
bool RulesAreWeaklyAcyclic(const std::vector<CoordinationRule>& rules);

}  // namespace p2pdb::core

#endif  // P2PDB_CORE_DEPENDENCY_H_
