// PeerBootstrap: the one construction path for a live Peer, shared by the
// in-process Session and the out-of-process daemon (src/daemon). Both
// provisioning surfaces — Session building a fleet from a P2PSystem, and
// p2pdb_peerd building its single peer from a config file plus the wire
// bootstrap handshake — funnel through Build(), so the fresh-start and
// crash-recovery sequences (deferred registration, snapshot-publish
// deferral, storage attach before rule install before WAL replay) exist in
// exactly one place.
#ifndef P2PDB_CORE_BOOTSTRAP_H_
#define P2PDB_CORE_BOOTSTRAP_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/peer.h"
#include "src/core/system.h"
#include "src/net/runtime.h"
#include "src/obs/trace.h"
#include "src/relational/database.h"
#include "src/storage/storage.h"
#include "src/util/status.h"

namespace p2pdb::core {

class PeerBootstrap {
 public:
  struct Spec {
    NodeId id = kNoNode;
    std::string name;
    /// Initial database contents; ignored on the recover path (the state
    /// comes from the storage backend's checkpoint + WAL instead).
    rel::Database db;
    /// The system's coordination rules; Build installs the subset headed at
    /// `id` ("initially each node knows all rules of which it is a target")
    /// and tolerates re-installation of rules the peer already holds.
    const std::vector<CoordinationRule>* rules = nullptr;
    /// Peer configuration, applied verbatim except on the recover path where
    /// registration and snapshot publishing are deferred until recovery is
    /// complete (config.register_with_runtime still decides whether Build
    /// registers the recovered peer at the end).
    Peer::Config config;
    /// Optional durable backend; attached before rules so Recover()'s rule-
    /// change replay lands on the re-registered initial rules.
    std::unique_ptr<storage::Storage> storage;
    /// Rebuild state from `storage` (Peer::Recover) instead of using `db`.
    bool recover = false;
    /// Causal tracing collector carried across restarts (may be null).
    obs::TraceCollector* collector = nullptr;
  };

  /// Builds a peer per `spec`. On the recover path the peer is constructed
  /// unregistered with an empty database and snapshot publishing deferred —
  /// readers keep the pre-crash snapshot, and on concurrent runtimes no
  /// message can reach a half-recovered peer — then recovered, and only then
  /// registered (iff spec.config.register_with_runtime) with delivery
  /// readiness verified.
  static Result<std::unique_ptr<Peer>> Build(net::Runtime* runtime, Spec spec);
};

}  // namespace p2pdb::core

#endif  // P2PDB_CORE_BOOTSTRAP_H_
