#include "src/core/dependency.h"

#include <algorithm>
#include <functional>

#include "src/util/string_util.h"

namespace p2pdb::core {

namespace {
const std::set<NodeId> kEmptySet;
}  // namespace

DependencyGraph::DependencyGraph(const std::set<Edge>& edges) {
  for (const Edge& e : edges) AddEdge(e.first, e.second);
}

DependencyGraph DependencyGraph::FromRules(
    const std::vector<CoordinationRule>& rules) {
  DependencyGraph g;
  for (const CoordinationRule& r : rules) {
    for (const CoordinationRule::BodyPart& p : r.body) {
      g.AddEdge(r.head_node, p.node);
    }
  }
  return g;
}

void DependencyGraph::AddEdge(NodeId from, NodeId to) {
  adjacency_[from].insert(to);
  adjacency_[to];  // Ensure the target exists as a node.
  edges_.insert({from, to});
}

const std::set<NodeId>& DependencyGraph::Successors(NodeId n) const {
  auto it = adjacency_.find(n);
  return it == adjacency_.end() ? kEmptySet : it->second;
}

std::set<NodeId> DependencyGraph::Nodes() const {
  std::set<NodeId> out;
  for (const auto& [n, succs] : adjacency_) {
    out.insert(n);
    out.insert(succs.begin(), succs.end());
  }
  return out;
}

DependencyGraph DependencyGraph::ReachableSubgraph(NodeId start) const {
  DependencyGraph out;
  std::set<NodeId> visited;
  std::vector<NodeId> stack = {start};
  visited.insert(start);
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    for (NodeId s : Successors(n)) {
      out.AddEdge(n, s);
      if (visited.insert(s).second) stack.push_back(s);
    }
  }
  return out;
}

std::set<NodeId> DependencyGraph::ReachableFrom(NodeId start) const {
  std::set<NodeId> visited;
  std::vector<NodeId> stack = {start};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    for (NodeId s : Successors(n)) {
      if (visited.insert(s).second) stack.push_back(s);
    }
  }
  return visited;
}

std::vector<std::vector<NodeId>> DependencyGraph::MaximalPathsFrom(
    NodeId start) const {
  std::vector<std::vector<NodeId>> out;
  std::vector<NodeId> path = {start};
  std::set<NodeId> on_path = {start};

  std::function<void()> dfs = [&]() {
    NodeId current = path.back();
    const std::set<NodeId>& succs = Successors(current);
    if (succs.empty()) {
      if (path.size() > 1) out.push_back(path);
      return;
    }
    for (NodeId next : succs) {
      if (on_path.count(next)) {
        // Closing a loop: the prefix stays simple, and nothing can follow
        // (Definition 6), so this extension is maximal.
        path.push_back(next);
        out.push_back(path);
        path.pop_back();
      } else {
        path.push_back(next);
        on_path.insert(next);
        dfs();
        on_path.erase(next);
        path.pop_back();
      }
    }
  };
  dfs();
  return out;
}

std::vector<std::set<NodeId>> DependencyGraph::StronglyConnectedComponents()
    const {
  // Tarjan's algorithm, iterative over the recursion via std::function (graphs
  // here are small: network-sized, not data-sized).
  std::map<NodeId, int> index, lowlink;
  std::map<NodeId, bool> on_stack;
  std::vector<NodeId> stack;
  std::vector<std::set<NodeId>> sccs;
  int next_index = 0;

  std::function<void(NodeId)> strongconnect = [&](NodeId v) {
    index[v] = lowlink[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = true;
    for (NodeId w : Successors(v)) {
      if (!index.count(w)) {
        strongconnect(w);
        lowlink[v] = std::min(lowlink[v], lowlink[w]);
      } else if (on_stack[w]) {
        lowlink[v] = std::min(lowlink[v], index[w]);
      }
    }
    if (lowlink[v] == index[v]) {
      std::set<NodeId> scc;
      NodeId w;
      do {
        w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        scc.insert(w);
      } while (w != v);
      sccs.push_back(std::move(scc));
    }
  };

  for (NodeId n : Nodes()) {
    if (!index.count(n)) strongconnect(n);
  }
  return sccs;
}

std::set<NodeId> DependencyGraph::SccOf(NodeId n) const {
  for (const std::set<NodeId>& scc : StronglyConnectedComponents()) {
    if (scc.count(n)) return scc;
  }
  return {n};
}

bool DependencyGraph::IsAcyclic() const {
  for (const std::set<NodeId>& scc : StronglyConnectedComponents()) {
    if (scc.size() > 1) return false;
    NodeId n = *scc.begin();
    if (Successors(n).count(n)) return false;  // Self-loop.
  }
  return true;
}

Result<std::vector<NodeId>> DependencyGraph::TopologicalOrder() const {
  if (!IsAcyclic()) return Status::InvalidArgument("graph is cyclic");
  // Tarjan emits SCCs in reverse topological order; with singleton SCCs that
  // is a reverse topological order of nodes.
  std::vector<NodeId> order;
  for (const std::set<NodeId>& scc : StronglyConnectedComponents()) {
    order.push_back(*scc.begin());
  }
  std::reverse(order.begin(), order.end());
  return order;
}

bool DependencyGraph::IsSeparated(const std::set<NodeId>& a,
                                  const std::set<NodeId>& b) const {
  for (NodeId n : a) {
    std::set<NodeId> reach = ReachableFrom(n);
    for (NodeId m : b) {
      if (reach.count(m)) return false;
    }
  }
  return true;
}

size_t DependencyGraph::DepthFrom(NodeId start) const {
  // Longest simple path is NP-hard on cyclic graphs (and the naive DFS is
  // factorial on cliques); report the reachable-node bound there. On DAGs a
  // memoized longest-path DFS is exact and linear.
  if (!IsAcyclic()) return ReachableFrom(start).size();
  std::map<NodeId, size_t> memo;
  std::function<size_t(NodeId)> longest = [&](NodeId n) -> size_t {
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    size_t best = 0;
    for (NodeId next : Successors(n)) {
      best = std::max(best, 1 + longest(next));
    }
    memo[n] = best;
    return best;
  };
  return longest(start);
}

std::string DependencyGraph::ToString() const {
  std::string out;
  for (const Edge& e : edges_) {
    out += StrFormat("%u -> %u\n", e.first, e.second);
  }
  return out;
}

std::string PathToString(const std::vector<NodeId>& path,
                         const P2PSystem* system) {
  std::vector<std::string> names;
  for (NodeId n : path) {
    names.push_back(system != nullptr && n < system->node_count()
                        ? system->node(n).name
                        : std::to_string(n));
  }
  return JoinStrings(names, "");
}

bool RulesAreWeaklyAcyclic(const std::vector<CoordinationRule>& rules) {
  // Positions are (relation, column) pairs.
  using Position = std::pair<std::string, size_t>;
  std::set<Position> positions;
  // normal edges and special edges between positions.
  std::set<std::pair<Position, Position>> normal, special;

  for (const CoordinationRule& r : rules) {
    // Map body variable -> positions where it occurs.
    std::map<std::string, std::vector<Position>> body_positions;
    for (const CoordinationRule::BodyPart& p : r.body) {
      for (const rel::Atom& a : p.atoms) {
        for (size_t i = 0; i < a.terms.size(); ++i) {
          positions.insert({a.relation, i});
          if (a.terms[i].is_var()) {
            body_positions[a.terms[i].var].push_back({a.relation, i});
          }
        }
      }
    }
    std::vector<std::string> existentials = r.ExistentialVars();
    std::set<std::string> existential_set(existentials.begin(),
                                          existentials.end());
    for (const rel::Atom& a : r.head_atoms) {
      for (size_t i = 0; i < a.terms.size(); ++i) {
        positions.insert({a.relation, i});
        if (!a.terms[i].is_var()) continue;
        const std::string& v = a.terms[i].var;
        Position head_pos{a.relation, i};
        if (existential_set.count(v)) {
          // Special edge from every position of every frontier variable.
          for (const auto& [bv, bps] : body_positions) {
            bool frontier = false;
            for (const rel::Atom& ha : r.head_atoms) {
              for (const rel::Term& t : ha.terms) {
                if (t.is_var() && t.var == bv) frontier = true;
              }
            }
            if (!frontier) continue;
            for (const Position& bp : bps) special.insert({bp, head_pos});
          }
        } else {
          for (const Position& bp : body_positions[v]) {
            normal.insert({bp, head_pos});
          }
        }
      }
    }
  }

  // Weakly acyclic iff no cycle goes through a special edge: check, for each
  // special edge (u, v), whether u is reachable from v in the combined graph.
  std::map<Position, std::set<Position>> adj;
  for (const auto& [u, v] : normal) adj[u].insert(v);
  for (const auto& [u, v] : special) adj[u].insert(v);

  auto reachable = [&](const Position& from, const Position& target) {
    std::set<Position> visited{from};
    std::vector<Position> stack{from};
    while (!stack.empty()) {
      Position p = stack.back();
      stack.pop_back();
      if (p == target) return true;
      for (const Position& q : adj[p]) {
        if (visited.insert(q).second) stack.push_back(q);
      }
    }
    return false;
  };

  for (const auto& [u, v] : special) {
    if (reachable(v, u)) return false;
  }
  return true;
}

}  // namespace p2pdb::core
