// Centralized baseline: the "global algorithm" of [Calvanese et al., 2003],
// which assumes a central node holding every database and rule. Used (a) as
// the reference implementation for soundness/completeness tests of the
// distributed algorithm and (b) as a baseline in bench B1.
#ifndef P2PDB_CORE_GLOBAL_FIXPOINT_H_
#define P2PDB_CORE_GLOBAL_FIXPOINT_H_

#include <vector>

#include "src/core/system.h"
#include "src/relational/chase.h"

namespace p2pdb::core {

struct GlobalFixpointResult {
  /// Final instance of every node (index = node id).
  std::vector<rel::Database> node_dbs;
  /// Number of naive-evaluation passes until no rule fired.
  size_t iterations = 0;
  rel::ChaseStats chase;
};

/// Runs naive rule evaluation over the union of all local databases until
/// fix-point. Node signatures are disjoint, so the union database preserves
/// per-node relations exactly.
Result<GlobalFixpointResult> ComputeGlobalFixpoint(
    const P2PSystem& system, const rel::ChaseOptions& chase_options);

}  // namespace p2pdb::core

#endif  // P2PDB_CORE_GLOBAL_FIXPOINT_H_
