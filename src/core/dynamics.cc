#include "src/core/dynamics.h"

#include "src/core/dependency.h"
#include "src/core/global_fixpoint.h"
#include "src/relational/null_iso.h"

namespace p2pdb::core {

AtomicChange AtomicChange::Add(uint64_t at_micros, CoordinationRule rule) {
  AtomicChange c;
  c.kind = Kind::kAddLink;
  c.at_micros = at_micros;
  c.rule = std::move(rule);
  return c;
}

AtomicChange AtomicChange::Delete(uint64_t at_micros, NodeId head,
                                  std::string rule_id) {
  AtomicChange c;
  c.kind = Kind::kDeleteLink;
  c.at_micros = at_micros;
  c.head = head;
  c.rule_id = std::move(rule_id);
  return c;
}

ChurnEvent ChurnEvent::Crash(uint64_t at_micros, NodeId node) {
  ChurnEvent e;
  e.kind = Kind::kCrash;
  e.at_micros = at_micros;
  e.node = node;
  return e;
}

ChurnEvent ChurnEvent::Restart(uint64_t at_micros, NodeId node) {
  ChurnEvent e;
  e.kind = Kind::kRestart;
  e.at_micros = at_micros;
  e.node = node;
  return e;
}

Status ValidateChurnScript(const ChurnScript& script, size_t node_count) {
  uint64_t last_time = 0;
  std::set<NodeId> down;
  for (const ChurnEvent& e : script) {
    if (e.node >= node_count) {
      return Status::InvalidArgument("churn event for unknown node " +
                                     std::to_string(e.node));
    }
    if (e.at_micros < last_time) {
      return Status::InvalidArgument("churn script is not time-ordered");
    }
    last_time = e.at_micros;
    if (e.kind == ChurnEvent::Kind::kCrash) {
      if (!down.insert(e.node).second) {
        return Status::InvalidArgument("node " + std::to_string(e.node) +
                                       " crashed twice without a restart");
      }
    } else {
      if (down.erase(e.node) == 0) {
        return Status::InvalidArgument("node " + std::to_string(e.node) +
                                       " restarted without a crash");
      }
    }
  }
  return Status::OK();
}

Result<P2PSystem> ApplyChanges(const P2PSystem& initial,
                               const ChangeScript& changes, bool apply_adds,
                               bool apply_deletes) {
  P2PSystem out = initial;
  for (const AtomicChange& change : changes) {
    if (change.kind == AtomicChange::Kind::kAddLink) {
      if (apply_adds) {
        // Re-adding a rule whose deletion was skipped (envelope semantics
        // ignore deletes on the sound bound) is a no-op, not an error.
        Status st = out.AddRule(change.rule);
        if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
      }
    } else {
      if (apply_deletes) {
        // Deleting a rule that an earlier (ignored) add introduced is a no-op.
        (void)out.RemoveRule(change.rule_id);
      }
    }
  }
  return out;
}

Result<Envelope> ComputeEnvelope(const P2PSystem& initial,
                                 const ChangeScript& changes,
                                 const rel::ChaseOptions& chase) {
  Envelope envelope;
  // Sound bound: all addLinks before the run, no deleteLink at all.
  auto upper_system = ApplyChanges(initial, changes, /*apply_adds=*/true,
                                   /*apply_deletes=*/false);
  if (!upper_system.ok()) return upper_system.status();
  auto upper = ComputeGlobalFixpoint(*upper_system, chase);
  if (!upper.ok()) return upper.status();
  envelope.upper = std::move(upper->node_dbs);

  // Complete bound: all deleteLinks before the run, no addLink at all.
  auto lower_system = ApplyChanges(initial, changes, /*apply_adds=*/false,
                                   /*apply_deletes=*/true);
  if (!lower_system.ok()) return lower_system.status();
  auto lower = ComputeGlobalFixpoint(*lower_system, chase);
  if (!lower.ok()) return lower.status();
  envelope.lower = std::move(lower->node_dbs);
  return envelope;
}

bool WithinEnvelope(const std::vector<rel::Database>& final_dbs,
                    const Envelope& envelope) {
  if (final_dbs.size() != envelope.upper.size() ||
      final_dbs.size() != envelope.lower.size()) {
    return false;
  }
  for (size_t i = 0; i < final_dbs.size(); ++i) {
    if (!rel::DatabaseHomomorphicallyContained(envelope.lower[i],
                                               final_dbs[i])) {
      return false;
    }
    if (!rel::DatabaseHomomorphicallyContained(final_dbs[i],
                                               envelope.upper[i])) {
      return false;
    }
  }
  return true;
}

bool IsSeparatedUnderChange(const P2PSystem& initial,
                            const ChangeScript& changes,
                            const std::set<NodeId>& a,
                            const std::set<NodeId>& b) {
  for (size_t prefix = 0; prefix <= changes.size(); ++prefix) {
    ChangeScript head(changes.begin(), changes.begin() + prefix);
    auto system = ApplyChanges(initial, head, /*apply_adds=*/true,
                               /*apply_deletes=*/true);
    if (!system.ok()) return false;
    DependencyGraph graph = DependencyGraph::FromRules(system->rules());
    if (!graph.IsSeparated(a, b)) return false;
  }
  return true;
}

}  // namespace p2pdb::core
