// Peer: one node's live protocol state — the Database Manager of the paper's
// Figure 2 architecture, wired to a runtime (the JXTA layer substitute), a
// local database (LDB) and the coordination rules it is the head of.
#ifndef P2PDB_CORE_PEER_H_
#define P2PDB_CORE_PEER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/discovery.h"
#include "src/core/system.h"
#include "src/core/update.h"
#include "src/core/wire.h"
#include "src/net/runtime.h"
#include "src/obs/trace.h"
#include "src/relational/database.h"
#include "src/relational/mvcc.h"
#include "src/storage/storage.h"

namespace p2pdb::core {

class Peer : public net::PeerHandler {
 public:
  struct Config {
    UpdateOptions update;
    /// Attach current partial edge knowledge to duplicate discovery answers
    /// (the paper's eager gossip; costs bytes, changes nothing final).
    bool eager_discovery_answers = false;
    /// Register with the runtime at construction (the normal case). A
    /// restarting peer defers — on concurrent runtimes messages start
    /// arriving the moment the peer is registered, which must not overlap
    /// Recover() rebuilding the database — and calls Register() when ready.
    bool register_with_runtime = true;
    /// Share a caller-owned snapshot store instead of creating a private one.
    /// Session hands every peer a store that outlives the Peer object, so
    /// reader threads keep a stable target across crash/restart churn.
    std::shared_ptr<rel::SnapshotStore> snapshots;
    /// Skip the construction-time snapshot publish. A restarting peer is
    /// built with an EMPTY database and recovers afterwards; publishing that
    /// empty state into a shared store would briefly un-serve data readers
    /// already saw. Recover() publishes the recovered state instead.
    bool defer_snapshot_publish = false;
  };

  Peer(NodeId id, std::string name, rel::Database db, net::Runtime* runtime,
       Config config);
  Peer(NodeId id, std::string name, rel::Database db, net::Runtime* runtime)
      : Peer(id, std::move(name), std::move(db), runtime, Config{}) {}
  /// Unregisters from the runtime, so no dispatch can outlive the peer.
  ~Peer() override;

  /// Registers with the runtime (idempotent); only needed after deferred
  /// construction (see Config::register_with_runtime).
  void Register();

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  /// Registers a coordination rule this node is the head of ("initially each
  /// node knows all rules of which it is a target").
  Status AddInitialRule(const CoordinationRule& rule);

  /// Starts topology discovery with this node as origin (A1).
  void StartDiscovery();

  /// Starts a global update session from this node (the super-peer role).
  void StartUpdate(uint64_t session);

  /// Starts a query-dependent update pulling only the given local relations.
  void StartPartialUpdate(uint64_t session,
                          const std::set<std::string>& relations);

  /// Evaluates a local query against the node's current database. Runs on
  /// the live instance — only safe from the peer's own dispatch context (use
  /// Query() for cross-thread reads).
  Result<std::set<rel::Tuple>> LocalQuery(
      const rel::ConjunctiveQuery& query) const;

  // --- Query plane (lock-free MVCC read path; see src/core/query.h) ---

  /// Evaluates a conjunctive query against the latest published snapshot.
  /// Safe from any thread, concurrently with update propagation: readers
  /// see a prefix of committed delta batches, never a half-applied chase
  /// step, and take no lock (one atomic snapshot-pointer load).
  Result<std::set<rel::Tuple>> Query(const rel::ConjunctiveQuery& query) const;

  /// Point lookup against the latest published snapshot; same guarantees.
  Result<bool> QueryPoint(const std::string& relation,
                          const rel::Tuple& key) const;

  /// The latest published snapshot (for inspection / repeated reads at one
  /// consistent version).
  rel::SnapshotPtr snapshot() const { return snapshots_->Acquire(); }
  const std::shared_ptr<rel::SnapshotStore>& snapshot_store() const {
    return snapshots_;
  }

  /// Rebuilds and publishes a full snapshot of the live database. Called
  /// from the construction/recovery paths; also the hook for callers that
  /// mutate db() directly (tests, examples) and want readers to see it.
  void PublishFullSnapshot();

  // --- Durability (optional; peers without storage behave as before) ---

  /// Takes ownership of a storage backend and establishes its base state
  /// (checkpoints the current database iff the backend has none yet). From
  /// here on every delta the chase applies is logged through it.
  Status AttachStorage(std::unique_ptr<storage::Storage> storage);
  storage::Storage* storage() { return storage_.get(); }

  /// Called by the update engine after the chase inserts `delta`; logs it and
  /// lets the backend checkpoint. Errors are logged, not propagated — the
  /// protocol must keep running even if the disk misbehaves.
  void OnDeltaApplied(const storage::DeltaMap& delta);

  /// Called by the update engine after a dynamic rule change mutates this
  /// node's rule list; logs it so Recover() replays the change. Errors are
  /// logged, not propagated (same policy as OnDeltaApplied).
  void LogRuleChange(const wire::RuleChangeRecord& record);

  /// Rebuilds the database from storage (checkpoint + WAL replay), advances
  /// the null factory past every recovered null this node minted, replays
  /// logged rule changes on top of the current rule list, and compacts the
  /// recovered state into a fresh checkpoint. Must be called before any
  /// protocol activity on this peer — and, for rule replay to land on the
  /// right base, after the initial rules have been re-registered.
  Result<storage::RecoveryInfo> Recover();

  // net::PeerHandler: decode and dispatch.
  void OnMessage(const net::Message& msg) override;

  // --- Accessors ---
  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  rel::Database& db() { return db_; }
  const rel::Database& db() const { return db_; }
  rel::NullFactory& nulls() { return nulls_; }
  net::Runtime* runtime() { return runtime_; }
  const Config& config() const { return config_; }
  const std::vector<CoordinationRule>& rules() const { return rules_; }
  std::vector<CoordinationRule>* mutable_rules() { return &rules_; }

  DiscoveryEngine& discovery() { return *discovery_; }
  UpdateEngine& update() { return *update_; }
  const DiscoveryEngine& discovery() const { return *discovery_; }
  const UpdateEngine& update() const { return *update_; }

  // --- Topology knowledge (installed by the discovery closure wave) ---
  const std::set<wire::Edge>& known_edges() const { return known_edges_; }
  void AdoptTopology(const std::set<wire::Edge>& edges);
  /// Maximal dependency paths from this node per its current knowledge.
  std::vector<std::vector<NodeId>> MaximalPaths() const;
  /// This node's strongly connected component per its current knowledge.
  std::set<NodeId> OwnScc() const;

  /// Distinct dependency targets (body nodes) over current rules.
  std::set<NodeId> DependencyTargets() const;

  /// Serializes and sends one protocol message. While a trace span is open
  /// (a traced message is being handled), the outgoing message inherits its
  /// trace id and names the span as causal parent. `urgent` marks the message
  /// latency-critical: a coalescing transport flushes it immediately instead
  /// of holding it for the current dispatch's batch — used for control-plane
  /// traffic (token ring, reopen pokes) whose delay stretches the fixpoint.
  void Send(NodeId to, net::MessageType type, std::vector<uint8_t> payload,
            bool urgent = false);

  // --- Causal tracing (optional; see src/obs/trace.h) ---

  /// Attaches the collector spans are reported to; nullptr disables tracing.
  void SetTraceCollector(obs::TraceCollector* collector) {
    collector_ = collector;
  }
  obs::TraceCollector* trace_collector() const { return collector_; }

  /// Charges time to the open span's chase / WAL buckets. Called by the
  /// update engine and OnDeltaApplied; no-ops when no span is open. Safe as
  /// plain members: the runtime serializes all dispatch on one peer.
  void RecordChaseMicros(uint64_t micros) {
    if (span_open_) active_span_.chase_micros += micros;
  }
  void RecordWalMicros(uint64_t micros) {
    if (span_open_) active_span_.wal_micros += micros;
  }
  bool TraceSpanOpen() const { return span_open_; }

 private:
  /// Opens the span `msg` (or a root update, for the synthetic root message)
  /// is handled under; CloseTraceSpan() stamps the end time and records it.
  void OpenTraceSpan(const net::TraceContext& ctx, net::MessageType type,
                     uint64_t bytes, uint64_t queue_wait);
  void CloseTraceSpan();

  /// The former OnMessage body: decode and route to the engines.
  void DispatchMessage(const net::Message& msg);
  NodeId id_;
  std::string name_;
  rel::Database db_;
  rel::NullFactory nulls_;
  net::Runtime* runtime_;
  Config config_;
  std::vector<CoordinationRule> rules_;
  std::set<wire::Edge> known_edges_;
  std::shared_ptr<rel::SnapshotStore> snapshots_;
  std::unique_ptr<storage::Storage> storage_;
  std::unique_ptr<DiscoveryEngine> discovery_;
  std::unique_ptr<UpdateEngine> update_;

  obs::TraceCollector* collector_ = nullptr;
  obs::TraceSpan active_span_;
  bool span_open_ = false;
};

}  // namespace p2pdb::core

#endif  // P2PDB_CORE_PEER_H_
