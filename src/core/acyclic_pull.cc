#include "src/core/acyclic_pull.h"

#include <algorithm>

#include "src/core/dependency.h"
#include "src/core/wire.h"
#include "src/relational/eval.h"

namespace p2pdb::core {

namespace {
constexpr uint32_t kAcyclicChaseNode = 0xfffffffdu;
}  // namespace

Result<AcyclicPullResult> RunAcyclicPull(
    const P2PSystem& system, const rel::ChaseOptions& chase_options) {
  DependencyGraph graph = DependencyGraph::FromRules(system.rules());
  if (!graph.IsAcyclic()) {
    return Status::InvalidArgument(
        "acyclic pull requires an acyclic dependency graph");
  }

  AcyclicPullResult result;
  result.node_dbs.reserve(system.node_count());
  for (const NodeInfo& info : system.nodes()) {
    result.node_dbs.push_back(info.db);
  }
  rel::NullFactory nulls(kAcyclicChaseNode);

  // Topological order has every dependency edge (head -> body) pointing
  // forward, so processing in reverse order finalizes body nodes first.
  auto order = graph.TopologicalOrder();
  if (!order.ok()) return order.status();
  std::vector<NodeId> processing(*order);
  std::reverse(processing.begin(), processing.end());
  // Nodes absent from the graph (no rules touch them) need no processing.

  for (NodeId node : processing) {
    for (const CoordinationRule* rule : system.RulesWithHead(node)) {
      // Pull each part from its (already final) source: one request + one
      // answer per part; payload sizes measured with the real wire encoding.
      rel::Database scratch;
      rel::ConjunctiveQuery join;
      bool parts_ok = true;
      for (size_t p = 0; p < rule->body.size(); ++p) {
        const CoordinationRule::BodyPart& part = rule->body[p];
        rel::ConjunctiveQuery part_query = rule->PartQuery(p);
        auto answer =
            rel::EvaluateQuery(result.node_dbs[part.node], part_query);
        if (!answer.ok()) return answer.status();

        wire::QueryRequest req;
        req.rule_id = rule->id;
        req.part = static_cast<uint32_t>(p);
        req.query = part_query;
        wire::QueryAnswer ans;
        ans.rule_id = rule->id;
        ans.part = static_cast<uint32_t>(p);
        ans.tuples = *answer;
        result.messages += 2;
        result.bytes += req.Encode().size() + ans.Encode().size() + 26;

        std::vector<std::string> vars = rule->PartExportVars(p);
        std::string scratch_name = "$" + rule->id + ":" + std::to_string(p);
        if (!scratch.CreateRelation(rel::RelationSchema(scratch_name, vars))
                 .ok()) {
          parts_ok = false;
          break;
        }
        rel::Relation* scratch_rel = *scratch.GetMutable(scratch_name);
        for (const rel::Tuple& t : rule->domain_map.ApplyToSet(*answer)) {
          (void)scratch_rel->Insert(t);
        }
        rel::Atom atom;
        atom.relation = scratch_name;
        for (const std::string& v : vars) {
          atom.terms.push_back(rel::Term::Var(v));
        }
        join.atoms.push_back(std::move(atom));
      }
      if (!parts_ok) continue;
      join.builtins = rule->cross_builtins;
      auto bindings = rel::EvaluateBindings(scratch, join);
      if (!bindings.ok()) return bindings.status();
      rel::ChaseStats step;
      P2PDB_RETURN_IF_ERROR(
          rel::ApplyRuleHeadAll(&result.node_dbs[node], rule->head_atoms,
                                *bindings, &nulls, chase_options, &step));
    }
  }
  return result;
}

}  // namespace p2pdb::core
