// Dynamic network changes (Section 4): atomic addLink/deleteLink operations,
// change scripts, the sound/complete answer envelope of Definition 9, and the
// separation condition of Definition 10 / Theorem 3.
#ifndef P2PDB_CORE_DYNAMICS_H_
#define P2PDB_CORE_DYNAMICS_H_

#include <set>
#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/relational/chase.h"
#include "src/util/ids.h"

namespace p2pdb::core {

/// One atomic network change (Definition 8). `at_micros` is the time the head
/// node receives the notification.
struct AtomicChange {
  enum class Kind { kAddLink, kDeleteLink };
  Kind kind = Kind::kAddLink;
  uint64_t at_micros = 0;
  /// For kAddLink: the new coordination rule (head node receives addRule).
  CoordinationRule rule;
  /// For kDeleteLink: the rule id and its head node.
  std::string rule_id;
  NodeId head = kNoNode;

  static AtomicChange Add(uint64_t at_micros, CoordinationRule rule);
  static AtomicChange Delete(uint64_t at_micros, NodeId head,
                             std::string rule_id);
};

using ChangeScript = std::vector<AtomicChange>;

/// Peer churn, beyond Definition 8's link changes: a peer process crashes at
/// a simulated time (its in-memory state and in-flight messages are lost) and
/// may later restart, recovering its database from durable storage
/// (checkpoint + WAL replay) and rejoining via the discovery/session path.
struct ChurnEvent {
  enum class Kind { kCrash, kRestart };
  Kind kind = Kind::kCrash;
  uint64_t at_micros = 0;
  NodeId node = kNoNode;

  static ChurnEvent Crash(uint64_t at_micros, NodeId node);
  static ChurnEvent Restart(uint64_t at_micros, NodeId node);
};

using ChurnScript = std::vector<ChurnEvent>;

/// Sanity-checks a churn script: events in nondecreasing time order, every
/// restart preceded by a crash of the same node, no double crash/restart.
Status ValidateChurnScript(const ChurnScript& script, size_t node_count);

/// Definition 9 envelope:
///  * sound bound ("upper"): the fix-point with every addLink applied first
///    and no deleteLink executed — the final state must be contained in it;
///  * complete bound ("lower"): the fix-point with every deleteLink applied
///    first and no addLink executed — it must be contained in the final state.
struct Envelope {
  std::vector<rel::Database> upper;  // indexed by node id
  std::vector<rel::Database> lower;
};

Result<Envelope> ComputeEnvelope(const P2PSystem& initial,
                                 const ChangeScript& changes,
                                 const rel::ChaseOptions& chase);

/// Checks lower[i] ⊆ final[i] ⊆ upper[i] for every node (certain tuples are
/// compared exactly; tuples with labeled nulls homomorphically).
bool WithinEnvelope(const std::vector<rel::Database>& final_dbs,
                    const Envelope& envelope);

/// Definition 10.2: `a` is separated from `b` with respect to `changes` iff
/// in the dependency graph of every prefix of the change script (including
/// the empty prefix) no node of `b` is reachable from `a`.
bool IsSeparatedUnderChange(const P2PSystem& initial,
                            const ChangeScript& changes,
                            const std::set<NodeId>& a,
                            const std::set<NodeId>& b);

/// Applies a change script to a system model (ignoring times): adds rules for
/// kAddLink, removes them for kDeleteLink. Used to build envelope systems.
Result<P2PSystem> ApplyChanges(const P2PSystem& initial,
                               const ChangeScript& changes, bool apply_adds,
                               bool apply_deletes);

}  // namespace p2pdb::core

#endif  // P2PDB_CORE_DYNAMICS_H_
