#include "src/core/bootstrap.h"

#include <utility>

namespace p2pdb::core {

Result<std::unique_ptr<Peer>> PeerBootstrap::Build(net::Runtime* runtime,
                                                   Spec spec) {
  const bool wants_registration = spec.config.register_with_runtime;
  Peer::Config config = spec.config;
  if (spec.recover) {
    // Deferred registration: on concurrent runtimes (thread/TCP) messages
    // flow the instant a peer is registered, which must not overlap
    // Recover() rebuilding the database. Deferred publish: the peer is built
    // with an EMPTY database, and publishing that into a shared snapshot
    // store would briefly un-serve data readers already saw.
    config.register_with_runtime = false;
    config.defer_snapshot_publish = true;
  }
  auto peer = std::make_unique<Peer>(
      spec.id, std::move(spec.name),
      spec.recover ? rel::Database() : std::move(spec.db), runtime, config);
  if (spec.storage != nullptr) {
    P2PDB_RETURN_IF_ERROR(peer->AttachStorage(std::move(spec.storage)));
  }
  if (spec.rules != nullptr) {
    // Initial rules first: Recover() replays logged mid-session rule changes
    // (addLink/deleteLink) on top of them, so a rule deleted before the
    // crash stays deleted and one added mid-session reappears without
    // re-delivery. AlreadyExists is fine — re-bootstrap re-sends the table.
    for (const CoordinationRule& rule : *spec.rules) {
      if (rule.head_node != spec.id) continue;
      Status st = peer->AddInitialRule(rule);
      if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
    }
  }
  if (spec.recover) {
    auto info = peer->Recover();
    if (!info.ok()) return info.status();
  }
  peer->SetTraceCollector(spec.collector);
  if (spec.recover && wants_registration) {
    peer->Register();  // Open for business: recovered state is in place.
    // RegisterPeer cannot fail, but delivery can be impossible anyway (a
    // socket runtime that could not bind a listener): surface that here
    // instead of letting the restarted peer silently drop everything.
    P2PDB_RETURN_IF_ERROR(runtime->PeerReady(spec.id));
  }
  return peer;
}

}  // namespace p2pdb::core
