#include "src/core/control.h"

namespace p2pdb::core::wire {

namespace {

#define WIRE_TRY(lhs, expr)          \
  auto lhs##_res = (expr);           \
  if (!lhs##_res.ok()) return lhs##_res.status(); \
  auto lhs = std::move(*lhs##_res)

void EncodeSchema(const rel::RelationSchema& schema, Writer* w) {
  w->PutString(schema.name());
  w->PutVarint(schema.attributes().size());
  for (const std::string& attr : schema.attributes()) w->PutString(attr);
}

Result<rel::RelationSchema> DecodeSchema(Reader* r) {
  WIRE_TRY(name, r->GetString());
  WIRE_TRY(n, r->GetVarint());
  std::vector<std::string> attrs;
  for (uint64_t i = 0; i < n; ++i) {
    WIRE_TRY(attr, r->GetString());
    attrs.push_back(std::move(attr));
  }
  return rel::RelationSchema(std::move(name), std::move(attrs));
}

void EncodeEndpointEntry(const EndpointEntry& e, Writer* w) {
  w->PutU32(e.node);
  w->PutString(e.host);
  w->PutVarint(e.port);
}

Result<EndpointEntry> DecodeEndpointEntry(Reader* r) {
  EndpointEntry out;
  WIRE_TRY(node, r->GetU32());
  out.node = node;
  WIRE_TRY(host, r->GetString());
  out.host = std::move(host);
  WIRE_TRY(port, r->GetVarint());
  if (port > 65535) {
    return Status::ParseError("endpoint port out of range");
  }
  out.port = static_cast<uint16_t>(port);
  return out;
}

/// Shared by the epoch-only control payloads (start/refresh/poll/shutdown).
std::vector<uint8_t> EncodeEpochOnly(uint64_t epoch) {
  Writer w;
  w.PutVarint(epoch);
  return w.TakeBytes();
}

Result<uint64_t> DecodeEpochOnly(ByteView bytes) {
  Reader r(bytes);
  WIRE_TRY(epoch, r.GetVarint());
  return epoch;
}

}  // namespace

std::vector<uint8_t> SessionBootstrap::Encode() const {
  Writer w;
  w.PutVarint(epoch);
  w.PutU32(node);
  w.PutString(name);
  w.PutU32(super_peer);
  w.PutVarint(schema.size());
  for (const rel::RelationSchema& s : schema) EncodeSchema(s, &w);
  w.PutVarint(rules.size());
  for (const CoordinationRule& rule : rules) EncodeRule(rule, &w);
  w.PutVarint(endpoints.size());
  for (const EndpointEntry& e : endpoints) EncodeEndpointEntry(e, &w);
  return w.TakeBytes();
}

Result<SessionBootstrap> SessionBootstrap::Decode(ByteView bytes) {
  Reader r(bytes);
  SessionBootstrap out;
  WIRE_TRY(epoch, r.GetVarint());
  out.epoch = epoch;
  WIRE_TRY(node, r.GetU32());
  out.node = node;
  WIRE_TRY(name, r.GetString());
  out.name = std::move(name);
  WIRE_TRY(super_peer, r.GetU32());
  out.super_peer = super_peer;
  WIRE_TRY(ns, r.GetVarint());
  for (uint64_t i = 0; i < ns; ++i) {
    WIRE_TRY(s, DecodeSchema(&r));
    out.schema.push_back(std::move(s));
  }
  WIRE_TRY(nr, r.GetVarint());
  for (uint64_t i = 0; i < nr; ++i) {
    WIRE_TRY(rule, DecodeRule(&r));
    if (rule.head_node != out.node) {
      return Status::ParseError("bootstrap rule " + rule.id +
                                " is not headed at the bootstrapped node");
    }
    out.rules.push_back(std::move(rule));
  }
  WIRE_TRY(ne, r.GetVarint());
  for (uint64_t i = 0; i < ne; ++i) {
    WIRE_TRY(e, DecodeEndpointEntry(&r));
    out.endpoints.push_back(std::move(e));
  }
  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes after bootstrap payload");
  }
  return out;
}

std::vector<uint8_t> BootstrapAck::Encode() const {
  Writer w;
  w.PutVarint(epoch);
  w.PutU32(node);
  w.PutString(name);
  w.PutU8(accepted ? 1 : 0);
  w.PutString(error);
  return w.TakeBytes();
}

Result<BootstrapAck> BootstrapAck::Decode(ByteView bytes) {
  Reader r(bytes);
  BootstrapAck out;
  WIRE_TRY(epoch, r.GetVarint());
  out.epoch = epoch;
  WIRE_TRY(node, r.GetU32());
  out.node = node;
  WIRE_TRY(name, r.GetString());
  out.name = std::move(name);
  WIRE_TRY(accepted, r.GetU8());
  out.accepted = accepted != 0;
  WIRE_TRY(error, r.GetString());
  out.error = std::move(error);
  return out;
}

std::vector<uint8_t> ControlStartDiscovery::Encode() const {
  return EncodeEpochOnly(epoch);
}

Result<ControlStartDiscovery> ControlStartDiscovery::Decode(ByteView bytes) {
  WIRE_TRY(epoch, DecodeEpochOnly(bytes));
  return ControlStartDiscovery{epoch};
}

std::vector<uint8_t> ControlStartUpdate::Encode() const {
  Writer w;
  w.PutVarint(epoch);
  w.PutVarint(session);
  return w.TakeBytes();
}

Result<ControlStartUpdate> ControlStartUpdate::Decode(ByteView bytes) {
  Reader r(bytes);
  ControlStartUpdate out;
  WIRE_TRY(epoch, r.GetVarint());
  out.epoch = epoch;
  WIRE_TRY(session, r.GetVarint());
  out.session = session;
  return out;
}

std::vector<uint8_t> ControlRefreshScc::Encode() const {
  return EncodeEpochOnly(epoch);
}

Result<ControlRefreshScc> ControlRefreshScc::Decode(ByteView bytes) {
  WIRE_TRY(epoch, DecodeEpochOnly(bytes));
  return ControlRefreshScc{epoch};
}

std::vector<uint8_t> StatusRequest::Encode() const {
  return EncodeEpochOnly(epoch);
}

Result<StatusRequest> StatusRequest::Decode(ByteView bytes) {
  WIRE_TRY(epoch, DecodeEpochOnly(bytes));
  return StatusRequest{epoch};
}

bool StatusReport::operator==(const StatusReport& other) const {
  return epoch == other.epoch && node == other.node && name == other.name &&
         state_discovery == other.state_discovery &&
         state_update == other.state_update && tuples == other.tuples &&
         tuples_inserted == other.tuples_inserted &&
         joins_evaluated == other.joins_evaluated &&
         answers_sent == other.answers_sent &&
         token_passes == other.token_passes && reopens == other.reopens;
}

std::vector<uint8_t> StatusReport::Encode() const {
  Writer w;
  w.PutVarint(epoch);
  w.PutU32(node);
  w.PutString(name);
  w.PutU8(state_discovery);
  w.PutU8(state_update);
  w.PutVarint(tuples);
  w.PutVarint(tuples_inserted);
  w.PutVarint(joins_evaluated);
  w.PutVarint(answers_sent);
  w.PutVarint(token_passes);
  w.PutVarint(reopens);
  return w.TakeBytes();
}

Result<StatusReport> StatusReport::Decode(ByteView bytes) {
  Reader r(bytes);
  StatusReport out;
  WIRE_TRY(epoch, r.GetVarint());
  out.epoch = epoch;
  WIRE_TRY(node, r.GetU32());
  out.node = node;
  WIRE_TRY(name, r.GetString());
  out.name = std::move(name);
  WIRE_TRY(state_d, r.GetU8());
  out.state_discovery = state_d;
  WIRE_TRY(state_u, r.GetU8());
  out.state_update = state_u;
  WIRE_TRY(tuples, r.GetVarint());
  out.tuples = tuples;
  WIRE_TRY(inserted, r.GetVarint());
  out.tuples_inserted = inserted;
  WIRE_TRY(joins, r.GetVarint());
  out.joins_evaluated = joins;
  WIRE_TRY(answers, r.GetVarint());
  out.answers_sent = answers;
  WIRE_TRY(passes, r.GetVarint());
  out.token_passes = passes;
  WIRE_TRY(reopens, r.GetVarint());
  out.reopens = reopens;
  return out;
}

std::vector<uint8_t> DumpRequest::Encode() const {
  return EncodeEpochOnly(epoch);
}

Result<DumpRequest> DumpRequest::Decode(ByteView bytes) {
  WIRE_TRY(epoch, DecodeEpochOnly(bytes));
  return DumpRequest{epoch};
}

std::vector<uint8_t> DumpReply::Encode() const {
  Writer w;
  w.PutVarint(epoch);
  w.PutU32(node);
  w.PutVarint(database.size());
  w.PutRaw(database.data(), database.size());
  return w.TakeBytes();
}

Result<DumpReply> DumpReply::Decode(ByteView bytes) {
  Reader r(bytes);
  DumpReply out;
  WIRE_TRY(epoch, r.GetVarint());
  out.epoch = epoch;
  WIRE_TRY(node, r.GetU32());
  out.node = node;
  WIRE_TRY(size, r.GetVarint());
  WIRE_TRY(data, r.GetRaw(size));
  out.database.assign(data, data + size);
  return out;
}

std::vector<uint8_t> ControlShutdown::Encode() const {
  return EncodeEpochOnly(epoch);
}

Result<ControlShutdown> ControlShutdown::Decode(ByteView bytes) {
  WIRE_TRY(epoch, DecodeEpochOnly(bytes));
  return ControlShutdown{epoch};
}

}  // namespace p2pdb::core::wire
