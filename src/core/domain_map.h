// Domain relations — the paper's declared future work ("Other approaches
// consider domain relations to map objects between different nodes [Serafini
// et al., 2003], and we plan to consider such extensions in future work").
//
// A DomainMap translates constants when data crosses a coordination rule:
// instead of assuming equal constants denote equal objects (the URI
// assumption of Section 2), a rule can carry an explicit value mapping that
// is applied to every body answer before the head join. Unmapped values pass
// through unchanged; labeled nulls are never remapped.
#ifndef P2PDB_CORE_DOMAIN_MAP_H_
#define P2PDB_CORE_DOMAIN_MAP_H_

#include <map>
#include <set>
#include <string>

#include "src/relational/tuple.h"
#include "src/util/serde.h"
#include "src/util/status.h"

namespace p2pdb::core {

/// A partial function over constants, applied tuple-wise to rule answers.
class DomainMap {
 public:
  /// Registers source -> target; replaces an existing entry for `source`.
  void Add(rel::Value source, rel::Value target);

  bool empty() const { return mapping_.empty(); }
  size_t size() const { return mapping_.size(); }

  /// Maps a single value (identity for unmapped values and labeled nulls).
  rel::Value Apply(const rel::Value& v) const;

  /// Maps every component of a tuple.
  rel::Tuple ApplyToTuple(const rel::Tuple& t) const;

  /// Maps every tuple of a set (the set may shrink if images collide).
  std::set<rel::Tuple> ApplyToSet(const std::set<rel::Tuple>& tuples) const;

  /// Composes: (other ∘ this)(v) = other.Apply(this->Apply(v)).
  DomainMap ComposeWith(const DomainMap& other) const;

  void Encode(Writer* w) const;
  static Result<DomainMap> Decode(Reader* r);

  std::string ToString() const;

  bool operator==(const DomainMap& other) const {
    return mapping_ == other.mapping_;
  }

 private:
  std::map<rel::Value, rel::Value> mapping_;
};

}  // namespace p2pdb::core

#endif  // P2PDB_CORE_DOMAIN_MAP_H_
