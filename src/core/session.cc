#include "src/core/session.h"

#include "src/core/dependency.h"
#include "src/util/string_util.h"

namespace p2pdb::core {

Session::Session(const P2PSystem& system, net::Runtime* runtime,
                 Options options)
    : runtime_(runtime), network_(runtime), options_(options) {
  peers_.reserve(system.node_count());
  for (const NodeInfo& info : system.nodes()) {
    peers_.push_back(std::make_unique<Peer>(info.id, info.name, info.db,
                                            runtime_, options_.peer));
  }
  for (const CoordinationRule& rule : system.rules()) {
    // "Initially each node knows all rules of which it is a target."
    (void)peers_[rule.head_node]->AddInitialRule(rule);
    for (const CoordinationRule::BodyPart& p : rule.body) {
      network_.AddRuleLink(rule.head_node, p.node);
    }
  }
}

Status Session::RunDiscovery() {
  if (options_.discovery == Options::DiscoveryMode::kSuperPeer) {
    peers_[options_.super_peer]->StartDiscovery();
  } else {
    for (auto& peer : peers_) peer->StartDiscovery();
  }
  return runtime_->Run();
}

Status Session::RunUpdate() {
  return RunUpdateFrom({options_.super_peer});
}

Status Session::RunUpdateFrom(const std::vector<NodeId>& initiators) {
  uint64_t session = next_session_++;
  for (NodeId n : initiators) peers_[n]->StartUpdate(session);
  return runtime_->Run();
}

Status Session::RunPartialUpdate(NodeId at,
                                 const std::set<std::string>& relations) {
  uint64_t session = next_session_++;
  peers_[at]->StartPartialUpdate(session, relations);
  return runtime_->Run();
}

void Session::ScheduleChange(const AtomicChange& change) {
  net::Message msg;
  if (change.kind == AtomicChange::Kind::kAddLink) {
    wire::AddRuleChange payload{change.rule};
    msg.type = net::MessageType::kAddRule;
    msg.from = change.rule.head_node;
    msg.to = change.rule.head_node;
    msg.payload = payload.Encode();
    for (const CoordinationRule::BodyPart& p : change.rule.body) {
      network_.AddRuleLink(change.rule.head_node, p.node);
    }
  } else {
    wire::DeleteRuleChange payload{change.rule_id};
    msg.type = net::MessageType::kDeleteRule;
    msg.from = change.head;
    msg.to = change.head;
    msg.payload = payload.Encode();
  }
  runtime_->ScheduleSend(change.at_micros, std::move(msg));
}

Status Session::Rediscover() {
  for (auto& peer : peers_) peer->StartDiscovery();
  P2PDB_RETURN_IF_ERROR(runtime_->Run());
  for (auto& peer : peers_) peer->update().RefreshScc();
  return runtime_->Run();
}

std::set<NodeId> Session::Participants() const {
  std::set<wire::Edge> edges;
  for (const auto& peer : peers_) {
    for (const CoordinationRule& r : peer->rules()) {
      for (const CoordinationRule::BodyPart& p : r.body) {
        edges.insert({r.head_node, p.node});
      }
    }
  }
  DependencyGraph graph(edges);
  std::set<NodeId> out = graph.ReachableFrom(options_.super_peer);
  out.insert(options_.super_peer);
  return out;
}

bool Session::AllClosed(std::set<NodeId>* open_nodes) const {
  bool all = true;
  for (NodeId n : Participants()) {
    if (peers_[n]->update().state() != UpdateEngine::State::kClosed) {
      all = false;
      if (open_nodes != nullptr) open_nodes->insert(n);
    }
  }
  return all;
}

std::vector<rel::Database> Session::SnapshotDatabases() const {
  std::vector<rel::Database> out;
  out.reserve(peers_.size());
  for (const auto& peer : peers_) out.push_back(peer->db());
  return out;
}

std::string Session::CollectStatistics() const {
  std::string out = StrFormat(
      "%-6s %-8s %-8s %10s %8s %8s %8s %8s\n", "node", "state_d", "state_u",
      "tuples", "inserted", "joins", "answers", "reopens");
  for (const auto& peer : peers_) {
    const UpdateEngine::Stats& stats = peer->update().stats();
    const char* state_d =
        peer->discovery().state() == DiscoveryEngine::State::kClosed
            ? "closed"
            : (peer->discovery().state() == DiscoveryEngine::State::kDiscovery
                   ? "disc"
                   : "undef");
    const char* state_u =
        peer->update().state() == UpdateEngine::State::kClosed
            ? "closed"
            : (peer->update().state() == UpdateEngine::State::kOpen ? "open"
                                                                    : "idle");
    out += StrFormat(
        "%-6s %-8s %-8s %10zu %8llu %8llu %8llu %8llu\n", peer->name().c_str(),
        state_d, state_u, peer->db().TotalTuples(),
        static_cast<unsigned long long>(stats.tuples_inserted),
        static_cast<unsigned long long>(stats.joins_evaluated),
        static_cast<unsigned long long>(stats.answers_sent),
        static_cast<unsigned long long>(stats.reopens));
  }
  out += "network: " + runtime_->stats().Report();
  return out;
}

}  // namespace p2pdb::core
