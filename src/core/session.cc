#include "src/core/session.h"

#include "src/core/bootstrap.h"
#include "src/core/dependency.h"
#include "src/core/query.h"
#include "src/obs/metrics.h"
#include "src/util/string_util.h"

namespace p2pdb::core {

Session::Session(const P2PSystem& system, net::Runtime* runtime,
                 Options options)
    : runtime_(runtime), network_(runtime), options_(std::move(options)) {
  peers_.reserve(system.node_count());
  stores_.reserve(system.node_count());
  initial_rules_ = system.rules();
  for (const NodeInfo& info : system.nodes()) {
    stores_.push_back(std::make_shared<rel::SnapshotStore>());
    PeerBootstrap::Spec spec;
    spec.id = info.id;
    spec.name = info.name;
    spec.db = info.db;
    // "Initially each node knows all rules of which it is a target":
    // Build installs the rules headed at this node.
    spec.rules = &initial_rules_;
    spec.config = options_.peer;
    spec.config.snapshots = stores_.back();
    auto built = PeerBootstrap::Build(runtime_, std::move(spec));
    // Fresh construction without storage cannot fail (rules are filtered to
    // this head, duplicates tolerated); a null entry here would mean a bug
    // in PeerBootstrap, and IsAlive() reports it as a crashed node.
    peers_.push_back(built.ok() ? std::move(*built) : nullptr);
    names_.push_back(info.name);
  }
  for (const CoordinationRule& rule : initial_rules_) {
    for (const CoordinationRule::BodyPart& p : rule.body) {
      network_.AddRuleLink(rule.head_node, p.node);
    }
  }
}

Status Session::RunDiscovery() {
  // Earlier peers' discovery waves reach later peers while this loop is
  // still running, so every control-plane Start goes through the runtime's
  // per-peer exclusion instead of racing the handler upcalls.
  if (options_.discovery == Options::DiscoveryMode::kSuperPeer) {
    runtime_->RunExclusive(options_.super_peer, [&] {
      peers_[options_.super_peer]->StartDiscovery();
    });
  } else {
    for (auto& peer : peers_) {
      if (peer != nullptr) {
        runtime_->RunExclusive(peer->id(), [&] { peer->StartDiscovery(); });
      }
    }
  }
  return runtime_->Run();
}

Status Session::RunUpdate() {
  return RunUpdateFrom({options_.super_peer});
}

Status Session::RunUpdateFrom(const std::vector<NodeId>& initiators) {
  uint64_t session = next_session_++;
  for (NodeId n : initiators) {
    if (!IsAlive(n)) {
      return Status::InvalidArgument("update initiator " + std::to_string(n) +
                                     " is not alive");
    }
    runtime_->RunExclusive(n, [&] { peers_[n]->StartUpdate(session); });
  }
  return runtime_->Run();
}

Status Session::RunPartialUpdate(NodeId at,
                                 const std::set<std::string>& relations) {
  uint64_t session = next_session_++;
  runtime_->RunExclusive(
      at, [&] { peers_[at]->StartPartialUpdate(session, relations); });
  return runtime_->Run();
}

Result<std::set<rel::Tuple>> Session::Query(
    NodeId at, const rel::ConjunctiveQuery& query) const {
  if (at >= stores_.size()) {
    return Status::InvalidArgument("unknown node " + std::to_string(at));
  }
  return SnapshotQuery(*stores_[at], query);
}

Result<bool> Session::QueryPoint(NodeId at, const std::string& relation,
                                 const rel::Tuple& key) const {
  if (at >= stores_.size()) {
    return Status::InvalidArgument("unknown node " + std::to_string(at));
  }
  return SnapshotQueryPoint(*stores_[at], relation, key);
}

Result<rel::SnapshotPtr> Session::PeerSnapshot(NodeId at) const {
  if (at >= stores_.size()) {
    return Status::InvalidArgument("unknown node " + std::to_string(at));
  }
  return stores_[at]->Acquire();
}

void Session::EnableTracing(obs::TraceCollector* collector,
                            uint32_t sample_every_n) {
  collector_ = collector;
  if (collector != nullptr) collector->set_sample_every(sample_every_n);
  // Queue-wait measurement costs a clock read per queued message; only worth
  // paying while someone is collecting.
  obs::SetDetailedTiming(collector != nullptr);
  for (auto& peer : peers_) {
    if (peer != nullptr) {
      runtime_->RunExclusive(peer->id(),
                             [&] { peer->SetTraceCollector(collector); });
    }
  }
}

void Session::ScheduleChange(const AtomicChange& change) {
  net::Message msg;
  if (change.kind == AtomicChange::Kind::kAddLink) {
    wire::AddRuleChange payload{change.rule};
    msg.type = net::MessageType::kAddRule;
    msg.from = change.rule.head_node;
    msg.to = change.rule.head_node;
    msg.payload = payload.Encode();
    for (const CoordinationRule::BodyPart& p : change.rule.body) {
      network_.AddRuleLink(change.rule.head_node, p.node);
    }
  } else {
    wire::DeleteRuleChange payload{change.rule_id};
    msg.type = net::MessageType::kDeleteRule;
    msg.from = change.head;
    msg.to = change.head;
    msg.payload = payload.Encode();
  }
  runtime_->ScheduleSend(change.at_micros, std::move(msg));
}

Status Session::Rediscover() {
  for (auto& peer : peers_) {
    if (peer != nullptr) {
      runtime_->RunExclusive(peer->id(), [&] { peer->StartDiscovery(); });
    }
  }
  P2PDB_RETURN_IF_ERROR(runtime_->Run());
  for (auto& peer : peers_) {
    if (peer != nullptr) {
      runtime_->RunExclusive(peer->id(), [&] { peer->update().RefreshScc(); });
    }
  }
  return runtime_->Run();
}

Status Session::AttachStorage(NodeId id) {
  if (!IsAlive(id)) {
    return Status::InvalidArgument("node " + std::to_string(id) +
                                   " is not alive");
  }
  if (!options_.storage) {
    return Status::InvalidArgument("session has no storage provider");
  }
  return peers_[id]->AttachStorage(options_.storage(id));
}

Status Session::CrashPeer(NodeId id) {
  if (!IsAlive(id)) {
    return Status::InvalidArgument("node " + std::to_string(id) +
                                   " is not alive");
  }
  // Unregister first so nothing is delivered to a dying handler, then drop
  // the peer: its volatile state (database, subscriptions, engines) is gone;
  // only what its storage backend wrote to disk survives.
  runtime_->UnregisterPeer(id);
  peers_[id].reset();
  return Status::OK();
}

Status Session::RestartPeer(NodeId id) {
  if (id >= peers_.size()) {
    return Status::InvalidArgument("unknown node " + std::to_string(id));
  }
  if (peers_[id] != nullptr) {
    return Status::InvalidArgument("node " + std::to_string(id) +
                                   " is still alive");
  }
  if (!options_.storage) {
    return Status::InvalidArgument("session has no storage provider");
  }
  // The full restart choreography (deferred registration, rejoining the
  // node's long-lived snapshot store without publishing the empty
  // construction-time database, storage before rules before Recover) lives
  // in PeerBootstrap — the same path p2pdb_peerd takes when a re-exec'd
  // process reopens its data directory.
  PeerBootstrap::Spec spec;
  spec.id = id;
  spec.name = names_[id];
  spec.rules = &initial_rules_;
  spec.config = options_.peer;
  spec.config.snapshots = stores_[id];
  spec.storage = options_.storage(id);
  spec.recover = true;
  spec.collector = collector_;  // Tracing survives the restart.
  auto built = PeerBootstrap::Build(runtime_, std::move(spec));
  if (!built.ok()) return built.status();
  peers_[id] = std::move(*built);
  return Status::OK();
}

Status Session::RunUpdateWithChurn(const ChurnScript& churn) {
  P2PDB_RETURN_IF_ERROR(ValidateChurnScript(churn, peers_.size()));
  // Durability must be in place before the crash: attach storage to every
  // peer the script will kill (base checkpoint now, WAL from here on).
  for (const ChurnEvent& e : churn) {
    if (e.kind != ChurnEvent::Kind::kCrash) continue;
    if (!IsAlive(e.node)) continue;
    if (peers_[e.node]->storage() != nullptr) continue;
    P2PDB_RETURN_IF_ERROR(AttachStorage(e.node));
  }

  if (!IsAlive(options_.super_peer)) {
    return Status::InvalidArgument("super peer " +
                                   std::to_string(options_.super_peer) +
                                   " is not alive");
  }
  uint64_t session = next_session_++;
  runtime_->RunExclusive(options_.super_peer, [&] {
    peers_[options_.super_peer]->StartUpdate(session);
  });
  bool restarted = false;
  for (const ChurnEvent& e : churn) {
    P2PDB_RETURN_IF_ERROR(runtime_->RunUntil(e.at_micros));
    if (e.kind == ChurnEvent::Kind::kCrash) {
      P2PDB_RETURN_IF_ERROR(CrashPeer(e.node));
    } else {
      P2PDB_RETURN_IF_ERROR(RestartPeer(e.node));
      restarted = true;
    }
  }
  P2PDB_RETURN_IF_ERROR(runtime_->Run());
  if (restarted) {
    // Rejoin: recovered peers re-learn the topology, then a fresh session
    // re-subscribes everything and drives the network back to the global
    // fix-point (set-union answers make the re-run idempotent).
    P2PDB_RETURN_IF_ERROR(Rediscover());
    P2PDB_RETURN_IF_ERROR(RunUpdate());
  }
  return Status::OK();
}

std::set<NodeId> Session::Participants() const {
  std::set<wire::Edge> edges;
  for (const auto& peer : peers_) {
    if (peer == nullptr) continue;  // Crashed peers contribute no edges.
    for (const CoordinationRule& r : peer->rules()) {
      for (const CoordinationRule::BodyPart& p : r.body) {
        edges.insert({r.head_node, p.node});
      }
    }
  }
  DependencyGraph graph(edges);
  std::set<NodeId> out = graph.ReachableFrom(options_.super_peer);
  out.insert(options_.super_peer);
  return out;
}

bool Session::AllClosed(std::set<NodeId>* open_nodes) const {
  bool all = true;
  for (NodeId n : Participants()) {
    if (peers_[n] == nullptr ||
        peers_[n]->update().state() != UpdateEngine::State::kClosed) {
      all = false;
      if (open_nodes != nullptr) open_nodes->insert(n);
    }
  }
  return all;
}

std::vector<rel::Database> Session::SnapshotDatabases() const {
  std::vector<rel::Database> out;
  out.reserve(peers_.size());
  for (const auto& peer : peers_) {
    // A crashed peer snapshots as an empty database.
    out.push_back(peer != nullptr ? peer->db() : rel::Database());
  }
  return out;
}

std::string Session::CollectStatistics() const {
  std::string out = StrFormat(
      "%-6s %-8s %-8s %10s %8s %8s %8s %8s\n", "node", "state_d", "state_u",
      "tuples", "inserted", "joins", "answers", "reopens");
  for (const auto& peer : peers_) {
    if (peer == nullptr) continue;
    const UpdateEngine::Stats& stats = peer->update().stats();
    const char* state_d =
        peer->discovery().state() == DiscoveryEngine::State::kClosed
            ? "closed"
            : (peer->discovery().state() == DiscoveryEngine::State::kDiscovery
                   ? "disc"
                   : "undef");
    const char* state_u =
        peer->update().state() == UpdateEngine::State::kClosed
            ? "closed"
            : (peer->update().state() == UpdateEngine::State::kOpen ? "open"
                                                                    : "idle");
    out += StrFormat(
        "%-6s %-8s %-8s %10zu %8llu %8llu %8llu %8llu\n", peer->name().c_str(),
        state_d, state_u, peer->db().TotalTuples(),
        static_cast<unsigned long long>(stats.tuples_inserted),
        static_cast<unsigned long long>(stats.joins_evaluated),
        static_cast<unsigned long long>(stats.answers_sent),
        static_cast<unsigned long long>(stats.reopens));
  }
  out += "network: " + runtime_->stats().Report();
  return out;
}

}  // namespace p2pdb::core
