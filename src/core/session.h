// Session: drives a fleet of peers over a runtime — builds Peer objects from a
// P2PSystem, runs the discovery phase, the global update, query-dependent
// updates, and injects dynamic changes (the super-peer role of Section 5,
// including its rule-broadcast and statistics duties).
#ifndef P2PDB_CORE_SESSION_H_
#define P2PDB_CORE_SESSION_H_

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/dynamics.h"
#include "src/core/peer.h"
#include "src/core/system.h"
#include "src/net/network.h"
#include "src/net/runtime.h"
#include "src/storage/storage.h"

namespace p2pdb::core {

class Session {
 public:
  /// Creates a storage backend for a node: called when churn attaches
  /// durability before a crash, and again when the node restarts (like a
  /// fresh process reopening its data directory).
  using StorageProvider =
      std::function<std::unique_ptr<storage::Storage>(NodeId)>;

  struct Options {
    Peer::Config peer;
    NodeId super_peer = 0;
    /// kAll runs one discovery instance per node (every node certainly learns
    /// its own paths); kSuperPeer runs only the super-peer's instance, which
    /// covers exactly the nodes that will participate in its update.
    enum class DiscoveryMode { kAll, kSuperPeer } discovery = DiscoveryMode::kAll;
    /// The session's one durability source. AttachStorage, RestartPeer and
    /// RunUpdateWithChurn all draw backends from here, so a node's crash and
    /// its restart necessarily reopen the same storage — callers can no
    /// longer hand a restart a backend unrelated to the one that crashed.
    /// Unset means the session is purely volatile.
    StorageProvider storage;
  };

  /// Builds one peer per system node and registers the coordination rules at
  /// their head nodes. The system's databases are copied into the peers.
  Session(const P2PSystem& system, net::Runtime* runtime, Options options);
  Session(const P2PSystem& system, net::Runtime* runtime)
      : Session(system, runtime, Options{}) {}

  /// Phase 1: topology discovery, run to quiescence.
  Status RunDiscovery();

  /// Phase 2: global update from the super-peer, run to quiescence.
  /// Each call uses a fresh session id.
  Status RunUpdate();

  /// Like RunUpdate but starts the same session from several initiators at
  /// once (disconnected sub-networks each need a local initiator).
  Status RunUpdateFrom(const std::vector<NodeId>& initiators);

  /// Query-dependent update: pull only `relations` toward node `at`, then run
  /// to quiescence (termination by network quiescence, per Section 3's
  /// query-dependent mode).
  Status RunPartialUpdate(NodeId at, const std::set<std::string>& relations);

  // --- Query plane (lock-free MVCC read path) ---
  //
  // Safe to call from any thread at any time — including while an update
  // propagates and while churn crashes/restarts peers. Reads go through
  // per-node SnapshotStores owned by the session (created at construction,
  // never destroyed, shared with each Peer incarnation), so they never
  // touch the peers_ vector and never take a lock or RunExclusive: snapshot
  // acquisition is a single atomic snapshot-pointer load. A crashed node keeps
  // serving its last committed snapshot until its restart publishes the
  // recovered state.

  /// Evaluates a conjunctive query at node `at`'s latest snapshot.
  Result<std::set<rel::Tuple>> Query(NodeId at,
                                     const rel::ConjunctiveQuery& query) const;

  /// Point lookup at node `at`'s latest snapshot (false = absent).
  Result<bool> QueryPoint(NodeId at, const std::string& relation,
                          const rel::Tuple& key) const;

  /// Node `at`'s latest snapshot, for repeated reads at one version.
  Result<rel::SnapshotPtr> PeerSnapshot(NodeId at) const;

  /// Turns on causal tracing: every live peer (and every later restart)
  /// reports propagation spans to `collector`, with 1-in-`sample_every_n`
  /// root updates traced. Also enables the per-message detailed-timing gate
  /// (mailbox queue waits). nullptr turns tracing back off.
  void EnableTracing(obs::TraceCollector* collector,
                     uint32_t sample_every_n = 1);

  /// Schedules a dynamic change to be delivered at the given simulated time
  /// (the head node receives the addRule/deleteRule notification).
  void ScheduleChange(const AtomicChange& change);

  /// Re-runs discovery so every peer refreshes its topology knowledge and SCC
  /// membership after dynamic changes (needed when changes affect cycles).
  Status Rediscover();

  // --- Peer churn (crash / durable restart) ---
  //
  // All durability flows through Options::storage: AttachStorage and
  // RestartPeer ask the provider for node `id`'s backend, so the restart
  // reuses exactly the storage the crash left behind.

  /// Attaches node `id`'s storage backend to its live peer (checkpoints the
  /// current database as the base state; every applied delta is logged from
  /// here on). Requires Options::storage.
  Status AttachStorage(NodeId id);

  /// Simulates a process crash: destroys the peer object and unregisters it
  /// from the runtime, so in-flight messages to it are dropped. Its durable
  /// storage (if any) survives on disk.
  Status CrashPeer(NodeId id);

  /// Restarts a crashed peer: rebuilds it from Options::storage's backend
  /// for `id` via Peer::Recover() (checkpoint + WAL replay), re-registers
  /// the initial coordination rules headed at it, and re-registers it with
  /// the runtime. The caller then rejoins it via the normal
  /// discovery/session path.
  Status RestartPeer(NodeId id);

  /// True when the peer object exists (has not crashed).
  bool IsAlive(NodeId id) const {
    return id < peers_.size() && peers_[id] != nullptr;
  }

  /// Runs one update session from the super-peer while executing `churn` at
  /// its times — simulated micros on SimRuntime (deterministic), elapsed
  /// wall-clock micros on the thread/TCP runtimes (best effort, via their
  /// sleeping RunUntil): crashing peers get storage attached up front,
  /// crashes and restarts fire mid-propagation, and after the script drains
  /// every restarted peer rejoins through rediscovery plus a fresh update
  /// session, re-converging the whole network (the protocol is monotone, so
  /// the second session is idempotent on already-complete peers).
  /// Requires Options::storage when the script crashes anyone.
  Status RunUpdateWithChurn(const ChurnScript& churn);

  // --- Inspection ---
  Peer& peer(NodeId id) { return *peers_[id]; }  // Precondition: IsAlive(id).
  const Peer& peer(NodeId id) const { return *peers_[id]; }
  size_t peer_count() const { return peers_.size(); }

  /// Nodes participating in the super-peer's update: the super-peer plus all
  /// nodes reachable from it over dependency edges.
  std::set<NodeId> Participants() const;

  /// True when every participant's update state is closed; nodes still open
  /// are reported in `open_nodes` when provided.
  bool AllClosed(std::set<NodeId>* open_nodes = nullptr) const;

  /// Deep copies every peer's current database (index = node id).
  std::vector<rel::Database> SnapshotDatabases() const;

  /// The super-peer's statistics collection (Section 5): per-peer update
  /// counters plus network totals, as a printable table.
  std::string CollectStatistics() const;

  net::Runtime* runtime() { return runtime_; }
  net::Network& network() { return network_; }
  uint64_t last_session_id() const { return next_session_ - 1; }

 private:
  net::Runtime* runtime_;
  net::Network network_;
  Options options_;
  std::vector<std::unique_ptr<Peer>> peers_;  // null entry = crashed peer
  /// One snapshot store per node, fixed at construction and shared with
  /// every Peer incarnation of that node (see Peer::Config::snapshots).
  /// Reader threads hold shared_ptrs into this vector's elements, so the
  /// vector is never resized and the stores are never destroyed mid-session.
  std::vector<std::shared_ptr<rel::SnapshotStore>> stores_;
  /// Retained for restarts: node names and the system's initial rules (a
  /// restarted head re-learns "all rules of which it is a target"; rule
  /// changes applied after session start are replayed from the peer's WAL by
  /// Peer::Recover, so the change driver need not re-deliver them).
  std::vector<std::string> names_;
  std::vector<CoordinationRule> initial_rules_;
  uint64_t next_session_ = 1;
  obs::TraceCollector* collector_ = nullptr;  // Re-attached on RestartPeer.
};

}  // namespace p2pdb::core

#endif  // P2PDB_CORE_SESSION_H_
