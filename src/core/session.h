// Session: drives a fleet of peers over a runtime — builds Peer objects from a
// P2PSystem, runs the discovery phase, the global update, query-dependent
// updates, and injects dynamic changes (the super-peer role of Section 5,
// including its rule-broadcast and statistics duties).
#ifndef P2PDB_CORE_SESSION_H_
#define P2PDB_CORE_SESSION_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/dynamics.h"
#include "src/core/peer.h"
#include "src/core/system.h"
#include "src/net/network.h"
#include "src/net/runtime.h"

namespace p2pdb::core {

class Session {
 public:
  struct Options {
    Peer::Config peer;
    NodeId super_peer = 0;
    /// kAll runs one discovery instance per node (every node certainly learns
    /// its own paths); kSuperPeer runs only the super-peer's instance, which
    /// covers exactly the nodes that will participate in its update.
    enum class DiscoveryMode { kAll, kSuperPeer } discovery = DiscoveryMode::kAll;
  };

  /// Builds one peer per system node and registers the coordination rules at
  /// their head nodes. The system's databases are copied into the peers.
  Session(const P2PSystem& system, net::Runtime* runtime, Options options);
  Session(const P2PSystem& system, net::Runtime* runtime)
      : Session(system, runtime, Options{}) {}

  /// Phase 1: topology discovery, run to quiescence.
  Status RunDiscovery();

  /// Phase 2: global update from the super-peer, run to quiescence.
  /// Each call uses a fresh session id.
  Status RunUpdate();

  /// Like RunUpdate but starts the same session from several initiators at
  /// once (disconnected sub-networks each need a local initiator).
  Status RunUpdateFrom(const std::vector<NodeId>& initiators);

  /// Query-dependent update: pull only `relations` toward node `at`, then run
  /// to quiescence (termination by network quiescence, per Section 3's
  /// query-dependent mode).
  Status RunPartialUpdate(NodeId at, const std::set<std::string>& relations);

  /// Schedules a dynamic change to be delivered at the given simulated time
  /// (the head node receives the addRule/deleteRule notification).
  void ScheduleChange(const AtomicChange& change);

  /// Re-runs discovery so every peer refreshes its topology knowledge and SCC
  /// membership after dynamic changes (needed when changes affect cycles).
  Status Rediscover();

  // --- Inspection ---
  Peer& peer(NodeId id) { return *peers_[id]; }
  const Peer& peer(NodeId id) const { return *peers_[id]; }
  size_t peer_count() const { return peers_.size(); }

  /// Nodes participating in the super-peer's update: the super-peer plus all
  /// nodes reachable from it over dependency edges.
  std::set<NodeId> Participants() const;

  /// True when every participant's update state is closed; nodes still open
  /// are reported in `open_nodes` when provided.
  bool AllClosed(std::set<NodeId>* open_nodes = nullptr) const;

  /// Deep copies every peer's current database (index = node id).
  std::vector<rel::Database> SnapshotDatabases() const;

  /// The super-peer's statistics collection (Section 5): per-peer update
  /// counters plus network totals, as a printable table.
  std::string CollectStatistics() const;

  net::Runtime* runtime() { return runtime_; }
  net::Network& network() { return network_; }
  uint64_t last_session_id() const { return next_session_ - 1; }

 private:
  net::Runtime* runtime_;
  net::Network network_;
  Options options_;
  std::vector<std::unique_ptr<Peer>> peers_;
  uint64_t next_session_ = 1;
};

}  // namespace p2pdb::core

#endif  // P2PDB_CORE_SESSION_H_
