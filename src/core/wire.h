// Typed protocol payloads and their binary codecs. Every protocol message is
// serialized before it is handed to the runtime, so byte counts reported by
// the statistics module reflect true wire volumes, and codecs are round-trip
// tested like any other storage format.
#ifndef P2PDB_CORE_WIRE_H_
#define P2PDB_CORE_WIRE_H_

#include <set>
#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/relational/codec.h"
#include "src/relational/cq.h"
#include "src/relational/tuple.h"
#include "src/util/ids.h"
#include "src/util/serde.h"
#include "src/util/status.h"

namespace p2pdb::core::wire {

// --- Building-block codecs -------------------------------------------------

// Value/tuple codecs live in relational/codec.h (shared with snapshots);
// re-exported here for wire users.
using rel::DecodeTuple;
using rel::DecodeTupleSet;
using rel::DecodeValue;
using rel::EncodeTuple;
using rel::EncodeTupleSet;
using rel::EncodeValue;

void EncodeTerm(const rel::Term& t, Writer* w);
Result<rel::Term> DecodeTerm(Reader* r);

void EncodeAtom(const rel::Atom& a, Writer* w);
Result<rel::Atom> DecodeAtom(Reader* r);

void EncodeBuiltin(const rel::Builtin& b, Writer* w);
Result<rel::Builtin> DecodeBuiltin(Reader* r);

void EncodeQuery(const rel::ConjunctiveQuery& q, Writer* w);
Result<rel::ConjunctiveQuery> DecodeQuery(Reader* r);

void EncodeRule(const CoordinationRule& rule, Writer* w);
Result<CoordinationRule> DecodeRule(Reader* r);

using Edge = std::pair<NodeId, NodeId>;
void EncodeEdges(const std::set<Edge>& edges, Writer* w);
Result<std::set<Edge>> DecodeEdges(Reader* r);

// --- Protocol payloads -----------------------------------------------------

/// A1/A2 requestNodes: flood request on behalf of `origin`.
struct DiscoverRequest {
  NodeId origin = kNoNode;

  std::vector<uint8_t> Encode() const;
  static Result<DiscoverRequest> Decode(ByteView bytes);
};

/// A3 processAnswer: edges aggregated below the sender. `visited` marks the
/// immediate reply of a node that had already joined this origin's instance.
struct DiscoverAnswer {
  NodeId origin = kNoNode;
  bool visited = false;
  std::set<Edge> edges;

  std::vector<uint8_t> Encode() const;
  static Result<DiscoverAnswer> Decode(ByteView bytes);
};

/// Closure broadcast: the origin's complete reachable edge set, pushed down
/// the request tree so every participant can derive its own maximal paths and
/// set state_d = closed.
struct DiscoverClosure {
  NodeId origin = kNoNode;
  std::set<Edge> edges;

  std::vector<uint8_t> Encode() const;
  static Result<DiscoverClosure> Decode(ByteView bytes);
};

/// Global update request flooded from the super-peer.
struct UpdateStart {
  uint64_t session = 0;

  std::vector<uint8_t> Encode() const;
  static Result<UpdateStart> Decode(ByteView bytes);
};

/// A4 Query: the head node subscribes to one body part of one of its rules;
/// the body node evaluates `query` now and on every local change.
struct QueryRequest {
  uint64_t session = 0;
  std::string rule_id;
  uint32_t part = 0;
  rel::ConjunctiveQuery query;

  std::vector<uint8_t> Encode() const;
  static Result<QueryRequest> Decode(ByteView bytes);
};

/// A5 Answer: tuples for one subscription. With the delta optimization only
/// new tuples travel (is_delta = true); `source_closed` carries the body
/// node's state_u so the head can flag the rule (A5's `state == complete`).
struct QueryAnswer {
  uint64_t session = 0;
  std::string rule_id;
  uint32_t part = 0;
  bool is_delta = true;
  bool source_closed = false;
  std::set<rel::Tuple> tuples;

  std::vector<uint8_t> Encode() const;
  static Result<QueryAnswer> Decode(ByteView bytes);
};

/// Cancels one subscription (deleteLink handling, Section 4).
struct Unsubscribe {
  uint64_t session = 0;
  std::string rule_id;
  uint32_t part = 0;

  std::vector<uint8_t> Encode() const;
  static Result<Unsubscribe> Decode(ByteView bytes);
};

/// Query-dependent update: pulls only relations needed by a local query,
/// carrying the paper's SN node path to bound propagation (A4's ID ∉ SN test).
struct PartialUpdate {
  uint64_t session = 0;
  std::set<std::string> relations;
  std::vector<NodeId> sn_path;

  std::vector<uint8_t> Encode() const;
  static Result<PartialUpdate> Decode(ByteView bytes);
};

/// Termination-detection token circulating a strongly connected component
/// (Mattern four-counter scheme; see update.h).
struct Token {
  uint64_t session = 0;
  NodeId leader = kNoNode;
  uint64_t pass = 0;
  uint64_t sum_sent = 0;
  uint64_t sum_recv = 0;
  bool all_ready = true;

  std::vector<uint8_t> Encode() const;
  static Result<Token> Decode(ByteView bytes);
};

/// Leader's closure broadcast to its SCC.
struct SccClosed {
  uint64_t session = 0;

  std::vector<uint8_t> Encode() const;
  static Result<SccClosed> Decode(ByteView bytes);
};

/// A member that re-opened (dynamics) asks the leader to resume the token.
struct Reopen {
  uint64_t session = 0;

  std::vector<uint8_t> Encode() const;
  static Result<Reopen> Decode(ByteView bytes);
};

/// addLink notification (Definition 8): delivered to the head node.
struct AddRuleChange {
  CoordinationRule rule;

  std::vector<uint8_t> Encode() const;
  static Result<AddRuleChange> Decode(ByteView bytes);
};

/// deleteLink notification: delivered to the head node.
struct DeleteRuleChange {
  std::string rule_id;

  std::vector<uint8_t> Encode() const;
  static Result<DeleteRuleChange> Decode(ByteView bytes);
};

/// Durable form of one applied dynamic rule change — what a head peer writes
/// to its WAL (storage::Storage::LogRuleChange) so that Recover() can replay
/// mid-session addLink/deleteLink without the change driver re-delivering
/// them. kAdd carries the full rule; kDelete only the id.
struct RuleChangeRecord {
  enum class Kind : uint8_t { kAdd = 1, kDelete = 2 };
  Kind kind = Kind::kAdd;
  CoordinationRule rule;  // kAdd only.
  std::string rule_id;    // kDelete only.

  static RuleChangeRecord Add(CoordinationRule rule);
  static RuleChangeRecord Delete(std::string rule_id);

  std::vector<uint8_t> Encode() const;
  static Result<RuleChangeRecord> Decode(ByteView bytes);
};

}  // namespace p2pdb::core::wire

#endif  // P2PDB_CORE_WIRE_H_
