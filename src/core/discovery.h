// Topology discovery (algorithms A1-A3): a diffusing computation per origin.
//
// The super-peer (or any node) starts an instance; requests flood along
// dependency edges; a node already in the instance answers a duplicate request
// immediately ("visited"); answers aggregate edge sets up the request tree.
// When the origin's echo completes it holds the complete set of dependency
// edges reachable from it and broadcasts a closure message down the request
// tree: every participant stores the restriction reachable from itself,
// derives its maximal dependency paths (Definitions 6-7) and sets
// state_d = closed.
//
// Relative to the paper's pseudocode this replaces the repeated processAnswer
// gossip with a deterministic two-phase echo + closure; the optional eager
// mode re-attaches current partial edge knowledge to duplicate answers, which
// reproduces the paper's extra asynchronous messages without changing the
// final state (ablation A3 measures the difference).
#ifndef P2PDB_CORE_DISCOVERY_H_
#define P2PDB_CORE_DISCOVERY_H_

#include <map>
#include <set>
#include <vector>

#include "src/core/wire.h"
#include "src/util/ids.h"

namespace p2pdb::core {

class Peer;

class DiscoveryEngine {
 public:
  /// state_d in the paper: undefined until a node participates, `discovery`
  /// while its knowledge is incomplete, `closed` when complete.
  enum class State { kUndefined, kDiscovery, kClosed };

  explicit DiscoveryEngine(Peer* peer) : peer_(peer) {}

  /// A1 Discover: starts an instance with this node as origin.
  void Start();

  void OnRequest(NodeId from, const wire::DiscoverRequest& req);
  void OnAnswer(NodeId from, const wire::DiscoverAnswer& ans);
  void OnClosure(NodeId from, const wire::DiscoverClosure& closure);

  State state() const { return state_; }

  /// Number of discovery instances this node has participated in.
  size_t instance_count() const { return instances_.size(); }

 private:
  struct Instance {
    NodeId origin = kNoNode;
    NodeId parent = kNoNode;  // first requester; kNoNode when self-origin
    bool joined = false;
    bool completed = false;
    std::set<NodeId> pending;         // children awaiting first answer
    std::vector<NodeId> tree_children;  // children that answered visited=false
    std::set<wire::Edge> edges;       // accumulated below this node
  };

  /// Enters instance `origin`; returns the set of direct dependency targets.
  std::set<NodeId> JoinInstance(Instance* inst, NodeId origin, NodeId parent);

  /// Subtree finished: echo to the parent, or (at the origin) finish and
  /// broadcast the closure wave.
  void CompleteInstance(Instance* inst);

  /// Installs complete knowledge at this node: restrict `all_edges` to what is
  /// reachable from here, recompute maximal paths, set state_d = closed.
  void AdoptKnowledge(const std::set<wire::Edge>& all_edges);

  Peer* peer_;
  State state_ = State::kUndefined;
  std::map<NodeId, Instance> instances_;
};

}  // namespace p2pdb::core

#endif  // P2PDB_CORE_DISCOVERY_H_
