#include "src/core/discovery.h"

#include "src/core/dependency.h"
#include "src/core/peer.h"
#include "src/util/logging.h"

namespace p2pdb::core {

void DiscoveryEngine::Start() {
  // A1 Discover: a node with no rules is immediately closed with no paths.
  if (peer_->rules().empty()) {
    state_ = State::kClosed;
    AdoptKnowledge({});
    return;
  }
  if (state_ == State::kUndefined) state_ = State::kDiscovery;
  Instance& inst = instances_[peer_->id()];
  if (inst.joined) return;  // Already started.
  std::set<NodeId> children = JoinInstance(&inst, peer_->id(), kNoNode);
  for (NodeId c : children) {
    wire::DiscoverRequest req{peer_->id()};
    peer_->Send(c, net::MessageType::kDiscoverRequest, req.Encode());
  }
}

std::set<NodeId> DiscoveryEngine::JoinInstance(Instance* inst, NodeId origin,
                                               NodeId parent) {
  inst->origin = origin;
  inst->parent = parent;
  inst->joined = true;
  std::set<NodeId> children = peer_->DependencyTargets();
  inst->pending = children;
  for (NodeId c : children) inst->edges.insert({peer_->id(), c});
  return children;
}

void DiscoveryEngine::OnRequest(NodeId from, const wire::DiscoverRequest& req) {
  Instance& inst = instances_[req.origin];
  if (inst.joined) {
    if (from == inst.parent) {
      // Duplicate of the request that made us join (at-least-once delivery).
      // A "visited" reply would make the parent treat this branch as a cycle
      // with empty edges; instead re-send the real echo if it already went
      // out, or stay silent (it will go out when the subtree completes).
      if (inst.completed) {
        wire::DiscoverAnswer ans;
        ans.origin = req.origin;
        ans.visited = false;
        ans.edges = inst.edges;
        peer_->Send(from, net::MessageType::kDiscoverAnswer, ans.Encode());
      }
      return;
    }
    // A2: the origin already flows through this node — answer right away so
    // the requester's branch does not block (cycle breaking). Eager mode
    // attaches current partial knowledge, as the paper's gossip does.
    wire::DiscoverAnswer ans;
    ans.origin = req.origin;
    ans.visited = true;
    if (peer_->config().eager_discovery_answers) ans.edges = inst.edges;
    peer_->Send(from, net::MessageType::kDiscoverAnswer, ans.Encode());
    return;
  }
  if (state_ == State::kUndefined) state_ = State::kDiscovery;
  std::set<NodeId> children = JoinInstance(&inst, req.origin, from);
  if (children.empty()) {
    // Leaf for this instance: echo immediately.
    inst.completed = true;
    wire::DiscoverAnswer ans;
    ans.origin = req.origin;
    ans.visited = false;
    peer_->Send(from, net::MessageType::kDiscoverAnswer, ans.Encode());
    // A node with no rules knows its (empty) topology completely.
    if (peer_->rules().empty() && state_ != State::kClosed) {
      state_ = State::kClosed;
      AdoptKnowledge({});
    }
    return;
  }
  for (NodeId c : children) {
    wire::DiscoverRequest fwd{req.origin};
    peer_->Send(c, net::MessageType::kDiscoverRequest, fwd.Encode());
  }
}

void DiscoveryEngine::OnAnswer(NodeId from, const wire::DiscoverAnswer& ans) {
  auto it = instances_.find(ans.origin);
  if (it == instances_.end()) {
    P2PDB_LOG(kWarn) << "discovery answer for unknown origin " << ans.origin;
    return;
  }
  Instance& inst = it->second;
  inst.edges.insert(ans.edges.begin(), ans.edges.end());
  if (!ans.visited) inst.tree_children.push_back(from);
  inst.pending.erase(from);
  if (inst.pending.empty() && !inst.completed) CompleteInstance(&inst);
}

void DiscoveryEngine::CompleteInstance(Instance* inst) {
  inst->completed = true;
  if (inst->origin == peer_->id()) {
    // The echo converged at the origin: full reachable edge set known.
    AdoptKnowledge(inst->edges);
    state_ = State::kClosed;
    wire::DiscoverClosure closure;
    closure.origin = inst->origin;
    closure.edges = inst->edges;
    for (NodeId c : inst->tree_children) {
      peer_->Send(c, net::MessageType::kDiscoverClosure, closure.Encode());
    }
    return;
  }
  wire::DiscoverAnswer ans;
  ans.origin = inst->origin;
  ans.visited = false;
  ans.edges = inst->edges;
  peer_->Send(inst->parent, net::MessageType::kDiscoverAnswer, ans.Encode());
}

void DiscoveryEngine::OnClosure(NodeId from, const wire::DiscoverClosure& msg) {
  (void)from;
  auto it = instances_.find(msg.origin);
  AdoptKnowledge(msg.edges);
  state_ = State::kClosed;
  if (it != instances_.end()) {
    wire::DiscoverClosure fwd;
    fwd.origin = msg.origin;
    fwd.edges = msg.edges;
    for (NodeId c : it->second.tree_children) {
      peer_->Send(c, net::MessageType::kDiscoverClosure, fwd.Encode());
    }
  }
}

void DiscoveryEngine::AdoptKnowledge(const std::set<wire::Edge>& all_edges) {
  peer_->AdoptTopology(all_edges);
}

}  // namespace p2pdb::core
