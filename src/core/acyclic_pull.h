// Acyclic baseline: the [Halevy et al., 2003]-style algorithm that assumes an
// acyclic P2P network — "a query is propagated through the network until it
// reaches the leaves". Each node pulls from its sources exactly once, in
// reverse topological order. Fails on cyclic systems.
#ifndef P2PDB_CORE_ACYCLIC_PULL_H_
#define P2PDB_CORE_ACYCLIC_PULL_H_

#include <vector>

#include "src/core/system.h"
#include "src/relational/chase.h"

namespace p2pdb::core {

struct AcyclicPullResult {
  std::vector<rel::Database> node_dbs;
  /// Accounting equivalent to the message statistics of the distributed run:
  /// one request plus one answer per rule body part.
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

Result<AcyclicPullResult> RunAcyclicPull(const P2PSystem& system,
                                         const rel::ChaseOptions& chase_options);

}  // namespace p2pdb::core

#endif  // P2PDB_CORE_ACYCLIC_PULL_H_
