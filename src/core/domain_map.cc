#include "src/core/domain_map.h"

#include "src/core/wire.h"

namespace p2pdb::core {

void DomainMap::Add(rel::Value source, rel::Value target) {
  mapping_[std::move(source)] = std::move(target);
}

rel::Value DomainMap::Apply(const rel::Value& v) const {
  if (v.is_null()) return v;  // Null identity is node-scoped; never remapped.
  auto it = mapping_.find(v);
  return it == mapping_.end() ? v : it->second;
}

rel::Tuple DomainMap::ApplyToTuple(const rel::Tuple& t) const {
  std::vector<rel::Value> out;
  out.reserve(t.arity());
  for (const rel::Value& v : t.values()) out.push_back(Apply(v));
  return rel::Tuple(std::move(out));
}

std::set<rel::Tuple> DomainMap::ApplyToSet(
    const std::set<rel::Tuple>& tuples) const {
  if (mapping_.empty()) return tuples;
  std::set<rel::Tuple> out;
  for (const rel::Tuple& t : tuples) out.insert(ApplyToTuple(t));
  return out;
}

DomainMap DomainMap::ComposeWith(const DomainMap& other) const {
  DomainMap out;
  for (const auto& [source, target] : mapping_) {
    out.Add(source, other.Apply(target));
  }
  // Entries of `other` not shadowed by this map still apply.
  for (const auto& [source, target] : other.mapping_) {
    if (!mapping_.count(source)) out.Add(source, target);
  }
  return out;
}

void DomainMap::Encode(Writer* w) const {
  w->PutVarint(mapping_.size());
  for (const auto& [source, target] : mapping_) {
    wire::EncodeValue(source, w);
    wire::EncodeValue(target, w);
  }
}

Result<DomainMap> DomainMap::Decode(Reader* r) {
  auto count = r->GetVarint();
  if (!count.ok()) return count.status();
  DomainMap out;
  for (uint64_t i = 0; i < *count; ++i) {
    auto source = wire::DecodeValue(r);
    if (!source.ok()) return source.status();
    auto target = wire::DecodeValue(r);
    if (!target.ok()) return target.status();
    out.Add(std::move(*source), std::move(*target));
  }
  return out;
}

std::string DomainMap::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [source, target] : mapping_) {
    if (!first) out += ", ";
    out += source.ToString() + " -> " + target.ToString();
    first = false;
  }
  return out + "}";
}

}  // namespace p2pdb::core
