#include "src/core/global_fixpoint.h"

#include "src/relational/eval.h"

namespace p2pdb::core {

namespace {
// The centralized chase mints nulls under a reserved pseudo-node id so they
// cannot collide with nulls minted by real peers in comparisons.
constexpr uint32_t kGlobalChaseNode = 0xfffffffeu;
}  // namespace

Result<GlobalFixpointResult> ComputeGlobalFixpoint(
    const P2PSystem& system, const rel::ChaseOptions& chase_options) {
  auto combined = system.CombinedDatabase();
  if (!combined.ok()) return combined.status();
  rel::Database db = combined.MoveValue();
  rel::NullFactory nulls(kGlobalChaseNode);

  GlobalFixpointResult result;
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.iterations;
    for (const CoordinationRule& rule : system.rules()) {
      Result<std::vector<rel::Binding>> bindings =
          Status::Internal("unevaluated");
      if (rule.domain_map.empty()) {
        // Node signatures are disjoint, so the full body evaluates directly
        // against the union database.
        rel::ConjunctiveQuery body;
        for (const CoordinationRule::BodyPart& p : rule.body) {
          body.atoms.insert(body.atoms.end(), p.atoms.begin(), p.atoms.end());
          body.builtins.insert(body.builtins.end(), p.builtins.begin(),
                               p.builtins.end());
        }
        body.builtins.insert(body.builtins.end(), rule.cross_builtins.begin(),
                             rule.cross_builtins.end());
        bindings = rel::EvaluateBindings(db, body);
      } else {
        // Domain relation: evaluate each part, translate its exported values,
        // then join — mirroring what the distributed head node does.
        rel::Database scratch;
        rel::ConjunctiveQuery join;
        Status scratch_status = Status::OK();
        for (size_t p = 0; p < rule.body.size() && scratch_status.ok(); ++p) {
          std::vector<std::string> vars = rule.PartExportVars(p);
          std::string name = "$" + rule.id + ":" + std::to_string(p);
          scratch_status = scratch.CreateRelation(
              rel::RelationSchema(name, vars));
          if (!scratch_status.ok()) break;
          auto part_result = rel::EvaluateQuery(db, rule.PartQuery(p));
          if (!part_result.ok()) {
            scratch_status = part_result.status();
            break;
          }
          rel::Relation* scratch_rel = *scratch.GetMutable(name);
          for (const rel::Tuple& t :
               rule.domain_map.ApplyToSet(*part_result)) {
            (void)scratch_rel->Insert(t);
          }
          rel::Atom atom;
          atom.relation = name;
          for (const std::string& v : vars) {
            atom.terms.push_back(rel::Term::Var(v));
          }
          join.atoms.push_back(std::move(atom));
        }
        if (!scratch_status.ok()) return scratch_status;
        join.builtins = rule.cross_builtins;
        bindings = rel::EvaluateBindings(scratch, join);
      }
      if (!bindings.ok()) return bindings.status();
      rel::ChaseStats step;
      P2PDB_RETURN_IF_ERROR(rel::ApplyRuleHeadAll(
          &db, rule.head_atoms, *bindings, &nulls, chase_options, &step));
      result.chase.inserted += step.inserted;
      result.chase.skipped += step.skipped;
      result.chase.truncated += step.truncated;
      if (step.inserted > 0) changed = true;
    }
  }

  // Split the union instance back into per-node databases by relation
  // ownership.
  result.node_dbs.resize(system.node_count());
  for (const NodeInfo& info : system.nodes()) {
    rel::Database& out = result.node_dbs[info.id];
    for (const auto& [name, relation] : info.db.relations()) {
      P2PDB_RETURN_IF_ERROR(out.CreateRelation(relation.schema()));
      auto final_rel = db.Get(name);
      if (!final_rel.ok()) return final_rel.status();
      rel::Relation* dst = *out.GetMutable(name);
      for (const rel::Tuple& t : (*final_rel)->tuples()) {
        P2PDB_RETURN_IF_ERROR(dst->Insert(t).status());
      }
    }
  }
  return result;
}

}  // namespace p2pdb::core
