#include "src/core/query.h"

#include <chrono>

#include "src/obs/metrics.h"
#include "src/relational/eval.h"

namespace p2pdb::core {

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void RecordServed(const rel::SnapshotStore& store, const rel::DbSnapshot& snap,
                  uint64_t eval_micros) {
  static obs::Histogram* eval =
      obs::Registry::Global().GetHistogram("query.eval_micros");
  static obs::Counter* served =
      obs::Registry::Global().GetCounter("query.served");
  static obs::Gauge* staleness =
      obs::Registry::Global().GetGauge("query.snapshot_staleness_batches");
  eval->Record(eval_micros);
  served->Increment();
  // High-water staleness: how many committed batches the served view lagged.
  // Normally 0; 1 while a reader overlaps the writer's snapshot rebuild.
  uint64_t committed = store.CommittedBatches();
  if (committed > snap.version()) {
    staleness->RaiseTo(static_cast<int64_t>(committed - snap.version()));
  }
}

}  // namespace

Result<std::set<rel::Tuple>> SnapshotQuery(const rel::SnapshotStore& store,
                                           const rel::ConjunctiveQuery& query) {
  rel::SnapshotPtr snap = store.Acquire();
  uint64_t start = NowMicros();
  auto result = rel::EvaluateQuery(*snap, query);
  RecordServed(store, *snap, NowMicros() - start);
  return result;
}

Result<bool> SnapshotQueryPoint(const rel::SnapshotStore& store,
                                const std::string& relation,
                                const rel::Tuple& key) {
  rel::SnapshotPtr snap = store.Acquire();
  uint64_t start = NowMicros();
  const rel::Relation* rel = snap->FindRelation(relation);
  bool found = rel != nullptr && rel->Contains(key);
  RecordServed(store, *snap, NowMicros() - start);
  return found;
}

}  // namespace p2pdb::core
