// The P2P system model of Section 2: local databases + coordination rules.
#ifndef P2PDB_CORE_SYSTEM_H_
#define P2PDB_CORE_SYSTEM_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/domain_map.h"
#include "src/relational/cq.h"
#include "src/relational/database.h"
#include "src/util/ids.h"
#include "src/util/status.h"

namespace p2pdb::core {

/// A coordination rule (Definition 2):
///   j1:b1(x1,y1) ∧ ... ∧ jk:bk(xk,yk)  =>  i:h(x)
/// The body is split into per-node parts (j1..jk distinct, all != i); the head
/// is a conjunction of atoms at node i whose variables either occur in the body
/// (frontier variables) or are existential. Built-ins local to one body node
/// live in that part; built-ins spanning parts are evaluated at the head after
/// the cross-node join.
struct CoordinationRule {
  /// Rule name; unique per (head, body-node) pair per Section 4's addLink.
  std::string id;
  NodeId head_node = kNoNode;
  std::vector<rel::Atom> head_atoms;

  struct BodyPart {
    NodeId node = kNoNode;
    std::vector<rel::Atom> atoms;
    std::vector<rel::Builtin> builtins;
  };
  std::vector<BodyPart> body;
  /// Built-ins whose variables span several body parts.
  std::vector<rel::Builtin> cross_builtins;
  /// Optional domain relation (extension; Serafini et al. 2003): constants in
  /// body answers are translated through this map before the head join, so
  /// equal objects need not share a constant across nodes.
  DomainMap domain_map;

  /// Body variables that must travel to the head: variables of part `index`
  /// that occur in the head, in another part, or in a cross built-in.
  std::vector<std::string> PartExportVars(size_t index) const;

  /// The conjunctive query a body node evaluates for part `index`: that part's
  /// atoms and built-ins, projecting onto PartExportVars(index).
  rel::ConjunctiveQuery PartQuery(size_t index) const;

  /// Head variables not bound by any body part (materialized as nulls).
  std::vector<std::string> ExistentialVars() const;

  /// All body nodes, in part order.
  std::vector<NodeId> BodyNodes() const;

  std::string ToString() const;
};

/// One peer's static description: name, id, and its local database (the
/// initial instance; the update algorithm mutates copies of it).
struct NodeInfo {
  NodeId id = kNoNode;
  std::string name;
  rel::Database db;
};

/// A P2P system MDB = <LDB, CR> (Definition 3).
class P2PSystem {
 public:
  /// Adds a node; ids must be dense (0..n-1) and names unique.
  Status AddNode(std::string name, rel::Database db);

  /// Validates and adds a coordination rule: nodes exist, head/body nodes are
  /// distinct, relations exist at the right nodes with matching arities, rule
  /// id is unique, and every head variable that is not existential occurs in
  /// the body.
  Status AddRule(CoordinationRule rule);

  /// Removes a rule by id; NotFound if absent.
  Status RemoveRule(const std::string& rule_id);

  size_t node_count() const { return nodes_.size(); }
  const std::vector<NodeInfo>& nodes() const { return nodes_; }
  const NodeInfo& node(NodeId id) const { return nodes_[id]; }
  rel::Database* mutable_db(NodeId id) { return &nodes_[id].db; }

  Result<NodeId> NodeByName(const std::string& name) const;

  const std::vector<CoordinationRule>& rules() const { return rules_; }
  Result<const CoordinationRule*> RuleById(const std::string& id) const;

  /// Rules whose head is at `node`.
  std::vector<const CoordinationRule*> RulesWithHead(NodeId node) const;

  /// Merges every node's database into one instance (node signatures are
  /// disjoint, so relation names cannot clash). Used by the global baseline.
  Result<rel::Database> CombinedDatabase() const;

  std::string ToString() const;

 private:
  Status ValidateRule(const CoordinationRule& rule) const;

  std::vector<NodeInfo> nodes_;
  std::map<std::string, NodeId> name_to_id_;
  std::vector<CoordinationRule> rules_;
};

}  // namespace p2pdb::core

#endif  // P2PDB_CORE_SYSTEM_H_
