#include "src/core/peer.h"

#include <map>

#include "src/core/dependency.h"
#include "src/core/query.h"
#include "src/relational/eval.h"
#include "src/util/logging.h"

namespace p2pdb::core {

namespace {
std::vector<uint8_t> EncodeRuleBytes(const CoordinationRule& rule) {
  Writer w;
  wire::EncodeRule(rule, &w);
  return w.bytes();
}
}  // namespace

Peer::Peer(NodeId id, std::string name, rel::Database db,
           net::Runtime* runtime, Config config)
    : id_(id),
      name_(std::move(name)),
      db_(std::move(db)),
      nulls_(id),
      runtime_(runtime),
      config_(config) {
  discovery_ = std::make_unique<DiscoveryEngine>(this);
  update_ = std::make_unique<UpdateEngine>(this, config_.update);
  snapshots_ = config_.snapshots != nullptr
                   ? config_.snapshots
                   : std::make_shared<rel::SnapshotStore>();
  if (!config_.defer_snapshot_publish) PublishFullSnapshot();
  if (config_.register_with_runtime) Register();
}

Peer::~Peer() {
  // Detach before members die: on concurrent runtimes UnregisterPeer blocks
  // until any in-progress OnMessage returns, so dispatch never dangles.
  runtime_->UnregisterPeer(id_);
}

void Peer::Register() { runtime_->RegisterPeer(id_, this); }

Status Peer::AddInitialRule(const CoordinationRule& rule) {
  if (rule.head_node != id_) {
    return Status::InvalidArgument("rule " + rule.id +
                                   " is not headed at this node");
  }
  for (const CoordinationRule& r : rules_) {
    if (r.id == rule.id) return Status::AlreadyExists("rule " + rule.id);
  }
  rules_.push_back(rule);
  return Status::OK();
}

void Peer::StartDiscovery() { discovery_->Start(); }

void Peer::StartUpdate(uint64_t session) {
  // Root of the propagation DAG: when this update is sampled, every message
  // the session fans out inherits the trace id minted here, and this span
  // (parent 0, hop 0) is where fixpoint latency is measured from.
  if (collector_ != nullptr && !span_open_ && collector_->SampleRoot()) {
    net::TraceContext root;
    root.trace_id = collector_->NextTraceId();
    OpenTraceSpan(root, net::MessageType::kUpdateStart, 0, 0);
    update_->StartSession(session);
    CloseTraceSpan();
    return;
  }
  update_->StartSession(session);
}

void Peer::StartPartialUpdate(uint64_t session,
                              const std::set<std::string>& relations) {
  if (collector_ != nullptr && !span_open_ && collector_->SampleRoot()) {
    net::TraceContext root;
    root.trace_id = collector_->NextTraceId();
    OpenTraceSpan(root, net::MessageType::kUpdateStart, 0, 0);
    update_->StartPartial(session, relations);
    CloseTraceSpan();
    return;
  }
  update_->StartPartial(session, relations);
}

Result<std::set<rel::Tuple>> Peer::LocalQuery(
    const rel::ConjunctiveQuery& query) const {
  return rel::EvaluateQuery(db_, query);
}

Result<std::set<rel::Tuple>> Peer::Query(
    const rel::ConjunctiveQuery& query) const {
  return SnapshotQuery(*snapshots_, query);
}

Result<bool> Peer::QueryPoint(const std::string& relation,
                              const rel::Tuple& key) const {
  return SnapshotQueryPoint(*snapshots_, relation, key);
}

void Peer::PublishFullSnapshot() {
  snapshots_->Publish(
      rel::BuildSnapshot(db_, snapshots_->CommittedBatches()));
}

Status Peer::AttachStorage(std::unique_ptr<storage::Storage> storage) {
  if (storage == nullptr) {
    return Status::InvalidArgument("null storage backend");
  }
  storage_ = std::move(storage);
  return storage_->EnsureBase(db_);
}

void Peer::OnDeltaApplied(const storage::DeltaMap& delta) {
  // MVCC commit point: fold the whole batch into the successor snapshot and
  // swap it in before any durability work. Readers observe either none or
  // all of this chase application (a prefix of committed batches), and
  // visibility is decoupled from fsync — safe because the protocol is
  // monotone and a crash loses nothing a reader could not re-derive.
  {
    uint64_t committed = snapshots_->NoteBatchCommitted();
    std::vector<std::string> touched;
    touched.reserve(delta.size());
    for (const auto& [relation, tuples] : delta) {
      (void)tuples;
      touched.push_back(relation);
    }
    snapshots_->Publish(
        rel::AdvanceSnapshot(snapshots_->Acquire(), db_, touched, committed));
  }
  if (storage_ == nullptr) return;
  uint64_t wal_start = span_open_ ? runtime_->NowMicros() : 0;
  Status logged = storage_->LogDelta(delta);
  if (span_open_) RecordWalMicros(runtime_->NowMicros() - wal_start);
  if (!logged.ok()) {
    P2PDB_LOG(kError) << "WAL append failed at node " << id_ << ": "
                      << logged.ToString();
    return;
  }
  Status checkpointed = storage_->MaybeCheckpoint(db_);
  if (!checkpointed.ok()) {
    P2PDB_LOG(kError) << "checkpoint failed at node " << id_ << ": "
                      << checkpointed.ToString();
  }
}

void Peer::LogRuleChange(const wire::RuleChangeRecord& record) {
  if (storage_ == nullptr) return;
  Status logged = storage_->LogRuleChange(record.Encode());
  if (!logged.ok()) {
    P2PDB_LOG(kError) << "rule-change WAL append failed at node " << id_
                      << ": " << logged.ToString();
  }
}

Result<storage::RecoveryInfo> Peer::Recover() {
  if (storage_ == nullptr) {
    return Status::InvalidArgument("no storage attached to node " +
                                   std::to_string(id_));
  }
  storage::RecoveryInfo info;
  auto db = storage_->Recover(&info);
  if (!db.ok()) return db.status();
  db_ = std::move(*db);
  // Replay mid-session rule changes over the (re-registered) initial rules,
  // in log order: an add of a known id is a no-op, a delete of an unknown id
  // is a no-op, so replay is idempotent like the data replay.
  std::map<std::string, std::vector<uint8_t>> initial_rules;
  for (const CoordinationRule& r : rules_) {
    initial_rules[r.id] = EncodeRuleBytes(r);
  }
  for (const std::vector<uint8_t>& blob : info.rule_changes) {
    auto record = wire::RuleChangeRecord::Decode(blob);
    if (!record.ok()) return record.status();
    if (record->kind == wire::RuleChangeRecord::Kind::kAdd) {
      Status added = AddInitialRule(record->rule);
      if (!added.ok() && added.code() != StatusCode::kAlreadyExists) {
        return added;
      }
    } else {
      for (auto it = rules_.begin(); it != rules_.end(); ++it) {
        if (it->id == record->rule_id) {
          rules_.erase(it);
          break;
        }
      }
    }
  }
  if (!info.rule_changes.empty()) {
    // Compact the durable history to the net initial->current diff, so it
    // stays bounded by the rule count instead of the lifetime change count
    // (an add cancelled by a later delete leaves no record at all).
    std::vector<std::vector<uint8_t>> canonical;
    std::set<std::string> current_ids;
    for (const CoordinationRule& r : rules_) {
      current_ids.insert(r.id);
      auto initial = initial_rules.find(r.id);
      if (initial == initial_rules.end()) {
        canonical.push_back(wire::RuleChangeRecord::Add(r).Encode());
      } else if (initial->second != EncodeRuleBytes(r)) {
        // Same id, different rule (deleted and re-added): replay must clear
        // the initial version before the add can take effect.
        canonical.push_back(wire::RuleChangeRecord::Delete(r.id).Encode());
        canonical.push_back(wire::RuleChangeRecord::Add(r).Encode());
      }
    }
    for (const auto& [id, bytes] : initial_rules) {
      (void)bytes;
      if (current_ids.count(id) == 0) {
        canonical.push_back(wire::RuleChangeRecord::Delete(id).Encode());
      }
    }
    P2PDB_RETURN_IF_ERROR(storage_->ResetRuleChanges(std::move(canonical)));
  }
  // The recovered instance contains every null this node minted before the
  // crash (heads insert invented nulls locally, and data is never retracted);
  // advance the factory past all of them so fresh nulls cannot collide.
  for (const auto& [name, relation] : db_.relations()) {
    (void)name;
    for (const rel::Tuple& t : relation.tuples()) {
      for (const rel::Value& v : t.values()) {
        if (!v.is_null()) continue;
        if (rel::NullFactory::NodeOf(v.null_id()) != id_) continue;
        nulls_.ReserveThrough(rel::NullFactory::SeqOf(v.null_id()) & 0xffffffu);
      }
    }
  }
  // Compact: fold the replayed WAL into a fresh checkpoint so the next
  // recovery starts from this state directly.
  P2PDB_RETURN_IF_ERROR(storage_->Checkpoint(db_));
  // Readers switch from the pre-crash snapshot (still served by the shared
  // store while this peer was down) to the recovered state in one swap.
  PublishFullSnapshot();
  return info;
}

void Peer::AdoptTopology(const std::set<wire::Edge>& edges) {
  DependencyGraph graph(edges);
  DependencyGraph mine = graph.ReachableSubgraph(id_);
  known_edges_.insert(mine.edges().begin(), mine.edges().end());
}

std::vector<std::vector<NodeId>> Peer::MaximalPaths() const {
  return DependencyGraph(known_edges_).MaximalPathsFrom(id_);
}

std::set<NodeId> Peer::OwnScc() const {
  return DependencyGraph(known_edges_).SccOf(id_);
}

std::set<NodeId> Peer::DependencyTargets() const {
  std::set<NodeId> out;
  for (const CoordinationRule& r : rules_) {
    for (const CoordinationRule::BodyPart& p : r.body) out.insert(p.node);
  }
  return out;
}

void Peer::Send(NodeId to, net::MessageType type, std::vector<uint8_t> payload,
                bool urgent) {
  net::Message msg;
  msg.type = type;
  msg.from = id_;
  msg.to = to;
  msg.payload = std::move(payload);
  msg.urgent = urgent;
  if (span_open_) {
    msg.trace.trace_id = active_span_.trace_id;
    msg.trace.parent_span = active_span_.span_id;
    msg.trace.hop = active_span_.hop + 1;
    ++active_span_.forwards;
  }
  runtime_->Send(std::move(msg));
}

void Peer::OpenTraceSpan(const net::TraceContext& ctx, net::MessageType type,
                         uint64_t bytes, uint64_t queue_wait) {
  active_span_ = obs::TraceSpan{};
  active_span_.trace_id = ctx.trace_id;
  active_span_.span_id = collector_->NextSpanId();
  active_span_.parent_span = ctx.parent_span;
  active_span_.hop = ctx.hop;
  active_span_.node = id_;
  active_span_.type = type;
  active_span_.recv_micros = runtime_->NowMicros();
  active_span_.queue_wait_micros = queue_wait;
  active_span_.bytes = bytes;
  span_open_ = true;
}

void Peer::CloseTraceSpan() {
  active_span_.end_micros = runtime_->NowMicros();
  span_open_ = false;
  collector_->Record(active_span_);
}

void Peer::OnMessage(const net::Message& msg) {
  // Span per traced dispatch: opened before the handler can forward (so
  // children parent correctly), closed when the handler returns. Dispatch on
  // one peer is serialized by every runtime, so plain members suffice.
  const bool traced = collector_ != nullptr && msg.trace.active();
  if (traced) {
    OpenTraceSpan(msg.trace, msg.type, msg.WireSize(), msg.queued_micros);
  }
  DispatchMessage(msg);
  if (traced) CloseTraceSpan();
}

void Peer::DispatchMessage(const net::Message& msg) {
  switch (msg.type) {
    case net::MessageType::kDiscoverRequest: {
      auto payload = wire::DiscoverRequest::Decode(msg.payload);
      if (payload.ok()) discovery_->OnRequest(msg.from, *payload);
      break;
    }
    case net::MessageType::kDiscoverAnswer: {
      auto payload = wire::DiscoverAnswer::Decode(msg.payload);
      if (payload.ok()) discovery_->OnAnswer(msg.from, *payload);
      break;
    }
    case net::MessageType::kDiscoverClosure: {
      auto payload = wire::DiscoverClosure::Decode(msg.payload);
      if (payload.ok()) discovery_->OnClosure(msg.from, *payload);
      break;
    }
    case net::MessageType::kUpdateStart: {
      auto payload = wire::UpdateStart::Decode(msg.payload);
      if (payload.ok()) update_->OnUpdateStart(msg.from, *payload);
      break;
    }
    case net::MessageType::kQueryRequest: {
      auto payload = wire::QueryRequest::Decode(msg.payload);
      if (payload.ok()) update_->OnQueryRequest(msg.from, *payload);
      break;
    }
    case net::MessageType::kQueryAnswer: {
      auto payload = wire::QueryAnswer::Decode(msg.payload);
      if (payload.ok()) update_->OnQueryAnswer(msg.from, *payload);
      break;
    }
    case net::MessageType::kUnsubscribe: {
      auto payload = wire::Unsubscribe::Decode(msg.payload);
      if (payload.ok()) update_->OnUnsubscribe(msg.from, *payload);
      break;
    }
    case net::MessageType::kPartialUpdate: {
      auto payload = wire::PartialUpdate::Decode(msg.payload);
      if (payload.ok()) update_->OnPartialUpdate(msg.from, *payload);
      break;
    }
    case net::MessageType::kToken: {
      auto payload = wire::Token::Decode(msg.payload);
      if (payload.ok()) update_->OnToken(msg.from, *payload);
      break;
    }
    case net::MessageType::kSccClosed: {
      auto payload = wire::SccClosed::Decode(msg.payload);
      if (payload.ok()) update_->OnSccClosed(msg.from, *payload);
      break;
    }
    case net::MessageType::kReopen: {
      auto payload = wire::Reopen::Decode(msg.payload);
      if (payload.ok()) update_->OnReopen(msg.from, *payload);
      break;
    }
    case net::MessageType::kAddRule: {
      auto payload = wire::AddRuleChange::Decode(msg.payload);
      if (payload.ok()) update_->OnAddRule(msg.from, *payload);
      break;
    }
    case net::MessageType::kDeleteRule: {
      auto payload = wire::DeleteRuleChange::Decode(msg.payload);
      if (payload.ok()) update_->OnDeleteRule(msg.from, *payload);
      break;
    }
    case net::MessageType::kBatch:
    case net::MessageType::kCredit:
      // Transport-internal frames: the runtime unpacks batches and consumes
      // credits before dispatch, so a peer never sees either.
      break;
    case net::MessageType::kBootstrap:
    case net::MessageType::kBootstrapAck:
    case net::MessageType::kStartDiscovery:
    case net::MessageType::kStartUpdate:
    case net::MessageType::kRefreshScc:
    case net::MessageType::kStatusRequest:
    case net::MessageType::kStatusReport:
    case net::MessageType::kDumpRequest:
    case net::MessageType::kDumpReply:
    case net::MessageType::kShutdown:
      // Control plane: handled by the daemon layer (src/daemon) wrapping the
      // peer's handler; a bare Peer ignores stray control traffic.
      break;
  }
}

}  // namespace p2pdb::core
