#include "src/core/update.h"

#include <algorithm>

#include "src/core/dependency.h"
#include "src/core/peer.h"
#include "src/obs/metrics.h"
#include "src/relational/eval.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace p2pdb::core {

namespace {
bool Contains(const std::vector<NodeId>& path, NodeId n) {
  return std::find(path.begin(), path.end(), n) != path.end();
}
}  // namespace

void UpdateEngine::StartSession(uint64_t session) {
  JoinSession(session, /*flood=*/true);
}

void UpdateEngine::JoinSession(uint64_t session, bool flood) {
  if (state_ != State::kIdle && session_ == session) return;
  if (session_ != session) {
    // Fix-point detection is per session: a peer crash can lose messages a
    // ring member counted as sent, and carrying that imbalance into the next
    // session would leave the Mattern check (sent == recv) unsatisfiable
    // forever. Per-link FIFO makes the reset consistent — UpdateStart always
    // precedes any counted message of the new session on the same link.
    intra_sent_ = 0;
    intra_recv_ = 0;
    last_round_.reset();
    token_running_ = false;
  }
  session_ = session;
  partial_mode_ = false;
  RefreshScc();
  state_ = State::kOpen;

  if (flood) {
    wire::UpdateStart start{session};
    for (NodeId t : peer_->DependencyTargets()) {
      peer_->Send(t, net::MessageType::kUpdateStart, start.Encode());
    }
  }
  for (const CoordinationRule& r : peer_->rules()) {
    RuleRuntime* rr = EnsureRuleRuntime(r);
    SubscribeParts(*rr);
  }
  if (scc_.size() > 1 && IsRingLeader() && !token_running_) LeaderStartPass();
  if (peer_->rules().empty()) {
    // A2: a node with no rules holds complete data from the start.
    CloseSelf(/*notify_in_scc=*/true);
  }
}

void UpdateEngine::RefreshScc() {
  scc_ = peer_->OwnScc();
  if (scc_.size() > 1 && IsRingLeader() && state_ != State::kIdle &&
      !token_running_) {
    LeaderStartPass();
  }
}

UpdateEngine::RuleRuntime* UpdateEngine::EnsureRuleRuntime(
    const CoordinationRule& rule) {
  auto it = rule_runtimes_.find(rule.id);
  if (it != rule_runtimes_.end()) return &it->second;
  RuleRuntime rr;
  rr.rule = rule;
  rr.part_answers.resize(rule.body.size());
  rr.part_closed.assign(rule.body.size(), false);
  return &rule_runtimes_.emplace(rule.id, std::move(rr)).first->second;
}

void UpdateEngine::SubscribeParts(const RuleRuntime& rr) {
  for (size_t p = 0; p < rr.rule.body.size(); ++p) {
    NodeId target = rr.rule.body[p].node;
    wire::QueryRequest req;
    req.session = session_;
    req.rule_id = rr.rule.id;
    req.part = static_cast<uint32_t>(p);
    req.query = rr.rule.PartQuery(p);
    CountIntraSccSend(target);
    peer_->Send(target, net::MessageType::kQueryRequest, req.Encode());
  }
}

void UpdateEngine::OnUpdateStart(NodeId from, const wire::UpdateStart& msg) {
  (void)from;
  JoinSession(msg.session, /*flood=*/true);
}

void UpdateEngine::OnQueryRequest(NodeId from, const wire::QueryRequest& msg) {
  CountIntraSccRecv(from);
  // Replace any previous subscription for the same (subscriber, rule, part):
  // re-subscription resets the delta baseline, so the subscriber receives the
  // full current result again.
  Subscription* sub = nullptr;
  for (Subscription& s : subscriptions_) {
    if (s.subscriber == from && s.rule_id == msg.rule_id &&
        s.part == msg.part) {
      sub = &s;
      break;
    }
  }
  if (sub == nullptr) {
    subscriptions_.emplace_back();
    sub = &subscriptions_.back();
  }
  sub->subscriber = from;
  sub->rule_id = msg.rule_id;
  sub->part = msg.part;
  sub->query = msg.query;
  sub->last_sent.clear();
  sub->announced_closed = false;

  auto result = rel::EvaluateQuery(peer_->db(), sub->query);
  if (!result.ok()) {
    P2PDB_LOG(kWarn) << "subscription query failed at node " << peer_->id()
                     << ": " << result.status().ToString();
    return;
  }
  wire::QueryAnswer ans;
  ans.session = msg.session;
  ans.rule_id = msg.rule_id;
  ans.part = msg.part;
  ans.is_delta = true;  // Initial answer: delta from the empty set.
  ans.source_closed = state_ == State::kClosed;
  ans.tuples = *result;
  CountIntraSccSend(from);
  ++stats_.answers_sent;
  peer_->Send(from, net::MessageType::kQueryAnswer, ans.Encode());
  sub->last_sent = std::move(*result);
  sub->announced_closed = ans.source_closed;
}

void UpdateEngine::OnQueryAnswer(NodeId from, const wire::QueryAnswer& msg) {
  CountIntraSccRecv(from);
  auto it = rule_runtimes_.find(msg.rule_id);
  if (it == rule_runtimes_.end()) return;  // Rule deleted meanwhile.
  RuleRuntime& rr = it->second;
  if (msg.part >= rr.part_answers.size()) return;

  // Monotone union: with deltas only new tuples travel; with full answers the
  // union is the same set. The rule's domain relation (if any) translates
  // foreign constants into this node's vocabulary first. Only genuinely new
  // tuples feed the semi-naive join below.
  std::set<rel::Tuple> delta;
  std::set<rel::Tuple> mapped_storage;
  const std::set<rel::Tuple>* source = &msg.tuples;
  if (!rr.rule.domain_map.empty()) {
    mapped_storage = rr.rule.domain_map.ApplyToSet(msg.tuples);
    source = &mapped_storage;
  }
  for (const rel::Tuple& t : *source) {
    if (rr.part_answers[msg.part].insert(t).second) delta.insert(t);
  }
  bool part_was_closed = rr.part_closed[msg.part];
  rr.part_closed[msg.part] = msg.source_closed;

  bool changed = delta.empty() ? false : JoinAndApply(&rr, msg.part, delta);

  // Dynamics: a source that re-opened, or new data after our closure,
  // re-opens this node (Section 4).
  if (state_ == State::kClosed &&
      ((part_was_closed && !msg.source_closed) || changed)) {
    ReopenSelf();
  }
  if (changed) NotifySubscribers();
  // The closed flag came from outside the SCC, invisible to the intra-SCC
  // counters — a paused ring would never observe the readiness change.
  if (msg.source_closed && !part_was_closed &&
      !scc_.count(rr.rule.body[msg.part].node)) {
    PokeRingIfReady();
  }
  MaybeCloseTrivial();
}

void UpdateEngine::PokeRingIfReady() {
  // A member of a non-trivial SCC cannot close itself — the ring does — and
  // the leader pauses the ring when rounds stop changing. Whenever an event
  // the counters cannot see makes this node externally ready (an external
  // source's closed flag, a deleteLink dropping the last open external
  // part), poke the leader so detection resumes.
  if (scc_.size() <= 1 || state_ == State::kIdle || !ExternallyReady()) return;
  if (IsRingLeader()) {
    ResumeRingIfPaused();
  } else {
    wire::Reopen poke{session_};
    peer_->Send(*scc_.begin(), net::MessageType::kReopen, poke.Encode(),
                /*urgent=*/true);
  }
}

bool UpdateEngine::JoinAndApply(RuleRuntime* rr, uint32_t delta_part,
                                const std::set<rel::Tuple>& delta) {
  ++stats_.joins_evaluated;
  const CoordinationRule& rule = rr->rule;
  // Chase apply time = semi-naive join + head application (WAL time is
  // charged separately inside OnDeltaApplied). One clock pair per join is
  // noise next to the join itself, so this is not gated.
  const uint64_t chase_start = peer_->runtime()->NowMicros();

  // Semi-naive join: the delta part contributes only its new tuples, every
  // other part its full accumulated answers; one scratch relation per part,
  // an atom over each, natural join on shared variable names, plus the rule's
  // cross-part built-ins. The resulting bindings cover every exported
  // variable, which includes all frontier variables of the head.
  rel::Database scratch;
  rel::ConjunctiveQuery join;
  for (size_t p = 0; p < rule.body.size(); ++p) {
    std::vector<std::string> vars = rule.PartExportVars(p);
    std::string scratch_name = "$" + rule.id + ":" + std::to_string(p);
    if (!scratch.CreateRelation(rel::RelationSchema(scratch_name, vars)).ok()) {
      return false;
    }
    rel::Relation* scratch_rel = *scratch.GetMutable(scratch_name);
    const std::set<rel::Tuple>& tuples =
        p == delta_part ? delta : rr->part_answers[p];
    for (const rel::Tuple& t : tuples) {
      if (t.arity() != vars.size()) continue;  // Malformed answer; skip.
      (void)scratch_rel->Insert(t);
    }
    rel::Atom atom;
    atom.relation = scratch_name;
    for (const std::string& v : vars) atom.terms.push_back(rel::Term::Var(v));
    join.atoms.push_back(std::move(atom));
  }
  join.builtins = rule.cross_builtins;

  auto bindings = rel::EvaluateBindings(scratch, join);
  if (!bindings.ok()) {
    P2PDB_LOG(kWarn) << "rule join failed for " << rule.id << ": "
                     << bindings.status().ToString();
    return false;
  }
  // Collect this application's insertions separately so they can be logged
  // to durable storage as one delta, then merge them into the semi-naive feed.
  std::map<std::string, std::set<rel::Tuple>> applied;
  rel::ChaseStats chase_stats;
  chase_stats.collect_inserted = &applied;
  Status st = rel::ApplyRuleHeadAll(&peer_->db(), rule.head_atoms, *bindings,
                                    &peer_->nulls(), options_.chase,
                                    &chase_stats);
  {
    uint64_t micros = peer_->runtime()->NowMicros() - chase_start;
    static obs::Histogram* chase =
        obs::Registry::Global().GetHistogram("update.chase_apply_micros");
    chase->Record(micros);
    peer_->RecordChaseMicros(micros);
  }
  // Even a failed application may have inserted tuples for earlier bindings;
  // they are in the database, so they must reach subscribers and the WAL.
  if (chase_stats.inserted > 0) {
    for (const auto& [relation, tuples] : applied) {
      pending_delta_[relation].insert(tuples.begin(), tuples.end());
    }
    peer_->OnDeltaApplied(applied);
  }
  if (!st.ok()) {
    P2PDB_LOG(kError) << "chase failed for rule " << rule.id << ": "
                      << st.ToString();
    return false;
  }
  stats_.tuples_inserted += chase_stats.inserted;
  stats_.applications_skipped += chase_stats.skipped;
  stats_.applications_truncated += chase_stats.truncated;
  return chase_stats.inserted > 0;
}

void UpdateEngine::NotifySubscribers() {
  bool closed = state_ == State::kClosed;
  std::map<std::string, std::set<rel::Tuple>> db_delta =
      std::move(pending_delta_);
  pending_delta_.clear();
  for (Subscription& sub : subscriptions_) {
    bool flag_changed = closed != sub.announced_closed;
    // Semi-naive: new answers of the subscription query are exactly those
    // using at least one freshly inserted tuple in at least one atom.
    std::set<rel::Tuple> new_results;
    bool eval_ok = true;
    for (size_t i = 0; i < sub.query.atoms.size() && eval_ok; ++i) {
      auto it = db_delta.find(sub.query.atoms[i].relation);
      if (it == db_delta.end()) continue;
      auto partial =
          rel::EvaluateQueryDelta(peer_->db(), sub.query, i, it->second);
      if (!partial.ok()) {
        P2PDB_LOG(kWarn) << "delta evaluation failed at node " << peer_->id()
                         << ": " << partial.status().ToString();
        eval_ok = false;
        break;
      }
      new_results.insert(partial->begin(), partial->end());
    }
    if (!eval_ok) continue;
    std::set<rel::Tuple> delta;
    for (const rel::Tuple& t : new_results) {
      if (!sub.last_sent.count(t)) delta.insert(t);
    }
    if (delta.empty() && !flag_changed) continue;
    sub.last_sent.insert(delta.begin(), delta.end());
    wire::QueryAnswer ans;
    ans.session = session_;
    ans.rule_id = sub.rule_id;
    ans.part = sub.part;
    ans.is_delta = options_.delta_answers;
    ans.source_closed = closed;
    // Full mode retransmits the whole accumulated result (the paper's
    // baseline behaviour); delta mode ships only the new tuples.
    ans.tuples = options_.delta_answers ? delta : sub.last_sent;
    CountIntraSccSend(sub.subscriber);
    ++stats_.answers_sent;
    peer_->Send(sub.subscriber, net::MessageType::kQueryAnswer, ans.Encode());
    sub.announced_closed = closed;
  }
}

bool UpdateEngine::ExternallyReady() const {
  for (const auto& [id, rr] : rule_runtimes_) {
    for (size_t p = 0; p < rr.rule.body.size(); ++p) {
      NodeId source = rr.rule.body[p].node;
      if (scc_.size() > 1 && scc_.count(source)) continue;  // Intra-SCC part.
      if (!rr.part_closed[p]) return false;
    }
  }
  return true;
}

void UpdateEngine::MaybeCloseTrivial() {
  if (partial_mode_ || state_ != State::kOpen) return;
  if (scc_.size() > 1) return;  // The token ring closes non-trivial SCCs.
  if (!ExternallyReady()) return;
  CloseSelf(/*notify_in_scc=*/true);
}

void UpdateEngine::CloseSelf(bool notify_in_scc) {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  if (!notify_in_scc) {
    // Ring closure: in-SCC subscribers close via the same SccClosed wave;
    // only external subscribers need the final flagged answer.
    for (Subscription& sub : subscriptions_) {
      if (scc_.count(sub.subscriber)) sub.announced_closed = true;
    }
  }
  NotifySubscribers();
}

void UpdateEngine::ReopenSelf() {
  if (state_ != State::kClosed) return;
  state_ = State::kOpen;
  ++stats_.reopens;
  NotifySubscribers();  // Announces state_u = open to flagged subscribers.
  if (scc_.size() > 1) {
    if (IsRingLeader()) {
      last_round_.reset();
      if (!token_running_) LeaderStartPass();
    } else {
      wire::Reopen r{session_};
      peer_->Send(*scc_.begin(), net::MessageType::kReopen, r.Encode(),
                  /*urgent=*/true);
    }
  }
}

// --- SCC token ring ---------------------------------------------------------

bool UpdateEngine::IsRingLeader() const {
  return !scc_.empty() && *scc_.begin() == peer_->id();
}

NodeId UpdateEngine::RingSuccessor(NodeId member) const {
  auto it = scc_.upper_bound(member);
  return it == scc_.end() ? *scc_.begin() : *it;
}

void UpdateEngine::LeaderStartPass() {
  if (scc_.size() <= 1) return;
  token_running_ = true;
  wire::Token tok;
  tok.session = session_;
  tok.leader = peer_->id();
  tok.pass = next_pass_++;
  tok.sum_sent = intra_sent_;
  tok.sum_recv = intra_recv_;
  tok.all_ready = state_ != State::kIdle && ExternallyReady();
  ++stats_.token_passes;
  // Token-ring traffic is urgent: a token parked behind a data batch delays
  // termination detection for the whole SCC.
  peer_->Send(RingSuccessor(peer_->id()), net::MessageType::kToken,
              tok.Encode(), /*urgent=*/true);
}

void UpdateEngine::OnToken(NodeId from, const wire::Token& msg) {
  (void)from;
  if (msg.leader == peer_->id()) {
    LeaderEvaluate(msg);
    return;
  }
  // A node whose SCC view is out of step with the ring (e.g. freshly
  // restarted, topology not yet re-discovered) cannot route the token; its
  // "successor" may be unknown or itself. Drop it instead of looping — the
  // ring stalls until rediscovery or a new session restores routing.
  if (scc_.size() <= 1) return;
  NodeId next = RingSuccessor(peer_->id());
  if (next == peer_->id()) return;
  wire::Token tok = msg;
  tok.sum_sent += intra_sent_;
  tok.sum_recv += intra_recv_;
  tok.all_ready = tok.all_ready && state_ != State::kIdle && ExternallyReady();
  peer_->Send(next, net::MessageType::kToken, tok.Encode(), /*urgent=*/true);
}

void UpdateEngine::LeaderEvaluate(const wire::Token& token) {
  // Mattern four-counter check: two consecutive passes observed identical
  // monotone counters with sent == recv, and every member externally ready.
  bool repeated = last_round_.has_value() &&
                  last_round_->sum_sent == token.sum_sent &&
                  last_round_->sum_recv == token.sum_recv &&
                  last_round_->all_ready == token.all_ready;
  if (repeated && token.all_ready && token.sum_sent == token.sum_recv) {
    wire::SccClosed done{session_};
    for (NodeId m : scc_) {
      if (m != peer_->id()) {
        peer_->Send(m, net::MessageType::kSccClosed, done.Encode(),
                    /*urgent=*/true);
      }
    }
    CloseSelf(/*notify_in_scc=*/false);
    last_round_.reset();
    token_running_ = false;
    return;
  }
  last_round_ = token;
  if (repeated) {
    // Two identical non-quiescent rounds: the ring alone cannot make
    // progress. Either receives were lost to a peer crash (sent != recv — a
    // counted message never outlives a full ring pass), or a member is not
    // externally ready and only non-ring traffic can change that (e.g. a
    // freshly restarted member still idle, whose balanced counters died with
    // it). Pause instead of passing tokens forever; fresh intra-SCC activity
    // at the leader, a member's readiness poke (Reopen), or a new session's
    // clean counters resume detection.
    token_running_ = false;
    return;
  }
  LeaderStartPass();
}

void UpdateEngine::OnSccClosed(NodeId from, const wire::SccClosed& msg) {
  (void)from;
  (void)msg;
  CloseSelf(/*notify_in_scc=*/false);
}

void UpdateEngine::OnReopen(NodeId from, const wire::Reopen& msg) {
  (void)from;
  (void)msg;
  if (!IsRingLeader()) return;
  last_round_.reset();
  if (!token_running_) LeaderStartPass();
}

void UpdateEngine::CountIntraSccSend(NodeId to) {
  if (scc_.size() > 1 && scc_.count(to)) {
    ++intra_sent_;
    ResumeRingIfPaused();
  }
}

void UpdateEngine::CountIntraSccRecv(NodeId from) {
  if (scc_.size() > 1 && scc_.count(from)) {
    ++intra_recv_;
    ResumeRingIfPaused();
  }
}

void UpdateEngine::ResumeRingIfPaused() {
  if (token_running_ || !IsRingLeader() || state_ == State::kIdle) return;
  last_round_.reset();
  LeaderStartPass();
}

// --- Query-dependent update --------------------------------------------------

void UpdateEngine::StartPartial(uint64_t session,
                                const std::set<std::string>& relations) {
  session_ = session;
  partial_mode_ = true;
  state_ = State::kOpen;
  ForwardPartial(relations, {});
}

void UpdateEngine::OnPartialUpdate(NodeId from, const wire::PartialUpdate& msg) {
  (void)from;
  // A4's loop guard: a node already on the query path does not recurse.
  if (Contains(msg.sn_path, peer_->id())) return;
  if (state_ == State::kIdle) session_ = msg.session;
  ForwardPartial(msg.relations, msg.sn_path);
}

void UpdateEngine::ForwardPartial(const std::set<std::string>& relations,
                                  std::vector<NodeId> sn_path) {
  sn_path.push_back(peer_->id());
  for (const CoordinationRule& r : peer_->rules()) {
    bool relevant = false;
    for (const rel::Atom& a : r.head_atoms) {
      if (relations.count(a.relation)) relevant = true;
    }
    if (!relevant) continue;
    if (!partial_rules_forwarded_.insert(r.id).second) continue;
    RuleRuntime* rr = EnsureRuleRuntime(r);
    SubscribeParts(*rr);
    for (size_t p = 0; p < r.body.size(); ++p) {
      NodeId target = r.body[p].node;
      if (Contains(sn_path, target)) continue;  // ID ∈ SN: stop propagation.
      wire::PartialUpdate fwd;
      fwd.session = session_;
      for (const rel::Atom& a : r.body[p].atoms) {
        fwd.relations.insert(a.relation);
      }
      fwd.sn_path = sn_path;
      peer_->Send(target, net::MessageType::kPartialUpdate, fwd.Encode());
    }
  }
}

// --- Dynamics (Section 4) ----------------------------------------------------

void UpdateEngine::OnAddRule(NodeId from, const wire::AddRuleChange& msg) {
  (void)from;
  if (msg.rule.head_node != peer_->id()) {
    P2PDB_LOG(kWarn) << "addRule notification for foreign head, node "
                     << peer_->id();
    return;
  }
  for (const CoordinationRule& r : peer_->rules()) {
    if (r.id == msg.rule.id) return;  // Duplicate notification.
  }
  peer_->mutable_rules()->push_back(msg.rule);
  peer_->LogRuleChange(wire::RuleChangeRecord::Add(msg.rule));
  if (state_ == State::kIdle) return;  // Will subscribe when a session starts.
  RuleRuntime* rr = EnsureRuleRuntime(msg.rule);
  if (state_ == State::kClosed) ReopenSelf();
  // Extend the session to the new sources (they may not have been reachable
  // at flood time), then subscribe.
  if (!partial_mode_) {
    wire::UpdateStart start{session_};
    for (const CoordinationRule::BodyPart& p : msg.rule.body) {
      peer_->Send(p.node, net::MessageType::kUpdateStart, start.Encode());
    }
  }
  SubscribeParts(*rr);
}

void UpdateEngine::OnDeleteRule(NodeId from, const wire::DeleteRuleChange& msg) {
  (void)from;
  auto it = rule_runtimes_.find(msg.rule_id);
  // Remove from the peer's rule list regardless of session state.
  auto* rules = peer_->mutable_rules();
  for (auto rit = rules->begin(); rit != rules->end(); ++rit) {
    if (rit->id == msg.rule_id) {
      rules->erase(rit);
      peer_->LogRuleChange(wire::RuleChangeRecord::Delete(msg.rule_id));
      break;
    }
  }
  if (it == rule_runtimes_.end()) return;
  wire::Unsubscribe unsub;
  unsub.session = session_;
  unsub.rule_id = msg.rule_id;
  for (size_t p = 0; p < it->second.rule.body.size(); ++p) {
    unsub.part = static_cast<uint32_t>(p);
    NodeId target = it->second.rule.body[p].node;
    CountIntraSccSend(target);
    peer_->Send(target, net::MessageType::kUnsubscribe, unsub.Encode());
  }
  rule_runtimes_.erase(it);
  // Dropping a rule can unblock closure (fewer parts to wait for) — in a
  // non-trivial SCC that means waking a ring paused on this node's account.
  PokeRingIfReady();
  MaybeCloseTrivial();
}

void UpdateEngine::OnUnsubscribe(NodeId from, const wire::Unsubscribe& msg) {
  CountIntraSccRecv(from);
  for (auto it = subscriptions_.begin(); it != subscriptions_.end(); ++it) {
    if (it->subscriber == from && it->rule_id == msg.rule_id &&
        it->part == msg.part) {
      subscriptions_.erase(it);
      return;
    }
  }
}

}  // namespace p2pdb::core
