#include "src/core/wire.h"

#include "src/relational/codec.h"

namespace p2pdb::core::wire {

namespace {

// Small helpers to keep payload Encode/Decode bodies uniform.

std::vector<uint8_t> Finish(const Writer& w) { return w.bytes(); }

#define WIRE_TRY(lhs, expr)          \
  auto lhs##_res = (expr);           \
  if (!lhs##_res.ok()) return lhs##_res.status(); \
  auto lhs = std::move(*lhs##_res)

}  // namespace


void EncodeTerm(const rel::Term& t, Writer* w) {
  w->PutU8(t.is_var() ? 0 : 1);
  if (t.is_var()) {
    w->PutString(t.var);
  } else {
    EncodeValue(t.constant, w);
  }
}

Result<rel::Term> DecodeTerm(Reader* r) {
  WIRE_TRY(tag, r->GetU8());
  if (tag == 0) {
    WIRE_TRY(name, r->GetString());
    return rel::Term::Var(std::move(name));
  }
  WIRE_TRY(v, DecodeValue(r));
  return rel::Term::Const(std::move(v));
}

void EncodeAtom(const rel::Atom& a, Writer* w) {
  w->PutString(a.relation);
  w->PutVarint(a.terms.size());
  for (const rel::Term& t : a.terms) EncodeTerm(t, w);
}

Result<rel::Atom> DecodeAtom(Reader* r) {
  rel::Atom out;
  WIRE_TRY(name, r->GetString());
  out.relation = std::move(name);
  WIRE_TRY(n, r->GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    WIRE_TRY(t, DecodeTerm(r));
    out.terms.push_back(std::move(t));
  }
  return out;
}

void EncodeBuiltin(const rel::Builtin& b, Writer* w) {
  w->PutU8(static_cast<uint8_t>(b.op));
  EncodeTerm(b.lhs, w);
  EncodeTerm(b.rhs, w);
}

Result<rel::Builtin> DecodeBuiltin(Reader* r) {
  rel::Builtin out;
  WIRE_TRY(op, r->GetU8());
  if (op > static_cast<uint8_t>(rel::BuiltinOp::kGe)) {
    return Status::ParseError("bad builtin op");
  }
  out.op = static_cast<rel::BuiltinOp>(op);
  WIRE_TRY(lhs, DecodeTerm(r));
  out.lhs = std::move(lhs);
  WIRE_TRY(rhs, DecodeTerm(r));
  out.rhs = std::move(rhs);
  return out;
}

void EncodeQuery(const rel::ConjunctiveQuery& q, Writer* w) {
  w->PutVarint(q.head_vars.size());
  for (const std::string& v : q.head_vars) w->PutString(v);
  w->PutVarint(q.atoms.size());
  for (const rel::Atom& a : q.atoms) EncodeAtom(a, w);
  w->PutVarint(q.builtins.size());
  for (const rel::Builtin& b : q.builtins) EncodeBuiltin(b, w);
}

Result<rel::ConjunctiveQuery> DecodeQuery(Reader* r) {
  rel::ConjunctiveQuery out;
  WIRE_TRY(nv, r->GetVarint());
  for (uint64_t i = 0; i < nv; ++i) {
    WIRE_TRY(v, r->GetString());
    out.head_vars.push_back(std::move(v));
  }
  WIRE_TRY(na, r->GetVarint());
  for (uint64_t i = 0; i < na; ++i) {
    WIRE_TRY(a, DecodeAtom(r));
    out.atoms.push_back(std::move(a));
  }
  WIRE_TRY(nb, r->GetVarint());
  for (uint64_t i = 0; i < nb; ++i) {
    WIRE_TRY(b, DecodeBuiltin(r));
    out.builtins.push_back(std::move(b));
  }
  return out;
}

void EncodeRule(const CoordinationRule& rule, Writer* w) {
  w->PutString(rule.id);
  w->PutU32(rule.head_node);
  w->PutVarint(rule.head_atoms.size());
  for (const rel::Atom& a : rule.head_atoms) EncodeAtom(a, w);
  w->PutVarint(rule.body.size());
  for (const CoordinationRule::BodyPart& p : rule.body) {
    w->PutU32(p.node);
    w->PutVarint(p.atoms.size());
    for (const rel::Atom& a : p.atoms) EncodeAtom(a, w);
    w->PutVarint(p.builtins.size());
    for (const rel::Builtin& b : p.builtins) EncodeBuiltin(b, w);
  }
  w->PutVarint(rule.cross_builtins.size());
  for (const rel::Builtin& b : rule.cross_builtins) EncodeBuiltin(b, w);
  rule.domain_map.Encode(w);
}

Result<CoordinationRule> DecodeRule(Reader* r) {
  CoordinationRule out;
  WIRE_TRY(id, r->GetString());
  out.id = std::move(id);
  WIRE_TRY(head, r->GetU32());
  out.head_node = head;
  WIRE_TRY(nh, r->GetVarint());
  for (uint64_t i = 0; i < nh; ++i) {
    WIRE_TRY(a, DecodeAtom(r));
    out.head_atoms.push_back(std::move(a));
  }
  WIRE_TRY(np, r->GetVarint());
  for (uint64_t i = 0; i < np; ++i) {
    CoordinationRule::BodyPart part;
    WIRE_TRY(node, r->GetU32());
    part.node = node;
    WIRE_TRY(na, r->GetVarint());
    for (uint64_t j = 0; j < na; ++j) {
      WIRE_TRY(a, DecodeAtom(r));
      part.atoms.push_back(std::move(a));
    }
    WIRE_TRY(nb, r->GetVarint());
    for (uint64_t j = 0; j < nb; ++j) {
      WIRE_TRY(b, DecodeBuiltin(r));
      part.builtins.push_back(std::move(b));
    }
    out.body.push_back(std::move(part));
  }
  WIRE_TRY(nc, r->GetVarint());
  for (uint64_t i = 0; i < nc; ++i) {
    WIRE_TRY(b, DecodeBuiltin(r));
    out.cross_builtins.push_back(std::move(b));
  }
  WIRE_TRY(map, DomainMap::Decode(r));
  out.domain_map = std::move(map);
  return out;
}

void EncodeEdges(const std::set<Edge>& edges, Writer* w) {
  w->PutVarint(edges.size());
  for (const Edge& e : edges) {
    w->PutU32(e.first);
    w->PutU32(e.second);
  }
}

Result<std::set<Edge>> DecodeEdges(Reader* r) {
  WIRE_TRY(n, r->GetVarint());
  std::set<Edge> out;
  for (uint64_t i = 0; i < n; ++i) {
    WIRE_TRY(from, r->GetU32());
    WIRE_TRY(to, r->GetU32());
    out.insert({from, to});
  }
  return out;
}

// --- Payloads ----------------------------------------------------------------

std::vector<uint8_t> DiscoverRequest::Encode() const {
  Writer w;
  w.PutU32(origin);
  return Finish(w);
}

Result<DiscoverRequest> DiscoverRequest::Decode(ByteView bytes) {
  Reader r(bytes);
  DiscoverRequest out;
  WIRE_TRY(origin, r.GetU32());
  out.origin = origin;
  return out;
}

std::vector<uint8_t> DiscoverAnswer::Encode() const {
  Writer w;
  w.PutU32(origin);
  w.PutU8(visited ? 1 : 0);
  EncodeEdges(edges, &w);
  return Finish(w);
}

Result<DiscoverAnswer> DiscoverAnswer::Decode(ByteView bytes) {
  Reader r(bytes);
  DiscoverAnswer out;
  WIRE_TRY(origin, r.GetU32());
  out.origin = origin;
  WIRE_TRY(visited, r.GetU8());
  out.visited = visited != 0;
  WIRE_TRY(edges, DecodeEdges(&r));
  out.edges = std::move(edges);
  return out;
}

std::vector<uint8_t> DiscoverClosure::Encode() const {
  Writer w;
  w.PutU32(origin);
  EncodeEdges(edges, &w);
  return Finish(w);
}

Result<DiscoverClosure> DiscoverClosure::Decode(ByteView bytes) {
  Reader r(bytes);
  DiscoverClosure out;
  WIRE_TRY(origin, r.GetU32());
  out.origin = origin;
  WIRE_TRY(edges, DecodeEdges(&r));
  out.edges = std::move(edges);
  return out;
}

std::vector<uint8_t> UpdateStart::Encode() const {
  Writer w;
  w.PutU64(session);
  return Finish(w);
}

Result<UpdateStart> UpdateStart::Decode(ByteView bytes) {
  Reader r(bytes);
  UpdateStart out;
  WIRE_TRY(session, r.GetU64());
  out.session = session;
  return out;
}

std::vector<uint8_t> QueryRequest::Encode() const {
  Writer w;
  w.PutU64(session);
  w.PutString(rule_id);
  w.PutU32(part);
  EncodeQuery(query, &w);
  return Finish(w);
}

Result<QueryRequest> QueryRequest::Decode(ByteView bytes) {
  Reader r(bytes);
  QueryRequest out;
  WIRE_TRY(session, r.GetU64());
  out.session = session;
  WIRE_TRY(rule_id, r.GetString());
  out.rule_id = std::move(rule_id);
  WIRE_TRY(part, r.GetU32());
  out.part = part;
  WIRE_TRY(query, DecodeQuery(&r));
  out.query = std::move(query);
  return out;
}

std::vector<uint8_t> QueryAnswer::Encode() const {
  Writer w;
  w.PutU64(session);
  w.PutString(rule_id);
  w.PutU32(part);
  w.PutU8(is_delta ? 1 : 0);
  w.PutU8(source_closed ? 1 : 0);
  EncodeTupleSet(tuples, &w);
  return Finish(w);
}

Result<QueryAnswer> QueryAnswer::Decode(ByteView bytes) {
  Reader r(bytes);
  QueryAnswer out;
  WIRE_TRY(session, r.GetU64());
  out.session = session;
  WIRE_TRY(rule_id, r.GetString());
  out.rule_id = std::move(rule_id);
  WIRE_TRY(part, r.GetU32());
  out.part = part;
  WIRE_TRY(is_delta, r.GetU8());
  out.is_delta = is_delta != 0;
  WIRE_TRY(closed, r.GetU8());
  out.source_closed = closed != 0;
  WIRE_TRY(tuples, DecodeTupleSet(&r));
  out.tuples = std::move(tuples);
  return out;
}

std::vector<uint8_t> Unsubscribe::Encode() const {
  Writer w;
  w.PutU64(session);
  w.PutString(rule_id);
  w.PutU32(part);
  return Finish(w);
}

Result<Unsubscribe> Unsubscribe::Decode(ByteView bytes) {
  Reader r(bytes);
  Unsubscribe out;
  WIRE_TRY(session, r.GetU64());
  out.session = session;
  WIRE_TRY(rule_id, r.GetString());
  out.rule_id = std::move(rule_id);
  WIRE_TRY(part, r.GetU32());
  out.part = part;
  return out;
}

std::vector<uint8_t> PartialUpdate::Encode() const {
  Writer w;
  w.PutU64(session);
  w.PutVarint(relations.size());
  for (const std::string& rel_name : relations) w.PutString(rel_name);
  w.PutVarint(sn_path.size());
  for (NodeId n : sn_path) w.PutU32(n);
  return Finish(w);
}

Result<PartialUpdate> PartialUpdate::Decode(ByteView bytes) {
  Reader r(bytes);
  PartialUpdate out;
  WIRE_TRY(session, r.GetU64());
  out.session = session;
  WIRE_TRY(nr, r.GetVarint());
  for (uint64_t i = 0; i < nr; ++i) {
    WIRE_TRY(name, r.GetString());
    out.relations.insert(std::move(name));
  }
  WIRE_TRY(np, r.GetVarint());
  for (uint64_t i = 0; i < np; ++i) {
    WIRE_TRY(n, r.GetU32());
    out.sn_path.push_back(n);
  }
  return out;
}

std::vector<uint8_t> Token::Encode() const {
  Writer w;
  w.PutU64(session);
  w.PutU32(leader);
  w.PutU64(pass);
  w.PutU64(sum_sent);
  w.PutU64(sum_recv);
  w.PutU8(all_ready ? 1 : 0);
  return Finish(w);
}

Result<Token> Token::Decode(ByteView bytes) {
  Reader r(bytes);
  Token out;
  WIRE_TRY(session, r.GetU64());
  out.session = session;
  WIRE_TRY(leader, r.GetU32());
  out.leader = leader;
  WIRE_TRY(pass, r.GetU64());
  out.pass = pass;
  WIRE_TRY(sum_sent, r.GetU64());
  out.sum_sent = sum_sent;
  WIRE_TRY(sum_recv, r.GetU64());
  out.sum_recv = sum_recv;
  WIRE_TRY(ready, r.GetU8());
  out.all_ready = ready != 0;
  return out;
}

std::vector<uint8_t> SccClosed::Encode() const {
  Writer w;
  w.PutU64(session);
  return Finish(w);
}

Result<SccClosed> SccClosed::Decode(ByteView bytes) {
  Reader r(bytes);
  SccClosed out;
  WIRE_TRY(session, r.GetU64());
  out.session = session;
  return out;
}

std::vector<uint8_t> Reopen::Encode() const {
  Writer w;
  w.PutU64(session);
  return Finish(w);
}

Result<Reopen> Reopen::Decode(ByteView bytes) {
  Reader r(bytes);
  Reopen out;
  WIRE_TRY(session, r.GetU64());
  out.session = session;
  return out;
}

std::vector<uint8_t> AddRuleChange::Encode() const {
  Writer w;
  EncodeRule(rule, &w);
  return Finish(w);
}

Result<AddRuleChange> AddRuleChange::Decode(ByteView bytes) {
  Reader r(bytes);
  AddRuleChange out;
  WIRE_TRY(rule, DecodeRule(&r));
  out.rule = std::move(rule);
  return out;
}

std::vector<uint8_t> DeleteRuleChange::Encode() const {
  Writer w;
  w.PutString(rule_id);
  return Finish(w);
}

Result<DeleteRuleChange> DeleteRuleChange::Decode(ByteView bytes) {
  Reader r(bytes);
  DeleteRuleChange out;
  WIRE_TRY(rule_id, r.GetString());
  out.rule_id = std::move(rule_id);
  return out;
}

RuleChangeRecord RuleChangeRecord::Add(CoordinationRule rule) {
  RuleChangeRecord out;
  out.kind = Kind::kAdd;
  out.rule = std::move(rule);
  return out;
}

RuleChangeRecord RuleChangeRecord::Delete(std::string rule_id) {
  RuleChangeRecord out;
  out.kind = Kind::kDelete;
  out.rule_id = std::move(rule_id);
  return out;
}

std::vector<uint8_t> RuleChangeRecord::Encode() const {
  Writer w;
  w.PutU8(static_cast<uint8_t>(kind));
  if (kind == Kind::kAdd) {
    EncodeRule(rule, &w);
  } else {
    w.PutString(rule_id);
  }
  return Finish(w);
}

Result<RuleChangeRecord> RuleChangeRecord::Decode(ByteView bytes) {
  Reader r(bytes);
  RuleChangeRecord out;
  WIRE_TRY(kind, r.GetU8());
  if (kind == static_cast<uint8_t>(Kind::kAdd)) {
    out.kind = Kind::kAdd;
    WIRE_TRY(rule, DecodeRule(&r));
    out.rule = std::move(rule);
  } else if (kind == static_cast<uint8_t>(Kind::kDelete)) {
    out.kind = Kind::kDelete;
    WIRE_TRY(rule_id, r.GetString());
    out.rule_id = std::move(rule_id);
  } else {
    return Status::ParseError("unknown rule-change kind " +
                              std::to_string(kind));
  }
  return out;
}

}  // namespace p2pdb::core::wire
