// Control-plane wire protocol: the typed payloads a fleet controller (the
// super-peer process, or a driver like p2pdb_fleetctl) exchanges with remote
// peer daemons so it can drive them exactly the way an in-process Session
// drives local Peer objects. The in-process control surface — construct,
// RunDiscovery, RunUpdate, CollectStatistics — becomes an explicit protocol:
//
//   kBootstrap      controller -> peer   session handshake (name, schema,
//                                        coordination rules, endpoint table)
//   kBootstrapAck   peer -> controller   accept/reject with reason
//   kStartDiscovery controller -> peer   Peer::StartDiscovery
//   kStartUpdate    controller -> peer   Peer::StartUpdate(session)
//   kRefreshScc     controller -> peer   UpdateEngine::RefreshScc (rejoin)
//   kStatusRequest  controller -> peer   poll phase states + statistics
//   kStatusReport   peer -> controller   the paper's Section-5 statistics row
//   kDumpRequest    controller -> peer   fetch the full local database
//   kDumpReply      peer -> controller   SerializeDatabase bytes
//   kShutdown       controller -> peer   graceful daemon exit
//
// All control traffic is urgent (net::Message::urgent): it bypasses the
// transport's data-plane batching, so driving a fleet never queues behind an
// update's coalesced frames. Payloads follow the same encode/decode contract
// as the protocol payloads in core/wire.h: decoded whole or rejected.
#ifndef P2PDB_CORE_CONTROL_H_
#define P2PDB_CORE_CONTROL_H_

#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/core/wire.h"
#include "src/relational/schema.h"
#include "src/util/ids.h"
#include "src/util/serde.h"
#include "src/util/status.h"

namespace p2pdb::core::wire {

/// One row of the fleet endpoint table ("node host:port" on disk).
struct EndpointEntry {
  NodeId node = kNoNode;
  std::string host;
  uint16_t port = 0;

  bool operator==(const EndpointEntry& other) const {
    return node == other.node && host == other.host && port == other.port;
  }
};

/// Session bootstrap handshake, controller -> peer. Carries everything the
/// in-process Session constructor installs into a peer: its identity (id and
/// name, cross-checked against the daemon's config file), its relation
/// schemas (drift check against the locally parsed system file), the
/// coordination rules headed at it, and the fleet endpoint table. A daemon
/// rejects a bootstrap whose identity or schema disagrees with its config —
/// the two provisioning paths (config file, wire handshake) must agree.
struct SessionBootstrap {
  /// Controller-chosen epoch echoed in every reply, so a driver can discard
  /// stale replies from an earlier incarnation of itself.
  uint64_t epoch = 0;
  NodeId node = kNoNode;
  std::string name;
  NodeId super_peer = 0;
  std::vector<rel::RelationSchema> schema;
  std::vector<CoordinationRule> rules;
  std::vector<EndpointEntry> endpoints;

  std::vector<uint8_t> Encode() const;
  static Result<SessionBootstrap> Decode(ByteView bytes);
};

/// Bootstrap outcome, peer -> controller.
struct BootstrapAck {
  uint64_t epoch = 0;
  NodeId node = kNoNode;
  std::string name;
  bool accepted = false;
  std::string error;  // Empty when accepted.

  std::vector<uint8_t> Encode() const;
  static Result<BootstrapAck> Decode(ByteView bytes);
};

/// Peer::StartDiscovery, on the wire.
struct ControlStartDiscovery {
  uint64_t epoch = 0;

  std::vector<uint8_t> Encode() const;
  static Result<ControlStartDiscovery> Decode(ByteView bytes);
};

/// Peer::StartUpdate(session), on the wire (sent to the super-peer; the
/// update itself then floods peer-to-peer as kUpdateStart).
struct ControlStartUpdate {
  uint64_t epoch = 0;
  uint64_t session = 0;

  std::vector<uint8_t> Encode() const;
  static Result<ControlStartUpdate> Decode(ByteView bytes);
};

/// UpdateEngine::RefreshScc, on the wire — after a rejoin's re-discovery the
/// controller refreshes every peer's SCC view before starting the next
/// update session (the in-process Session::Rediscover barrier).
struct ControlRefreshScc {
  uint64_t epoch = 0;

  std::vector<uint8_t> Encode() const;
  static Result<ControlRefreshScc> Decode(ByteView bytes);
};

/// Statistics poll, controller -> peer.
struct StatusRequest {
  uint64_t epoch = 0;

  std::vector<uint8_t> Encode() const;
  static Result<StatusRequest> Decode(ByteView bytes);
};

/// One peer's statistics row (the super-peer's Section-5 statistics duty):
/// phase states plus the update counters Session::CollectStatistics prints.
/// The driver declares fixpoint when every participant reports both phases
/// closed and two consecutive reports are identical.
struct StatusReport {
  uint64_t epoch = 0;
  NodeId node = kNoNode;
  std::string name;
  uint8_t state_discovery = 0;  // core::DiscoveryEngine::State
  uint8_t state_update = 0;     // core::UpdateEngine::State
  uint64_t tuples = 0;
  uint64_t tuples_inserted = 0;
  uint64_t joins_evaluated = 0;
  uint64_t answers_sent = 0;
  uint64_t token_passes = 0;
  uint64_t reopens = 0;

  bool operator==(const StatusReport& other) const;

  std::vector<uint8_t> Encode() const;
  static Result<StatusReport> Decode(ByteView bytes);
};

/// Database fetch, controller -> peer (convergence verification).
struct DumpRequest {
  uint64_t epoch = 0;

  std::vector<uint8_t> Encode() const;
  static Result<DumpRequest> Decode(ByteView bytes);
};

/// The peer's full local database (rel::SerializeDatabase bytes).
struct DumpReply {
  uint64_t epoch = 0;
  NodeId node = kNoNode;
  std::vector<uint8_t> database;

  std::vector<uint8_t> Encode() const;
  static Result<DumpReply> Decode(ByteView bytes);
};

/// Graceful daemon exit (fleet teardown without kill -9).
struct ControlShutdown {
  uint64_t epoch = 0;

  std::vector<uint8_t> Encode() const;
  static Result<ControlShutdown> Decode(ByteView bytes);
};

}  // namespace p2pdb::core::wire

#endif  // P2PDB_CORE_CONTROL_H_
