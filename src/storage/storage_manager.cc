#include "src/storage/storage_manager.h"

#include <chrono>
#include <filesystem>
#include <optional>

#include "src/obs/metrics.h"
#include "src/relational/codec.h"
#include "src/storage/checkpoint.h"
#include "src/util/serde.h"

namespace p2pdb::storage {

namespace {
/// Record kind tag, first byte of every WAL payload.
constexpr uint8_t kDeltaRecord = 1;
/// A dynamic rule change (addLink/deleteLink); the rest of the payload is the
/// core layer's opaque encoding.
constexpr uint8_t kRuleChangeRecord = 2;

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

std::vector<uint8_t> EncodeRuleChange(const std::vector<uint8_t>& record) {
  std::vector<uint8_t> payload;
  payload.reserve(1 + record.size());
  payload.push_back(kRuleChangeRecord);
  payload.insert(payload.end(), record.begin(), record.end());
  return payload;
}

/// A rule-change record's opaque body, or nullopt for any other kind.
std::optional<std::vector<uint8_t>> RuleChangeBody(
    const std::vector<uint8_t>& payload) {
  if (payload.empty() || payload[0] != kRuleChangeRecord) return std::nullopt;
  return std::vector<uint8_t>(payload.begin() + 1, payload.end());
}
}  // namespace

std::vector<uint8_t> EncodeDelta(const DeltaMap& delta) {
  Writer w;
  w.PutU8(kDeltaRecord);
  w.PutVarint(delta.size());
  for (const auto& [relation, tuples] : delta) {
    w.PutString(relation);
    rel::EncodeTupleSet(tuples, &w);
  }
  return w.bytes();
}

Result<DeltaMap> DecodeDelta(const std::vector<uint8_t>& payload) {
  Reader r(payload);
  auto kind = r.GetU8();
  if (!kind.ok()) return kind.status();
  if (*kind != kDeltaRecord) {
    return Status::ParseError("unknown WAL record kind " +
                              std::to_string(*kind));
  }
  auto relation_count = r.GetVarint();
  if (!relation_count.ok()) return relation_count.status();
  DeltaMap delta;
  for (uint64_t i = 0; i < *relation_count; ++i) {
    auto relation = r.GetString();
    if (!relation.ok()) return relation.status();
    auto tuples = rel::DecodeTupleSet(&r);
    if (!tuples.ok()) return tuples.status();
    delta[std::move(*relation)] = std::move(*tuples);
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in WAL record");
  return delta;
}

Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    const StorageOptions& options) {
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("cannot create storage directory " + options.dir +
                            ": " + ec.message());
  }
  std::vector<std::vector<uint8_t>> existing;
  auto wal = WalWriter::Open(WalPath(options.dir), options.sync,
                             options.group_commit, &existing);
  if (!wal.ok()) return wal.status();
  // Re-learn the retained rule changes from the records Open just scanned,
  // so a fresh process keeps carrying them across checkpoints.
  std::vector<std::vector<uint8_t>> rule_changes;
  for (const std::vector<uint8_t>& payload : existing) {
    if (auto body = RuleChangeBody(payload)) {
      rule_changes.push_back(std::move(*body));
    }
  }
  auto manager = std::unique_ptr<StorageManager>(
      new StorageManager(options, std::move(*wal), std::move(rule_changes)));
  // Records that survived a previous process are of unknown age; restart the
  // interval clock at open so they checkpoint within one interval from now.
  if (manager->wal_->size_bytes() > 0) {
    manager->wal_dirty_since_micros_ = manager->NowMicros();
  }
  return manager;
}

uint64_t StorageManager::NowMicros() const {
  if (options_.now_micros) return options_.now_micros();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status StorageManager::LogDelta(const DeltaMap& delta) {
  if (delta.empty()) return Status::OK();
  P2PDB_RETURN_IF_ERROR(wal_->Append(EncodeDelta(delta)));
  if (wal_dirty_since_micros_ == 0) wal_dirty_since_micros_ = NowMicros();
  return Status::OK();
}

Status StorageManager::LogRuleChange(const std::vector<uint8_t>& record) {
  P2PDB_RETURN_IF_ERROR(wal_->Append(EncodeRuleChange(record)));
  rule_changes_.push_back(record);
  if (wal_dirty_since_micros_ == 0) wal_dirty_since_micros_ = NowMicros();
  return Status::OK();
}

Status StorageManager::ResetRuleChanges(
    std::vector<std::vector<uint8_t>> records) {
  // Takes effect in the WAL at the next Checkpoint (which rewrites the
  // retained history after truncation); until then the uncompacted records
  // already on disk remain authoritative and replay to the same rule set.
  rule_changes_ = std::move(records);
  return Status::OK();
}

Status StorageManager::EnsureBase(const rel::Database& db) {
  if (CheckpointExists(options_.dir)) return Status::OK();
  return Checkpoint(db);
}

bool StorageManager::HasBase() const { return CheckpointExists(options_.dir); }

Status StorageManager::MaybeCheckpoint(const rel::Database& db) {
  if (wal_->size_bytes() >= options_.checkpoint_wal_bytes) {
    return Checkpoint(db);
  }
  // Time trigger: the log is small but its oldest record has aged past the
  // interval, so fold it in anyway (bounded recovery replay for peers whose
  // write rate never reaches the size threshold).
  if (options_.checkpoint_interval.count() > 0 &&
      wal_dirty_since_micros_ != 0 &&
      NowMicros() - wal_dirty_since_micros_ >=
          static_cast<uint64_t>(options_.checkpoint_interval.count())) {
    return Checkpoint(db);
  }
  return Status::OK();
}

Status StorageManager::Checkpoint(const rel::Database& db) {
  auto start = std::chrono::steady_clock::now();
  P2PDB_RETURN_IF_ERROR(SaveCheckpoint(db, options_.dir));
  static obs::Histogram* duration =
      obs::Registry::Global().GetHistogram("storage.checkpoint_micros");
  duration->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  ++checkpoints_taken_;
  // The snapshot holds only the database; the rule-change history rides into
  // the fresh log atomically with the truncation (Reset publishes by rename,
  // so no crash window can lose the records).
  std::vector<std::vector<uint8_t>> retained;
  retained.reserve(rule_changes_.size());
  for (const std::vector<uint8_t>& record : rule_changes_) {
    retained.push_back(EncodeRuleChange(record));
  }
  P2PDB_RETURN_IF_ERROR(wal_->Reset(retained));
  // The checkpoint covers everything the interval clock was timing; the
  // re-appended rule history is already durable in the fresh log, so the
  // clock restarts only when the next record lands.
  wal_dirty_since_micros_ = 0;
  return Status::OK();
}

Result<rel::Database> StorageManager::Recover(RecoveryInfo* info) {
  RecoveryInfo local;
  RecoveryInfo* out = info != nullptr ? info : &local;
  *out = RecoveryInfo{};

  auto checkpoint = LoadCheckpoint(options_.dir);
  if (!checkpoint.ok()) return checkpoint.status();
  out->had_checkpoint = true;
  rel::Database db = std::move(*checkpoint);

  auto wal = ReadWalFile(WalPath(options_.dir));
  if (!wal.ok()) return wal.status();
  out->wal_bytes_scanned = wal->valid_bytes;
  out->wal_tail_truncated = wal->tail_corrupt;
  for (const std::vector<uint8_t>& payload : wal->records) {
    if (auto body = RuleChangeBody(payload)) {
      out->rule_changes.push_back(std::move(*body));
      ++out->wal_records_replayed;
      continue;
    }
    auto delta = DecodeDelta(payload);
    if (!delta.ok()) return delta.status();
    for (const auto& [relation, tuples] : *delta) {
      auto target = db.GetMutable(relation);
      if (!target.ok()) {
        return Status::Internal("WAL delta for relation '" + relation +
                                "' absent from the checkpoint");
      }
      for (const rel::Tuple& t : tuples) {
        auto inserted = (*target)->Insert(t);
        if (!inserted.ok()) return inserted.status();
      }
    }
    ++out->wal_records_replayed;
  }
  out->tuples_recovered = db.TotalTuples();
  return db;
}

}  // namespace p2pdb::storage
