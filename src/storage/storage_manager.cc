#include "src/storage/storage_manager.h"

#include <filesystem>

#include "src/relational/codec.h"
#include "src/storage/checkpoint.h"
#include "src/util/serde.h"

namespace p2pdb::storage {

namespace {
/// Record kind tag, first byte of every WAL payload (room for future kinds,
/// e.g. rule changes or compaction markers).
constexpr uint8_t kDeltaRecord = 1;

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }
}  // namespace

std::vector<uint8_t> EncodeDelta(const DeltaMap& delta) {
  Writer w;
  w.PutU8(kDeltaRecord);
  w.PutVarint(delta.size());
  for (const auto& [relation, tuples] : delta) {
    w.PutString(relation);
    rel::EncodeTupleSet(tuples, &w);
  }
  return w.bytes();
}

Result<DeltaMap> DecodeDelta(const std::vector<uint8_t>& payload) {
  Reader r(payload);
  auto kind = r.GetU8();
  if (!kind.ok()) return kind.status();
  if (*kind != kDeltaRecord) {
    return Status::ParseError("unknown WAL record kind " +
                              std::to_string(*kind));
  }
  auto relation_count = r.GetVarint();
  if (!relation_count.ok()) return relation_count.status();
  DeltaMap delta;
  for (uint64_t i = 0; i < *relation_count; ++i) {
    auto relation = r.GetString();
    if (!relation.ok()) return relation.status();
    auto tuples = rel::DecodeTupleSet(&r);
    if (!tuples.ok()) return tuples.status();
    delta[std::move(*relation)] = std::move(*tuples);
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in WAL record");
  return delta;
}

Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    const StorageOptions& options) {
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("cannot create storage directory " + options.dir +
                            ": " + ec.message());
  }
  auto wal = WalWriter::Open(WalPath(options.dir), options.sync);
  if (!wal.ok()) return wal.status();
  return std::unique_ptr<StorageManager>(
      new StorageManager(options, std::move(*wal)));
}

Status StorageManager::LogDelta(const DeltaMap& delta) {
  if (delta.empty()) return Status::OK();
  return wal_->Append(EncodeDelta(delta));
}

Status StorageManager::EnsureBase(const rel::Database& db) {
  if (CheckpointExists(options_.dir)) return Status::OK();
  return Checkpoint(db);
}

Status StorageManager::MaybeCheckpoint(const rel::Database& db) {
  if (wal_->size_bytes() < options_.checkpoint_wal_bytes) return Status::OK();
  return Checkpoint(db);
}

Status StorageManager::Checkpoint(const rel::Database& db) {
  P2PDB_RETURN_IF_ERROR(SaveCheckpoint(db, options_.dir));
  ++checkpoints_taken_;
  return wal_->Reset();
}

Result<rel::Database> StorageManager::Recover(RecoveryInfo* info) {
  RecoveryInfo local;
  RecoveryInfo* out = info != nullptr ? info : &local;
  *out = RecoveryInfo{};

  auto checkpoint = LoadCheckpoint(options_.dir);
  if (!checkpoint.ok()) return checkpoint.status();
  out->had_checkpoint = true;
  rel::Database db = std::move(*checkpoint);

  auto wal = ReadWalFile(WalPath(options_.dir));
  if (!wal.ok()) return wal.status();
  out->wal_bytes_scanned = wal->valid_bytes;
  out->wal_tail_truncated = wal->tail_corrupt;
  for (const std::vector<uint8_t>& payload : wal->records) {
    auto delta = DecodeDelta(payload);
    if (!delta.ok()) return delta.status();
    for (const auto& [relation, tuples] : *delta) {
      auto target = db.GetMutable(relation);
      if (!target.ok()) {
        return Status::Internal("WAL delta for relation '" + relation +
                                "' absent from the checkpoint");
      }
      for (const rel::Tuple& t : tuples) {
        auto inserted = (*target)->Insert(t);
        if (!inserted.ok()) return inserted.status();
      }
    }
    ++out->wal_records_replayed;
  }
  out->tuples_recovered = db.TotalTuples();
  return db;
}

}  // namespace p2pdb::storage
