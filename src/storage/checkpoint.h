// Checkpoints: full database snapshots written atomically into a peer's
// storage directory. A checkpoint uses the relational/snapshot byte format
// (magic "P2DB") and is published by write-to-temp + fsync + rename, so a
// crash mid-checkpoint leaves the previous checkpoint intact. After a
// checkpoint the WAL records it covers are redundant and can be truncated.
#ifndef P2PDB_STORAGE_CHECKPOINT_H_
#define P2PDB_STORAGE_CHECKPOINT_H_

#include <string>

#include "src/relational/database.h"
#include "src/util/status.h"

namespace p2pdb::storage {

/// The checkpoint file inside a peer's storage directory.
std::string CheckpointPath(const std::string& dir);

bool CheckpointExists(const std::string& dir);

/// Atomically replaces the checkpoint in `dir` with a snapshot of `db`:
/// serializes to "checkpoint.tmp", fsyncs, renames over "checkpoint.p2db",
/// then fsyncs the directory so the rename itself is durable.
Status SaveCheckpoint(const rel::Database& db, const std::string& dir);

/// Loads the checkpoint in `dir`; NotFound when none has been written yet.
Result<rel::Database> LoadCheckpoint(const std::string& dir);

}  // namespace p2pdb::storage

#endif  // P2PDB_STORAGE_CHECKPOINT_H_
