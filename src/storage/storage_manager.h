// StorageManager: the durable Storage implementation — a per-peer directory
// holding one checkpoint plus a write-ahead log of the deltas applied since.
//
//   <dir>/checkpoint.p2db   last full snapshot (atomic rename publish)
//   <dir>/wal.log           CRC-framed deltas applied after that snapshot
//
// Appends go to the WAL; when the log outgrows `checkpoint_wal_bytes` the
// manager snapshots the live database and truncates the log. A crash between
// the snapshot publish and the log truncation merely leaves already-
// checkpointed deltas in the WAL — replay is a set-union, so recovery stays
// correct (idempotent), just momentarily redundant.
#ifndef P2PDB_STORAGE_STORAGE_MANAGER_H_
#define P2PDB_STORAGE_STORAGE_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/storage/storage.h"
#include "src/storage/wal.h"

namespace p2pdb::storage {

struct StorageOptions {
  /// Per-peer directory; created (with parents) by Open when missing.
  std::string dir;
  /// kSync fsyncs every WAL append and is the durable default; kNoSync only
  /// flushes to the OS — benches use it so measurements are not fsync-bound.
  SyncMode sync = SyncMode::kSync;
  /// Checkpoint and truncate the WAL once it grows past this many bytes.
  uint64_t checkpoint_wal_bytes = 4u << 20;
};

/// Encodes/decodes one WAL record payload: a tagged delta map.
std::vector<uint8_t> EncodeDelta(const DeltaMap& delta);
Result<DeltaMap> DecodeDelta(const std::vector<uint8_t>& payload);

class StorageManager : public Storage {
 public:
  /// Opens (or creates) the storage directory and its WAL; an existing log
  /// has any torn tail truncated before new appends.
  static Result<std::unique_ptr<StorageManager>> Open(
      const StorageOptions& options);

  Status LogDelta(const DeltaMap& delta) override;
  Status EnsureBase(const rel::Database& db) override;
  Status MaybeCheckpoint(const rel::Database& db) override;
  Status Checkpoint(const rel::Database& db) override;
  Result<rel::Database> Recover(RecoveryInfo* info) override;

  const StorageOptions& options() const { return options_; }
  uint64_t wal_bytes() const { return wal_->size_bytes(); }
  uint64_t checkpoints_taken() const { return checkpoints_taken_; }

 private:
  StorageManager(StorageOptions options, std::unique_ptr<WalWriter> wal)
      : options_(std::move(options)), wal_(std::move(wal)) {}

  StorageOptions options_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t checkpoints_taken_ = 0;
};

}  // namespace p2pdb::storage

#endif  // P2PDB_STORAGE_STORAGE_MANAGER_H_
