// StorageManager: the durable Storage implementation — a per-peer directory
// holding one checkpoint plus a write-ahead log of the deltas applied since.
//
//   <dir>/checkpoint.p2db   last full snapshot (atomic rename publish)
//   <dir>/wal.log           CRC-framed records: deltas applied after that
//                           snapshot, plus dynamic rule changes (which are
//                           re-appended across truncations — the snapshot
//                           format does not store rules)
//
// Appends go to the WAL; when the log outgrows `checkpoint_wal_bytes` — or
// its oldest uncheckpointed record ages past `checkpoint_interval` — the
// manager snapshots the live database and truncates the log. A crash between
// the snapshot publish and the log truncation merely leaves already-
// checkpointed deltas in the WAL — replay is a set-union, so recovery stays
// correct (idempotent), just momentarily redundant.
#ifndef P2PDB_STORAGE_STORAGE_MANAGER_H_
#define P2PDB_STORAGE_STORAGE_MANAGER_H_

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/storage.h"
#include "src/storage/wal.h"

namespace p2pdb::storage {

struct StorageOptions {
  /// Per-peer directory; created (with parents) by Open when missing.
  std::string dir;
  /// kSync fsyncs every WAL append and is the durable default; kNoSync only
  /// flushes to the OS — benches use it so measurements are not fsync-bound.
  SyncMode sync = SyncMode::kSync;
  /// Group commit for kSync (see GroupCommitOptions): a nonzero window
  /// coalesces appends into one fsync per window/batch.
  GroupCommitOptions group_commit;
  /// Checkpoint and truncate the WAL once it grows past this many bytes.
  uint64_t checkpoint_wal_bytes = 4u << 20;
  /// Also checkpoint when the oldest uncheckpointed WAL record is older than
  /// this, even below the size threshold — bounds replay time for peers that
  /// trickle small deltas. Zero disables the time trigger. Checked on the
  /// delta path (MaybeCheckpoint); there is no background timer thread, so
  /// a fully idle peer checkpoints at its next applied delta.
  std::chrono::microseconds checkpoint_interval{0};
  /// Clock for the time trigger, overridable so tests can pin it; defaults
  /// to std::chrono::steady_clock when unset.
  std::function<uint64_t()> now_micros;
};

/// Encodes/decodes one WAL record payload: a tagged delta map.
std::vector<uint8_t> EncodeDelta(const DeltaMap& delta);
Result<DeltaMap> DecodeDelta(const std::vector<uint8_t>& payload);

class StorageManager : public Storage {
 public:
  /// Opens (or creates) the storage directory and its WAL; an existing log
  /// has any torn tail truncated before new appends.
  static Result<std::unique_ptr<StorageManager>> Open(
      const StorageOptions& options);

  Status LogDelta(const DeltaMap& delta) override;
  Status LogRuleChange(const std::vector<uint8_t>& record) override;
  Status ResetRuleChanges(std::vector<std::vector<uint8_t>> records) override;
  Status EnsureBase(const rel::Database& db) override;
  bool HasBase() const override;
  Status MaybeCheckpoint(const rel::Database& db) override;
  Status Checkpoint(const rel::Database& db) override;
  Result<rel::Database> Recover(RecoveryInfo* info) override;

  const StorageOptions& options() const { return options_; }
  uint64_t wal_bytes() const { return wal_->size_bytes(); }
  uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  uint64_t wal_syncs() const { return wal_->syncs_performed(); }

 private:
  StorageManager(StorageOptions options, std::unique_ptr<WalWriter> wal,
                 std::vector<std::vector<uint8_t>> rule_changes)
      : options_(std::move(options)), wal_(std::move(wal)),
        rule_changes_(std::move(rule_changes)) {}

  uint64_t NowMicros() const;

  StorageOptions options_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t checkpoints_taken_ = 0;
  /// When the first record after the last checkpoint hit the WAL (0 = the
  /// log holds nothing newer than the checkpoint); drives the time trigger.
  uint64_t wal_dirty_since_micros_ = 0;
  /// Every rule-change record in the WAL (seeded from disk at Open): the
  /// checkpoint format stores only the database, so these are re-appended
  /// after each WAL truncation to keep the change history durable.
  std::vector<std::vector<uint8_t>> rule_changes_;
};

}  // namespace p2pdb::storage

#endif  // P2PDB_STORAGE_STORAGE_MANAGER_H_
