#include "src/storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/util/serde.h"

namespace p2pdb::storage {

namespace {

uint64_t MonotonicMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr uint32_t kWalMagic = 0x4c573250;  // "P2WL" little-endian.
constexpr uint32_t kWalVersion = 1;
constexpr size_t kHeaderBytes = 8;        // magic + version
constexpr size_t kRecordHeaderBytes = 8;  // length + crc

Status FsyncFile(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) {
    return Status::Internal("fflush failed for " + path);
  }
  if (::fsync(::fileno(f)) != 0) {
    return Status::Internal("fsync failed for " + path + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

std::vector<uint8_t> EncodeHeader() {
  Writer w;
  w.PutU32(kWalMagic);
  w.PutU32(kWalVersion);
  return w.bytes();
}

}  // namespace

Status FsyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Internal("cannot open directory " + dir + ": " +
                            std::strerror(errno));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsync failed for directory " + dir);
  }
  return Status::OK();
}

Result<WalContents> ReadWalFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::vector<uint8_t> bytes;
  uint8_t buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  std::fclose(f);

  if (bytes.size() < kHeaderBytes) {
    // A crash during WAL creation (or Reset) can leave a partial header:
    // torn tail at offset zero, not a foreign file. No records survive it.
    WalContents out;
    out.valid_bytes = 0;
    out.tail_corrupt = !bytes.empty();
    return out;
  }
  Reader header(bytes.data(), kHeaderBytes);
  if (*header.GetU32() != kWalMagic) {
    return Status::ParseError(path + " is not a p2pdb WAL");
  }
  if (*header.GetU32() != kWalVersion) {
    return Status::Unsupported("WAL format version in " + path);
  }

  WalContents out;
  size_t pos = kHeaderBytes;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordHeaderBytes) break;  // Torn record header.
    Reader r(bytes.data() + pos, kRecordHeaderBytes);
    uint32_t length = *r.GetU32();
    uint32_t crc = *r.GetU32();
    if (bytes.size() - pos - kRecordHeaderBytes < length) break;  // Torn body.
    const uint8_t* payload = bytes.data() + pos + kRecordHeaderBytes;
    if (Crc32(payload, length) != crc) break;  // Corrupt (torn write).
    out.records.emplace_back(payload, payload + length);
    pos += kRecordHeaderBytes + length;
  }
  out.valid_bytes = pos;
  out.tail_corrupt = pos < bytes.size();
  return out;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& path, SyncMode sync, GroupCommitOptions group_commit,
    std::vector<std::vector<uint8_t>>* existing_records) {
  if (existing_records != nullptr) existing_records->clear();
  uint64_t valid_bytes = kHeaderBytes;
  auto existing = ReadWalFile(path);
  if (existing.ok() && existing->valid_bytes >= kHeaderBytes) {
    valid_bytes = existing->valid_bytes;
    if (existing_records != nullptr) {
      *existing_records = std::move(existing->records);
    }
    if (existing->tail_corrupt &&
        ::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
      return Status::Internal("cannot truncate torn tail of " + path);
    }
  } else if (existing.ok() ||
             existing.status().code() == StatusCode::kNotFound) {
    // Missing file, or a header torn by a crash mid-creation: start fresh.
    std::FILE* fresh = std::fopen(path.c_str(), "wb");
    if (fresh == nullptr) return Status::Internal("cannot create " + path);
    std::vector<uint8_t> header = EncodeHeader();
    size_t written = std::fwrite(header.data(), 1, header.size(), fresh);
    Status st = sync == SyncMode::kSync ? FsyncFile(fresh, path) : Status::OK();
    if (std::fclose(fresh) != 0 || written != header.size() || !st.ok()) {
      return Status::Internal("cannot write WAL header to " + path);
    }
  } else {
    return existing.status();  // Foreign file; refuse to append to it.
  }

  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, sync, group_commit, f, valid_bytes));
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) {
    // Best effort: close an open group-commit window so its records are not
    // left OS-buffered only.
    if (pending_appends_ > 0) (void)SyncNow();
    std::fclose(file_);
  }
}

Status WalWriter::Append(const std::vector<uint8_t>& payload) {
  if (file_ == nullptr) return Status::Internal(path_ + " is not open");
  // Appends are already buffered writes plus an occasional fsync; a clock
  // pair per record is cheap relative to the fflush below, so not gated.
  struct AppendTimer {
    uint64_t start = MonotonicMicros();
    ~AppendTimer() {
      static obs::Histogram* h =
          obs::Registry::Global().GetHistogram("wal.append_micros");
      h->Record(MonotonicMicros() - start);
    }
  } timer;
  Writer header;
  header.PutU32(static_cast<uint32_t>(payload.size()));
  header.PutU32(Crc32(payload));
  if (std::fwrite(header.bytes().data(), 1, header.size(), file_) !=
      header.size()) {
    return Status::Internal("short write to " + path_);
  }
  if (!payload.empty() &&
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::Internal("short write to " + path_);
  }
  // Flush to the OS always (the record survives a process crash); reach
  // stable media per the sync mode and group-commit window.
  if (std::fflush(file_) != 0) {
    return Status::Internal("fflush failed for " + path_);
  }
  size_bytes_ += header.size() + payload.size();
  ++appended_records_;
  if (sync_ == SyncMode::kSync) {
    if (group_commit_.window.count() == 0) {
      return SyncNow();
    }
    if (pending_appends_ == 0) window_start_ = std::chrono::steady_clock::now();
    ++pending_appends_;
    if (pending_appends_ >= group_commit_.max_pending ||
        std::chrono::steady_clock::now() - window_start_ >=
            group_commit_.window) {
      return SyncNow();
    }
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::Internal(path_ + " is not open");
  return SyncNow();
}

Status WalWriter::SyncNow() {
  pending_appends_ = 0;
  ++syncs_performed_;
  uint64_t start = MonotonicMicros();
  Status synced = FsyncFile(file_, path_);
  static obs::Histogram* h =
      obs::Registry::Global().GetHistogram("wal.fsync_micros");
  h->Record(MonotonicMicros() - start);
  return synced;
}

Status WalWriter::Reset(const std::vector<std::vector<uint8_t>>& retained) {
  // Build the fresh log beside the old one and rename it into place, like
  // checkpoint publication: retained records are on disk before the old log
  // (still holding them) can disappear.
  const std::string tmp = path_ + ".tmp";
  std::FILE* fresh = std::fopen(tmp.c_str(), "wb");
  if (fresh == nullptr) return Status::Internal("cannot open " + tmp);
  std::vector<uint8_t> bytes = EncodeHeader();
  for (const std::vector<uint8_t>& payload : retained) {
    Writer record;
    record.PutU32(static_cast<uint32_t>(payload.size()));
    record.PutU32(Crc32(payload));
    bytes.insert(bytes.end(), record.bytes().begin(), record.bytes().end());
    bytes.insert(bytes.end(), payload.begin(), payload.end());
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), fresh);
  bool flushed = std::fflush(fresh) == 0 && ::fsync(::fileno(fresh)) == 0;
  int close_rc = std::fclose(fresh);
  if (written != bytes.size() || !flushed || close_rc != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  std::fclose(file_);
  file_ = nullptr;
  Status published = Status::OK();
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    published = Status::Internal("cannot publish fresh WAL at " + path_ +
                                 ": " + std::strerror(errno));
  } else {
    size_bytes_ = bytes.size();
    pending_appends_ = 0;  // The old file's open window died with it.
    size_t slash = path_.find_last_of('/');
    if (slash != std::string::npos) {
      published = FsyncDirectory(path_.substr(0, slash));
    }
  }
  // Reopen whichever log now lives at path_ — the old one when the rename
  // failed, the fresh one otherwise — so a transient failure here does not
  // permanently wedge the writer (appends would fail forever, silently
  // un-logging every later delta).
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot reopen " + path_);
  }
  return published;
}

}  // namespace p2pdb::storage
