#include "src/storage/wal.h"

#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "src/util/serde.h"

namespace p2pdb::storage {

namespace {

constexpr uint32_t kWalMagic = 0x4c573250;  // "P2WL" little-endian.
constexpr uint32_t kWalVersion = 1;
constexpr size_t kHeaderBytes = 8;        // magic + version
constexpr size_t kRecordHeaderBytes = 8;  // length + crc

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

Status FsyncFile(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) {
    return Status::Internal("fflush failed for " + path);
  }
  if (::fsync(::fileno(f)) != 0) {
    return Status::Internal("fsync failed for " + path + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

std::vector<uint8_t> EncodeHeader() {
  Writer w;
  w.PutU32(kWalMagic);
  w.PutU32(kWalVersion);
  return w.bytes();
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  const std::array<uint32_t, 256>& table = CrcTable();
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

Result<WalContents> ReadWalFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::vector<uint8_t> bytes;
  uint8_t buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  std::fclose(f);

  if (bytes.size() < kHeaderBytes) {
    // A crash during WAL creation (or Reset) can leave a partial header:
    // torn tail at offset zero, not a foreign file. No records survive it.
    WalContents out;
    out.valid_bytes = 0;
    out.tail_corrupt = !bytes.empty();
    return out;
  }
  Reader header(bytes.data(), kHeaderBytes);
  if (*header.GetU32() != kWalMagic) {
    return Status::ParseError(path + " is not a p2pdb WAL");
  }
  if (*header.GetU32() != kWalVersion) {
    return Status::Unsupported("WAL format version in " + path);
  }

  WalContents out;
  size_t pos = kHeaderBytes;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordHeaderBytes) break;  // Torn record header.
    Reader r(bytes.data() + pos, kRecordHeaderBytes);
    uint32_t length = *r.GetU32();
    uint32_t crc = *r.GetU32();
    if (bytes.size() - pos - kRecordHeaderBytes < length) break;  // Torn body.
    const uint8_t* payload = bytes.data() + pos + kRecordHeaderBytes;
    if (Crc32(payload, length) != crc) break;  // Corrupt (torn write).
    out.records.emplace_back(payload, payload + length);
    pos += kRecordHeaderBytes + length;
  }
  out.valid_bytes = pos;
  out.tail_corrupt = pos < bytes.size();
  return out;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   SyncMode sync) {
  uint64_t valid_bytes = kHeaderBytes;
  auto existing = ReadWalFile(path);
  if (existing.ok() && existing->valid_bytes >= kHeaderBytes) {
    valid_bytes = existing->valid_bytes;
    if (existing->tail_corrupt &&
        ::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
      return Status::Internal("cannot truncate torn tail of " + path);
    }
  } else if (existing.ok() ||
             existing.status().code() == StatusCode::kNotFound) {
    // Missing file, or a header torn by a crash mid-creation: start fresh.
    std::FILE* fresh = std::fopen(path.c_str(), "wb");
    if (fresh == nullptr) return Status::Internal("cannot create " + path);
    std::vector<uint8_t> header = EncodeHeader();
    size_t written = std::fwrite(header.data(), 1, header.size(), fresh);
    Status st = sync == SyncMode::kSync ? FsyncFile(fresh, path) : Status::OK();
    if (std::fclose(fresh) != 0 || written != header.size() || !st.ok()) {
      return Status::Internal("cannot write WAL header to " + path);
    }
  } else {
    return existing.status();  // Foreign file; refuse to append to it.
  }

  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, sync, f, valid_bytes));
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WalWriter::Append(const std::vector<uint8_t>& payload) {
  if (file_ == nullptr) return Status::Internal(path_ + " is not open");
  Writer header;
  header.PutU32(static_cast<uint32_t>(payload.size()));
  header.PutU32(Crc32(payload));
  if (std::fwrite(header.bytes().data(), 1, header.size(), file_) !=
      header.size()) {
    return Status::Internal("short write to " + path_);
  }
  if (!payload.empty() &&
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::Internal("short write to " + path_);
  }
  // Flush to the OS always (the record survives a process crash); reach
  // stable media only under kSync.
  if (sync_ == SyncMode::kSync) {
    P2PDB_RETURN_IF_ERROR(FsyncFile(file_, path_));
  } else if (std::fflush(file_) != 0) {
    return Status::Internal("fflush failed for " + path_);
  }
  size_bytes_ += header.size() + payload.size();
  ++appended_records_;
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::Internal(path_ + " is not open");
  return FsyncFile(file_, path_);
}

Status WalWriter::Reset() {
  std::fclose(file_);
  file_ = nullptr;
  std::FILE* fresh = std::fopen(path_.c_str(), "wb");
  if (fresh == nullptr) return Status::Internal("cannot reset " + path_);
  std::vector<uint8_t> header = EncodeHeader();
  size_t written = std::fwrite(header.data(), 1, header.size(), fresh);
  Status st = sync_ == SyncMode::kSync ? FsyncFile(fresh, path_) : Status::OK();
  if (written != header.size() || !st.ok()) {
    std::fclose(fresh);
    return Status::Internal("cannot rewrite WAL header in " + path_);
  }
  file_ = fresh;
  size_bytes_ = kHeaderBytes;
  return Status::OK();
}

}  // namespace p2pdb::storage
