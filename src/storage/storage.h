// Storage: the durability hook a peer drives. The peer reports every update
// delta its chase applies and offers its full database for checkpointing; an
// implementation decides what (if anything) reaches disk. Recover() rebuilds
// the last durable database state so a crashed peer can rejoin the network
// with its data instead of starting empty — the durability backbone of the
// paper's robustness claim under peer churn.
#ifndef P2PDB_STORAGE_STORAGE_H_
#define P2PDB_STORAGE_STORAGE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/relational/database.h"
#include "src/relational/tuple.h"
#include "src/util/status.h"

namespace p2pdb::storage {

/// Tuples inserted by one chase application, keyed by relation — the same
/// shape the update engine's semi-naive feed uses.
using DeltaMap = std::map<std::string, std::set<rel::Tuple>>;

/// What Recover() rebuilt, for reporting and benchmarks.
struct RecoveryInfo {
  bool had_checkpoint = false;
  uint64_t wal_records_replayed = 0;
  uint64_t wal_bytes_scanned = 0;
  bool wal_tail_truncated = false;
  uint64_t tuples_recovered = 0;
  /// Rule-change records (see Storage::LogRuleChange), oldest first. Opaque
  /// to the storage layer; core::wire::RuleChangeRecord decodes them.
  std::vector<std::vector<uint8_t>> rule_changes;
};

class Storage {
 public:
  virtual ~Storage() = default;

  /// Durably records one applied update delta.
  virtual Status LogDelta(const DeltaMap& delta) = 0;

  /// Durably records one dynamic rule change (addLink/deleteLink). The blob
  /// is opaque here — the core layer encodes it — and, unlike deltas, it
  /// survives checkpoint truncation: Recover() replays the full change list
  /// so a restarted head re-learns mid-session rule changes without the
  /// change driver re-delivering them.
  virtual Status LogRuleChange(const std::vector<uint8_t>& record) = 0;

  /// Replaces the retained rule-change history with `records` (persisted at
  /// the next checkpoint truncation). The recovering peer calls this with
  /// the compacted net diff so the history stays bounded by the rule count,
  /// not the lifetime change count.
  virtual Status ResetRuleChanges(
      std::vector<std::vector<uint8_t>> records) = 0;

  /// Establishes the durable base state: checkpoints `db` iff no checkpoint
  /// exists yet. Called when storage is attached to a peer, so that WAL
  /// replay always has the schemas and seed data to apply deltas onto.
  virtual Status EnsureBase(const rel::Database& db) = 0;

  /// True when a durable base state already exists — how a booting daemon
  /// decides between a fresh start (seed the base from its system file) and
  /// recovery (a re-exec'd process reopening the directory it crashed with).
  virtual bool HasBase() const { return false; }

  /// Gives the implementation a chance to checkpoint `db` (and truncate the
  /// log); called after every applied delta.
  virtual Status MaybeCheckpoint(const rel::Database& db) = 0;

  /// Checkpoints `db` now.
  virtual Status Checkpoint(const rel::Database& db) = 0;

  /// Rebuilds the last durable database state (checkpoint + WAL replay).
  virtual Result<rel::Database> Recover(RecoveryInfo* info) = 0;
};

/// In-memory no-op default: peers without durability pay nothing and existing
/// behaviour is unchanged. Recover() fails — there is no durable state.
class NullStorage : public Storage {
 public:
  Status LogDelta(const DeltaMap&) override { return Status::OK(); }
  Status LogRuleChange(const std::vector<uint8_t>&) override {
    return Status::OK();
  }
  Status ResetRuleChanges(std::vector<std::vector<uint8_t>>) override {
    return Status::OK();
  }
  Status EnsureBase(const rel::Database&) override { return Status::OK(); }
  Status MaybeCheckpoint(const rel::Database&) override {
    return Status::OK();
  }
  Status Checkpoint(const rel::Database&) override { return Status::OK(); }
  Result<rel::Database> Recover(RecoveryInfo*) override {
    return Status::Unsupported("NullStorage holds no durable state");
  }
};

}  // namespace p2pdb::storage

#endif  // P2PDB_STORAGE_STORAGE_H_
