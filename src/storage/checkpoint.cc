#include "src/storage/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/relational/snapshot.h"
#include "src/storage/wal.h"

namespace p2pdb::storage {

std::string CheckpointPath(const std::string& dir) {
  return dir + "/checkpoint.p2db";
}

bool CheckpointExists(const std::string& dir) {
  return ::access(CheckpointPath(dir).c_str(), F_OK) == 0;
}

Status SaveCheckpoint(const rel::Database& db, const std::string& dir) {
  const std::string tmp = dir + "/checkpoint.tmp";
  std::vector<uint8_t> bytes = rel::SerializeDatabase(db);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot open " + tmp);
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool flushed = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  int close_rc = std::fclose(f);
  if (written != bytes.size() || !flushed || close_rc != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), CheckpointPath(dir).c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot publish checkpoint in " + dir + ": " +
                            std::strerror(errno));
  }
  return FsyncDirectory(dir);
}

Result<rel::Database> LoadCheckpoint(const std::string& dir) {
  return rel::LoadDatabase(CheckpointPath(dir));
}

}  // namespace p2pdb::storage
