// Write-ahead log: an append-only file of CRC-checked, length-prefixed binary
// records. The peer's storage manager appends one record per applied update
// delta; on recovery the log is replayed on top of the last checkpoint.
//
// On-disk layout:
//   header:  u32 magic "P2WL", u32 format version
//   record:  u32 payload length, u32 CRC-32 of the payload, payload bytes
//
// A crash can leave a torn tail (a partially written record). Readers stop at
// the first incomplete or CRC-mismatching record and report the clean prefix;
// WalWriter::Open truncates that torn tail before appending, so a log never
// accumulates garbage in the middle.
#ifndef P2PDB_STORAGE_WAL_H_
#define P2PDB_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace p2pdb::storage {

/// Whether appends are flushed to the OS only (fast, loses the tail on power
/// failure) or fsync'd to stable media (durable, slow).
enum class SyncMode { kNoSync, kSync };

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a byte range.
uint32_t Crc32(const uint8_t* data, size_t size);
inline uint32_t Crc32(const std::vector<uint8_t>& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

/// Result of scanning a WAL file: every intact record in order, the length of
/// the clean prefix, and whether a torn/corrupt tail was dropped.
struct WalContents {
  std::vector<std::vector<uint8_t>> records;
  uint64_t valid_bytes = 0;
  bool tail_corrupt = false;
};

/// Reads every intact record of a WAL file. Missing file => NotFound; a file
/// too short to hold the header or with a foreign magic => ParseError. A torn
/// or corrupt tail is tolerated: replay stops there and `tail_corrupt` is set.
Result<WalContents> ReadWalFile(const std::string& path);

/// Appends records to a WAL file. Open() creates the file (with header) when
/// missing and truncates any torn tail of an existing log before appending.
class WalWriter {
 public:
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 SyncMode sync);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record. Always flushed to the OS; fsync'd under kSync.
  Status Append(const std::vector<uint8_t>& payload);

  /// Forces an fsync regardless of the sync mode.
  Status Sync();

  /// Truncates the log back to an empty (header-only) state; used after a
  /// checkpoint has made the logged records redundant.
  Status Reset();

  /// Current file size in bytes (header + intact records).
  uint64_t size_bytes() const { return size_bytes_; }
  /// Records appended through this writer (excludes pre-existing ones).
  uint64_t appended_records() const { return appended_records_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, SyncMode sync, std::FILE* file,
            uint64_t size_bytes)
      : path_(std::move(path)), sync_(sync), file_(file),
        size_bytes_(size_bytes) {}

  std::string path_;
  SyncMode sync_;
  std::FILE* file_ = nullptr;
  uint64_t size_bytes_ = 0;
  uint64_t appended_records_ = 0;
};

}  // namespace p2pdb::storage

#endif  // P2PDB_STORAGE_WAL_H_
