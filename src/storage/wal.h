// Write-ahead log: an append-only file of CRC-checked, length-prefixed binary
// records. The peer's storage manager appends one record per applied update
// delta; on recovery the log is replayed on top of the last checkpoint.
//
// On-disk layout:
//   header:  u32 magic "P2WL", u32 format version
//   record:  u32 payload length, u32 CRC-32 of the payload, payload bytes
//
// A crash can leave a torn tail (a partially written record). Readers stop at
// the first incomplete or CRC-mismatching record and report the clean prefix;
// WalWriter::Open truncates that torn tail before appending, so a log never
// accumulates garbage in the middle.
#ifndef P2PDB_STORAGE_WAL_H_
#define P2PDB_STORAGE_WAL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/util/crc32.h"
#include "src/util/status.h"

namespace p2pdb::storage {

/// Whether appends are flushed to the OS only (fast, loses the tail on power
/// failure) or fsync'd to stable media (durable, slow).
enum class SyncMode { kNoSync, kSync };

// Record framing uses the tree-wide CRC-32 (IEEE 802.3); re-exported because
// storage callers historically found it here.
using p2pdb::Crc32;

/// Group commit for `kSync` mode: instead of fsync'ing every append, appends
/// are coalesced and one fsync covers the whole batch once `max_pending`
/// records accumulate or an append finds `window` elapsed since the batch
/// opened. Records in the open window are flushed to the OS (they survive a
/// process crash) but reach stable media only at the NEXT append, Sync(),
/// Reset(), or close — there is no background flusher, so an idle writer's
/// tail batch stays OS-buffered indefinitely (a power failure can lose it).
/// Callers needing a hard bound call Sync() at their commit points. A zero
/// window keeps the classic fsync-per-append behaviour.
struct GroupCommitOptions {
  std::chrono::microseconds window{0};
  uint64_t max_pending = 64;
};

/// Result of scanning a WAL file: every intact record in order, the length of
/// the clean prefix, and whether a torn/corrupt tail was dropped.
struct WalContents {
  std::vector<std::vector<uint8_t>> records;
  uint64_t valid_bytes = 0;
  bool tail_corrupt = false;
};

/// Reads every intact record of a WAL file. Missing file => NotFound; a file
/// too short to hold the header or with a foreign magic => ParseError. A torn
/// or corrupt tail is tolerated: replay stops there and `tail_corrupt` is set.
Result<WalContents> ReadWalFile(const std::string& path);

/// fsyncs a directory so a just-renamed file inside it survives power loss.
Status FsyncDirectory(const std::string& dir);

/// Appends records to a WAL file. Open() creates the file (with header) when
/// missing and truncates any torn tail of an existing log before appending.
class WalWriter {
 public:
  /// `existing_records`, when given, receives every intact record already in
  /// the log — Open scans the file anyway to find the clean prefix, so
  /// callers that need the contents (e.g. to reload retained rule changes)
  /// avoid a second full read.
  static Result<std::unique_ptr<WalWriter>> Open(
      const std::string& path, SyncMode sync,
      GroupCommitOptions group_commit = {},
      std::vector<std::vector<uint8_t>>* existing_records = nullptr);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record. Always flushed to the OS; under kSync it is fsync'd
  /// immediately, or at the next group-commit boundary when a window is set.
  Status Append(const std::vector<uint8_t>& payload);

  /// Forces an fsync (of any pending group-commit batch too) regardless of
  /// the sync mode.
  Status Sync();

  /// Truncates the log back to a fresh state holding exactly `retained` (by
  /// default none); used after a checkpoint has made the logged deltas
  /// redundant while rule-change records must survive. Atomic: the fresh log
  /// is built in a temp file, fsync'd, and renamed over the old one, so a
  /// crash at any point leaves either the full old log or the full new one —
  /// never a log missing its retained records.
  Status Reset(const std::vector<std::vector<uint8_t>>& retained = {});

  /// Current file size in bytes (header + intact records).
  uint64_t size_bytes() const { return size_bytes_; }
  /// Records appended through this writer (excludes pre-existing ones).
  uint64_t appended_records() const { return appended_records_; }
  /// fsyncs issued by this writer (group commit makes this < appended).
  uint64_t syncs_performed() const { return syncs_performed_; }
  /// Appends flushed to the OS but not yet covered by an fsync.
  uint64_t pending_appends() const { return pending_appends_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, SyncMode sync, GroupCommitOptions group_commit,
            std::FILE* file, uint64_t size_bytes)
      : path_(std::move(path)), sync_(sync), group_commit_(group_commit),
        file_(file), size_bytes_(size_bytes) {}

  /// fsyncs and resets the group-commit window bookkeeping.
  Status SyncNow();

  std::string path_;
  SyncMode sync_;
  GroupCommitOptions group_commit_;
  std::FILE* file_ = nullptr;
  uint64_t size_bytes_ = 0;
  uint64_t appended_records_ = 0;
  uint64_t syncs_performed_ = 0;
  uint64_t pending_appends_ = 0;
  std::chrono::steady_clock::time_point window_start_{};
};

}  // namespace p2pdb::storage

#endif  // P2PDB_STORAGE_WAL_H_
