// Per-peer daemon configuration: the file a p2pdb_peerd process is launched
// with. One file fully provisions one peer process — who it is, where it
// listens, where the rest of the fleet lives, which system description it
// serves a node of, and where its durable state goes. The fleet launcher
// (scripts/run_fleet.sh via `p2pdb_fleetctl gen`) writes one such file per
// node; re-exec'ing a crashed daemon with the same file reproduces the same
// endpoint, so the other peers' tables stay valid.
//
// Format: line-based `key value`, '#' starts a comment, blank lines ignored.
//
//   node 2                      # NodeId (must exist in the system file)
//   name C                      # node name (cross-checked against the id)
//   listen 127.0.0.1:7102       # this peer's fixed endpoint
//   system /path/to/fleet.p2p   # system description (schemas, facts, rules)
//   data_dir /path/to/peer2     # durable storage dir; omit for volatile
//   pid_file /path/to/peer2.pid # written on startup (kill -9 targeting)
//   obs_json /path/to/obs2.json # metrics dump on graceful shutdown
//   super_peer 0                # the update initiator's node id
//   sync nosync                 # WAL sync mode: "full" (default) | "nosync"
//   peer 0 127.0.0.1:7100       # endpoint table, one row per OTHER node
//   peer 1 127.0.0.1:7101       # (rows for this node itself are ignored)
#ifndef P2PDB_DAEMON_CONFIG_H_
#define P2PDB_DAEMON_CONFIG_H_

#include <string>
#include <vector>

#include "src/core/control.h"
#include "src/net/tcp_runtime.h"
#include "src/util/ids.h"
#include "src/util/status.h"

namespace p2pdb::daemon {

struct PeerdConfig {
  NodeId node = kNoNode;
  std::string name;
  net::TcpRuntime::Endpoint listen;
  std::string system_file;
  std::string data_dir;
  std::string pid_file;
  std::string obs_json;
  NodeId super_peer = 0;
  /// WAL without fsync; test fleets set it so runs are not fsync-bound.
  bool no_sync = false;
  /// Endpoint table rows for the rest of the fleet.
  std::vector<core::wire::EndpointEntry> peers;

  /// Parses the file format above; missing required keys (node, name,
  /// listen, system) are errors.
  static Result<PeerdConfig> Parse(const std::string& text);

  /// Reads and parses `path`.
  static Result<PeerdConfig> Load(const std::string& path);

  /// Renders back into the file format (Parse(ToString()) round-trips).
  std::string ToString() const;
};

}  // namespace p2pdb::daemon

#endif  // P2PDB_DAEMON_CONFIG_H_
