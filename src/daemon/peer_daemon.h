// PeerDaemon: one peer as one OS process. Wraps a core::Peer built from a
// PeerdConfig (via core::PeerBootstrap — the same construction path the
// in-process Session uses), registers ITSELF as the runtime handler for the
// peer's node id, and intercepts the control-plane message types
// (src/core/control.h) a fleet controller drives it with; everything else is
// forwarded untouched to the peer's normal protocol dispatch. The config
// file is authoritative for identity, endpoint, schema and rules — a wire
// bootstrap is validated against it (and applies the endpoint table), so the
// two provisioning paths cannot silently disagree.
//
// Startup picks fresh-vs-recover by looking at the data directory: no
// checkpoint yet means first boot (seed the durable base from the system
// file's initial database), an existing checkpoint means this process is a
// re-exec of a crashed daemon and the peer recovers from checkpoint + WAL
// before the listener accepts a single frame.
#ifndef P2PDB_DAEMON_PEER_DAEMON_H_
#define P2PDB_DAEMON_PEER_DAEMON_H_

#include <atomic>
#include <memory>
#include <string>

#include "src/core/peer.h"
#include "src/core/system.h"
#include "src/daemon/config.h"
#include "src/net/tcp_runtime.h"
#include "src/util/status.h"

namespace p2pdb::daemon {

class PeerDaemon : public net::PeerHandler {
 public:
  /// Builds the full stack: parse the system file, open (and maybe recover
  /// from) storage, bind the configured listen endpoint, install the
  /// config's endpoint table, and write the pid file. On return the peer is
  /// registered and serving.
  static Result<std::unique_ptr<PeerDaemon>> Start(PeerdConfig config);

  ~PeerDaemon() override;

  /// Blocks until a kShutdown control frame (or RequestStop) arrives,
  /// keeping the runtime's delivery machinery running. On exit writes the
  /// obs_json dump (when configured) and removes the pid file.
  Status Serve();

  /// Signal-safe stop request (SIGTERM/SIGINT handlers call this).
  void RequestStop() { stop_.store(true); }
  bool stopping() const { return stop_.load(); }

  // net::PeerHandler: control plane here, protocol to the peer.
  void OnMessage(const net::Message& msg) override;

  core::Peer& peer() { return *peer_; }
  net::TcpRuntime& runtime() { return *runtime_; }
  const PeerdConfig& config() const { return config_; }
  /// True when this boot recovered from an existing checkpoint (re-exec).
  bool recovered() const { return recovered_; }

 private:
  PeerDaemon(PeerdConfig config, core::P2PSystem system);

  /// Validates a decoded bootstrap against the config/system file and
  /// applies its endpoint table. Returns the rejection reason, or OK.
  Status ApplyBootstrap(const core::wire::SessionBootstrap& bootstrap);

  /// Sends one urgent control reply back to `to`.
  void Reply(NodeId to, net::MessageType type, std::vector<uint8_t> payload);

  PeerdConfig config_;
  core::P2PSystem system_;
  std::unique_ptr<net::TcpRuntime> runtime_;
  std::unique_ptr<core::Peer> peer_;
  std::atomic<bool> stop_{false};
  bool recovered_ = false;
  /// Last controller epoch seen, echoed into replies so a driver can discard
  /// replies provoked by an earlier incarnation of itself.
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace p2pdb::daemon

#endif  // P2PDB_DAEMON_PEER_DAEMON_H_
