#include "src/daemon/peer_daemon.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "src/core/bootstrap.h"
#include "src/lang/parser.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/relational/snapshot.h"
#include "src/storage/storage_manager.h"
#include "src/util/logging.h"

namespace p2pdb::daemon {

namespace wire = core::wire;

PeerDaemon::PeerDaemon(PeerdConfig config, core::P2PSystem system)
    : config_(std::move(config)), system_(std::move(system)) {}

Result<std::unique_ptr<PeerDaemon>> PeerDaemon::Start(PeerdConfig config) {
  std::ifstream in(config.system_file);
  if (!in) {
    return Status::NotFound("cannot open system file " + config.system_file);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto system = lang::ParseSystem(buf.str());
  if (!system.ok()) return system.status();
  if (config.node >= system->node_count()) {
    return Status::InvalidArgument(
        "config node " + std::to_string(config.node) +
        " does not exist in " + config.system_file);
  }
  const core::NodeInfo& info = system->node(config.node);
  if (info.name != config.name) {
    return Status::InvalidArgument("config names node " +
                                   std::to_string(config.node) + " '" +
                                   config.name + "' but the system file says '" +
                                   info.name + "'");
  }

  auto daemon =
      std::unique_ptr<PeerDaemon>(new PeerDaemon(config, std::move(*system)));
  const PeerdConfig& cfg = daemon->config_;

  net::TcpRuntime::Options net_options;
  net_options.host = cfg.listen.host;
  net_options.listen_port = cfg.listen.port;
  daemon->runtime_ = std::make_unique<net::TcpRuntime>(net_options);

  // Fresh boot vs re-exec: an existing checkpoint means a previous
  // incarnation of this process already established the durable base, so
  // the peer must recover its state instead of reseeding from the system
  // file (which would silently discard everything propagated pre-crash).
  std::unique_ptr<storage::Storage> backend;
  bool recover = false;
  if (!cfg.data_dir.empty()) {
    storage::StorageOptions storage_options;
    storage_options.dir = cfg.data_dir;
    storage_options.sync =
        cfg.no_sync ? storage::SyncMode::kNoSync : storage::SyncMode::kSync;
    auto manager = storage::StorageManager::Open(storage_options);
    if (!manager.ok()) return manager.status();
    recover = (*manager)->HasBase();
    backend = std::move(*manager);
  }

  core::PeerBootstrap::Spec spec;
  spec.id = cfg.node;
  spec.name = cfg.name;
  spec.db = daemon->system_.node(cfg.node).db;
  spec.rules = &daemon->system_.rules();
  // The DAEMON is the registered handler (it must see control frames), so
  // the peer itself never registers; registration happens below.
  spec.config.register_with_runtime = false;
  spec.storage = std::move(backend);
  spec.recover = recover;
  auto peer = core::PeerBootstrap::Build(daemon->runtime_.get(),
                                         std::move(spec));
  if (!peer.ok()) return peer.status();
  daemon->peer_ = std::move(*peer);
  daemon->recovered_ = recover;

  daemon->runtime_->RegisterPeer(cfg.node, daemon.get());
  P2PDB_RETURN_IF_ERROR(daemon->runtime_->PeerReady(cfg.node));
  uint16_t bound = daemon->runtime_->ListenPort(cfg.node);
  if (cfg.listen.port != 0 && bound != cfg.listen.port) {
    return Status::Internal("bound port " + std::to_string(bound) +
                            " instead of configured " +
                            std::to_string(cfg.listen.port));
  }

  for (const wire::EndpointEntry& e : cfg.peers) {
    if (e.node == cfg.node) continue;  // Own row: the listener owns it.
    P2PDB_RETURN_IF_ERROR(daemon->runtime_->AddRemoteEndpoint(
        e.node, net::TcpRuntime::Endpoint{e.host, e.port}));
  }

  if (!cfg.pid_file.empty()) {
    std::ofstream pid(cfg.pid_file, std::ios::trunc);
    if (!pid) {
      return Status::Internal("cannot write pid file " + cfg.pid_file);
    }
    pid << ::getpid() << "\n";
  }

  P2PDB_LOG(kInfo) << "p2pdb_peerd node " << cfg.node << " (" << cfg.name
                   << ") serving on " << cfg.listen.host << ":" << bound
                   << (recover ? " (recovered from " + cfg.data_dir + ")"
                               : "");
  return daemon;
}

PeerDaemon::~PeerDaemon() = default;

Status PeerDaemon::Serve() {
  while (!stop_.load()) {
    // The mailbox workers and the reactor deliver concurrently; this thread
    // only needs to stay alive and poll the stop flag.
    P2PDB_RETURN_IF_ERROR(
        runtime_->RunUntil(runtime_->NowMicros() + 200'000));
  }
  if (!config_.obs_json.empty()) {
    obs::WriteObsJson(config_.obs_json, obs::Registry::Global(),
                      peer_->trace_collector());
  }
  if (!config_.pid_file.empty()) {
    std::remove(config_.pid_file.c_str());
  }
  return Status::OK();
}

Status PeerDaemon::ApplyBootstrap(const wire::SessionBootstrap& bootstrap) {
  if (bootstrap.node != config_.node || bootstrap.name != config_.name) {
    return Status::InvalidArgument(
        "bootstrap is for node " + std::to_string(bootstrap.node) + " '" +
        bootstrap.name + "', this daemon is node " +
        std::to_string(config_.node) + " '" + config_.name + "'");
  }
  if (bootstrap.super_peer != config_.super_peer) {
    return Status::InvalidArgument(
        "bootstrap names super-peer " + std::to_string(bootstrap.super_peer) +
        ", config says " + std::to_string(config_.super_peer));
  }
  // Schema drift check: every relation the controller believes this node
  // serves must exist here with the same attributes. The local system file
  // stays authoritative — a mismatch is a provisioning error, not something
  // to paper over by mutating the live database.
  const rel::Database& db = system_.node(config_.node).db;
  for (const rel::RelationSchema& schema : bootstrap.schema) {
    const rel::Relation* relation = db.FindRelation(schema.name());
    if (relation == nullptr || !(relation->schema() == schema)) {
      return Status::InvalidArgument("schema drift on relation '" +
                                     schema.name() + "'");
    }
  }
  // Rule drift check (validate, do not install: a rule the update plane
  // legitimately deleted mid-session must not be resurrected by a re-sent
  // bootstrap — recovery replays such deletions from the WAL).
  for (const core::CoordinationRule& rule : bootstrap.rules) {
    auto known = system_.RuleById(rule.id);
    if (!known.ok() || (*known)->head_node != config_.node) {
      return Status::InvalidArgument("bootstrap rule '" + rule.id +
                                     "' is unknown to the system file");
    }
  }
  for (const wire::EndpointEntry& e : bootstrap.endpoints) {
    if (e.node == config_.node) continue;
    // Idempotent re-adds are fine; a conflicting remap rejects the
    // bootstrap (AddRemoteEndpoint refuses and keeps the table intact).
    P2PDB_RETURN_IF_ERROR(runtime_->AddRemoteEndpoint(
        e.node, net::TcpRuntime::Endpoint{e.host, e.port}));
  }
  return Status::OK();
}

void PeerDaemon::Reply(NodeId to, net::MessageType type,
                       std::vector<uint8_t> payload) {
  net::Message msg;
  msg.type = type;
  msg.from = config_.node;
  msg.to = to;
  msg.payload = std::move(payload);
  msg.urgent = true;  // Control traffic never waits on a data-plane batch.
  runtime_->Send(std::move(msg));
}

void PeerDaemon::OnMessage(const net::Message& msg) {
  // Dispatch runs under the runtime's per-peer exclusion, so touching the
  // peer's engines directly here is exactly as safe as the peer's own
  // protocol dispatch.
  switch (msg.type) {
    case net::MessageType::kBootstrap: {
      auto bootstrap = wire::SessionBootstrap::Decode(msg.payload);
      wire::BootstrapAck ack;
      ack.node = config_.node;
      ack.name = config_.name;
      if (!bootstrap.ok()) {
        ack.epoch = epoch_.load();
        ack.accepted = false;
        ack.error = bootstrap.status().ToString();
      } else {
        epoch_.store(bootstrap->epoch);
        ack.epoch = bootstrap->epoch;
        Status applied = ApplyBootstrap(*bootstrap);
        ack.accepted = applied.ok();
        if (!applied.ok()) ack.error = applied.ToString();
      }
      if (!ack.accepted) {
        P2PDB_LOG(kWarn) << "rejecting bootstrap: " << ack.error;
      }
      Reply(msg.from, net::MessageType::kBootstrapAck, ack.Encode());
      return;
    }
    case net::MessageType::kStartDiscovery:
      peer_->StartDiscovery();
      return;
    case net::MessageType::kStartUpdate: {
      auto start = wire::ControlStartUpdate::Decode(msg.payload);
      if (!start.ok()) {
        P2PDB_LOG(kWarn) << "bad kStartUpdate payload: "
                         << start.status().ToString();
        return;
      }
      peer_->StartUpdate(start->session);
      return;
    }
    case net::MessageType::kRefreshScc:
      peer_->update().RefreshScc();
      return;
    case net::MessageType::kStatusRequest: {
      wire::StatusReport report;
      report.epoch = epoch_.load();
      report.node = config_.node;
      report.name = config_.name;
      report.state_discovery =
          static_cast<uint8_t>(peer_->discovery().state());
      report.state_update = static_cast<uint8_t>(peer_->update().state());
      report.tuples = peer_->db().TotalTuples();
      const core::UpdateEngine::Stats& stats = peer_->update().stats();
      report.tuples_inserted = stats.tuples_inserted;
      report.joins_evaluated = stats.joins_evaluated;
      report.answers_sent = stats.answers_sent;
      report.token_passes = stats.token_passes;
      report.reopens = stats.reopens;
      Reply(msg.from, net::MessageType::kStatusReport, report.Encode());
      return;
    }
    case net::MessageType::kDumpRequest: {
      wire::DumpReply reply;
      reply.epoch = epoch_.load();
      reply.node = config_.node;
      reply.database = rel::SerializeDatabase(peer_->db());
      Reply(msg.from, net::MessageType::kDumpReply, reply.Encode());
      return;
    }
    case net::MessageType::kShutdown:
      P2PDB_LOG(kInfo) << "node " << config_.node
                       << ": shutdown requested by node " << msg.from;
      stop_.store(true);
      return;
    default:
      peer_->OnMessage(msg);
      return;
  }
}

}  // namespace p2pdb::daemon
