#include "src/daemon/fleet.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/core/discovery.h"
#include "src/core/update.h"
#include "src/relational/snapshot.h"
#include "src/util/logging.h"

namespace p2pdb::daemon {

namespace wire = core::wire;

Result<std::vector<uint16_t>> PickFreePorts(const std::string& host,
                                            size_t count) {
  std::vector<int> fds;
  std::vector<uint16_t> ports;
  auto close_all = [&fds]() {
    for (int fd : fds) ::close(fd);
  };
  for (size_t i = 0; i < count; ++i) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      close_all();
      return Status::Internal("socket(): " + std::string(strerror(errno)));
    }
    fds.push_back(fd);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      close_all();
      return Status::InvalidArgument("bad host '" + host + "'");
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      close_all();
      return Status::Internal("bind(): " + std::string(strerror(errno)));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      close_all();
      return Status::Internal("getsockname(): " +
                              std::string(strerror(errno)));
    }
    ports.push_back(ntohs(bound.sin_port));
  }
  // Every socket stayed open until here, so the kernel handed out `count`
  // DISTINCT ports; releasing them all at once lets the daemons rebind.
  close_all();
  return ports;
}

Result<std::vector<PeerdConfig>> MakeFleetConfigs(
    const core::P2PSystem& system, const std::string& system_file,
    const std::string& root, const std::string& host,
    const std::vector<uint16_t>& ports, NodeId super_peer, bool no_sync) {
  if (ports.size() != system.node_count()) {
    return Status::InvalidArgument(
        std::to_string(system.node_count()) + "-node system but " +
        std::to_string(ports.size()) + " ports");
  }
  if (super_peer >= system.node_count()) {
    return Status::InvalidArgument("super_peer " + std::to_string(super_peer) +
                                   " is not a system node");
  }
  std::vector<wire::EndpointEntry> table;
  table.reserve(system.node_count());
  for (NodeId n = 0; n < system.node_count(); ++n) {
    table.push_back({n, host, ports[n]});
  }
  std::vector<PeerdConfig> configs;
  for (NodeId n = 0; n < system.node_count(); ++n) {
    PeerdConfig cfg;
    cfg.node = n;
    cfg.name = system.node(n).name;
    cfg.listen = {host, ports[n]};
    cfg.system_file = system_file;
    const std::string base = root + "/peer" + std::to_string(n);
    cfg.data_dir = base;
    cfg.pid_file = base + ".pid";
    cfg.obs_json = base + ".obs.json";
    cfg.super_peer = super_peer;
    cfg.no_sync = no_sync;
    cfg.peers = table;
    configs.push_back(std::move(cfg));
  }
  return configs;
}

FleetController::FleetController(core::P2PSystem system,
                                 std::vector<wire::EndpointEntry> fleet,
                                 NodeId super_peer, Options options)
    : system_(std::move(system)),
      fleet_(std::move(fleet)),
      super_peer_(super_peer),
      options_(std::move(options)),
      id_(static_cast<NodeId>(system_.node_count())) {}

Result<std::unique_ptr<FleetController>> FleetController::Connect(
    core::P2PSystem system, std::vector<wire::EndpointEntry> fleet,
    NodeId super_peer, Options options) {
  if (fleet.size() != system.node_count()) {
    return Status::InvalidArgument(
        std::to_string(system.node_count()) + "-node system but " +
        std::to_string(fleet.size()) + " endpoint rows");
  }
  auto controller = std::unique_ptr<FleetController>(new FleetController(
      std::move(system), std::move(fleet), super_peer, std::move(options)));
  net::TcpRuntime::Options net_options;
  net_options.host = controller->options_.host;
  controller->runtime_ = std::make_unique<net::TcpRuntime>(net_options);
  controller->runtime_->RegisterPeer(controller->id_, controller.get());
  P2PDB_RETURN_IF_ERROR(controller->runtime_->PeerReady(controller->id_));
  for (const wire::EndpointEntry& e : controller->fleet_) {
    P2PDB_RETURN_IF_ERROR(controller->runtime_->AddRemoteEndpoint(
        e.node, net::TcpRuntime::Endpoint{e.host, e.port}));
  }
  return controller;
}

FleetController::~FleetController() {
  if (runtime_ != nullptr) runtime_->UnregisterPeer(id_);
}

std::vector<NodeId> FleetController::AllNodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(system_.node_count());
  for (NodeId n = 0; n < system_.node_count(); ++n) nodes.push_back(n);
  return nodes;
}

void FleetController::SendControl(NodeId to, net::MessageType type,
                                  std::vector<uint8_t> payload) {
  net::Message msg;
  msg.type = type;
  msg.from = id_;
  msg.to = to;
  msg.payload = std::move(payload);
  msg.urgent = true;
  runtime_->Send(std::move(msg));
}

uint64_t FleetController::Deadline() const {
  return runtime_->NowMicros() +
         static_cast<uint64_t>(options_.timeout.count()) * 1000;
}

void FleetController::Nap() {
  (void)runtime_->RunUntil(runtime_->NowMicros() + 20'000);
}

void FleetController::OnMessage(const net::Message& msg) {
  switch (msg.type) {
    case net::MessageType::kBootstrapAck: {
      auto ack = wire::BootstrapAck::Decode(msg.payload);
      if (!ack.ok()) {
        P2PDB_LOG(kWarn) << "bad bootstrap ack from " << msg.from << ": "
                         << ack.status().ToString();
        return;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      acks_[ack->node] = std::move(*ack);
      return;
    }
    case net::MessageType::kStatusReport: {
      auto report = wire::StatusReport::Decode(msg.payload);
      if (!report.ok()) {
        P2PDB_LOG(kWarn) << "bad status report from " << msg.from << ": "
                         << report.status().ToString();
        return;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      reports_[report->node] = std::move(*report);
      return;
    }
    case net::MessageType::kDumpReply: {
      auto dump = wire::DumpReply::Decode(msg.payload);
      if (!dump.ok()) {
        P2PDB_LOG(kWarn) << "bad dump reply from " << msg.from << ": "
                         << dump.status().ToString();
        return;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      dumps_[dump->node] = std::move(*dump);
      return;
    }
    default:
      P2PDB_LOG(kWarn) << "controller ignoring " << msg.ToString();
      return;
  }
}

Status FleetController::Bootstrap(const std::vector<NodeId>& nodes) {
  // The controller's own endpoint row rides along so daemons can route
  // replies back without the controller appearing in any config file.
  std::vector<wire::EndpointEntry> table = fleet_;
  table.push_back({id_, options_.host, runtime_->ListenPort(id_)});
  {
    std::lock_guard<std::mutex> lock(mutex_);
    acks_.clear();
  }
  auto encode = [&](NodeId n) {
    wire::SessionBootstrap bootstrap;
    bootstrap.epoch = options_.epoch;
    bootstrap.node = n;
    bootstrap.name = system_.node(n).name;
    bootstrap.super_peer = super_peer_;
    for (const auto& [name, relation] : system_.node(n).db.relations()) {
      (void)name;
      bootstrap.schema.push_back(relation.schema());
    }
    for (const core::CoordinationRule* rule : system_.RulesWithHead(n)) {
      bootstrap.rules.push_back(*rule);
    }
    bootstrap.endpoints = table;
    return bootstrap.Encode();
  };
  for (NodeId n : nodes) {
    SendControl(n, net::MessageType::kBootstrap, encode(n));
  }
  const uint64_t deadline = Deadline();
  uint64_t resend_at = runtime_->NowMicros() + kBootstrapResendMicros;
  while (true) {
    std::vector<NodeId> missing;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (NodeId n : nodes) {
        auto it = acks_.find(n);
        if (it == acks_.end()) {
          missing.push_back(n);
          continue;
        }
        if (!it->second.accepted) {
          return Status::ProtocolError("node " + std::to_string(n) + " (" +
                                       it->second.name +
                                       ") rejected bootstrap: " +
                                       it->second.error);
        }
      }
      if (missing.empty()) return Status::OK();
    }
    if (runtime_->NowMicros() >= deadline) {
      return Status::Internal("bootstrap timed out");
    }
    // A bootstrap frame sent before the daemon's listener is bound is dropped
    // by the failed connect, so keep re-sending to unacked nodes: the daemon
    // side is idempotent (re-validate, re-apply endpoints, re-ack).
    if (runtime_->NowMicros() >= resend_at) {
      for (NodeId n : missing) {
        SendControl(n, net::MessageType::kBootstrap, encode(n));
      }
      resend_at = runtime_->NowMicros() + kBootstrapResendMicros;
    }
    Nap();
  }
}

Result<std::vector<wire::StatusReport>> FleetController::PollStatus(
    const std::vector<NodeId>& nodes) {
  // Replies are matched to this round positionally: the previous round only
  // returned once EVERY reply had arrived, and replies ride per-connection
  // FIFO streams, so nothing stale can land after the clear below.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    reports_.clear();
  }
  wire::StatusRequest request;
  request.epoch = options_.epoch;
  for (NodeId n : nodes) {
    SendControl(n, net::MessageType::kStatusRequest, request.Encode());
  }
  const uint64_t deadline = Deadline();
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      bool complete = true;
      for (NodeId n : nodes) {
        if (reports_.find(n) == reports_.end()) {
          complete = false;
          break;
        }
      }
      if (complete) {
        std::vector<wire::StatusReport> round;
        round.reserve(nodes.size());
        for (NodeId n : nodes) round.push_back(reports_[n]);
        return round;
      }
    }
    if (runtime_->NowMicros() >= deadline) {
      return Status::Internal("status poll timed out");
    }
    Nap();
  }
}

Status FleetController::StartDiscovery(const std::vector<NodeId>& nodes) {
  wire::ControlStartDiscovery start;
  start.epoch = options_.epoch;
  for (NodeId n : nodes) {
    SendControl(n, net::MessageType::kStartDiscovery, start.Encode());
  }
  return Status::OK();
}

Status FleetController::AwaitDiscoveryClosed(
    const std::vector<NodeId>& nodes) {
  const uint64_t deadline = Deadline();
  const auto closed =
      static_cast<uint8_t>(core::DiscoveryEngine::State::kClosed);
  while (true) {
    auto round = PollStatus(nodes);
    if (!round.ok()) return round.status();
    if (std::all_of(round->begin(), round->end(),
                    [closed](const wire::StatusReport& r) {
                      return r.state_discovery == closed;
                    })) {
      return Status::OK();
    }
    if (runtime_->NowMicros() >= deadline) {
      return Status::Internal("discovery did not close in time");
    }
    Nap();
  }
}

Status FleetController::RefreshScc(const std::vector<NodeId>& nodes) {
  wire::ControlRefreshScc refresh;
  refresh.epoch = options_.epoch;
  for (NodeId n : nodes) {
    SendControl(n, net::MessageType::kRefreshScc, refresh.Encode());
  }
  // Status barrier: a reply proves the refresh was dispatched first (same
  // connection, FIFO) — the cross-process Session::Rediscover barrier.
  return PollStatus(nodes).status();
}

Status FleetController::StartUpdate(uint64_t session) {
  wire::ControlStartUpdate start;
  start.epoch = options_.epoch;
  start.session = session;
  SendControl(super_peer_, net::MessageType::kStartUpdate, start.Encode());
  return Status::OK();
}

Status FleetController::AwaitUpdateFixpoint(
    const std::vector<NodeId>& nodes,
    std::vector<wire::StatusReport>* final_reports) {
  const uint64_t deadline = Deadline();
  const auto open = static_cast<uint8_t>(core::UpdateEngine::State::kOpen);
  const auto closed = static_cast<uint8_t>(core::UpdateEngine::State::kClosed);
  std::vector<wire::StatusReport> previous;
  while (true) {
    auto round = PollStatus(nodes);
    if (!round.ok()) return round.status();
    const bool none_open =
        std::none_of(round->begin(), round->end(),
                     [open](const wire::StatusReport& r) {
                       return r.state_update == open;
                     });
    // The super-peer must have closed: kStartUpdate and kStatusRequest ride
    // the same FIFO connection, so its first report already reflects the
    // started session — an all-idle fleet can never satisfy this, which is
    // what keeps the probe from declaring fixpoint before the update starts.
    bool super_closed = true;
    for (const wire::StatusReport& r : *round) {
      if (r.node == super_peer_) super_closed = (r.state_update == closed);
    }
    if (none_open && super_closed && *round == previous) {
      if (final_reports != nullptr) *final_reports = std::move(*round);
      return Status::OK();
    }
    previous = std::move(*round);
    if (runtime_->NowMicros() >= deadline) {
      return Status::Internal("update did not reach fixpoint in time");
    }
    Nap();
  }
}

Status FleetController::AwaitStable(const std::vector<NodeId>& nodes) {
  const uint64_t deadline = Deadline();
  std::vector<wire::StatusReport> previous;
  while (true) {
    auto round = PollStatus(nodes);
    if (!round.ok()) return round.status();
    if (*round == previous) return Status::OK();
    previous = std::move(*round);
    if (runtime_->NowMicros() >= deadline) {
      return Status::Internal("fleet did not stabilize in time");
    }
    Nap();
  }
}

Result<rel::Database> FleetController::Dump(NodeId node) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dumps_.erase(node);
  }
  wire::DumpRequest request;
  request.epoch = options_.epoch;
  SendControl(node, net::MessageType::kDumpRequest, request.Encode());
  const uint64_t deadline = Deadline();
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = dumps_.find(node);
      if (it != dumps_.end()) {
        return rel::DeserializeDatabase(it->second.database);
      }
    }
    if (runtime_->NowMicros() >= deadline) {
      return Status::Internal("dump of node " + std::to_string(node) +
                              " timed out");
    }
    Nap();
  }
}

Status FleetController::SendShutdown(const std::vector<NodeId>& nodes) {
  wire::ControlShutdown shutdown;
  shutdown.epoch = options_.epoch;
  for (NodeId n : nodes) {
    SendControl(n, net::MessageType::kShutdown, shutdown.Encode());
  }
  return Status::OK();
}

}  // namespace p2pdb::daemon
