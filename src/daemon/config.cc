#include "src/daemon/config.h"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "src/util/string_util.h"

namespace p2pdb::daemon {

namespace {

Result<NodeId> ParseNodeId(const std::string& text) {
  if (text.empty()) return Status::ParseError("empty node id");
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::ParseError("bad node id '" + text + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value >= kNoNode) return Status::ParseError("node id out of range");
  }
  return static_cast<NodeId>(value);
}

}  // namespace

Result<PeerdConfig> PeerdConfig::Parse(const std::string& text) {
  PeerdConfig out;
  bool have_node = false, have_name = false, have_listen = false;
  std::istringstream lines(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string key;
    if (!(fields >> key)) continue;  // Blank or comment-only line.
    auto fail = [&](const std::string& why) {
      return Status::ParseError("config line " + std::to_string(lineno) +
                                ": " + why);
    };
    if (key == "node" || key == "super_peer") {
      std::string value;
      if (!(fields >> value)) return fail("missing value for " + key);
      auto id = ParseNodeId(value);
      if (!id.ok()) return fail(id.status().message());
      if (key == "node") {
        out.node = *id;
        have_node = true;
      } else {
        out.super_peer = *id;
      }
    } else if (key == "name" || key == "system" || key == "data_dir" ||
               key == "pid_file" || key == "obs_json") {
      std::string value;
      if (!(fields >> value)) return fail("missing value for " + key);
      if (key == "name") {
        out.name = value;
        have_name = true;
      } else if (key == "system") {
        out.system_file = value;
      } else if (key == "data_dir") {
        out.data_dir = value;
      } else if (key == "pid_file") {
        out.pid_file = value;
      } else {
        out.obs_json = value;
      }
    } else if (key == "listen") {
      std::string value;
      if (!(fields >> value)) return fail("missing value for listen");
      auto endpoint = net::TcpRuntime::Endpoint::Parse(value);
      if (!endpoint.ok()) return fail(endpoint.status().message());
      out.listen = *endpoint;
      have_listen = true;
    } else if (key == "sync") {
      std::string value;
      if (!(fields >> value)) return fail("missing value for sync");
      if (value == "nosync") {
        out.no_sync = true;
      } else if (value == "full") {
        out.no_sync = false;
      } else {
        return fail("sync must be 'full' or 'nosync', got '" + value + "'");
      }
    } else if (key == "peer") {
      std::string id_text, endpoint_text;
      if (!(fields >> id_text >> endpoint_text)) {
        return fail("peer rows are 'peer <node> <host:port>'");
      }
      auto id = ParseNodeId(id_text);
      if (!id.ok()) return fail(id.status().message());
      auto endpoint = net::TcpRuntime::Endpoint::Parse(endpoint_text);
      if (!endpoint.ok()) return fail(endpoint.status().message());
      out.peers.push_back({*id, endpoint->host, endpoint->port});
    } else {
      return fail("unknown key '" + key + "'");
    }
    std::string extra;
    if (fields >> extra) return fail("trailing token '" + extra + "'");
  }
  if (!have_node) return Status::ParseError("config is missing 'node'");
  if (!have_name) return Status::ParseError("config is missing 'name'");
  if (!have_listen) return Status::ParseError("config is missing 'listen'");
  if (out.system_file.empty()) {
    return Status::ParseError("config is missing 'system'");
  }
  return out;
}

Result<PeerdConfig> PeerdConfig::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open config " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

std::string PeerdConfig::ToString() const {
  std::string out;
  out += "node " + std::to_string(node) + "\n";
  out += "name " + name + "\n";
  out += "listen " + listen.ToString() + "\n";
  out += "system " + system_file + "\n";
  if (!data_dir.empty()) out += "data_dir " + data_dir + "\n";
  if (!pid_file.empty()) out += "pid_file " + pid_file + "\n";
  if (!obs_json.empty()) out += "obs_json " + obs_json + "\n";
  out += "super_peer " + std::to_string(super_peer) + "\n";
  if (no_sync) out += "sync nosync\n";
  for (const core::wire::EndpointEntry& e : peers) {
    out += "peer " + std::to_string(e.node) + " " + e.host + ":" +
           std::to_string(e.port) + "\n";
  }
  return out;
}

}  // namespace p2pdb::daemon
